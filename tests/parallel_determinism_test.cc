// The parallel substrate's contract: every parallel code path produces
// output bit-identical to the serial path at any thread count. These
// tests pin that for the partitioning pipeline, the chunked N-Triples
// parse and the concurrent per-site executor on real generated datasets.

#include <set>
#include <string>
#include <vector>

#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "partition/edge_cut_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "rdf/ntriples.h"
#include "test_util.h"
#include "workload/datasets.h"

namespace mpc {
namespace {

using partition::Partitioning;
using workload::DatasetId;
using workload::GeneratedDataset;

const int kThreadCounts[] = {1, 2, 8};

/// Field-by-field equality of two materialized partitionings.
void ExpectSamePartitioning(const Partitioning& a, const Partitioning& b,
                            const std::string& label) {
  ASSERT_EQ(a.k(), b.k()) << label;
  ASSERT_EQ(a.kind(), b.kind()) << label;
  EXPECT_EQ(a.assignment().part, b.assignment().part) << label;
  EXPECT_EQ(a.crossing_property_mask(), b.crossing_property_mask()) << label;
  EXPECT_EQ(a.num_crossing_properties(), b.num_crossing_properties())
      << label;
  EXPECT_EQ(a.num_crossing_edges(), b.num_crossing_edges()) << label;
  for (uint32_t i = 0; i < a.k(); ++i) {
    const partition::Partition& pa = a.partition(i);
    const partition::Partition& pb = b.partition(i);
    EXPECT_EQ(pa.internal_edges, pb.internal_edges)
        << label << " site " << i;
    EXPECT_EQ(pa.crossing_edges, pb.crossing_edges)
        << label << " site " << i;
    EXPECT_EQ(pa.extended_vertices, pb.extended_vertices)
        << label << " site " << i;
    EXPECT_EQ(pa.num_owned_vertices, pb.num_owned_vertices)
        << label << " site " << i;
  }
}

Partitioning RunMpc(const rdf::RdfGraph& g, int num_threads,
                    core::SelectionStrategy strategy) {
  core::MpcOptions options;
  options.base.k = 8;
  options.base.epsilon = 0.1;
  options.base.num_threads = num_threads;
  options.strategy = strategy;
  return core::MpcPartitioner(options).Partition(g);
}

class PartitionDeterminismTest
    : public ::testing::TestWithParam<DatasetId> {};

TEST_P(PartitionDeterminismTest, MpcBitIdenticalAcrossThreadCounts) {
  GeneratedDataset d = workload::MakeDataset(GetParam(), 0.3, 1);
  Partitioning serial =
      RunMpc(d.graph, 1, core::SelectionStrategy::kAuto);
  for (int threads : kThreadCounts) {
    Partitioning parallel =
        RunMpc(d.graph, threads, core::SelectionStrategy::kAuto);
    ExpectSamePartitioning(serial, parallel,
                           d.name + " threads=" + std::to_string(threads));
  }
}

TEST_P(PartitionDeterminismTest, BackwardSelectorBitIdentical) {
  // The backward heuristic has the most intricate parallel section
  // (snapshotted DSF roots + per-candidate trial merges); pin it
  // explicitly on property-rich data.
  GeneratedDataset d = workload::MakeDataset(GetParam(), 0.2, 1);
  Partitioning serial =
      RunMpc(d.graph, 1, core::SelectionStrategy::kBackward);
  for (int threads : kThreadCounts) {
    ExpectSamePartitioning(
        serial, RunMpc(d.graph, threads, core::SelectionStrategy::kBackward),
        d.name + " backward threads=" + std::to_string(threads));
  }
}

TEST_P(PartitionDeterminismTest, BaselinesBitIdenticalAcrossThreadCounts) {
  GeneratedDataset d = workload::MakeDataset(GetParam(), 0.2, 1);
  auto run_all = [&](int threads) {
    partition::PartitionerOptions options{
        .k = 8, .epsilon = 0.1, .seed = 1, .num_threads = threads};
    std::vector<Partitioning> out;
    out.push_back(partition::SubjectHashPartitioner(options)
                      .Partition(d.graph));
    out.push_back(partition::EdgeCutPartitioner(options).Partition(d.graph));
    out.push_back(partition::VpPartitioner(options).Partition(d.graph));
    return out;
  };
  std::vector<Partitioning> serial = run_all(1);
  for (int threads : kThreadCounts) {
    std::vector<Partitioning> parallel = run_all(threads);
    for (size_t s = 0; s < serial.size(); ++s) {
      ExpectSamePartitioning(serial[s], parallel[s],
                             d.name + " baseline " + std::to_string(s) +
                                 " threads=" + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LubmAndWatdiv, PartitionDeterminismTest,
                         ::testing::Values(DatasetId::kLubm,
                                           DatasetId::kWatdiv),
                         [](const auto& info) {
                           return std::string(
                               workload::DatasetName(info.param));
                         });

/// Dictionary + triple-id equality: the chunked parse must replay the
/// serial intern sequence exactly, not just produce an isomorphic graph.
void ExpectSameGraph(const rdf::RdfGraph& a, const rdf::RdfGraph& b,
                     const std::string& label) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << label;
  ASSERT_EQ(a.num_properties(), b.num_properties()) << label;
  EXPECT_EQ(a.triples(), b.triples()) << label;
  for (size_t v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.VertexName(static_cast<rdf::VertexId>(v)),
              b.VertexName(static_cast<rdf::VertexId>(v)))
        << label << " vertex " << v;
  }
  for (size_t p = 0; p < a.num_properties(); ++p) {
    ASSERT_EQ(a.PropertyName(static_cast<rdf::PropertyId>(p)),
              b.PropertyName(static_cast<rdf::PropertyId>(p)))
        << label << " property " << p;
  }
}

class ParseDeterminismTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(ParseDeterminismTest, ParseDocumentBitIdenticalAcrossThreadCounts) {
  GeneratedDataset d = workload::MakeDataset(GetParam(), 0.2, 1);
  const std::string text = rdf::SerializeNTriples(d.graph);
  rdf::GraphBuilder serial_builder;
  ASSERT_TRUE(
      rdf::NTriplesParser::ParseDocument(text, &serial_builder, 1).ok());
  rdf::RdfGraph serial = serial_builder.Build();
  for (int threads : kThreadCounts) {
    rdf::GraphBuilder builder;
    ASSERT_TRUE(
        rdf::NTriplesParser::ParseDocument(text, &builder, threads).ok());
    rdf::RdfGraph parallel = builder.Build();
    ExpectSameGraph(serial, parallel,
                    d.name + " threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(LubmAndWatdiv, ParseDeterminismTest,
                         ::testing::Values(DatasetId::kLubm,
                                           DatasetId::kWatdiv),
                         [](const auto& info) {
                           return std::string(
                               workload::DatasetName(info.param));
                         });

TEST(ParseDeterminismTest, ErrorLineIdenticalAcrossThreadCounts) {
  // Build a document big enough to be chunked, with one malformed line;
  // every thread count must report the same global line number and leave
  // the same partial builder state.
  std::string text;
  const size_t kBad = 977;
  for (size_t i = 0; i < 2000; ++i) {
    if (i == kBad) {
      text += "<s> malformed-line .\n";
    } else {
      text += "<s" + std::to_string(i) + "> <p" + std::to_string(i % 7) +
              "> <o" + std::to_string(i) + "> .\n";
    }
  }
  rdf::GraphBuilder serial_builder;
  Status serial_status =
      rdf::NTriplesParser::ParseDocument(text, &serial_builder, 1);
  ASSERT_FALSE(serial_status.ok());
  rdf::RdfGraph serial = serial_builder.Build();
  for (int threads : kThreadCounts) {
    rdf::GraphBuilder builder;
    Status status =
        rdf::NTriplesParser::ParseDocument(text, &builder, threads);
    ASSERT_FALSE(status.ok()) << "threads=" << threads;
    EXPECT_EQ(status.ToString(), serial_status.ToString())
        << "threads=" << threads;
    ExpectSameGraph(serial, builder.Build(),
                    "partial threads=" + std::to_string(threads));
  }
}

TEST(ExecutorDeterminismTest, QueryResultsIdenticalAcrossThreadCounts) {
  GeneratedDataset d = workload::MakeDataset(DatasetId::kLubm, 0.2, 1);
  Partitioning p = RunMpc(d.graph, 1, core::SelectionStrategy::kAuto);
  exec::Cluster cluster = exec::Cluster::Build(std::move(p), 8);
  for (const workload::NamedQuery& nq : d.benchmark_queries) {
    sparql::QueryGraph q = testutil::ParseQueryOrDie(nq.sparql);
    std::vector<std::set<std::vector<uint32_t>>> row_sets;
    for (int threads : kThreadCounts) {
      exec::ExecutorOptions options;
      options.num_threads = threads;
      exec::DistributedExecutor executor(cluster, d.graph, options);
      Result<exec::QueryResponse> response =
          executor.Execute(exec::QueryRequest::FromQuery(q));
      ASSERT_TRUE(response.ok()) << nq.name << " threads=" << threads;
      row_sets.push_back(testutil::RowSet(response->bindings));
    }
    for (size_t i = 1; i < row_sets.size(); ++i) {
      EXPECT_EQ(row_sets[i], row_sets[0]) << nq.name;
    }
  }
}

}  // namespace
}  // namespace mpc

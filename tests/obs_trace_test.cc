#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/json.h"

namespace mpc::obs {
namespace {

/// Every tracer test brackets its own Start/Stop pair; StartTracing
/// discards earlier events, so tests stay independent even though the
/// trace buffers are process-wide.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { StopTracing(); }
};

const TraceEvent* FindEvent(const std::vector<TraceEvent>& events,
                            const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const JsonValue* FindEventJson(const JsonValue& events,
                               const std::string& name) {
  for (const JsonValue& e : events.array) {
    const JsonValue* n = e.Find("name");
    if (n != nullptr && n->str == name) return &e;
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(TracingEnabled());
  {
    MPC_TRACE_SPAN("never.recorded");
    TraceSpan span("also.never");
    span.Attr("key", 42);
    EXPECT_FALSE(span.active());
  }
  StartTracing();  // discards anything recorded before
  StopTracing();
  EXPECT_TRUE(CollectTrace().empty());
}

TEST_F(TraceTest, NestedSpansRecordParentChildAndDepth) {
  StartTracing();
  {
    TraceSpan outer("outer");
    EXPECT_NE(CurrentSpanId(), 0u);
    {
      TraceSpan middle("middle");
      { MPC_TRACE_SPAN("inner"); }
    }
    { MPC_TRACE_SPAN("sibling"); }
  }
  StopTracing();

  std::vector<TraceEvent> events = CollectTrace();
  ASSERT_EQ(events.size(), 4u);
  const TraceEvent* outer = FindEvent(events, "outer");
  const TraceEvent* middle = FindEvent(events, "middle");
  const TraceEvent* inner = FindEvent(events, "inner");
  const TraceEvent* sibling = FindEvent(events, "sibling");
  ASSERT_TRUE(outer && middle && inner && sibling);

  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(middle->parent_id, outer->span_id);
  EXPECT_EQ(middle->depth, 1u);
  EXPECT_EQ(inner->parent_id, middle->span_id);
  EXPECT_EQ(inner->depth, 2u);
  EXPECT_EQ(sibling->parent_id, outer->span_id);

  // All on one thread; children open after their parent and fit inside
  // the parent's window.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->start_us, middle->start_us);
  EXPECT_LE(middle->start_us, inner->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us,
            middle->start_us + middle->dur_us + 1.0);

  // Distinct span ids all the way down.
  std::set<uint64_t> ids;
  for (const TraceEvent& e : events) ids.insert(e.span_id);
  EXPECT_EQ(ids.size(), events.size());
}

TEST_F(TraceTest, CurrentSpanIdTracksInnermostOpenSpan) {
  EXPECT_EQ(CurrentSpanId(), 0u);
  StartTracing();
  EXPECT_EQ(CurrentSpanId(), 0u);
  {
    TraceSpan outer("outer");
    const uint64_t outer_id = CurrentSpanId();
    EXPECT_NE(outer_id, 0u);
    {
      TraceSpan inner("inner");
      EXPECT_NE(CurrentSpanId(), outer_id);
      EXPECT_NE(CurrentSpanId(), 0u);
    }
    EXPECT_EQ(CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(CurrentSpanId(), 0u);
}

TEST_F(TraceTest, ConcurrentPoolThreadsLoseNoEvents) {
  constexpr int kThreads = 8;
  constexpr size_t kItems = 400;
  StartTracing();
  ParallelFor(0, kItems, /*grain=*/1, kThreads, [](size_t i) {
    TraceSpan span("work.item");
    span.Attr("item", static_cast<uint64_t>(i));
    { MPC_TRACE_SPAN("work.inner"); }
  });
  StopTracing();

  std::vector<TraceEvent> events = CollectTrace();
  size_t items = 0;
  size_t inners = 0;
  std::set<uint64_t> seen_items;
  std::map<uint64_t, const TraceEvent*> by_id;
  for (const TraceEvent& e : events) by_id[e.span_id] = &e;
  for (const TraceEvent& e : events) {
    if (e.name == "work.item") {
      ++items;
      ASSERT_EQ(e.attrs.size(), 1u);
      EXPECT_EQ(e.attrs[0].key, "item");
      seen_items.insert(e.attrs[0].value.u);
    } else if (e.name == "work.inner") {
      ++inners;
      // Parent resolves to a work.item span recorded on the same thread
      // — nesting never crosses threads even with 8 workers appending
      // concurrently.
      auto it = by_id.find(e.parent_id);
      ASSERT_NE(it, by_id.end());
      EXPECT_EQ(it->second->name, "work.item");
      EXPECT_EQ(it->second->tid, e.tid);
    }
  }
  // No lost events: every item recorded exactly once, each with its
  // inner child.
  EXPECT_EQ(items, kItems);
  EXPECT_EQ(inners, kItems);
  EXPECT_EQ(seen_items.size(), kItems);
}

TEST_F(TraceTest, ChromeJsonRoundTripsThroughParser) {
  StartTracing();
  {
    TraceSpan span("json.span");
    span.Attr("count", 7);
    span.Attr("ratio", 0.5);
    span.Attr("label", "quoted \"name\"\n");
    { MPC_TRACE_SPAN("json.child"); }
  }
  StopTracing();

  const std::string json = TraceToChromeJson();
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);

  const JsonValue* span = FindEventJson(*events, "json.span");
  ASSERT_NE(span, nullptr);
  for (const char* key : {"ph", "ts", "dur", "pid", "tid", "args"}) {
    EXPECT_NE(span->Find(key), nullptr) << key;
  }
  EXPECT_EQ(span->Find("ph")->str, "X");
  const JsonValue* args = span->Find("args");
  ASSERT_TRUE(args->is_object());
  EXPECT_EQ(args->Find("count")->number, 7.0);
  EXPECT_EQ(args->Find("ratio")->number, 0.5);
  // The escaped string survives the parser and decodes back to the
  // original attribute value.
  ASSERT_NE(args->Find("label"), nullptr);
  EXPECT_TRUE(args->Find("label")->is_string());
  EXPECT_EQ(args->Find("label")->str, "quoted \"name\"\n");

  // Parent/child linkage survives the export: the child's parent_id arg
  // equals the parent's span_id arg.
  const JsonValue* child = FindEventJson(*events, "json.child");
  ASSERT_NE(child, nullptr);
  const JsonValue* child_args = child->Find("args");
  ASSERT_NE(child_args, nullptr);
  ASSERT_NE(child_args->Find("parent_id"), nullptr);
  ASSERT_NE(args->Find("span_id"), nullptr);
  EXPECT_EQ(child_args->Find("parent_id")->number,
            args->Find("span_id")->number);
}

TEST_F(TraceTest, TextTreeMergesSiblingsWithCounts) {
  StartTracing();
  {
    TraceSpan root("tree.root");
    for (int i = 0; i < 3; ++i) {
      MPC_TRACE_SPAN("tree.leaf");
    }
  }
  StopTracing();
  const std::string tree = TraceToTextTree();
  EXPECT_NE(tree.find("tree.root"), std::string::npos) << tree;
  EXPECT_NE(tree.find("tree.leaf"), std::string::npos) << tree;
  EXPECT_NE(tree.find("x3"), std::string::npos) << tree;
}

TEST_F(TraceTest, LogLinesCarryTheActiveSpanId) {
  CaptureLogSink capture;
  LogSink* previous = SetLogSink(&capture);
  const LogLevel level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  StartTracing();  // installs the span-id provider
  uint64_t span_id = 0;
  {
    TraceSpan span("logged.work");
    span_id = CurrentSpanId();
    MPC_LOG(Info) << "inside the span";
  }
  MPC_LOG(Info) << "outside any span";
  StopTracing();  // uninstalls the provider
  MPC_LOG(Info) << "tracing off";

  SetLogSink(previous);
  SetLogLevel(level);

  std::vector<std::string> lines = capture.Lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("span=" + std::to_string(span_id)),
            std::string::npos)
      << lines[0];
  // The provider reports 0 outside a span; the header stays clean.
  EXPECT_EQ(lines[1].find("span="), std::string::npos) << lines[1];
  EXPECT_EQ(lines[2].find("span="), std::string::npos) << lines[2];
}

// ------------------------------------------------------------ JSON escapes

TEST(JsonParserTest, DecodesBasicEscapes) {
  Result<JsonValue> v = ParseJson(R"("a\"b\\c\/d\ne\tf\rg\bh\fi")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->str, "a\"b\\c/d\ne\tf\rg\bh\fi");
}

TEST(JsonParserTest, DecodesUnicodeEscapesToUtf8) {
  // One escape per UTF-8 width: ASCII, 2-byte, 3-byte.
  Result<JsonValue> v = ParseJson("\"\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->str, "A\xc3\xa9\xe2\x82\xac");  // A, e-acute, euro sign

  // Mixed with literal text, and upper-case hex accepted.
  Result<JsonValue> mixed = ParseJson("\"x\\u00E9y\"");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->str, "x\xc3\xa9y");
}

TEST(JsonParserTest, DecodesSurrogatePairs) {
  // U+1F600 (grinning face) encodes as the pair D83D DE00 and decodes
  // to the 4-byte UTF-8 sequence F0 9F 98 80.
  Result<JsonValue> v = ParseJson("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->str, "\xf0\x9f\x98\x80");
}

TEST(JsonParserTest, RejectsLoneAndMalformedSurrogates) {
  // High surrogate with no low half.
  Result<JsonValue> high = ParseJson(R"("\ud83d")");
  ASSERT_FALSE(high.ok());
  EXPECT_NE(high.status().message().find("surrogate"), std::string::npos);

  // High surrogate followed by a non-surrogate escape.
  Result<JsonValue> bad_pair = ParseJson(R"("\ud83dA")");
  ASSERT_FALSE(bad_pair.ok());

  // Low surrogate first.
  Result<JsonValue> low = ParseJson(R"("\ude00")");
  ASSERT_FALSE(low.ok());

  // Truncated hex.
  Result<JsonValue> short_hex = ParseJson(R"("\u12")");
  ASSERT_FALSE(short_hex.ok());
  EXPECT_NE(short_hex.status().message().find("\\u"), std::string::npos);

  // Non-hex digits.
  Result<JsonValue> bad_hex = ParseJson(R"("\uzzzz")");
  ASSERT_FALSE(bad_hex.ok());
}

TEST(JsonParserTest, UnicodeEscapeInObjectKey) {
  Result<JsonValue> v = ParseJson("{\"\\u00e9\": 1}");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_NE(v->Find("\xc3\xa9"), nullptr);
}

TEST_F(TraceTest, StartTracingDiscardsEarlierEvents) {
  StartTracing();
  { MPC_TRACE_SPAN("first.window"); }
  StopTracing();
  ASSERT_EQ(CollectTrace().size(), 1u);

  StartTracing();
  { MPC_TRACE_SPAN("second.window"); }
  StopTracing();
  std::vector<TraceEvent> events = CollectTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "second.window");
}

}  // namespace
}  // namespace mpc::obs

// Adversarial coverage for the wire layer: every torn, truncated,
// corrupted or garbage frame must come back as a descriptive ParseError
// (or Unavailable/DeadlineExceeded where the vocabulary says so) — never
// a crash, an out-of-bounds read, or an unbounded allocation.

#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "exec/bloom_filter.h"
#include "exec/cluster.h"
#include "exec/rpc_protocol.h"
#include "gtest/gtest.h"
#include "net/bytes.h"
#include "net/frame.h"
#include "net/socket.h"

namespace mpc::net {
namespace {

// --- ByteWriter / ByteReader. ---

TEST(BytesTest, RoundTripsEveryWidth) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefull);
  w.F64(3.5);
  w.Str("hello");
  const std::string payload = w.Take();

  ByteReader r(payload);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double f64 = 0;
  std::string s;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U16(&u16).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.F64(&f64).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(f64, 3.5);
  EXPECT_EQ(s, "hello");
}

TEST(BytesTest, EveryTruncationPointFailsCleanly) {
  ByteWriter w;
  w.U32(7);
  w.Str("payload");
  w.U64(42);
  const std::string full = w.Take();
  for (size_t len = 0; len < full.size(); ++len) {
    ByteReader r(std::string_view(full).substr(0, len));
    uint32_t a = 0;
    uint64_t b = 0;
    std::string s;
    Status st = r.U32(&a);
    if (st.ok()) st = r.Str(&s);
    if (st.ok()) st = r.U64(&b);
    EXPECT_FALSE(st.ok()) << "prefix length " << len;
    EXPECT_EQ(st.code(), StatusCode::kParseError);
    EXPECT_NE(st.message().find("truncated"), std::string::npos);
  }
}

TEST(BytesTest, StringLengthIsValidatedBeforeAllocation) {
  // A length prefix claiming 4 GiB against a 3-byte buffer must fail
  // without touching the output.
  ByteWriter w;
  w.U32(0xffffffffu);
  w.Bytes("abc");
  const std::string hostile = w.Take();
  ByteReader r(hostile);
  std::string out = "unchanged";
  Status st = r.Str(&out);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(out, "unchanged");
}

TEST(BytesTest, TrailingGarbageIsAnError) {
  ByteWriter w;
  w.U32(1);
  w.U8(0);
  ByteReader r(w.Take());
  uint32_t v = 0;
  ASSERT_TRUE(r.U32(&v).ok());
  Status st = r.ExpectEnd();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("trailing"), std::string::npos);
}

// --- Frame header decoding. ---

TEST(FrameTest, HeaderRoundTrips) {
  const std::string frame = EncodeFrame(kFramePing, "abc");
  ASSERT_GE(frame.size(), kFrameHeaderSize);
  Result<FrameHeader> header =
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderSize));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->version, kProtocolVersion);
  EXPECT_EQ(header->type, kFramePing);
  EXPECT_EQ(header->payload_len, 3u);
  EXPECT_TRUE(
      VerifyFramePayload(*header, frame.substr(kFrameHeaderSize)).ok());
}

TEST(FrameTest, TruncatedHeaderIsParseError) {
  const std::string frame = EncodeFrame(kFramePing, "abc");
  for (size_t len = 0; len < kFrameHeaderSize; ++len) {
    Result<FrameHeader> header =
        DecodeFrameHeader(std::string_view(frame).substr(0, len));
    ASSERT_FALSE(header.ok()) << "header prefix " << len;
    EXPECT_EQ(header.status().code(), StatusCode::kParseError);
  }
}

TEST(FrameTest, BadMagicIsParseErrorNamingTheBytes) {
  std::string frame = EncodeFrame(kFramePing, "abc");
  frame[0] = 'X';
  Result<FrameHeader> header =
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderSize));
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kParseError);
  EXPECT_NE(header.status().message().find("magic"), std::string::npos);
}

TEST(FrameTest, UnknownVersionIsParseError) {
  std::string frame = EncodeFrame(kFramePing, "abc");
  frame[4] = static_cast<char>(0x7f);  // version low byte
  Result<FrameHeader> header =
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderSize));
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kParseError);
  EXPECT_NE(header.status().message().find("version"), std::string::npos);
}

TEST(FrameTest, OversizedLengthIsRejectedBeforeAllocating) {
  std::string frame = EncodeFrame(kFramePing, "abc");
  // Stamp a 3.9 GiB payload length into the header (offset 8, LE u32).
  const uint32_t huge = 0xf0000000u;
  for (int i = 0; i < 4; ++i) {
    frame[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  Result<FrameHeader> header =
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderSize));
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kParseError);
  EXPECT_NE(header.status().message().find("payload length"),
            std::string::npos)
      << header.status().ToString();
}

TEST(FrameTest, ChecksumMismatchIsParseError) {
  const std::string frame = EncodeFrame(kFramePing, "abcdef");
  Result<FrameHeader> header =
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderSize));
  ASSERT_TRUE(header.ok());
  std::string payload = frame.substr(kFrameHeaderSize);
  payload[2] ^= 0x01;
  Status st = VerifyFramePayload(*header, payload);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
}

/// Fuzz-ish: single-byte mutations of a valid header either still parse
/// (mutations inside the checksum field — it is not covered by itself)
/// or produce a clean ParseError. Never a crash; that is the property.
TEST(FrameTest, HeaderByteMutationsNeverMisbehave) {
  const std::string frame = EncodeFrame(kFirstAppFrameType, "payload-bytes");
  const std::string_view header_bytes =
      std::string_view(frame).substr(0, kFrameHeaderSize);
  for (size_t pos = 0; pos < kFrameHeaderSize; ++pos) {
    for (uint8_t flip : {0x01, 0x80, 0xff}) {
      std::string mutated(header_bytes);
      mutated[pos] = static_cast<char>(mutated[pos] ^ flip);
      Result<FrameHeader> header = DecodeFrameHeader(mutated);
      if (!header.ok()) {
        EXPECT_EQ(header.status().code(), StatusCode::kParseError);
        continue;
      }
      // Parsed despite the flip: acceptable only for fields that cannot
      // be validated statelessly (type, a shorter-but-legal length, or
      // the checksum itself) — and then payload verification must catch
      // length/checksum damage.
      if (header->payload_len != frame.size() - kFrameHeaderSize) continue;
      Status verify =
          VerifyFramePayload(*header, frame.substr(kFrameHeaderSize));
      if (pos >= 12) {
        // Checksum field mutated: verification must fail.
        EXPECT_FALSE(verify.ok()) << "pos " << pos;
      }
    }
  }
}

// --- Framed sockets end to end. ---

std::string TestSocketPath(const char* name) {
  return ::testing::TempDir() + "mpc_" + name + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(FrameSocketTest, PingPongRoundTrip) {
  const std::string path = TestSocketPath("pingpong");
  Result<Socket> listener = Socket::Listen(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread server([&] {
    Result<Socket> conn = listener->Accept(2000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    Result<Frame> frame = ReadFrame(*conn, 2000);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, kFramePing);
    EXPECT_EQ(frame->payload, "marco");
    ASSERT_TRUE(WriteFrame(*conn, kFramePong, "polo").ok());
  });
  Result<Socket> client = Socket::Connect(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(WriteFrame(*client, kFramePing, "marco").ok());
  Result<Frame> reply = ReadFrame(*client, 2000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, kFramePong);
  EXPECT_EQ(reply->payload, "polo");
  server.join();
  ::unlink(path.c_str());
}

TEST(FrameSocketTest, CleanEofBetweenFramesIsUnavailable) {
  const std::string path = TestSocketPath("eof");
  Result<Socket> listener = Socket::Listen(path);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    Result<Socket> conn = listener->Accept(2000);
    ASSERT_TRUE(conn.ok());
    // Close immediately: the peer sees EOF at a frame boundary.
  });
  Result<Socket> client = Socket::Connect(path);
  ASSERT_TRUE(client.ok());
  server.join();
  Result<Frame> frame = ReadFrame(*client, 2000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
  ::unlink(path.c_str());
}

TEST(FrameSocketTest, MidPayloadEofIsParseError) {
  const std::string path = TestSocketPath("torn");
  Result<Socket> listener = Socket::Listen(path);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    Result<Socket> conn = listener->Accept(2000);
    ASSERT_TRUE(conn.ok());
    // Send the header (promising 64 payload bytes) plus half the
    // payload, then tear the connection.
    const std::string frame = EncodeFrame(kFramePing, std::string(64, 'x'));
    ASSERT_TRUE(
        conn->SendAll(frame.data(), kFrameHeaderSize + 32).ok());
  });
  Result<Socket> client = Socket::Connect(path);
  ASSERT_TRUE(client.ok());
  server.join();
  Result<Frame> frame = ReadFrame(*client, 2000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kParseError);
  ::unlink(path.c_str());
}

TEST(FrameSocketTest, GarbageStreamIsParseError) {
  const std::string path = TestSocketPath("garbage");
  Result<Socket> listener = Socket::Listen(path);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    Result<Socket> conn = listener->Accept(2000);
    ASSERT_TRUE(conn.ok());
    const std::string junk(64, '\x5a');
    ASSERT_TRUE(conn->SendAll(junk.data(), junk.size()).ok());
  });
  Result<Socket> client = Socket::Connect(path);
  ASSERT_TRUE(client.ok());
  server.join();
  Result<Frame> frame = ReadFrame(*client, 2000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kParseError);
  ::unlink(path.c_str());
}

TEST(FrameSocketTest, ReadDeadlineIsDeadlineExceeded) {
  const std::string path = TestSocketPath("deadline");
  Result<Socket> listener = Socket::Listen(path);
  ASSERT_TRUE(listener.ok());
  Result<Socket> client = Socket::Connect(path);
  ASSERT_TRUE(client.ok());
  Result<Socket> conn = listener->Accept(2000);
  ASSERT_TRUE(conn.ok());
  // Nobody ever writes: the read must give up on time, not hang.
  Result<Frame> frame = ReadFrame(*client, 50);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
  ::unlink(path.c_str());
}

TEST(SocketTest, ConnectToMissingPathIsUnavailable) {
  Result<Socket> conn =
      Socket::Connect(::testing::TempDir() + "mpc_no_such_worker.sock");
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace mpc::net

// --- RPC message codecs (exec layer). ---

namespace mpc::exec {
namespace {

HelloMsg MakeHello() {
  HelloMsg hello;
  hello.site = 3;
  hello.k = 8;
  hello.generation = 7;
  hello.pid = 4242;
  hello.load_millis = 12.25;
  hello.memory_bytes = 1 << 20;
  hello.property_present = {1, 0, 1, 1, 0};
  return hello;
}

TEST(RpcProtocolTest, HelloRoundTrips) {
  const HelloMsg hello = MakeHello();
  Result<HelloMsg> decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->site, hello.site);
  EXPECT_EQ(decoded->k, hello.k);
  EXPECT_EQ(decoded->generation, hello.generation);
  EXPECT_EQ(decoded->pid, hello.pid);
  EXPECT_EQ(decoded->load_millis, hello.load_millis);
  EXPECT_EQ(decoded->memory_bytes, hello.memory_bytes);
  EXPECT_EQ(decoded->property_present, hello.property_present);
}

store::ResolvedQuery MakeResolved() {
  store::ResolvedQuery resolved;
  resolved.num_vars = 3;
  store::ResolvedPattern p;
  p.s_is_var = true;
  p.s = 0;
  p.p = 17;
  p.o_is_var = true;
  p.o = 1;
  resolved.patterns.push_back(p);
  store::ResolvedPattern q;
  q.s = 99;
  q.p_is_var = true;
  q.p = 2;
  q.o = 123;
  q.impossible = true;
  resolved.patterns.push_back(q);
  return resolved;
}

TEST(RpcProtocolTest, EvalRequestRoundTripsWithFilters) {
  const store::ResolvedQuery resolved = MakeResolved();
  const std::vector<size_t> indices = {0, 1};
  std::vector<std::unique_ptr<BloomFilter>> filters;
  filters.resize(resolved.num_vars);
  filters[1] = std::make_unique<BloomFilter>(3);
  for (uint32_t v : {5u, 9u, 1000u}) filters[1]->Insert(v);
  SiteEvalRequest request;
  request.pattern_indices = indices;
  request.max_rows = 512;
  request.var_filters = &filters;

  Result<EvalRequestMsg> decoded =
      DecodeEvalRequest(EncodeEvalRequest(resolved, request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->resolved.num_vars, resolved.num_vars);
  ASSERT_EQ(decoded->resolved.patterns.size(), resolved.patterns.size());
  for (size_t i = 0; i < resolved.patterns.size(); ++i) {
    const store::ResolvedPattern& a = resolved.patterns[i];
    const store::ResolvedPattern& b = decoded->resolved.patterns[i];
    EXPECT_EQ(a.s_is_var, b.s_is_var);
    EXPECT_EQ(a.p_is_var, b.p_is_var);
    EXPECT_EQ(a.o_is_var, b.o_is_var);
    EXPECT_EQ(a.impossible, b.impossible);
    EXPECT_EQ(a.s, b.s);
    EXPECT_EQ(a.p, b.p);
    EXPECT_EQ(a.o, b.o);
  }
  EXPECT_EQ(decoded->pattern_indices, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(decoded->max_rows, 512u);
  ASSERT_EQ(decoded->filters.size(), 1u);
  EXPECT_EQ(decoded->filters[0].var, 1u);
  // The reconstructed filter must answer exactly like the original.
  BloomFilter rebuilt = BloomFilter::FromBytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(decoded->filters[0].bits.data()),
      decoded->filters[0].bits.size()));
  for (uint32_t v : {5u, 9u, 1000u}) EXPECT_TRUE(rebuilt.MayContain(v));
  size_t agree = 0;
  for (uint32_t v = 0; v < 4096; ++v) {
    agree += rebuilt.MayContain(v) == filters[1]->MayContain(v);
  }
  EXPECT_EQ(agree, 4096u);
}

TEST(RpcProtocolTest, EvalRequestRejectsOutOfRangePatternIndex) {
  const store::ResolvedQuery resolved = MakeResolved();
  const std::vector<size_t> indices = {0, 5};  // 5 >= 2 patterns
  SiteEvalRequest request;
  request.pattern_indices = indices;
  Result<EvalRequestMsg> decoded =
      DecodeEvalRequest(EncodeEvalRequest(resolved, request));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  EXPECT_NE(decoded.status().message().find("out of range"),
            std::string::npos);
}

TEST(RpcProtocolTest, EvalReplyRoundTrips) {
  SiteEvalReply reply;
  reply.table.var_ids = {0, 2};
  reply.table.rows = {{1, 2}, {3, 4}, {5, 6}};
  reply.bloom_dropped = 9;
  reply.eval_millis = 1.5;
  SiteEvalReply decoded;
  Status st = DecodeEvalReply(EncodeEvalReply(reply), &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(decoded.table.var_ids, reply.table.var_ids);
  EXPECT_EQ(decoded.table.rows, reply.table.rows);
  EXPECT_EQ(decoded.bloom_dropped, 9u);
  EXPECT_EQ(decoded.eval_millis, 1.5);
}

TEST(RpcProtocolTest, EvalReplyRowCountIsValidatedBeforeAllocation) {
  // Claim 2^40 rows over a payload of a few bytes: must ParseError, not
  // attempt the allocation.
  net::ByteWriter w;
  w.U64(0);                       // bloom_dropped
  w.F64(0.0);                     // eval_millis
  w.U32(2);                       // num columns
  w.U32(0);
  w.U32(1);
  w.U64(uint64_t{1} << 40);       // num rows (hostile)
  SiteEvalReply decoded;
  Status st = DecodeEvalReply(w.Take(), &decoded);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(RpcProtocolTest, ErrorRoundTripsEveryCode) {
  for (Status original : {Status::InvalidArgument("bad"),
                          Status::ParseError("torn"),
                          Status::Unavailable("down"),
                          Status::DeadlineExceeded("late"),
                          Status::Internal("bug")}) {
    Status decoded = DecodeError(EncodeError(original));
    EXPECT_EQ(decoded, original);
  }
}

TEST(RpcProtocolTest, ReloadRoundTrips) {
  ReloadMsg reload;
  reload.generation = 12;
  reload.graph_path = "/tmp/g.nt";
  reload.partition_dir = "/tmp/parts";
  Result<ReloadMsg> decoded = DecodeReload(EncodeReload(reload));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->generation, 12u);
  EXPECT_EQ(decoded->graph_path, reload.graph_path);
  EXPECT_EQ(decoded->partition_dir, reload.partition_dir);
}

/// Fuzz-ish sweep: every strict prefix of every message type fails with
/// ParseError; no prefix length crashes or reads out of bounds (run
/// under asan by scripts/check.sh).
TEST(RpcProtocolTest, EveryTruncationOfEveryMessageFailsCleanly) {
  const store::ResolvedQuery resolved = MakeResolved();
  const std::vector<size_t> indices = {0, 1};
  SiteEvalRequest request;
  request.pattern_indices = indices;
  SiteEvalReply reply;
  reply.table.var_ids = {0, 1, 2};
  reply.table.rows = {{1, 2, 3}, {4, 5, 6}};
  ReloadMsg reload;
  reload.generation = 12;
  reload.graph_path = "/g.nt";
  reload.partition_dir = "/parts";
  struct Case {
    std::string bytes;
    std::function<Status(std::string_view)> decode;
  };
  const std::vector<Case> cases = {
      {EncodeHello(MakeHello()),
       [](std::string_view p) { return DecodeHello(p).status(); }},
      {EncodeEvalRequest(resolved, request),
       [](std::string_view p) { return DecodeEvalRequest(p).status(); }},
      {EncodeEvalReply(reply),
       [](std::string_view p) {
         SiteEvalReply sink;
         return DecodeEvalReply(p, &sink);
       }},
      {EncodeReload(reload),
       [](std::string_view p) { return DecodeReload(p).status(); }},
      {EncodeError(Status::Unavailable("down")),
       [](std::string_view p) {
         Status carried = DecodeError(p);
         // DecodeError returns the carried status on success; only a
         // ParseError *about the frame* is a decode failure here.
         return carried.code() == StatusCode::kUnavailable ? Status::Ok()
                                                           : carried;
       }},
  };
  for (const Case& c : cases) {
    // The full message decodes...
    EXPECT_TRUE(c.decode(c.bytes).ok());
    // ...and every strict prefix fails with ParseError.
    for (size_t len = 0; len < c.bytes.size(); ++len) {
      Status st = c.decode(std::string_view(c.bytes).substr(0, len));
      EXPECT_FALSE(st.ok()) << "prefix " << len << "/" << c.bytes.size();
      EXPECT_EQ(st.code(), StatusCode::kParseError);
    }
  }
}

/// Random single-byte corruptions of a valid EvalRequest payload either
/// decode (the mutation hit a don't-care bit) or ParseError — never
/// anything else. Deterministic seed, wide coverage.
TEST(RpcProtocolTest, RandomCorruptionsNeverMisbehave) {
  const store::ResolvedQuery resolved = MakeResolved();
  const std::vector<size_t> indices = {0, 1};
  SiteEvalRequest request;
  request.pattern_indices = indices;
  const std::string base = EncodeEvalRequest(resolved, request);
  Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    mutated[rng.Below(mutated.size())] ^=
        static_cast<char>(1 + rng.Below(255));
    Result<EvalRequestMsg> decoded = DecodeEvalRequest(mutated);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
    }
  }
}

}  // namespace
}  // namespace mpc::exec

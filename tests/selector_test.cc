#include "mpc/selector.h"

#include <set>

#include "common/random.h"
#include "dsf/disjoint_set_forest.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace mpc::core {
namespace {

using rdf::RdfGraph;

size_t CostOfSelection(const RdfGraph& g, const std::vector<bool>& mask) {
  dsf::DisjointSetForest forest(g.num_vertices());
  for (size_t p = 0; p < mask.size(); ++p) {
    if (mask[p]) {
      forest.AddEdges(g.EdgesWithProperty(static_cast<rdf::PropertyId>(p)));
    }
  }
  bool any = false;
  for (bool b : mask) any |= b;
  return any ? forest.max_component_size() : 0;
}

/// Brute force: maximum feasible |L_in| over all 2^|L| subsets.
size_t BruteForceOptimum(const RdfGraph& g, size_t cap) {
  const size_t num_props = g.num_properties();
  size_t best = 0;
  for (uint64_t bits = 0; bits < (1ULL << num_props); ++bits) {
    std::vector<bool> mask(num_props);
    size_t count = 0;
    for (size_t p = 0; p < num_props; ++p) {
      if (bits & (1ULL << p)) {
        mask[p] = true;
        ++count;
      }
    }
    if (count <= best) continue;
    if (CostOfSelection(g, mask) <= cap) best = count;
  }
  return best;
}

TEST(BalanceCapTest, Formula) {
  RdfGraph g = testutil::BuildGraph({{"a", "p", "b"}, {"c", "p", "d"}});
  // |V| = 4, k = 2, eps = 0.5 -> cap = 1.5 * 4 / 2 = 3.
  EXPECT_EQ(BalanceCap(g, 2, 0.5), 3u);
  EXPECT_EQ(BalanceCap(g, 0, 0.5), 4u);  // degenerate k
}

TEST(GreedySelectorTest, Fig2ExampleSelectsAllButBirthPlace) {
  // The quickstart graph: birthPlace is the global connector.
  RdfGraph g = testutil::BuildGraph({
      {"002", "birthPlace", "001"},
      {"003", "birthPlace", "001"},
      {"003", "spouse", "002"},
      {"003", "birthPlace", "010"},
      {"010", "foundingDate", "011"},
      {"004", "birthPlace", "010"},
      {"005", "starring", "004"},
      {"005", "chronology", "007"},
      {"006", "residence", "004"},
      {"007", "starring", "008"},
      {"008", "residence", "009"},
      {"002", "birthPlace", "009"},
  });
  SelectorOptions options{.base = {.k = 2, .epsilon = 0.6}};
  SelectionResult result = GreedySelector(options).Select(g);
  rdf::PropertyId birth = g.property_dict().Lookup("<t:birthPlace>");
  ASSERT_NE(birth, rdf::kInvalidVertex);
  EXPECT_FALSE(result.internal[birth]);
  EXPECT_EQ(result.num_internal, g.num_properties() - 1);
}

TEST(GreedySelectorTest, RespectsCapInvariant) {
  Rng rng(21);
  for (int round = 0; round < 10; ++round) {
    RdfGraph g = testutil::RandomGraph(rng, 100, 300, 8, /*community=*/10);
    SelectorOptions options{.base = {.k = 4, .epsilon = 0.1}};
    SelectionResult result = GreedySelector(options).Select(g);
    size_t cap = BalanceCap(g, options.base.k, options.base.epsilon);
    EXPECT_LE(CostOfSelection(g, result.internal), cap);
    EXPECT_EQ(result.final_cost, CostOfSelection(g, result.internal));
    size_t count = 0;
    for (bool b : result.internal) count += b;
    EXPECT_EQ(count, result.num_internal);
  }
}

TEST(GreedySelectorTest, PrunesGiantProperty) {
  // One property forms a 51-vertex chain; with |V| = 101 and k = 4 the
  // cap is ~27, so the chain alone is infeasible and gets pruned.
  rdf::GraphBuilder builder;
  for (int i = 0; i < 50; ++i) {
    builder.Add("<t:v" + std::to_string(i) + ">", "<t:chain>",
                "<t:v" + std::to_string(i + 1) + ">");
    builder.Add("<t:v" + std::to_string(i) + ">", "<t:attr>",
                "\"lit" + std::to_string(i) + "\"");
  }
  RdfGraph g = builder.Build();
  SelectorOptions options{.base = {.k = 4, .epsilon = 0.1}};
  SelectionResult result = GreedySelector(options).Select(g);
  rdf::PropertyId chain = g.property_dict().Lookup("<t:chain>");
  EXPECT_FALSE(result.internal[chain]);
  EXPECT_EQ(result.pruned_properties, 1u);
  rdf::PropertyId attr = g.property_dict().Lookup("<t:attr>");
  EXPECT_TRUE(result.internal[attr]);
}

TEST(GreedySelectorTest, EmptyGraph) {
  rdf::GraphBuilder builder;
  RdfGraph g = builder.Build();
  SelectorOptions options{.base = {.k = 2, .epsilon = 0.1}};
  SelectionResult result = GreedySelector(options).Select(g);
  EXPECT_EQ(result.num_internal, 0u);
  EXPECT_EQ(result.final_cost, 0u);
}

TEST(BackwardSelectorTest, RespectsCapAndMatchesCount) {
  Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    RdfGraph g = testutil::RandomGraph(rng, 120, 360, 12, /*community=*/12);
    SelectorOptions options{.base = {.k = 4, .epsilon = 0.1}};
    SelectionResult result = BackwardSelector(options).Select(g);
    size_t cap = BalanceCap(g, options.base.k, options.base.epsilon);
    EXPECT_LE(CostOfSelection(g, result.internal), cap);
    size_t count = 0;
    for (bool b : result.internal) count += b;
    EXPECT_EQ(count, result.num_internal);
  }
}

TEST(BackwardSelectorTest, KeepsEverythingWhenFeasible) {
  // Disconnected tiny components: all properties can stay internal.
  RdfGraph g = testutil::BuildGraph({
      {"a", "p1", "b"},
      {"c", "p2", "d"},
      {"e", "p3", "f"},
  });
  SelectorOptions options{.base = {.k = 2, .epsilon = 0.5}};  // cap = 4.5
  SelectionResult result = BackwardSelector(options).Select(g);
  EXPECT_EQ(result.num_internal, 3u);
}

TEST(ExactSelectorTest, MatchesBruteForceOnSmallGraphs) {
  Rng rng(29);
  for (int round = 0; round < 12; ++round) {
    RdfGraph g = testutil::RandomGraph(rng, 24, 60, 8, /*community=*/6);
    SelectorOptions options{.base = {.k = 3, .epsilon = 0.2}};
    size_t cap = BalanceCap(g, options.base.k, options.base.epsilon);
    SelectionResult exact = ExactSelector(options).Select(g);
    EXPECT_TRUE(exact.optimal);
    EXPECT_LE(CostOfSelection(g, exact.internal), cap);
    EXPECT_EQ(exact.num_internal, BruteForceOptimum(g, cap))
        << "round " << round;
  }
}

TEST(ExactSelectorTest, NeverWorseThanGreedy) {
  Rng rng(31);
  for (int round = 0; round < 8; ++round) {
    RdfGraph g = testutil::RandomGraph(rng, 60, 200, 10, /*community=*/10);
    SelectorOptions options{.base = {.k = 4, .epsilon = 0.1}};
    SelectionResult greedy = GreedySelector(options).Select(g);
    SelectionResult exact = ExactSelector(options).Select(g);
    EXPECT_GE(exact.num_internal, greedy.num_internal);
  }
}

TEST(ExactSelectorTest, BudgetExhaustionFallsBackGracefully) {
  Rng rng(37);
  RdfGraph g = testutil::RandomGraph(rng, 100, 400, 16, /*community=*/10);
  SelectorOptions options{.base = {.k = 4, .epsilon = 0.1}};
  options.exact_node_budget = 10;  // absurdly small
  SelectionResult result = ExactSelector(options).Select(g);
  EXPECT_FALSE(result.optimal);
  // Still a feasible answer (the greedy seed).
  EXPECT_LE(CostOfSelection(g, result.internal),
            BalanceCap(g, options.base.k, options.base.epsilon));
}

TEST(AutoSelectorTest, SwitchesOnPropertyCount) {
  Rng rng(41);
  RdfGraph small = testutil::RandomGraph(rng, 50, 150, 5, 10);
  SelectorOptions options{.base = {.k = 2, .epsilon = 0.2}};
  // threshold 3 < 5 properties -> backward; both must be feasible anyway.
  SelectionResult via_auto = AutoSelector(options, 3).Select(small);
  SelectionResult via_backward = BackwardSelector(options).Select(small);
  EXPECT_EQ(via_auto.num_internal, via_backward.num_internal);
  SelectionResult via_auto2 = AutoSelector(options, 100).Select(small);
  SelectionResult via_greedy = GreedySelector(options).Select(small);
  EXPECT_EQ(via_auto2.num_internal, via_greedy.num_internal);
}

// Monotonicity property: growing epsilon (a looser cap) never shrinks
// the greedy internal set size.
TEST(GreedySelectorTest, MonotoneInEpsilon) {
  Rng rng(43);
  RdfGraph g = testutil::RandomGraph(rng, 150, 450, 10, /*community=*/15);
  size_t prev = 0;
  for (double eps : {0.0, 0.1, 0.5, 1.0, 4.0}) {
    SelectorOptions options{.base = {.k = 4, .epsilon = eps}};
    SelectionResult result = GreedySelector(options).Select(g);
    EXPECT_GE(result.num_internal, prev) << "eps=" << eps;
    prev = result.num_internal;
  }
}

}  // namespace
}  // namespace mpc::core

#include "obs/metrics.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "exec/distributed_executor.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "obs/json.h"
#include "test_util.h"

namespace mpc::obs {
namespace {

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 bounds + overflow

  h.Observe(0.5);  // -> bucket 0
  h.Observe(1.0);  // inclusive: still bucket 0
  h.Observe(1.5);  // -> bucket 1
  h.Observe(2.0);  // inclusive: bucket 1
  h.Observe(4.0);  // inclusive: bucket 2
  h.Observe(9.0);  // -> overflow

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0, 1e-9);
}

TEST(HistogramTest, QuantilesOnKnownUniformDistribution) {
  // 100 observations 1..100 against bounds 10,20,...,100: every bucket
  // holds exactly 10 values, so the interpolated quantile estimate is
  // within one bucket width of the exact order statistic.
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.Observe(v);

  EXPECT_NEAR(h.Quantile(0.50), 50.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 10.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.50), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
  // Extremes stay within the observed range.
  EXPECT_GE(h.Quantile(0.0), 0.0);
  EXPECT_LE(h.Quantile(1.0), 100.0);
}

TEST(HistogramTest, P99LandsInOverflowClampsToLastBound) {
  Histogram h({1.0, 10.0});
  for (int i = 0; i < 100; ++i) h.Observe(1000.0);
  // Everything is in the overflow bucket; the estimate clamps to the
  // last finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram h(DefaultLatencyBoundsMs());
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistryTest, CounterAtomicUnderParallelFor) {
  MetricsRegistry registry;
  Counter& counter = registry.CounterRef("parallel.increments");
  constexpr size_t kItems = 100000;
  ParallelFor(0, kItems, /*grain=*/64, /*num_threads=*/8,
              [&](size_t) { counter.Inc(); });
  EXPECT_EQ(counter.value(), kItems);

  Histogram& hist = registry.HistogramRef("parallel.values", {0.5});
  ParallelFor(0, kItems, /*grain=*/64, /*num_threads=*/8,
              [&](size_t i) { hist.Observe(i % 2 == 0 ? 0.0 : 1.0); });
  EXPECT_EQ(hist.count(), kItems);
  EXPECT_EQ(hist.bucket_count(0) + hist.bucket_count(1), kItems);
  EXPECT_EQ(hist.bucket_count(0), kItems / 2);
}

TEST(MetricsRegistryTest, RefsAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& a = registry.CounterRef("same.name");
  Counter& b = registry.CounterRef("same.name");
  EXPECT_EQ(&a, &b);
  a.Inc(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g = registry.GaugeRef("a.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(registry.GaugeRef("a.gauge").value(), 2.5);

  // Histogram bounds apply only on first creation.
  Histogram& h = registry.HistogramRef("a.hist", {1.0, 2.0});
  Histogram& h2 = registry.HistogramRef("a.hist", {99.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, JsonExportRoundTrips) {
  MetricsRegistry registry;
  registry.CounterRef("c.one").Inc(7);
  registry.GaugeRef("g.ratio").Set(0.25);
  Histogram& h = registry.HistogramRef("h.lat", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);

  Result<JsonValue> parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Find("counters");
  const JsonValue* gauges = parsed->Find("gauges");
  const JsonValue* histograms = parsed->Find("histograms");
  ASSERT_TRUE(counters && counters->is_object());
  ASSERT_TRUE(gauges && gauges->is_object());
  ASSERT_TRUE(histograms && histograms->is_object());

  ASSERT_NE(counters->Find("c.one"), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("c.one")->number, 7.0);
  ASSERT_NE(gauges->Find("g.ratio"), nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("g.ratio")->number, 0.25);

  const JsonValue* hist = histograms->Find("h.lat");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->is_object());
  ASSERT_NE(hist->Find("count"), nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 2.0);
}

// --- Regression: the executor's flushed counters mirror its
// ExecutionStats exactly on a seeded fault run. ---

TEST(ExecMetricsRegressionTest, CountersMatchExecutionStatsUnderFaults) {
  Rng rng(5);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 60, 240, 5,
                                              /*community=*/12,
                                              /*escape=*/0.2);
  core::MpcOptions options;
  options.base.k = 8;
  options.base.epsilon = 0.3;
  options.base.seed = 3;
  exec::Cluster cluster =
      exec::Cluster::Build(core::MpcPartitioner(options).Partition(graph));

  exec::DistributedExecutor::Options exec_options;
  exec_options.faults.seed = 99;
  exec_options.faults.crash_rate = 0.15;
  exec_options.faults.transient_rate = 0.2;
  exec_options.faults.slowdown_rate = 0.1;
  exec_options.network.site_timeout_ms = 25.0;
  exec_options.partial_results = exec::PartialResultPolicy::kBestEffort;
  exec::DistributedExecutor executor(cluster, graph, exec_options);

  MetricsRegistry::Default().ResetForTest();
  uint64_t queries = 0;
  uint64_t retries = 0;
  uint64_t sites_failed = 0;
  uint64_t sites_evaluated = 0;
  uint64_t failover_hits = 0;
  uint64_t rows = 0;
  for (const std::string& text :
       {std::string("SELECT * WHERE { ?x <t:p0> ?y . ?x <t:p1> ?z . }"),
        std::string("SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . "
                    "?c <t:p2> ?d . }")}) {
    sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
    Result<exec::QueryResponse> response =
        executor.Execute(exec::QueryRequest::FromQuery(query));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const exec::ExecutionStats& stats = response->stats;
    ++queries;
    retries += stats.retries;
    sites_failed += stats.sites_failed;
    sites_evaluated += stats.sites_evaluated;
    failover_hits += stats.failover_hits;
    rows += stats.num_results;
  }
  // The seeded fault model must actually exercise the retry path,
  // otherwise this test would pass vacuously.
  ASSERT_GT(retries + sites_failed, 0u);

  MetricsRegistry& metrics = MetricsRegistry::Default();
  EXPECT_EQ(metrics.CounterRef("exec.queries").value(), queries);
  EXPECT_EQ(metrics.CounterRef("exec.retries").value(), retries);
  EXPECT_EQ(metrics.CounterRef("exec.sites_failed").value(), sites_failed);
  EXPECT_EQ(metrics.CounterRef("exec.sites_evaluated").value(),
            sites_evaluated);
  EXPECT_EQ(metrics.CounterRef("exec.failover_hits").value(), failover_hits);
  EXPECT_EQ(metrics.CounterRef("exec.rows_returned").value(), rows);
  EXPECT_EQ(metrics.HistogramRef("exec.total_ms").count(), queries);
}

}  // namespace
}  // namespace mpc::obs

#include "exec/distributed_executor.h"

#include <memory>

#include "common/random.h"
#include "exec/gstored_executor.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "partition/edge_cut_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "test_util.h"

namespace mpc::exec {
namespace {

using rdf::RdfGraph;
using store::BindingTable;

/// Queries spanning every IEQ class over graphs with 5 properties
/// p0..p4 (as produced by testutil::RandomGraph).
std::vector<std::string> TestQueries() {
  return {
      // star, 1 edge
      "SELECT * WHERE { ?x <t:p0> ?y . }",
      // star, 2 out-edges
      "SELECT * WHERE { ?x <t:p0> ?y . ?x <t:p1> ?z . }",
      // in/out star
      "SELECT * WHERE { ?a <t:p2> ?x . ?x <t:p3> ?b . }",
      // path of 3
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?c <t:p2> ?d . }",
      // triangle
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?a <t:p2> ?c . }",
      // variable predicate in the middle of a path
      "SELECT * WHERE { ?a <t:p0> ?b . ?b ?p ?c . ?c <t:p1> ?d . }",
      // star with variable predicate
      "SELECT * WHERE { ?x ?p ?y . ?x <t:p4> ?z . }",
      // 4-edge snowflake
      "SELECT * WHERE { ?x <t:p0> ?a . ?x <t:p1> ?b . ?b <t:p2> ?c . ?b "
      "<t:p3> ?d . }",
  };
}

enum class Strategy { kMpc, kHash, kMetis, kVp };

partition::Partitioning MakePartitioning(Strategy strategy,
                                         const RdfGraph& graph, uint32_t k,
                                         uint64_t seed) {
  partition::PartitionerOptions base{.k = k, .epsilon = 0.3, .seed = seed};
  switch (strategy) {
    case Strategy::kMpc: {
      core::MpcOptions options;
      options.base.k = k;
      options.base.epsilon = 0.3;
      options.base.seed = seed;
      return core::MpcPartitioner(options).Partition(graph);
    }
    case Strategy::kHash:
      return partition::SubjectHashPartitioner(base).Partition(graph);
    case Strategy::kMetis:
      return partition::EdgeCutPartitioner(base).Partition(graph);
    case Strategy::kVp:
      return partition::VpPartitioner(base).Partition(graph);
  }
  return partition::Partitioning{};
}

struct ExecCase {
  Strategy strategy;
  uint32_t k;
  uint64_t seed;
};

class ExecutorCorrectnessTest : public ::testing::TestWithParam<ExecCase> {};

// THE core soundness property of the whole system: for every strategy and
// every query class, the distributed result equals the single-store
// ground truth (Definition 3.7 when independent; decompose+join
// otherwise).
TEST_P(ExecutorCorrectnessTest, MatchesGroundTruth) {
  const auto [strategy, k, seed] = GetParam();
  Rng rng(seed);
  RdfGraph graph =
      testutil::RandomGraph(rng, 60, 220, 5, /*community=*/12,
                            /*escape=*/0.15);
  Cluster cluster =
      Cluster::Build(MakePartitioning(strategy, graph, k, seed));
  DistributedExecutor executor(cluster, graph);

  for (const std::string& text : TestQueries()) {
    sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
    Result<QueryResponse> response =
        executor.Execute(QueryRequest::FromQuery(query));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    BindingTable truth = testutil::GroundTruth(graph, query);
    EXPECT_EQ(testutil::RowSet(response->bindings), testutil::RowSet(truth))
        << "query: " << text
        << "\nclass: " << IeqClassName(response->stats.cls)
        << " rows: " << response->bindings.num_rows() << " vs "
        << truth.num_rows();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorCorrectnessTest,
    ::testing::Values(ExecCase{Strategy::kMpc, 2, 101},
                      ExecCase{Strategy::kMpc, 4, 102},
                      ExecCase{Strategy::kMpc, 8, 103},
                      ExecCase{Strategy::kHash, 2, 104},
                      ExecCase{Strategy::kHash, 4, 105},
                      ExecCase{Strategy::kHash, 8, 106},
                      ExecCase{Strategy::kMetis, 4, 107},
                      ExecCase{Strategy::kMetis, 8, 108},
                      ExecCase{Strategy::kVp, 2, 109},
                      ExecCase{Strategy::kVp, 4, 110},
                      ExecCase{Strategy::kVp, 8, 111}));

TEST(ExecutorStatsTest, IeqHasZeroJoinTimeAndOneSubquery) {
  Rng rng(7);
  RdfGraph graph = testutil::RandomGraph(rng, 40, 120, 4, 10);
  core::MpcOptions options;
  options.base.k = 4;
  options.base.epsilon = 0.3;
  Cluster cluster =
      Cluster::Build(core::MpcPartitioner(options).Partition(graph));
  DistributedExecutor executor(cluster, graph);

  sparql::QueryGraph star = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:p0> ?a . ?x <t:p1> ?b . }");
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(star));
  ASSERT_TRUE(response.ok());
  const ExecutionStats& stats = response->stats;
  EXPECT_TRUE(stats.independent);
  EXPECT_EQ(stats.num_subqueries, 1u);
  EXPECT_EQ(stats.join_millis, 0.0);
  EXPECT_GT(stats.total_millis, 0.0);
}

TEST(ExecutorStatsTest, NonIeqReportsSubqueries) {
  Rng rng(8);
  RdfGraph graph = testutil::RandomGraph(rng, 40, 120, 4, 10);
  // Subject hash: almost everything crossing -> path query decomposes.
  partition::PartitionerOptions options{.k = 4, .epsilon = 0.3, .seed = 9};
  Cluster cluster = Cluster::Build(
      partition::SubjectHashPartitioner(options).Partition(graph));
  DistributedExecutor executor(cluster, graph);
  sparql::QueryGraph path = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?c <t:p2> ?d . }");
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(path));
  ASSERT_TRUE(response.ok());
  if (!response->stats.independent) {
    EXPECT_GE(response->stats.num_subqueries, 2u);
  }
}

TEST(ExecutorTest, ExecuteTextParsesAndRuns) {
  Rng rng(9);
  RdfGraph graph = testutil::RandomGraph(rng, 30, 90, 3);
  partition::PartitionerOptions options{.k = 2, .epsilon = 0.3, .seed = 1};
  Cluster cluster = Cluster::Build(
      partition::SubjectHashPartitioner(options).Partition(graph));
  DistributedExecutor executor(cluster, graph);
  EXPECT_TRUE(
      executor
          .Execute(QueryRequest::FromText("SELECT * WHERE { ?x <t:p0> ?y . }"))
          .ok());
  Result<QueryResponse> bad =
      executor.Execute(QueryRequest::FromText("NOT SPARQL"));
  ASSERT_FALSE(bad.ok());
  // Regression: a failed parse must name the offending query, so a bad
  // line in a thousand-query replay log can be found again.
  EXPECT_NE(bad.status().message().find("NOT SPARQL"), std::string::npos)
      << bad.status().ToString();
}

TEST(ExecutorTest, LimitClauseTruncatesResults) {
  Rng rng(15);
  RdfGraph graph = testutil::RandomGraph(rng, 30, 200, 2);
  partition::PartitionerOptions options{.k = 2, .epsilon = 0.3, .seed = 1};
  Cluster cluster = Cluster::Build(
      partition::SubjectHashPartitioner(options).Partition(graph));
  DistributedExecutor executor(cluster, graph);
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:p0> ?y . } LIMIT 3");
  Result<QueryResponse> response = executor.Execute(QueryRequest::FromQuery(q));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->bindings.num_rows(), 3u);
}

TEST(ExecutorTest, MaxRowsCapsResults) {
  Rng rng(10);
  RdfGraph graph = testutil::RandomGraph(rng, 30, 200, 2);
  partition::PartitionerOptions options{.k = 2, .epsilon = 0.3, .seed = 1};
  Cluster cluster = Cluster::Build(
      partition::SubjectHashPartitioner(options).Partition(graph));
  DistributedExecutor::Options exec_options;
  exec_options.max_rows = 5;
  DistributedExecutor executor(cluster, graph, exec_options);
  sparql::QueryGraph q =
      testutil::ParseQueryOrDie("SELECT * WHERE { ?x <t:p0> ?y . }");
  Result<QueryResponse> response = executor.Execute(QueryRequest::FromQuery(q));
  ASSERT_TRUE(response.ok());
  // Per-site cap of 5 over 2 sites: at most 10 before dedup.
  EXPECT_LE(response->bindings.num_rows(), 10u);
}

// gStoreD-style partial evaluation must agree with ground truth too.
TEST(GStoredExecutorTest, MatchesGroundTruth) {
  Rng rng(11);
  for (uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    RdfGraph graph = testutil::RandomGraph(rng, 50, 180, 5, 10, 0.2);
    Cluster cluster = Cluster::Build(
        MakePartitioning(Strategy::kHash, graph, 4, seed));
    GStoredExecutor executor(cluster, graph);
    for (const std::string& text : TestQueries()) {
      sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
      Result<QueryResponse> response =
          executor.Execute(QueryRequest::FromQuery(query));
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      BindingTable truth = testutil::GroundTruth(graph, query);
      EXPECT_EQ(testutil::RowSet(response->bindings), testutil::RowSet(truth))
          << "query: " << text;
    }
  }
}

TEST(GStoredExecutorTest, RejectsEdgeDisjointPartitioning) {
  Rng rng(12);
  RdfGraph graph = testutil::RandomGraph(rng, 20, 60, 3);
  Cluster cluster =
      Cluster::Build(MakePartitioning(Strategy::kVp, graph, 2, 1));
  GStoredExecutor executor(cluster, graph);
  sparql::QueryGraph q =
      testutil::ParseQueryOrDie("SELECT * WHERE { ?x <t:p0> ?y . }");
  EXPECT_FALSE(executor.Execute(QueryRequest::FromQuery(q)).ok());
}

TEST(GStoredExecutorTest, FewerCrossingPropertiesMeansFewerPartialRows) {
  // Fig. 11's mechanism: under MPC the fragment granularity is coarser,
  // so the total number of local partial matches is no larger than under
  // subject hashing.
  Rng rng(13);
  RdfGraph graph = testutil::RandomGraph(rng, 200, 700, 8, /*community=*/20,
                                         /*escape=*/0.05);
  Cluster mpc_cluster =
      Cluster::Build(MakePartitioning(Strategy::kMpc, graph, 4, 31));
  Cluster hash_cluster =
      Cluster::Build(MakePartitioning(Strategy::kHash, graph, 4, 31));
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?c <t:p2> ?d . }");
  Result<QueryResponse> mpc_response =
      GStoredExecutor(mpc_cluster, graph).Execute(QueryRequest::FromQuery(q));
  Result<QueryResponse> hash_response =
      GStoredExecutor(hash_cluster, graph).Execute(QueryRequest::FromQuery(q));
  ASSERT_TRUE(mpc_response.ok());
  ASSERT_TRUE(hash_response.ok());
  EXPECT_LE(mpc_response->stats.local_rows, hash_response->stats.local_rows);
  EXPECT_LE(mpc_response->stats.num_subqueries,
            hash_response->stats.num_subqueries);
}

TEST(ClusterTest, BuildsKSitesAndReportsLoading) {
  Rng rng(14);
  RdfGraph graph = testutil::RandomGraph(rng, 50, 150, 4);
  Cluster cluster =
      Cluster::Build(MakePartitioning(Strategy::kHash, graph, 3, 5));
  EXPECT_EQ(cluster.k(), 3u);
  EXPECT_GE(cluster.loading_millis(), 0.0);
  size_t total = 0;
  for (uint32_t i = 0; i < cluster.k(); ++i) {
    total += cluster.site(i).num_triples();
  }
  // Internal edges once + crossing replicas twice.
  EXPECT_GE(total, graph.num_edges());
  EXPECT_GT(cluster.MemoryUsage(), 0u);
}

}  // namespace
}  // namespace mpc::exec

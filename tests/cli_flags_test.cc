#include "common/flags.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace mpc {
namespace {

/// argv helper: keeps the strings alive and hands out char* like main().
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    for (std::string& s : strings) pointers.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers.size()); }
  char** argv() { return pointers.data(); }

  std::vector<std::string> strings;
  std::vector<char*> pointers;
};

TEST(FlagParserTest, ParsesTypedFlagsAndPositionals) {
  std::string strategy = "mpc";
  uint32_t k = 8;
  double epsilon = 0.1;
  uint64_t seed = 1;
  int threads = 0;
  std::vector<uint32_t> sites;
  FlagParser parser;
  parser.AddString("strategy", &strategy);
  parser.AddUint32("k", &k);
  parser.AddDouble("epsilon", &epsilon);
  parser.AddUint64("seed", &seed);
  parser.AddInt("threads", &threads);
  parser.AddUint32List("fail-sites", &sites);

  Argv args({"prog", "data.nt", "--strategy=vp", "--k=4", "--epsilon=0.25",
             "--seed=123", "--threads=-1", "--fail-sites=0,3,7", "out"});
  Result<std::vector<std::string>> positional =
      parser.Parse(args.argc(), args.argv(), 1);
  ASSERT_TRUE(positional.ok()) << positional.status().ToString();
  EXPECT_EQ(*positional, (std::vector<std::string>{"data.nt", "out"}));
  EXPECT_EQ(strategy, "vp");
  EXPECT_EQ(k, 4u);
  EXPECT_DOUBLE_EQ(epsilon, 0.25);
  EXPECT_EQ(seed, 123u);
  EXPECT_EQ(threads, -1);
  EXPECT_EQ(sites, (std::vector<uint32_t>{0, 3, 7}));
}

TEST(FlagParserTest, RejectsUnknownFlagNamingIt) {
  FlagParser parser;
  uint32_t k = 8;
  parser.AddUint32("k", &k);
  Argv args({"prog", "--kay=4"});
  Result<std::vector<std::string>> positional =
      parser.Parse(args.argc(), args.argv(), 1);
  ASSERT_FALSE(positional.ok());
  EXPECT_EQ(positional.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(positional.status().message().find("--kay"), std::string::npos)
      << positional.status().ToString();
}

TEST(FlagParserTest, RejectsFlagWithoutValue) {
  FlagParser parser;
  uint32_t k = 8;
  parser.AddUint32("k", &k);
  Argv args({"prog", "--k"});
  Result<std::vector<std::string>> positional =
      parser.Parse(args.argc(), args.argv(), 1);
  ASSERT_FALSE(positional.ok());
  EXPECT_NE(positional.status().message().find("--k"), std::string::npos);
}

TEST(FlagParserTest, RejectsMalformedNumbers) {
  FlagParser parser;
  uint32_t k = 8;
  double rate = 0.0;
  parser.AddUint32("k", &k);
  parser.AddDouble("fault-rate", &rate);
  for (const std::string& bad :
       {std::string("--k=8x"), std::string("--k=abc"),
        std::string("--fault-rate=0.1.2"), std::string("--k=")}) {
    Argv args({"prog", bad});
    Result<std::vector<std::string>> positional =
        parser.Parse(args.argc(), args.argv(), 1);
    EXPECT_FALSE(positional.ok()) << bad;
  }
  EXPECT_EQ(k, 8u);  // failed parses must not clobber defaults
}

TEST(FlagParserTest, RejectsMalformedListElement) {
  FlagParser parser;
  std::vector<uint32_t> sites;
  parser.AddUint32List("fail-sites", &sites);
  Argv args({"prog", "--fail-sites=0,x,2"});
  Result<std::vector<std::string>> positional =
      parser.Parse(args.argc(), args.argv(), 1);
  ASSERT_FALSE(positional.ok());
  EXPECT_TRUE(sites.empty());
}

TEST(FlagParserTest, EmptyListIsAllowed) {
  FlagParser parser;
  std::vector<uint32_t> sites{9};
  parser.AddUint32List("fail-sites", &sites);
  Argv args({"prog", "--fail-sites="});
  Result<std::vector<std::string>> positional =
      parser.Parse(args.argc(), args.argv(), 1);
  ASSERT_TRUE(positional.ok()) << positional.status().ToString();
  EXPECT_TRUE(sites.empty());
}

TEST(FlagParserTest, ChoiceRestrictsValues) {
  FlagParser parser;
  std::string policy = "fail";
  parser.AddChoice("partial-results", &policy, {"fail", "best-effort"});
  {
    Argv args({"prog", "--partial-results=best-effort"});
    ASSERT_TRUE(parser.Parse(args.argc(), args.argv(), 1).ok());
    EXPECT_EQ(policy, "best-effort");
  }
  {
    Argv args({"prog", "--partial-results=maybe"});
    Result<std::vector<std::string>> positional =
        parser.Parse(args.argc(), args.argv(), 1);
    ASSERT_FALSE(positional.ok());
    EXPECT_NE(positional.status().message().find("best-effort"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mpc

#include "mpc/weighted_selector.h"

#include "common/random.h"
#include "dsf/disjoint_set_forest.h"
#include "gtest/gtest.h"
#include "exec/query_classifier.h"
#include "mpc/mpc_partitioner.h"
#include "test_util.h"

namespace mpc::core {
namespace {

using rdf::RdfGraph;

size_t CostOf(const RdfGraph& g, const std::vector<bool>& mask) {
  dsf::DisjointSetForest forest(g.num_vertices());
  for (size_t p = 0; p < mask.size(); ++p) {
    if (mask[p]) {
      forest.AddEdges(g.EdgesWithProperty(static_cast<rdf::PropertyId>(p)));
    }
  }
  return forest.max_component_size();
}

/// Contention graph: two chain properties "hot" and "cold1"/"cold2" over
/// the same 8-vertex block, sized so the cap admits either {hot} or
/// {cold1, cold2} but not all three; plus independent filler blocks so
/// |V| sets a meaningful cap.
RdfGraph ContentionGraph() {
  rdf::GraphBuilder builder;
  auto v = [](int i) { return "<t:v" + std::to_string(i) + ">"; };
  // hot: connects v0..v7 (WCC 8).
  for (int i = 0; i < 7; ++i) builder.Add(v(i), "<t:hot>", v(i + 1));
  // cold1: v0..v4 (WCC 5); cold2: v4..v7 with v8 (overlap keeps them
  // joint with cold1 but separate from hot's full span only partially).
  for (int i = 0; i < 4; ++i) builder.Add(v(i), "<t:cold1>", v(i + 1));
  for (int i = 4; i < 8; ++i) builder.Add(v(i), "<t:cold2>", v(i + 1));
  // Filler singletons to pad |V| (24 extra vertices, attribute edges).
  for (int i = 100; i < 112; ++i) {
    builder.Add(v(i), "<t:attr>", v(i + 100));
  }
  return builder.Build();
}

TEST(WeightedSelectorTest, PrefersHeavyPropertyUnderContention) {
  RdfGraph g = ContentionGraph();
  // |V| = 9 + 24 = 33. Cap with k=2, eps=0.0: 16; too loose. Use k=4:
  // cap = 8 -> {hot} alone (WCC 8) is feasible; {cold1 ∪ cold2} (WCC 9,
  // via shared v4) is NOT; {cold1} (5) or {cold2} (5) are; {hot ∪ any
  // cold} is 8 or 9... construct weights so the test is decisive below.
  SelectorOptions options{.base = {.k = 4, .epsilon = 0.0}};
  const size_t cap = BalanceCap(g, options.base.k, options.base.epsilon);
  ASSERT_EQ(cap, 8u);

  rdf::PropertyId hot = g.property_dict().Lookup("<t:hot>");
  rdf::PropertyId cold1 = g.property_dict().Lookup("<t:cold1>");
  rdf::PropertyId cold2 = g.property_dict().Lookup("<t:cold2>");
  ASSERT_NE(hot, rdf::kInvalidVertex);

  // The unweighted greedy maximizes count: it prefers the two cheap cold
  // properties (each WCC 5... but together 9 > cap, so it takes one cold
  // + attr etc.). With weights making "hot" dominant, the weighted
  // selector must include hot.
  std::vector<double> weights(g.num_properties(), 1.0);
  weights[hot] = 100.0;
  WeightedGreedySelector weighted(options, weights);
  SelectionResult ws = weighted.Select(g);
  EXPECT_TRUE(ws.internal[hot]);
  EXPECT_LE(CostOf(g, ws.internal), cap);

  // Flip the weights: now the colds win and hot must be excluded
  // (hot ∪ cold1 spans v0..v7 = 8 <= cap... hot+cold1 is feasible!
  // hot ∪ cold2 also 8. hot ∪ cold1 ∪ cold2 = 9 > cap). So with cold-
  // heavy weights the selector takes both colds? cold1 ∪ cold2 = 9 > cap
  // -> it takes the heavier cold first, then whatever still fits.
  weights[hot] = 0.0;
  weights[cold1] = 10.0;
  weights[cold2] = 5.0;
  SelectionResult cs = WeightedGreedySelector(options, weights).Select(g);
  EXPECT_TRUE(cs.internal[cold1]);
  EXPECT_LE(CostOf(g, cs.internal), cap);
}

TEST(WeightedSelectorTest, UniformWeightsRespectCap) {
  Rng rng(61);
  for (int round = 0; round < 8; ++round) {
    RdfGraph g = testutil::RandomGraph(rng, 120, 360, 10, 12);
    SelectorOptions options{.base = {.k = 4, .epsilon = 0.1}};
    SelectionResult result =
        WeightedGreedySelector(options, {}).Select(g);
    EXPECT_LE(CostOf(g, result.internal),
              BalanceCap(g, options.base.k, options.base.epsilon));
    size_t count = 0;
    for (bool b : result.internal) count += b;
    EXPECT_EQ(count, result.num_internal);
  }
}

TEST(WeightedSelectorTest, InfeasiblePropertiesPruned) {
  rdf::GraphBuilder builder;
  for (int i = 0; i < 40; ++i) {
    builder.Add("<t:v" + std::to_string(i) + ">", "<t:giant>",
                "<t:v" + std::to_string(i + 1) + ">");
    builder.Add("<t:v" + std::to_string(i) + ">", "<t:tiny>",
                "\"x" + std::to_string(i) + "\"");
  }
  RdfGraph g = builder.Build();
  SelectorOptions options{.base = {.k = 4, .epsilon = 0.1}};
  std::vector<double> weights(g.num_properties(), 1.0);
  weights[g.property_dict().Lookup("<t:giant>")] = 1000.0;
  SelectionResult result =
      WeightedGreedySelector(options, weights).Select(g);
  // Even at weight 1000, an infeasible property stays out.
  EXPECT_FALSE(result.internal[g.property_dict().Lookup("<t:giant>")]);
  EXPECT_EQ(result.pruned_properties, 1u);
}

/// Tie-break fixture: pX (id 0, WCC 5) and pY (id 1, WCC 4) are mutually
/// exclusive under cap 6 (their union spans 8 vertices), pad (id 2) is 8
/// disjoint pairs (WCC 2). |V| = 24, k=4, eps=0 -> cap 6.
RdfGraph TieBreakGraph() {
  rdf::GraphBuilder builder;
  auto v = [](int i) { return "<t:v" + std::to_string(i) + ">"; };
  for (int i = 0; i < 4; ++i) builder.Add(v(i), "<t:pX>", v(i + 1));
  for (int i = 4; i < 7; ++i) builder.Add(v(i), "<t:pY>", v(i + 1));
  for (int i = 0; i < 8; ++i) {
    builder.Add("<t:w" + std::to_string(i) + "a>", "<t:pad>",
                "<t:w" + std::to_string(i) + "b>");
  }
  return builder.Build();
}

TEST(WeightedSelectorTest, EqualWeightTieBreaksOnTrialCostThenId) {
  RdfGraph g = TieBreakGraph();
  SelectorOptions options{.base = {.k = 4, .epsilon = 0.0}};
  ASSERT_EQ(BalanceCap(g, options.base.k, options.base.epsilon), 6u);
  rdf::PropertyId pX = g.property_dict().Lookup("<t:pX>");
  rdf::PropertyId pY = g.property_dict().Lookup("<t:pY>");
  rdf::PropertyId pad = g.property_dict().Lookup("<t:pad>");

  // All weights equal: the documented rule breaks the tie on trial cost,
  // so pY (WCC 4) must beat pX (WCC 5) even though pX has the lower id —
  // committing pX first would burn the budget and lock pY out.
  std::vector<double> weights(g.num_properties(), 1.0);
  SelectionResult result = WeightedGreedySelector(options, weights).Select(g);
  EXPECT_TRUE(result.internal[pad]);  // cheapest, committed first
  EXPECT_TRUE(result.internal[pY]);
  EXPECT_FALSE(result.internal[pX]);  // mutually exclusive with pY
  EXPECT_EQ(result.num_internal, 2u);
}

TEST(WeightedSelectorTest, TieBreakIsDeterministicAcrossThreadCounts) {
  RdfGraph g = TieBreakGraph();
  std::vector<double> weights(g.num_properties(), 1.0);
  std::vector<std::vector<bool>> masks;
  for (int threads : {1, 2, 8}) {
    SelectorOptions options{
        .base = {.k = 4, .epsilon = 0.0, .num_threads = threads}};
    masks.push_back(WeightedGreedySelector(options, weights).Select(g).internal);
  }
  EXPECT_EQ(masks[0], masks[1]);
  EXPECT_EQ(masks[0], masks[2]);
}

TEST(WeightedSelectorTest, UnseenPropertiesStillPickedUpAfterWeightedOnes) {
  RdfGraph g = TieBreakGraph();
  SelectorOptions options{.base = {.k = 4, .epsilon = 0.0}};
  rdf::PropertyId pX = g.property_dict().Lookup("<t:pX>");
  rdf::PropertyId pY = g.property_dict().Lookup("<t:pY>");
  rdf::PropertyId pad = g.property_dict().Lookup("<t:pad>");

  // The weight vector only covers pX (a one-entry workload): pY and pad
  // fall back to default_weight 0 but must still be committed once the
  // weighted property is in — data-only properties are not locked out.
  std::vector<double> short_weights = {5.0};
  SelectionResult result =
      WeightedGreedySelector(options, short_weights).Select(g);
  EXPECT_TRUE(result.internal[pX]);   // the only weighted property
  EXPECT_FALSE(result.internal[pY]);  // now infeasible next to pX
  EXPECT_TRUE(result.internal[pad]);  // unseen, still picked up
}

TEST(WorkloadWeightsTest, CountsQueriesNotPatterns) {
  Rng rng(67);
  RdfGraph g = testutil::RandomGraph(rng, 20, 60, 3);
  std::vector<sparql::QueryGraph> queries;
  // Query 1 uses p0 twice and p1 once; query 2 uses p0 once.
  queries.push_back(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p0> ?c . ?c <t:p1> ?d . }"));
  queries.push_back(
      testutil::ParseQueryOrDie("SELECT * WHERE { ?x <t:p0> ?y . }"));
  std::vector<double> weights = ComputeWorkloadPropertyWeights(queries, g);
  EXPECT_DOUBLE_EQ(weights[g.property_dict().Lookup("<t:p0>")], 2.0);
  EXPECT_DOUBLE_EQ(weights[g.property_dict().Lookup("<t:p1>")], 1.0);
  EXPECT_DOUBLE_EQ(weights[g.property_dict().Lookup("<t:p2>")], 0.0);
}

TEST(WeightedMpcTest, EndToEndImprovesWorkloadIeqShare) {
  // Graph with two "bridge" properties between communities: the workload
  // only ever queries bridge1. The cap admits at most one bridge, so the
  // weighted MPC keeps bridge1 internal and localizes the workload,
  // while uniform MPC may pick either.
  rdf::GraphBuilder builder;
  auto cv = [](int c, int i) {
    return "<t:c" + std::to_string(c) + "v" + std::to_string(i) + ">";
  };
  const int kCommunities = 12, kSize = 10;
  for (int c = 0; c < kCommunities; ++c) {
    for (int i = 0; i + 1 < kSize; ++i) {
      builder.Add(cv(c, i), "<t:local>", cv(c, i + 1));
    }
  }
  // bridge1 chains communities 0-5; bridge2 chains communities 6-11.
  for (int c = 0; c < 5; ++c) {
    builder.Add(cv(c, 0), "<t:bridge1>", cv(c + 1, 0));
  }
  for (int c = 6; c < 11; ++c) {
    builder.Add(cv(c, 0), "<t:bridge2>", cv(c + 1, 0));
  }
  RdfGraph g = builder.Build();
  // |V| = 120; k=2, eps=0.0 -> cap 60 = exactly one 6-community block.

  std::vector<sparql::QueryGraph> workload;
  workload.push_back(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:bridge1> ?b . ?b <t:local> ?c . ?b "
      "<t:bridge1> ?d . ?d <t:local> ?e . }"));

  MpcOptions options;
  options.base.k = 2;
  options.base.epsilon = 0.0;
  options.strategy = SelectionStrategy::kWeighted;
  options.property_weights = ComputeWorkloadPropertyWeights(workload, g);
  partition::Partitioning weighted =
      MpcPartitioner(options).Partition(g);
  rdf::PropertyId bridge1 = g.property_dict().Lookup("<t:bridge1>");
  EXPECT_FALSE(weighted.IsCrossingProperty(bridge1));
  // And the workload query is independently executable.
  exec::Classification cls =
      exec::ClassifyQuery(workload[0], weighted, g);
  EXPECT_TRUE(cls.independently_executable());
}

}  // namespace
}  // namespace mpc::core

#include "exec/network_model.h"

#include <cmath>
#include <cstdint>

#include "exec/query_classifier.h"
#include "gtest/gtest.h"

namespace mpc::exec {
namespace {

TEST(NetworkModelTest, TransferCombinesLatencyAndBandwidth) {
  NetworkModel net;
  net.latency_ms = 1.0;
  net.bytes_per_ms = 1000.0;
  // 3 messages * 1ms + 5000 bytes / 1000 B/ms = 8ms.
  EXPECT_DOUBLE_EQ(net.TransferMillis(5000, 3), 8.0);
  EXPECT_DOUBLE_EQ(net.TransferMillis(0, 0), 0.0);
}

TEST(NetworkModelTest, DispatchIsPerSiteLatency) {
  NetworkModel net;
  net.latency_ms = 0.5;
  EXPECT_DOUBLE_EQ(net.DispatchMillis(8), 4.0);
  EXPECT_DOUBLE_EQ(net.DispatchMillis(0), 0.0);
}

TEST(NetworkModelTest, DefaultsModelScaledDownBandwidth) {
  NetworkModel net;
  // See the header: 1 MB/s default compensates the ~1000x dataset
  // scale-down. 1 MB should take ~1000 ms + latency.
  EXPECT_NEAR(net.TransferMillis(1'000'000, 1), 1000.0 + net.latency_ms,
              1e-9);
}

TEST(NetworkModelTest, TransferEdgeCases) {
  NetworkModel net;
  net.latency_ms = 1.0;
  net.bytes_per_ms = 1000.0;
  // 0 bytes: pure latency.
  EXPECT_DOUBLE_EQ(net.TransferMillis(0, 4), 4.0);
  // 0 messages: pure bandwidth.
  EXPECT_DOUBLE_EQ(net.TransferMillis(2000, 0), 2.0);
  // Huge byte counts survive the double conversion without overflow or
  // sign trouble (SIZE_MAX ~ 1.8e19 bytes / 1e3 B/ms ~ 1.8e16 ms).
  const double huge = net.TransferMillis(SIZE_MAX, 1);
  EXPECT_GT(huge, 1e15);
  EXPECT_TRUE(std::isfinite(huge));
  // Monotone in both arguments.
  EXPECT_LE(net.TransferMillis(100, 1), net.TransferMillis(101, 1));
  EXPECT_LE(net.TransferMillis(100, 1), net.TransferMillis(100, 2));
}

TEST(NetworkModelTest, BackoffDoublesPerAttempt) {
  NetworkModel net;
  net.retry_backoff_ms = 2.0;
  EXPECT_DOUBLE_EQ(net.BackoffMillis(0), 2.0);
  EXPECT_DOUBLE_EQ(net.BackoffMillis(1), 4.0);
  EXPECT_DOUBLE_EQ(net.BackoffMillis(4), 32.0);
}

TEST(NetworkModelTest, FailureDetectUsesDeadlineWhenConfigured) {
  NetworkModel net;
  net.latency_ms = 0.5;
  EXPECT_FALSE(net.has_deadline());
  EXPECT_DOUBLE_EQ(net.FailureDetectMillis(), 0.5);
  net.site_timeout_ms = 40.0;
  EXPECT_TRUE(net.has_deadline());
  EXPECT_DOUBLE_EQ(net.FailureDetectMillis(), 40.0);
}

TEST(IeqClassNameTest, AllClassesNamed) {
  EXPECT_STREQ(IeqClassName(IeqClass::kInternal), "internal");
  EXPECT_STREQ(IeqClassName(IeqClass::kExtendedTypeI), "extended-type-I");
  EXPECT_STREQ(IeqClassName(IeqClass::kExtendedTypeII),
               "extended-type-II");
  EXPECT_STREQ(IeqClassName(IeqClass::kNonIeq), "non-IEQ");
}

}  // namespace
}  // namespace mpc::exec

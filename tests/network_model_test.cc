#include "exec/network_model.h"

#include "exec/query_classifier.h"
#include "gtest/gtest.h"

namespace mpc::exec {
namespace {

TEST(NetworkModelTest, TransferCombinesLatencyAndBandwidth) {
  NetworkModel net;
  net.latency_ms = 1.0;
  net.bytes_per_ms = 1000.0;
  // 3 messages * 1ms + 5000 bytes / 1000 B/ms = 8ms.
  EXPECT_DOUBLE_EQ(net.TransferMillis(5000, 3), 8.0);
  EXPECT_DOUBLE_EQ(net.TransferMillis(0, 0), 0.0);
}

TEST(NetworkModelTest, DispatchIsPerSiteLatency) {
  NetworkModel net;
  net.latency_ms = 0.5;
  EXPECT_DOUBLE_EQ(net.DispatchMillis(8), 4.0);
  EXPECT_DOUBLE_EQ(net.DispatchMillis(0), 0.0);
}

TEST(NetworkModelTest, DefaultsModelScaledDownBandwidth) {
  NetworkModel net;
  // See the header: 1 MB/s default compensates the ~1000x dataset
  // scale-down. 1 MB should take ~1000 ms + latency.
  EXPECT_NEAR(net.TransferMillis(1'000'000, 1), 1000.0 + net.latency_ms,
              1e-9);
}

TEST(IeqClassNameTest, AllClassesNamed) {
  EXPECT_STREQ(IeqClassName(IeqClass::kInternal), "internal");
  EXPECT_STREQ(IeqClassName(IeqClass::kExtendedTypeI), "extended-type-I");
  EXPECT_STREQ(IeqClassName(IeqClass::kExtendedTypeII),
               "extended-type-II");
  EXPECT_STREQ(IeqClassName(IeqClass::kNonIeq), "non-IEQ");
}

}  // namespace
}  // namespace mpc::exec

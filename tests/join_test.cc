#include "exec/join.h"

#include <set>

#include "gtest/gtest.h"

namespace mpc::exec {
namespace {

using store::BindingTable;

BindingTable Make(std::vector<uint32_t> vars,
                  std::vector<std::vector<uint32_t>> rows) {
  BindingTable t;
  t.var_ids = std::move(vars);
  t.rows = std::move(rows);
  return t;
}

std::set<std::vector<uint32_t>> Rows(const BindingTable& t) {
  return std::set<std::vector<uint32_t>>(t.rows.begin(), t.rows.end());
}

TEST(HashJoinTest, JoinsOnSharedVariable) {
  BindingTable left = Make({0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  BindingTable right = Make({1, 2}, {{10, 100}, {10, 101}, {30, 300}});
  BindingTable out = HashJoin(left, right);
  ASSERT_EQ(out.var_ids, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(Rows(out), (std::set<std::vector<uint32_t>>{
                           {1, 10, 100}, {1, 10, 101}, {3, 30, 300}}));
}

TEST(HashJoinTest, MultipleSharedVariables) {
  BindingTable left = Make({0, 1}, {{1, 2}, {3, 4}});
  BindingTable right = Make({1, 0}, {{2, 1}, {4, 9}});
  BindingTable out = HashJoin(left, right);
  // Shared on both columns; only (1,2) survives.
  EXPECT_EQ(Rows(out), (std::set<std::vector<uint32_t>>{{1, 2}}));
}

TEST(HashJoinTest, NoSharedVariablesIsCrossProduct) {
  BindingTable left = Make({0}, {{1}, {2}});
  BindingTable right = Make({1}, {{7}, {8}});
  BindingTable out = HashJoin(left, right);
  EXPECT_EQ(out.num_rows(), 4u);
}

TEST(HashJoinTest, EmptySideYieldsEmpty) {
  BindingTable left = Make({0}, {});
  BindingTable right = Make({0}, {{1}});
  EXPECT_EQ(HashJoin(left, right).num_rows(), 0u);
  EXPECT_EQ(HashJoin(right, left).num_rows(), 0u);
}

TEST(HashJoinTest, ZeroColumnExistenceTable) {
  // A satisfied all-constant subquery: one empty row acts as "true".
  BindingTable exists = Make({}, {{}});
  BindingTable data = Make({0}, {{5}, {6}});
  BindingTable out = HashJoin(data, exists);
  EXPECT_EQ(out.num_rows(), 2u);
  // Unsatisfied: zero rows annihilate.
  BindingTable missing = Make({}, {});
  EXPECT_EQ(HashJoin(data, missing).num_rows(), 0u);
}

TEST(JoinAllTest, ChainsThreeTables) {
  BindingTable a = Make({0, 1}, {{1, 2}, {5, 6}});
  BindingTable b = Make({1, 2}, {{2, 3}});
  BindingTable c = Make({2, 3}, {{3, 4}, {9, 9}});
  BindingTable out = JoinAll({a, b, c});
  ASSERT_EQ(out.num_rows(), 1u);
  // Columns may be permuted depending on join order; check as a map.
  std::vector<uint32_t> want_value{1, 2, 3, 4};
  for (size_t i = 0; i < out.var_ids.size(); ++i) {
    EXPECT_EQ(out.rows[0][i], want_value[out.var_ids[i]]);
  }
}

TEST(JoinAllTest, PrefersConnectedOrder) {
  // a and c share no vars; b bridges them. JoinAll must not be forced
  // into a useless cross product blowup (correct result regardless).
  BindingTable a = Make({0}, {{1}, {2}, {3}});
  BindingTable b = Make({0, 1}, {{1, 7}, {2, 8}});
  BindingTable c = Make({1}, {{7}});
  BindingTable out = JoinAll({a, c, b});
  EXPECT_EQ(out.num_rows(), 1u);
}

TEST(JoinAllTest, SingleAndEmptyInputs) {
  EXPECT_EQ(JoinAll({}).num_rows(), 0u);
  BindingTable only = Make({2}, {{4}});
  BindingTable out = JoinAll({only});
  EXPECT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.var_ids, (std::vector<uint32_t>{2}));
}

}  // namespace
}  // namespace mpc::exec

// Miniature reproductions of the paper's headline experimental claims at
// test-friendly scales. The bench/ binaries regenerate the full tables;
// these tests pin the *shape* so regressions are caught in CI.

#include <map>

#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "exec/query_classifier.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "partition/edge_cut_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "sparql/parser.h"
#include "test_util.h"
#include "workload/datasets.h"

namespace mpc {
namespace {

using exec::Classification;
using exec::ClassifyQuery;
using exec::IsVpLocalQuery;
using partition::Partitioning;
using workload::DatasetId;
using workload::GeneratedDataset;
using workload::NamedQuery;

constexpr uint32_t kSites = 8;
constexpr double kEpsilon = 0.1;

Partitioning Mpc(const rdf::RdfGraph& g) {
  core::MpcOptions options;
  options.base.k = kSites;
  options.base.epsilon = kEpsilon;
  return core::MpcPartitioner(options).Partition(g);
}
Partitioning Hash(const rdf::RdfGraph& g) {
  partition::PartitionerOptions options{
      .k = kSites, .epsilon = kEpsilon, .seed = 1};
  return partition::SubjectHashPartitioner(options).Partition(g);
}
Partitioning Metis(const rdf::RdfGraph& g) {
  partition::PartitionerOptions options{
      .k = kSites, .epsilon = kEpsilon, .seed = 1};
  return partition::EdgeCutPartitioner(options).Partition(g);
}
Partitioning Vp(const rdf::RdfGraph& g) {
  partition::PartitionerOptions options{
      .k = kSites, .epsilon = kEpsilon, .seed = 1};
  return partition::VpPartitioner(options).Partition(g);
}

double IeqPercent(const std::vector<NamedQuery>& queries,
                  const Partitioning& p, const rdf::RdfGraph& g) {
  size_t ieq = 0;
  for (const NamedQuery& nq : queries) {
    sparql::QueryGraph q = testutil::ParseQueryOrDie(nq.sparql);
    if (p.kind() == partition::PartitioningKind::kEdgeDisjoint) {
      ieq += IsVpLocalQuery(q, p, g);
    } else {
      ieq += ClassifyQuery(q, p, g).independently_executable();
    }
  }
  return 100.0 * static_cast<double>(ieq) /
         static_cast<double>(queries.size());
}

// --- Table II shape: MPC cuts far fewer properties; METIS cuts fewer
// edges than MPC and Subject_Hash cuts the most. ---
TEST(TableIIShape, LubmCrossingProperties) {
  GeneratedDataset d = workload::MakeDataset(DatasetId::kLubm, 0.6, 1);
  Partitioning mpc = Mpc(d.graph);
  Partitioning hash = Hash(d.graph);
  Partitioning metis = Metis(d.graph);
  EXPECT_EQ(mpc.num_crossing_properties(), 5u);
  EXPECT_LT(mpc.num_crossing_properties(),
            metis.num_crossing_properties());
  EXPECT_LE(metis.num_crossing_properties(),
            hash.num_crossing_properties());
  // The tradeoff: METIS's objective targets raw edge cuts, so it stays in
  // MPC's ballpark there (within 25% at this scale) while both cut far
  // fewer edges than hashing.
  EXPECT_LE(metis.num_crossing_edges(),
            mpc.num_crossing_edges() * 5 / 4);
  EXPECT_LT(metis.num_crossing_edges(), hash.num_crossing_edges());
  EXPECT_LT(mpc.num_crossing_edges(), hash.num_crossing_edges());
  // Both balanced partitionings respect the vertex-count cap.
  EXPECT_LE(mpc.BalanceRatio(), 1.0 + kEpsilon + 1e-9);
}

TEST(TableIIShape, PropertyRichGraphsAmplifyTheGap) {
  // DBpedia/LGD regime: thousands of properties, MPC crossing set tiny.
  GeneratedDataset d = workload::MakeDataset(DatasetId::kLgd, 0.15, 1);
  Partitioning mpc = Mpc(d.graph);
  Partitioning hash = Hash(d.graph);
  EXPECT_LT(mpc.num_crossing_properties(), 20u);
  EXPECT_GT(hash.num_crossing_properties(),
            10 * mpc.num_crossing_properties());
}

// --- Table III shape: IEQ percentages. ---
TEST(TableIIIShape, LubmPercentages) {
  GeneratedDataset d = workload::MakeDataset(DatasetId::kLubm, 0.4, 1);
  EXPECT_DOUBLE_EQ(IeqPercent(d.benchmark_queries, Mpc(d.graph), d.graph),
                   100.0);
  double hash_pct =
      IeqPercent(d.benchmark_queries, Hash(d.graph), d.graph);
  EXPECT_NEAR(hash_pct, 71.43, 0.1);  // 10/14 star queries
}

TEST(TableIIIShape, Yago2Percentages) {
  GeneratedDataset d = workload::MakeDataset(DatasetId::kYago2, 0.4, 1);
  EXPECT_DOUBLE_EQ(IeqPercent(d.benchmark_queries, Mpc(d.graph), d.graph),
                   100.0);
  EXPECT_DOUBLE_EQ(IeqPercent(d.benchmark_queries, Hash(d.graph), d.graph),
                   0.0);
  EXPECT_DOUBLE_EQ(IeqPercent(d.benchmark_queries, Vp(d.graph), d.graph),
                   0.0);
}

TEST(TableIIIShape, Bio2RdfPercentages) {
  GeneratedDataset d = workload::MakeDataset(DatasetId::kBio2rdf, 0.2, 1);
  EXPECT_DOUBLE_EQ(IeqPercent(d.benchmark_queries, Mpc(d.graph), d.graph),
                   100.0);
  EXPECT_NEAR(IeqPercent(d.benchmark_queries, Hash(d.graph), d.graph),
              80.0, 0.1);  // 4/5 stars
}

TEST(TableIIIShape, QueryLogOrdering) {
  // On log-driven datasets: MPC% >= star-based baselines, VP lowest or
  // near-lowest (the paper's consistent ordering).
  GeneratedDataset d = workload::MakeDataset(DatasetId::kWatdiv, 0.2, 1);
  auto log = workload::MakeQueryLog(DatasetId::kWatdiv, d.graph, 150, 7);
  double mpc_pct = IeqPercent(log, Mpc(d.graph), d.graph);
  double hash_pct = IeqPercent(log, Hash(d.graph), d.graph);
  double vp_pct = IeqPercent(log, Vp(d.graph), d.graph);
  EXPECT_GE(mpc_pct, hash_pct);
  EXPECT_LT(vp_pct, mpc_pct);
}

// --- Fig. 7 / Table IV shape: on MPC every LUBM/YAGO2/Bio2RDF benchmark
// query runs join-free. ---
TEST(Fig7Shape, AllBenchmarkQueriesJoinFreeUnderMpc) {
  for (DatasetId id :
       {DatasetId::kLubm, DatasetId::kYago2, DatasetId::kBio2rdf}) {
    GeneratedDataset d = workload::MakeDataset(id, 0.2, 1);
    exec::Cluster cluster = exec::Cluster::Build(Mpc(d.graph));
    exec::DistributedExecutor executor(cluster, d.graph);
    for (const NamedQuery& nq : d.benchmark_queries) {
      sparql::QueryGraph q = testutil::ParseQueryOrDie(nq.sparql);
      Result<exec::QueryResponse> response =
          executor.Execute(exec::QueryRequest::FromQuery(q));
      ASSERT_TRUE(response.ok());
      EXPECT_TRUE(response->stats.independent)
          << workload::DatasetName(id) << "/" << nq.name;
      EXPECT_EQ(response->stats.join_millis, 0.0);
    }
  }
}

// --- Correctness across strategies on real benchmark queries. ---
TEST(EndToEnd, BenchmarkQueryResultsAgreeAcrossStrategies) {
  GeneratedDataset d = workload::MakeDataset(DatasetId::kLubm, 0.2, 1);
  std::vector<Partitioning> partitionings;
  partitionings.push_back(Mpc(d.graph));
  partitionings.push_back(Hash(d.graph));
  partitionings.push_back(Metis(d.graph));
  partitionings.push_back(Vp(d.graph));
  std::vector<exec::Cluster> clusters;
  for (Partitioning& p : partitionings) {
    clusters.push_back(exec::Cluster::Build(std::move(p)));
  }
  for (const NamedQuery& nq : d.benchmark_queries) {
    sparql::QueryGraph q = testutil::ParseQueryOrDie(nq.sparql);
    store::BindingTable truth = testutil::GroundTruth(d.graph, q);
    for (exec::Cluster& cluster : clusters) {
      exec::DistributedExecutor executor(cluster, d.graph);
      Result<exec::QueryResponse> response =
          executor.Execute(exec::QueryRequest::FromQuery(q));
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(testutil::RowSet(response->bindings), testutil::RowSet(truth))
          << nq.name;
    }
  }
}

// --- Table VII shape: the greedy selection is near-optimal on LUBM. ---
TEST(TableVIIShape, GreedyWithinOneOfExactOnLubm) {
  GeneratedDataset d = workload::MakeDataset(DatasetId::kLubm, 0.2, 1);
  core::SelectorOptions options{.base = {.k = kSites, .epsilon = kEpsilon}};
  core::SelectionResult greedy =
      core::GreedySelector(options).Select(d.graph);
  core::SelectionResult exact =
      core::ExactSelector(options).Select(d.graph);
  ASSERT_TRUE(exact.optimal);
  EXPECT_GE(greedy.num_internal + 1, exact.num_internal);
}

}  // namespace
}  // namespace mpc

#ifndef MPC_TESTS_TEST_UTIL_H_
#define MPC_TESTS_TEST_UTIL_H_

#include <array>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "store/bgp_matcher.h"
#include "store/triple_store.h"

namespace mpc::testutil {

/// Builds a graph from "s p o" triples of bare tokens; tokens are wrapped
/// as IRIs "<t:TOKEN>" (or kept as-is when they already look like a term).
inline rdf::RdfGraph BuildGraph(
    const std::vector<std::array<std::string, 3>>& triples) {
  rdf::GraphBuilder builder;
  auto wrap = [](const std::string& t) {
    if (!t.empty() && (t[0] == '<' || t[0] == '"' || t[0] == '_')) return t;
    return "<t:" + t + ">";
  };
  for (const auto& [s, p, o] : triples) {
    builder.Add(wrap(s), wrap(p), wrap(o));
  }
  return builder.Build();
}

/// Shorthand term for queries built against BuildGraph: "?x" stays a
/// variable, anything else becomes "<t:...>".
inline std::string T(const std::string& t) {
  if (!t.empty() && (t[0] == '?' || t[0] == '<' || t[0] == '"')) return t;
  return "<t:" + t + ">";
}

/// Parses a query or aborts the test.
inline sparql::QueryGraph ParseQueryOrDie(const std::string& text) {
  Result<sparql::QueryGraph> q = sparql::SparqlParser::Parse(text);
  if (!q.ok()) {
    ADD_FAILURE() << "query parse failed: " << q.status().ToString()
                  << " for: " << text;
    return sparql::QueryGraph{};
  }
  return std::move(q).value();
}

/// Ground truth: evaluates the query on a single store holding the whole
/// graph (the k=1 baseline every distributed run must reproduce).
inline store::BindingTable GroundTruth(const rdf::RdfGraph& graph,
                                       const sparql::QueryGraph& query) {
  store::TripleStore single(graph.triples());
  store::ResolvedQuery resolved = store::ResolveQuery(query, graph);
  store::BindingTable table = store::BgpMatcher::EvaluateAll(single, resolved);
  table.Deduplicate();
  return table;
}

/// Rows as a canonical set for order-independent comparison.
inline std::set<std::vector<uint32_t>> RowSet(
    const store::BindingTable& table) {
  return std::set<std::vector<uint32_t>>(table.rows.begin(),
                                         table.rows.end());
}

/// Random multi-property graph for property-based tests: `n` vertices,
/// `m` edges, `num_props` properties, optional community structure
/// (edges stay within communities of size `community` except with
/// probability `escape`).
inline rdf::RdfGraph RandomGraph(Rng& rng, size_t n, size_t m,
                                 size_t num_props, size_t community = 0,
                                 double escape = 0.1) {
  rdf::GraphBuilder builder;
  auto vertex = [&](uint64_t v) {
    return "<t:v" + std::to_string(v) + ">";
  };
  for (size_t i = 0; i < m; ++i) {
    uint64_t u = rng.Below(n);
    uint64_t v;
    if (community > 0 && !rng.Chance(escape)) {
      uint64_t base = (u / community) * community;
      v = base + rng.Below(std::min<uint64_t>(community, n - base));
    } else {
      v = rng.Below(n);
    }
    builder.Add(vertex(u),
                "<t:p" + std::to_string(rng.Below(num_props)) + ">",
                vertex(v));
  }
  return builder.Build();
}

}  // namespace mpc::testutil

#endif  // MPC_TESTS_TEST_UTIL_H_

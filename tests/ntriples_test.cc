#include "rdf/ntriples.h"

#include "gtest/gtest.h"

namespace mpc::rdf {
namespace {

RdfGraph ParseOrDie(const std::string& text) {
  GraphBuilder builder;
  Status st = NTriplesParser::ParseDocument(text, &builder);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return builder.Build();
}

Status ParseStatus(const std::string& text) {
  GraphBuilder builder;
  return NTriplesParser::ParseDocument(text, &builder);
}

TEST(NTriplesTest, BasicTriple) {
  RdfGraph g = ParseOrDie("<a> <p> <b> .\n");
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.VertexName(g.triples()[0].subject), "<a>");
  EXPECT_EQ(g.PropertyName(g.triples()[0].property), "<p>");
  EXPECT_EQ(g.VertexName(g.triples()[0].object), "<b>");
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  RdfGraph g = ParseOrDie(
      "# a comment\n"
      "\n"
      "   \t\n"
      "<a> <p> <b> .\n"
      "# trailing comment\n");
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(NTriplesTest, LiteralObject) {
  RdfGraph g = ParseOrDie("<a> <p> \"hello world\" .\n");
  EXPECT_EQ(g.VertexName(g.triples()[0].object), "\"hello world\"");
  EXPECT_EQ(g.vertex_dict().KindOf(g.triples()[0].object),
            TermKind::kLiteral);
}

TEST(NTriplesTest, LiteralWithLanguageTag) {
  RdfGraph g = ParseOrDie("<a> <p> \"bonjour\"@fr .\n");
  EXPECT_EQ(g.VertexName(g.triples()[0].object), "\"bonjour\"@fr");
}

TEST(NTriplesTest, LiteralWithDatatype) {
  RdfGraph g = ParseOrDie(
      "<a> <p> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .\n");
  EXPECT_EQ(g.VertexName(g.triples()[0].object),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#int>");
}

TEST(NTriplesTest, LiteralWithEscapedQuote) {
  RdfGraph g = ParseOrDie(R"(<a> <p> "say \"hi\" now" .)");
  EXPECT_EQ(g.VertexName(g.triples()[0].object), R"("say \"hi\" now")");
}

TEST(NTriplesTest, BlankNodes) {
  RdfGraph g = ParseOrDie("_:b0 <p> _:b1 .\n");
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.vertex_dict().KindOf(g.triples()[0].subject),
            TermKind::kBlank);
}

TEST(NTriplesTest, WhitespaceVariants) {
  RdfGraph g = ParseOrDie("  <a>\t<p>   <b>   .  \n<c> <p> <d>.\n");
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(NTriplesTest, ErrorUnterminatedIri) {
  Status st = ParseStatus("<a <p> <b> .\n");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(NTriplesTest, ErrorMissingDot) {
  EXPECT_FALSE(ParseStatus("<a> <p> <b>\n").ok());
}

TEST(NTriplesTest, ErrorLiteralSubject) {
  EXPECT_FALSE(ParseStatus("\"lit\" <p> <b> .\n").ok());
}

TEST(NTriplesTest, ErrorLiteralPredicate) {
  EXPECT_FALSE(ParseStatus("<a> \"p\" <b> .\n").ok());
}

TEST(NTriplesTest, ErrorBlankNodePredicate) {
  EXPECT_FALSE(ParseStatus("<a> _:p <b> .\n").ok());
}

TEST(NTriplesTest, ErrorTrailingGarbage) {
  EXPECT_FALSE(ParseStatus("<a> <p> <b> . extra\n").ok());
}

TEST(NTriplesTest, ErrorUnterminatedLiteral) {
  EXPECT_FALSE(ParseStatus("<a> <p> \"oops .\n").ok());
}

TEST(NTriplesTest, ErrorReportsLineNumber) {
  Status st = ParseStatus("<a> <p> <b> .\nBAD LINE\n");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
}

TEST(NTriplesTest, RoundTripThroughSerializer) {
  const std::string original =
      "<a> <p> <b> .\n"
      "<a> <p> \"v\"@en .\n"
      "_:b0 <q> <a> .\n";
  RdfGraph g = ParseOrDie(original);
  std::string serialized = SerializeNTriples(g);
  RdfGraph g2 = ParseOrDie(serialized);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_properties(), g.num_properties());
  EXPECT_EQ(SerializeNTriples(g2), serialized);  // fixpoint
}

TEST(NTriplesTest, FileRoundTrip) {
  RdfGraph g = ParseOrDie("<a> <p> <b> .\n<b> <q> \"x\" .\n");
  const std::string path = ::testing::TempDir() + "/mpc_ntriples_test.nt";
  ASSERT_TRUE(WriteNTriplesFile(g, path).ok());
  GraphBuilder builder;
  ASSERT_TRUE(NTriplesParser::ParseFile(path, &builder).ok());
  EXPECT_EQ(builder.Build().num_edges(), 2u);
}

TEST(NTriplesTest, MissingFileIsIoError) {
  GraphBuilder builder;
  Status st = NTriplesParser::ParseFile("/nonexistent/nope.nt", &builder);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(NTriplesTest, LastLineWithoutNewline) {
  RdfGraph g = ParseOrDie("<a> <p> <b> .");
  EXPECT_EQ(g.num_edges(), 1u);
}

}  // namespace
}  // namespace mpc::rdf

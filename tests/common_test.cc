#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "gtest/gtest.h"

namespace mpc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kParseError, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kCapacityExceeded,
        StatusCode::kUnsupported, StatusCode::kInternal,
        StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailsThenPropagates() {
  MPC_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, HeadIsMoreFrequentThanTail) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 3);
  EXPECT_GT(counts[0], 500);
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(19);
  ZipfSampler zipf(7, 0.9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("<http://x>", "<"));
  EXPECT_FALSE(StartsWith("x", "xy"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(106909064), "106,909,064");
}

TEST(StringUtilTest, FormatDoubleAndMillis) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatMillis(34512.4), "34,512");
}

TEST(HashTest, U64AvalanchesAndIsDeterministic) {
  EXPECT_EQ(HashU64(42), HashU64(42));
  EXPECT_NE(HashU64(42), HashU64(43));
  // Low bits should differ even for adjacent inputs.
  EXPECT_NE(HashU64(1) & 0xFF, HashU64(2) & 0xFF);
}

TEST(HashTest, StringHash) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

/// Installs a capture sink for the test's lifetime and restores the
/// previous sink (and log level) on exit.
class ScopedCaptureLog {
 public:
  explicit ScopedCaptureLog(size_t capacity = 1024)
      : sink_(capacity),
        previous_(SetLogSink(&sink_)),
        level_(GetLogLevel()) {}
  ~ScopedCaptureLog() {
    SetLogSink(previous_);
    SetLogLevel(level_);
  }
  CaptureLogSink& sink() { return sink_; }

 private:
  CaptureLogSink sink_;
  LogSink* previous_;
  LogLevel level_;
};

TEST(LoggingTest, CaptureSinkReceivesCompleteLines) {
  ScopedCaptureLog capture;
  SetLogLevel(LogLevel::kInfo);
  MPC_LOG(Info) << "hello " << 42;
  MPC_LOG(Warning) << "watch out";
  std::vector<std::string> lines = capture.sink().Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("INFO"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("hello 42"), std::string::npos) << lines[0];
  EXPECT_EQ(lines[0].back(), '\n');
  EXPECT_NE(lines[1].find("watch out"), std::string::npos) << lines[1];
  // No tracing active: no span tag in the header.
  EXPECT_EQ(lines[0].find("span="), std::string::npos) << lines[0];
}

TEST(LoggingTest, LevelThresholdFiltersBeforeTheSink) {
  ScopedCaptureLog capture;
  SetLogLevel(LogLevel::kWarning);
  MPC_LOG(Info) << "dropped";
  MPC_LOG(Error) << "kept";
  std::vector<std::string> lines = capture.sink().Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept"), std::string::npos);
}

TEST(LoggingTest, RingBufferKeepsNewestAndCountsDropped) {
  ScopedCaptureLog capture(/*capacity=*/2);
  SetLogLevel(LogLevel::kInfo);
  for (int i = 0; i < 5; ++i) {
    MPC_LOG(Info) << "line " << i;
  }
  std::vector<std::string> lines = capture.sink().Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("line 3"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("line 4"), std::string::npos) << lines[1];
  EXPECT_EQ(capture.sink().dropped(), 3u);
  capture.sink().Clear();
  EXPECT_TRUE(capture.sink().Lines().empty());
}

TEST(LoggingTest, SpanIdProviderTagsLines) {
  ScopedCaptureLog capture;
  SetLogLevel(LogLevel::kInfo);
  SetLogSpanIdProvider([]() -> uint64_t { return 7; });
  MPC_LOG(Info) << "tagged";
  SetLogSpanIdProvider(nullptr);
  MPC_LOG(Info) << "untagged";
  std::vector<std::string> lines = capture.sink().Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("span=7"), std::string::npos) << lines[0];
  EXPECT_EQ(lines[1].find("span="), std::string::npos) << lines[1];
}

}  // namespace
}  // namespace mpc

#include "pg/pg_to_rdf.h"

#include "gtest/gtest.h"
#include "pg/property_graph.h"

namespace mpc::pg {
namespace {

/// A small social network: two friend-communities joined by FOLLOWS.
PropertyGraph SocialNetwork() {
  PropertyGraph graph;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 6; ++i) {
      std::string id = "u" + std::to_string(c * 6 + i);
      EXPECT_TRUE(graph
                      .AddVertex(id, "Person",
                                 {{"name", "Name" + id},
                                  {"age", std::to_string(20 + i)}})
                      .ok());
    }
  }
  // Dense FRIEND edges within each community.
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 5; ++i) {
      std::string a = "u" + std::to_string(c * 6 + i);
      std::string b = "u" + std::to_string(c * 6 + i + 1);
      EXPECT_TRUE(graph.AddEdgeById(a, b, "FRIEND").ok());
    }
  }
  // One FOLLOWS edge across.
  EXPECT_TRUE(graph.AddEdgeById("u0", "u6", "FOLLOWS",
                                {{"since", "2020"}})
                  .ok());
  return graph;
}

TEST(PropertyGraphTest, BasicConstruction) {
  PropertyGraph graph = SocialNetwork();
  EXPECT_EQ(graph.num_vertices(), 12u);
  EXPECT_EQ(graph.num_edges(), 11u);
  auto labels = graph.EdgeLabels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], "FOLLOWS");
  EXPECT_EQ(labels[1], "FRIEND");
}

TEST(PropertyGraphTest, RejectsDuplicateAndUnknownIds) {
  PropertyGraph graph;
  ASSERT_TRUE(graph.AddVertex("a", "X").ok());
  EXPECT_FALSE(graph.AddVertex("a", "Y").ok());
  EXPECT_FALSE(graph.AddEdgeById("a", "nope", "L").ok());
  EXPECT_FALSE(graph.AddEdge(0, 99, "L").ok());
  EXPECT_FALSE(graph.IndexOf("nope").ok());
  EXPECT_EQ(*graph.IndexOf("a"), 0u);
}

TEST(PgToRdfTest, DirectMappingCounts) {
  PropertyGraph graph = SocialNetwork();
  rdf::RdfGraph rdf_graph = ToRdfGraph(graph);
  // 12 type triples + 24 attribute triples + 11 relationship triples.
  EXPECT_EQ(rdf_graph.num_edges(), 12u + 24u + 11u);
  // Properties: rdf:type, key/name, key/age, rel/FRIEND, rel/FOLLOWS.
  EXPECT_EQ(rdf_graph.num_properties(), 5u);
}

TEST(PgToRdfTest, MappingTogglesRespected) {
  PropertyGraph graph = SocialNetwork();
  PgMappingOptions options;
  options.emit_vertex_labels = false;
  options.emit_vertex_attributes = false;
  rdf::RdfGraph rdf_graph = ToRdfGraph(graph, options);
  EXPECT_EQ(rdf_graph.num_edges(), 11u);  // relationships only
  EXPECT_EQ(rdf_graph.num_properties(), 2u);
}

TEST(PgToRdfTest, ReificationKeepsEdgeAttributes) {
  PropertyGraph graph = SocialNetwork();
  PgMappingOptions options;
  options.reify_attributed_edges = true;
  rdf::RdfGraph rdf_graph = ToRdfGraph(graph, options);
  // The FOLLOWS edge (1 attribute) reifies into 4 triples instead of 1.
  EXPECT_EQ(rdf_graph.num_edges(), 12u + 24u + 10u + 4u);
  // New properties: from, to (type reused; key/since new).
  rdf::PropertyId from =
      rdf_graph.property_dict().Lookup("<http://example.org/pg/from>");
  EXPECT_NE(from, rdf::kInvalidVertex);
}

TEST(PgPartitionTest, CommunitiesStayTogether) {
  PropertyGraph graph = SocialNetwork();
  core::MpcOptions options;
  options.base.k = 2;
  options.base.epsilon = 2.0;  // tiny toy graph: generous balance
  options.strategy = core::SelectionStrategy::kGreedy;
  Result<PgPartitionResult> result =
      PartitionPropertyGraph(graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->vertex_partition.size(), 12u);
  // FRIEND should be internal (community-local); the crossing labels, if
  // any, can only be FOLLOWS.
  for (const std::string& label : result->crossing_edge_labels) {
    EXPECT_EQ(label, "FOLLOWS");
  }
  // All u0..u5 together, all u6..u11 together.
  uint32_t p0 = result->vertex_partition.at("u0");
  for (int i = 1; i < 6; ++i) {
    EXPECT_EQ(result->vertex_partition.at("u" + std::to_string(i)), p0);
  }
  uint32_t p1 = result->vertex_partition.at("u6");
  for (int i = 7; i < 12; ++i) {
    EXPECT_EQ(result->vertex_partition.at("u" + std::to_string(i)), p1);
  }
}

TEST(PgPartitionTest, FewLabelRegimeLeavesEverythingCrossing) {
  // The Section VII conjecture in miniature: one label covering a
  // connected graph can never be internal, so MPC degenerates to plain
  // min edge-cut (crossing label set = the whole label set).
  PropertyGraph graph;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        graph.AddVertex("n" + std::to_string(i), "Node").ok());
  }
  for (int i = 0; i + 1 < 40; ++i) {
    ASSERT_TRUE(graph
                    .AddEdgeById("n" + std::to_string(i),
                                 "n" + std::to_string(i + 1), "LINK")
                    .ok());
  }
  core::MpcOptions options;
  options.base.k = 4;
  options.base.epsilon = 0.1;
  PgMappingOptions mapping;
  mapping.emit_vertex_labels = false;
  Result<PgPartitionResult> result =
      PartitionPropertyGraph(graph, options, mapping);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->crossing_edge_labels.size(), 1u);
  EXPECT_EQ(result->crossing_edge_labels[0], "LINK");
}

TEST(PgPartitionTest, EmptyGraphRejected) {
  PropertyGraph graph;
  core::MpcOptions options;
  EXPECT_FALSE(PartitionPropertyGraph(graph, options).ok());
}

}  // namespace
}  // namespace mpc::pg

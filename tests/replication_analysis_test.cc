#include "partition/replication_analysis.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "partition/subject_hash_partitioner.h"
#include "test_util.h"

namespace mpc::partition {
namespace {

using rdf::RdfGraph;

TEST(ReplicationAnalysisTest, HopOneMatchesPartitioningReplication) {
  Rng rng(1);
  RdfGraph graph = testutil::RandomGraph(rng, 60, 200, 5);
  PartitionerOptions options{.k = 4, .epsilon = 0.1, .seed = 2};
  Partitioning p = SubjectHashPartitioner(options).Partition(graph);

  auto costs = AnalyzeKHopReplication(graph, p, 1);
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_EQ(costs[0].hops, 1u);
  // Stored = internal once + crossing twice (dedup within a site can
  // only reduce relative to the raw sum, but partitions store distinct
  // triples, so equality holds).
  uint64_t expected = 0;
  for (const Partition& part : p.partitions()) {
    expected += part.internal_edges.size() + part.crossing_edges.size();
  }
  EXPECT_EQ(costs[0].stored_triples, expected);
  EXPECT_DOUBLE_EQ(costs[0].replication_ratio, p.ReplicationRatio(graph));
}

TEST(ReplicationAnalysisTest, CostIsMonotoneInHops) {
  Rng rng(2);
  RdfGraph graph = testutil::RandomGraph(rng, 80, 300, 6);
  PartitionerOptions options{.k = 4, .epsilon = 0.1, .seed = 3};
  Partitioning p = SubjectHashPartitioner(options).Partition(graph);

  auto costs = AnalyzeKHopReplication(graph, p, 4);
  ASSERT_EQ(costs.size(), 4u);
  for (size_t i = 1; i < costs.size(); ++i) {
    EXPECT_GE(costs[i].stored_triples, costs[i - 1].stored_triples);
    EXPECT_GE(costs[i].max_site_triples, costs[i - 1].max_site_triples);
  }
  // Replication is bounded by full copies everywhere.
  EXPECT_LE(costs.back().stored_triples,
            static_cast<uint64_t>(graph.num_edges()) * p.k());
}

TEST(ReplicationAnalysisTest, ConvergesToFullReplicationOnConnectedGraph) {
  // A chain split across 2 sites: enough hops replicate everything at
  // both sites (ratio -> 2).
  rdf::GraphBuilder builder;
  for (int i = 0; i < 10; ++i) {
    builder.Add("<t:v" + std::to_string(i) + ">", "<t:p>",
                "<t:v" + std::to_string(i + 1) + ">");
  }
  RdfGraph graph = builder.Build();
  VertexAssignment assignment;
  assignment.k = 2;
  assignment.part.resize(graph.num_vertices());
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    // Vertices are interned in chain order, so the first half is site 0.
    assignment.part[v] = v < graph.num_vertices() / 2 ? 0 : 1;
  }
  Partitioning p =
      Partitioning::MaterializeVertexDisjoint(graph, std::move(assignment));
  auto costs = AnalyzeKHopReplication(graph, p, 12);
  EXPECT_DOUBLE_EQ(costs.back().replication_ratio, 2.0);
  EXPECT_LT(costs.front().replication_ratio, 2.0);
}

TEST(ReplicationAnalysisTest, NoCrossingEdgesMeansFlatCost) {
  // Two disconnected components, each fully on one site: no crossing
  // edges, so every hop level stores exactly |E|.
  RdfGraph graph = testutil::BuildGraph({
      {"a", "p", "b"},
      {"b", "p", "c"},
      {"x", "q", "y"},
      {"y", "q", "z"},
  });
  VertexAssignment assignment;
  assignment.k = 2;
  assignment.part.resize(graph.num_vertices());
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    const std::string& name = graph.VertexName(static_cast<uint32_t>(v));
    assignment.part[v] = (name[3] <= 'c') ? 0 : 1;
  }
  Partitioning p =
      Partitioning::MaterializeVertexDisjoint(graph, std::move(assignment));
  ASSERT_EQ(p.num_crossing_edges(), 0u);
  auto costs = AnalyzeKHopReplication(graph, p, 3);
  for (const ReplicationCost& c : costs) {
    EXPECT_EQ(c.stored_triples, graph.num_edges());
    EXPECT_DOUBLE_EQ(c.replication_ratio, 1.0);
  }
}

}  // namespace
}  // namespace mpc::partition

#include "exec/explain.h"

#include "common/random.h"
#include "exec/decomposer.h"
#include "gtest/gtest.h"
#include "partition/subject_hash_partitioner.h"
#include "test_util.h"

namespace mpc::exec {
namespace {

using partition::Partitioning;
using rdf::RdfGraph;

struct Fixture {
  RdfGraph graph;
  Partitioning partitioning;
  Fixture()
      : graph(testutil::BuildGraph({
            {"a", "in1", "b"},
            {"b", "in2", "c"},
            {"d", "in1", "e"},
            {"e", "in2", "f"},
            {"c", "cross", "d"},
        })) {
    partition::VertexAssignment assignment;
    assignment.k = 2;
    assignment.part.resize(graph.num_vertices());
    for (size_t v = 0; v < graph.num_vertices(); ++v) {
      assignment.part[v] = graph.VertexName(static_cast<uint32_t>(v))[3] <= 'c'
                               ? 0
                               : 1;
    }
    partitioning = Partitioning::MaterializeVertexDisjoint(
        graph, std::move(assignment));
  }
};

TEST(ExtractSubqueryTest, PreservesNamesAndStructure) {
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:p> ?b . ?b <t:q> ?c . ?c <t:r> ?d . }");
  sparql::QueryGraph sub = sparql::ExtractSubquery(q, {1, 2});
  EXPECT_EQ(sub.num_patterns(), 2u);
  EXPECT_EQ(sub.num_variables(), 3u);  // b, c, d
  EXPECT_EQ(sub.num_vertices(), 3u);
  // Shared vertex ?c connects the two extracted patterns.
  EXPECT_EQ(sub.ObjectVertex(0), sub.SubjectVertex(1));
  // Names survive re-interning.
  EXPECT_NE(sub.ToString().find("?b"), std::string::npos);
}

TEST(ExplainTest, IeqPlanMentionsUnion) {
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:in1> ?y . ?y <t:in2> ?z . }");
  std::string plan = ExplainQuery(q, f.partitioning, f.graph);
  EXPECT_NE(plan.find("class: internal"), std::string::npos) << plan;
  EXPECT_NE(plan.find("no join"), std::string::npos) << plan;
}

TEST(ExplainTest, NonIeqPlanListsSubqueriesAndCrossings) {
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:in1> ?b . ?b <t:cross> ?c . ?c <t:in2> ?d . "
      "}");
  std::string plan = ExplainQuery(q, f.partitioning, f.graph);
  EXPECT_NE(plan.find("class: non-IEQ"), std::string::npos) << plan;
  EXPECT_NE(plan.find("decomposition: 2 subqueries"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("<t:cross>"), std::string::npos) << plan;
  EXPECT_NE(plan.find("subquery 0"), std::string::npos) << plan;
}

TEST(ExplainTest, ClusterAddsSiteLists) {
  Fixture f;
  Cluster cluster = Cluster::Build(std::move(f.partitioning));
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:in1> ?y . }");
  std::string plan =
      ExplainQuery(q, cluster.partitioning(), f.graph, &cluster);
  EXPECT_NE(plan.find("sites:"), std::string::npos) << plan;
}

// The Algorithm 2 guarantee, tested as a property: every subquery of a
// decomposition — extracted and classified standalone — is itself
// independently executable (internal, Type-I or Type-II; Section V-B1).
TEST(ExplainTest, EverySubqueryOfEveryDecompositionIsAnIeq_Property) {
  Rng rng(91);
  for (int round = 0; round < 25; ++round) {
    RdfGraph graph = testutil::RandomGraph(rng, 40, 130, 5, 8, 0.3);
    partition::PartitionerOptions options{
        .k = 2 + static_cast<uint32_t>(rng.Below(4)),
        .epsilon = 0.2,
        .seed = rng.Next()};
    Partitioning p =
        partition::SubjectHashPartitioner(options).Partition(graph);

    // Random connected-ish path/star queries.
    sparql::QueryGraphBuilder builder;
    const size_t num_edges = 2 + rng.Below(4);
    for (size_t i = 0; i < num_edges; ++i) {
      std::string prop = "<t:p" + std::to_string(rng.Below(5)) + ">";
      builder.AddPattern("?v" + std::to_string(rng.Below(num_edges)), prop,
                         "?v" + std::to_string(rng.Below(num_edges) + 1));
    }
    Result<sparql::QueryGraph> q = builder.Build();
    ASSERT_TRUE(q.ok());

    Classification cls = ClassifyQuery(*q, p, graph);
    if (cls.independently_executable()) continue;
    Decomposition dec = DecomposeQuery(*q, cls.crossing_pattern);
    for (const std::vector<size_t>& sub : dec.subqueries) {
      sparql::QueryGraph extracted = sparql::ExtractSubquery(*q, sub);
      Classification sub_cls = ClassifyQuery(extracted, p, graph);
      EXPECT_TRUE(sub_cls.independently_executable())
          << "round " << round << ": subquery "
          << extracted.ToString() << " classified "
          << IeqClassName(sub_cls.cls);
    }
  }
}

}  // namespace
}  // namespace mpc::exec

// Hot-vertex migration: the escalation level between "keep maintaining"
// and "full MPC re-run". Covers the weighted drift trigger, the
// migration path avoiding a repartition, the balance-cap fallback,
// result equivalence against a from-scratch partition of the live graph
// (both executors, and the serving capture with segment bases), and
// checkpoint round-trips of the migration state.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dynamic/incremental_maintainer.h"
#include "exec/cluster.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "serve/serving_state.h"
#include "storage/delta_overlay.h"
#include "test_util.h"

namespace mpc::dynamic {
namespace {

using rdf::RdfGraph;
using store::BindingTable;
using testutil::T;

TripleUpdate Ins(const std::string& s, const std::string& p,
                 const std::string& o) {
  return TripleUpdate{UpdateKind::kInsert, T(s), T(p), T(o)};
}

UpdateBatch Batch(std::vector<TripleUpdate> updates) {
  UpdateBatch b;
  b.updates = std::move(updates);
  return b;
}

partition::Partitioning MakeByName(
    const RdfGraph& graph, uint32_t k,
    const std::map<std::string, uint32_t>& sites) {
  partition::VertexAssignment assignment;
  assignment.k = k;
  assignment.part.assign(graph.num_vertices(), 0);
  for (const auto& [name, site] : sites) {
    rdf::VertexId v = graph.vertex_dict().Lookup(T(name));
    EXPECT_NE(v, rdf::kInvalidVertex) << name;
    if (v != rdf::kInvalidVertex) assignment.part[v] = site;
  }
  return partition::Partitioning::MaterializeVertexDisjoint(
      graph, std::move(assignment));
}

std::set<std::vector<std::string>> LexRows(const BindingTable& table,
                                           const RdfGraph& graph) {
  std::set<std::vector<std::string>> rows;
  for (const auto& row : table.rows) {
    std::vector<std::string> lex;
    lex.reserve(row.size());
    for (uint32_t id : row) {
      lex.emplace_back(graph.VertexName(id));
    }
    rows.insert(std::move(lex));
  }
  return rows;
}

Result<BindingTable> RunText(IncrementalMaintainer& m,
                             const std::string& text) {
  Result<exec::QueryResponse> response =
      m.Execute(exec::QueryRequest::FromText(text));
  if (!response.ok()) return response.status();
  return std::move(response->bindings);
}

/// Two p-triangles on sites 0/1 plus a seed-internal "hot" edge at
/// site 1. Property ids: p = 0, hot = 1.
RdfGraph MigrationGraph() {
  return testutil::BuildGraph({{"a1", "p", "a2"},
                               {"a2", "p", "a3"},
                               {"a3", "p", "a1"},
                               {"b1", "p", "b2"},
                               {"b2", "p", "b3"},
                               {"b3", "p", "b1"},
                               {"b1", "hot", "b2"}});
}

std::map<std::string, uint32_t> IslandSites() {
  return {{"a1", 0}, {"a2", 0}, {"a3", 0},
          {"b1", 1}, {"b2", 1}, {"b3", 1}};
}

/// Threshold policy whose integer bound tolerates a few crossing
/// properties while the weighted bound fires as soon as "hot" (weight
/// 21) goes crossing: 21 > max(seed * 1, seed + 4) at seed 0.
MaintainerOptions WeightedThreshold() {
  MaintainerOptions options;
  options.policy.kind = RepartitionPolicy::Kind::kThreshold;
  options.policy.max_lcross_growth = 0.0;
  options.policy.min_lcross_slack = 4;
  options.property_weights = {1.0, 21.0};
  // Room for one vertex to change sides: (1+0.3)*7/2 = 4 per site.
  options.mpc.base.epsilon = 0.3;
  return options;
}

/// The stream all tests replay: an anchor edge placing the new vertex
/// "mig" at site 0 (anchor is a brand-new property, so it starts
/// internal and co-locates), then three hot edges from mig into the
/// site-1 island — the classic misplaced-vertex shape migration exists
/// for.
UpdateBatch AnchorBatch() { return Batch({Ins("mig", "anchor", "a1")}); }
UpdateBatch HotBatch() {
  return Batch({Ins("mig", "hot", "b1"), Ins("mig", "hot", "b2"),
                Ins("mig", "hot", "b3")});
}

TEST(BoundaryMigrationTest, WeightedThresholdFiresWhereIntegerDoesNot) {
  RdfGraph graph = MigrationGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          WeightedThreshold());
  EXPECT_FALSE(m.ApplyBatch(AnchorBatch()).repartition_triggered);

  // One crossing property (1 <= seed + 4) keeps the integer check
  // quiet; its weight of 21 blows through the weighted bound of 4.
  ApplyResult r = m.ApplyBatch(HotBatch());
  EXPECT_TRUE(r.repartition_triggered) << r.trigger_reason;
  EXPECT_NE(r.trigger_reason.find("weighted"), std::string::npos)
      << r.trigger_reason;
  EXPECT_EQ(m.repartition_count(), 1u);
}

TEST(BoundaryMigrationTest, UnweightedPolicyIgnoresTheSameStream) {
  RdfGraph graph = MigrationGraph();
  MaintainerOptions options = WeightedThreshold();
  options.property_weights.clear();  // weighted tracking inert
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          options);
  m.ApplyBatch(AnchorBatch());
  ApplyResult r = m.ApplyBatch(HotBatch());
  EXPECT_FALSE(r.repartition_triggered) << r.trigger_reason;
  EXPECT_EQ(r.drift.weighted_crossing_properties, 0.0);
  EXPECT_EQ(m.repartition_count(), 0u);
}

TEST(BoundaryMigrationTest, MigrationAvoidsFullRepartition) {
  RdfGraph graph = MigrationGraph();
  MaintainerOptions options = WeightedThreshold();
  options.migration.enabled = true;
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          options);
  m.ApplyBatch(AnchorBatch());

  // The policy fires, the migrator moves mig to the hot side (retiring
  // hot's 21 for anchor's 1), and the re-evaluation passes: no MPC run.
  ApplyResult r = m.ApplyBatch(HotBatch());
  EXPECT_EQ(r.migrated, 1u);
  EXPECT_DOUBLE_EQ(r.migration_gain, 20.0);
  EXPECT_FALSE(r.repartition_triggered) << r.trigger_reason;
  EXPECT_FALSE(r.repartitioned);
  EXPECT_EQ(m.migration_count(), 1u);
  EXPECT_EQ(m.repartition_count(), 0u);

  // mig changed sides; hot retired from L_cross, anchor entered it.
  rdf::VertexId mig = m.graph().vertex_dict().Lookup(T("mig"));
  rdf::VertexId b1 = m.graph().vertex_dict().Lookup(T("b1"));
  ASSERT_NE(mig, rdf::kInvalidVertex);
  EXPECT_EQ(m.partitioning().assignment().part[mig],
            m.partitioning().assignment().part[b1]);
  rdf::PropertyId hot = m.graph().property_dict().Lookup(T("hot"));
  rdf::PropertyId anchor = m.graph().property_dict().Lookup(T("anchor"));
  EXPECT_FALSE(m.partitioning().IsCrossingProperty(hot));
  EXPECT_TRUE(m.partitioning().IsCrossingProperty(anchor));
  EXPECT_EQ(r.drift.crossing_properties, 1u);
  EXPECT_DOUBLE_EQ(r.drift.weighted_crossing_properties, 1.0);
  EXPECT_EQ(r.drift.migrations, 1u);

  // Queries see the post-migration state immediately.
  Result<BindingTable> hot_rows =
      RunText(m, "SELECT * WHERE { ?x " + T("hot") + " ?y . }");
  ASSERT_TRUE(hot_rows.ok()) << hot_rows.status().ToString();
  std::set<std::vector<std::string>> rows = LexRows(*hot_rows, m.graph());
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_TRUE(rows.count({T("mig"), T("b3")}));
  Result<BindingTable> anchor_rows =
      RunText(m, "SELECT * WHERE { ?x " + T("anchor") + " ?y . }");
  ASSERT_TRUE(anchor_rows.ok());
  EXPECT_EQ(anchor_rows->num_rows(), 1u);
}

TEST(BoundaryMigrationTest, BalanceCapBlocksMoveAndFallsBackToRepartition) {
  RdfGraph graph = MigrationGraph();
  MaintainerOptions options = WeightedThreshold();
  options.migration.enabled = true;
  // (1+0)*7/2 = 3 per site: site 1 already owns b1..b3, so the mig move
  // would overfill it and every alternative move raises |L_cross|.
  options.mpc.base.epsilon = 0.0;
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          options);
  m.ApplyBatch(AnchorBatch());

  ApplyResult r = m.ApplyBatch(HotBatch());
  EXPECT_EQ(r.migrated, 0u);
  EXPECT_TRUE(r.repartition_triggered) << r.trigger_reason;
  EXPECT_TRUE(r.repartitioned);
  EXPECT_EQ(m.migration_count(), 0u);
  EXPECT_EQ(m.repartition_count(), 1u);
  // The full re-run re-anchored both baselines.
  EXPECT_EQ(r.drift.seed_weighted_crossing_properties,
            r.drift.weighted_crossing_properties);
}

TEST(BoundaryMigrationTest, MigratedStateMatchesFromScratchPartition) {
  // Two misplaced vertices migrate in sequence; afterwards every query
  // must answer exactly as a from-scratch MPC partition of the same
  // live graph — on the distributed executor, the gStoreD baseline, and
  // the serving capture (whose segment-overlay shortcut must refuse to
  // reuse pack-time bases once ownership moved without a rewrite).
  RdfGraph graph = testutil::BuildGraph({{"a1", "p", "a2"},
                                         {"a2", "p", "a3"},
                                         {"a3", "p", "a1"},
                                         {"b1", "p", "b2"},
                                         {"b2", "p", "b3"},
                                         {"b3", "p", "b1"},
                                         {"b1", "hot1", "b2"},
                                         {"b2", "hot2", "b3"}});
  MaintainerOptions options;
  options.policy.kind = RepartitionPolicy::Kind::kThreshold;
  options.policy.max_lcross_growth = 0.0;
  options.policy.min_lcross_slack = 4;
  options.property_weights = {1.0, 21.0, 21.0};  // p, hot1, hot2
  options.mpc.base.epsilon = 0.5;  // room for both migrants at site 1
  options.migration.enabled = true;
  partition::Partitioning seed = MakeByName(graph, 2, IslandSites());
  exec::Cluster base_cluster = exec::Cluster::Build(seed);
  IncrementalMaintainer m(graph.Clone(), std::move(seed), options);

  m.ApplyBatch(Batch({Ins("mig1", "anchor1", "a1")}));
  ApplyResult r1 = m.ApplyBatch(Batch({Ins("mig1", "hot1", "b1"),
                                       Ins("mig1", "hot1", "b2"),
                                       Ins("mig1", "hot1", "b3")}));
  EXPECT_EQ(r1.migrated, 1u);
  m.ApplyBatch(Batch({Ins("mig2", "anchor2", "a2")}));
  ApplyResult r2 = m.ApplyBatch(Batch({Ins("mig2", "hot2", "b1"),
                                       Ins("mig2", "hot2", "b2"),
                                       Ins("mig2", "hot2", "b3")}));
  EXPECT_EQ(r2.migrated, 1u);
  ASSERT_EQ(m.migration_count(), 2u);
  ASSERT_EQ(m.repartition_count(), 0u);

  // From scratch: MPC over the materialized live graph.
  rdf::RdfGraph live = m.MaterializeGraph();
  core::MpcOptions mpc;
  mpc.base.k = 2;
  mpc.base.epsilon = 0.5;
  partition::Partitioning fresh = core::MpcPartitioner(mpc).Partition(live);
  std::shared_ptr<const serve::ServingState> fresh_state =
      serve::ServingState::Build(live.Clone(), std::move(fresh));

  std::shared_ptr<const serve::ServingState> migrated_state =
      serve::ServingState::Capture(m);
  serve::ServingStateOptions with_bases;
  with_bases.base_sources = base_cluster.sources();
  std::shared_ptr<const serve::ServingState> gated_state =
      serve::ServingState::Capture(m, with_bases);
  // The gate: bases describe pack-time ownership, migration changed it
  // without rewriting the site files, so Capture must have rebuilt.
  {
    const auto* cluster =
        dynamic_cast<const exec::Cluster*>(&gated_state->cluster());
    ASSERT_NE(cluster, nullptr);
    for (const auto& source : cluster->sources()) {
      EXPECT_EQ(dynamic_cast<const storage::DeltaOverlaySource*>(source.get()),
                nullptr);
    }
  }

  const std::string queries[] = {
      "SELECT * WHERE { ?x " + T("p") + " ?y . }",
      "SELECT * WHERE { ?x " + T("hot1") + " ?y . }",
      "SELECT * WHERE { ?x " + T("hot2") + " ?y . }",
      "SELECT * WHERE { ?x " + T("anchor1") + " ?y . }",
      "SELECT * WHERE { ?x " + T("hot1") + " ?y . ?y " + T("p") + " ?z . }",
  };
  for (const std::string& q : queries) {
    const exec::QueryRequest request = exec::QueryRequest::FromText(q);
    Result<exec::QueryResponse> want = fresh_state->distributed().Execute(request);
    ASSERT_TRUE(want.ok()) << q << ": " << want.status().ToString();
    const std::set<std::vector<std::string>> expected =
        LexRows(want->bindings, fresh_state->graph());

    Result<exec::QueryResponse> fresh_g = fresh_state->gstored().Execute(request);
    ASSERT_TRUE(fresh_g.ok()) << q;
    EXPECT_EQ(LexRows(fresh_g->bindings, fresh_state->graph()), expected) << q;

    for (const auto& state : {migrated_state, gated_state}) {
      Result<exec::QueryResponse> d = state->distributed().Execute(request);
      ASSERT_TRUE(d.ok()) << q << ": " << d.status().ToString();
      EXPECT_EQ(LexRows(d->bindings, state->graph()), expected) << q;
      ASSERT_TRUE(state->has_gstored());
      Result<exec::QueryResponse> g = state->gstored().Execute(request);
      ASSERT_TRUE(g.ok()) << q << ": " << g.status().ToString();
      EXPECT_EQ(LexRows(g->bindings, state->graph()), expected) << q;
    }

    Result<BindingTable> inline_rows = RunText(m, q);
    ASSERT_TRUE(inline_rows.ok()) << q;
    EXPECT_EQ(LexRows(*inline_rows, m.graph()), expected) << q;
  }
}

TEST(BoundaryMigrationTest, CheckpointRoundTripsMigrationState) {
  RdfGraph graph = MigrationGraph();
  MaintainerOptions options = WeightedThreshold();
  options.migration.enabled = true;
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          options);
  m.ApplyBatch(AnchorBatch());
  ASSERT_EQ(m.ApplyBatch(HotBatch()).migrated, 1u);

  MaintainerState state = m.ExportState();
  EXPECT_EQ(state.migrations, 1u);
  IncrementalMaintainer restored(state, options);
  EXPECT_EQ(restored.migration_count(), 1u);
  EXPECT_EQ(restored.num_live_triples(), m.num_live_triples());

  // Drift — including the weighted signal and its seed — survives.
  DriftMetrics want = m.drift();
  DriftMetrics got = restored.drift();
  EXPECT_EQ(got.crossing_properties, want.crossing_properties);
  EXPECT_DOUBLE_EQ(got.weighted_crossing_properties,
                   want.weighted_crossing_properties);
  EXPECT_DOUBLE_EQ(got.seed_weighted_crossing_properties,
                   want.seed_weighted_crossing_properties);
  EXPECT_EQ(got.migrations, 1u);

  // The post-migration assignment survives (mig still owned by site 1).
  EXPECT_EQ(restored.partitioning().assignment().part,
            m.partitioning().assignment().part);

  // And the restored maintainer exports the same state bit-for-bit.
  EXPECT_TRUE(restored.ExportState() == state);

  const std::string query = "SELECT * WHERE { ?x " + T("hot") + " ?y . }";
  Result<BindingTable> a = RunText(m, query);
  Result<BindingTable> b = RunText(restored, query);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(LexRows(*a, m.graph()), LexRows(*b, restored.graph()));
}

}  // namespace
}  // namespace mpc::dynamic

// Cross-cutting round-trip and invariant property tests: query
// serialization, graph serialization, logging/timer utilities, and the
// Theorem 2 invariant checked on every generated dataset.

#include <set>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "test_util.h"
#include "workload/datasets.h"

namespace mpc {
namespace {

// Query -> ToString -> parse -> ToString must be a fixpoint.
TEST(RoundTripTest, QueryToStringParseFixpoint) {
  for (const char* text : {
           "SELECT * WHERE { ?x <http://p> ?y . }",
           "SELECT ?x ?z WHERE { ?x <http://p> ?y . ?y ?q ?z . }",
           "SELECT DISTINCT ?x WHERE { ?x <http://p> \"v\"@en . } LIMIT 7",
           "SELECT * WHERE { <http://s> a <http://C> . ?x <http://p> "
           "<http://s> . }",
       }) {
    sparql::QueryGraph q1 = testutil::ParseQueryOrDie(text);
    std::string printed = q1.ToString();
    sparql::QueryGraph q2 = testutil::ParseQueryOrDie(printed);
    EXPECT_EQ(q2.ToString(), printed) << "not a fixpoint for: " << text;
    EXPECT_EQ(q2.num_patterns(), q1.num_patterns());
    EXPECT_EQ(q2.num_variables(), q1.num_variables());
    EXPECT_EQ(q2.limit(), q1.limit());
    EXPECT_EQ(q2.distinct(), q1.distinct());
  }
}

// Random graphs serialize/parse to the identical triple set. Note the
// comparison is as a line *set*: serialization order follows dictionary
// ids, which legitimately differ between the original and the re-parsed
// graph.
TEST(RoundTripTest, RandomGraphNTriplesRoundTrip) {
  Rng rng(5);
  auto line_set = [](const std::string& text) {
    std::set<std::string> lines;
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      if (end > start) lines.insert(text.substr(start, end - start));
      start = end + 1;
    }
    return lines;
  };
  for (int round = 0; round < 10; ++round) {
    rdf::RdfGraph g =
        testutil::RandomGraph(rng, 30 + rng.Below(50), 100, 4);
    std::string text = rdf::SerializeNTriples(g);
    rdf::GraphBuilder builder;
    ASSERT_TRUE(rdf::NTriplesParser::ParseDocument(text, &builder).ok());
    rdf::RdfGraph g2 = builder.Build();
    ASSERT_EQ(g2.num_edges(), g.num_edges());
    EXPECT_EQ(line_set(rdf::SerializeNTriples(g2)), line_set(text));
  }
}

// Theorem 2 end-to-end on every generated dataset: after MPC, no edge of
// an internal property crosses partitions.
TEST(RoundTripTest, Theorem2HoldsOnEveryDataset) {
  for (workload::DatasetId id : workload::AllDatasets()) {
    workload::GeneratedDataset d = workload::MakeDataset(id, 0.1, 9);
    core::MpcOptions options;
    options.base.k = 4;
    options.base.epsilon = 0.1;
    core::MpcPartitioner partitioner(options);
    core::MpcRunStats stats;
    partition::Partitioning p =
        partitioner.Partition(d.graph, &stats);
    const auto& part = p.assignment().part;
    for (size_t prop = 0; prop < d.graph.num_properties(); ++prop) {
      if (!stats.selection.internal[prop]) continue;
      for (const rdf::Triple& t : d.graph.EdgesWithProperty(
               static_cast<rdf::PropertyId>(prop))) {
        ASSERT_EQ(part[t.subject], part[t.object])
            << workload::DatasetName(id) << " property "
            << d.graph.PropertyName(static_cast<rdf::PropertyId>(prop));
      }
    }
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  double ms = timer.ElapsedMillis();
  EXPECT_GE(ms, 10.0);
  EXPECT_LT(ms, 500.0);
  EXPECT_NEAR(timer.ElapsedSeconds() * 1000.0, timer.ElapsedMillis(),
              5.0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedMillis(), 10.0);
}

TEST(LoggingTest, ThresholdFiltersMessages) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  MPC_LOG(Info) << "should be dropped";
  MPC_LOG(Error) << "should appear";
  std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should be dropped"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
  EXPECT_NE(captured.find("ERROR"), std::string::npos);
  SetLogLevel(old_level);
}

TEST(LoggingTest, IncludesSourceLocation) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  MPC_LOG(Warning) << "locate me";
  std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("roundtrip_test.cc"), std::string::npos)
      << captured;
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace mpc

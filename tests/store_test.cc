#include "store/triple_store.h"

#include <set>

#include "common/random.h"
#include "gtest/gtest.h"
#include "store/bgp_matcher.h"
#include "test_util.h"

namespace mpc::store {
namespace {

using rdf::kInvalidProperty;
using rdf::kInvalidVertex;
using rdf::Triple;

std::vector<Triple> ToyTriples() {
  // (s, p, o) over small id space.
  return {
      Triple(0, 0, 1), Triple(0, 0, 2), Triple(1, 0, 2),
      Triple(0, 1, 3), Triple(2, 1, 3), Triple(3, 2, 0),
  };
}

size_t CountScan(const TripleStore& store, uint32_t s, uint32_t p,
                 uint32_t o) {
  size_t n = 0;
  store.Scan(s, p, o, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

TEST(TripleStoreTest, DeduplicatesInput) {
  TripleStore store({Triple(0, 0, 1), Triple(0, 0, 1)});
  EXPECT_EQ(store.num_triples(), 1u);
}

TEST(TripleStoreTest, AllBoundCombinations) {
  TripleStore store(ToyTriples());
  // Fully unbound.
  EXPECT_EQ(CountScan(store, kInvalidVertex, kInvalidProperty,
                      kInvalidVertex),
            6u);
  // P bound.
  EXPECT_EQ(CountScan(store, kInvalidVertex, 0, kInvalidVertex), 3u);
  EXPECT_EQ(store.PropertyCount(0), 3u);
  // P+S bound.
  EXPECT_EQ(CountScan(store, 0, 0, kInvalidVertex), 2u);
  // P+O bound.
  EXPECT_EQ(CountScan(store, kInvalidVertex, 1, 3), 2u);
  // S bound only.
  EXPECT_EQ(CountScan(store, 0, kInvalidProperty, kInvalidVertex), 3u);
  // O bound only.
  EXPECT_EQ(CountScan(store, kInvalidVertex, kInvalidProperty, 2), 2u);
  // Point lookup.
  EXPECT_EQ(CountScan(store, 3, 2, 0), 1u);
  EXPECT_EQ(CountScan(store, 3, 2, 1), 0u);
  // S+O bound, P unbound.
  EXPECT_EQ(CountScan(store, 0, kInvalidProperty, 2), 1u);
}

TEST(TripleStoreTest, ScanEarlyStop) {
  TripleStore store(ToyTriples());
  size_t seen = 0;
  bool completed = store.Scan(kInvalidVertex, kInvalidProperty,
                              kInvalidVertex, [&](const Triple&) {
                                ++seen;
                                return seen < 2;
                              });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 2u);
}

TEST(TripleStoreTest, MissingPropertyIsEmpty) {
  TripleStore store(ToyTriples());
  EXPECT_EQ(store.PropertyCount(99), 0u);
  EXPECT_EQ(CountScan(store, kInvalidVertex, 99, kInvalidVertex), 0u);
}

TEST(TripleStoreTest, EmptyStore) {
  TripleStore store;
  EXPECT_EQ(store.num_triples(), 0u);
  EXPECT_EQ(CountScan(store, kInvalidVertex, kInvalidProperty,
                      kInvalidVertex),
            0u);
}

TEST(TripleStoreTest, CardinalityEstimatesAreExactForIndexedPrefixes) {
  TripleStore store(ToyTriples());
  EXPECT_EQ(store.EstimateCardinality(kInvalidVertex, 0, kInvalidVertex),
            3u);
  EXPECT_EQ(store.EstimateCardinality(0, 0, kInvalidVertex), 2u);
  EXPECT_EQ(store.EstimateCardinality(kInvalidVertex, 1, 3), 2u);
  EXPECT_EQ(store.EstimateCardinality(0, kInvalidProperty, kInvalidVertex),
            3u);
  EXPECT_EQ(store.EstimateCardinality(3, 2, 0), 1u);
  EXPECT_EQ(store.EstimateCardinality(3, 2, 2), 0u);
  // OSP-backed: object-only and (subject, object) are exact too.
  EXPECT_EQ(store.EstimateCardinality(kInvalidVertex, kInvalidProperty, 2),
            2u);
  EXPECT_EQ(store.EstimateCardinality(0, kInvalidProperty, 2), 1u);
  EXPECT_EQ(store.EstimateCardinality(kInvalidVertex, kInvalidProperty, 3),
            2u);
}

// --- Matcher tests ---

rdf::RdfGraph MovieGraph() {
  return testutil::BuildGraph({
      {"film1", "starring", "actor1"},
      {"film1", "starring", "actor2"},
      {"film2", "starring", "actor2"},
      {"actor1", "livesIn", "city1"},
      {"actor2", "livesIn", "city1"},
      {"actor2", "spouse", "actor1"},
      {"film2", "sequelOf", "film1"},
  });
}

BindingTable Eval(const rdf::RdfGraph& g, const std::string& query_text) {
  sparql::QueryGraph q = testutil::ParseQueryOrDie(query_text);
  TripleStore store(g.triples());
  ResolvedQuery resolved = ResolveQuery(q, g);
  BindingTable t = BgpMatcher::EvaluateAll(store, resolved);
  t.Deduplicate();
  return t;
}

TEST(BgpMatcherTest, SinglePatternAllVariables) {
  rdf::RdfGraph g = MovieGraph();
  BindingTable t = Eval(g, "SELECT * WHERE { ?f " + testutil::T("starring") +
                               " ?a . }");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(BgpMatcherTest, ConstantSubject) {
  rdf::RdfGraph g = MovieGraph();
  BindingTable t =
      Eval(g, "SELECT * WHERE { " + testutil::T("film1") + " " +
                  testutil::T("starring") + " ?a . }");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(BgpMatcherTest, JoinAcrossPatterns) {
  rdf::RdfGraph g = MovieGraph();
  BindingTable t = Eval(
      g, "SELECT * WHERE { ?f " + testutil::T("starring") + " ?a . ?a " +
             testutil::T("livesIn") + " ?c . }");
  // (film1,actor1,city1), (film1,actor2,city1), (film2,actor2,city1)
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(BgpMatcherTest, TriangleHomomorphism) {
  rdf::RdfGraph g = MovieGraph();
  BindingTable t = Eval(
      g, "SELECT * WHERE { ?f " + testutil::T("starring") + " ?a . ?f " +
             testutil::T("starring") + " ?b . ?b " + testutil::T("spouse") +
             " ?a . }");
  // film1 stars actor1+actor2, actor2 spouse actor1 -> one match.
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(BgpMatcherTest, VariablePredicate) {
  rdf::RdfGraph g = MovieGraph();
  BindingTable t =
      Eval(g, "SELECT * WHERE { " + testutil::T("actor2") + " ?p ?x . }");
  // actor2: livesIn city1, spouse actor1 -> 2 rows.
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(BgpMatcherTest, RepeatedVariableWithinPattern) {
  rdf::RdfGraph g = testutil::BuildGraph({
      {"a", "p", "a"},
      {"a", "p", "b"},
  });
  BindingTable t =
      Eval(g, "SELECT * WHERE { ?x " + testutil::T("p") + " ?x . }");
  EXPECT_EQ(t.num_rows(), 1u);  // only the self-loop
}

TEST(BgpMatcherTest, UnknownConstantYieldsEmpty) {
  rdf::RdfGraph g = MovieGraph();
  BindingTable t = Eval(g, "SELECT * WHERE { ?x " +
                               testutil::T("nosuchprop") + " ?y . }");
  EXPECT_EQ(t.num_rows(), 0u);
  BindingTable t2 = Eval(g, "SELECT * WHERE { " + testutil::T("ghost") +
                                " " + testutil::T("starring") + " ?y . }");
  EXPECT_EQ(t2.num_rows(), 0u);
}

TEST(BgpMatcherTest, MaxResultsCap) {
  rdf::RdfGraph g = MovieGraph();
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?f " + testutil::T("starring") + " ?a . }");
  TripleStore store(g.triples());
  ResolvedQuery resolved = ResolveQuery(q, g);
  MatcherOptions options;
  options.max_results = 2;
  BindingTable t = BgpMatcher::EvaluateAll(store, resolved, options);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(BgpMatcherTest, SubsetEvaluation) {
  rdf::RdfGraph g = MovieGraph();
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?f " + testutil::T("starring") + " ?a . ?a " +
      testutil::T("livesIn") + " ?c . }");
  TripleStore store(g.triples());
  ResolvedQuery resolved = ResolveQuery(q, g);
  std::vector<size_t> second{1};
  BindingTable t = BgpMatcher::Evaluate(store, resolved, second);
  EXPECT_EQ(t.num_rows(), 2u);  // livesIn edges only
  EXPECT_EQ(t.var_ids.size(), 2u);  // ?a, ?c
}

TEST(BgpMatcherTest, AllConstantExistenceCheck) {
  rdf::RdfGraph g = MovieGraph();
  BindingTable present =
      Eval(g, "SELECT * WHERE { " + testutil::T("film2") + " " +
                  testutil::T("sequelOf") + " " + testutil::T("film1") +
                  " . ?f " + testutil::T("starring") + " ?a . }");
  EXPECT_EQ(present.num_rows(), 3u);
  BindingTable absent =
      Eval(g, "SELECT * WHERE { " + testutil::T("film1") + " " +
                  testutil::T("sequelOf") + " " + testutil::T("film2") +
                  " . ?f " + testutil::T("starring") + " ?a . }");
  EXPECT_EQ(absent.num_rows(), 0u);
}

TEST(BindingTableTest, ApplyProjection) {
  BindingTable t;
  t.var_ids = {0, 1, 2};
  t.rows = {{1, 7, 9}, {2, 7, 9}, {1, 7, 8}};
  // Project to (?2, ?0): column reorder + dedup.
  BindingTable p = ApplyProjection(t, {2, 0});
  EXPECT_EQ(p.var_ids, (std::vector<uint32_t>{2, 0}));
  EXPECT_EQ(p.num_rows(), 3u);
  // Project to ?1 alone: all rows collapse to one.
  BindingTable q = ApplyProjection(t, {1});
  EXPECT_EQ(q.num_rows(), 1u);
  EXPECT_EQ(q.rows[0], (std::vector<uint32_t>{7}));
  // Empty projection = SELECT *.
  EXPECT_EQ(ApplyProjection(t, {}).num_rows(), 3u);
  // Unknown var ids are skipped.
  BindingTable r = ApplyProjection(t, {5, 0});
  EXPECT_EQ(r.var_ids, (std::vector<uint32_t>{0}));
}

TEST(BindingTableTest, DeduplicateAndColumnOf) {
  BindingTable t;
  t.var_ids = {3, 5};
  t.rows = {{1, 2}, {1, 2}, {3, 4}};
  t.Deduplicate();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ColumnOf(5), 1u);
  EXPECT_EQ(t.ColumnOf(9), SIZE_MAX);
  EXPECT_EQ(t.ByteSize(), 2 * 2 * sizeof(uint32_t));
}

// Property-style: distributed-agnostic sanity — matcher agrees with a
// brute-force nested-loop evaluation on random graphs and 2-pattern
// queries.
TEST(BgpMatcherTest, AgreesWithBruteForceOnRandomGraphs) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    rdf::RdfGraph g = testutil::RandomGraph(rng, 20, 60, 3);
    // Query: ?x p0 ?y . ?y p1 ?z
    BindingTable t = Eval(
        g, "SELECT * WHERE { ?x <t:p0> ?y . ?y <t:p1> ?z . }");
    size_t expected = 0;
    std::set<std::vector<uint32_t>> expected_rows;
    rdf::PropertyId p0 = g.property_dict().Lookup("<t:p0>");
    rdf::PropertyId p1 = g.property_dict().Lookup("<t:p1>");
    if (p0 != rdf::kInvalidVertex && p1 != rdf::kInvalidVertex) {
      for (const Triple& a : g.EdgesWithProperty(p0)) {
        for (const Triple& b : g.EdgesWithProperty(p1)) {
          if (a.object == b.subject) {
            expected_rows.insert({a.subject, a.object, b.object});
          }
        }
      }
      expected = expected_rows.size();
    }
    EXPECT_EQ(t.num_rows(), expected) << "round " << round;
  }
}

}  // namespace
}  // namespace mpc::store

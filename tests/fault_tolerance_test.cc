#include <algorithm>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "exec/distributed_executor.h"
#include "exec/fault_model.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "mpc/mpc_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "test_util.h"

namespace mpc::exec {
namespace {

using rdf::RdfGraph;
using store::BindingTable;

RdfGraph TestGraph(uint64_t seed = 5) {
  Rng rng(seed);
  return testutil::RandomGraph(rng, 60, 240, 5, /*community=*/12,
                               /*escape=*/0.2);
}

Cluster MpcCluster(const RdfGraph& graph, uint32_t k, uint64_t seed = 3) {
  core::MpcOptions options;
  options.base.k = k;
  options.base.epsilon = 0.3;
  options.base.seed = seed;
  return Cluster::Build(core::MpcPartitioner(options).Partition(graph));
}

/// Ground truth for a degraded cluster under union semantics (Def 3.7):
/// each live site evaluates the full BGP on its own fragment (internal +
/// crossing replicas, which include the down sites' crossing edges) and
/// the row sets are unioned. Evaluating on a single merged store would be
/// wrong — it could join triples held by two *different* live sites,
/// which no per-site evaluation ever does.
BindingTable LiveUnionTruth(const Cluster& cluster,
                            const RdfGraph& graph,
                            const sparql::QueryGraph& query,
                            const std::vector<uint32_t>& down) {
  store::ResolvedQuery resolved = store::ResolveQuery(query, graph);
  BindingTable merged;
  bool first = true;
  for (uint32_t site = 0; site < cluster.k(); ++site) {
    if (std::find(down.begin(), down.end(), site) != down.end()) continue;
    const partition::Partition& p =
        cluster.partitioning().partition(site);
    std::vector<rdf::Triple> triples(p.internal_edges.begin(),
                                     p.internal_edges.end());
    triples.insert(triples.end(), p.crossing_edges.begin(),
                   p.crossing_edges.end());
    store::TripleStore store(std::move(triples));
    BindingTable table = store::BgpMatcher::EvaluateAll(store, resolved);
    if (first) {
      merged = std::move(table);
      first = false;
    } else {
      merged.rows.insert(merged.rows.end(), table.rows.begin(),
                         table.rows.end());
    }
  }
  merged.Deduplicate();
  return merged;
}

// --- FaultModel unit behavior. ---

TEST(FaultModelTest, DisabledInjectsNothing) {
  FaultModel model{FaultOptions{}};
  EXPECT_FALSE(model.enabled());
  for (uint32_t site = 0; site < 8; ++site) {
    for (size_t step = 0; step < 4; ++step) {
      EXPECT_EQ(model.Sample(site, step, 0), FaultKind::kNone);
      EXPECT_FALSE(model.DownBefore(site, step));
    }
  }
}

TEST(FaultModelTest, FailSitesCrashImmediatelyAndStayDown) {
  FaultOptions options;
  options.fail_sites = {2, 5};
  FaultModel model(options);
  EXPECT_EQ(model.Sample(2, 0, 0), FaultKind::kCrash);
  EXPECT_EQ(model.Sample(5, 3, 0), FaultKind::kCrash);
  EXPECT_TRUE(model.DownBefore(2, 0));
  EXPECT_FALSE(model.DownBefore(1, 3));
  EXPECT_EQ(model.Sample(1, 0, 0), FaultKind::kNone);
}

TEST(FaultModelTest, SamplingIsDeterministicAndSeedSensitive) {
  FaultOptions options;
  options.seed = 42;
  options.crash_rate = 0.2;
  options.transient_rate = 0.3;
  options.slowdown_rate = 0.2;
  FaultModel a(options);
  FaultModel b(options);
  options.seed = 43;
  FaultModel c(options);
  size_t differs = 0;
  for (uint32_t site = 0; site < 8; ++site) {
    for (size_t step = 0; step < 8; ++step) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_EQ(a.Sample(site, step, attempt),
                  b.Sample(site, step, attempt));
        differs +=
            a.Sample(site, step, attempt) != c.Sample(site, step, attempt);
      }
    }
  }
  EXPECT_GT(differs, 0u);
}

TEST(FaultModelTest, RetriesNeverCrash) {
  FaultOptions options;
  options.crash_rate = 1.0;
  FaultModel model(options);
  EXPECT_EQ(model.Sample(0, 0, 0), FaultKind::kCrash);
  for (int attempt = 1; attempt < 4; ++attempt) {
    EXPECT_NE(model.Sample(0, 0, attempt), FaultKind::kCrash);
  }
}

// --- Best-effort recovery: the replica failover data-path. ---

TEST(FaultToleranceTest, BestEffortCrashServesReplicasFromLiveSites) {
  RdfGraph graph = TestGraph();
  Cluster cluster = MpcCluster(graph, 4);
  DistributedExecutor::Options options;
  options.faults.fail_sites = {0};
  options.partial_results = PartialResultPolicy::kBestEffort;
  DistributedExecutor executor(cluster, graph, options);

  // IEQ star queries: union-only execution, so the live sites' answer is
  // exactly what their stores (incl. site 0's crossing-edge replicas)
  // hold.
  for (const std::string& text :
       {std::string("SELECT * WHERE { ?x <t:p0> ?y . }"),
        std::string("SELECT * WHERE { ?x <t:p0> ?y . ?x <t:p1> ?z . }")}) {
    sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
    Result<QueryResponse> response =
        executor.Execute(QueryRequest::FromQuery(query));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const ExecutionStats& stats = response->stats;
    BindingTable& result = response->bindings;
    EXPECT_TRUE(stats.independent);

    BindingTable expected = LiveUnionTruth(cluster, graph, query, {0});
    EXPECT_EQ(testutil::RowSet(result), testutil::RowSet(expected))
        << "best-effort must equal the live-union ground truth: " << text;

    BindingTable full = testutil::GroundTruth(graph, query);
    // Degraded answers are sound: a subset of the full result.
    for (const auto& row : result.rows) {
      EXPECT_TRUE(testutil::RowSet(full).count(row));
    }
    EXPECT_FALSE(stats.complete);
    EXPECT_GT(stats.sites_failed, 0u);
    EXPECT_GT(stats.failed_site_vertices, 0u);
    EXPECT_LE(stats.replicated_failed_vertices, stats.failed_site_vertices);
    EXPECT_GT(stats.completeness_bound, 0.0);
    EXPECT_LT(stats.completeness_bound, 1.0);
  }
}

TEST(FaultToleranceTest, FailoverHitsCountReplicaServedRows) {
  RdfGraph graph = TestGraph(6);
  Cluster cluster = MpcCluster(graph, 4);
  DistributedExecutor::Options options;
  options.faults.fail_sites = {1};
  options.partial_results = PartialResultPolicy::kBestEffort;
  DistributedExecutor executor(cluster, graph, options);

  sparql::QueryGraph query =
      testutil::ParseQueryOrDie("SELECT * WHERE { ?x <t:p0> ?y . }");
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok());
  const ExecutionStats& stats = response->stats;

  // Recount independently: rows binding a vertex owned by site 1.
  const auto& part = cluster.partitioning().assignment().part;
  size_t expected_hits = 0;
  for (const auto& row : response->bindings.rows) {
    bool hit = false;
    for (uint32_t v : row) hit |= (v < part.size() && part[v] == 1);
    expected_hits += hit;
  }
  EXPECT_EQ(stats.failover_hits, expected_hits);
  if (expected_hits > 0) {
    EXPECT_FALSE(stats.complete);
  }
}

TEST(FaultToleranceTest, TransientFaultsRecoverWithRetries) {
  RdfGraph graph = TestGraph(7);
  Cluster cluster = MpcCluster(graph, 4);
  DistributedExecutor::Options options;
  options.faults.seed = 11;
  options.faults.transient_rate = 0.4;
  options.network.max_retries = 8;  // 0.4^9: retries always win
  options.partial_results = PartialResultPolicy::kFail;
  DistributedExecutor executor(cluster, graph, options);

  sparql::QueryGraph query = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . }");
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const ExecutionStats& stats = response->stats;
  EXPECT_EQ(testutil::RowSet(response->bindings),
            testutil::RowSet(testutil::GroundTruth(graph, query)));
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.sites_failed, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.fault_wait_millis, 0.0);
}

// --- kFail policy: errors with the right codes. ---

TEST(FaultToleranceTest, FailPolicyReturnsUnavailableOnCrash) {
  RdfGraph graph = TestGraph(8);
  Cluster cluster = MpcCluster(graph, 4);
  DistributedExecutor::Options options;
  options.faults.fail_sites = {2};
  options.partial_results = PartialResultPolicy::kFail;
  DistributedExecutor executor(cluster, graph, options);
  Result<QueryResponse> response = executor.Execute(
      QueryRequest::FromText("SELECT * WHERE { ?x <t:p0> ?y . }"));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  // The executor-level error also names the query it failed on.
  EXPECT_NE(response.status().message().find("<t:p0>"), std::string::npos)
      << response.status().ToString();
}

TEST(FaultToleranceTest, FailPolicyReturnsUnavailableAfterRetries) {
  RdfGraph graph = TestGraph(9);
  Cluster cluster = MpcCluster(graph, 4);
  DistributedExecutor::Options options;
  options.faults.transient_rate = 1.0;  // every attempt fails
  options.network.max_retries = 3;
  DistributedExecutor executor(cluster, graph, options);
  const uint64_t retries_before =
      obs::MetricsRegistry::Default().CounterRef("exec.retries").value();
  Result<QueryResponse> response = executor.Execute(
      QueryRequest::FromText("SELECT * WHERE { ?x <t:p0> ?y . }"));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  // The first failing site burned exactly max_retries retries (stats are
  // not returned on error, but the exec.retries counter still is).
  EXPECT_EQ(obs::MetricsRegistry::Default().CounterRef("exec.retries").value(),
            retries_before + 3u);
}

TEST(FaultToleranceTest, DeadlineExceededWhenSlowdownsMissTimeout) {
  RdfGraph graph = TestGraph(10);
  Cluster cluster = MpcCluster(graph, 4);
  DistributedExecutor::Options options;
  options.faults.slowdown_rate = 1.0;
  options.network.site_timeout_ms = 50.0;
  options.network.max_retries = 2;
  DistributedExecutor executor(cluster, graph, options);
  Result<QueryResponse> response = executor.Execute(
      QueryRequest::FromText("SELECT * WHERE { ?x <t:p0> ?y . }"));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultToleranceTest, SlowdownWithoutDeadlineOnlyCostsTime) {
  RdfGraph graph = TestGraph(11);
  Cluster cluster = MpcCluster(graph, 4);
  DistributedExecutor::Options options;
  options.faults.slowdown_rate = 1.0;  // every site slow, no deadline
  DistributedExecutor executor(cluster, graph, options);
  sparql::QueryGraph query =
      testutil::ParseQueryOrDie("SELECT * WHERE { ?x <t:p0> ?y . }");
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->stats.complete);
  EXPECT_EQ(testutil::RowSet(response->bindings),
            testutil::RowSet(testutil::GroundTruth(graph, query)));
}

// --- Stats invariants and determinism. ---

/// The deterministic (non-timing) slice of ExecutionStats.
auto StatKey(const ExecutionStats& stats) {
  return std::make_tuple(stats.cls, stats.independent, stats.num_subqueries,
                         stats.num_results, stats.shipped_bytes,
                         stats.sites_evaluated, stats.sites_pruned,
                         stats.sites_failed, stats.retries,
                         stats.failover_hits, stats.complete,
                         stats.failed_site_vertices,
                         stats.replicated_failed_vertices,
                         stats.completeness_bound, stats.local_rows,
                         stats.fault_wait_millis);
}

TEST(FaultToleranceTest, SameSeedSameStatsAtAnyThreadCount) {
  RdfGraph graph = TestGraph(12);
  for (bool vp : {false, true}) {
    partition::Partitioning partitioning;
    if (vp) {
      partition::PartitionerOptions base{.k = 8, .epsilon = 0.3, .seed = 3};
      partitioning = partition::VpPartitioner(base).Partition(graph);
    } else {
      core::MpcOptions options;
      options.base.k = 8;
      options.base.epsilon = 0.3;
      options.base.seed = 3;
      partitioning = core::MpcPartitioner(options).Partition(graph);
    }
    Cluster cluster = Cluster::Build(std::move(partitioning));
    for (const std::string& text :
         {std::string("SELECT * WHERE { ?x <t:p0> ?y . ?x <t:p1> ?z . }"),
          std::string(
              "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?c <t:p2> "
              "?d . }")}) {
      sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
      std::vector<std::vector<std::vector<uint32_t>>> row_sets;
      std::vector<decltype(StatKey(ExecutionStats{}))> keys;
      for (int threads : {1, 8}) {
        DistributedExecutor::Options options;
        options.num_threads = threads;
        options.faults.seed = 99;
        options.faults.crash_rate = 0.15;
        options.faults.transient_rate = 0.2;
        options.faults.slowdown_rate = 0.1;
        options.network.site_timeout_ms = 25.0;
        options.partial_results = PartialResultPolicy::kBestEffort;
        DistributedExecutor executor(cluster, graph, options);
        Result<QueryResponse> response =
            executor.Execute(QueryRequest::FromQuery(query));
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        response->bindings.Deduplicate();  // canonical row order
        row_sets.push_back(response->bindings.rows);
        keys.push_back(StatKey(response->stats));
      }
      EXPECT_EQ(row_sets[0], row_sets[1]) << text;
      EXPECT_EQ(keys[0], keys[1]) << text;
    }
  }
}

TEST(FaultToleranceTest, SiteSlotInvariantHoldsUnderFaults) {
  RdfGraph graph = TestGraph(13);
  for (uint64_t fault_seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    for (bool hash : {false, true}) {
      Cluster cluster =
          hash ? Cluster::Build(
                     partition::SubjectHashPartitioner(
                         partition::PartitionerOptions{
                             .k = 4, .epsilon = 0.3, .seed = 7})
                         .Partition(graph))
               : MpcCluster(graph, 4);
      DistributedExecutor::Options options;
      options.faults.seed = fault_seed;
      options.faults.crash_rate = 0.2;
      options.faults.transient_rate = 0.2;
      options.faults.slowdown_rate = 0.1;
      options.network.site_timeout_ms = 10.0;
      options.partial_results = PartialResultPolicy::kBestEffort;
      DistributedExecutor executor(cluster, graph, options);
      for (const std::string& text :
           {std::string("SELECT * WHERE { ?x <t:p0> ?y . }"),
            std::string("SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . "
                        "?c <t:p2> ?d . }"),
            std::string("SELECT * WHERE { ?x ?p ?y . ?x <t:p4> ?z . }")}) {
        sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
        Result<QueryResponse> response =
            executor.Execute(QueryRequest::FromQuery(query));
        ASSERT_TRUE(response.ok());
        const ExecutionStats& stats = response->stats;
        EXPECT_EQ(
            stats.sites_evaluated + stats.sites_pruned + stats.sites_failed,
            cluster.k() * stats.num_subqueries)
            << text << " seed " << fault_seed;
      }
    }
  }
}

TEST(FaultToleranceTest, VpInvariantAndIncompletenessUnderCrash) {
  RdfGraph graph = TestGraph(14);
  partition::PartitionerOptions base{.k = 4, .epsilon = 0.3, .seed = 5};
  Cluster cluster =
      Cluster::Build(partition::VpPartitioner(base).Partition(graph));
  DistributedExecutor::Options options;
  options.faults.fail_sites = {0, 1};
  options.partial_results = PartialResultPolicy::kBestEffort;
  DistributedExecutor executor(cluster, graph, options);
  for (const std::string& text :
       {std::string("SELECT * WHERE { ?x <t:p0> ?y . }"),
        std::string(
            "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . }")}) {
    sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
    Result<QueryResponse> response =
        executor.Execute(QueryRequest::FromQuery(query));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const ExecutionStats& stats = response->stats;
    EXPECT_EQ(stats.sites_evaluated + stats.sites_pruned + stats.sites_failed,
              cluster.k() * stats.num_subqueries)
        << text;
    // VP keeps no replicas: nothing is recoverable from the dead sites.
    EXPECT_EQ(stats.failover_hits, 0u);
    if (stats.sites_failed > 0) {
      EXPECT_FALSE(stats.complete);
      EXPECT_LT(stats.completeness_bound, 1.0);
    }
  }
}

// --- Cluster replica lookup. ---

TEST(ClusterReplicaTest, CoverageCountsDownSiteData) {
  RdfGraph graph = TestGraph(15);
  Cluster cluster = MpcCluster(graph, 4);
  SiteAvailability avail = cluster.AllUp();
  EXPECT_EQ(cluster.ComputeReplicaCoverage(avail).failed_owned_vertices, 0u);

  avail.MarkDown(0);
  ReplicaCoverage coverage = cluster.ComputeReplicaCoverage(avail);
  EXPECT_EQ(coverage.failed_owned_vertices, cluster.OwnedVertexCount(0));
  EXPECT_LE(coverage.replicated_on_live, coverage.failed_owned_vertices);
  // Internal edges of the down site are always unrecoverable.
  EXPECT_GE(coverage.lost_triples,
            cluster.partitioning().partition(0).internal_edges.size());

  // More failures never shrink the loss.
  avail.MarkDown(1);
  ReplicaCoverage coverage2 = cluster.ComputeReplicaCoverage(avail);
  EXPECT_GE(coverage2.lost_triples, coverage.lost_triples);
  EXPECT_GE(coverage2.failed_owned_vertices, coverage.failed_owned_vertices);
}

}  // namespace
}  // namespace mpc::exec

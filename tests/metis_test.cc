#include "metis/partitioner.h"

#include <numeric>

#include "common/random.h"
#include "gtest/gtest.h"
#include "metis/coarsen.h"
#include "metis/csr_graph.h"
#include "metis/initial_partition.h"
#include "metis/refine.h"

namespace mpc::metis {
namespace {

CsrGraph Ring(size_t n) {
  std::vector<WeightedEdge> edges;
  for (uint32_t i = 0; i < n; ++i) {
    edges.push_back({i, static_cast<uint32_t>((i + 1) % n), 1});
  }
  return CsrGraph::FromEdges(n, edges);
}

/// Two dense cliques joined by a single bridge edge.
CsrGraph TwoCliques(size_t clique) {
  std::vector<WeightedEdge> edges;
  auto add_clique = [&](uint32_t base) {
    for (uint32_t i = 0; i < clique; ++i) {
      for (uint32_t j = i + 1; j < clique; ++j) {
        edges.push_back({base + i, base + j, 1});
      }
    }
  };
  add_clique(0);
  add_clique(static_cast<uint32_t>(clique));
  edges.push_back({0, static_cast<uint32_t>(clique), 1});
  return CsrGraph::FromEdges(clique * 2, edges);
}

TEST(CsrGraphTest, CombinesParallelEdges) {
  std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 0, 2}, {0, 1, 3}};
  CsrGraph g = CsrGraph::FromEdges(2, edges);
  ASSERT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].neighbor, 1u);
  EXPECT_EQ(g.Neighbors(0)[0].weight, 6u);
  EXPECT_EQ(g.Neighbors(1)[0].weight, 6u);
}

TEST(CsrGraphTest, DropsSelfLoops) {
  std::vector<WeightedEdge> edges = {{0, 0, 5}, {0, 1, 1}};
  CsrGraph g = CsrGraph::FromEdges(2, edges);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(CsrGraphTest, DefaultVertexWeightsAreOne) {
  CsrGraph g = Ring(4);
  EXPECT_EQ(g.total_vertex_weight(), 4u);
  EXPECT_EQ(g.VertexWeight(2), 1u);
}

TEST(CsrGraphTest, CustomVertexWeights) {
  std::vector<WeightedEdge> edges = {{0, 1, 1}};
  CsrGraph g = CsrGraph::FromEdges(2, edges, {10, 20});
  EXPECT_EQ(g.total_vertex_weight(), 30u);
  EXPECT_EQ(g.VertexWeight(1), 20u);
}

TEST(CsrGraphTest, FromTriplesSymmetrizes) {
  std::vector<rdf::Triple> triples = {rdf::Triple(0, 7, 1),
                                      rdf::Triple(1, 3, 0)};
  CsrGraph g = CsrGraph::FromTriples(2, triples);
  // Two directed labeled edges collapse into one undirected weight-2 edge.
  ASSERT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].weight, 2u);
}

TEST(CsrGraphTest, EdgeCutAndBalance) {
  CsrGraph g = Ring(4);
  std::vector<uint32_t> part = {0, 0, 1, 1};
  EXPECT_EQ(EdgeCut(g, part), 2u);  // ring cut twice
  EXPECT_DOUBLE_EQ(BalanceRatio(g, part, 2), 1.0);
  std::vector<uint32_t> skewed = {0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(BalanceRatio(g, skewed, 2), 1.5);
}

TEST(CoarsenTest, MatchingIsSymmetricAndValid) {
  CsrGraph g = TwoCliques(8);
  Rng rng(1);
  auto match = HeavyEdgeMatching(g, rng);
  ASSERT_EQ(match.size(), g.num_vertices());
  for (uint32_t v = 0; v < match.size(); ++v) {
    EXPECT_EQ(match[match[v]], v) << "matching not symmetric at " << v;
  }
}

TEST(CoarsenTest, ContractionPreservesTotalWeight) {
  CsrGraph g = TwoCliques(8);
  Rng rng(2);
  auto match = HeavyEdgeMatching(g, rng);
  CoarseLevel level = ContractMatching(g, match);
  EXPECT_EQ(level.graph.total_vertex_weight(), g.total_vertex_weight());
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(level.fine_to_coarse[v], level.graph.num_vertices());
  }
}

TEST(CoarsenTest, ContractionPreservesCutStructure) {
  // Contracting a matching never increases the weight of any cut that
  // respects the supervertices; sanity check that bridge weight survives.
  CsrGraph g = TwoCliques(6);
  Rng rng(3);
  auto hierarchy = CoarsenToSize(g, 4, rng);
  ASSERT_FALSE(hierarchy.empty());
  const CsrGraph& coarsest = hierarchy.back().graph;
  EXPECT_LE(coarsest.num_vertices(), g.num_vertices());
  EXPECT_EQ(coarsest.total_vertex_weight(), g.total_vertex_weight());
}

TEST(InitialPartitionTest, CoversAllVerticesWithinK) {
  CsrGraph g = Ring(37);
  Rng rng(4);
  for (uint32_t k : {2u, 3u, 8u}) {
    auto part = GreedyGrowPartition(g, k, rng);
    ASSERT_EQ(part.size(), 37u);
    for (uint32_t p : part) EXPECT_LT(p, k);
  }
}

TEST(InitialPartitionTest, HandlesDisconnectedGraph) {
  // Three disjoint edges, k=2.
  std::vector<WeightedEdge> edges = {{0, 1, 1}, {2, 3, 1}, {4, 5, 1}};
  CsrGraph g = CsrGraph::FromEdges(6, edges);
  Rng rng(5);
  auto part = GreedyGrowPartition(g, 2, rng);
  for (uint32_t p : part) EXPECT_LT(p, 2u);
}

TEST(InitialPartitionTest, KGreaterThanN) {
  CsrGraph g = Ring(3);
  Rng rng(6);
  auto part = GreedyGrowPartition(g, 8, rng);
  for (uint32_t p : part) EXPECT_LT(p, 8u);
}

TEST(RefineTest, ImprovesOrKeepsCut) {
  CsrGraph g = TwoCliques(10);
  Rng rng(7);
  auto part = RandomPartition(g, 2, rng);
  uint64_t before = EdgeCut(g, part);
  RefineOptions options{.k = 2, .epsilon = 0.1, .max_passes = 8};
  RefinePartition(g, options, &part);
  EXPECT_LE(EdgeCut(g, part), before);
}

TEST(RefineTest, FindsTheBridgeCut) {
  CsrGraph g = TwoCliques(12);
  Rng rng(8);
  auto part = RandomPartition(g, 2, rng);
  RefineOptions options{.k = 2, .epsilon = 0.1, .max_passes = 20};
  RefinePartition(g, options, &part);
  EnforceBalance(g, options, &part);
  // The optimal 2-cut of two cliques joined by one edge is 1.
  EXPECT_LE(EdgeCut(g, part), 3u);
}

TEST(RefineTest, EnforceBalanceRespectsCap) {
  CsrGraph g = Ring(40);
  std::vector<uint32_t> part(40, 0);  // grossly imbalanced
  RefineOptions options{.k = 4, .epsilon = 0.1, .max_passes = 4};
  EnforceBalance(g, options, &part);
  std::vector<uint64_t> weight(4, 0);
  for (uint32_t v = 0; v < 40; ++v) weight[part[v]] += 1;
  uint64_t cap = static_cast<uint64_t>(1.1 * 40 / 4);
  for (uint64_t w : weight) EXPECT_LE(w, cap);
}

struct MlpCase {
  uint32_t k;
  uint64_t seed;
};

class MultilevelPartitionerTest : public ::testing::TestWithParam<MlpCase> {};

TEST_P(MultilevelPartitionerTest, ValidBalancedAndBeatsRandom) {
  const auto [k, seed] = GetParam();
  // Community graph: 16 communities of 25, sparse cross links.
  Rng rng(seed);
  std::vector<WeightedEdge> edges;
  const size_t communities = 16, size = 25;
  const size_t n = communities * size;
  for (uint32_t c = 0; c < communities; ++c) {
    uint32_t base = c * size;
    for (uint32_t i = 0; i < size * 3; ++i) {
      edges.push_back({base + static_cast<uint32_t>(rng.Below(size)),
                       base + static_cast<uint32_t>(rng.Below(size)), 1});
    }
  }
  for (uint32_t i = 0; i < 60; ++i) {
    edges.push_back({static_cast<uint32_t>(rng.Below(n)),
                     static_cast<uint32_t>(rng.Below(n)), 1});
  }
  CsrGraph g = CsrGraph::FromEdges(n, edges);

  MlpOptions options;
  options.k = k;
  options.epsilon = 0.1;
  options.seed = seed;
  MultilevelPartitioner partitioner(options);
  auto part = partitioner.Partition(g);

  ASSERT_EQ(part.size(), n);
  for (uint32_t p : part) ASSERT_LT(p, k);
  EXPECT_LE(BalanceRatio(g, part, k), 1.1 + 1e-9);

  Rng rng2(seed + 1);
  auto random_part = RandomPartition(g, k, rng2);
  EXPECT_LT(EdgeCut(g, part), EdgeCut(g, random_part))
      << "multilevel should beat random for k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultilevelPartitionerTest,
                         ::testing::Values(MlpCase{2, 1}, MlpCase{4, 2},
                                           MlpCase{8, 3}, MlpCase{8, 99},
                                           MlpCase{16, 4}));

TEST(MultilevelPartitionerTest, KEqualsOne) {
  CsrGraph g = Ring(10);
  MlpOptions options;
  options.k = 1;
  auto part = MultilevelPartitioner(options).Partition(g);
  for (uint32_t p : part) EXPECT_EQ(p, 0u);
}

TEST(MultilevelPartitionerTest, EmptyGraph) {
  CsrGraph g;
  MlpOptions options;
  options.k = 4;
  EXPECT_TRUE(MultilevelPartitioner(options).Partition(g).empty());
}

TEST(MultilevelPartitionerTest, WeightedSupervertices) {
  // MPC's coarsened graphs have weighted vertices; the balance constraint
  // must apply to weights, not counts.
  std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 1}, {2, 3, 1},
                                     {3, 0, 1}};
  CsrGraph g = CsrGraph::FromEdges(4, edges, {100, 1, 1, 100});
  MlpOptions options;
  options.k = 2;
  options.epsilon = 0.2;
  auto part = MultilevelPartitioner(options).Partition(g);
  // The two heavy vertices must not share a partition.
  EXPECT_NE(part[0], part[3]);
}

}  // namespace
}  // namespace mpc::metis

// Distributed-trace context propagation: the ambient TraceContext, its
// wire codec on EvalRequest/EvalReply (protocol v2), remote-span ingest
// (remap + re-parent + re-base), and merged-trace assembly under
// concurrency. Codec tests follow net_frame_test's rigor: full round
// trips, every-prefix truncation sweeps, random single-byte corruption.

#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "exec/cluster.h"
#include "exec/rpc_protocol.h"
#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace mpc::exec {
namespace {

class TraceContextTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::StopTracing(); }
};

const obs::TraceEvent* FindEvent(const std::vector<obs::TraceEvent>& events,
                                 const std::string& name) {
  for (const obs::TraceEvent& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Ambient context semantics.

TEST_F(TraceContextTest, TopLevelSpanIsItsOwnTraceRoot) {
  obs::StartTracing();
  { obs::TraceSpan a("root.a"); }
  { obs::TraceSpan b("root.b"); }
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  const obs::TraceEvent* a = FindEvent(events, "root.a");
  const obs::TraceEvent* b = FindEvent(events, "root.b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // A root with no ambient context starts its own trace...
  EXPECT_EQ(a->trace_id, a->span_id);
  EXPECT_EQ(b->trace_id, b->span_id);
  // ...and sibling roots are distinct traces.
  EXPECT_NE(a->trace_id, b->trace_id);
}

TEST_F(TraceContextTest, NestedSpansInheritTheRootsTraceId) {
  obs::StartTracing();
  {
    obs::TraceSpan root("q");
    obs::TraceSpan child("q.child");
    obs::TraceSpan grandchild("q.grandchild");
  }
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  ASSERT_EQ(events.size(), 3u);
  const obs::TraceEvent* root = FindEvent(events, "q");
  for (const obs::TraceEvent& e : events) {
    EXPECT_EQ(e.trace_id, root->span_id) << e.name;
  }
}

TEST_F(TraceContextTest, ScopedContextInstallsAndRestores) {
  obs::StartTracing();
  obs::TraceContext ctx;
  uint64_t outer_span = 0;
  {
    obs::TraceSpan outer("outer");
    ctx = obs::CurrentTraceContext();
    EXPECT_EQ(ctx.parent_span_id, obs::CurrentSpanId());
    EXPECT_FALSE(ctx.empty());
    outer_span = obs::CurrentSpanId();
    {
      obs::TraceContext tagged = ctx;
      tagged.query_tag = "tenant-7";
      obs::ScopedTraceContext scope(tagged);
      EXPECT_EQ(obs::CurrentQueryTag(), "tenant-7");
      obs::TraceSpan inner("inner");
      EXPECT_EQ(obs::CurrentTraceContext().trace_id, ctx.trace_id);
    }
    // Everything restored: span, tag.
    EXPECT_EQ(obs::CurrentSpanId(), outer_span);
    EXPECT_EQ(obs::CurrentQueryTag(), "");
  }
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  const obs::TraceEvent* inner = FindEvent(events, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->trace_id, ctx.trace_id);
  EXPECT_EQ(inner->parent_id, outer_span);
}

TEST_F(TraceContextTest, EmptyContextIsolatesTheScope) {
  obs::StartTracing();
  obs::TraceSpan outer("outer");
  {
    obs::ScopedTraceContext scope(obs::TraceContext{});
    obs::TraceSpan inner("isolated");
  }
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  const obs::TraceEvent* inner = FindEvent(events, "isolated");
  ASSERT_NE(inner, nullptr);
  // Isolated scope: the span rooted a fresh trace, not the outer one.
  EXPECT_EQ(inner->parent_id, 0u);
  EXPECT_EQ(inner->trace_id, inner->span_id);
}

TEST_F(TraceContextTest, DisabledTracingYieldsEmptyContext) {
  ASSERT_FALSE(obs::TracingEnabled());
  obs::TraceSpan span("never");
  EXPECT_TRUE(obs::CurrentTraceContext().empty());
}

// Merged assembly under concurrency: 8 threads record spans under one
// propagated context; no span is lost, every span carries the trace id,
// and every parent edge resolves within the extracted trace.
TEST_F(TraceContextTest, EightThreadsAssembleOneTraceWithoutLoss) {
  obs::StartTracing();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  uint64_t trace_id = 0;
  {
    obs::TraceSpan root("fanout.root");
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    trace_id = ctx.trace_id;
    ParallelFor(0, kThreads, 1, kThreads, [&](size_t t) {
      obs::ScopedTraceContext scope(ctx);
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan outer("w.outer");
        obs::TraceSpan inner("w.inner");
        (void)t;
      }
    });
  }
  const std::vector<obs::TraceEvent> events =
      obs::ExtractTraceForId(trace_id);
  // root + per-thread outer/inner pairs, none lost.
  ASSERT_EQ(events.size(), 1u + 2u * kThreads * kSpansPerThread);
  std::set<uint64_t> span_ids;
  for (const obs::TraceEvent& e : events) {
    EXPECT_EQ(e.trace_id, trace_id);
    span_ids.insert(e.span_id);
  }
  EXPECT_EQ(span_ids.size(), events.size()) << "span ids must be unique";
  const obs::TraceEvent* root = FindEvent(events, "fanout.root");
  ASSERT_NE(root, nullptr);
  for (const obs::TraceEvent& e : events) {
    if (e.span_id == root->span_id) continue;
    // Parent closure: every parent edge resolves inside the trace.
    EXPECT_TRUE(span_ids.count(e.parent_id) == 1) << e.name;
    if (e.name == "w.outer") EXPECT_EQ(e.parent_id, root->span_id);
  }
}

// ---------------------------------------------------------------------------
// Remote-span ingest.

TEST_F(TraceContextTest, RecordRemoteSpansRemapsReparentsAndStampsPid) {
  obs::StartTracing();
  uint64_t trace_id = 0;
  uint64_t attempt_span = 0;
  {
    obs::TraceSpan attempt("rpc.attempt");
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    trace_id = ctx.trace_id;
    attempt_span = ctx.parent_span_id;

    // Worker-local batch: root (id 7, parent 0 out-of-batch) with one
    // child (id 8). Ids chosen to collide with plausible local ids.
    obs::TraceEvent wroot;
    wroot.name = "site.eval";
    wroot.span_id = 7;
    wroot.parent_id = 0;
    wroot.start_us = 100.0;
    wroot.dur_us = 50.0;
    obs::TraceEvent wchild;
    wchild.name = "site.scan";
    wchild.span_id = 8;
    wchild.parent_id = 7;
    wchild.start_us = 110.0;
    wchild.dur_us = 20.0;
    obs::RecordRemoteSpans({wroot, wchild}, trace_id, attempt_span,
                           /*delta_us=*/1000.0, /*pid=*/4242);
  }
  const std::vector<obs::TraceEvent> events =
      obs::ExtractTraceForId(trace_id);
  ASSERT_EQ(events.size(), 3u);
  const obs::TraceEvent* attempt = FindEvent(events, "rpc.attempt");
  const obs::TraceEvent* root = FindEvent(events, "site.eval");
  const obs::TraceEvent* child = FindEvent(events, "site.scan");
  ASSERT_NE(attempt, nullptr);
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  // Out-of-batch parent -> re-parented to the coordinator attempt span.
  EXPECT_EQ(root->parent_id, attempt->span_id);
  // In-batch edge remapped consistently; ids no longer worker-local.
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_NE(root->span_id, 7u);
  EXPECT_NE(child->span_id, 8u);
  // Clock re-based and pid stamped.
  EXPECT_DOUBLE_EQ(root->start_us, 1100.0);
  EXPECT_DOUBLE_EQ(child->start_us, 1110.0);
  EXPECT_EQ(root->pid, 4242u);
  EXPECT_EQ(child->pid, 4242u);
  EXPECT_EQ(attempt->pid, 0u);
}

TEST_F(TraceContextTest, MergedChromeJsonCarriesTraceIdAndRealPids) {
  obs::StartTracing();
  uint64_t trace_id = 0;
  {
    obs::TraceSpan attempt("rpc.attempt");
    trace_id = obs::CurrentTraceContext().trace_id;
    obs::TraceEvent remote;
    remote.name = "site.eval";
    remote.span_id = 1;
    remote.start_us = 5.0;
    remote.dur_us = 1.0;
    obs::RecordRemoteSpans({remote}, trace_id,
                           obs::CurrentTraceContext().parent_span_id, 0.0,
                           999);
  }
  const std::string json =
      obs::TraceEventsToChromeJson(obs::ExtractTraceForId(trace_id));
  Result<obs::JsonValue> parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  std::set<double> pids;
  for (const obs::JsonValue& e : events->array) {
    const obs::JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    const obs::JsonValue* tid = args->Find("trace_id");
    ASSERT_NE(tid, nullptr);
    EXPECT_EQ(tid->number, static_cast<double>(trace_id));
    pids.insert(e.Find("pid")->number);
  }
  // Local events export as pid 1; the remote keeps its real pid.
  EXPECT_EQ(pids, (std::set<double>{1.0, 999.0}));
}

// ---------------------------------------------------------------------------
// Wire codec: EvalRequest trace context.

store::ResolvedQuery MakeResolved() {
  store::ResolvedQuery resolved;
  resolved.num_vars = 2;
  store::ResolvedPattern p;
  p.s_is_var = true;
  p.s = 0;
  p.p = 17;
  p.o_is_var = true;
  p.o = 1;
  resolved.patterns.push_back(p);
  return resolved;
}

TEST(TraceCodecTest, EvalRequestRoundTripsTraceContext) {
  const store::ResolvedQuery resolved = MakeResolved();
  const std::vector<size_t> indices = {0};
  SiteEvalRequest request;
  request.pattern_indices = indices;
  obs::TraceContext trace;
  trace.trace_id = 0xDEADBEEFCAFEF00Dull;
  trace.parent_span_id = 42;
  trace.query_tag = "replay:LQ2 \"quoted\"\n";
  Result<EvalRequestMsg> decoded =
      DecodeEvalRequest(EncodeEvalRequest(resolved, request, trace));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace.trace_id, trace.trace_id);
  EXPECT_EQ(decoded->trace.parent_span_id, trace.parent_span_id);
  EXPECT_EQ(decoded->trace.query_tag, trace.query_tag);
}

TEST(TraceCodecTest, EvalRequestWithoutContextDecodesEmpty) {
  const store::ResolvedQuery resolved = MakeResolved();
  const std::vector<size_t> indices = {0};
  SiteEvalRequest request;
  request.pattern_indices = indices;
  Result<EvalRequestMsg> decoded =
      DecodeEvalRequest(EncodeEvalRequest(resolved, request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->trace.empty());
  EXPECT_EQ(decoded->trace.parent_span_id, 0u);
  EXPECT_TRUE(decoded->trace.query_tag.empty());
}

// ---------------------------------------------------------------------------
// Wire codec: EvalReply span list.

std::vector<obs::TraceEvent> MakeSpans() {
  std::vector<obs::TraceEvent> spans;
  obs::TraceEvent root;
  root.name = "site.eval";
  root.span_id = 1;
  root.parent_id = 0;
  root.tid = 0;
  root.depth = 0;
  root.start_us = 1234.5;
  root.dur_us = 99.25;
  root.attrs.push_back({"site", obs::AttrValue::Uint(3)});
  root.attrs.push_back({"delta", obs::AttrValue::Int(-7)});
  root.attrs.push_back({"ratio", obs::AttrValue::Double(0.125)});
  root.attrs.push_back({"tag", obs::AttrValue::Str("q\"uote\\d")});
  spans.push_back(root);
  obs::TraceEvent child;
  child.name = "site.scan";
  child.span_id = 2;
  child.parent_id = 1;
  child.tid = 1;
  child.depth = 1;
  child.start_us = 1240.0;
  child.dur_us = 10.0;
  spans.push_back(child);
  return spans;
}

SiteEvalReply MakeReply() {
  SiteEvalReply reply;
  reply.table.var_ids = {0, 1};
  reply.table.rows = {{1, 2}, {3, 4}};
  reply.bloom_dropped = 5;
  reply.eval_millis = 2.5;
  return reply;
}

TEST(TraceCodecTest, EvalReplyRoundTripsSpansWithEveryAttrKind) {
  const std::vector<obs::TraceEvent> spans = MakeSpans();
  SiteEvalReply decoded;
  std::vector<obs::TraceEvent> decoded_spans;
  Status st = DecodeEvalReply(EncodeEvalReply(MakeReply(), spans), &decoded,
                              &decoded_spans);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(decoded.table.rows.size(), 2u);
  ASSERT_EQ(decoded_spans.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const obs::TraceEvent& a = spans[i];
    const obs::TraceEvent& b = decoded_spans[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.span_id, a.span_id);
    EXPECT_EQ(b.parent_id, a.parent_id);
    EXPECT_EQ(b.tid, a.tid);
    EXPECT_EQ(b.depth, a.depth);
    EXPECT_DOUBLE_EQ(b.start_us, a.start_us);
    EXPECT_DOUBLE_EQ(b.dur_us, a.dur_us);
    ASSERT_EQ(b.attrs.size(), a.attrs.size());
    for (size_t j = 0; j < a.attrs.size(); ++j) {
      EXPECT_EQ(b.attrs[j].key, a.attrs[j].key);
      EXPECT_EQ(b.attrs[j].value.kind, a.attrs[j].value.kind);
      EXPECT_EQ(b.attrs[j].value.ToJson(), a.attrs[j].value.ToJson());
    }
  }
}

TEST(TraceCodecTest, EvalReplyWithoutSpanSinkSkipsThemCleanly) {
  SiteEvalReply decoded;
  Status st =
      DecodeEvalReply(EncodeEvalReply(MakeReply(), MakeSpans()), &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(decoded.table.rows.size(), 2u);
}

TEST(TraceCodecTest, EvalReplySpanCapKeepsEarliestSpans) {
  std::vector<obs::TraceEvent> spans;
  for (uint32_t i = 0; i < kMaxSpansPerReply + 100; ++i) {
    obs::TraceEvent e;
    e.name = "s" + std::to_string(i);
    e.span_id = i + 1;
    e.start_us = static_cast<double>(i);
    spans.push_back(e);
  }
  SiteEvalReply decoded;
  std::vector<obs::TraceEvent> decoded_spans;
  Status st = DecodeEvalReply(EncodeEvalReply(MakeReply(), spans), &decoded,
                              &decoded_spans);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(decoded_spans.size(), kMaxSpansPerReply);
  // Earliest-first: the cap drops the tail, never the root.
  EXPECT_EQ(decoded_spans.front().name, "s0");
  EXPECT_EQ(decoded_spans.back().name,
            "s" + std::to_string(kMaxSpansPerReply - 1));
}

TEST(TraceCodecTest, HostileSpanCountIsRejectedBeforeAllocation) {
  // A forged count past the cap must ParseError without allocating.
  // The span count is the trailing u32 of a zero-span encoding; replace
  // it with a hostile value (little-endian, matching ByteWriter).
  const std::string base = EncodeEvalReply(MakeReply());
  std::string hostile(base.begin(), base.end() - 4);
  const uint32_t bogus = kMaxSpansPerReply + 1;
  for (int i = 0; i < 4; ++i) {
    hostile.push_back(static_cast<char>((bogus >> (8 * i)) & 0xff));
  }
  SiteEvalReply sink;
  std::vector<obs::TraceEvent> spans;
  Status st = DecodeEvalReply(hostile, &sink, &spans);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(TraceCodecTest, EveryTruncationFailsCleanly) {
  const store::ResolvedQuery resolved = MakeResolved();
  const std::vector<size_t> indices = {0};
  SiteEvalRequest request;
  request.pattern_indices = indices;
  obs::TraceContext trace;
  trace.trace_id = 7;
  trace.parent_span_id = 9;
  trace.query_tag = "t";
  struct Case {
    std::string bytes;
    std::function<Status(std::string_view)> decode;
  };
  const std::vector<Case> cases = {
      {EncodeEvalRequest(resolved, request, trace),
       [](std::string_view p) { return DecodeEvalRequest(p).status(); }},
      {EncodeEvalReply(MakeReply(), MakeSpans()),
       [](std::string_view p) {
         SiteEvalReply sink;
         std::vector<obs::TraceEvent> spans;
         return DecodeEvalReply(p, &sink, &spans);
       }},
  };
  for (const Case& c : cases) {
    EXPECT_TRUE(c.decode(c.bytes).ok());
    for (size_t len = 0; len < c.bytes.size(); ++len) {
      Status st = c.decode(std::string_view(c.bytes).substr(0, len));
      EXPECT_FALSE(st.ok()) << "prefix " << len << "/" << c.bytes.size();
      EXPECT_EQ(st.code(), StatusCode::kParseError);
    }
  }
}

TEST(TraceCodecTest, RandomCorruptionsNeverMisbehave) {
  const std::string base = EncodeEvalReply(MakeReply(), MakeSpans());
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    mutated[rng.Below(mutated.size())] ^=
        static_cast<char>(1 + rng.Below(255));
    SiteEvalReply sink;
    std::vector<obs::TraceEvent> spans;
    Status st = DecodeEvalReply(mutated, &sink, &spans);
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kParseError);
    }
  }
}

}  // namespace
}  // namespace mpc::exec

// Windowed-snapshot math behind `mpc top` and the StatsRequest admin
// RPC: reset-aware counter/histogram deltas, the shared bucket-quantile
// estimator, the snapshot ring, and the Snapshotter's StatsJson shape.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace mpc::obs {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Default().ResetForTest(); }
  void TearDown() override { MetricsRegistry::Default().ResetForTest(); }
};

TEST_F(SnapshotTest, QuantileFromBucketsAgreesWithHistogram) {
  Histogram h(DefaultLatencyBoundsMs());
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 0.37);
  std::vector<uint64_t> buckets;
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    buckets.push_back(h.bucket_count(i));
  }
  for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(QuantileFromBuckets(h.bounds(), buckets, h.count(), q),
                     h.Quantile(q))
        << "q=" << q;
  }
}

TEST_F(SnapshotTest, QuantileFromBucketsIsZeroWhenEmpty) {
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_EQ(QuantileFromBuckets(bounds, {0, 0, 0}, 0, 0.5), 0.0);
}

TEST_F(SnapshotTest, CounterDeltaSubtractsAndSurvivesResets) {
  EXPECT_EQ(CounterDelta(10, 25), 15u);
  EXPECT_EQ(CounterDelta(0, 0), 0u);
  // A respawned worker restarts at zero: the delta is everything the
  // new incarnation counted, not an unsigned wraparound.
  EXPECT_EQ(CounterDelta(100, 7), 7u);
}

HistogramSnapshot Snap(const std::vector<double>& bounds,
                       std::vector<uint64_t> buckets, double sum) {
  HistogramSnapshot s;
  s.bounds = bounds;
  s.buckets = std::move(buckets);
  for (uint64_t b : s.buckets) s.count += b;
  s.sum = sum;
  return s;
}

TEST_F(SnapshotTest, HistogramDeltaSubtractsPerBucket) {
  const std::vector<double> bounds = {1.0, 10.0};
  const HistogramSnapshot prev = Snap(bounds, {1, 2, 0}, 5.0);
  const HistogramSnapshot cur = Snap(bounds, {4, 2, 1}, 25.0);
  const HistogramSnapshot delta = HistogramDelta(prev, cur);
  EXPECT_EQ(delta.buckets, (std::vector<uint64_t>{3, 0, 1}));
  EXPECT_EQ(delta.count, 4u);
  EXPECT_DOUBLE_EQ(delta.sum, 20.0);
}

TEST_F(SnapshotTest, HistogramDeltaTreatsShrunkBucketAsReset) {
  const std::vector<double> bounds = {1.0, 10.0};
  const HistogramSnapshot prev = Snap(bounds, {5, 5, 0}, 30.0);
  const HistogramSnapshot cur = Snap(bounds, {2, 0, 0}, 1.5);
  // Bucket 1 shrank: the process restarted, so cur IS the window.
  const HistogramSnapshot delta = HistogramDelta(prev, cur);
  EXPECT_EQ(delta.buckets, cur.buckets);
  EXPECT_EQ(delta.count, cur.count);
}

TEST_F(SnapshotTest, HistogramDeltaTreatsShapeChangeAsReset) {
  const HistogramSnapshot prev = Snap({1.0, 10.0}, {5, 5, 0}, 30.0);
  const HistogramSnapshot cur = Snap({1.0}, {2, 1}, 3.0);
  const HistogramSnapshot delta = HistogramDelta(prev, cur);
  EXPECT_EQ(delta.bounds, cur.bounds);
  EXPECT_EQ(delta.buckets, cur.buckets);
}

TEST_F(SnapshotTest, SnapshotWindowEvictsOldestFirst) {
  SnapshotWindow window(3);
  EXPECT_TRUE(window.empty());
  for (int i = 1; i <= 5; ++i) {
    MetricsSnapshot s;
    s.at_ms = i * 100.0;
    window.Push(std::move(s));
  }
  EXPECT_EQ(window.size(), 3u);
  // 1 and 2 were evicted; the window spans snapshots 3..5.
  EXPECT_DOUBLE_EQ(window.oldest().at_ms, 300.0);
  EXPECT_DOUBLE_EQ(window.newest().at_ms, 500.0);
}

TEST_F(SnapshotTest, RegistrySnapshotIsConsistentCopy) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.CounterRef("test.count").Inc(42);
  reg.GaugeRef("test.depth").Set(7.5);
  reg.HistogramRef("test.lat_ms", DefaultLatencyBoundsMs()).Observe(3.0);
  const MetricsSnapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("test.count"), 42u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.depth"), 7.5);
  EXPECT_EQ(snap.histograms.at("test.lat_ms").count, 1u);
  // Later increments don't bleed into the taken snapshot.
  reg.CounterRef("test.count").Inc(1);
  EXPECT_EQ(snap.counters.at("test.count"), 42u);
}

TEST_F(SnapshotTest, StatsJsonReportsWindowedCountersAndQuantiles) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.CounterRef("serve.queries").Inc(10);
  reg.GaugeRef("serve.queue_depth").Set(3.0);
  Histogram& lat = reg.HistogramRef("serve.latency_ms",
                                    DefaultLatencyBoundsMs());
  for (int i = 0; i < 100; ++i) lat.Observe(5.0);

  Snapshotter snapshotter;
  snapshotter.SampleNow();
  // A real gap between samples so the window has nonzero width (the
  // rate divides by it).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  reg.CounterRef("serve.queries").Inc(30);
  for (int i = 0; i < 50; ++i) lat.Observe(20.0);
  snapshotter.SampleNow();

  Result<JsonValue> parsed = ParseJson(snapshotter.StatsJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (const char* field : {"uptime_ms", "window_ms", "counters", "gauges",
                            "histograms"}) {
    EXPECT_NE(parsed->Find(field), nullptr) << field;
  }
  const JsonValue* queries =
      parsed->Find("counters")->Find("serve.queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->Find("value")->number, 40.0);
  // The window spans the two samples: only the 30 land in the delta.
  EXPECT_EQ(queries->Find("window_delta")->number, 30.0);
  EXPECT_GT(queries->Find("rate_per_s")->number, 0.0);

  EXPECT_EQ(parsed->Find("gauges")->Find("serve.queue_depth")->number, 3.0);

  const JsonValue* hist =
      parsed->Find("histograms")->Find("serve.latency_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number, 150.0);
  EXPECT_EQ(hist->Find("window_count")->number, 50.0);
  // All 50 windowed observations were ~20ms: the windowed p50 reflects
  // the window, not the lifetime distribution (which is mostly 5ms).
  EXPECT_GT(hist->Find("p50")->number, 10.0);
}

TEST_F(SnapshotTest, StatsJsonBeforeFirstSampleReportsZeroWindow) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.CounterRef("serve.queries").Inc(25);
  Histogram& lat = reg.HistogramRef("serve.latency_ms",
                                    DefaultLatencyBoundsMs());
  for (int i = 0; i < 8; ++i) lat.Observe(5.0);

  // Never started, never sampled: there is no baseline snapshot. The
  // report must not treat the trace clock's absolute value as the window
  // width and dress lifetime totals up as windowed deltas with
  // made-up rates.
  Snapshotter snapshotter;
  Result<JsonValue> parsed = ParseJson(snapshotter.StatsJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("window_ms")->number, 0.0);

  const JsonValue* queries = parsed->Find("counters")->Find("serve.queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->Find("value")->number, 25.0);  // lifetime survives
  EXPECT_EQ(queries->Find("window_delta")->number, 0.0);
  EXPECT_EQ(queries->Find("rate_per_s")->number, 0.0);

  const JsonValue* hist = parsed->Find("histograms")->Find("serve.latency_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number, 8.0);
  EXPECT_EQ(hist->Find("window_count")->number, 0.0);
  EXPECT_EQ(hist->Find("rate_per_s")->number, 0.0);
  // Quantiles still summarize the lifetime distribution.
  EXPECT_GT(hist->Find("p50")->number, 0.0);
}

TEST_F(SnapshotTest, StatsJsonAfterRegistryResetReportsPostResetDelta) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.CounterRef("serve.queries").Inc(100);
  Snapshotter snapshotter;
  snapshotter.SampleNow();  // baseline holds the pre-reset 100

  // A reset inside the window (worker respawn / test reset): the counter
  // restarts below the baseline, and the delta must be everything the
  // new incarnation counted — not an unsigned wraparound.
  reg.ResetForTest();
  reg.CounterRef("serve.queries").Inc(7);
  Result<JsonValue> parsed = ParseJson(snapshotter.StatsJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* queries = parsed->Find("counters")->Find("serve.queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->Find("value")->number, 7.0);
  EXPECT_EQ(queries->Find("window_delta")->number, 7.0);
}

TEST_F(SnapshotTest, SnapshotterStartStopIsCleanAndServesJson) {
  Snapshotter snapshotter(SnapshotterOptions{.interval_ms = 10.0});
  snapshotter.Start();
  MetricsRegistry::Default().CounterRef("x").Inc();
  Result<JsonValue> parsed = ParseJson(snapshotter.StatsJson());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  snapshotter.Stop();
  // Stop is idempotent; StatsJson still serves the retained window.
  snapshotter.Stop();
  EXPECT_TRUE(ParseJson(snapshotter.StatsJson()).ok());
}

}  // namespace
}  // namespace mpc::obs

#include "mpc/coarsener.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace mpc::core {
namespace {

using rdf::RdfGraph;

TEST(CoarsenerTest, SupervertexWeightsSumToVertexCount) {
  Rng rng(1);
  RdfGraph g = testutil::RandomGraph(rng, 80, 200, 6, /*community=*/10);
  std::vector<bool> internal(g.num_properties(), false);
  internal[0] = true;
  internal[1] = true;
  CoarsenedGraph coarse = CoarsenByInternalProperties(g, internal);
  EXPECT_EQ(coarse.graph.total_vertex_weight(), g.num_vertices());
  EXPECT_EQ(coarse.graph.num_vertices(), coarse.num_supervertices);
  EXPECT_EQ(coarse.vertex_to_super.size(), g.num_vertices());
}

TEST(CoarsenerTest, InternalEdgesNeverSpanSupervertices) {
  Rng rng(2);
  RdfGraph g = testutil::RandomGraph(rng, 100, 300, 8, /*community=*/10);
  std::vector<bool> internal(g.num_properties(), false);
  internal[2] = true;
  internal[5] = true;
  CoarsenedGraph coarse = CoarsenByInternalProperties(g, internal);
  for (size_t p = 0; p < internal.size(); ++p) {
    if (!internal[p]) continue;
    for (const rdf::Triple& t :
         g.EdgesWithProperty(static_cast<rdf::PropertyId>(p))) {
      EXPECT_EQ(coarse.vertex_to_super[t.subject],
                coarse.vertex_to_super[t.object]);
    }
  }
}

TEST(CoarsenerTest, NoInternalSelectionYieldsIdentityScale) {
  RdfGraph g = testutil::BuildGraph({
      {"a", "p1", "b"},
      {"c", "p2", "d"},
  });
  std::vector<bool> internal(g.num_properties(), false);
  CoarsenedGraph coarse = CoarsenByInternalProperties(g, internal);
  // No coarsening: each vertex its own supervertex.
  EXPECT_EQ(coarse.num_supervertices, g.num_vertices());
  // All edges survive as supervertex edges.
  EXPECT_GT(coarse.graph.num_adjacencies(), 0u);
}

TEST(CoarsenerTest, AllInternalCollapsesComponents) {
  RdfGraph g = testutil::BuildGraph({
      {"a", "p1", "b"},
      {"b", "p1", "c"},
      {"x", "p1", "y"},
  });
  std::vector<bool> internal(g.num_properties(), true);
  CoarsenedGraph coarse = CoarsenByInternalProperties(g, internal);
  EXPECT_EQ(coarse.num_supervertices, 2u);  // {a,b,c} and {x,y}
  EXPECT_EQ(coarse.graph.num_adjacencies(), 0u);  // nothing left to cut
}

TEST(CoarsenerTest, CrossEdgesBetweenSuperverticesAreKept) {
  RdfGraph g = testutil::BuildGraph({
      {"a", "internal", "b"},
      {"c", "internal", "d"},
      {"a", "cross", "c"},
      {"b", "cross", "d"},
      {"a", "cross", "b"},  // non-internal but intra-supervertex
  });
  rdf::PropertyId internal_p = g.property_dict().Lookup("<t:internal>");
  std::vector<bool> internal(g.num_properties(), false);
  internal[internal_p] = true;
  CoarsenedGraph coarse = CoarsenByInternalProperties(g, internal);
  ASSERT_EQ(coarse.num_supervertices, 2u);
  // The two cross edges between {a,b} and {c,d} combine into one
  // adjacency of weight 2 in each direction; the intra-super cross edge
  // is dropped.
  ASSERT_EQ(coarse.graph.Degree(0), 1u);
  EXPECT_EQ(coarse.graph.Neighbors(0)[0].weight, 2u);
}

}  // namespace
}  // namespace mpc::core

#include "dynamic/incremental_maintainer.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "dynamic/update_journal.h"
#include "dynamic/update_log.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace mpc::dynamic {
namespace {

using rdf::RdfGraph;
using rdf::Triple;
using store::BindingTable;
using testutil::T;

TripleUpdate Ins(const std::string& s, const std::string& p,
                 const std::string& o) {
  return TripleUpdate{UpdateKind::kInsert, T(s), T(p), T(o)};
}

TripleUpdate Del(const std::string& s, const std::string& p,
                 const std::string& o) {
  return TripleUpdate{UpdateKind::kDelete, T(s), T(p), T(o)};
}

UpdateBatch Batch(std::vector<TripleUpdate> updates) {
  UpdateBatch b;
  b.updates = std::move(updates);
  return b;
}

/// Vertex-disjoint partitioning assigning each vertex by a name-keyed
/// site map (vertices not listed go to site 0).
partition::Partitioning MakeByName(
    const RdfGraph& graph, uint32_t k,
    const std::map<std::string, uint32_t>& sites) {
  partition::VertexAssignment assignment;
  assignment.k = k;
  assignment.part.assign(graph.num_vertices(), 0);
  for (const auto& [name, site] : sites) {
    rdf::VertexId v = graph.vertex_dict().Lookup(T(name));
    EXPECT_NE(v, rdf::kInvalidVertex) << name;
    if (v != rdf::kInvalidVertex) assignment.part[v] = site;
  }
  return partition::Partitioning::MaterializeVertexDisjoint(
      graph, std::move(assignment));
}

/// Rows as lexical forms, for comparing results across graphs whose
/// dense ids differ.
std::set<std::vector<std::string>> LexRows(const BindingTable& table,
                                           const RdfGraph& graph) {
  std::set<std::vector<std::string>> rows;
  for (const auto& row : table.rows) {
    std::vector<std::string> lex;
    lex.reserve(row.size());
    for (uint32_t id : row) {
      lex.emplace_back(graph.VertexName(id));
    }
    rows.insert(std::move(lex));
  }
  return rows;
}

// ---------------------------------------------------------------- UpdateLog

TEST(UpdateLogTest, ParsesBatchesAndRoundTrips) {
  const std::string text =
      "+ <t:a> <t:p> <t:b> .\n"
      "- <t:b> <t:p> <t:c>\n"
      "\n"
      "# comment separates batches too\n"
      "+ <t:a> <t:q> \"lit\"@en .\n"
      "+ _:blank <t:q> \"x\\\"y\"^^<t:string> .\n";
  Result<std::vector<UpdateBatch>> batches = UpdateLog::ParseDocument(text);
  ASSERT_TRUE(batches.ok()) << batches.status().ToString();
  ASSERT_EQ(batches->size(), 2u);
  EXPECT_EQ((*batches)[0].size(), 2u);
  EXPECT_EQ((*batches)[1].size(), 2u);
  EXPECT_EQ((*batches)[0].updates[0].kind, UpdateKind::kInsert);
  EXPECT_EQ((*batches)[0].updates[1].kind, UpdateKind::kDelete);
  EXPECT_EQ((*batches)[1].updates[0].object, "\"lit\"@en");
  EXPECT_EQ((*batches)[1].updates[1].subject, "_:blank");
  EXPECT_EQ((*batches)[1].updates[1].object, "\"x\\\"y\"^^<t:string>");

  // Round trip.
  Result<std::vector<UpdateBatch>> again =
      UpdateLog::ParseDocument(UpdateLog::Serialize(*batches));
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), batches->size());
  for (size_t b = 0; b < batches->size(); ++b) {
    ASSERT_EQ((*again)[b].size(), (*batches)[b].size());
    for (size_t i = 0; i < (*batches)[b].size(); ++i) {
      EXPECT_EQ((*again)[b].updates[i].kind, (*batches)[b].updates[i].kind);
      EXPECT_EQ((*again)[b].updates[i].subject,
                (*batches)[b].updates[i].subject);
      EXPECT_EQ((*again)[b].updates[i].property,
                (*batches)[b].updates[i].property);
      EXPECT_EQ((*again)[b].updates[i].object,
                (*batches)[b].updates[i].object);
    }
  }
}

TEST(UpdateLogTest, ParsesCrlfAndBareCrLineEndings) {
  // The same log with Unix, Windows and classic-Mac line endings must
  // parse identically (update logs routinely cross platforms).
  const std::string lf =
      "+ <t:a> <t:p> <t:b> .\n"
      "\n"
      "- <t:b> <t:p> <t:c> .\n"
      "+ <t:a> <t:q> \"lit\"@en .\n";
  const std::string crlf =
      "+ <t:a> <t:p> <t:b> .\r\n"
      "\r\n"
      "- <t:b> <t:p> <t:c> .\r\n"
      "+ <t:a> <t:q> \"lit\"@en .\r\n";
  const std::string cr =
      "+ <t:a> <t:p> <t:b> .\r"
      "\r"
      "- <t:b> <t:p> <t:c> .\r"
      "+ <t:a> <t:q> \"lit\"@en .\r";
  Result<std::vector<UpdateBatch>> from_lf = UpdateLog::ParseDocument(lf);
  ASSERT_TRUE(from_lf.ok()) << from_lf.status().ToString();
  for (const std::string* text : {&crlf, &cr}) {
    Result<std::vector<UpdateBatch>> got = UpdateLog::ParseDocument(*text);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), from_lf->size());
    for (size_t b = 0; b < got->size(); ++b) {
      ASSERT_EQ((*got)[b].size(), (*from_lf)[b].size());
      for (size_t i = 0; i < (*got)[b].size(); ++i) {
        EXPECT_EQ((*got)[b].updates[i].kind, (*from_lf)[b].updates[i].kind);
        EXPECT_EQ((*got)[b].updates[i].subject,
                  (*from_lf)[b].updates[i].subject);
        EXPECT_EQ((*got)[b].updates[i].property,
                  (*from_lf)[b].updates[i].property);
        EXPECT_EQ((*got)[b].updates[i].object,
                  (*from_lf)[b].updates[i].object);
      }
    }
  }
  // Serialize() always emits LF, so a CRLF log round-trips to the LF
  // parse.
  Result<std::vector<UpdateBatch>> again =
      UpdateLog::ParseDocument(UpdateLog::Serialize(
          *UpdateLog::ParseDocument(crlf)));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), from_lf->size());
}

TEST(UpdateLogTest, RejectsMissingSignWithLineNumber) {
  Result<std::vector<UpdateBatch>> r =
      UpdateLog::ParseDocument("+ <t:a> <t:p> <t:b> .\n<t:a> <t:p> <t:b> .\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("'+' or '-'"), std::string::npos);
}

TEST(UpdateLogTest, RejectsMalformedTriple) {
  Result<std::vector<UpdateBatch>> r =
      UpdateLog::ParseDocument("+ <t:a> <t:p>\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("malformed triple"),
            std::string::npos);
}

TEST(UpdateLogTest, RejectsTrailingGarbage) {
  Result<std::vector<UpdateBatch>> r =
      UpdateLog::ParseDocument("+ <t:a> <t:p> <t:b> . extra\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing garbage"),
            std::string::npos);
}

// ------------------------------------------------------------ DriftTracker

TEST(RepartitionPolicyTest, LcrossBoundTakesMaxOfRelativeAndSlack) {
  RepartitionPolicy policy;
  policy.max_lcross_growth = 0.5;
  policy.min_lcross_slack = 4;
  EXPECT_EQ(policy.LcrossBound(2), 6u);    // slack dominates tiny seeds
  EXPECT_EQ(policy.LcrossBound(100), 150u);  // relative dominates
}

TEST(RepartitionPolicyTest, ThresholdFiresOnLcrossAndTombstones) {
  RepartitionPolicy policy;
  policy.max_lcross_growth = 0.5;
  policy.min_lcross_slack = 2;
  DriftMetrics m;
  m.seed_crossing_properties = 4;
  m.crossing_properties = 6;
  EXPECT_TRUE(policy.Evaluate(m).empty());  // at the bound: keep
  m.crossing_properties = 7;
  EXPECT_NE(policy.Evaluate(m).find("L_cross"), std::string::npos);
  m.crossing_properties = 4;
  m.tombstone_ratio = 0.3;
  EXPECT_NE(policy.Evaluate(m).find("tombstone"), std::string::npos);
}

TEST(RepartitionPolicyTest, NeverAndPeriodicKinds) {
  DriftMetrics m;
  m.crossing_properties = 1000;
  m.tombstone_ratio = 0.9;
  RepartitionPolicy never;
  never.kind = RepartitionPolicy::Kind::kNever;
  EXPECT_TRUE(never.Evaluate(m).empty());

  RepartitionPolicy periodic;
  periodic.kind = RepartitionPolicy::Kind::kPeriodic;
  periodic.period_batches = 3;
  m.batches_applied = 2;
  EXPECT_TRUE(periodic.Evaluate(m).empty());
  m.batches_applied = 3;
  EXPECT_FALSE(periodic.Evaluate(m).empty());
  m.batches_applied = 6;
  EXPECT_FALSE(periodic.Evaluate(m).empty());
}

// ---------------------------------------------------- IncrementalMaintainer

/// Two triangles on sites 0/1 joined by nothing; p is internal, q only at
/// site 0.
RdfGraph TwoIslandGraph() {
  return testutil::BuildGraph({{"a1", "p", "a2"},
                               {"a2", "p", "a3"},
                               {"a3", "p", "a1"},
                               {"b1", "p", "b2"},
                               {"b2", "p", "b3"},
                               {"b3", "p", "b1"},
                               {"a1", "q", "a2"}});
}

std::map<std::string, uint32_t> IslandSites() {
  return {{"a1", 0}, {"a2", 0}, {"a3", 0},
          {"b1", 1}, {"b2", 1}, {"b3", 1}};
}

MaintainerOptions NoRepartition() {
  MaintainerOptions options;
  options.policy.kind = RepartitionPolicy::Kind::kNever;
  return options;
}

/// Runs a text query through the unified entry point, keeping just the
/// bindings (these tests assert result sets, not stats).
Result<BindingTable> RunText(IncrementalMaintainer& m,
                             const std::string& text) {
  Result<exec::QueryResponse> response =
      m.Execute(exec::QueryRequest::FromText(text));
  if (!response.ok()) return response.status();
  return std::move(response->bindings);
}

TEST(IncrementalMaintainerTest, InternalInsertKeepsLcrossEmpty) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  EXPECT_EQ(m.partitioning().num_crossing_properties(), 0u);
  ASSERT_EQ(m.num_live_triples(), 7u);

  ApplyResult r = m.ApplyBatch(Batch({Ins("a1", "p", "a3")}));
  EXPECT_EQ(r.inserts, 1u);
  EXPECT_EQ(m.num_live_triples(), 8u);
  EXPECT_EQ(m.partitioning().num_crossing_properties(), 0u);
  EXPECT_EQ(m.partitioning().num_crossing_edges(), 0u);
  EXPECT_EQ(r.drift.tombstone_ratio, 0.0);
  EXPECT_EQ(r.drift.replication_ratio, 1.0);
}

TEST(IncrementalMaintainerTest, CrossingInsertPromotesProperty) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  ApplyResult r = m.ApplyBatch(Batch({Ins("a1", "p", "b1")}));
  EXPECT_EQ(r.inserts, 1u);
  EXPECT_EQ(m.partitioning().num_crossing_edges(), 1u);
  EXPECT_EQ(m.partitioning().num_crossing_properties(), 1u);
  rdf::PropertyId p = m.graph().property_dict().Lookup(T("p"));
  EXPECT_TRUE(m.partitioning().IsCrossingProperty(p));
  // The replica is stored at both sites and extends V_i^e.
  EXPECT_EQ(m.partitioning().partition(0).crossing_edges.size(), 1u);
  EXPECT_EQ(m.partitioning().partition(1).crossing_edges.size(), 1u);
  EXPECT_GT(r.drift.replication_ratio, 1.0);
}

TEST(IncrementalMaintainerTest, DeletingLastCrossingEdgeRetiresProperty) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  m.ApplyBatch(Batch({Ins("a1", "p", "b1")}));
  ASSERT_EQ(m.partitioning().num_crossing_properties(), 1u);

  ApplyResult r = m.ApplyBatch(Batch({Del("a1", "p", "b1")}));
  EXPECT_EQ(r.deletes, 1u);
  EXPECT_EQ(m.partitioning().num_crossing_properties(), 0u);
  EXPECT_EQ(m.partitioning().num_crossing_edges(), 0u);
  rdf::PropertyId p = m.graph().property_dict().Lookup(T("p"));
  EXPECT_FALSE(m.partitioning().IsCrossingProperty(p));
  EXPECT_EQ(m.num_live_triples(), 7u);
  EXPECT_GT(r.drift.tombstone_ratio, 0.0);  // replicas linger as garbage
}

TEST(IncrementalMaintainerTest, SetSemanticsNoops) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  ApplyResult r = m.ApplyBatch(Batch({
      Ins("a1", "p", "a2"),       // already present
      Del("a1", "p", "a3"),       // never present
      Del("zz", "p", "a1"),       // unknown term
      Del("a1", "zz_prop", "a2"),  // unknown property
  }));
  EXPECT_EQ(r.inserts, 0u);
  EXPECT_EQ(r.deletes, 0u);
  EXPECT_EQ(r.noops, 4u);
  EXPECT_EQ(m.num_live_triples(), 7u);
}

TEST(IncrementalMaintainerTest, ResurrectionRestoresWithoutDuplicates) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  Triple t(m.graph().vertex_dict().Lookup(T("a1")),
           m.graph().property_dict().Lookup(T("p")),
           m.graph().vertex_dict().Lookup(T("a2")));
  m.ApplyBatch(Batch({Del("a1", "p", "a2")}));
  EXPECT_FALSE(m.IsLive(t));
  EXPECT_EQ(m.num_live_triples(), 6u);

  ApplyResult r = m.ApplyBatch(Batch({Ins("a1", "p", "a2")}));
  EXPECT_EQ(r.inserts, 1u);
  EXPECT_TRUE(m.IsLive(t));
  EXPECT_EQ(m.num_live_triples(), 7u);
  EXPECT_EQ(r.drift.tombstone_ratio, 0.0);  // the slot was reclaimed

  // The compacted view holds the triple exactly once.
  partition::Partitioning compact = m.CompactPartitioning();
  size_t copies = 0;
  for (uint32_t i = 0; i < compact.k(); ++i) {
    for (const Triple& e : compact.partition(i).internal_edges) {
      if (e == t) ++copies;
    }
  }
  EXPECT_EQ(copies, 1u);
}

TEST(IncrementalMaintainerTest, NewVertexCoLocatesOnInternalProperty) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  // "p" is internal; a new subject attached to b1 must land at b1's site
  // so the edge stays internal and |L_cross| stays 0.
  ApplyResult r = m.ApplyBatch(Batch({Ins("newv", "p", "b1")}));
  EXPECT_EQ(r.inserts, 1u);
  rdf::VertexId nv = m.graph().vertex_dict().Lookup(T("newv"));
  ASSERT_NE(nv, rdf::kInvalidVertex);
  rdf::VertexId b1 = m.graph().vertex_dict().Lookup(T("b1"));
  EXPECT_EQ(m.partitioning().assignment().part[nv],
            m.partitioning().assignment().part[b1]);
  EXPECT_EQ(m.partitioning().num_crossing_properties(), 0u);
}

TEST(IncrementalMaintainerTest, NewPropertyStartsInternal) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  ApplyResult r = m.ApplyBatch(Batch({Ins("a1", "brand_new", "a2")}));
  EXPECT_EQ(r.inserts, 1u);
  rdf::PropertyId p = m.graph().property_dict().Lookup(T("brand_new"));
  ASSERT_NE(p, rdf::kInvalidProperty);
  EXPECT_FALSE(m.partitioning().IsCrossingProperty(p));
  EXPECT_EQ(m.partitioning().num_crossing_properties(), 0u);
}

TEST(IncrementalMaintainerTest, CompactViewAgreesWithMaintainedCounters) {
  Rng rng(31);
  RdfGraph graph = testutil::RandomGraph(rng, 40, 140, 4, 10);
  core::MpcOptions mpc;
  mpc.base.k = 3;
  mpc.base.epsilon = 0.3;
  IncrementalMaintainer m(graph.Clone(),
                          core::MpcPartitioner(mpc).Partition(graph),
                          NoRepartition());

  // A mixed stream: inserts between random existing vertices plus
  // deletes of random seed triples.
  std::vector<TripleUpdate> updates;
  for (int i = 0; i < 30; ++i) {
    const std::string s = "v" + std::to_string(rng.Below(40));
    const std::string o = "v" + std::to_string(rng.Below(40));
    const std::string p = "p" + std::to_string(rng.Below(4));
    updates.push_back(Ins(s, p, o));
  }
  for (int i = 0; i < 20; ++i) {
    const Triple& t = graph.triples()[rng.Below(graph.num_edges())];
    updates.push_back(TripleUpdate{UpdateKind::kDelete,
                                   std::string(graph.VertexName(t.subject)),
                                   std::string(graph.PropertyName(t.property)),
                                   std::string(graph.VertexName(t.object))});
  }
  m.ApplyBatch(Batch(std::move(updates)));

  partition::Partitioning compact = m.CompactPartitioning();
  EXPECT_EQ(compact.num_crossing_edges(),
            m.partitioning().num_crossing_edges());
  EXPECT_EQ(compact.num_crossing_properties(),
            m.partitioning().num_crossing_properties());
  EXPECT_EQ(compact.crossing_property_mask(),
            m.partitioning().crossing_property_mask());
  size_t live = 0;
  for (uint32_t i = 0; i < compact.k(); ++i) {
    live += compact.partition(i).internal_edges.size();
  }
  EXPECT_EQ(live + compact.num_crossing_edges(), m.num_live_triples());
}

TEST(IncrementalMaintainerTest, QueriesSeeUpdatesMidStream) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());

  const std::string query = "SELECT * WHERE { ?x " + T("p") + " ?y . }";
  Result<BindingTable> before = RunText(m, query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->num_rows(), 6u);

  // Insert a crossing p-edge and delete an internal one; the result set
  // must reflect both immediately.
  m.ApplyBatch(Batch({Ins("a1", "p", "b1"), Del("b2", "p", "b3")}));
  Result<BindingTable> after = RunText(m, query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  std::set<std::vector<std::string>> rows = LexRows(*after, m.graph());
  EXPECT_EQ(rows.size(), 6u);
  EXPECT_TRUE(rows.count({T("a1"), T("b1")}));
  EXPECT_FALSE(rows.count({T("b2"), T("b3")}));
}

TEST(IncrementalMaintainerTest, RepartitionNowResetsDrift) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  m.ApplyBatch(Batch({Ins("a1", "p", "b1"), Del("a2", "p", "a3"),
                      Del("b1", "p", "b2")}));
  ASSERT_GT(m.drift().tombstone_ratio, 0.0);

  m.RepartitionNow();
  EXPECT_EQ(m.repartition_count(), 1u);
  DriftMetrics d = m.drift();
  EXPECT_EQ(d.tombstone_ratio, 0.0);
  EXPECT_EQ(d.live_triples, m.num_live_triples());
  EXPECT_EQ(d.seed_crossing_properties, d.crossing_properties);
  EXPECT_EQ(d.repartitions, 1u);

  // Queries still answer correctly on the new state.
  Result<BindingTable> r =
      RunText(m, "SELECT * WHERE { ?x " + T("p") + " ?y . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 5u);  // 7 p-edges + 1 insert - 2 deletes
}

TEST(IncrementalMaintainerTest, ThresholdPolicyTriggersRepartition) {
  RdfGraph graph = TwoIslandGraph();
  MaintainerOptions options;
  options.policy.kind = RepartitionPolicy::Kind::kThreshold;
  options.policy.max_lcross_growth = 0.0;
  options.policy.min_lcross_slack = 1;  // bound = seed + 1
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          options);
  ASSERT_EQ(m.drift().seed_crossing_properties, 0u);

  // Two crossing properties exceed the bound of 1.
  ApplyResult r = m.ApplyBatch(
      Batch({Ins("a1", "p", "b1"), Ins("a2", "q", "b2")}));
  EXPECT_TRUE(r.repartition_triggered) << r.trigger_reason;
  EXPECT_TRUE(r.repartitioned);
  EXPECT_EQ(m.repartition_count(), 1u);
  // Post-swap drift is re-seeded: current |L_cross| is the new baseline.
  EXPECT_EQ(r.drift.seed_crossing_properties, r.drift.crossing_properties);
  EXPECT_EQ(r.drift.tombstone_ratio, 0.0);
  EXPECT_EQ(m.num_live_triples(), 9u);
}

TEST(IncrementalMaintainerTest, PeriodicPolicyTriggersOnSchedule) {
  RdfGraph graph = TwoIslandGraph();
  MaintainerOptions options;
  options.policy.kind = RepartitionPolicy::Kind::kPeriodic;
  options.policy.period_batches = 2;
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          options);
  EXPECT_FALSE(
      m.ApplyBatch(Batch({Ins("a1", "p", "a3")})).repartition_triggered);
  EXPECT_TRUE(
      m.ApplyBatch(Batch({Ins("a2", "p", "a1")})).repartition_triggered);
  EXPECT_EQ(m.repartition_count(), 1u);
}

TEST(IncrementalMaintainerTest, BackgroundRepartitionIntegratesWithReplay) {
  RdfGraph graph = TwoIslandGraph();
  MaintainerOptions options;
  options.policy.kind = RepartitionPolicy::Kind::kPeriodic;
  options.policy.period_batches = 1;  // trigger on the first batch
  options.background_repartition = true;
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          options);

  ApplyResult first = m.ApplyBatch(Batch({Ins("a1", "p", "b1")}));
  EXPECT_TRUE(first.repartition_triggered);
  EXPECT_FALSE(first.repartitioned);  // runs in the background

  // Updates applied while the job may still be running must survive the
  // swap (they are replayed onto the new partitioning).
  m.ApplyBatch(Batch({Ins("c1", "p", "a1"), Del("b1", "p", "b2")}));
  m.WaitForRepartition();
  EXPECT_FALSE(m.repartition_pending());
  EXPECT_GE(m.repartition_count(), 1u);

  EXPECT_EQ(m.num_live_triples(), 8u);  // 7 + 2 inserts - 1 delete
  Result<BindingTable> r =
      RunText(m, "SELECT * WHERE { ?x " + T("p") + " ?y . }");
  ASSERT_TRUE(r.ok());
  std::set<std::vector<std::string>> rows = LexRows(*r, m.graph());
  EXPECT_TRUE(rows.count({T("c1"), T("a1")}));
  EXPECT_TRUE(rows.count({T("a1"), T("b1")}));
  EXPECT_FALSE(rows.count({T("b1"), T("b2")}));
}

TEST(IncrementalMaintainerTest, RepartitionReanchorsWeightedDriftBaseline) {
  RdfGraph graph = TwoIslandGraph();
  MaintainerOptions options;
  options.policy.kind = RepartitionPolicy::Kind::kThreshold;
  options.policy.max_lcross_growth = 0.0;
  options.policy.min_lcross_slack = 1;  // bound = seed + 1
  // Non-uniform weights: p (id 0) is hot. A stale weighted baseline is
  // then loud — post-swap weighted |L_cross| is ~10 against a stale
  // seed-of-0 bound of 1, so every later batch would re-fire.
  options.property_weights = {10.0, 1.0};
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          options);
  ASSERT_EQ(m.drift().seed_weighted_crossing_properties, 0.0);

  ApplyResult r = m.ApplyBatch(
      Batch({Ins("a1", "p", "b1"), Ins("a2", "q", "b2")}));
  EXPECT_TRUE(r.repartition_triggered) << r.trigger_reason;
  ASSERT_TRUE(r.repartitioned);
  // Both the integer and the weighted baseline re-anchor at the swap.
  EXPECT_EQ(r.drift.seed_crossing_properties, r.drift.crossing_properties);
  EXPECT_EQ(r.drift.seed_weighted_crossing_properties,
            r.drift.weighted_crossing_properties);
  EXPECT_EQ(r.drift.weighted_lcross_growth, 0.0);

  // A quiet batch (a new vertex, no new crossing property) must not
  // re-trigger; it does when seed_lcross / the weighted seed is stale.
  ApplyResult quiet = m.ApplyBatch(Batch({Ins("a1", "p", "freshv")}));
  EXPECT_FALSE(quiet.repartition_triggered) << quiet.trigger_reason;
  EXPECT_EQ(m.repartition_count(), 1u);
}

TEST(IncrementalMaintainerTest, BackgroundRepartitionReanchorsWeightedBaseline) {
  RdfGraph graph = TwoIslandGraph();
  MaintainerOptions options;
  options.policy.kind = RepartitionPolicy::Kind::kThreshold;
  options.policy.max_lcross_growth = 0.0;
  options.policy.min_lcross_slack = 1;
  options.property_weights = {10.0, 1.0};
  options.background_repartition = true;
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          options);

  ApplyResult r = m.ApplyBatch(
      Batch({Ins("a1", "p", "b1"), Ins("a2", "q", "b2")}));
  EXPECT_TRUE(r.repartition_triggered) << r.trigger_reason;
  EXPECT_FALSE(r.repartitioned);  // runs in the background
  m.WaitForRepartition();
  EXPECT_EQ(m.repartition_count(), 1u);

  // The swap happened at integration, not inside ApplyBatch: the seeds
  // must still have re-anchored to the post-swap state.
  DriftMetrics d = m.drift();
  EXPECT_EQ(d.seed_crossing_properties, d.crossing_properties);
  EXPECT_EQ(d.seed_weighted_crossing_properties,
            d.weighted_crossing_properties);
  EXPECT_EQ(d.weighted_lcross_growth, 0.0);

  ApplyResult quiet = m.ApplyBatch(Batch({Ins("a1", "p", "freshv")}));
  EXPECT_FALSE(quiet.repartition_triggered) << quiet.trigger_reason;
  EXPECT_EQ(m.repartition_count(), 1u);
}

TEST(IncrementalMaintainerTest, RepartitionRemapsWeightsWhenPropertyIdsShift) {
  // Properties: p = 0, q = 1, r = 2; r is the hot one.
  RdfGraph graph = testutil::BuildGraph({{"a1", "p", "a2"},
                                         {"a2", "p", "a3"},
                                         {"b1", "p", "b2"},
                                         {"a1", "q", "a2"},
                                         {"b1", "r", "b2"}});
  MaintainerOptions options = NoRepartition();
  options.property_weights = {1.0, 1.0, 10.0};
  IncrementalMaintainer m(
      graph.Clone(),
      MakeByName(graph, 2,
                 {{"a1", 0}, {"a2", 0}, {"a3", 0}, {"b1", 1}, {"b2", 1}}),
      options);

  // q's only edge dies; the repartition re-interns the live terms and q
  // drops out of the dense id space, shifting r from id 2 to id 1.
  m.ApplyBatch(Batch({Del("a1", "q", "a2")}));
  m.RepartitionNow();
  rdf::PropertyId r = m.graph().property_dict().Lookup(T("r"));
  ASSERT_NE(r, rdf::kInvalidProperty);
  ASSERT_LT(r, 2u);  // ids actually shifted — the regression precondition

  // Force r across the cut between two existing vertices on different
  // sites of the fresh assignment.
  const std::vector<uint32_t>& part = m.partitioning().assignment().part;
  std::string u, w;
  for (rdf::VertexId v = 1; v < m.graph().num_vertices(); ++v) {
    if (part[v] != part[0]) {
      u = std::string(m.graph().VertexName(0));
      w = std::string(m.graph().VertexName(v));
      break;
    }
  }
  ASSERT_FALSE(w.empty());
  UpdateBatch cross;
  cross.updates.push_back(
      TripleUpdate{UpdateKind::kInsert, u, std::string(T("r")), w});
  ApplyResult res = m.ApplyBatch(cross);

  // The weighted signal must charge each crossing property under its
  // name's weight (r = 10), not whatever property now sits at its old
  // id.
  double expected = 0.0;
  for (rdf::PropertyId p = 0; p < m.graph().num_properties(); ++p) {
    if (m.partitioning().IsCrossingProperty(p)) {
      expected += m.graph().PropertyName(p) == T("r") ? 10.0 : 1.0;
    }
  }
  EXPECT_TRUE(m.partitioning().IsCrossingProperty(r));
  EXPECT_DOUBLE_EQ(res.drift.weighted_crossing_properties, expected);
  EXPECT_GE(res.drift.weighted_crossing_properties, 10.0);
}

TEST(IncrementalMaintainerTest, DictionaryGrowthKeepsGraphAccessorsValid) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  const size_t before_props = m.graph().num_properties();
  m.ApplyBatch(Batch({Ins("x1", "r1", "x2"), Ins("x2", "r2", "x3")}));
  EXPECT_EQ(m.graph().num_properties(), before_props + 2);
  // Grown properties expose empty edge runs in the snapshot arrays.
  for (rdf::PropertyId p = before_props; p < m.graph().num_properties();
       ++p) {
    EXPECT_EQ(m.graph().EdgesWithProperty(p).size(), 0u);
    EXPECT_EQ(m.graph().PropertyFrequency(p), 0u);
  }
  // But the triples are live and queryable.
  Result<BindingTable> r =
      RunText(m, "SELECT * WHERE { ?x " + T("r1") + " ?y . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1u);
}

// ------------------------------------------------------------ UpdateJournal

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectSameBatch(const UpdateBatch& a, const UpdateBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.updates[i].kind, b.updates[i].kind);
    EXPECT_EQ(a.updates[i].subject, b.updates[i].subject);
    EXPECT_EQ(a.updates[i].property, b.updates[i].property);
    EXPECT_EQ(a.updates[i].object, b.updates[i].object);
  }
}

TEST(UpdateJournalTest, AppendReplayRoundTrip) {
  const std::string dir = TempDir("mpc_journal_rt");
  const uint64_t fp = 0xabcdef12u;
  UpdateBatch b1 = Batch({Ins("a", "p", "b"), Del("b", "p", "c")});
  UpdateBatch b2 = Batch({Ins("x", "q", "y")});
  {
    Result<UpdateJournal> journal = UpdateJournal::Open(dir, fp);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_TRUE(journal->Append(1, b1).ok());
    ASSERT_TRUE(journal->Append(2, b2).ok());
  }
  Result<std::vector<UpdateJournal::Entry>> entries =
      UpdateJournal::Replay(dir, fp, 0);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].seq, 1u);
  EXPECT_EQ((*entries)[1].seq, 2u);
  ExpectSameBatch((*entries)[0].batch, b1);
  ExpectSameBatch((*entries)[1].batch, b2);

  // after_seq filters already-applied frames.
  Result<std::vector<UpdateJournal::Entry>> tail =
      UpdateJournal::Replay(dir, fp, 1);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ((*tail)[0].seq, 2u);

  // Reopening appends after the existing frames.
  Result<UpdateJournal> again = UpdateJournal::Open(dir, fp);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_TRUE(again->Append(3, Batch({Del("a", "p", "b")})).ok());
  entries = UpdateJournal::Replay(dir, fp, 0);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
}

TEST(UpdateJournalTest, MissingJournalReplaysEmpty) {
  Result<std::vector<UpdateJournal::Entry>> entries =
      UpdateJournal::Replay(TempDir("mpc_journal_none"), 1, 0);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  EXPECT_TRUE(entries->empty());
}

TEST(UpdateJournalTest, TornTailDroppedAndHealedOnReopen) {
  const std::string dir = TempDir("mpc_journal_torn");
  const uint64_t fp = 7;
  {
    Result<UpdateJournal> journal = UpdateJournal::Open(dir, fp);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(1, Batch({Ins("a", "p", "b")})).ok());
    ASSERT_TRUE(journal->Append(2, Batch({Ins("b", "p", "c")})).ok());
  }
  // Tear the second frame, as a crash mid-append would.
  const std::string path = UpdateJournal::JournalPath(dir);
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 5);

  Result<std::vector<UpdateJournal::Entry>> entries =
      UpdateJournal::Replay(dir, fp, 0);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].seq, 1u);

  // Open() truncates the torn tail before appending, so the next frame
  // lands after frame 1, not after garbage.
  Result<UpdateJournal> journal = UpdateJournal::Open(dir, fp);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_TRUE(journal->Append(2, Batch({Ins("c", "p", "d")})).ok());
  entries = UpdateJournal::Replay(dir, fp, 0);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[1].batch.updates[0].subject, T("c"));
}

TEST(UpdateJournalTest, MidFileCorruptionFailsHard) {
  const std::string dir = TempDir("mpc_journal_corrupt");
  const uint64_t fp = 7;
  {
    Result<UpdateJournal> journal = UpdateJournal::Open(dir, fp);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(1, Batch({Ins("aaaa", "p", "bbbb")})).ok());
    ASSERT_TRUE(journal->Append(2, Batch({Ins("c", "p", "d")})).ok());
  }
  // Flip a payload byte of the FIRST frame: the frame is complete (it is
  // followed by another), so this is corruption, not a torn tail.
  const std::string path = UpdateJournal::JournalPath(dir);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  const size_t at = bytes.find("aaaa");
  ASSERT_NE(at, std::string::npos);
  bytes[at] = 'z';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  Result<std::vector<UpdateJournal::Entry>> entries =
      UpdateJournal::Replay(dir, fp, 0);
  ASSERT_FALSE(entries.ok());
  EXPECT_NE(entries.status().message().find("checksum"), std::string::npos)
      << entries.status().ToString();
}

TEST(UpdateJournalTest, FingerprintMismatchRejected) {
  const std::string dir = TempDir("mpc_journal_fp");
  {
    Result<UpdateJournal> journal = UpdateJournal::Open(dir, 111);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(1, Batch({Ins("a", "p", "b")})).ok());
  }
  EXPECT_FALSE(UpdateJournal::Replay(dir, 222, 0).ok());
  EXPECT_FALSE(UpdateJournal::Open(dir, 222).ok());
  EXPECT_TRUE(UpdateJournal::Replay(dir, 111, 0).ok());
}

// -------------------------------------------------------------- Checkpoints

TEST(CheckpointTest, StateRoundTripsThroughCheckpoint) {
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  // Grow the dictionaries, cross a property, tombstone a triple — every
  // piece of serialized state is non-trivial.
  m.ApplyBatch(Batch({Ins("a1", "p", "b1"), Ins("newv", "r", "a2")}));
  m.ApplyBatch(Batch({Del("a2", "p", "a3"), Ins("a1", "q", "b2")}));

  const MaintainerState state = m.ExportState();
  EXPECT_EQ(state.seq, 2u);
  const std::string dir = TempDir("mpc_ckpt_rt");
  ASSERT_TRUE(CheckpointIo::Write(state, 99, dir).ok());

  Result<MaintainerState> loaded = CheckpointIo::LoadLatest(dir, 99);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == state);

  // A maintainer restored from the state is observably identical.
  IncrementalMaintainer r(*loaded, NoRepartition());
  EXPECT_TRUE(r.ExportState() == state);
  EXPECT_EQ(r.num_live_triples(), m.num_live_triples());
  EXPECT_EQ(r.partitioning().assignment().part,
            m.partitioning().assignment().part);
  EXPECT_EQ(r.partitioning().crossing_property_mask(),
            m.partitioning().crossing_property_mask());
  EXPECT_EQ(r.LiveTriples(), m.LiveTriples());

  // And diverges identically under further updates.
  ApplyResult ra = m.ApplyBatch(Batch({Ins("a3", "p", "b3")}));
  ApplyResult rb = r.ApplyBatch(Batch({Ins("a3", "p", "b3")}));
  EXPECT_EQ(ra.inserts, rb.inserts);
  EXPECT_TRUE(m.ExportState() == r.ExportState());
}

TEST(CheckpointTest, WrongFingerprintAndEmptyDir) {
  const std::string dir = TempDir("mpc_ckpt_fp");
  Result<MaintainerState> none = CheckpointIo::LoadLatest(dir, 5);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);

  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  ASSERT_TRUE(CheckpointIo::Write(m.ExportState(), 5, dir).ok());
  EXPECT_TRUE(CheckpointIo::LoadLatest(dir, 5).ok());
  EXPECT_FALSE(CheckpointIo::LoadLatest(dir, 6).ok());
}

TEST(CheckpointTest, KeepsTwoNewestAndLoadsLatest) {
  const std::string dir = TempDir("mpc_ckpt_gc");
  RdfGraph graph = TwoIslandGraph();
  IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, IslandSites()),
                          NoRepartition());
  for (int b = 1; b <= 3; ++b) {
    m.ApplyBatch(Batch({Ins("n" + std::to_string(b), "p", "a1")}));
    ASSERT_TRUE(CheckpointIo::Write(m.ExportState(), 5, dir).ok());
  }
  EXPECT_FALSE(
      std::filesystem::exists(CheckpointIo::CheckpointPath(dir, 1)));
  EXPECT_TRUE(
      std::filesystem::exists(CheckpointIo::CheckpointPath(dir, 2)));
  EXPECT_TRUE(
      std::filesystem::exists(CheckpointIo::CheckpointPath(dir, 3)));
  Result<MaintainerState> latest = CheckpointIo::LoadLatest(dir, 5);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->seq, 3u);

  // A trashed newest checkpoint falls back to the previous one.
  {
    std::ofstream out(CheckpointIo::CheckpointPath(dir, 3),
                      std::ios::binary | std::ios::trunc);
    out << "mpc-checkpoint v1 garbage\n";
  }
  latest = CheckpointIo::LoadLatest(dir, 5);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->seq, 2u);
}

// ----------------------------------------------------- Def. 4.2 budget

TEST(RepartitionPolicyTest, ComponentBudgetFiresOnlyWhenEnforced) {
  RepartitionPolicy policy;
  DriftMetrics m;
  m.max_internal_component = 10;
  m.internal_component_budget = 8;
  EXPECT_TRUE(policy.Evaluate(m).empty());  // off by default
  policy.enforce_component_budget = true;
  EXPECT_NE(policy.Evaluate(m).find("budget"), std::string::npos);
  m.max_internal_component = 8;
  EXPECT_TRUE(policy.Evaluate(m).empty());  // at the budget: keep
}

TEST(IncrementalMaintainerTest, ForestRebuildPreventsSpuriousRepartition) {
  // Path a1-a2-a3-a4 plus a5-a6 at site 0, path b1-b2-b3 at site 1.
  // |V| = 9, k = 2, eps = 0.1 => Def. 4.2 budget = floor(1.1*9/2) = 4.
  auto build = [] {
    return testutil::BuildGraph({{"a1", "p", "a2"},
                                 {"a2", "p", "a3"},
                                 {"a3", "p", "a4"},
                                 {"a5", "p", "a6"},
                                 {"b1", "p", "b2"},
                                 {"b2", "p", "b3"}});
  };
  const std::map<std::string, uint32_t> sites = {
      {"a1", 0}, {"a2", 0}, {"a3", 0}, {"a4", 0}, {"a5", 0},
      {"a6", 0}, {"b1", 1}, {"b2", 1}, {"b3", 1}};
  // The stream deletes the path's outer edges, bridges the two site-0
  // groups, then reinserts one deleted edge. True max component never
  // exceeds 3; the delete-blind forest believes 4+2=6 > 4 at the bridge.
  const std::vector<UpdateBatch> stream = {
      Batch({Del("a1", "p", "a2"), Del("a3", "p", "a4")}),
      Batch({Ins("a4", "p", "a5")}),
      Batch({Ins("a1", "p", "a2")}),
  };
  MaintainerOptions options;
  options.policy.kind = RepartitionPolicy::Kind::kThreshold;
  options.policy.enforce_component_budget = true;
  options.policy.max_tombstone_ratio = 1.0;  // isolate the budget trigger
  options.mpc.base.k = 2;
  options.mpc.base.epsilon = 0.1;

  // Without the rebuild, the over-approximated component fires the
  // budget trigger spuriously.
  {
    RdfGraph graph = build();
    MaintainerOptions no_rebuild = options;
    no_rebuild.forest_rebuild_tombstone_ratio = 0.0;
    IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, sites),
                            no_rebuild);
    size_t fires = 0;
    for (const UpdateBatch& b : stream) {
      fires += m.ApplyBatch(b).repartition_triggered ? 1 : 0;
    }
    EXPECT_GE(fires, 1u);
  }

  // With the tombstone-triggered rebuild (2 dead of 6 slots = 0.33 >
  // 0.1 after batch 1), the forest re-converges to the live components
  // and the policy stays quiet through delete-then-reinsert.
  {
    RdfGraph graph = build();
    MaintainerOptions rebuild = options;
    rebuild.forest_rebuild_tombstone_ratio = 0.1;
    IncrementalMaintainer m(graph.Clone(), MakeByName(graph, 2, sites),
                            rebuild);
    for (const UpdateBatch& b : stream) {
      ApplyResult r = m.ApplyBatch(b);
      EXPECT_FALSE(r.repartition_triggered) << r.trigger_reason;
      EXPECT_LE(r.drift.max_internal_component,
                r.drift.internal_component_budget);
    }
    EXPECT_EQ(m.repartition_count(), 0u);
    EXPECT_EQ(m.num_live_triples(), 6u);  // 6 seed - 2 del + 2 ins - 0
  }
}

// ------------------------------------------------------------ Backpressure

TEST(IncrementalMaintainerTest, BackpressureKeepsStateExactUnderLoad) {
  // A background-repartition stream with a replay-queue cap of 1: both
  // policies must end bit-equal to the oracle live set, whatever the
  // background timing did (stall-at-cap for kBlock, abandon-and-restart
  // for kReanchor).
  for (ReplayBackpressure policy :
       {ReplayBackpressure::kBlock, ReplayBackpressure::kReanchor}) {
    RdfGraph graph = TwoIslandGraph();
    MaintainerOptions options;
    options.policy.kind = RepartitionPolicy::Kind::kPeriodic;
    options.policy.period_batches = 2;
    options.background_repartition = true;
    options.max_replay_batches = 1;
    options.backpressure = policy;
    IncrementalMaintainer m(graph.Clone(),
                            MakeByName(graph, 2, IslandSites()), options);

    std::set<std::string> live;  // oracle keyed by lexical triple
    auto key = [](const TripleUpdate& u) {
      return u.subject + " " + u.property + " " + u.object;
    };
    for (const rdf::Triple& t : graph.triples()) {
      live.insert(std::string(graph.VertexName(t.subject)) + " " +
                  std::string(graph.PropertyName(t.property)) + " " +
                  std::string(graph.VertexName(t.object)));
    }
    for (int b = 0; b < 10; ++b) {
      UpdateBatch batch = Batch({
          Ins("s" + std::to_string(b), "p", b % 2 ? "a1" : "b1"),
          Ins("s" + std::to_string(b), "q", "a2"),
      });
      if (b == 5) batch.updates.push_back(Del("a1", "p", "a2"));
      for (const TripleUpdate& u : batch.updates) {
        if (u.kind == UpdateKind::kInsert) {
          live.insert(key(u));
        } else {
          live.erase(key(u));
        }
      }
      m.ApplyBatch(batch);
    }
    m.WaitForRepartition();

    std::set<std::string> maintained;
    const RdfGraph& g = m.graph();
    for (const rdf::Triple& t : m.LiveTriples()) {
      maintained.insert(std::string(g.VertexName(t.subject)) + " " +
                        std::string(g.PropertyName(t.property)) + " " +
                        std::string(g.VertexName(t.object)));
    }
    EXPECT_EQ(maintained, live)
        << "backpressure policy "
        << (policy == ReplayBackpressure::kBlock ? "block" : "reanchor");
    EXPECT_GE(m.repartition_count(), 1u);
  }
}

}  // namespace
}  // namespace mpc::dynamic

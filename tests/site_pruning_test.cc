// Tests for the property-presence site localization (executor option
// site_pruning): soundness (identical results) and effectiveness (fewer
// site evaluations when a property is concentrated on few sites).

#include "common/random.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "test_util.h"

namespace mpc::exec {
namespace {

using rdf::RdfGraph;
using store::BindingTable;

TEST(SitePruningTest, ResultsIdenticalWithAndWithoutPruning) {
  Rng rng(3);
  for (int round = 0; round < 6; ++round) {
    RdfGraph graph = testutil::RandomGraph(rng, 60, 200, 5, 12, 0.15);
    core::MpcOptions mpc_options;
    mpc_options.base.k = 4;
    mpc_options.base.epsilon = 0.3;
    Cluster cluster = Cluster::Build(
        core::MpcPartitioner(mpc_options).Partition(graph));

    DistributedExecutor::Options with, without;
    with.site_pruning = true;
    without.site_pruning = false;
    DistributedExecutor pruned(cluster, graph, with);
    DistributedExecutor full(cluster, graph, without);

    for (const std::string& text :
         {std::string("SELECT * WHERE { ?x <t:p0> ?y . ?y <t:p1> ?z . }"),
          std::string("SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p2> ?c . ?c "
                      "<t:p3> ?d . }"),
          std::string("SELECT * WHERE { ?x ?p ?y . }")}) {
      sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
      Result<QueryResponse> a = pruned.Execute(QueryRequest::FromQuery(query));
      Result<QueryResponse> b = full.Execute(QueryRequest::FromQuery(query));
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(testutil::RowSet(a->bindings), testutil::RowSet(b->bindings))
          << text;
      EXPECT_EQ(testutil::RowSet(a->bindings),
                testutil::RowSet(testutil::GroundTruth(graph, query)));
      EXPECT_EQ(b->stats.sites_pruned, 0u);
      EXPECT_LE(a->stats.sites_evaluated, b->stats.sites_evaluated);
    }
  }
}

TEST(SitePruningTest, AccountingAddsUp) {
  Rng rng(5);
  RdfGraph graph = testutil::RandomGraph(rng, 60, 180, 4, 12);
  partition::PartitionerOptions options{.k = 4, .epsilon = 0.2, .seed = 2};
  Cluster cluster = Cluster::Build(
      partition::SubjectHashPartitioner(options).Partition(graph));
  DistributedExecutor executor(cluster, graph);
  sparql::QueryGraph query = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?c <t:p2> ?d . }");
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok());
  const ExecutionStats& stats = response->stats;
  EXPECT_EQ(stats.sites_evaluated + stats.sites_pruned,
            static_cast<size_t>(cluster.k()) * stats.num_subqueries);
}

TEST(SitePruningTest, ConcentratedPropertySkipsMostSites) {
  // Property "rare" exists only inside one small community; after MPC
  // partitioning its edges live on one site, so a query over it must
  // prune (k - 1) sites.
  rdf::GraphBuilder builder;
  // 8 communities of 12 vertices, chained internally by "common".
  for (int c = 0; c < 8; ++c) {
    for (int i = 0; i + 1 < 12; ++i) {
      builder.Add("<t:c" + std::to_string(c) + "v" + std::to_string(i) + ">",
                  "<t:common>",
                  "<t:c" + std::to_string(c) + "v" +
                      std::to_string(i + 1) + ">");
    }
  }
  // "rare" edges only within community 0.
  builder.Add("<t:c0v0>", "<t:rare>", "<t:c0v5>");
  builder.Add("<t:c0v1>", "<t:rare>", "<t:c0v6>");
  rdf::RdfGraph graph = builder.Build();

  core::MpcOptions options;
  options.base.k = 4;
  options.base.epsilon = 0.5;
  Cluster cluster =
      Cluster::Build(core::MpcPartitioner(options).Partition(graph));

  sparql::QueryGraph query =
      testutil::ParseQueryOrDie("SELECT * WHERE { ?x <t:rare> ?y . }");
  DistributedExecutor executor(cluster, graph);
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->bindings.num_rows(), 2u);
  EXPECT_GE(response->stats.sites_pruned, 1u);
  EXPECT_LT(response->stats.sites_evaluated, cluster.k());
}

TEST(SitePruningTest, AllSitesPrunedStillReturnsSchema) {
  // A property present in the dictionary but partitioned away from every
  // site cannot happen (every triple lives somewhere), so exercise the
  // adjacent case: a subquery whose property exists but whose sites are
  // pruned for the *other* required property.
  rdf::GraphBuilder builder;
  builder.Add("<t:a>", "<t:p>", "<t:b>");
  builder.Add("<t:c>", "<t:q>", "<t:d>");
  rdf::RdfGraph graph = builder.Build();
  partition::VertexAssignment assignment;
  assignment.k = 2;
  assignment.part.resize(graph.num_vertices());
  // {a,b} on site 0; {c,d} on site 1: p only on site 0, q only on 1.
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    const std::string& name = graph.VertexName(static_cast<uint32_t>(v));
    assignment.part[v] = (name == "<t:a>" || name == "<t:b>") ? 0 : 1;
  }
  Cluster cluster =
      Cluster::Build(partition::Partitioning::MaterializeVertexDisjoint(
          graph, std::move(assignment)));
  DistributedExecutor executor(cluster, graph);
  // Both patterns share ?x, one subquery needs both p and q -> no site
  // has both -> all sites pruned -> empty result with correct schema.
  sparql::QueryGraph query = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:p> ?y . ?x <t:q> ?z . }");
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->bindings.num_rows(), 0u);
  EXPECT_EQ(response->bindings.var_ids.size(), 3u);
}

}  // namespace
}  // namespace mpc::exec

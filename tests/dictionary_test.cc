#include "rdf/dictionary.h"

#include <string>

#include "gtest/gtest.h"

namespace mpc::rdf {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("<a>"), 0u);
  EXPECT_EQ(dict.Intern("<b>"), 1u);
  EXPECT_EQ(dict.Intern("<a>"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, LookupMissingReturnsInvalid) {
  Dictionary dict;
  dict.Intern("<a>");
  EXPECT_EQ(dict.Lookup("<b>"), kInvalidVertex);
  EXPECT_EQ(dict.Lookup("<a>"), 0u);
}

TEST(DictionaryTest, LexicalRoundTrip) {
  Dictionary dict;
  uint32_t id = dict.Intern("\"hello\"@en");
  EXPECT_EQ(dict.Lexical(id), "\"hello\"@en");
}

TEST(DictionaryTest, KindClassification) {
  Dictionary dict;
  EXPECT_EQ(dict.KindOf(dict.Intern("<http://x>")), TermKind::kIri);
  EXPECT_EQ(dict.KindOf(dict.Intern("\"lit\"")), TermKind::kLiteral);
  EXPECT_EQ(dict.KindOf(dict.Intern("_:b0")), TermKind::kBlank);
}

// Regression: interning many short (SSO) strings must not invalidate the
// index's string_view keys when storage grows.
TEST(DictionaryTest, StableUnderGrowth) {
  Dictionary dict;
  std::vector<std::string> terms;
  for (int i = 0; i < 20000; ++i) {
    terms.push_back("<t" + std::to_string(i) + ">");
    ASSERT_EQ(dict.Intern(terms.back()), static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ(dict.Lookup(terms[i]), static_cast<uint32_t>(i))
        << "lookup broke after growth for " << terms[i];
  }
}

TEST(DictionaryTest, InternDoesNotAliasCallerBuffer) {
  Dictionary dict;
  {
    std::string temp = "<short-lived>";
    dict.Intern(temp);
    temp.assign("XXXXXXXXXXXXXXXXXXXXXX");
  }
  EXPECT_EQ(dict.Lookup("<short-lived>"), 0u);
  EXPECT_EQ(dict.Lexical(0), "<short-lived>");
}

TEST(DictionaryTest, MemoryUsageGrows) {
  Dictionary dict;
  size_t before = dict.MemoryUsage();
  for (int i = 0; i < 100; ++i) {
    dict.Intern("<some/rather/long/iri/number/" + std::to_string(i) + ">");
  }
  EXPECT_GT(dict.MemoryUsage(), before);
}

TEST(DictionaryTest, MoveKeepsIndexValid) {
  Dictionary a;
  a.Intern("<x>");
  a.Intern("<y>");
  Dictionary b = std::move(a);
  EXPECT_EQ(b.Lookup("<x>"), 0u);
  EXPECT_EQ(b.Lookup("<y>"), 1u);
  EXPECT_EQ(b.size(), 2u);
}

}  // namespace
}  // namespace mpc::rdf

#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace mpc {
namespace {

TEST(ResolveNumThreadsTest, PositiveTakenVerbatim) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
}

TEST(ResolveNumThreadsTest, NonPositiveMeansHardware) {
  // 0 and negatives resolve to hardware_concurrency, which is >= 1 even
  // when the runtime reports 0.
  EXPECT_GE(ResolveNumThreads(0), 1);
  EXPECT_GE(ResolveNumThreads(-3), 1);
  EXPECT_EQ(ResolveNumThreads(0), ResolveNumThreads(-1));
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, WaitRethrowsFirstExceptionAndClearsIt) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception is consumed; the pool stays usable.
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // ~ThreadPool drains, then joins.
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<int> visits(1000, 0);
    ParallelFor(0, visits.size(), 7, threads,
                [&](size_t i) { visits[i] += 1; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000)
        << "threads=" << threads;
    for (int v : visits) EXPECT_EQ(v, 1);
  }
}

TEST(ParallelForTest, EmptyRangeAndZeroGrain) {
  int calls = 0;
  ParallelFor(5, 5, 4, 8, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // grain 0 is treated as 1.
  std::atomic<int> atomic_calls{0};
  ParallelFor(0, 10, 0, 4, [&](size_t) { atomic_calls.fetch_add(1); });
  EXPECT_EQ(atomic_calls.load(), 10);
}

TEST(ParallelForTest, PerIndexWritesAreBitIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    std::vector<uint64_t> out(4096);
    ParallelFor(0, out.size(), 64, threads,
                [&](size_t i) { out[i] = i * 2654435761u; });
    return out;
  };
  const std::vector<uint64_t> serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ParallelForTest, PropagatesExceptionFromBody) {
  for (int threads : {1, 2, 8}) {
    EXPECT_THROW(
        ParallelFor(0, 100, 1, threads,
                    [](size_t i) {
                      if (i == 37) throw std::runtime_error("bad index");
                    }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelForTest, SerialFallbackRunsOnCallingThread) {
  // threads=1 must not spawn a pool: the body sees the caller's thread.
  const std::thread::id caller = std::this_thread::get_id();
  ParallelFor(0, 16, 4, 1, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

}  // namespace
}  // namespace mpc

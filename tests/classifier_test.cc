#include "exec/query_classifier.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "sparql/shape.h"
#include "test_util.h"

namespace mpc::exec {
namespace {

using partition::Partitioning;
using partition::VertexAssignment;
using rdf::RdfGraph;

/// Fixture graph where property "cross" crosses and everything else is
/// internal: two halves {a,b,c} and {d,e,f} split by construction.
struct Fixture {
  RdfGraph graph;
  Partitioning partitioning;

  Fixture()
      : graph(testutil::BuildGraph({
            {"a", "in1", "b"},
            {"b", "in2", "c"},
            {"d", "in1", "e"},
            {"e", "in2", "f"},
            {"c", "cross", "d"},
            {"a", "cross", "b"},  // internal edge with crossing property
        })) {
    VertexAssignment assignment;
    assignment.k = 2;
    assignment.part.resize(graph.num_vertices());
    for (size_t v = 0; v < graph.num_vertices(); ++v) {
      const std::string& name = graph.VertexName(static_cast<uint32_t>(v));
      char c = name[3];  // "<t:X>"
      assignment.part[v] = (c <= 'c') ? 0 : 1;
    }
    partitioning = Partitioning::MaterializeVertexDisjoint(
        graph, std::move(assignment));
  }
};

TEST(ClassifierTest, FixtureHasExpectedCrossingSet) {
  Fixture f;
  EXPECT_EQ(f.partitioning.num_crossing_properties(), 1u);
  rdf::PropertyId cross = f.graph.property_dict().Lookup("<t:cross>");
  EXPECT_TRUE(f.partitioning.IsCrossingProperty(cross));
}

TEST(ClassifierTest, InternalQuery) {
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:in1> ?y . ?y <t:in2> ?z . }");
  Classification c = ClassifyQuery(q, f.partitioning, f.graph);
  EXPECT_EQ(c.cls, IeqClass::kInternal);
  EXPECT_TRUE(c.independently_executable());
  EXPECT_EQ(c.num_crossing_patterns, 0u);
}

TEST(ClassifierTest, TypeIQuery) {
  // The paper's Q3 shape: removing the crossing edge keeps the query
  // connected (both endpoints sit in the internal part).
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:in1> ?y . ?y <t:in2> ?z . ?x <t:cross> ?z . }");
  Classification c = ClassifyQuery(q, f.partitioning, f.graph);
  EXPECT_EQ(c.cls, IeqClass::kExtendedTypeI);
  EXPECT_TRUE(c.independently_executable());
}

TEST(ClassifierTest, TypeIIQuery) {
  // The paper's Q4 shape: crossing edges hang satellites off a core.
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:in1> ?y . ?y <t:in2> ?z . ?y <t:cross> ?w . "
      "?z <t:cross> ?w . }");
  Classification c = ClassifyQuery(q, f.partitioning, f.graph);
  EXPECT_EQ(c.cls, IeqClass::kExtendedTypeII);
  EXPECT_TRUE(c.independently_executable());
}

TEST(ClassifierTest, NonIeqQuery) {
  // Two multi-vertex cores joined by a crossing edge (the paper's Q5
  // after simplification): not independently executable.
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:in1> ?b . ?b <t:cross> ?c . ?c <t:in2> ?d . "
      "}");
  Classification c = ClassifyQuery(q, f.partitioning, f.graph);
  EXPECT_EQ(c.cls, IeqClass::kNonIeq);
  EXPECT_FALSE(c.independently_executable());
}

TEST(ClassifierTest, VariablePredicateCountsAsCrossing) {
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:in1> ?b . ?b ?p ?c . ?c <t:in2> ?d . }");
  Classification c = ClassifyQuery(q, f.partitioning, f.graph);
  EXPECT_EQ(c.num_crossing_patterns, 1u);
  EXPECT_EQ(c.cls, IeqClass::kNonIeq);
}

TEST(ClassifierTest, UnknownPropertyIsNotCrossing) {
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:in1> ?y . ?y <t:nosuch> ?z . }");
  Classification c = ClassifyQuery(q, f.partitioning, f.graph);
  EXPECT_EQ(c.cls, IeqClass::kInternal);
}

TEST(ClassifierTest, AllCrossingStarIsTypeII) {
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:cross> ?a . ?x <t:cross> ?b . ?b <t:cross> "
      "?x . }");
  Classification c = ClassifyQuery(q, f.partitioning, f.graph);
  EXPECT_EQ(c.cls, IeqClass::kExtendedTypeII);
}

TEST(ClassifierTest, AllCrossingNonStarIsNonIeq) {
  Fixture f;
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:cross> ?b . ?b <t:cross> ?c . ?c <t:cross> "
      "?d . }");
  Classification c = ClassifyQuery(q, f.partitioning, f.graph);
  EXPECT_EQ(c.cls, IeqClass::kNonIeq);
}

// Theorem 5: a star query is always an IEQ (internal or Type-II) under
// ANY vertex-disjoint partitioning. Property-tested over random graphs,
// random hash partitionings and random star queries.
TEST(ClassifierTest, StarQueriesAlwaysIeq_Theorem5) {
  Rng rng(55);
  for (int round = 0; round < 30; ++round) {
    RdfGraph g = testutil::RandomGraph(rng, 30, 90, 5);
    partition::PartitionerOptions options{
        .k = 2 + static_cast<uint32_t>(rng.Below(4)),
        .epsilon = 0.1,
        .seed = rng.Next()};
    Partitioning p = partition::SubjectHashPartitioner(options).Partition(g);

    // Random star query with 2-4 edges, random directions/properties.
    sparql::QueryGraphBuilder builder;
    const size_t num_edges = 2 + rng.Below(3);
    for (size_t i = 0; i < num_edges; ++i) {
      std::string prop = "<t:p" + std::to_string(rng.Below(5)) + ">";
      std::string leaf = "?v" + std::to_string(i);
      if (rng.Chance(0.5)) {
        builder.AddPattern("?x", prop, leaf);
      } else {
        builder.AddPattern(leaf, prop, "?x");
      }
    }
    Result<sparql::QueryGraph> q = builder.Build();
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(sparql::IsStarQuery(*q));
    Classification c = ClassifyQuery(*q, p, g);
    EXPECT_TRUE(c.independently_executable())
        << "star query classified " << IeqClassName(c.cls) << " in round "
        << round;
  }
}

TEST(VpLocalityTest, SingleSiteQueriesAreLocal) {
  Rng rng(60);
  RdfGraph g = testutil::RandomGraph(rng, 50, 200, 6);
  partition::PartitionerOptions options{.k = 3, .epsilon = 0.1, .seed = 2};
  Partitioning vp = partition::VpPartitioner(options).Partition(g);

  // A query over one property is always local.
  sparql::QueryGraph q1 = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:p0> ?y . }");
  EXPECT_TRUE(IsVpLocalQuery(q1, vp, g));

  // A var-predicate query never is.
  sparql::QueryGraph q2 =
      testutil::ParseQueryOrDie("SELECT * WHERE { ?x ?p ?y . }");
  EXPECT_FALSE(IsVpLocalQuery(q2, vp, g));

  // Two properties: local iff same home.
  rdf::PropertyId p0 = g.property_dict().Lookup("<t:p0>");
  rdf::PropertyId p1 = g.property_dict().Lookup("<t:p1>");
  sparql::QueryGraph q3 = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:p0> ?y . ?y <t:p1> ?z . }");
  EXPECT_EQ(IsVpLocalQuery(q3, vp, g),
            vp.PropertyHome(p0) == vp.PropertyHome(p1));
}

TEST(VpLocalityTest, UnknownPropertyIsTriviallyLocal) {
  Rng rng(61);
  RdfGraph g = testutil::RandomGraph(rng, 20, 50, 3);
  partition::PartitionerOptions options{.k = 2, .epsilon = 0.1, .seed = 1};
  Partitioning vp = partition::VpPartitioner(options).Partition(g);
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:ghost> ?y . }");
  EXPECT_TRUE(IsVpLocalQuery(q, vp, g));
}

}  // namespace
}  // namespace mpc::exec

#include "exec/decomposer.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "test_util.h"

namespace mpc::exec {
namespace {

std::vector<bool> Mask(size_t n, std::initializer_list<size_t> crossing) {
  std::vector<bool> mask(n, false);
  for (size_t i : crossing) mask[i] = true;
  return mask;
}

std::set<size_t> AllPatterns(const Decomposition& d) {
  std::set<size_t> all;
  for (const auto& sub : d.subqueries) all.insert(sub.begin(), sub.end());
  return all;
}

TEST(DecomposerTest, IeqStaysWhole) {
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:p> ?b . ?b <t:q> ?c . }");
  Decomposition d = DecomposeQuery(q, Mask(2, {}));
  ASSERT_EQ(d.num_subqueries(), 1u);
  EXPECT_EQ(d.subqueries[0].size(), 2u);
}

TEST(DecomposerTest, PaperQ5Shape) {
  // Q5 of Fig. 5/6: a larger core q1, a second core q2, a crossing edge
  // between them, a variable-predicate edge, and a hanging satellite.
  //   q1' = {?x <in1> ?u, ?u <in2> ?w}   (3 vertices)
  //   q2' = {?y <in3> ?v}                (2 vertices)
  //   crossing: ?y <cross> ?x            (between q1', q2')
  //   var-pred: ?y ?p ?z                 (?z is the q3' singleton)
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:in1> ?u . ?u <t:in2> ?w . ?y <t:in3> ?v . "
      "?y <t:cross> ?x . ?y ?p ?z . }");
  // Patterns 3 (crossing property) and 4 (variable predicate) removed.
  Decomposition d = DecomposeQuery(q, Mask(5, {3, 4}));

  // Two subqueries, as in Fig. 6; the singleton ?z WCC is dropped.
  ASSERT_EQ(d.num_subqueries(), 2u);
  // Every pattern appears exactly once.
  std::set<size_t> all = AllPatterns(d);
  EXPECT_EQ(all.size(), 5u);
  size_t total = 0;
  for (const auto& sub : d.subqueries) total += sub.size();
  EXPECT_EQ(total, 5u);

  // The crossing edge 3 goes to the larger core (patterns {0,1});
  // the var-pred edge 4 attaches to ?y's subquery.
  for (const auto& sub : d.subqueries) {
    bool has0 = std::count(sub.begin(), sub.end(), 0) > 0;
    bool has3 = std::count(sub.begin(), sub.end(), 3) > 0;
    bool has2 = std::count(sub.begin(), sub.end(), 2) > 0;
    bool has4 = std::count(sub.begin(), sub.end(), 4) > 0;
    if (has0) EXPECT_TRUE(has3);
    if (has2) EXPECT_TRUE(has4);
  }
}

TEST(DecomposerTest, CrossingEdgeInsideOneComponentStays) {
  // Triangle with one crossing chord: Type-I; decomposition keeps it in
  // the single subquery.
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:p> ?b . ?b <t:q> ?c . ?a <t:cross> ?c . }");
  Decomposition d = DecomposeQuery(q, Mask(3, {2}));
  ASSERT_EQ(d.num_subqueries(), 1u);
  EXPECT_EQ(d.subqueries[0].size(), 3u);
}

TEST(DecomposerTest, TieGoesToObjectSideComponent) {
  // Both endpoint WCCs have one vertex; Algorithm 2's tie rule
  // (|q(vi)| <= |q(vj)| -> add to q(vj)) sends the edge to the object's
  // component.
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:cross> ?b . }");
  Decomposition d = DecomposeQuery(q, Mask(1, {0}));
  ASSERT_EQ(d.num_subqueries(), 1u);
  EXPECT_EQ(d.subqueries[0].size(), 1u);
}

TEST(DecomposerTest, AllCrossingPathSplitsPerEdgeOwnership) {
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:cross> ?b . ?b <t:cross> ?c . ?c <t:cross> "
      "?d . }");
  Decomposition d = DecomposeQuery(q, Mask(3, {0, 1, 2}));
  // Every pattern assigned somewhere, none lost.
  EXPECT_EQ(AllPatterns(d).size(), 3u);
  EXPECT_GE(d.num_subqueries(), 1u);
}

TEST(DecomposerTest, EveryPatternAssignedExactlyOnce_Property) {
  // Randomized: all 2^n crossing masks of a 4-pattern query.
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?c <t:p2> ?d . ?b "
      "<t:p3> ?e . }");
  for (uint32_t bits = 0; bits < 16; ++bits) {
    std::vector<bool> mask(4);
    for (int i = 0; i < 4; ++i) mask[i] = bits & (1u << i);
    Decomposition d = DecomposeQuery(q, mask);
    std::set<size_t> all = AllPatterns(d);
    size_t total = 0;
    for (const auto& sub : d.subqueries) total += sub.size();
    EXPECT_EQ(all.size(), 4u) << "mask " << bits;
    EXPECT_EQ(total, 4u) << "mask " << bits;
  }
}

}  // namespace
}  // namespace mpc::exec

#include "dsf/disjoint_set_forest.h"

#include <algorithm>

#include "common/random.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace mpc::dsf {
namespace {

using rdf::Triple;

TEST(DsfTest, SingletonsInitially) {
  DisjointSetForest f(5);
  EXPECT_EQ(f.num_components(), 5u);
  EXPECT_EQ(f.max_component_size(), 1u);
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(f.ComponentSize(v), 1u);
}

TEST(DsfTest, UnionMergesAndTracksSizes) {
  DisjointSetForest f(6);
  EXPECT_TRUE(f.Union(0, 1));
  EXPECT_TRUE(f.Union(2, 3));
  EXPECT_TRUE(f.Union(0, 2));
  EXPECT_FALSE(f.Union(1, 3));  // already connected
  EXPECT_EQ(f.num_components(), 3u);  // {0,1,2,3}, {4}, {5}
  EXPECT_EQ(f.max_component_size(), 4u);
  EXPECT_EQ(f.ComponentSize(3), 4u);
  EXPECT_TRUE(f.Connected(0, 3));
  EXPECT_FALSE(f.Connected(0, 4));
}

TEST(DsfTest, FindNoCompressAgreesWithFind) {
  Rng rng(5);
  DisjointSetForest f(200);
  for (int i = 0; i < 300; ++i) {
    f.Union(static_cast<uint32_t>(rng.Below(200)),
            static_cast<uint32_t>(rng.Below(200)));
  }
  for (uint32_t v = 0; v < 200; ++v) {
    EXPECT_EQ(f.FindNoCompress(v), f.Find(v));
  }
}

TEST(DsfTest, AddEdgesUnionsEndpoints) {
  DisjointSetForest f(4);
  std::vector<Triple> edges = {Triple(0, 0, 1), Triple(2, 0, 3)};
  f.AddEdges(edges);
  EXPECT_TRUE(f.Connected(0, 1));
  EXPECT_TRUE(f.Connected(2, 3));
  EXPECT_FALSE(f.Connected(0, 2));
}

TEST(DsfTest, ComponentLabelsAreDenseAndConsistent) {
  DisjointSetForest f(5);
  f.Union(0, 2);
  f.Union(3, 4);
  auto labels = f.ComponentLabels();
  ASSERT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[3]);
  uint32_t max_label = *std::max_element(labels.begin(), labels.end());
  EXPECT_EQ(max_label + 1, f.num_components());
}

TEST(DsfTest, MaxWccOfEdgesSingleChain) {
  std::vector<Triple> chain = {Triple(0, 0, 1), Triple(1, 0, 2),
                               Triple(2, 0, 3)};
  EXPECT_EQ(MaxWccOfEdges(chain), 4u);
}

TEST(DsfTest, MaxWccOfEdgesTwoComponents) {
  std::vector<Triple> edges = {Triple(0, 0, 1), Triple(10, 0, 11),
                               Triple(11, 0, 12)};
  EXPECT_EQ(MaxWccOfEdges(edges), 3u);
}

TEST(DsfTest, MaxWccOfEdgesEmpty) {
  EXPECT_EQ(MaxWccOfEdges({}), 0u);
}

TEST(DsfTest, MaxWccIgnoresUntouchedVertices) {
  // Vertex ids are sparse; only touched vertices count.
  std::vector<Triple> edges = {Triple(1000000, 0, 2000000)};
  EXPECT_EQ(MaxWccOfEdges(edges), 2u);
}

TEST(DsfTest, TrialMergeMatchesCommittedMerge) {
  // Property-style check: for random base graphs and candidate edge
  // sets, the non-destructive trial merge must equal committing the
  // edges on a copy.
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 2 + rng.Below(60);
    DisjointSetForest base(n);
    const size_t base_edges = rng.Below(n * 2);
    for (size_t i = 0; i < base_edges; ++i) {
      base.Union(static_cast<uint32_t>(rng.Below(n)),
                 static_cast<uint32_t>(rng.Below(n)));
    }
    std::vector<Triple> candidate;
    const size_t cand_edges = rng.Below(n);
    for (size_t i = 0; i < cand_edges; ++i) {
      candidate.emplace_back(static_cast<uint32_t>(rng.Below(n)), 0,
                             static_cast<uint32_t>(rng.Below(n)));
    }

    size_t trial = TrialMergeMaxComponent(base, candidate);

    DisjointSetForest committed = base;  // copy
    committed.AddEdges(candidate);
    EXPECT_EQ(trial, committed.max_component_size())
        << "round " << round << " n=" << n;
  }
}

TEST(DsfTest, TrialMergeDoesNotMutateBase) {
  DisjointSetForest base(4);
  base.Union(0, 1);
  std::vector<Triple> candidate = {Triple(1, 0, 2), Triple(2, 0, 3)};
  EXPECT_EQ(TrialMergeMaxComponent(base, candidate), 4u);
  EXPECT_EQ(base.max_component_size(), 2u);
  EXPECT_EQ(base.num_components(), 3u);
  EXPECT_FALSE(base.Connected(1, 2));
}

TEST(DsfTest, TrialMergeWithEmptyCandidate) {
  DisjointSetForest base(3);
  base.Union(0, 1);
  EXPECT_EQ(TrialMergeMaxComponent(base, {}), 2u);
}

TEST(DsfTest, SelfUnionIsNoop) {
  DisjointSetForest f(3);
  EXPECT_FALSE(f.Union(1, 1));
  EXPECT_EQ(f.num_components(), 3u);
  EXPECT_EQ(f.max_component_size(), 1u);
  EXPECT_EQ(f.ComponentSize(1), 1u);
  // Also after 1 joins a larger component.
  f.Union(0, 1);
  EXPECT_FALSE(f.Union(1, 1));
  EXPECT_EQ(f.ComponentSize(1), 2u);
}

TEST(DsfTest, RankTieMergesKeepSizesExact) {
  // Merging two equal-rank trees bumps the winner's rank; sizes must stay
  // exact through a full binary-merge cascade (all ties).
  DisjointSetForest f(8);
  for (uint32_t v = 0; v < 8; v += 2) f.Union(v, v + 1);  // rank ties
  EXPECT_EQ(f.max_component_size(), 2u);
  f.Union(0, 2);  // tie again: both roots rank 1
  f.Union(4, 6);
  EXPECT_EQ(f.max_component_size(), 4u);
  f.Union(0, 4);
  EXPECT_EQ(f.num_components(), 1u);
  EXPECT_EQ(f.max_component_size(), 8u);
  for (uint32_t v = 0; v < 8; ++v) EXPECT_EQ(f.ComponentSize(v), 8u);
}

TEST(DsfTest, UnionAfterMergeViaStaleIds) {
  // Unions addressed through non-root members of already-merged
  // components must resolve to the roots and stay consistent.
  DisjointSetForest f(6);
  f.Union(0, 1);
  f.Union(1, 2);     // 2 joins through non-root 1
  f.Union(3, 4);
  EXPECT_TRUE(f.Union(2, 4));   // merges {0,1,2} and {3,4}
  EXPECT_FALSE(f.Union(0, 3));  // same component through other members
  EXPECT_EQ(f.num_components(), 2u);
  EXPECT_EQ(f.ComponentSize(4), 5u);
  EXPECT_TRUE(f.Connected(0, 4));
  EXPECT_FALSE(f.Connected(0, 5));
}

TEST(DsfTest, GrowAddsSingletons) {
  DisjointSetForest f(3);
  f.Union(0, 1);
  f.Grow(6);
  EXPECT_EQ(f.universe_size(), 6u);
  EXPECT_EQ(f.num_components(), 5u);  // {0,1} {2} {3} {4} {5}
  for (uint32_t v = 3; v < 6; ++v) EXPECT_EQ(f.ComponentSize(v), 1u);
  EXPECT_TRUE(f.Connected(0, 1));
  EXPECT_FALSE(f.Connected(1, 3));
  // Grown ids are full members: unions work across the old/new boundary.
  EXPECT_TRUE(f.Union(1, 5));
  EXPECT_EQ(f.ComponentSize(5), 3u);
  EXPECT_EQ(f.max_component_size(), 3u);
}

TEST(DsfTest, GrowIsIdempotentAndNeverShrinks) {
  DisjointSetForest f(4);
  f.Union(0, 1);
  f.Grow(4);  // same size: no-op
  f.Grow(2);  // smaller: no-op
  EXPECT_EQ(f.universe_size(), 4u);
  EXPECT_EQ(f.num_components(), 3u);
  EXPECT_EQ(f.max_component_size(), 2u);
}

// Union-by-rank keeps trees shallow: FindNoCompress on a long
// union chain must not stack-overflow / degrade to O(n) depth. We just
// sanity-check it completes on a large forest.
TEST(DsfTest, LargeChainPerformanceSmoke) {
  const size_t n = 200000;
  DisjointSetForest f(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    f.Union(static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1));
  }
  EXPECT_EQ(f.num_components(), 1u);
  EXPECT_EQ(f.max_component_size(), n);
  EXPECT_EQ(f.FindNoCompress(0), f.FindNoCompress(n - 1));
}

}  // namespace
}  // namespace mpc::dsf

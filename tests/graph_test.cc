#include "rdf/graph.h"

#include "gtest/gtest.h"
#include "rdf/stats.h"
#include "test_util.h"

namespace mpc::rdf {
namespace {

TEST(GraphBuilderTest, BuildsAndCounts) {
  RdfGraph g = testutil::BuildGraph({
      {"s1", "p1", "o1"},
      {"s1", "p2", "o2"},
      {"s2", "p1", "o1"},
  });
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_properties(), 2u);
  EXPECT_EQ(g.num_vertices(), 4u);  // s1, o1, o2, s2
}

TEST(GraphBuilderTest, DeduplicatesTriples) {
  RdfGraph g = testutil::BuildGraph({
      {"s", "p", "o"},
      {"s", "p", "o"},
      {"s", "p", "o2"},
  });
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, SubjectsAndObjectsShareIdSpace) {
  RdfGraph g = testutil::BuildGraph({
      {"a", "p", "b"},
      {"b", "p", "c"},
  });
  // "b" appears as both object and subject; it must be one vertex.
  EXPECT_EQ(g.num_vertices(), 3u);
}

TEST(GraphTest, PropertySpansAreContiguousAndComplete) {
  RdfGraph g = testutil::BuildGraph({
      {"a", "p1", "b"},
      {"c", "p2", "d"},
      {"e", "p1", "f"},
      {"g", "p3", "h"},
      {"i", "p2", "j"},
  });
  size_t total = 0;
  for (PropertyId p = 0; p < g.num_properties(); ++p) {
    auto span = g.EdgesWithProperty(p);
    EXPECT_EQ(span.size(), g.PropertyFrequency(p));
    for (const Triple& t : span) EXPECT_EQ(t.property, p);
    total += span.size();
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(GraphTest, TriplesSortedByPropertyFirst) {
  RdfGraph g = testutil::BuildGraph({
      {"z", "p2", "y"},
      {"a", "p1", "b"},
      {"m", "p2", "n"},
  });
  const auto& triples = g.triples();
  for (size_t i = 1; i < triples.size(); ++i) {
    EXPECT_LE(triples[i - 1].property, triples[i].property);
  }
}

TEST(GraphTest, AddByInternedIds) {
  GraphBuilder builder;
  VertexId s = builder.InternVertex("<t:s>");
  PropertyId p = builder.InternProperty("<t:p>");
  VertexId o = builder.InternVertex("<t:o>");
  builder.Add(s, p, o);
  RdfGraph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.triples()[0], Triple(s, p, o));
  EXPECT_EQ(g.VertexName(s), "<t:s>");
  EXPECT_EQ(g.PropertyName(p), "<t:p>");
}

TEST(GraphTest, AllPropertiesEnumerates) {
  RdfGraph g = testutil::BuildGraph({{"a", "p1", "b"}, {"a", "p2", "b"}});
  auto props = g.AllProperties();
  ASSERT_EQ(props.size(), 2u);
  EXPECT_EQ(props[0], 0u);
  EXPECT_EQ(props[1], 1u);
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder builder;
  RdfGraph g = builder.Build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_properties(), 0u);
}

TEST(GraphTest, SelfLoopIsKept) {
  RdfGraph g = testutil::BuildGraph({{"a", "p", "a"}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_vertices(), 1u);
}

TEST(StatsTest, ComputeStatsMatchesGraph) {
  RdfGraph g = testutil::BuildGraph({
      {"a", "p1", "b"},
      {"b", "p2", "c"},
  });
  DatasetStats stats = ComputeStats("toy", g);
  EXPECT_EQ(stats.name, "toy");
  EXPECT_EQ(stats.num_entities, 3u);
  EXPECT_EQ(stats.num_triples, 2u);
  EXPECT_EQ(stats.num_properties, 2u);
}

TEST(StatsTest, HistogramSortedDescending) {
  RdfGraph g = testutil::BuildGraph({
      {"a", "p1", "b"},
      {"c", "p1", "d"},
      {"e", "p1", "f"},
      {"a", "p2", "b"},
  });
  auto hist = PropertyHistogram(g);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], 3u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_DOUBLE_EQ(TopPropertyShare(g), 0.75);
}

TEST(StatsTest, EmptyGraphShareIsZero) {
  GraphBuilder builder;
  RdfGraph g = builder.Build();
  EXPECT_DOUBLE_EQ(TopPropertyShare(g), 0.0);
}

}  // namespace
}  // namespace mpc::rdf

#include "exec/bloom_filter.h"

#include "common/random.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "gtest/gtest.h"
#include "partition/subject_hash_partitioner.h"
#include "test_util.h"

namespace mpc::exec {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1000);
  Rng rng(1);
  std::vector<uint32_t> inserted;
  for (int i = 0; i < 1000; ++i) {
    inserted.push_back(static_cast<uint32_t>(rng.Next()));
    filter.Insert(inserted.back());
  }
  for (uint32_t v : inserted) EXPECT_TRUE(filter.MayContain(v));
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter filter(2000);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    filter.Insert(static_cast<uint32_t>(rng.Below(1u << 20)));
  }
  // Probe values from a disjoint range.
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    uint32_t v = static_cast<uint32_t>((1u << 20) + rng.Below(1u << 20));
    false_positives += filter.MayContain(v);
  }
  EXPECT_LT(false_positives, probes / 20)  // < 5%, target ~1%
      << "FPR too high: " << false_positives << "/" << probes;
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter filter(10);
  EXPECT_FALSE(filter.MayContain(0));
  EXPECT_FALSE(filter.MayContain(12345));
}

TEST(BloomFilterTest, ByteSizeScalesWithCapacity) {
  EXPECT_LT(BloomFilter(10).ByteSize(), BloomFilter(100000).ByteSize());
  EXPECT_GE(BloomFilter(0).ByteSize(), 32u);  // floor
}

// Soundness of the executor integration: Bloom reduction never changes
// results, only (possibly) the bytes shipped.
TEST(BloomReductionTest, ResultsUnchangedAndBytesReduced) {
  Rng rng(3);
  size_t total_dropped = 0;
  for (int round = 0; round < 8; ++round) {
    rdf::RdfGraph graph = testutil::RandomGraph(rng, 60, 220, 5, 12, 0.2);
    partition::PartitionerOptions options{
        .k = 4, .epsilon = 0.2, .seed = rng.Next()};
    Cluster cluster = Cluster::Build(
        partition::SubjectHashPartitioner(options).Partition(graph));

    DistributedExecutor::Options base, bloom;
    bloom.bloom_reduction = true;
    DistributedExecutor plain(cluster, graph, base);
    DistributedExecutor reduced(cluster, graph, bloom);

    for (const std::string& text :
         {std::string("SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?c "
                      "<t:p2> ?d . }"),
          std::string("SELECT * WHERE { ?a <t:p0> ?b . ?b ?p ?c . ?c "
                      "<t:p1> ?d . }")}) {
      sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
      Result<QueryResponse> a = plain.Execute(QueryRequest::FromQuery(query));
      Result<QueryResponse> b =
          reduced.Execute(QueryRequest::FromQuery(query));
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(testutil::RowSet(a->bindings), testutil::RowSet(b->bindings))
          << text;
      if (!a->stats.independent) {
        total_dropped += b->stats.bloom_dropped_rows;
      }
      EXPECT_EQ(a->stats.bloom_dropped_rows, 0u);
    }
  }
  // Across the rounds, the reduction must actually fire somewhere.
  EXPECT_GT(total_dropped, 0u);
}

TEST(BloomReductionTest, IeqQueriesUnaffected) {
  Rng rng(4);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 40, 120, 4, 10);
  partition::PartitionerOptions options{.k = 4, .epsilon = 0.2, .seed = 9};
  Cluster cluster = Cluster::Build(
      partition::SubjectHashPartitioner(options).Partition(graph));
  DistributedExecutor::Options opts;
  opts.bloom_reduction = true;
  DistributedExecutor executor(cluster, graph, opts);
  // A star query is an IEQ: single subquery, no filters built.
  sparql::QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <t:p0> ?a . ?x <t:p1> ?b . }");
  Result<QueryResponse> response = executor.Execute(QueryRequest::FromQuery(q));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->stats.bloom_dropped_rows, 0u);
}

}  // namespace
}  // namespace mpc::exec

#include "partition/partitioning.h"

#include <set>

#include "common/random.h"
#include "gtest/gtest.h"
#include "partition/edge_cut_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "test_util.h"

namespace mpc::partition {
namespace {

using rdf::RdfGraph;
using rdf::Triple;

RdfGraph Toy() {
  return testutil::BuildGraph({
      {"a", "p1", "b"},
      {"b", "p1", "c"},
      {"c", "p2", "d"},
      {"d", "p3", "a"},
      {"a", "p2", "c"},
  });
}

VertexAssignment SplitFirstHalf(const RdfGraph& g, uint32_t k = 2) {
  VertexAssignment a;
  a.k = k;
  a.part.resize(g.num_vertices());
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    a.part[v] = static_cast<uint32_t>(v % k);
  }
  return a;
}

TEST(VertexAssignmentTest, Validation) {
  RdfGraph g = Toy();
  VertexAssignment a = SplitFirstHalf(g);
  EXPECT_TRUE(a.Valid(g.num_vertices()));
  a.part[0] = 5;
  EXPECT_FALSE(a.Valid(g.num_vertices()));
  a.part.pop_back();
  EXPECT_FALSE(a.Valid(g.num_vertices()));
}

TEST(PartitioningTest, VertexCountsPartitionV) {
  RdfGraph g = Toy();
  Partitioning p = Partitioning::MaterializeVertexDisjoint(
      g, SplitFirstHalf(g));
  size_t total = 0;
  for (const Partition& f : p.partitions()) total += f.num_owned_vertices;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(PartitioningTest, EveryEdgeAppearsExactlyOnceLogically) {
  RdfGraph g = Toy();
  Partitioning p = Partitioning::MaterializeVertexDisjoint(
      g, SplitFirstHalf(g));
  // internal edges once + each crossing edge twice (replicas).
  size_t internal = 0, crossing_replicas = 0;
  for (const Partition& f : p.partitions()) {
    internal += f.internal_edges.size();
    crossing_replicas += f.crossing_edges.size();
  }
  EXPECT_EQ(internal + crossing_replicas / 2, g.num_edges());
  EXPECT_EQ(crossing_replicas, 2 * p.num_crossing_edges());
}

TEST(PartitioningTest, InternalEdgesStayInside) {
  RdfGraph g = Toy();
  VertexAssignment a = SplitFirstHalf(g);
  Partitioning p = Partitioning::MaterializeVertexDisjoint(g, a);
  for (uint32_t i = 0; i < p.k(); ++i) {
    for (const Triple& t : p.partition(i).internal_edges) {
      EXPECT_EQ(p.assignment().part[t.subject], i);
      EXPECT_EQ(p.assignment().part[t.object], i);
    }
  }
}

TEST(PartitioningTest, CrossingEdgesReplicatedAtBothEndpoints) {
  RdfGraph g = Toy();
  Partitioning p = Partitioning::MaterializeVertexDisjoint(
      g, SplitFirstHalf(g));
  const auto& part = p.assignment().part;
  for (uint32_t i = 0; i < p.k(); ++i) {
    for (const Triple& t : p.partition(i).crossing_edges) {
      EXPECT_NE(part[t.subject], part[t.object]);
      EXPECT_TRUE(part[t.subject] == i || part[t.object] == i);
    }
  }
}

TEST(PartitioningTest, ExtendedVerticesAreForeignCrossingEndpoints) {
  RdfGraph g = Toy();
  Partitioning p = Partitioning::MaterializeVertexDisjoint(
      g, SplitFirstHalf(g));
  const auto& part = p.assignment().part;
  for (uint32_t i = 0; i < p.k(); ++i) {
    std::set<rdf::VertexId> expected;
    for (const Triple& t : p.partition(i).crossing_edges) {
      if (part[t.subject] != i) expected.insert(t.subject);
      if (part[t.object] != i) expected.insert(t.object);
    }
    std::set<rdf::VertexId> actual(
        p.partition(i).extended_vertices.begin(),
        p.partition(i).extended_vertices.end());
    EXPECT_EQ(actual, expected) << "partition " << i;
  }
}

TEST(PartitioningTest, CrossingPropertyMaskMatchesDefinition) {
  RdfGraph g = Toy();
  Partitioning p = Partitioning::MaterializeVertexDisjoint(
      g, SplitFirstHalf(g));
  const auto& part = p.assignment().part;
  for (rdf::PropertyId prop = 0; prop < g.num_properties(); ++prop) {
    bool any_crossing = false;
    for (const Triple& t : g.EdgesWithProperty(prop)) {
      if (part[t.subject] != part[t.object]) any_crossing = true;
    }
    EXPECT_EQ(p.IsCrossingProperty(prop), any_crossing)
        << g.PropertyName(prop);
  }
  EXPECT_EQ(p.CrossingProperties().size(), p.num_crossing_properties());
}

TEST(PartitioningTest, SinglePartitionHasNoCrossings) {
  RdfGraph g = Toy();
  VertexAssignment a;
  a.k = 1;
  a.part.assign(g.num_vertices(), 0);
  Partitioning p = Partitioning::MaterializeVertexDisjoint(g, a);
  EXPECT_EQ(p.num_crossing_edges(), 0u);
  EXPECT_EQ(p.num_crossing_properties(), 0u);
  EXPECT_DOUBLE_EQ(p.ReplicationRatio(g), 1.0);
}

TEST(PartitioningTest, EdgeDisjointMaterialization) {
  RdfGraph g = Toy();
  std::vector<uint32_t> triple_part(g.num_edges());
  for (size_t i = 0; i < triple_part.size(); ++i) {
    triple_part[i] = static_cast<uint32_t>(i % 2);
  }
  Partitioning p = Partitioning::MaterializeEdgeDisjoint(g, 2, triple_part);
  EXPECT_EQ(p.kind(), PartitioningKind::kEdgeDisjoint);
  size_t total = 0;
  for (const Partition& f : p.partitions()) {
    total += f.internal_edges.size();
    EXPECT_TRUE(f.crossing_edges.empty());
  }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_EQ(p.num_crossing_properties(), 0u);
}

TEST(SubjectHashTest, DeterministicAndValid) {
  RdfGraph g = Toy();
  PartitionerOptions options{.k = 3, .epsilon = 0.1, .seed = 5};
  SubjectHashPartitioner partitioner(options);
  Partitioning p1 = partitioner.Partition(g);
  Partitioning p2 = partitioner.Partition(g);
  EXPECT_EQ(p1.assignment().part, p2.assignment().part);
  EXPECT_TRUE(p1.assignment().Valid(g.num_vertices()));
}

TEST(SubjectHashTest, SeedChangesAssignment) {
  Rng rng(1);
  rdf::RdfGraph g = testutil::RandomGraph(rng, 200, 400, 5);
  PartitionerOptions a{.k = 4, .epsilon = 0.1, .seed = 1};
  PartitionerOptions b{.k = 4, .epsilon = 0.1, .seed = 2};
  EXPECT_NE(SubjectHashPartitioner(a).Partition(g).assignment().part,
            SubjectHashPartitioner(b).Partition(g).assignment().part);
}

TEST(SubjectHashTest, RoughlyBalancedOnLargeGraphs) {
  Rng rng(2);
  rdf::RdfGraph g = testutil::RandomGraph(rng, 3000, 6000, 10);
  PartitionerOptions options{.k = 8, .epsilon = 0.1, .seed = 3};
  Partitioning p = SubjectHashPartitioner(options).Partition(g);
  EXPECT_LT(p.BalanceRatio(), 1.2);
}

TEST(VpTest, AllTriplesOfAPropertyShareASite) {
  Rng rng(3);
  rdf::RdfGraph g = testutil::RandomGraph(rng, 100, 500, 7);
  PartitionerOptions options{.k = 4, .epsilon = 0.1, .seed = 4};
  Partitioning p = VpPartitioner(options).Partition(g);
  for (uint32_t i = 0; i < p.k(); ++i) {
    for (const Triple& t : p.partition(i).internal_edges) {
      EXPECT_EQ(p.PropertyHome(t.property), i);
    }
  }
}

TEST(EdgeCutTest, ProducesValidBalancedPartitioning) {
  Rng rng(4);
  rdf::RdfGraph g = testutil::RandomGraph(rng, 800, 2400, 6,
                                          /*community=*/50);
  PartitionerOptions options{.k = 8, .epsilon = 0.1, .seed = 5};
  Partitioning p = EdgeCutPartitioner(options).Partition(g);
  EXPECT_TRUE(p.assignment().Valid(g.num_vertices()));
  EXPECT_LE(p.BalanceRatio(), 1.1 + 1e-9);
}

TEST(EdgeCutTest, CutsFewerEdgesThanHash) {
  Rng rng(5);
  rdf::RdfGraph g = testutil::RandomGraph(rng, 1000, 3000, 6,
                                          /*community=*/50,
                                          /*escape=*/0.05);
  PartitionerOptions options{.k = 8, .epsilon = 0.1, .seed = 6};
  Partitioning metis = EdgeCutPartitioner(options).Partition(g);
  Partitioning hash = SubjectHashPartitioner(options).Partition(g);
  EXPECT_LT(metis.num_crossing_edges(), hash.num_crossing_edges());
}

TEST(MetricsTest, ComputeMetricsFillsFields) {
  RdfGraph g = Toy();
  Partitioning p = Partitioning::MaterializeVertexDisjoint(
      g, SplitFirstHalf(g));
  PartitionMetrics m = ComputeMetrics("X", g, p);
  EXPECT_EQ(m.strategy, "X");
  EXPECT_EQ(m.num_crossing_properties, p.num_crossing_properties());
  EXPECT_EQ(m.num_crossing_edges, p.num_crossing_edges());
  EXPECT_GE(m.replication_ratio, 1.0);
}

}  // namespace
}  // namespace mpc::partition

#include "partition/partition_io.h"

#include <filesystem>

#include "common/random.h"
#include "gtest/gtest.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "rdf/ntriples.h"
#include "test_util.h"

namespace mpc::partition {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(PartitionIoTest, VertexDisjointRoundTrip) {
  Rng rng(1);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 80, 240, 6);
  PartitionerOptions options{.k = 4, .epsilon = 0.1, .seed = 7};
  Partitioning original = SubjectHashPartitioner(options).Partition(graph);

  std::string dir = TempDir("mpc_io_vd");
  ASSERT_TRUE(PartitionIo::Save(graph, original, dir).ok());

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->k(), original.k());
  EXPECT_EQ(loaded->assignment().part, original.assignment().part);
  EXPECT_EQ(loaded->num_crossing_edges(), original.num_crossing_edges());
  EXPECT_EQ(loaded->num_crossing_properties(),
            original.num_crossing_properties());
  EXPECT_EQ(loaded->crossing_property_mask(),
            original.crossing_property_mask());
}

TEST(PartitionIoTest, RoundTripSurvivesReparsedGraph) {
  // Ids may shift when the data is re-parsed in a different order; the
  // lexical-form format must still reload correctly.
  Rng rng(2);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 40, 120, 4);
  PartitionerOptions options{.k = 3, .epsilon = 0.1, .seed = 3};
  Partitioning original = SubjectHashPartitioner(options).Partition(graph);
  std::string dir = TempDir("mpc_io_reparse");
  ASSERT_TRUE(PartitionIo::Save(graph, original, dir).ok());

  // Re-parse the serialized graph: dictionary order changes (sorted
  // triples rather than insertion order).
  rdf::GraphBuilder builder;
  ASSERT_TRUE(rdf::NTriplesParser::ParseDocument(
                  rdf::SerializeNTriples(graph), &builder)
                  .ok());
  rdf::RdfGraph reparsed = builder.Build();

  Result<Partitioning> loaded = PartitionIo::Load(reparsed, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Same partition structure, measured by invariant metrics.
  EXPECT_EQ(loaded->num_crossing_edges(), original.num_crossing_edges());
  EXPECT_EQ(loaded->num_crossing_properties(),
            original.num_crossing_properties());
  // And every vertex's partition agrees via lexical identity.
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    rdf::VertexId rv = reparsed.vertex_dict().Lookup(
        graph.VertexName(static_cast<rdf::VertexId>(v)));
    ASSERT_NE(rv, rdf::kInvalidVertex);
    EXPECT_EQ(loaded->assignment().part[rv], original.assignment().part[v]);
  }
}

TEST(PartitionIoTest, EdgeDisjointRoundTrip) {
  Rng rng(3);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 50, 150, 5);
  PartitionerOptions options{.k = 3, .epsilon = 0.1, .seed = 5};
  Partitioning original = VpPartitioner(options).Partition(graph);
  std::string dir = TempDir("mpc_io_ed");
  ASSERT_TRUE(PartitionIo::Save(graph, original, dir).ok());

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->kind(), PartitioningKind::kEdgeDisjoint);
  ASSERT_EQ(loaded->k(), original.k());
  for (uint32_t i = 0; i < original.k(); ++i) {
    EXPECT_EQ(loaded->partition(i).internal_edges.size(),
              original.partition(i).internal_edges.size());
  }
  for (size_t p = 0; p < graph.num_properties(); ++p) {
    EXPECT_EQ(loaded->PropertyHome(static_cast<rdf::PropertyId>(p)),
              original.PropertyHome(static_cast<rdf::PropertyId>(p)));
  }
}

TEST(PartitionIoTest, LoadMissingDirectoryFails) {
  Rng rng(4);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 10, 30, 2);
  Result<Partitioning> loaded =
      PartitionIo::Load(graph, "/nonexistent/mpc_dir");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(PartitionIoTest, LoadAgainstWrongGraphFails) {
  Rng rng(5);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 30, 90, 3);
  PartitionerOptions options{.k = 2, .epsilon = 0.1, .seed = 1};
  Partitioning original = SubjectHashPartitioner(options).Partition(graph);
  std::string dir = TempDir("mpc_io_wrong");
  ASSERT_TRUE(PartitionIo::Save(graph, original, dir).ok());

  rdf::RdfGraph other = testutil::RandomGraph(rng, 31, 90, 3);
  Result<Partitioning> loaded = PartitionIo::Load(other, dir);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace mpc::partition

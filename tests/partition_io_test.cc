#include "partition/partition_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/random.h"
#include "gtest/gtest.h"
#include "partition/subject_hash_partitioner.h"
#include "partition/vp_partitioner.h"
#include "rdf/ntriples.h"
#include "test_util.h"

namespace mpc::partition {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(PartitionIoTest, VertexDisjointRoundTrip) {
  Rng rng(1);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 80, 240, 6);
  PartitionerOptions options{.k = 4, .epsilon = 0.1, .seed = 7};
  Partitioning original = SubjectHashPartitioner(options).Partition(graph);

  std::string dir = TempDir("mpc_io_vd");
  ASSERT_TRUE(PartitionIo::Save(graph, original, dir).ok());

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->k(), original.k());
  EXPECT_EQ(loaded->assignment().part, original.assignment().part);
  EXPECT_EQ(loaded->num_crossing_edges(), original.num_crossing_edges());
  EXPECT_EQ(loaded->num_crossing_properties(),
            original.num_crossing_properties());
  EXPECT_EQ(loaded->crossing_property_mask(),
            original.crossing_property_mask());
}

TEST(PartitionIoTest, RoundTripSurvivesReparsedGraph) {
  // Ids may shift when the data is re-parsed in a different order; the
  // lexical-form format must still reload correctly.
  Rng rng(2);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 40, 120, 4);
  PartitionerOptions options{.k = 3, .epsilon = 0.1, .seed = 3};
  Partitioning original = SubjectHashPartitioner(options).Partition(graph);
  std::string dir = TempDir("mpc_io_reparse");
  ASSERT_TRUE(PartitionIo::Save(graph, original, dir).ok());

  // Re-parse the serialized graph: dictionary order changes (sorted
  // triples rather than insertion order).
  rdf::GraphBuilder builder;
  ASSERT_TRUE(rdf::NTriplesParser::ParseDocument(
                  rdf::SerializeNTriples(graph), &builder)
                  .ok());
  rdf::RdfGraph reparsed = builder.Build();

  Result<Partitioning> loaded = PartitionIo::Load(reparsed, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Same partition structure, measured by invariant metrics.
  EXPECT_EQ(loaded->num_crossing_edges(), original.num_crossing_edges());
  EXPECT_EQ(loaded->num_crossing_properties(),
            original.num_crossing_properties());
  // And every vertex's partition agrees via lexical identity.
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    rdf::VertexId rv = reparsed.vertex_dict().Lookup(
        graph.VertexName(static_cast<rdf::VertexId>(v)));
    ASSERT_NE(rv, rdf::kInvalidVertex);
    EXPECT_EQ(loaded->assignment().part[rv], original.assignment().part[v]);
  }
}

TEST(PartitionIoTest, EdgeDisjointRoundTrip) {
  Rng rng(3);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 50, 150, 5);
  PartitionerOptions options{.k = 3, .epsilon = 0.1, .seed = 5};
  Partitioning original = VpPartitioner(options).Partition(graph);
  std::string dir = TempDir("mpc_io_ed");
  ASSERT_TRUE(PartitionIo::Save(graph, original, dir).ok());

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->kind(), PartitioningKind::kEdgeDisjoint);
  ASSERT_EQ(loaded->k(), original.k());
  for (uint32_t i = 0; i < original.k(); ++i) {
    EXPECT_EQ(loaded->partition(i).internal_edges.size(),
              original.partition(i).internal_edges.size());
  }
  for (size_t p = 0; p < graph.num_properties(); ++p) {
    EXPECT_EQ(loaded->PropertyHome(static_cast<rdf::PropertyId>(p)),
              original.PropertyHome(static_cast<rdf::PropertyId>(p)));
  }
}

TEST(PartitionIoTest, LoadMissingDirectoryFails) {
  Rng rng(4);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 10, 30, 2);
  Result<Partitioning> loaded =
      PartitionIo::Load(graph, "/nonexistent/mpc_dir");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(PartitionIoTest, LoadAgainstWrongGraphFails) {
  Rng rng(5);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 30, 90, 3);
  PartitionerOptions options{.k = 2, .epsilon = 0.1, .seed = 1};
  Partitioning original = SubjectHashPartitioner(options).Partition(graph);
  std::string dir = TempDir("mpc_io_wrong");
  ASSERT_TRUE(PartitionIo::Save(graph, original, dir).ok());

  rdf::RdfGraph other = testutil::RandomGraph(rng, 31, 90, 3);
  Result<Partitioning> loaded = PartitionIo::Load(other, dir);
  EXPECT_FALSE(loaded.ok());
}

// --- Corruption regression tests: truncated or garbage files must fail
// --- with a descriptive Status, never load as a silently-wrong
// --- partitioning (strtoul used to accept garbage partition ids as 0).

/// Saves a small vertex-disjoint partitioning and returns its directory.
std::string SaveSmall(const std::string& name, rdf::RdfGraph* graph_out) {
  Rng rng(11);
  *graph_out = testutil::RandomGraph(rng, 20, 60, 3);
  PartitionerOptions options{.k = 2, .epsilon = 0.1, .seed = 1};
  Partitioning p = SubjectHashPartitioner(options).Partition(*graph_out);
  std::string dir = TempDir(name);
  EXPECT_TRUE(PartitionIo::Save(*graph_out, p, dir).ok());
  return dir;
}

void Overwrite(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(PartitionIoTest, GarbagePartitionIdInAssignmentRejected) {
  rdf::RdfGraph graph;
  std::string dir = SaveSmall("mpc_io_garbage_pid", &graph);
  std::string text = Slurp(dir + "/assignment.txt");
  const size_t tab = text.find('\t');
  ASSERT_NE(tab, std::string::npos);
  const size_t nl = text.find('\n', tab);
  text.replace(tab + 1, nl - tab - 1, "zap");
  Overwrite(dir + "/assignment.txt", text);

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("invalid partition id"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(PartitionIoTest, NumericGarbageSuffixRejected) {
  // "1abc" parsed with strtoul loads as partition 1; the strict parser
  // must reject the whole field.
  rdf::RdfGraph graph;
  std::string dir = SaveSmall("mpc_io_suffix_pid", &graph);
  std::string text = Slurp(dir + "/assignment.txt");
  const size_t tab = text.find('\t');
  ASSERT_NE(tab, std::string::npos);
  text.insert(text.find('\n', tab), "abc");
  Overwrite(dir + "/assignment.txt", text);

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(PartitionIoTest, TruncatedAssignmentRejected) {
  rdf::RdfGraph graph;
  std::string dir = SaveSmall("mpc_io_trunc", &graph);
  std::string text = Slurp(dir + "/assignment.txt");
  // Drop everything past the first line, losing most vertices; also chop
  // the surviving line's partition field mid-way is covered above, so
  // here the file is simply incomplete.
  Overwrite(dir + "/assignment.txt", text.substr(0, text.find('\n') + 1));

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("does not cover"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(PartitionIoTest, GarbageManifestKRejected) {
  rdf::RdfGraph graph;
  std::string dir = SaveSmall("mpc_io_bad_k", &graph);
  std::string text = Slurp(dir + "/manifest.txt");
  const size_t pos = text.find("k ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, text.find('\n', pos) - pos, "k -3");
  Overwrite(dir + "/manifest.txt", text);

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("invalid k"), std::string::npos);
}

TEST(PartitionIoTest, MissingManifestKindRejected) {
  rdf::RdfGraph graph;
  std::string dir = SaveSmall("mpc_io_no_kind", &graph);
  std::string text = Slurp(dir + "/manifest.txt");
  const size_t pos = text.find("kind ");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, text.find('\n', pos) - pos + 1);
  Overwrite(dir + "/manifest.txt", text);

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("missing kind"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(PartitionIoTest, GarbageVertexCountRejected) {
  rdf::RdfGraph graph;
  std::string dir = SaveSmall("mpc_io_bad_vcount", &graph);
  std::string text = Slurp(dir + "/manifest.txt");
  const size_t pos = text.find("vertices ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, text.find('\n', pos) - pos, "vertices 12q");
  Overwrite(dir + "/manifest.txt", text);

  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(PartitionIoTest, EmptyManifestRejected) {
  rdf::RdfGraph graph;
  std::string dir = SaveSmall("mpc_io_empty_manifest", &graph);
  Overwrite(dir + "/manifest.txt", "");
  Result<Partitioning> loaded = PartitionIo::Load(graph, dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

// --- Fingerprint: binds update journals/checkpoints to one saved
// --- partitioning.

TEST(PartitionIoTest, FingerprintIsStableAcrossReads) {
  rdf::RdfGraph graph;
  std::string dir = SaveSmall("mpc_io_fp_stable", &graph);
  Result<uint64_t> a = PartitionIo::Fingerprint(dir);
  Result<uint64_t> b = PartitionIo::Fingerprint(dir);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, 0u);
}

TEST(PartitionIoTest, FingerprintTracksContentChanges) {
  rdf::RdfGraph graph;
  std::string dir = SaveSmall("mpc_io_fp_content", &graph);
  Result<uint64_t> before = PartitionIo::Fingerprint(dir);
  ASSERT_TRUE(before.ok());

  // Moving one vertex to another site must change the fingerprint.
  std::string text = Slurp(dir + "/assignment.txt");
  const size_t tab = text.find('\t');
  ASSERT_NE(tab, std::string::npos);
  text[tab + 1] = text[tab + 1] == '0' ? '1' : '0';
  Overwrite(dir + "/assignment.txt", text);
  Result<uint64_t> after = PartitionIo::Fingerprint(dir);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*before, *after);

  // So must a manifest edit (e.g. a different crossing set).
  Overwrite(dir + "/assignment.txt", Slurp(dir + "/assignment.txt"));
  std::string manifest = Slurp(dir + "/manifest.txt");
  Overwrite(dir + "/manifest.txt", manifest + "<extra:prop>\n");
  Result<uint64_t> changed = PartitionIo::Fingerprint(dir);
  ASSERT_TRUE(changed.ok());
  EXPECT_NE(*changed, *after);
}

TEST(PartitionIoTest, FingerprintMissingDirFails) {
  Result<uint64_t> fp = PartitionIo::Fingerprint("/nonexistent/mpc_fp");
  ASSERT_FALSE(fp.ok());
  EXPECT_EQ(fp.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace mpc::partition

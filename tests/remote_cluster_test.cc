// End-to-end tests of the real multi-process site runtime: RemoteCluster
// over `mpc site` worker processes, with survived (not simulated)
// faults. Every test spawns actual workers via the SiteSupervisor, so
// the binary built at build/tools/mpc must exist; tests skip cleanly
// when it does not (e.g. a tests-only build).

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "exec/remote_cluster.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "net/chaos_proxy.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "partition/partition_io.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "test_util.h"

namespace mpc::exec {
namespace {

using rdf::RdfGraph;
using store::BindingTable;

/// Locates build/tools/mpc relative to this test binary
/// (build/tests/remote_cluster_test). Empty when not found.
std::string WorkerBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const std::filesystem::path exe(buf);
  const std::filesystem::path candidate =
      exe.parent_path().parent_path() / "tools" / "mpc";
  std::error_code ec;
  if (std::filesystem::exists(candidate, ec)) return candidate.string();
  return "";
}

/// The query mix: IEQ stars (union-only) and non-IEQ paths (decompose +
/// coordinator hash-join), so both executor data-paths cross the wire.
const char* kQueryMix[] = {
    "SELECT * WHERE { ?x <t:p0> ?y . }",
    "SELECT * WHERE { ?x <t:p0> ?y . ?x <t:p1> ?z . }",
    "SELECT * WHERE { ?x <t:p0> ?y . ?y <t:p2> ?z . }",
    "SELECT * WHERE { ?x <t:p1> ?y . ?y <t:p3> ?z . ?z <t:p4> ?w . }",
};

/// One deployment: a graph serialized to disk, a saved k-way MPC
/// partitioning, the coordinator's re-parse of the same bytes (the
/// workers parse them too, and parsing is bit-identical at any thread
/// count, so dictionary ids line up across processes), and the running
/// worker fleet.
struct Deployment {
  std::string dir;
  std::string graph_path;
  std::string partition_dir;
  RdfGraph graph;
  partition::Partitioning partitioning;  // coordinator's own copy
  std::unique_ptr<RemoteCluster> remote;

  ~Deployment() {
    remote.reset();  // stop workers before removing their sockets
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

/// Builds the on-disk artifacts and starts the fleet. `tweak` runs after
/// all default options are filled (socket_dir is set, so chaos proxies
/// can derive paths from it). Returns nullptr when the worker binary is
/// missing — callers GTEST_SKIP — and fails the test on real errors.
std::unique_ptr<Deployment> MakeDeployment(
    uint32_t k,
    const std::function<void(RemoteCluster::Options*)>& tweak = {}) {
  const std::string binary = WorkerBinary();
  if (binary.empty()) return nullptr;

  auto d = std::make_unique<Deployment>();
  char tmpl[] = "/tmp/mpc_rct_XXXXXX";  // short: socket paths live here
  if (::mkdtemp(tmpl) == nullptr) {
    ADD_FAILURE() << "mkdtemp failed";
    return nullptr;
  }
  d->dir = tmpl;

  Rng rng(5);
  RdfGraph seed = testutil::RandomGraph(rng, 60, 240, 5, /*community=*/12,
                                        /*escape=*/0.2);
  d->graph_path = d->dir + "/graph.nt";
  Status st = rdf::WriteNTriplesFile(seed, d->graph_path);
  if (!st.ok()) {
    ADD_FAILURE() << st.ToString();
    return nullptr;
  }
  rdf::GraphBuilder builder;
  st = rdf::NTriplesParser::ParseFile(d->graph_path, &builder);
  if (!st.ok()) {
    ADD_FAILURE() << st.ToString();
    return nullptr;
  }
  d->graph = builder.Build();

  core::MpcOptions mpc;
  mpc.base.k = k;
  mpc.base.epsilon = 0.3;
  mpc.base.seed = 3;
  partition::Partitioning fresh = core::MpcPartitioner(mpc).Partition(d->graph);
  d->partition_dir = d->dir + "/parts";
  st = partition::PartitionIo::Save(d->graph, fresh, d->partition_dir);
  if (!st.ok()) {
    ADD_FAILURE() << st.ToString();
    return nullptr;
  }
  // Load (not the fresh object): the coordinator must see exactly the
  // materialization the workers load from disk.
  Result<partition::Partitioning> loaded =
      partition::PartitionIo::Load(d->graph, d->partition_dir);
  if (!loaded.ok()) {
    ADD_FAILURE() << loaded.status().ToString();
    return nullptr;
  }
  d->partitioning = *loaded;

  RemoteCluster::Options options;
  options.worker_binary = binary;
  options.graph_path = d->graph_path;
  options.partition_dir = d->partition_dir;
  options.socket_dir = d->dir;
  options.supervisor.heartbeat_interval_ms = 10;
  options.supervisor.restart_backoff_ms = 20;
  options.supervisor.spawn_wait_ms = 30000;
  options.supervisor.drain_grace_ms = 2000;
  if (tweak) tweak(&options);

  Result<std::unique_ptr<RemoteCluster>> remote =
      RemoteCluster::Start(std::move(*loaded), std::move(options));
  if (!remote.ok()) {
    ADD_FAILURE() << remote.status().ToString();
    return nullptr;
  }
  d->remote = std::move(*remote);
  return d;
}

/// Executor options for real RPC: generous backoff so a retry lands
/// after the supervisor's respawn (backoff sleeps are real here).
ExecutorOptions RemoteExecOptions() {
  ExecutorOptions options;
  options.network.max_retries = 3;
  options.network.retry_backoff_ms = 100.0;
  return options;
}

/// Union-semantics ground truth for a degraded vertex-disjoint cluster
/// (Def 3.7): every live site evaluates the full BGP on its fragment
/// (internal + crossing replicas) and the rows are unioned.
BindingTable DegradedUnionTruth(const partition::Partitioning& partitioning,
                                const RdfGraph& graph,
                                const sparql::QueryGraph& query,
                                const std::vector<uint32_t>& down) {
  store::ResolvedQuery resolved = store::ResolveQuery(query, graph);
  BindingTable merged;
  bool first = true;
  for (uint32_t site = 0; site < partitioning.k(); ++site) {
    if (std::find(down.begin(), down.end(), site) != down.end()) continue;
    const partition::Partition& p = partitioning.partition(site);
    std::vector<rdf::Triple> triples(p.internal_edges.begin(),
                                     p.internal_edges.end());
    triples.insert(triples.end(), p.crossing_edges.begin(),
                   p.crossing_edges.end());
    store::TripleStore store(std::move(triples));
    BindingTable table = store::BgpMatcher::EvaluateAll(store, resolved);
    if (first) {
      merged = std::move(table);
      first = false;
    } else {
      merged.rows.insert(merged.rows.end(), table.rows.begin(),
                         table.rows.end());
    }
  }
  merged.Deduplicate();
  return merged;
}

/// Polls until the supervisor notices worker `site` is dead (its monitor
/// reaps asynchronously).
void AwaitReaped(const RemoteCluster& remote, uint32_t site) {
  for (int i = 0; i < 1000 && remote.supervisor().IsAlive(site); ++i) {
    ::usleep(5000);
  }
  EXPECT_FALSE(remote.supervisor().IsAlive(site));
}

// --- Acceptance: the simulator and the real fleet are bit-identical on
// a fault-free mix. ---

TEST(RemoteClusterTest, FaultFreeMixIsBitIdenticalToSimulator) {
  std::unique_ptr<Deployment> d = MakeDeployment(4);
  if (d == nullptr) GTEST_SKIP() << "worker binary not built";

  Cluster sim = Cluster::Build(d->partitioning);
  const ExecutorOptions options = RemoteExecOptions();
  DistributedExecutor sim_exec(sim, d->graph, options);
  DistributedExecutor remote_exec(*d->remote, d->graph, options);

  for (const char* text : kQueryMix) {
    sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
    Result<QueryResponse> sim_r =
        sim_exec.Execute(QueryRequest::FromQuery(query));
    Result<QueryResponse> remote_r =
        remote_exec.Execute(QueryRequest::FromQuery(query));
    ASSERT_TRUE(sim_r.ok()) << sim_r.status().ToString();
    ASSERT_TRUE(remote_r.ok()) << remote_r.status().ToString() << " " << text;

    // Bit-identical: same columns, same rows, same order — the worker
    // runs the very EvaluateSiteRequest the simulator runs, and the
    // coordinator merges per-site tables in site order on both paths.
    EXPECT_EQ(remote_r->bindings.var_ids, sim_r->bindings.var_ids) << text;
    EXPECT_EQ(remote_r->bindings.rows, sim_r->bindings.rows) << text;
    EXPECT_TRUE(remote_r->stats.complete);
    EXPECT_DOUBLE_EQ(remote_r->stats.completeness_bound, 1.0);
    EXPECT_EQ(remote_r->stats.sites_evaluated, sim_r->stats.sites_evaluated);
    EXPECT_EQ(remote_r->stats.sites_pruned, sim_r->stats.sites_pruned);
    EXPECT_EQ(remote_r->stats.sites_failed, 0u);
    EXPECT_EQ(remote_r->stats.independent, sim_r->stats.independent);

    // And both equal the k=1 ground truth.
    BindingTable truth = testutil::GroundTruth(d->graph, query);
    EXPECT_EQ(testutil::RowSet(remote_r->bindings), testutil::RowSet(truth))
        << text;
  }
}

// --- Acceptance: SIGKILL a site mid-stream; the supervisor respawns it
// and the retried RPC completes the query. ---

TEST(RemoteClusterTest, SigkilledWorkerIsRespawnedAndQueryCompletes) {
  std::unique_ptr<Deployment> d = MakeDeployment(4);
  if (d == nullptr) GTEST_SKIP() << "worker binary not built";

  DistributedExecutor executor(*d->remote, d->graph, RemoteExecOptions());
  sparql::QueryGraph query = testutil::ParseQueryOrDie(kQueryMix[1]);

  // Warm query proves the fleet serves, then the chaos lever.
  Result<QueryResponse> warm =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(d->remote->supervisor().Kill(1).ok());

  // The coordinator still holds a connection to the corpse; the first
  // attempt fails over the torn socket and a backed-off retry reconnects
  // to the respawned process.
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->stats.complete);
  EXPECT_EQ(testutil::RowSet(response->bindings),
            testutil::RowSet(testutil::GroundTruth(d->graph, query)));
  EXPECT_GE(d->remote->supervisor().restarts(1), 1);
  EXPECT_GE(response->stats.retries, 1u);
}

// --- Acceptance: restart budget exhausted -> best-effort answer whose
// completeness bound matches ComputeReplicaCoverage exactly. ---

TEST(RemoteClusterTest, ExhaustedBudgetDegradesToCoverageBoundedBestEffort) {
  std::unique_ptr<Deployment> d = MakeDeployment(
      4, [](RemoteCluster::Options* o) { o->supervisor.max_restarts = 0; });
  if (d == nullptr) GTEST_SKIP() << "worker binary not built";

  ExecutorOptions options = RemoteExecOptions();
  options.network.max_retries = 1;
  options.network.retry_backoff_ms = 1.0;  // gave-up sites fail instantly
  options.partial_results = PartialResultPolicy::kBestEffort;
  DistributedExecutor executor(*d->remote, d->graph, options);

  const uint32_t kDead = 2;
  ASSERT_TRUE(d->remote->supervisor().Kill(kDead).ok());
  AwaitReaped(*d->remote, kDead);

  sparql::QueryGraph query = testutil::ParseQueryOrDie(kQueryMix[1]);
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const ExecutionStats& stats = response->stats;
  EXPECT_FALSE(stats.complete);
  EXPECT_GE(stats.sites_failed, 1u);

  // The reported bound must be exactly the replica-coverage analysis for
  // this availability view — the acceptance criterion of the issue.
  SiteAvailability avail = d->remote->AllUp();
  avail.MarkDown(kDead);
  const ReplicaCoverage coverage = d->remote->ComputeReplicaCoverage(avail);
  const double expected_bound =
      1.0 - static_cast<double>(coverage.lost_triples) /
                static_cast<double>(d->graph.num_edges());
  EXPECT_DOUBLE_EQ(stats.completeness_bound, expected_bound);
  EXPECT_EQ(stats.failed_site_vertices, coverage.failed_owned_vertices);
  EXPECT_EQ(stats.replicated_failed_vertices, coverage.replicated_on_live);

  // IEQ union semantics: the answer is exactly what the live fragments
  // (incl. the dead site's crossing-edge replicas) can produce.
  BindingTable truth =
      DegradedUnionTruth(d->partitioning, d->graph, query, {kDead});
  EXPECT_EQ(testutil::RowSet(response->bindings), testutil::RowSet(truth));
}

// --- A worker that SIGKILLs itself after computing (but before sending)
// a reply: the coordinator sees a torn stream mid-query and fails over
// to the healthy respawn. ---

TEST(RemoteClusterTest, MidReplyCrashIsSurvivedByRespawnedWorker) {
  std::unique_ptr<Deployment> d =
      MakeDeployment(4, [](RemoteCluster::Options* o) {
        o->kill_site = 0;
        o->kill_after_queries = 1;
      });
  if (d == nullptr) GTEST_SKIP() << "worker binary not built";

  DistributedExecutor executor(*d->remote, d->graph, RemoteExecOptions());
  sparql::QueryGraph query = testutil::ParseQueryOrDie(kQueryMix[0]);
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->stats.complete);
  EXPECT_EQ(testutil::RowSet(response->bindings),
            testutil::RowSet(testutil::GroundTruth(d->graph, query)));
  // The crash flag is first-spawn-only, so the respawn served the retry.
  EXPECT_GE(d->remote->supervisor().restarts(0), 1);
  EXPECT_GE(response->stats.retries, 1u);
}

// --- Transport faults injected by the chaos proxy: corruption heals on
// retry; a persistently torn stream is a clean error that heals once the
// fault clears; delays surface as DeadlineExceeded. ---

TEST(RemoteClusterTest, ChaosProxyFaultsAreSurvivedOrCleanlyReported) {
  std::unique_ptr<net::ChaosProxy> proxy;
  std::unique_ptr<Deployment> d =
      MakeDeployment(4, [&proxy](RemoteCluster::Options* o) {
        const std::string listen = o->socket_dir + "/proxy_0.sock";
        const std::string target = o->socket_dir + "/site_0.sock";
        proxy = std::make_unique<net::ChaosProxy>(listen, target,
                                                  net::ChaosOptions{});
        ASSERT_TRUE(proxy->Start().ok());
        o->connect_path_override = {listen, "", "", ""};
        // A corrupted length field can leave the coordinator waiting for
        // bytes that never come; keep that wait short.
        o->default_timeout_ms = 3000;
      });
  if (d == nullptr) GTEST_SKIP() << "worker binary not built";
  ASSERT_NE(proxy, nullptr);

  ExecutorOptions options = RemoteExecOptions();
  options.network.retry_backoff_ms = 20.0;
  DistributedExecutor executor(*d->remote, d->graph, options);
  sparql::QueryGraph query = testutil::ParseQueryOrDie(kQueryMix[0]);

  // 1. Single-byte corruption in the next reply: checksum catches it,
  // the retry reconnects past the (absolute-offset, hence one-shot)
  // fault and succeeds.
  {
    net::ChaosOptions chaos;
    // +25 lands inside the payload of the next reply frame (the header
    // is 20 bytes, eval-reply payloads are >= 28): checksum mismatch,
    // caught as soon as the full frame is read.
    chaos.corrupt_reply_at = proxy->reply_bytes_forwarded() + 25;
    chaos.corrupt_mask = 0x5a;
    proxy->UpdateOptions(chaos);
    Result<QueryResponse> response =
        executor.Execute(QueryRequest::FromQuery(query));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->stats.complete);
    EXPECT_EQ(testutil::RowSet(response->bindings),
              testutil::RowSet(testutil::GroundTruth(d->graph, query)));
    EXPECT_GE(response->stats.retries, 1u);
  }

  // 2. A stream cut that persists across reconnects: every attempt tears
  // mid-frame, and the failure is a clean Unavailable (never a crash,
  // never garbage rows). Clearing the fault heals the site.
  {
    net::ChaosOptions chaos;
    chaos.truncate_reply_after = proxy->reply_bytes_forwarded() + 9;
    proxy->UpdateOptions(chaos);
    Result<QueryResponse> response =
        executor.Execute(QueryRequest::FromQuery(query));
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kUnavailable)
        << response.status().ToString();

    proxy->UpdateOptions(net::ChaosOptions{});
    response = executor.Execute(QueryRequest::FromQuery(query));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(testutil::RowSet(response->bindings),
              testutil::RowSet(testutil::GroundTruth(d->graph, query)));
  }

  // 3. Reply delay past the per-attempt deadline: DeadlineExceeded, the
  // terminal code the executor's retry/failover policy keys on.
  {
    net::ChaosOptions chaos;
    chaos.delay_reply_ms = 500.0;
    proxy->UpdateOptions(chaos);
    ExecutorOptions slow = options;
    slow.network.site_timeout_ms = 50.0;
    slow.network.max_retries = 1;
    DistributedExecutor impatient(*d->remote, d->graph, slow);
    Result<QueryResponse> response =
        impatient.Execute(QueryRequest::FromQuery(query));
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
        << response.status().ToString();
    proxy->UpdateOptions(net::ChaosOptions{});
  }

  d.reset();  // stop the fleet before the proxy goes away
}

// --- Generation-stamped partition push, including re-sync of a worker
// that restarts with a stale on-disk view. ---

TEST(RemoteClusterTest, PushReloadPropagatesAndResyncsRestartedWorkers) {
  std::unique_ptr<Deployment> d = MakeDeployment(4);
  if (d == nullptr) GTEST_SKIP() << "worker binary not built";

  // Repartition with a different seed, save next to the original.
  core::MpcOptions mpc;
  mpc.base.k = 4;
  mpc.base.epsilon = 0.3;
  mpc.base.seed = 11;
  partition::Partitioning fresh =
      core::MpcPartitioner(mpc).Partition(d->graph);
  const std::string dir2 = d->dir + "/parts2";
  ASSERT_TRUE(partition::PartitionIo::Save(d->graph, fresh, dir2).ok());
  Result<partition::Partitioning> loaded =
      partition::PartitionIo::Load(d->graph, dir2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Result<size_t> reloaded = d->remote->PushReload(std::move(*loaded), dir2, 2);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(*reloaded, 4u);
  EXPECT_EQ(d->remote->generation(), 2u);

  DistributedExecutor executor(*d->remote, d->graph, RemoteExecOptions());
  sparql::QueryGraph query = testutil::ParseQueryOrDie(kQueryMix[2]);
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(testutil::RowSet(response->bindings),
            testutil::RowSet(testutil::GroundTruth(d->graph, query)));

  // Kill a worker: its respawn execs with the ORIGINAL argv (generation
  // 1, old partition dir), announces the stale generation in its Hello,
  // and the coordinator replays the reload before the retry is served.
  ASSERT_TRUE(d->remote->supervisor().Kill(1).ok());
  response = executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->stats.complete);
  EXPECT_EQ(testutil::RowSet(response->bindings),
            testutil::RowSet(testutil::GroundTruth(d->graph, query)));
  EXPECT_GE(d->remote->supervisor().restarts(1), 1);
}

// --- Acceptance: a traced query against the real fleet assembles ONE
// merged trace — coordinator and site-worker spans under a single trace
// id, with the workers' real pids and no orphan parent edges. ---

TEST(RemoteClusterTest, TracedQueryAssemblesOneMergedTraceAcrossProcesses) {
  std::unique_ptr<Deployment> d = MakeDeployment(4);
  if (d == nullptr) GTEST_SKIP() << "worker binary not built";

  obs::StartTracing();
  DistributedExecutor executor(*d->remote, d->graph, RemoteExecOptions());
  // The join query: decompose + per-site RPCs, so site.eval spans exist.
  sparql::QueryGraph query = testutil::ParseQueryOrDie(kQueryMix[2]);
  Result<QueryResponse> response =
      executor.Execute(QueryRequest::FromQuery(query));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const uint64_t trace_id = response->stats.trace_id;
  ASSERT_NE(trace_id, 0u);

  const std::vector<obs::TraceEvent> events = obs::ExtractTraceForId(trace_id);
  obs::StopTracing();
  ASSERT_FALSE(events.empty());

  std::set<std::string> names;
  std::set<uint32_t> pids;
  std::set<uint64_t> span_ids;
  for (const obs::TraceEvent& e : events) {
    EXPECT_EQ(e.trace_id, trace_id) << e.name;
    names.insert(e.name);
    pids.insert(e.pid);
    span_ids.insert(e.span_id);
  }
  // Coordinator-side call span and worker-side evaluation span both
  // landed in the same trace.
  EXPECT_EQ(names.count("exec.rpc.attempt"), 1u);
  EXPECT_EQ(names.count("site.eval"), 1u);
  // pid 0 is this process; every worker stamped its real pid.
  EXPECT_GE(pids.size(), 2u) << "no remote spans were ingested";
  EXPECT_EQ(pids.count(0), 1u);
  for (const obs::TraceEvent& e : events) {
    if (e.parent_id == 0) continue;
    EXPECT_EQ(span_ids.count(e.parent_id), 1u)
        << "orphan parent edge under " << e.name;
  }
  // Remote spans parent into coordinator spans: each site.eval hangs off
  // a span recorded by pid 0.
  std::map<uint64_t, uint32_t> pid_of;
  for (const obs::TraceEvent& e : events) pid_of[e.span_id] = e.pid;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "site.eval") {
      ASSERT_NE(e.parent_id, 0u);
      EXPECT_EQ(pid_of.at(e.parent_id), 0u);
    }
  }

  // The exported Chrome JSON passes the same invariants trace_check
  // enforces in merged mode.
  Result<obs::JsonValue> parsed =
      obs::ParseJson(obs::TraceEventsToChromeJson(events));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* exported = parsed->Find("traceEvents");
  ASSERT_NE(exported, nullptr);
  EXPECT_EQ(exported->array.size(), events.size());
}

}  // namespace
}  // namespace mpc::exec

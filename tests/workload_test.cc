#include "workload/datasets.h"

#include "exec/query_classifier.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "sparql/parser.h"
#include "sparql/shape.h"
#include "test_util.h"
#include "workload/lubm.h"

namespace mpc::workload {
namespace {

TEST(LubmTest, HasEighteenPropertiesAndFourteenQueries) {
  LubmOptions options;
  options.num_universities = 5;
  GeneratedDataset d = MakeLubm(options);
  EXPECT_EQ(d.graph.num_properties(), 18u);
  EXPECT_EQ(d.benchmark_queries.size(), 14u);
  EXPECT_GT(d.graph.num_edges(), 1000u);
}

TEST(LubmTest, TenOfFourteenQueriesAreStars) {
  LubmOptions options;
  options.num_universities = 3;
  GeneratedDataset d = MakeLubm(options);
  size_t stars = 0;
  for (const NamedQuery& q : d.benchmark_queries) {
    sparql::QueryGraph parsed = testutil::ParseQueryOrDie(q.sparql);
    EXPECT_EQ(sparql::IsStarQuery(parsed), q.is_star)
        << q.name << " star flag disagrees with its shape";
    stars += q.is_star;
  }
  EXPECT_EQ(stars, 10u);  // Table III: 71.43% of LUBM queries are stars
}

TEST(LubmTest, DeterministicForSeed) {
  LubmOptions options;
  options.num_universities = 3;
  GeneratedDataset a = MakeLubm(options);
  GeneratedDataset b = MakeLubm(options);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
}

TEST(LubmTest, ScalesWithUniversities) {
  LubmOptions small, large;
  small.num_universities = 3;
  large.num_universities = 12;
  EXPECT_GT(MakeLubm(large).graph.num_edges(),
            2 * MakeLubm(small).graph.num_edges());
}

TEST(LubmTest, MpcFindsFiveCrossingProperties) {
  // The headline Table II number for LUBM.
  LubmOptions options;
  options.num_universities = 40;
  GeneratedDataset d = MakeLubm(options);
  core::MpcOptions mpc_options;
  mpc_options.base.k = 8;
  mpc_options.base.epsilon = 0.1;
  partition::Partitioning p =
      core::MpcPartitioner(mpc_options).Partition(d.graph);
  EXPECT_EQ(p.num_crossing_properties(), 5u);
}

struct DatasetCase {
  DatasetId id;
  // Inclusive bounds on the realized property count at scale 0.2 (rare
  // long-tail vocabulary entries are only realized at larger scales, so
  // DBpedia/LGD bands are wide; the Table I bench runs at full scale).
  size_t min_properties;
  size_t max_properties;
};

class DatasetShapeTest : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(DatasetShapeTest, PropertyCountMatchesTableI) {
  const auto [id, min_props, max_props] = GetParam();
  GeneratedDataset d = MakeDataset(id, /*scale=*/0.2, /*seed=*/3);
  EXPECT_GE(d.graph.num_properties(), min_props);
  EXPECT_LE(d.graph.num_properties(), max_props);
  EXPECT_GT(d.graph.num_edges(), 0u);
  EXPECT_EQ(d.name, DatasetName(id));
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, DatasetShapeTest,
    ::testing::Values(DatasetCase{DatasetId::kLubm, 18, 18},
                      DatasetCase{DatasetId::kWatdiv, 86, 86},
                      DatasetCase{DatasetId::kYago2, 98, 98},
                      DatasetCase{DatasetId::kBio2rdf, 1500, 1581},
                      DatasetCase{DatasetId::kDbpedia, 2000, 12064},
                      DatasetCase{DatasetId::kLgd, 1500, 4006}));

TEST(BenchmarkQueriesTest, AllParseAndShapesMatch) {
  for (DatasetId id :
       {DatasetId::kLubm, DatasetId::kYago2, DatasetId::kBio2rdf}) {
    GeneratedDataset d = MakeDataset(id, 0.1, 5);
    EXPECT_FALSE(d.benchmark_queries.empty()) << DatasetName(id);
    for (const NamedQuery& q : d.benchmark_queries) {
      sparql::QueryGraph parsed = testutil::ParseQueryOrDie(q.sparql);
      EXPECT_EQ(sparql::IsStarQuery(parsed), q.is_star)
          << DatasetName(id) << "/" << q.name;
      EXPECT_TRUE(sparql::IsWeaklyConnected(parsed))
          << DatasetName(id) << "/" << q.name;
    }
  }
}

TEST(BenchmarkQueriesTest, Yago2AllNonStar) {
  GeneratedDataset d = MakeDataset(DatasetId::kYago2, 0.1, 5);
  ASSERT_EQ(d.benchmark_queries.size(), 4u);
  for (const NamedQuery& q : d.benchmark_queries) {
    EXPECT_FALSE(q.is_star) << q.name;
  }
}

TEST(BenchmarkQueriesTest, BenchmarkQueriesHaveWitnesses) {
  // Non-selective benchmark queries should return results on the real
  // generated data (LQ1/LQ3-style needle queries may legitimately be
  // empty at tiny scales, so check a known-dense subset).
  GeneratedDataset lubm = MakeDataset(DatasetId::kLubm, 0.3, 5);
  for (const char* name : {"LQ2", "LQ6", "LQ8", "LQ9", "LQ14"}) {
    const NamedQuery* nq = nullptr;
    for (const NamedQuery& q : lubm.benchmark_queries) {
      if (q.name == name) nq = &q;
    }
    ASSERT_NE(nq, nullptr);
    sparql::QueryGraph parsed = testutil::ParseQueryOrDie(nq->sparql);
    EXPECT_GT(testutil::GroundTruth(lubm.graph, parsed).num_rows(), 0u)
        << name << " has no matches";
  }

  GeneratedDataset yago = MakeDataset(DatasetId::kYago2, 0.3, 5);
  for (const NamedQuery& q : yago.benchmark_queries) {
    sparql::QueryGraph parsed = testutil::ParseQueryOrDie(q.sparql);
    EXPECT_GT(testutil::GroundTruth(yago.graph, parsed).num_rows(), 0u)
        << q.name << " has no matches";
  }

  GeneratedDataset bio = MakeDataset(DatasetId::kBio2rdf, 0.3, 5);
  for (const NamedQuery& q : bio.benchmark_queries) {
    sparql::QueryGraph parsed = testutil::ParseQueryOrDie(q.sparql);
    EXPECT_GT(testutil::GroundTruth(bio.graph, parsed).num_rows(), 0u)
        << q.name << " has no matches";
  }
}

TEST(QueryLogTest, GeneratesRequestedCountAndAllParse) {
  GeneratedDataset d = MakeDataset(DatasetId::kWatdiv, 0.1, 5);
  std::vector<NamedQuery> log = MakeQueryLog(DatasetId::kWatdiv, d.graph,
                                             200, /*seed=*/11);
  EXPECT_EQ(log.size(), 200u);
  size_t stars = 0;
  for (const NamedQuery& q : log) {
    sparql::QueryGraph parsed = testutil::ParseQueryOrDie(q.sparql);
    EXPECT_GE(parsed.num_patterns(), 1u);
    stars += q.is_star;
  }
  // Profile: ~50% stars (42% stars + 8% single-pattern), generous band.
  EXPECT_GT(stars, 60u);
  EXPECT_LT(stars, 140u);
}

TEST(QueryLogTest, WalkQueriesHaveWitnesses) {
  GeneratedDataset d = MakeDataset(DatasetId::kLgd, 0.1, 5);
  std::vector<NamedQuery> log =
      MakeQueryLog(DatasetId::kLgd, d.graph, 30, /*seed=*/13);
  size_t nonempty = 0;
  for (const NamedQuery& q : log) {
    sparql::QueryGraph parsed = testutil::ParseQueryOrDie(q.sparql);
    if (testutil::GroundTruth(d.graph, parsed).num_rows() > 0) ++nonempty;
  }
  // Sampled from the data, so the vast majority must be non-empty.
  EXPECT_GE(nonempty, 28u);
}

TEST(QueryLogTest, DeterministicForSeed) {
  GeneratedDataset d = MakeDataset(DatasetId::kWatdiv, 0.05, 5);
  auto a = MakeQueryLog(DatasetId::kWatdiv, d.graph, 50, 17);
  auto b = MakeQueryLog(DatasetId::kWatdiv, d.graph, 50, 17);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sparql, b[i].sparql);
  }
}

TEST(DatasetRegistryTest, NamesAndEnumeration) {
  EXPECT_EQ(AllDatasets().size(), 6u);
  EXPECT_STREQ(DatasetName(DatasetId::kDbpedia), "DBpedia");
}

}  // namespace
}  // namespace mpc::workload

// Acceptance test for dynamic maintenance: a seeded random insert/delete
// stream is applied through IncrementalMaintainer and, independently, to
// a plain triple-set oracle. At checkpoints the maintained partitioning
// must answer every query exactly like a from-scratch partitioning of the
// oracle graph, |L_cross| must respect the policy bound whenever the
// policy did not fire, and all maintained state must be bit-identical at
// 1, 2 and 8 threads.

#include <array>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "dynamic/incremental_maintainer.h"
#include "dynamic/update_journal.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "test_util.h"

namespace mpc::dynamic {
namespace {

using rdf::RdfGraph;
using store::BindingTable;

using LexTriple = std::array<std::string, 3>;

std::vector<std::string> Queries() {
  return {
      "SELECT * WHERE { ?x <t:p0> ?y . }",
      "SELECT * WHERE { ?x <t:p0> ?y . ?x <t:p1> ?z . }",
      "SELECT * WHERE { ?a <t:p2> ?x . ?x <t:p3> ?b . }",
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?c <t:p2> ?d . }",
      // Triangle; all bindings are vertices (variable predicates are
      // excluded here because ?p binds a property id, which cannot be
      // compared lexically across two different dictionaries).
      "SELECT * WHERE { ?a <t:p0> ?b . ?b <t:p1> ?c . ?a <t:p2> ?c . }",
  };
}

std::set<std::vector<std::string>> LexRows(const BindingTable& table,
                                           const RdfGraph& graph) {
  std::set<std::vector<std::string>> rows;
  for (const auto& row : table.rows) {
    std::vector<std::string> lex;
    lex.reserve(row.size());
    for (uint32_t id : row) lex.emplace_back(graph.VertexName(id));
    rows.insert(std::move(lex));
  }
  return rows;
}

/// Deterministic mixed update stream: edge inserts between existing
/// vertices, inserts attaching brand-new vertices (sometimes via
/// brand-new properties), and deletes of seed triples.
std::vector<UpdateBatch> MakeStream(Rng& rng, const RdfGraph& seed,
                                    size_t num_batches,
                                    size_t updates_per_batch) {
  std::vector<UpdateBatch> batches;
  size_t fresh = 0;
  for (size_t b = 0; b < num_batches; ++b) {
    UpdateBatch batch;
    for (size_t i = 0; i < updates_per_batch; ++i) {
      TripleUpdate u;
      const uint64_t roll = rng.Below(10);
      if (roll < 4) {  // insert between existing vertices
        u.kind = UpdateKind::kInsert;
        u.subject = "<t:v" + std::to_string(rng.Below(60)) + ">";
        u.property = "<t:p" + std::to_string(rng.Below(5)) + ">";
        u.object = "<t:v" + std::to_string(rng.Below(60)) + ">";
      } else if (roll < 6) {  // attach a brand-new vertex
        u.kind = UpdateKind::kInsert;
        u.subject = "<t:new" + std::to_string(fresh++) + ">";
        u.property = rng.Chance(0.2)
                         ? "<t:extra" + std::to_string(rng.Below(3)) + ">"
                         : "<t:p" + std::to_string(rng.Below(5)) + ">";
        u.object = "<t:v" + std::to_string(rng.Below(60)) + ">";
      } else {  // delete a seed triple (may already be gone: noop)
        const rdf::Triple& t =
            seed.triples()[rng.Below(seed.num_edges())];
        u.kind = UpdateKind::kDelete;
        u.subject = seed.VertexName(t.subject);
        u.property = seed.PropertyName(t.property);
        u.object = seed.VertexName(t.object);
      }
      batch.updates.push_back(std::move(u));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void ApplyToOracle(const UpdateBatch& batch, std::set<LexTriple>* oracle) {
  for (const TripleUpdate& u : batch.updates) {
    LexTriple t{u.subject, u.property, u.object};
    if (u.kind == UpdateKind::kInsert) {
      oracle->insert(t);
    } else {
      oracle->erase(t);
    }
  }
}

RdfGraph OracleGraph(const std::set<LexTriple>& oracle) {
  rdf::GraphBuilder builder;
  for (const LexTriple& t : oracle) builder.Add(t[0], t[1], t[2]);
  return builder.Build();
}

void ExpectSameDrift(const DriftMetrics& a, const DriftMetrics& b,
                     const std::string& context) {
  EXPECT_EQ(a.live_triples, b.live_triples) << context;
  EXPECT_EQ(a.seed_crossing_properties, b.seed_crossing_properties)
      << context;
  EXPECT_EQ(a.crossing_properties, b.crossing_properties) << context;
  EXPECT_EQ(a.crossing_edges, b.crossing_edges) << context;
  EXPECT_EQ(a.lcross_growth, b.lcross_growth) << context;
  EXPECT_EQ(a.balance_ratio, b.balance_ratio) << context;
  EXPECT_EQ(a.tombstone_ratio, b.tombstone_ratio) << context;
  EXPECT_EQ(a.replication_ratio, b.replication_ratio) << context;
  EXPECT_EQ(a.max_internal_component, b.max_internal_component) << context;
  EXPECT_EQ(a.repartitions, b.repartitions) << context;
}

TEST(DynamicEquivalenceTest, MaintainedMatchesFromScratchUnderStream) {
  Rng rng(1234);
  RdfGraph seed = testutil::RandomGraph(rng, 60, 220, 5, /*community=*/12,
                                        /*escape=*/0.15);
  core::MpcOptions mpc;
  mpc.base.k = 4;
  mpc.base.epsilon = 0.3;
  partition::Partitioning seed_partitioning =
      core::MpcPartitioner(mpc).Partition(seed);

  // The oracle starts as the seed's triples.
  std::set<LexTriple> oracle;
  for (const rdf::Triple& t : seed.triples()) {
    oracle.insert(LexTriple{seed.VertexName(t.subject),
                            seed.PropertyName(t.property),
                            seed.VertexName(t.object)});
  }

  MaintainerOptions options;
  options.mpc = mpc;
  options.policy.kind = RepartitionPolicy::Kind::kThreshold;
  const std::vector<int> thread_counts = {1, 2, 8};
  std::vector<std::unique_ptr<IncrementalMaintainer>> maintainers;
  for (int threads : thread_counts) {
    MaintainerOptions per = options;
    per.num_threads = threads;
    maintainers.push_back(std::make_unique<IncrementalMaintainer>(
        seed.Clone(), seed_partitioning, per));
  }

  std::vector<UpdateBatch> stream = MakeStream(rng, seed, 12, 12);
  for (size_t b = 0; b < stream.size(); ++b) {
    ApplyToOracle(stream[b], &oracle);
    std::vector<ApplyResult> results;
    for (auto& m : maintainers) {
      results.push_back(m->ApplyBatch(stream[b]));
    }
    const std::string context = "batch " + std::to_string(b);

    // Thread-count invariance: every maintained stat is identical.
    for (size_t i = 1; i < results.size(); ++i) {
      ExpectSameDrift(results[0].drift, results[i].drift, context);
      EXPECT_EQ(results[0].repartition_triggered,
                results[i].repartition_triggered)
          << context;
      EXPECT_EQ(maintainers[0]->partitioning().assignment().part,
                maintainers[i]->partitioning().assignment().part)
          << context;
      EXPECT_EQ(maintainers[0]->partitioning().crossing_property_mask(),
                maintainers[i]->partitioning().crossing_property_mask())
          << context;
    }

    // Live set matches the oracle exactly.
    EXPECT_EQ(maintainers[0]->num_live_triples(), oracle.size()) << context;

    // |L_cross| respects the policy bound unless this very batch fired.
    const ApplyResult& r = results[0];
    if (!r.repartition_triggered) {
      EXPECT_LE(r.drift.crossing_properties,
                options.policy.LcrossBound(r.drift.seed_crossing_properties))
          << context;
    }
  }

  // Final equivalence: maintained results == from-scratch results on the
  // oracle graph, compared lexically (dense ids differ between the two).
  RdfGraph scratch = OracleGraph(oracle);
  ASSERT_EQ(maintainers[0]->num_live_triples(), scratch.num_edges());
  for (const std::string& text : Queries()) {
    sparql::QueryGraph query = testutil::ParseQueryOrDie(text);
    BindingTable truth = testutil::GroundTruth(scratch, query);
    std::set<std::vector<std::string>> expected = LexRows(truth, scratch);
    for (size_t i = 0; i < maintainers.size(); ++i) {
      Result<exec::QueryResponse> got =
          maintainers[i]->Execute(exec::QueryRequest::FromText(text));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(LexRows(got->bindings, maintainers[i]->graph()), expected)
          << "query: " << text << " threads: " << thread_counts[i];
    }
  }

  // And the maintained live set is lexically identical to the oracle.
  std::set<LexTriple> maintained;
  const RdfGraph& g = maintainers[0]->graph();
  for (const rdf::Triple& t : maintainers[0]->LiveTriples()) {
    maintained.insert(LexTriple{g.VertexName(t.subject),
                                g.PropertyName(t.property),
                                g.VertexName(t.object)});
  }
  EXPECT_EQ(maintained, oracle);
}

TEST(DynamicEquivalenceTest, DeleteHeavyStreamStaysCorrect) {
  // Deleting most of the graph exercises tombstone accumulation and the
  // tombstone-ratio trigger; queries must stay exact throughout.
  Rng rng(77);
  RdfGraph seed = testutil::RandomGraph(rng, 30, 100, 4, 10);
  core::MpcOptions mpc;
  mpc.base.k = 3;
  mpc.base.epsilon = 0.3;
  MaintainerOptions options;
  options.mpc = mpc;
  options.policy.kind = RepartitionPolicy::Kind::kThreshold;
  options.policy.max_tombstone_ratio = 0.3;
  IncrementalMaintainer m(seed.Clone(),
                          core::MpcPartitioner(mpc).Partition(seed),
                          options);

  std::set<LexTriple> oracle;
  for (const rdf::Triple& t : seed.triples()) {
    oracle.insert(LexTriple{seed.VertexName(t.subject),
                            seed.PropertyName(t.property),
                            seed.VertexName(t.object)});
  }

  // Delete the seed triples in deterministic slices of 15.
  std::vector<LexTriple> all(oracle.begin(), oracle.end());
  size_t repartitions_seen = 0;
  for (size_t start = 0; start < all.size(); start += 15) {
    UpdateBatch batch;
    for (size_t i = start; i < std::min(start + 15, all.size()); ++i) {
      batch.updates.push_back(TripleUpdate{UpdateKind::kDelete, all[i][0],
                                           all[i][1], all[i][2]});
    }
    ApplyToOracle(batch, &oracle);
    ApplyResult r = m.ApplyBatch(batch);
    repartitions_seen += r.repartitioned ? 1 : 0;
    EXPECT_EQ(m.num_live_triples(), oracle.size());

    RdfGraph scratch = OracleGraph(oracle);
    sparql::QueryGraph query =
        testutil::ParseQueryOrDie("SELECT * WHERE { ?x <t:p0> ?y . }");
    BindingTable truth = testutil::GroundTruth(scratch, query);
    Result<exec::QueryResponse> got = m.Execute(
        exec::QueryRequest::FromText("SELECT * WHERE { ?x <t:p0> ?y . }"));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(LexRows(got->bindings, m.graph()), LexRows(truth, scratch));
  }
  EXPECT_EQ(m.num_live_triples(), 0u);
  // The tombstone trigger must have fired at least once while draining.
  EXPECT_GE(m.repartition_count(), 1u);
  EXPECT_GE(repartitions_seen, 1u);
}

// ---------------------------------------------------------- Crash recovery

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// How the simulated crash leaves the journal directory.
enum class CrashKind {
  kNoJournal,       // crash before anything durable was written
  kTornWrite,       // crash mid-append: the last frame is torn
  kJournalComplete, // frames intact, but no checkpoint survives
  kCheckpointTail,  // a mid-stream checkpoint plus a journal tail
};

const char* CrashName(CrashKind kind) {
  switch (kind) {
    case CrashKind::kNoJournal: return "no-journal";
    case CrashKind::kTornWrite: return "torn-write";
    case CrashKind::kJournalComplete: return "journal-complete";
    case CrashKind::kCheckpointTail: return "checkpoint-tail";
  }
  return "?";
}

/// Kill-and-recover: a durable maintainer applies a prefix of the
/// stream, "crashes" (the process state is dropped; only the journal
/// directory survives, mutilated per CrashKind), is recovered via
/// OpenDurable, finishes the stream, and must be state-identical to an
/// uninterrupted run — at every thread count. Sync repartition mode:
/// recovery replays repartitions synchronously, so only the sync stream
/// is bit-reproducible (background timing is inherently racy).
TEST(DynamicRecoveryTest, RecoveredStateMatchesUninterruptedRun) {
  Rng rng(4242);
  RdfGraph seed = testutil::RandomGraph(rng, 60, 220, 5, /*community=*/12,
                                        /*escape=*/0.15);
  core::MpcOptions mpc;
  mpc.base.k = 4;
  mpc.base.epsilon = 0.3;
  partition::Partitioning seed_partitioning =
      core::MpcPartitioner(mpc).Partition(seed);
  std::vector<UpdateBatch> stream = MakeStream(rng, seed, 10, 12);
  const size_t crash_at = 6;  // batches applied before the crash
  const uint64_t fp = 0x5eedf00d;

  for (int threads : {1, 2, 8}) {
    MaintainerOptions options;
    options.mpc = mpc;
    // Tight thresholds so the stream drives repartitions — the matrix
    // must also prove that recovery re-runs them identically.
    options.policy.kind = RepartitionPolicy::Kind::kThreshold;
    options.policy.max_lcross_growth = 0.2;
    options.policy.min_lcross_slack = 2;
    options.policy.max_tombstone_ratio = 0.1;
    options.num_threads = threads;

    // Reference: an uninterrupted (non-durable) run of the full stream.
    IncrementalMaintainer reference(seed.Clone(), seed_partitioning,
                                    options);
    for (const UpdateBatch& b : stream) reference.ApplyBatch(b);
    const MaintainerState want = reference.ExportState();
    // The stream must drive at least one repartition, or the matrix
    // would never prove that recovery replays repartitions correctly.
    ASSERT_GE(reference.repartition_count(), 1u);

    for (CrashKind kind :
         {CrashKind::kNoJournal, CrashKind::kTornWrite,
          CrashKind::kJournalComplete, CrashKind::kCheckpointTail}) {
      const std::string context = std::string(CrashName(kind)) +
                                  " threads=" + std::to_string(threads);
      const std::string dir = TempDir(
          "mpc_recover_" + std::string(CrashName(kind)) + "_" +
          std::to_string(threads));
      MaintainerOptions durable = options;
      durable.journal_dir = dir;
      durable.checkpoint_every_batches =
          kind == CrashKind::kCheckpointTail ? 4 : 0;

      // Phase 1: run until the crash point (skipped for kNoJournal —
      // that crash happened before the first durable byte).
      size_t durable_batches = 0;
      if (kind != CrashKind::kNoJournal) {
        Result<std::unique_ptr<IncrementalMaintainer>> first =
            IncrementalMaintainer::OpenDurable(
                seed.Clone(), seed_partitioning, durable, fp);
        ASSERT_TRUE(first.ok()) << context << ": "
                                << first.status().ToString();
        for (size_t b = 0; b < crash_at; ++b) {
          ApplyResult r = (*first)->ApplyBatch(stream[b]);
          ASSERT_TRUE(r.durability.ok()) << context;
        }
        durable_batches = crash_at;
      }

      // The crash: drop the maintainer, then mutilate the directory.
      switch (kind) {
        case CrashKind::kNoJournal:
        case CrashKind::kCheckpointTail:
          break;
        case CrashKind::kTornWrite: {
          // Tear the final frame; batch crash_at is no longer durable.
          const std::string path = UpdateJournal::JournalPath(dir);
          std::filesystem::resize_file(
              path, std::filesystem::file_size(path) - 9);
          durable_batches = crash_at - 1;
          [[fallthrough]];
        }
        case CrashKind::kJournalComplete:
          // No checkpoint survives: recovery must replay the whole
          // journal from the seed (repartitions re-run synchronously).
          for (const auto& entry :
               std::filesystem::directory_iterator(dir)) {
            if (entry.path().extension() == ".ckpt") {
              std::filesystem::remove(entry.path());
            }
          }
          break;
      }

      // Phase 2: recover and finish the stream.
      Result<std::unique_ptr<IncrementalMaintainer>> recovered =
          IncrementalMaintainer::OpenDurable(
              seed.Clone(), seed_partitioning, durable, fp);
      ASSERT_TRUE(recovered.ok()) << context << ": "
                                  << recovered.status().ToString();
      EXPECT_EQ((*recovered)->batches_applied(), durable_batches)
          << context;
      for (size_t b = (*recovered)->batches_applied(); b < stream.size();
           ++b) {
        ApplyResult r = (*recovered)->ApplyBatch(stream[b]);
        ASSERT_TRUE(r.durability.ok()) << context;
      }

      const MaintainerState got = (*recovered)->ExportState();
      EXPECT_TRUE(got == want) << context;
      // On mismatch, pin down which piece diverged.
      if (!(got == want)) {
        EXPECT_EQ(got.seq, want.seq) << context;
        EXPECT_EQ(got.vertex_terms, want.vertex_terms) << context;
        EXPECT_EQ(got.property_terms, want.property_terms) << context;
        EXPECT_EQ(got.snapshot_triples, want.snapshot_triples) << context;
        EXPECT_EQ(got.assignment, want.assignment) << context;
        EXPECT_EQ(got.crossing_count, want.crossing_count) << context;
        EXPECT_EQ(got.num_crossing_edges, want.num_crossing_edges)
            << context;
        EXPECT_EQ(got.added, want.added) << context;
        EXPECT_EQ(got.deleted, want.deleted) << context;
        EXPECT_TRUE(got.forest == want.forest) << context;
        EXPECT_TRUE(got.tracker == want.tracker) << context;
        EXPECT_EQ(got.forest_stale_deletes, want.forest_stale_deletes)
            << context;
      }
    }
  }
}

/// Re-opening a finished durable run replays to exactly the final state
/// without re-running a single batch from the caller's side.
TEST(DynamicRecoveryTest, ReopenAfterCleanFinishIsIdempotent) {
  Rng rng(99);
  RdfGraph seed = testutil::RandomGraph(rng, 40, 140, 4, 10);
  core::MpcOptions mpc;
  mpc.base.k = 3;
  mpc.base.epsilon = 0.3;
  partition::Partitioning seed_partitioning =
      core::MpcPartitioner(mpc).Partition(seed);
  std::vector<UpdateBatch> stream = MakeStream(rng, seed, 6, 8);

  MaintainerOptions options;
  options.mpc = mpc;
  options.policy.kind = RepartitionPolicy::Kind::kThreshold;
  options.journal_dir = TempDir("mpc_recover_idem");
  const uint64_t fp = 17;

  MaintainerState finished;
  {
    Result<std::unique_ptr<IncrementalMaintainer>> m =
        IncrementalMaintainer::OpenDurable(seed.Clone(), seed_partitioning,
                                           options, fp);
    ASSERT_TRUE(m.ok());
    for (const UpdateBatch& b : stream) (*m)->ApplyBatch(b);
    ASSERT_TRUE((*m)->WriteCheckpoint().ok());
    finished = (*m)->ExportState();
  }
  Result<std::unique_ptr<IncrementalMaintainer>> again =
      IncrementalMaintainer::OpenDurable(seed.Clone(), seed_partitioning,
                                         options, fp);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->batches_applied(), stream.size());
  EXPECT_TRUE((*again)->ExportState() == finished);

  // The wrong fingerprint is refused outright.
  EXPECT_FALSE(IncrementalMaintainer::OpenDurable(
                   seed.Clone(), seed_partitioning, options, fp + 1)
                   .ok());
}

}  // namespace
}  // namespace mpc::dynamic

// Pins the Table II headline |L_cross| values of the repro datasets at
// bench scale factors, so the reproduction cannot silently drift. These
// are the measured values recorded in EXPERIMENTS.md; the LUBM and
// WatDiv values match the paper exactly (5 and 17).

#include "gtest/gtest.h"
#include "mpc/mpc_partitioner.h"
#include "workload/datasets.h"

namespace mpc {
namespace {

struct PinCase {
  workload::DatasetId id;
  double scale;
  size_t min_crossing;
  size_t max_crossing;
};

class Table2PinningTest : public ::testing::TestWithParam<PinCase> {};

TEST_P(Table2PinningTest, MpcCrossingPropertiesInBand) {
  const auto [id, scale, lo, hi] = GetParam();
  workload::GeneratedDataset d = workload::MakeDataset(id, scale, 1);
  core::MpcOptions options;
  options.base.k = 8;
  options.base.epsilon = 0.1;
  partition::Partitioning p =
      core::MpcPartitioner(options).Partition(d.graph);
  EXPECT_GE(p.num_crossing_properties(), lo) << workload::DatasetName(id);
  EXPECT_LE(p.num_crossing_properties(), hi) << workload::DatasetName(id);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, Table2PinningTest,
    ::testing::Values(
        // Paper: LUBM 5 — matched exactly at bench scale.
        PinCase{workload::DatasetId::kLubm, 1.0, 5, 5},
        // Paper: WatDiv 17 — matched exactly (type + 15 global + country).
        PinCase{workload::DatasetId::kWatdiv, 1.0, 17, 17},
        // Paper: YAGO2 5; ours lands at 4-5 of the 5 global connectors.
        PinCase{workload::DatasetId::kYago2, 1.0, 3, 6},
        // Paper: Bio2RDF 36; at repro scale the xref properties are
        // sparse enough that almost all stay internal.
        PinCase{workload::DatasetId::kBio2rdf, 1.0, 0, 40},
        // Paper: LGD 6; ours 2-6 of the 6 global connectors.
        PinCase{workload::DatasetId::kLgd, 0.5, 1, 8}));

}  // namespace
}  // namespace mpc

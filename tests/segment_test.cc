// Tests for the compressed out-of-core segment subsystem: codec
// boundaries, writer/store round trips, bit-identity with the in-memory
// TripleStore (the contract the executor relies on), zone-map pruning,
// corruption handling, and the delta-overlay dynamic path.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/function_ref.h"
#include "common/random.h"
#include "dynamic/incremental_maintainer.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "partition/partition_io.h"
#include "partition/subject_hash_partitioner.h"
#include "serve/serving_state.h"
#include "storage/delta_overlay.h"
#include "storage/segment_format.h"
#include "storage/segment_store.h"
#include "storage/segment_writer.h"
#include "storage/varint.h"
#include "store/triple_store.h"
#include "test_util.h"
#include "workload/lubm.h"

namespace mpc::storage {
namespace {

using rdf::kInvalidProperty;
using rdf::kInvalidVertex;
using rdf::Triple;

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Collects a scan into a vector; optionally stops after `limit` rows.
std::vector<Triple> Collect(const store::TripleSource& source, rdf::VertexId s,
                            rdf::PropertyId p, rdf::VertexId o,
                            size_t limit = SIZE_MAX, bool* completed = nullptr) {
  std::vector<Triple> out;
  const bool done = source.Scan(s, p, o, [&](const Triple& t) {
    out.push_back(t);
    return out.size() < limit;
  });
  if (completed != nullptr) *completed = done;
  return out;
}

// ---------------------------------------------------------------------------
// Varint codec boundaries.

TEST(VarintTest, BoundaryRoundTrips) {
  const uint32_t values[] = {0,          1,          127,        128,
                             129,        16383,      16384,      (1u << 21) - 1,
                             1u << 21,   (1u << 28) - 1, 1u << 28, UINT32_MAX - 1,
                             UINT32_MAX};
  std::string buf;
  for (uint32_t v : values) {
    AppendVarint32(v, &buf);
  }
  size_t pos = 0;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(buf.data());
  for (uint32_t v : values) {
    uint32_t decoded = 0;
    ASSERT_TRUE(DecodeVarint32(data, buf.size(), &pos, &decoded));
    EXPECT_EQ(decoded, v);
    // Size function agrees with the encoder.
    std::string one;
    AppendVarint32(v, &one);
    EXPECT_EQ(one.size(), Varint32Size(v));
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncationAndOverflowAreCleanFailures) {
  std::string buf;
  AppendVarint32(UINT32_MAX, &buf);  // 5 bytes
  const uint8_t* data = reinterpret_cast<const uint8_t*>(buf.data());
  for (size_t len = 0; len < buf.size(); ++len) {
    size_t pos = 0;
    uint32_t v = 0;
    EXPECT_FALSE(DecodeVarint32(data, len, &pos, &v)) << len;
  }
  // 5th byte carrying bits beyond 32.
  const uint8_t overflow[] = {0xff, 0xff, 0xff, 0xff, 0x7f};
  size_t pos = 0;
  uint32_t v = 0;
  EXPECT_FALSE(DecodeVarint32(overflow, sizeof(overflow), &pos, &v));
  // Five continuation bytes: malformed no matter what follows.
  const uint8_t runaway[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  pos = 0;
  EXPECT_FALSE(DecodeVarint32(runaway, sizeof(runaway), &pos, &v));
}

TEST(VarintTest, MaxIdTripleDeltaRoundTrips) {
  // A block whose triples sit at the extreme of the id space must code
  // and decode exactly.
  const Triple big{UINT32_MAX, UINT32_MAX, UINT32_MAX};
  const Triple prev_t{UINT32_MAX - 1, UINT32_MAX, 0};
  std::string payload;
  EncodeTripleDelta(RunOrder::kPso, prev_t, {0, 0, 0}, true, &payload);
  EncodeTripleDelta(RunOrder::kPso, big, KeyOf(RunOrder::kPso, prev_t), false,
                    &payload);
  BlockDecoder dec(RunOrder::kPso,
                   reinterpret_cast<const uint8_t*>(payload.data()),
                   payload.size(), 2);
  Triple t;
  ASSERT_TRUE(dec.Next(&t));
  EXPECT_EQ(t, prev_t);
  ASSERT_TRUE(dec.Next(&t));
  EXPECT_EQ(t, big);
  EXPECT_FALSE(dec.Next(&t));
  EXPECT_TRUE(dec.AtCleanEnd());
}

// ---------------------------------------------------------------------------
// Writer / store round trips.

std::vector<Triple> SortedDeduped(std::vector<Triple> triples) {
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  return triples;
}

TEST(SegmentWriterTest, RoundTripsRandomTriples) {
  Rng rng(7);
  std::vector<Triple> triples;
  for (int i = 0; i < 5000; ++i) {
    triples.push_back(Triple{static_cast<uint32_t>(rng.Next() % 300),
                             static_cast<uint32_t>(rng.Next() % 12),
                             static_cast<uint32_t>(rng.Next() % 300)});
  }
  // Duplicates must collapse exactly as TripleStore's constructor does.
  triples.insert(triples.end(), triples.begin(), triples.begin() + 100);

  const std::string dir = TempDir("seg_roundtrip");
  const std::string path = SegmentPath(dir, 0);
  SegmentWriterOptions options;
  options.block_size = 512;  // many blocks
  options.num_properties = 12;
  options.num_vertices = 300;
  SegmentWriteStats stats;
  ASSERT_TRUE(WriteSegment(path, triples, options, &stats).ok());

  const std::vector<Triple> expected = SortedDeduped(triples);
  EXPECT_EQ(stats.num_triples, expected.size());
  EXPECT_GT(stats.pso_blocks, 1u);

  Result<SegmentStore> segment = SegmentStore::Open(path);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  EXPECT_EQ(segment->num_triples(), expected.size());
  EXPECT_TRUE(segment->DeepCheck().ok());

  // Full unbound scan is the PSO order, which equals Triple::operator<.
  EXPECT_EQ(Collect(*segment, kInvalidVertex, kInvalidProperty, kInvalidVertex),
            expected);

  // The compressed file is much smaller than the four resident copies.
  EXPECT_LT(stats.file_bytes, expected.size() * 4 * sizeof(Triple));
}

TEST(SegmentWriterTest, EmptySegmentRoundTrips) {
  const std::string dir = TempDir("seg_empty");
  const std::string path = SegmentPath(dir, 3);
  SegmentWriterOptions options;
  options.site = 3;
  options.k = 4;
  ASSERT_TRUE(WriteSegment(path, {}, options).ok());
  Result<SegmentStore> segment = SegmentStore::Open(path);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  EXPECT_EQ(segment->num_triples(), 0u);
  EXPECT_TRUE(segment->DeepCheck().ok());
  EXPECT_TRUE(
      Collect(*segment, kInvalidVertex, kInvalidProperty, kInvalidVertex)
          .empty());
  EXPECT_EQ(segment->EstimateCardinality(kInvalidVertex, kInvalidProperty,
                                         kInvalidVertex),
            0u);
}

TEST(SegmentWriterTest, FingerprintMismatchIsRefused) {
  const std::string dir = TempDir("seg_fp");
  const std::string path = SegmentPath(dir, 0);
  SegmentWriterOptions options;
  options.partition_fingerprint = 0xabcdef12u;
  ASSERT_TRUE(WriteSegment(path, {Triple{1, 2, 3}}, options).ok());

  SegmentStore::OpenOptions open_options;
  open_options.expected_fingerprint = 0xabcdef12u;
  EXPECT_TRUE(SegmentStore::Open(path, open_options).ok());

  open_options.expected_fingerprint = 0x11111111u;
  Result<SegmentStore> wrong = SegmentStore::Open(path, open_options);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Bit-identity with TripleStore: same emission sequences, same (exact)
// cardinalities, same early-stop behavior, for every bound combination.

void ExpectSourcesIdentical(const store::TripleSource& a,
                            const store::TripleSource& b, size_t num_vertices,
                            size_t num_properties) {
  ASSERT_EQ(a.num_triples(), b.num_triples());
  for (rdf::PropertyId p = 0; p <= num_properties; ++p) {
    EXPECT_EQ(a.PropertyCount(p), b.PropertyCount(p)) << "p=" << p;
  }
  std::vector<rdf::VertexId> vertices = {kInvalidVertex};
  for (size_t v = 0; v < num_vertices; v += 1 + num_vertices / 7) {
    vertices.push_back(static_cast<rdf::VertexId>(v));
  }
  vertices.push_back(static_cast<rdf::VertexId>(num_vertices + 5));  // absent
  std::vector<rdf::PropertyId> properties = {kInvalidProperty};
  for (size_t p = 0; p < num_properties; ++p) {
    properties.push_back(static_cast<rdf::PropertyId>(p));
  }
  properties.push_back(static_cast<rdf::PropertyId>(num_properties + 2));

  for (rdf::VertexId s : vertices) {
    for (rdf::PropertyId p : properties) {
      for (rdf::VertexId o : vertices) {
        const std::vector<Triple> rows_a = Collect(a, s, p, o);
        const std::vector<Triple> rows_b = Collect(b, s, p, o);
        ASSERT_EQ(rows_a, rows_b)
            << "scan mismatch s=" << s << " p=" << p << " o=" << o;
        EXPECT_EQ(a.EstimateCardinality(s, p, o), rows_a.size());
        EXPECT_EQ(b.EstimateCardinality(s, p, o), rows_a.size());
        if (rows_a.size() > 1) {
          // Early stop: same prefix, both report the stop.
          bool done_a = true;
          bool done_b = true;
          const size_t limit = rows_a.size() / 2;
          EXPECT_EQ(Collect(a, s, p, o, limit, &done_a),
                    Collect(b, s, p, o, limit, &done_b));
          EXPECT_FALSE(done_a);
          EXPECT_FALSE(done_b);
        }
      }
    }
  }
}

TEST(SegmentStoreTest, BitIdenticalToTripleStoreOnRandomGraphs) {
  Rng rng(11);
  for (int round = 0; round < 3; ++round) {
    const size_t n = 60 + 40 * static_cast<size_t>(round);
    rdf::RdfGraph graph = testutil::RandomGraph(rng, n, 4 * n, 5 + round);
    const std::string dir = TempDir("seg_bitid_" + std::to_string(round));
    const std::string path = SegmentPath(dir, 0);
    SegmentWriterOptions options;
    options.block_size = 512;
    options.num_properties = graph.num_properties();
    options.num_vertices = graph.num_vertices();
    ASSERT_TRUE(WriteSegment(path, graph.triples(), options).ok());
    Result<SegmentStore> segment = SegmentStore::Open(path);
    ASSERT_TRUE(segment.ok()) << segment.status().ToString();
    store::TripleStore memory(graph.triples());
    ExpectSourcesIdentical(*segment, memory, graph.num_vertices(),
                           graph.num_properties());
  }
}

TEST(SegmentStoreTest, ZoneMapsPruneBoundSubjectSweeps) {
  // Subjects are clustered per property, so PSO blocks have narrow
  // subject zone maps: a bound-subject sweep must rule most blocks out
  // without decoding them.
  std::vector<Triple> triples;
  for (uint32_t p = 0; p < 16; ++p) {
    for (uint32_t i = 0; i < 600; ++i) {
      triples.push_back(Triple{p * 1000 + (i % 100), p, i});
    }
  }
  const std::string dir = TempDir("seg_zonemap");
  const std::string path = SegmentPath(dir, 0);
  SegmentWriterOptions options;
  options.block_size = 512;
  ASSERT_TRUE(WriteSegment(path, triples, options).ok());
  Result<SegmentStore> segment = SegmentStore::Open(path);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  ASSERT_GT(segment->header().pso_num_blocks, 8u);

  const std::vector<Triple> all = SortedDeduped(triples);
  const rdf::VertexId s = 3 * 1000 + 7;
  std::vector<Triple> expected;
  for (const Triple& t : all) {
    if (t.subject == s) expected.push_back(t);
  }
  // (s) bound only: contract order is (p, o) ascending, which for a
  // single subject equals PSO order filtered to it.
  const uint64_t decoded_before = segment->blocks_decoded();
  EXPECT_EQ(Collect(*segment, s, kInvalidProperty, kInvalidVertex), expected);
  const uint64_t decoded = segment->blocks_decoded() - decoded_before;
  EXPECT_GT(segment->blocks_pruned(), 0u);
  EXPECT_LT(decoded, segment->header().pso_num_blocks / 2);
}

// ---------------------------------------------------------------------------
// Corruption: every mutation is a clean error, never a crash.

TEST(SegmentStoreTest, HeaderBitFlipsAreParseErrors) {
  const std::string dir = TempDir("seg_fuzz_header");
  const std::string path = SegmentPath(dir, 0);
  SegmentWriterOptions options;
  ASSERT_TRUE(
      WriteSegment(path, {Triple{1, 1, 2}, Triple{2, 3, 4}}, options).ok());
  const std::string good = ReadFileBytes(path);
  ASSERT_GE(good.size(), kSegmentHeaderSize);

  const std::string fuzzed = dir + "/fuzzed.mpcseg";
  for (size_t byte = 0; byte < kSegmentHeaderSize; ++byte) {
    std::string bad = good;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x40);
    WriteFileBytes(fuzzed, bad);
    Result<SegmentStore> segment = SegmentStore::Open(fuzzed);
    ASSERT_FALSE(segment.ok()) << "flip at header byte " << byte;
    EXPECT_EQ(segment.status().code(), StatusCode::kParseError) << byte;
  }
}

TEST(SegmentStoreTest, TruncationsAndGarbageAreParseErrors) {
  const std::string dir = TempDir("seg_fuzz_trunc");
  const std::string path = SegmentPath(dir, 0);
  Rng rng(5);
  std::vector<Triple> triples;
  for (int i = 0; i < 2000; ++i) {
    triples.push_back(Triple{static_cast<uint32_t>(rng.Next() % 100),
                             static_cast<uint32_t>(rng.Next() % 8),
                             static_cast<uint32_t>(rng.Next() % 100)});
  }
  SegmentWriterOptions options;
  options.block_size = 512;
  ASSERT_TRUE(WriteSegment(path, triples, options).ok());
  const std::string good = ReadFileBytes(path);

  const std::string fuzzed = dir + "/fuzzed.mpcseg";
  // Truncations at every section boundary and at odd offsets.
  for (size_t len : {size_t{0}, size_t{1}, size_t{100}, kSegmentHeaderSize,
                     size_t{512}, size_t{513}, good.size() - 57,
                     good.size() - 1}) {
    WriteFileBytes(fuzzed, good.substr(0, len));
    Result<SegmentStore> segment = SegmentStore::Open(fuzzed);
    ASSERT_FALSE(segment.ok()) << "truncation to " << len;
    EXPECT_EQ(segment.status().code(), StatusCode::kParseError) << len;
  }
  // Trailing garbage (the layout is rigid: TOC must end the file).
  WriteFileBytes(fuzzed, good + "garbage");
  EXPECT_FALSE(SegmentStore::Open(fuzzed).ok());
  // Pure garbage of plausible size.
  std::string garbage(good.size(), '\x5a');
  WriteFileBytes(fuzzed, garbage);
  Result<SegmentStore> segment = SegmentStore::Open(fuzzed);
  ASSERT_FALSE(segment.ok());
  EXPECT_EQ(segment.status().code(), StatusCode::kParseError);
}

TEST(SegmentStoreTest, RandomBitFlipsNeverCrash) {
  const std::string dir = TempDir("seg_fuzz_rand");
  const std::string path = SegmentPath(dir, 0);
  Rng rng(17);
  std::vector<Triple> triples;
  for (int i = 0; i < 3000; ++i) {
    triples.push_back(Triple{static_cast<uint32_t>(rng.Next() % 200),
                             static_cast<uint32_t>(rng.Next() % 10),
                             static_cast<uint32_t>(rng.Next() % 200)});
  }
  SegmentWriterOptions options;
  options.block_size = 512;
  ASSERT_TRUE(WriteSegment(path, triples, options).ok());
  const std::string good = ReadFileBytes(path);

  const std::string fuzzed = dir + "/fuzzed.mpcseg";
  for (int trial = 0; trial < 200; ++trial) {
    std::string bad = good;
    const size_t pos = rng.Next() % bad.size();
    bad[pos] = static_cast<char>(bad[pos] ^ (1u << (rng.Next() % 8)));
    WriteFileBytes(fuzzed, bad);
    Result<SegmentStore> segment = SegmentStore::Open(fuzzed);
    if (!segment.ok()) {
      const StatusCode code = segment.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kInvalidArgument)
          << segment.status().ToString();
      continue;
    }
    // A flip in padding can leave the file fully valid: it must then
    // still read back the original data (scan everything; no crash).
    EXPECT_EQ(
        Collect(*segment, kInvalidVertex, kInvalidProperty, kInvalidVertex),
        SortedDeduped(triples));
  }
}

TEST(SegmentStoreTest, LazyModeFlagsCorruptBlocksAtScanTime) {
  const std::string dir = TempDir("seg_lazy");
  const std::string path = SegmentPath(dir, 0);
  std::vector<Triple> triples;
  for (uint32_t i = 0; i < 2000; ++i) {
    triples.push_back(Triple{i % 97, i % 7, i % 89});
  }
  SegmentWriterOptions options;
  options.block_size = 512;
  ASSERT_TRUE(WriteSegment(path, triples, options).ok());
  std::string bytes = ReadFileBytes(path);
  // Flip a byte in the middle of the first PSO block's payload.
  bytes[512 + 20] = static_cast<char>(bytes[512 + 20] ^ 0xff);
  WriteFileBytes(path, bytes);

  // Eager verification refuses the file outright.
  ASSERT_FALSE(SegmentStore::Open(path).ok());

  // Lazy mode opens (only header + TOC are checked) ...
  SegmentStore::OpenOptions lazy;
  lazy.verify_blocks = false;
  Result<SegmentStore> segment = SegmentStore::Open(path, lazy);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  EXPECT_FALSE(segment->corruption_detected());
  // ... and the first scan touching the bad block detects it, stops
  // cleanly, and raises the sticky flag.
  Collect(*segment, kInvalidVertex, kInvalidProperty, kInvalidVertex);
  EXPECT_TRUE(segment->corruption_detected());
  EXPECT_FALSE(segment->DeepCheck().ok());
}

// ---------------------------------------------------------------------------
// Executor-level equivalence on the LUBM mix.

TEST(SegmentClusterTest, LubmQueryMixIsBitIdenticalAcrossBackends) {
  workload::LubmOptions lubm_options;
  lubm_options.num_universities = 6;
  workload::GeneratedDataset dataset = workload::MakeLubm(lubm_options);

  partition::PartitionerOptions popt{.k = 4, .epsilon = 0.1, .seed = 3};
  partition::Partitioning partitioning =
      partition::SubjectHashPartitioner(popt).Partition(dataset.graph);

  const std::string dir = TempDir("seg_lubm");
  ASSERT_TRUE(
      partition::PartitionIo::Save(dataset.graph, partitioning, dir).ok());
  Result<uint64_t> fingerprint = partition::PartitionIo::Fingerprint(dir);
  ASSERT_TRUE(fingerprint.ok());
  for (uint32_t i = 0; i < partitioning.k(); ++i) {
    const partition::Partition& p = partitioning.partition(i);
    std::vector<Triple> triples = p.internal_edges;
    triples.insert(triples.end(), p.crossing_edges.begin(),
                   p.crossing_edges.end());
    SegmentWriterOptions options;
    options.site = i;
    options.k = partitioning.k();
    options.num_properties = dataset.graph.num_properties();
    options.num_vertices = dataset.graph.num_vertices();
    options.partition_fingerprint = *fingerprint;
    ASSERT_TRUE(
        WriteSegment(SegmentPath(dir, i), std::move(triples), options).ok());
  }

  exec::Cluster memory_cluster = exec::Cluster::Build(partitioning);
  Result<exec::Cluster> segment_cluster =
      exec::Cluster::BuildFromSegments(partitioning, dir);
  ASSERT_TRUE(segment_cluster.ok()) << segment_cluster.status().ToString();
  EXPECT_EQ(segment_cluster->MemoryUsage() > 0, true);

  exec::DistributedExecutor memory_exec(memory_cluster, dataset.graph, {});
  exec::DistributedExecutor segment_exec(*segment_cluster, dataset.graph, {});
  ASSERT_FALSE(dataset.benchmark_queries.empty());
  for (const workload::NamedQuery& q : dataset.benchmark_queries) {
    Result<exec::QueryResponse> a =
        memory_exec.Execute(exec::QueryRequest::FromText(q.sparql));
    Result<exec::QueryResponse> b =
        segment_exec.Execute(exec::QueryRequest::FromText(q.sparql));
    ASSERT_TRUE(a.ok()) << q.name << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q.name << ": " << b.status().ToString();
    // Bit-identical: same columns, same rows, same order.
    EXPECT_EQ(a->bindings.var_ids, b->bindings.var_ids) << q.name;
    ASSERT_EQ(a->bindings.rows, b->bindings.rows) << q.name;
  }
}

// ---------------------------------------------------------------------------
// Delta overlay: (base ∪ added) \ deleted, bit-identical to a rebuilt
// TripleStore over the live set.

TEST(DeltaOverlayTest, MatchesRebuiltStoreOnRandomDeltas) {
  Rng rng(23);
  for (int round = 0; round < 3; ++round) {
    std::vector<Triple> base;
    for (int i = 0; i < 1500; ++i) {
      base.push_back(Triple{static_cast<uint32_t>(rng.Next() % 120),
                            static_cast<uint32_t>(rng.Next() % 6),
                            static_cast<uint32_t>(rng.Next() % 120)});
    }
    base = SortedDeduped(base);
    std::vector<Triple> added;
    std::vector<Triple> deleted;
    for (int i = 0; i < 200; ++i) {
      // Adds: half fresh, half duplicating base (no-ops).
      added.push_back(rng.Next() % 2 == 0
                          ? base[rng.Next() % base.size()]
                          : Triple{static_cast<uint32_t>(rng.Next() % 120),
                                   static_cast<uint32_t>(rng.Next() % 6),
                                   static_cast<uint32_t>(rng.Next() % 120)});
      // Deletes: half hitting base, half missing (no-ops); may overlap
      // the adds (delete wins — matches IncrementalMaintainer).
      deleted.push_back(rng.Next() % 2 == 0
                            ? base[rng.Next() % base.size()]
                            : Triple{static_cast<uint32_t>(rng.Next() % 120),
                                     static_cast<uint32_t>(rng.Next() % 6),
                                     static_cast<uint32_t>(rng.Next() % 120)});
    }

    auto base_store = std::make_shared<const store::TripleStore>(base);
    DeltaOverlaySource overlay(base_store, added, deleted);

    // Reference: live = (base ∪ added) \ deleted.
    std::vector<Triple> live = base;
    std::set<Triple> deleted_set(deleted.begin(), deleted.end());
    for (const Triple& t : added) {
      if (deleted_set.count(t) == 0) live.push_back(t);
    }
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](const Triple& t) {
                                return deleted_set.count(t) != 0;
                              }),
               live.end());
    store::TripleStore rebuilt(std::move(live));

    ExpectSourcesIdentical(overlay, rebuilt, 120, 6);
  }
}

TEST(DeltaOverlayTest, OverlayOverSegmentBaseMatchesToo) {
  // The composition actually shipped: segment base + overlay.
  Rng rng(29);
  std::vector<Triple> base;
  for (int i = 0; i < 1000; ++i) {
    base.push_back(Triple{static_cast<uint32_t>(rng.Next() % 80),
                          static_cast<uint32_t>(rng.Next() % 5),
                          static_cast<uint32_t>(rng.Next() % 80)});
  }
  const std::string dir = TempDir("seg_overlay");
  const std::string path = SegmentPath(dir, 0);
  SegmentWriterOptions options;
  options.block_size = 512;
  ASSERT_TRUE(WriteSegment(path, base, options).ok());
  Result<SegmentStore> segment = SegmentStore::Open(path);
  ASSERT_TRUE(segment.ok());

  std::vector<Triple> added = {Triple{200, 1, 3}, Triple{0, 0, 0}};
  std::vector<Triple> deleted = {base[0], base[1], Triple{999, 4, 999}};
  auto seg_base =
      std::make_shared<const SegmentStore>(std::move(*segment));
  DeltaOverlaySource overlay(seg_base, added, deleted);

  std::vector<Triple> live = SortedDeduped(base);
  std::set<Triple> deleted_set(deleted.begin(), deleted.end());
  for (const Triple& t : added) {
    if (deleted_set.count(t) == 0) live.push_back(t);
  }
  live.erase(std::remove_if(
                 live.begin(), live.end(),
                 [&](const Triple& t) { return deleted_set.count(t) != 0; }),
             live.end());
  store::TripleStore rebuilt(std::move(live));
  ExpectSourcesIdentical(overlay, rebuilt, 210, 6);
}

// ---------------------------------------------------------------------------
// Serving: Capture with segment bases serves the same answers as the
// full rebuild.

TEST(ServingOverlayTest, CaptureWithBasesMatchesRebuild) {
  Rng rng(31);
  rdf::RdfGraph graph = testutil::RandomGraph(rng, 120, 500, 6);
  partition::PartitionerOptions popt{.k = 3, .epsilon = 0.1, .seed = 9};
  partition::Partitioning partitioning =
      partition::SubjectHashPartitioner(popt).Partition(graph);

  // Bases: the initial cluster's own sources (any TripleSource works;
  // `mpc serve` uses opened segments).
  exec::Cluster base_cluster = exec::Cluster::Build(partitioning);

  dynamic::MaintainerOptions moptions;
  moptions.policy.kind = dynamic::RepartitionPolicy::Kind::kNever;
  dynamic::IncrementalMaintainer maintainer(graph.Clone(), partitioning,
                                            moptions);
  dynamic::UpdateBatch batch;
  // Inserts reusing existing terms plus one brand-new vertex, and
  // deletes of existing triples.
  const std::vector<Triple>& triples = graph.triples();
  for (int i = 0; i < 20; ++i) {
    const Triple& t = triples[rng.Next() % triples.size()];
    batch.updates.push_back(dynamic::TripleUpdate{
        dynamic::UpdateKind::kDelete, graph.VertexName(t.subject),
        graph.PropertyName(t.property), graph.VertexName(t.object)});
  }
  for (int i = 0; i < 20; ++i) {
    const Triple& t = triples[rng.Next() % triples.size()];
    batch.updates.push_back(dynamic::TripleUpdate{
        dynamic::UpdateKind::kInsert, graph.VertexName(t.subject),
        graph.PropertyName(t.property),
        graph.VertexName(triples[rng.Next() % triples.size()].object)});
  }
  batch.updates.push_back(dynamic::TripleUpdate{
      dynamic::UpdateKind::kInsert, "<t:brandnew>",
      graph.PropertyName(triples[0].property), graph.VertexName(0)});
  maintainer.ApplyBatch(batch);

  serve::ServingStateOptions with_bases;
  with_bases.base_sources = base_cluster.sources();
  std::shared_ptr<const serve::ServingState> overlay_state =
      serve::ServingState::Capture(maintainer, with_bases);
  std::shared_ptr<const serve::ServingState> rebuilt_state =
      serve::ServingState::Capture(maintainer, {});
  EXPECT_EQ(overlay_state->generation(), rebuilt_state->generation());

  const std::string queries[] = {
      "SELECT ?s ?o WHERE { ?s <t:p0> ?o . }",
      "SELECT ?s ?o WHERE { ?s <t:p1> ?o . ?s <t:p2> ?o2 . }",
      "SELECT ?s WHERE { ?s <t:p3> ?o . ?o <t:p0> ?t . }",
  };
  for (const std::string& q : queries) {
    Result<exec::QueryResponse> a = overlay_state->distributed().Execute(
        exec::QueryRequest::FromText(q));
    Result<exec::QueryResponse> b = rebuilt_state->distributed().Execute(
        exec::QueryRequest::FromText(q));
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->bindings.var_ids, b->bindings.var_ids);
    EXPECT_EQ(testutil::RowSet(a->bindings), testutil::RowSet(b->bindings))
        << q;
  }

  // The overlay path must not have rebuilt: its site stores report the
  // delta accounting.
  const auto* cluster =
      dynamic_cast<const exec::Cluster*>(&overlay_state->cluster());
  ASSERT_NE(cluster, nullptr);
  size_t tombstoned = 0;
  for (const auto& source : cluster->sources()) {
    const auto* overlay =
        dynamic_cast<const DeltaOverlaySource*>(source.get());
    ASSERT_NE(overlay, nullptr);
    tombstoned += overlay->num_tombstoned();
  }
  EXPECT_GT(tombstoned, 0u);
}

// ---------------------------------------------------------------------------
// Satellites: FunctionRef semantics and the MemoryUsage accounting fix.

TEST(FunctionRefTest, InvokesCapturesWithoutOwnership) {
  int hits = 0;
  auto counter = [&hits](const Triple& t) {
    ++hits;
    return t.property < 2;
  };
  FunctionRef<bool(const Triple&)> ref = counter;
  EXPECT_TRUE(ref(Triple{0, 0, 0}));
  EXPECT_TRUE(ref(Triple{0, 1, 0}));
  EXPECT_FALSE(ref(Triple{0, 2, 0}));
  EXPECT_EQ(hits, 3);

  // Two words: object pointer + trampoline. The whole point of the
  // refactor is that passing a capturing lambda to Scan never allocates.
  static_assert(sizeof(FunctionRef<bool(const Triple&)>) <=
                2 * sizeof(void*));

  // Re-binding to another callable.
  auto always = [](const Triple&) { return true; };
  ref = FunctionRef<bool(const Triple&)>(always);
  EXPECT_TRUE(ref(Triple{9, 9, 9}));
}

TEST(TripleStoreTest, MemoryUsageCountsAllFourIndexCopies) {
  Rng rng(41);
  std::vector<Triple> triples;
  for (int i = 0; i < 4000; ++i) {
    triples.push_back(Triple{static_cast<uint32_t>(rng.Next() % 500),
                             static_cast<uint32_t>(rng.Next() % 9),
                             static_cast<uint32_t>(rng.Next() % 500)});
  }
  triples = SortedDeduped(triples);
  store::TripleStore store(triples);
  // Four sorted copies (PSO, POS, SPO, OSP) at minimum — the old
  // accounting under-reported by 25% by counting three.
  EXPECT_GE(store.MemoryUsage(), 4 * triples.size() * sizeof(Triple));
}

}  // namespace
}  // namespace mpc::storage

#include "mpc/mpc_partitioner.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "mpc/selector.h"
#include "partition/edge_cut_partitioner.h"
#include "partition/subject_hash_partitioner.h"
#include "test_util.h"

namespace mpc::core {
namespace {

using partition::Partitioning;
using rdf::RdfGraph;

struct MpcCase {
  uint32_t k;
  double epsilon;
  SelectionStrategy strategy;
  uint64_t seed;
};

class MpcPartitionerTest : public ::testing::TestWithParam<MpcCase> {};

TEST_P(MpcPartitionerTest, InvariantsHold) {
  const MpcCase param = GetParam();
  Rng rng(param.seed);
  RdfGraph g = testutil::RandomGraph(rng, 400, 1200, 10, /*community=*/25,
                                     /*escape=*/0.05);

  MpcOptions options;
  options.base.k = param.k;
  options.base.epsilon = param.epsilon;
  options.base.seed = param.seed;
  options.strategy = param.strategy;
  MpcPartitioner partitioner(options);
  MpcRunStats stats;
  Partitioning p = partitioner.Partition(g, &stats);

  // Valid vertex-disjoint assignment.
  ASSERT_TRUE(p.assignment().Valid(g.num_vertices()));

  // Theorem 2: no internal-property edge crosses partitions.
  const auto& part = p.assignment().part;
  for (size_t prop = 0; prop < g.num_properties(); ++prop) {
    if (!stats.selection.internal[prop]) continue;
    for (const rdf::Triple& t :
         g.EdgesWithProperty(static_cast<rdf::PropertyId>(prop))) {
      ASSERT_EQ(part[t.subject], part[t.object])
          << "internal property edge crossed: " << g.PropertyName(
                 static_cast<rdf::PropertyId>(prop));
    }
    // And therefore the property is not crossing.
    EXPECT_FALSE(p.IsCrossingProperty(static_cast<rdf::PropertyId>(prop)));
  }

  // |L_cross| <= |L| - |L_in|.
  EXPECT_LE(p.num_crossing_properties(),
            g.num_properties() - stats.selection.num_internal);

  // Selection respected the cap.
  EXPECT_LE(stats.selection.final_cost,
            BalanceCap(g, param.k, param.epsilon));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpcPartitionerTest,
    ::testing::Values(
        MpcCase{2, 0.1, SelectionStrategy::kGreedy, 1},
        MpcCase{4, 0.1, SelectionStrategy::kGreedy, 2},
        MpcCase{8, 0.1, SelectionStrategy::kGreedy, 3},
        MpcCase{8, 0.5, SelectionStrategy::kGreedy, 4},
        MpcCase{4, 0.1, SelectionStrategy::kBackward, 5},
        MpcCase{4, 0.1, SelectionStrategy::kAuto, 6},
        MpcCase{3, 0.2, SelectionStrategy::kExact, 7}));

TEST(MpcPartitionerTest, FewerCrossingPropertiesThanBaselines) {
  // Community graph: the regime where the paper's Table II shape holds.
  Rng rng(11);
  RdfGraph g = testutil::RandomGraph(rng, 1000, 3000, 12, /*community=*/40,
                                     /*escape=*/0.08);
  MpcOptions mpc_options;
  mpc_options.base.k = 8;
  mpc_options.base.epsilon = 0.1;
  Partitioning mpc = MpcPartitioner(mpc_options).Partition(g);

  partition::PartitionerOptions base{.k = 8, .epsilon = 0.1, .seed = 1};
  Partitioning hash =
      partition::SubjectHashPartitioner(base).Partition(g);
  Partitioning metis = partition::EdgeCutPartitioner(base).Partition(g);

  EXPECT_LE(mpc.num_crossing_properties(), metis.num_crossing_properties());
  EXPECT_LT(mpc.num_crossing_properties(), hash.num_crossing_properties());
}

TEST(MpcPartitionerTest, StatsArePopulated) {
  Rng rng(13);
  RdfGraph g = testutil::RandomGraph(rng, 200, 600, 8, /*community=*/20);
  MpcOptions options;
  options.base.k = 4;
  MpcPartitioner partitioner(options);
  MpcRunStats stats;
  partitioner.Partition(g, &stats);
  EXPECT_GT(stats.num_supervertices, 0u);
  EXPECT_LE(stats.num_supervertices, g.num_vertices());
  EXPECT_GE(stats.StageMillis("selection"), 0.0);
  EXPECT_EQ(stats.stages.size(), 4u);
  EXPECT_GE(stats.threads_used, 1);
}

TEST(MpcPartitionerTest, NameReflectsStrategy) {
  MpcOptions options;
  EXPECT_EQ(MpcPartitioner(options).name(), "MPC");
  options.strategy = SelectionStrategy::kExact;
  EXPECT_EQ(MpcPartitioner(options).name(), "MPC-Exact");
}

TEST(MpcPartitionerTest, SingletonK) {
  Rng rng(17);
  RdfGraph g = testutil::RandomGraph(rng, 50, 150, 5);
  MpcOptions options;
  options.base.k = 1;
  Partitioning p = MpcPartitioner(options).Partition(g);
  EXPECT_EQ(p.num_crossing_edges(), 0u);
  EXPECT_EQ(p.num_crossing_properties(), 0u);
}

}  // namespace
}  // namespace mpc::core

#include "sparql/parser.h"

#include "gtest/gtest.h"
#include "sparql/shape.h"
#include "test_util.h"

namespace mpc::sparql {
namespace {

TEST(ParserTest, BasicSelectStar) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <http://p> ?y . }");
  ASSERT_EQ(q.num_patterns(), 1u);
  EXPECT_TRUE(q.projection().empty());
  EXPECT_EQ(q.num_variables(), 2u);
  EXPECT_TRUE(q.patterns()[0].subject.is_variable());
  EXPECT_EQ(q.patterns()[0].predicate.text, "<http://p>");
}

TEST(ParserTest, SelectSpecificVariables) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT ?y ?x WHERE { ?x <http://p> ?y . }");
  ASSERT_EQ(q.projection().size(), 2u);
  EXPECT_EQ(q.variables()[q.projection()[0]], "y");
  EXPECT_EQ(q.variables()[q.projection()[1]], "x");
}

TEST(ParserTest, PrefixExpansion) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "PREFIX ex: <http://example.org/> "
      "SELECT * WHERE { ?x ex:knows ?y . }");
  EXPECT_EQ(q.patterns()[0].predicate.text, "<http://example.org/knows>");
}

TEST(ParserTest, MultiplePrefixes) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "PREFIX a: <http://a/> PREFIX b: <http://b/> "
      "SELECT * WHERE { a:s b:p a:o . ?x b:q ?y }");
  EXPECT_EQ(q.patterns()[0].subject.text, "<http://a/s>");
  EXPECT_EQ(q.patterns()[0].predicate.text, "<http://b/p>");
}

TEST(ParserTest, AKeywordIsRdfType) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x a <http://C> . }");
  EXPECT_EQ(q.patterns()[0].predicate.text,
            "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>");
}

TEST(ParserTest, LiteralObjects) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <http://p> \"v\" . ?x <http://q> \"w\"@en . "
      "?x <http://r> \"1\"^^<http://int> . }");
  EXPECT_EQ(q.patterns()[0].object.text, "\"v\"");
  EXPECT_EQ(q.patterns()[1].object.text, "\"w\"@en");
  EXPECT_EQ(q.patterns()[2].object.text, "\"1\"^^<http://int>");
}

TEST(ParserTest, VariablePredicate) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x ?p ?y . }");
  EXPECT_TRUE(q.has_variable_predicate());
  EXPECT_EQ(q.num_variables(), 3u);
}

TEST(ParserTest, SharedVariablesGetOneId) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <http://p> ?y . ?y <http://q> ?z . }");
  EXPECT_EQ(q.num_variables(), 3u);
  EXPECT_EQ(q.num_vertices(), 3u);
  // ?y is the object of pattern 0 and subject of pattern 1.
  EXPECT_EQ(q.ObjectVertex(0), q.SubjectVertex(1));
}

TEST(ParserTest, RepeatedConstantIsOneVertex) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { <http://a> <http://p> ?x . <http://a> <http://q> "
      "?y . }");
  EXPECT_EQ(q.SubjectVertex(0), q.SubjectVertex(1));
  EXPECT_EQ(q.num_vertices(), 3u);
}

TEST(ParserTest, CommentsAndCaseInsensitiveKeywords) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "# leading comment\nselect * where { ?x <http://p> ?y . }");
  EXPECT_EQ(q.num_patterns(), 1u);
}

TEST(ParserTest, OptionalTrailingDot) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <http://p> ?y }");
  EXPECT_EQ(q.num_patterns(), 1u);
}

TEST(ParserTest, DistinctKeyword) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT DISTINCT ?x WHERE { ?x <http://p> ?y . }");
  EXPECT_TRUE(q.distinct());
  EXPECT_EQ(q.projection().size(), 1u);
  QueryGraph q2 = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <http://p> ?y . }");
  EXPECT_FALSE(q2.distinct());
}

TEST(ParserTest, LimitClause) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <http://p> ?y . } LIMIT 25");
  EXPECT_EQ(q.limit(), 25u);
  EXPECT_NE(q.ToString().find("LIMIT 25"), std::string::npos);
  QueryGraph q2 = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <http://p> ?y . }");
  EXPECT_EQ(q2.limit(), SIZE_MAX);
  EXPECT_FALSE(
      SparqlParser::Parse("SELECT * WHERE { ?x <http://p> ?y . } LIMIT x")
          .ok());
}

TEST(ParserTest, ErrorCases) {
  for (const char* bad : {
           "WHERE { ?x <p> ?y . }",               // missing SELECT
           "SELECT WHERE { ?x <http://p> ?y . }", // no vars or *
           "SELECT * WHERE { ?x <http://p> }",    // incomplete pattern
           "SELECT * WHERE { ?x <http://p ?y . }",  // unterminated IRI
           "SELECT * WHERE { ?x <http://p> ?y . ",  // missing }
           "SELECT * WHERE { \"lit\" <http://p> ?y . }",  // literal subject
           "SELECT * WHERE { ?x \"lit\" ?y . }",  // literal predicate
           "SELECT ?z WHERE { ?x <http://p> ?y . }",  // unknown projection
           "SELECT * WHERE { ?x ex:p ?y . }",     // unknown prefix
           "SELECT * WHERE { }",                  // empty BGP
           "SELECT * WHERE { ?x <http://p> ?y . } trailing",
       }) {
    Result<QueryGraph> r = SparqlParser::Parse(bad);
    EXPECT_FALSE(r.ok()) << "should reject: " << bad;
  }
}

TEST(ParserTest, RejectsVariableInBothPredicateAndVertexPosition) {
  Result<QueryGraph> r = SparqlParser::Parse(
      "SELECT * WHERE { ?x ?p ?y . ?p <http://q> ?z . }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(BuilderTest, ShorthandAndToString) {
  QueryGraphBuilder builder;
  builder.AddPattern("?x", "<http://p>", "?y").Select("x");
  Result<QueryGraph> q = builder.Build();
  ASSERT_TRUE(q.ok());
  EXPECT_NE(q->ToString().find("SELECT ?x"), std::string::npos);
  EXPECT_NE(q->ToString().find("?x <http://p> ?y ."), std::string::npos);
}

TEST(BuilderTest, EmptyQueryRejected) {
  QueryGraphBuilder builder;
  EXPECT_FALSE(builder.Build().ok());
}

TEST(ShapeTest, StarDetection) {
  // Out-star.
  EXPECT_TRUE(IsStarQuery(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <http://p> ?a . ?x <http://q> ?b . }")));
  // In/out mixed star.
  EXPECT_TRUE(IsStarQuery(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <http://p> ?x . ?x <http://q> ?b . ?x "
      "<http://r> ?c . }")));
  // Single pattern is a star.
  EXPECT_TRUE(IsStarQuery(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?x <http://p> ?y . }")));
  // Path of length 2 is a star centered on the middle.
  EXPECT_TRUE(IsStarQuery(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . }")));
  // Path of length 3 is not.
  EXPECT_FALSE(IsStarQuery(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . ?c "
      "<http://r> ?d . }")));
  // Triangle is not a star.
  EXPECT_FALSE(IsStarQuery(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . ?a "
      "<http://r> ?c . }")));
}

TEST(ShapeTest, WeakConnectivity) {
  EXPECT_TRUE(IsWeaklyConnected(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . }")));
  EXPECT_FALSE(IsWeaklyConnected(testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <http://p> ?b . ?c <http://q> ?d . }")));
}

TEST(ShapeTest, DecomposeAfterRemoval) {
  QueryGraph q = testutil::ParseQueryOrDie(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . ?c "
      "<http://r> ?d . }");
  // Remove the middle edge: {a,b} and {c,d}.
  std::vector<bool> removed = {false, true, false};
  QueryComponents comps = DecomposeAfterRemoval(q, removed);
  EXPECT_EQ(comps.num_components, 2u);
  EXPECT_EQ(comps.vertex_component[q.SubjectVertex(0)],
            comps.vertex_component[q.ObjectVertex(0)]);
  EXPECT_NE(comps.vertex_component[q.SubjectVertex(0)],
            comps.vertex_component[q.SubjectVertex(2)]);
  // Remove everything: 4 singletons.
  removed = {true, true, true};
  EXPECT_EQ(DecomposeAfterRemoval(q, removed).num_components, 4u);
}

}  // namespace
}  // namespace mpc::sparql

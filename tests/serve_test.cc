#include "serve/query_service.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dynamic/incremental_maintainer.h"
#include "exec/query_api.h"
#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "partition/subject_hash_partitioner.h"
#include "serve/admin.h"
#include "serve/lru_cache.h"
#include "serve/serving_state.h"
#include "test_util.h"

namespace mpc::serve {
namespace {

using testutil::BuildGraph;
using testutil::GroundTruth;
using testutil::T;

rdf::RdfGraph SmallGraph() {
  return BuildGraph({
      {"a", "knows", "b"},
      {"b", "knows", "c"},
      {"c", "knows", "a"},
      {"a", "likes", "d"},
      {"d", "likes", "e"},
      {"e", "worksAt", "f"},
      {"f", "worksAt", "g"},
      {"g", "knows", "h"},
      {"h", "likes", "a"},
      {"b", "worksAt", "f"},
      {"c", "likes", "e"},
      {"d", "knows", "g"},
  });
}

partition::Partitioning Hash2(const rdf::RdfGraph& graph) {
  partition::PartitionerOptions options;
  options.k = 2;
  return partition::SubjectHashPartitioner(options).Partition(graph);
}

std::shared_ptr<const ServingState> SmallState() {
  rdf::RdfGraph graph = SmallGraph();
  partition::Partitioning partitioning = Hash2(graph);
  return ServingState::Build(std::move(graph), std::move(partitioning));
}

/// Rows as lexical forms so answers can be compared across snapshots
/// whose dense ids differ.
std::set<std::vector<std::string>> LexRows(const store::BindingTable& table,
                                           const rdf::RdfGraph& graph) {
  std::set<std::vector<std::string>> rows;
  for (const auto& row : table.rows) {
    std::vector<std::string> lex;
    lex.reserve(row.size());
    for (uint32_t id : row) lex.emplace_back(graph.VertexName(id));
    rows.insert(std::move(lex));
  }
  return rows;
}

/// A gate the pre_execute_hook blocks on, so tests can hold worker
/// threads at a known point and saturate the admission queue.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

// ----------------------------------------------------------------- LruCache

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<std::shared_ptr<int>> cache(2);
  cache.Put("a", std::make_shared<int>(1));
  cache.Put("b", std::make_shared<int>(2));
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh a; b is now LRU
  cache.Put("c", std::make_shared<int>(3));
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("a"), 1);
  EXPECT_EQ(*cache.Get("c"), 3);
}

TEST(LruCacheTest, ZeroCapacityNeverStores) {
  LruCache<std::shared_ptr<int>> cache(0);
  cache.Put("a", std::make_shared<int>(1));
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(LruCacheTest, PutReplacesExistingKey) {
  LruCache<std::shared_ptr<int>> cache(2);
  cache.Put("a", std::make_shared<int>(1));
  cache.Put("a", std::make_shared<int>(9));
  EXPECT_EQ(*cache.Get("a"), 9);
}

// ------------------------------------------------------------- QueryService

TEST(QueryServiceTest, AnswersMatchDirectExecution) {
  auto state = SmallState();
  QueryService service(state);
  const std::string text = "SELECT * WHERE { ?x <t:knows> ?y . }";
  Result<exec::QueryResponse> served =
      service.Execute(exec::QueryRequest::FromText(text));
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  Result<exec::QueryResponse> direct =
      state->distributed().Execute(exec::QueryRequest::FromText(text));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(served->bindings.rows, direct->bindings.rows);
  EXPECT_EQ(served->generation, 0u);
  EXPECT_GE(served->stats.queue_wait_millis, 0.0);
}

TEST(QueryServiceTest, ParseErrorCarriesQueryText) {
  QueryService service(SmallState());
  Result<exec::QueryResponse> r =
      service.Execute(exec::QueryRequest::FromText("NOT SPARQL AT ALL"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("NOT SPARQL AT ALL"),
            std::string::npos);
}

TEST(QueryServiceTest, SaturatedQueueRejectsWithUnavailable) {
  Gate gate;
  std::atomic<int> executing{0};
  QueryServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.admission = QueryServiceOptions::Admission::kReject;
  options.pre_execute_hook = [&](const exec::QueryRequest&) {
    executing.fetch_add(1);
    gate.Wait();
  };
  QueryService service(SmallState(), options);

  const std::string text = "SELECT * WHERE { ?x <t:knows> ?y . }";
  std::vector<std::future<Result<exec::QueryResponse>>> futures;
  // First submission is popped by the (gated) worker; the next two fill
  // the queue; everything after that must be rejected immediately.
  futures.push_back(service.Submit(exec::QueryRequest::FromText(text)));
  while (executing.load() == 0) std::this_thread::yield();
  for (int i = 0; i < 2; ++i) {
    futures.push_back(service.Submit(exec::QueryRequest::FromText(text)));
  }
  EXPECT_EQ(service.queue_depth(), 2u);

  size_t rejected = 0;
  for (int i = 0; i < 5; ++i) {
    std::future<Result<exec::QueryResponse>> f =
        service.Submit(exec::QueryRequest::FromText(text));
    // A rejected future is resolved synchronously inside Submit.
    Result<exec::QueryResponse> r = f.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(r.status().message().find("admission queue full"),
              std::string::npos);
    EXPECT_NE(r.status().message().find("<t:knows>"), std::string::npos);
    ++rejected;
  }
  EXPECT_EQ(rejected, 5u);

  // Releasing the gate drains the three admitted queries successfully —
  // saturation never wedges the service.
  gate.Open();
  for (auto& f : futures) {
    Result<exec::QueryResponse> r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->bindings.num_rows(), 5u);
  }
}

TEST(QueryServiceTest, BlockingAdmissionNeverRejects) {
  QueryServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 1;
  options.admission = QueryServiceOptions::Admission::kBlock;
  QueryService service(SmallState(), options);

  const std::string text = "SELECT * WHERE { ?x <t:likes> ?y . }";
  // Far more submissions than capacity, from several threads at once:
  // every one must eventually succeed (Submit blocks instead of
  // rejecting), and nothing deadlocks.
  std::vector<std::thread> producers;
  std::atomic<size_t> ok{0};
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        Result<exec::QueryResponse> r =
            service.Execute(exec::QueryRequest::FromText(text));
        if (r.ok() && r->bindings.num_rows() == 4) ok.fetch_add(1);
      }
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(ok.load(), 100u);
}

TEST(QueryServiceTest, DeadlineExpiresInQueue) {
  Gate gate;
  std::atomic<int> executing{0};
  QueryServiceOptions options;
  options.num_workers = 1;
  options.pre_execute_hook = [&](const exec::QueryRequest&) {
    executing.fetch_add(1);
    gate.Wait();
  };
  QueryService service(SmallState(), options);

  const std::string text = "SELECT * WHERE { ?x <t:worksAt> ?y . }";
  // Occupy the only worker, then enqueue a query whose deadline lapses
  // while it waits.
  std::future<Result<exec::QueryResponse>> blocker =
      service.Submit(exec::QueryRequest::FromText(
          "SELECT * WHERE { ?x <t:knows> ?y . }"));
  while (executing.load() == 0) std::this_thread::yield();

  exec::QueryRequest doomed = exec::QueryRequest::FromText(text);
  doomed.options.deadline_ms = 5.0;
  std::future<Result<exec::QueryResponse>> expired =
      service.Submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();

  Result<exec::QueryResponse> r = expired.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("<t:worksAt>"), std::string::npos);
  ASSERT_TRUE(blocker.get().ok());
}

TEST(QueryServiceTest, ShutdownDrainsAdmittedAndRejectsNew) {
  QueryServiceOptions options;
  options.num_workers = 2;
  QueryService service(SmallState(), options);
  const std::string text = "SELECT * WHERE { ?x <t:knows> ?y . }";
  std::vector<std::future<Result<exec::QueryResponse>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(service.Submit(exec::QueryRequest::FromText(text)));
  }
  service.Shutdown();
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().ok());
  }
  Result<exec::QueryResponse> late =
      service.Execute(exec::QueryRequest::FromText(text));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST(QueryServiceTest, ResultCacheHitsUntilGenerationBump) {
  rdf::RdfGraph graph = SmallGraph();
  partition::Partitioning partitioning = Hash2(graph);
  dynamic::MaintainerOptions moptions;
  moptions.policy.kind = dynamic::RepartitionPolicy::Kind::kNever;
  dynamic::IncrementalMaintainer maintainer(std::move(graph),
                                            std::move(partitioning),
                                            moptions);
  QueryService service(ServingState::Capture(maintainer));
  const uint64_t gen0 = service.generation();
  const std::string text = "SELECT * WHERE { ?x <t:knows> ?y . }";

  Result<exec::QueryResponse> first =
      service.Execute(exec::QueryRequest::FromText(text));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->stats.result_cache_hit);
  EXPECT_EQ(first->generation, gen0);

  Result<exec::QueryResponse> second =
      service.Execute(exec::QueryRequest::FromText(text));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->stats.result_cache_hit);
  EXPECT_EQ(second->bindings.rows, first->bindings.rows);

  // Insert a new <t:knows> edge and publish: the generation bumps, the
  // cached entry stops matching, and the fresh answer has the new row.
  dynamic::UpdateBatch batch;
  batch.updates.push_back(dynamic::TripleUpdate{
      dynamic::UpdateKind::kInsert, T("x"), T("knows"), T("a")});
  maintainer.ApplyBatch(batch);
  service.Publish(ServingState::Capture(maintainer));
  ASSERT_GT(service.generation(), gen0);

  Result<exec::QueryResponse> third =
      service.Execute(exec::QueryRequest::FromText(text));
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->stats.result_cache_hit);
  EXPECT_EQ(third->generation, service.generation());
  EXPECT_EQ(third->bindings.num_rows(), first->bindings.num_rows() + 1);

  Result<exec::QueryResponse> fourth =
      service.Execute(exec::QueryRequest::FromText(text));
  ASSERT_TRUE(fourth.ok());
  EXPECT_TRUE(fourth->stats.result_cache_hit);
  EXPECT_EQ(fourth->generation, service.generation());
}

TEST(QueryServiceTest, PlanCacheHitsOnRepeatedShape) {
  QueryServiceOptions options;
  options.result_cache_capacity = 0;  // force every query to the planner
  QueryService service(SmallState(), options);
  // Same shape, different constants: one canonical key.
  Result<exec::QueryResponse> first = service.Execute(
      exec::QueryRequest::FromText("SELECT * WHERE { ?x <t:knows> ?y . ?y "
                                   "<t:likes> ?z . }"));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->stats.plan_cache_hit);
  Result<exec::QueryResponse> second = service.Execute(
      exec::QueryRequest::FromText("SELECT * WHERE { ?a <t:knows> ?b . ?b "
                                   "<t:likes> ?c . }"));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->stats.plan_cache_hit);
  EXPECT_EQ(second->bindings.rows, first->bindings.rows);
}

/// 8 submitter threads churn queries while an update thread applies
/// batches and publishes snapshots. Every answer must match a
/// from-scratch oracle (single-store ground truth on the materialized
/// live graph) for the generation the answer reports.
TEST(QueryServiceTest, ConcurrentChurnIsGenerationConsistent) {
  rdf::RdfGraph graph = SmallGraph();
  partition::Partitioning partitioning = Hash2(graph);
  dynamic::MaintainerOptions moptions;
  moptions.policy.kind = dynamic::RepartitionPolicy::Kind::kNever;
  dynamic::IncrementalMaintainer maintainer(std::move(graph),
                                            std::move(partitioning),
                                            moptions);

  const std::vector<std::string> texts = {
      "SELECT * WHERE { ?x <t:knows> ?y . }",
      "SELECT * WHERE { ?x <t:likes> ?y . }",
      "SELECT * WHERE { ?x <t:worksAt> ?y . }",
  };

  // oracle[generation][qi]: lexical ground-truth rows, computed with the
  // single-store evaluator on a from-scratch materialization — no
  // executor, cluster or cache code in the loop. states[generation]
  // supplies the id space for decoding served bindings.
  std::map<uint64_t, std::vector<std::set<std::vector<std::string>>>> oracle;
  std::map<uint64_t, std::shared_ptr<const ServingState>> states;
  auto record = [&](const std::shared_ptr<const ServingState>& state) {
    rdf::RdfGraph live = maintainer.MaterializeGraph();
    std::vector<std::set<std::vector<std::string>>>& rows =
        oracle[state->generation()];
    for (const std::string& text : texts) {
      rows.push_back(
          LexRows(GroundTruth(live, testutil::ParseQueryOrDie(text)), live));
    }
    states[state->generation()] = state;
  };

  std::shared_ptr<const ServingState> initial =
      ServingState::Capture(maintainer);
  record(initial);

  QueryServiceOptions options;
  options.num_workers = 4;
  QueryService service(std::move(initial), options);

  struct Answer {
    size_t qi;
    uint64_t generation;
    store::BindingTable bindings;
  };
  std::mutex answers_mutex;
  std::vector<Answer> answers;

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    for (int b = 0; b < 12; ++b) {
      dynamic::UpdateBatch batch;
      batch.updates.push_back(dynamic::TripleUpdate{
          dynamic::UpdateKind::kInsert, T("n" + std::to_string(b)),
          T(b % 2 == 0 ? "knows" : "likes"), T("a")});
      if (b % 3 == 2) {
        batch.updates.push_back(dynamic::TripleUpdate{
            dynamic::UpdateKind::kDelete, T("n" + std::to_string(b - 1)),
            T((b - 1) % 2 == 0 ? "knows" : "likes"), T("a")});
      }
      maintainer.ApplyBatch(batch);
      std::shared_ptr<const ServingState> next =
          ServingState::Capture(maintainer);
      record(next);
      service.Publish(std::move(next));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true);
  });

  std::vector<std::thread> submitters;
  std::atomic<size_t> failures{0};
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load()) {
        const size_t qi = i++ % texts.size();
        Result<exec::QueryResponse> r =
            service.Execute(exec::QueryRequest::FromText(texts[qi]));
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> lock(answers_mutex);
        answers.push_back(Answer{qi, r->generation,
                                 std::move(r->bindings)});
      }
    });
  }
  for (auto& s : submitters) s.join();
  updater.join();
  service.Shutdown();
  EXPECT_EQ(failures.load(), 0u);

  ASSERT_FALSE(answers.empty());
  size_t checked = 0;
  for (const Answer& a : answers) {
    auto oracle_it = oracle.find(a.generation);
    ASSERT_NE(oracle_it, oracle.end())
        << "answer reports unpublished generation " << a.generation;
    const rdf::RdfGraph& id_space = states.at(a.generation)->graph();
    EXPECT_EQ(LexRows(a.bindings, id_space), oracle_it->second[a.qi])
        << "generation " << a.generation << " query " << a.qi;
    ++checked;
  }
  EXPECT_EQ(checked, answers.size());
}

// ------------------------------------------------- unified API error path

TEST(ExecuteRequestTest, ParseErrorCarriesQueryText) {
  auto state = SmallState();
  Result<exec::QueryResponse> r =
      state->distributed().Execute(exec::QueryRequest::FromText("NOT SPARQL"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("NOT SPARQL"), std::string::npos);
}

// ----------------------------------------------------------- slow-query log

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string UniquePath(const std::string& stem) {
  return ::testing::TempDir() + stem + "." + std::to_string(::getpid());
}

TEST(SlowQueryLogTest, LogsOnlyQueriesOverThreshold) {
  QueryServiceOptions options;
  options.slow_query.path = UniquePath("slow_over");
  options.slow_query.threshold_ms = 0.0001;  // everything is "slow"
  options.slow_query.keep_traces = false;
  {
    QueryService service(SmallState(), options);
    ASSERT_TRUE(service
                    .Execute(exec::QueryRequest::FromText(
                        "SELECT * WHERE { ?x <t:knows> ?y . }"))
                    .ok());
    ASSERT_NE(service.slow_query_log(), nullptr);
    EXPECT_EQ(service.slow_query_log()->entries_written(), 1u);
  }
  const std::vector<std::string> lines = ReadLines(options.slow_query.path);
  ASSERT_EQ(lines.size(), 1u);
  Result<obs::JsonValue> entry = obs::ParseJson(lines[0]);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  // trace_id appears only when tracing is live (see the traced test).
  for (const char* field : {"latency_ms", "queue_wait_ms", "text",
                            "shape_key", "plan", "complete", "rows"}) {
    EXPECT_NE(entry->Find(field), nullptr) << field;
  }
  EXPECT_NE(entry->Find("text")->str.find("knows"), std::string::npos);
  EXPECT_NE(entry->Find("plan")->Find("cls"), nullptr);
  std::remove(options.slow_query.path.c_str());
}

TEST(SlowQueryLogTest, FastQueriesAreNotLogged) {
  QueryServiceOptions options;
  options.slow_query.path = UniquePath("slow_none");
  options.slow_query.threshold_ms = 1e9;
  QueryService service(SmallState(), options);
  ASSERT_TRUE(service
                  .Execute(exec::QueryRequest::FromText(
                      "SELECT * WHERE { ?x <t:knows> ?y . }"))
                  .ok());
  EXPECT_EQ(service.slow_query_log()->entries_written(), 0u);
  EXPECT_TRUE(ReadLines(options.slow_query.path).empty());
}

TEST(SlowQueryLogTest, FailedQueriesAreLoggedWithTheError) {
  QueryServiceOptions options;
  options.slow_query.path = UniquePath("slow_err");
  options.slow_query.threshold_ms = 0.0001;
  options.slow_query.keep_traces = false;
  QueryService service(SmallState(), options);
  ASSERT_FALSE(
      service.Execute(exec::QueryRequest::FromText("NOT SPARQL")).ok());
  const std::vector<std::string> lines = ReadLines(options.slow_query.path);
  ASSERT_EQ(lines.size(), 1u);
  Result<obs::JsonValue> entry = obs::ParseJson(lines[0]);
  ASSERT_TRUE(entry.ok());
  ASSERT_NE(entry->Find("error"), nullptr);
  EXPECT_FALSE(entry->Find("error")->str.empty());
  std::remove(options.slow_query.path.c_str());
}

TEST(SlowQueryLogTest, RotatesOnceAtMaxBytesAndStaysBounded) {
  QueryServiceOptions options;
  options.slow_query.path = UniquePath("slow_rot");
  options.slow_query.threshold_ms = 0.0001;
  options.slow_query.max_bytes = 2048;
  options.slow_query.keep_traces = false;
  QueryService service(SmallState(), options);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(service
                    .Execute(exec::QueryRequest::FromText(
                        "SELECT * WHERE { ?x <t:knows> ?y . }"))
                    .ok());
  }
  EXPECT_EQ(service.slow_query_log()->entries_written(), 50u);
  struct ::stat live;
  ASSERT_EQ(::stat(options.slow_query.path.c_str(), &live), 0);
  EXPECT_LE(static_cast<uint64_t>(live.st_size),
            options.slow_query.max_bytes);
  // Exactly one rotation generation: live file + .old, nothing else.
  struct ::stat old;
  ASSERT_EQ(::stat((options.slow_query.path + ".old").c_str(), &old), 0)
      << "rotation never happened";
  EXPECT_LE(static_cast<uint64_t>(old.st_size), options.slow_query.max_bytes);
  // Every retained line is still valid standalone JSON.
  for (const std::string& line : ReadLines(options.slow_query.path)) {
    EXPECT_TRUE(obs::ParseJson(line).ok()) << line;
  }
  std::remove(options.slow_query.path.c_str());
  std::remove((options.slow_query.path + ".old").c_str());
}

TEST(SlowQueryLogTest, TracedSlowQueryRetainsItsMergedTrace) {
  obs::StartTracing();
  QueryServiceOptions options;
  options.slow_query.path = UniquePath("slow_trace");
  options.slow_query.threshold_ms = 0.0001;
  {
    QueryService service(SmallState(), options);
    ASSERT_TRUE(service
                    .Execute(exec::QueryRequest::FromText(
                        "SELECT * WHERE { ?x <t:knows> ?y . }"))
                    .ok());
  }
  obs::StopTracing();
  const std::vector<std::string> lines = ReadLines(options.slow_query.path);
  ASSERT_EQ(lines.size(), 1u);
  Result<obs::JsonValue> entry = obs::ParseJson(lines[0]);
  ASSERT_TRUE(entry.ok());
  const obs::JsonValue* trace_id = entry->Find("trace_id");
  ASSERT_NE(trace_id, nullptr);
  EXPECT_GT(trace_id->number, 0.0);
  const obs::JsonValue* trace_file = entry->Find("trace_file");
  ASSERT_NE(trace_file, nullptr) << "keep_traces should retain the trace";
  std::ifstream trace(trace_file->str);
  ASSERT_TRUE(trace.good()) << trace_file->str;
  std::ostringstream buffer;
  buffer << trace.rdbuf();
  Result<obs::JsonValue> parsed = obs::ParseJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->array.empty());
  std::remove(options.slow_query.path.c_str());
  std::remove(trace_file->str.c_str());
}

// ------------------------------------------------------------- admin socket

TEST(AdminServerTest, ServesStatsOverTheSocket) {
  const std::string socket = UniquePath("admin_sock");
  AdminServer server(socket, [] { return std::string("{\"x\":1}"); });
  ASSERT_TRUE(server.Start().ok());
  for (int i = 1; i <= 3; ++i) {
    Result<std::string> stats = FetchStats(socket, 2000.0);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(*stats, "{\"x\":1}");
    EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(i));
  }
  server.Stop();
  EXPECT_FALSE(FetchStats(socket, 200.0).ok());
}

TEST(AdminServerTest, FetchFromMissingSocketFailsCleanly) {
  EXPECT_FALSE(FetchStats(UniquePath("admin_gone"), 200.0).ok());
}

}  // namespace
}  // namespace mpc::serve

#ifndef MPC_DYNAMIC_UPDATE_JOURNAL_H_
#define MPC_DYNAMIC_UPDATE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dsf/disjoint_set_forest.h"
#include "dynamic/drift_tracker.h"
#include "dynamic/update_log.h"
#include "rdf/types.h"

namespace mpc::dynamic {

/// Write-ahead journal of applied UpdateBatches, kept next to the
/// PartitionIo directory so a crashed `mpc update` stream can be
/// replayed instead of re-running MPC from scratch (DESIGN.md §5f).
///
/// On-disk format (`journal.mpcwal` inside the journal directory): a
/// header line `mpc-journal v1 <fingerprint-hex>` binding the journal to
/// the seed partitioning, then one frame per batch:
///
///   batch <seq> <updates> <checksum-hex>
///   <updates lines in UpdateLog syntax: "+ <s> <p> <o> .">
///   commit <seq>
///
/// The checksum is FNV-1a over the payload lines (bytes between the
/// `batch` and `commit` lines). Append() writes the whole frame with one
/// write(2) and fsyncs before returning, so a frame is durable before
/// the batch's effects are considered applied (write-ahead ordering:
/// the maintainer journals first, applies second).
///
/// Replay() tolerates exactly one torn frame at the tail — the expected
/// residue of a crash mid-append — by dropping it with a warning. A complete
/// frame with a bad checksum, or garbage followed by more frames, is
/// corruption and fails hard.
class UpdateJournal {
 public:
  /// One recovered journal frame.
  struct Entry {
    uint64_t seq = 0;
    UpdateBatch batch;
  };

  UpdateJournal() = default;
  ~UpdateJournal();
  UpdateJournal(UpdateJournal&& other) noexcept;
  UpdateJournal& operator=(UpdateJournal&& other) noexcept;
  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;

  /// Journal file path inside `dir`.
  static std::string JournalPath(const std::string& dir);

  /// Opens `dir`'s journal for appending, creating the directory and the
  /// file (with a fsynced header) on first use. An existing journal must
  /// carry the same fingerprint — a journal belongs to one seed
  /// partitioning; mixing them would replay updates onto the wrong
  /// state.
  static Result<UpdateJournal> Open(const std::string& dir,
                                    uint64_t fingerprint);

  /// Appends one batch frame and fsyncs. `seq` must be the 1-based batch
  /// sequence number (strictly increasing across the journal's life).
  Status Append(uint64_t seq, const UpdateBatch& batch);

  bool is_open() const { return fd_ >= 0; }

  /// Reads every committed frame with seq > after_seq, in order. A torn
  /// final frame (crash mid-append) is dropped with a warning; earlier
  /// corruption is an error. A missing journal file yields no entries.
  static Result<std::vector<Entry>> Replay(const std::string& dir,
                                           uint64_t fingerprint,
                                           uint64_t after_seq);

 private:
  int fd_ = -1;
};

/// Serialized IncrementalMaintainer state — everything needed to
/// reconstruct a maintainer bit-for-bit without replaying the stream
/// from the seed: the grown dictionaries, the frozen snapshot triples,
/// the placement map, live crossing counters, the added/deleted sets,
/// the online DSF forest (verbatim — its tree shape is
/// history-dependent) and the drift counters.
struct MaintainerState {
  /// Batches applied when the state was captured; journal replay resumes
  /// at seq + 1.
  uint64_t seq = 0;
  uint32_t k = 0;
  /// Dictionary lexical forms in id order (id i = terms[i]).
  std::vector<std::string> vertex_terms;
  std::vector<std::string> property_terms;
  /// The frozen snapshot of the last full (re)partition, sorted by
  /// (property, subject, object).
  std::vector<rdf::Triple> snapshot_triples;
  /// Owner site per vertex, covering the grown universe.
  std::vector<uint32_t> assignment;
  /// Live crossing edges per property.
  std::vector<uint64_t> crossing_count;
  /// Distinct live crossing edges (|E^c|).
  uint64_t num_crossing_edges = 0;
  /// Triples appended since the snapshot / tombstones over snapshot ∪
  /// added, both in canonical sorted order.
  std::vector<rdf::Triple> added;
  std::vector<rdf::Triple> deleted;
  dsf::DsfState forest;
  DriftTracker::State tracker;
  /// Internal deletes since the forest was last rebuilt; drives the
  /// tombstone-triggered rebuild so recovery rebuilds at the same batch
  /// as an uninterrupted run.
  uint64_t forest_stale_deletes = 0;
  /// Property ids in L_cross at the last anchor, sorted — the weighted
  /// drift seed stays recomputable under whatever weights the restored
  /// maintainer is given.
  std::vector<uint32_t> seed_crossing;
  /// Lifetime hot-vertex moves (a restored serving capture must keep
  /// refusing the pack-time segment overlay once ownership moved).
  uint64_t migrations = 0;

  bool operator==(const MaintainerState&) const = default;
};

/// Atomic checkpoint persistence: Write() serializes to a temp file,
/// fsyncs, renames to `checkpoint_<seq>.ckpt` and fsyncs the directory,
/// so a crash leaves either the old checkpoint set or the new one —
/// never a half-written file under the final name. The two most recent
/// checkpoints are kept; older ones are garbage-collected.
class CheckpointIo {
 public:
  static std::string CheckpointPath(const std::string& dir, uint64_t seq);

  static Status Write(const MaintainerState& state, uint64_t fingerprint,
                      const std::string& dir);

  /// Loads the newest valid checkpoint. Falls back to the previous one
  /// (with a warning) if the newest fails to parse; NotFound when the
  /// directory holds no checkpoints at all.
  static Result<MaintainerState> LoadLatest(const std::string& dir,
                                            uint64_t fingerprint);
};

}  // namespace mpc::dynamic

#endif  // MPC_DYNAMIC_UPDATE_JOURNAL_H_

#ifndef MPC_DYNAMIC_DRIFT_TRACKER_H_
#define MPC_DYNAMIC_DRIFT_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "partition/partitioning.h"

namespace mpc::dynamic {

/// Live health metrics of a maintained partitioning, measured against the
/// seed state (the moment the partitioning was last computed from
/// scratch). Every field is maintained incrementally — computing a
/// snapshot is O(k), never O(|E|).
struct DriftMetrics {
  /// Triples currently live (inserts minus deletes, set semantics).
  size_t live_triples = 0;
  /// |L_cross| right after the last full (re)partition.
  size_t seed_crossing_properties = 0;
  /// Current |L_cross| — the quantity MPC minimizes; growth here is the
  /// primary drift signal (each new crossing property makes previously
  /// independent queries require joins).
  size_t crossing_properties = 0;
  /// Current |E^c| (distinct live crossing edges).
  size_t crossing_edges = 0;
  /// crossing_properties / seed - 1; 0 when at or below the seed (and
  /// when the seed is 0 but nothing crosses yet).
  double lcross_growth = 0.0;
  /// max_i |V_i| / (|V|/k) over the maintained vertex universe
  /// (tombstoned vertices keep their owner until a repartition).
  double balance_ratio = 0.0;
  /// Dead entries still occupying site stores / total stored entries;
  /// measures the lazy-deletion garbage queries must filter around.
  double tombstone_ratio = 0.0;
  /// Live stored entries / live triples (>= 1; the 1-hop replication
  /// overhead of Def. 3.3).
  double replication_ratio = 0.0;
  /// Largest WCC of G[L_in] in the online forest — an overapproximation
  /// after deletes (the forest never splits), exact under insert-only
  /// streams (and after a forest rebuild; see
  /// MaintainerOptions::forest_rebuild_tombstone_ratio). Compared against
  /// internal_component_budget, the Def. 4.2 budget.
  size_t max_internal_component = 0;
  /// (1+eps)|V|/k over the maintained vertex universe — the Def. 4.2
  /// ceiling max_internal_component is measured against. 0 when the
  /// maintainer does not supply one.
  size_t internal_component_budget = 0;

  /// Workload-weighted |L_cross|: sum of W(p) over p currently in
  /// L_cross, where W(p) is the per-property query weight the maintainer
  /// was given (1.0 for properties beyond the weight vector). 0 when no
  /// weights are configured — the weighted threshold is then inert.
  double weighted_crossing_properties = 0.0;
  /// Weighted |L_cross| right after the last full (re)partition,
  /// measured with the current weights.
  double seed_weighted_crossing_properties = 0.0;
  /// weighted_crossing_properties / seed - 1 (0 at or below the seed).
  double weighted_lcross_growth = 0.0;

  size_t updates_applied = 0;
  size_t batches_applied = 0;
  size_t repartitions = 0;
  /// Hot-vertex moves applied by the migration escalation (lifetime).
  size_t migrations = 0;
};

/// When to abandon incremental maintenance and recompute the partitioning
/// from scratch. Evaluated at batch boundaries.
struct RepartitionPolicy {
  enum class Kind {
    /// Never repartition; drift is reported but unbounded.
    kNever,
    /// Every `period_batches` applied batches.
    kPeriodic,
    /// When a drift metric exceeds its bound (the default).
    kThreshold,
  };

  Kind kind = Kind::kThreshold;

  /// kPeriodic: batches between repartitions.
  size_t period_batches = 64;

  /// kThreshold: fire when crossing_properties > LcrossBound(seed) =
  /// max(seed * (1 + max_lcross_growth), seed + min_lcross_slack). The
  /// absolute slack keeps tiny seeds (|L_cross| of 2-3) from thrashing
  /// on every new crossing property.
  double max_lcross_growth = 0.5;
  size_t min_lcross_slack = 4;
  /// kThreshold: fire when tombstone_ratio exceeds this.
  double max_tombstone_ratio = 0.25;
  /// kThreshold: fire when balance_ratio exceeds this (0 disables).
  double max_balance_ratio = 0.0;
  /// kThreshold: fire when max_internal_component exceeds
  /// internal_component_budget (the Def. 4.2 ceiling). Off by default:
  /// the online forest over-approximates after deletes, so without the
  /// maintainer's forest rebuild this check over-fires on delete-heavy
  /// streams.
  bool enforce_component_budget = false;

  /// |L_cross| ceiling the threshold policy enforces for a given seed.
  size_t LcrossBound(size_t seed) const;

  /// Weighted analogue of LcrossBound: max(seed * (1 + max_lcross_growth),
  /// seed + min_lcross_slack) in weight units. Under uniform weight 1.0
  /// this fires at exactly the same points as the integer check; a hot
  /// property (large W) going crossing eats the slack in one step and
  /// fires sooner than a cold one.
  double WeightedLcrossBound(double seed) const;

  /// Returns a human-readable trigger reason, or empty when the
  /// partitioning should be kept.
  std::string Evaluate(const DriftMetrics& m) const;
};

/// Incrementally maintained counters behind DriftMetrics. The maintainer
/// calls the On*() hooks on every live-set transition; stored-entry
/// accounting counts one slot per internal edge and two per crossing
/// edge (the 1-hop replicas).
class DriftTracker {
 public:
  /// The tracker's complete internal state — incremental counters plus
  /// the lifetime totals — exported for checkpoint serialization and
  /// restored bit-for-bit on recovery.
  struct State {
    uint64_t live_internal = 0;
    uint64_t live_crossing = 0;
    uint64_t dead_slots = 0;
    uint64_t seed_lcross = 0;
    uint64_t updates_applied = 0;
    uint64_t batches_applied = 0;
    uint64_t repartitions = 0;

    bool operator==(const State&) const = default;
  };

  State ExportState() const {
    return State{live_internal_,   live_crossing_,   dead_slots_,
                 seed_lcross_,     updates_applied_, batches_applied_,
                 repartitions_};
  }

  void RestoreState(const State& s) {
    live_internal_ = s.live_internal;
    live_crossing_ = s.live_crossing;
    dead_slots_ = s.dead_slots;
    seed_lcross_ = s.seed_lcross;
    updates_applied_ = s.updates_applied;
    batches_applied_ = s.batches_applied;
    repartitions_ = s.repartitions;
  }

  size_t batches_applied() const { return batches_applied_; }

  /// Re-seeds the tracker from a freshly (re)materialized partitioning:
  /// `internal_edges` live internal edges, `crossing_edges` distinct live
  /// crossing edges, `seed_lcross` = |L_cross| at this moment.
  void Reset(size_t internal_edges, size_t crossing_edges,
             size_t seed_lcross);

  void OnInsertInternal(bool resurrected);
  void OnDeleteInternal();
  void OnInsertCrossing(bool resurrected);
  void OnDeleteCrossing();
  void OnUpdateApplied() { ++updates_applied_; }
  void OnBatchApplied() { ++batches_applied_; }
  void OnRepartition() { ++repartitions_; }

  /// A hot-vertex migration flipped a live crossing edge internal. The
  /// stale replica entry stays in the old site store until compaction,
  /// so one of the edge's two slots turns into garbage.
  void OnMigrateCrossingToInternal() {
    --live_crossing_;
    ++live_internal_;
    dead_slots_ += 1;
  }

  /// A migration pushed a live internal edge across the cut. The second
  /// replica slot is accounted logically (compaction materializes it).
  void OnMigrateInternalToCrossing() {
    --live_internal_;
    ++live_crossing_;
  }

  size_t live_triples() const {
    return live_internal_ + live_crossing_;
  }

  /// Assembles the metrics; `partitioning` supplies |L_cross| and the
  /// balance ratio, `max_internal_component` comes from the online DSF,
  /// `internal_component_budget` is the maintainer-computed (1+eps)|V|/k
  /// Def. 4.2 ceiling (0 when not enforced).
  DriftMetrics Snapshot(const partition::Partitioning& partitioning,
                        size_t max_internal_component,
                        size_t internal_component_budget = 0) const;

 private:
  size_t live_internal_ = 0;   // live internal edges (1 slot each)
  size_t live_crossing_ = 0;   // live distinct crossing edges (2 slots)
  size_t dead_slots_ = 0;      // tombstoned entries still stored
  size_t seed_lcross_ = 0;
  size_t updates_applied_ = 0;
  size_t batches_applied_ = 0;
  size_t repartitions_ = 0;
};

}  // namespace mpc::dynamic

#endif  // MPC_DYNAMIC_DRIFT_TRACKER_H_

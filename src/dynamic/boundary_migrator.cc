#include "dynamic/boundary_migrator.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/trace.h"

namespace mpc::dynamic {

namespace {

rdf::VertexId Other(const rdf::Triple& t, rdf::VertexId v) {
  return t.subject == v ? t.object : t.subject;
}

/// One evaluated (vertex, target-site) move. dlcross / dweighted_edges
/// are signed deltas: negative = improvement.
struct MoveEval {
  bool valid = false;
  rdf::VertexId v = 0;
  uint32_t to = 0;
  double dlcross = 0.0;
  double dweighted_edges = 0.0;
  std::ptrdiff_t dedges = 0;
  size_t retires = 0;
};

/// Strict "a beats b": larger weighted |L_cross| reduction first, then
/// larger weighted edge reduction, then lower vertex id, lower site.
bool Better(const MoveEval& a, const MoveEval& b) {
  if (!a.valid) return false;
  if (!b.valid) return true;
  if (a.dlcross != b.dlcross) return a.dlcross < b.dlcross;
  if (a.dweighted_edges != b.dweighted_edges) {
    return a.dweighted_edges < b.dweighted_edges;
  }
  if (a.v != b.v) return a.v < b.v;
  return a.to < b.to;
}

}  // namespace

void BoundaryMigrator::Invalidate() {
  index_built_ = false;
  incident_.clear();
}

void BoundaryMigrator::OnInsert(const rdf::Triple& t, bool maybe_present) {
  if (!index_built_) return;
  const size_t need =
      static_cast<size_t>(std::max(t.subject, t.object)) + 1;
  if (incident_.size() < need) incident_.resize(need);
  if (maybe_present) {
    // A resurrected edge may pre-date the index build (absent) or have
    // been deleted after it (present); only the former needs appending.
    const std::vector<rdf::Triple>& row = incident_[t.subject];
    if (std::find(row.begin(), row.end(), t) != row.end()) return;
  }
  incident_[t.subject].push_back(t);
  if (t.object != t.subject) incident_[t.object].push_back(t);
}

void BoundaryMigrator::BuildIndex(const Context& ctx) {
  MPC_TRACE_SPAN("dynamic.migrate.build_index");
  incident_.assign(ctx.num_vertices, {});
  for (const rdf::Triple& t : ctx.live_triples()) {
    incident_[t.subject].push_back(t);
    if (t.object != t.subject) incident_[t.object].push_back(t);
  }
  index_built_ = true;
}

MigrationReport BoundaryMigrator::Migrate(const Context& ctx) {
  MPC_TRACE_SPAN("dynamic.migrate.event");
  MigrationReport report;
  if (!index_built_) BuildIndex(ctx);
  if (incident_.size() < ctx.num_vertices) {
    incident_.resize(ctx.num_vertices);
  }

  // Rank the boundary once per event: a cheap pre-cut by crossing
  // degree bounds the exact (weighted-heat) pass to a few candidate
  // rows, keeping the event at O(|V| + candidates x degree).
  std::vector<rdf::VertexId> boundary;
  for (size_t v = 0; v < ctx.crossing_degree->size(); ++v) {
    if ((*ctx.crossing_degree)[v] > 0) {
      boundary.push_back(static_cast<rdf::VertexId>(v));
    }
  }
  const size_t precut = options_.max_candidates * 4;
  if (boundary.size() > precut) {
    std::partial_sort(
        boundary.begin(), boundary.begin() + precut, boundary.end(),
        [&](rdf::VertexId a, rdf::VertexId b) {
          const uint32_t da = (*ctx.crossing_degree)[a];
          const uint32_t db = (*ctx.crossing_degree)[b];
          if (da != db) return da > db;
          return a < b;
        });
    boundary.resize(precut);
  }

  // Liveness and property weight cannot change mid-event (moves touch
  // only the assignment), so each candidate row is filtered ONCE into a
  // flat (neighbor, property, weight) list here; the greedy rounds below
  // then cost two array reads per edge instead of two hash probes plus a
  // binary search per visit.
  struct Edge {
    rdf::VertexId u;
    rdf::PropertyId p;
    double w;
  };
  struct Hot {
    double heat = 0.0;
    rdf::VertexId v = 0;
    std::vector<Edge> edges;
  };
  std::vector<Hot> hot;
  hot.reserve(boundary.size());
  for (rdf::VertexId v : boundary) {
    Hot h;
    h.v = v;
    for (const rdf::Triple& t : incident_[v]) {
      if (!ctx.is_live(t)) continue;
      const rdf::VertexId u = Other(t, v);
      if (u == v) continue;
      const double w = ctx.weight_of(t.property);
      if ((*ctx.part)[u] != (*ctx.part)[v]) h.heat += w;
      h.edges.push_back({u, t.property, w});
    }
    if (h.heat > 0.0) hot.push_back(std::move(h));
  }
  std::sort(hot.begin(), hot.end(), [](const Hot& a, const Hot& b) {
    if (a.heat != b.heat) return a.heat > b.heat;
    return a.v < b.v;
  });
  if (hot.size() > options_.max_candidates) {
    hot.resize(options_.max_candidates);
  }

  // Greedy: per round, the best strictly-improving move across all
  // candidates x target sites; stop as soon as none improves. Gains are
  // re-evaluated each round against the mutated part/crossing counters.
  std::vector<double> mass(ctx.k, 0.0);
  std::vector<std::pair<rdf::PropertyId, int>> dcount;
  for (size_t round = 0; round < options_.max_moves; ++round) {
    MoveEval best;
    for (const Hot& h : hot) {
      const rdf::VertexId v = h.v;
      const uint32_t from = (*ctx.part)[v];
      // Only sites already holding crossing weight of v are worth
      // trying — moving toward anything else can only add crossings.
      std::fill(mass.begin(), mass.end(), 0.0);
      for (const Edge& e : h.edges) {
        const uint32_t pu = (*ctx.part)[e.u];
        if (pu != from) mass[pu] += e.w;
      }
      for (uint32_t to = 0; to < ctx.k; ++to) {
        if (to == from || mass[to] <= 0.0) continue;
        if (ctx.balance_cap > 0 && ctx.owned(to) + 1 > ctx.balance_cap) {
          continue;
        }
        dcount.clear();
        double dw = 0.0;
        std::ptrdiff_t de = 0;
        for (const Edge& e : h.edges) {
          const uint32_t pu = (*ctx.part)[e.u];
          const bool was_crossing = pu != from;
          const bool now_crossing = pu != to;
          if (was_crossing == now_crossing) continue;
          const int d = now_crossing ? +1 : -1;
          de += d;
          dw += d * e.w;
          dcount.emplace_back(e.p, d);
        }
        // Aggregate the per-edge deltas per property, then price the
        // L_cross membership flips.
        std::sort(dcount.begin(), dcount.end());
        double dlcross = 0.0;
        size_t retires = 0;
        for (size_t i = 0; i < dcount.size();) {
          const rdf::PropertyId p = dcount[i].first;
          std::ptrdiff_t d = 0;
          for (; i < dcount.size() && dcount[i].first == p; ++i) {
            d += dcount[i].second;
          }
          const std::ptrdiff_t old =
              static_cast<std::ptrdiff_t>((*ctx.crossing_count)[p]);
          const bool was_in = old > 0;
          const bool now_in = old + d > 0;
          if (was_in && !now_in) {
            dlcross -= ctx.weight_of(p);
            ++retires;
          } else if (!was_in && now_in) {
            dlcross += ctx.weight_of(p);
          }
        }
        if (!(dlcross < 0.0 || (dlcross == 0.0 && dw < 0.0))) continue;
        MoveEval e;
        e.valid = true;
        e.v = v;
        e.to = to;
        e.dlcross = dlcross;
        e.dweighted_edges = dw;
        e.dedges = de;
        e.retires = retires;
        if (Better(e, best)) best = e;
      }
    }
    if (!best.valid) break;
    ctx.apply_move(best.v, best.to, incident_[best.v]);
    ++report.moves;
    report.properties_retired += best.retires;
    report.edges_internalized -= best.dedges;
    report.weighted_lcross_gain -= best.dlcross;
  }
  return report;
}

}  // namespace mpc::dynamic

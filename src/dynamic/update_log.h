#ifndef MPC_DYNAMIC_UPDATE_LOG_H_
#define MPC_DYNAMIC_UPDATE_LOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mpc::dynamic {

/// Whether a streamed triple enters or leaves the graph.
enum class UpdateKind : uint8_t { kInsert, kDelete };

/// One streaming triple update in lexical (N-Triples term) form — the
/// wire format an ingest front end would deliver. Terms are
/// dictionary-encoded when the update is applied, so an insert may
/// introduce never-seen vertices or properties.
struct TripleUpdate {
  UpdateKind kind = UpdateKind::kInsert;
  std::string subject;
  std::string property;
  std::string object;

  bool operator==(const TripleUpdate&) const = default;
};

/// A group of updates the maintainer applies as one unit; drift metrics
/// and the repartition policy are evaluated at batch boundaries, the
/// granularity a real ingest pipeline commits at.
struct UpdateBatch {
  std::vector<TripleUpdate> updates;

  bool empty() const { return updates.empty(); }
  size_t size() const { return updates.size(); }
};

/// Text serialization of an update stream, one update per line:
///
///   + <s> <p> <o> .        insert
///   - <s> <p> <o> .        delete
///
/// Terms use N-Triples lexical forms (IRIs, literals with optional
/// language tag or datatype, blank nodes). A blank line or a '#' comment
/// line ends the current batch; consecutive separators do not produce
/// empty batches. The trailing '.' is optional.
class UpdateLog {
 public:
  /// Parses a whole update document into batches. Stops at the first
  /// malformed line and reports its 1-based line number.
  static Result<std::vector<UpdateBatch>> ParseDocument(
      std::string_view text);

  /// Reads and parses an update file from disk.
  static Result<std::vector<UpdateBatch>> LoadFile(const std::string& path);

  /// Serializes batches back to the text format (batches separated by
  /// blank lines); Load(Save(x)) == x.
  static std::string Serialize(const std::vector<UpdateBatch>& batches);

  /// Writes Serialize(batches) to `path`.
  static Status SaveFile(const std::vector<UpdateBatch>& batches,
                         const std::string& path);
};

}  // namespace mpc::dynamic

#endif  // MPC_DYNAMIC_UPDATE_LOG_H_

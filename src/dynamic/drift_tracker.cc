#include "dynamic/drift_tracker.h"

#include <algorithm>
#include <cmath>

namespace mpc::dynamic {

size_t RepartitionPolicy::LcrossBound(size_t seed) const {
  const size_t relative = static_cast<size_t>(
      std::floor(static_cast<double>(seed) * (1.0 + max_lcross_growth)));
  return std::max(relative, seed + min_lcross_slack);
}

double RepartitionPolicy::WeightedLcrossBound(double seed) const {
  return std::max(seed * (1.0 + max_lcross_growth),
                  seed + static_cast<double>(min_lcross_slack));
}

std::string RepartitionPolicy::Evaluate(const DriftMetrics& m) const {
  switch (kind) {
    case Kind::kNever:
      return {};
    case Kind::kPeriodic:
      if (period_batches > 0 && m.batches_applied > 0 &&
          m.batches_applied % period_batches == 0) {
        return "periodic: " + std::to_string(period_batches) +
               " batches applied";
      }
      return {};
    case Kind::kThreshold: {
      const size_t bound = LcrossBound(m.seed_crossing_properties);
      if (m.crossing_properties > bound) {
        return "|L_cross| " + std::to_string(m.crossing_properties) +
               " exceeds bound " + std::to_string(bound) + " (seed " +
               std::to_string(m.seed_crossing_properties) + ")";
      }
      if (m.weighted_crossing_properties >
          WeightedLcrossBound(m.seed_weighted_crossing_properties)) {
        return "weighted |L_cross| " +
               std::to_string(m.weighted_crossing_properties) +
               " exceeds bound " +
               std::to_string(WeightedLcrossBound(
                   m.seed_weighted_crossing_properties)) +
               " (seed " +
               std::to_string(m.seed_weighted_crossing_properties) + ")";
      }
      if (m.tombstone_ratio > max_tombstone_ratio) {
        return "tombstone ratio " + std::to_string(m.tombstone_ratio) +
               " exceeds " + std::to_string(max_tombstone_ratio);
      }
      if (max_balance_ratio > 0.0 && m.balance_ratio > max_balance_ratio) {
        return "balance ratio " + std::to_string(m.balance_ratio) +
               " exceeds " + std::to_string(max_balance_ratio);
      }
      if (enforce_component_budget && m.internal_component_budget > 0 &&
          m.max_internal_component > m.internal_component_budget) {
        return "internal component " +
               std::to_string(m.max_internal_component) +
               " exceeds Def. 4.2 budget " +
               std::to_string(m.internal_component_budget);
      }
      return {};
    }
  }
  return {};
}

void DriftTracker::Reset(size_t internal_edges, size_t crossing_edges,
                         size_t seed_lcross) {
  live_internal_ = internal_edges;
  live_crossing_ = crossing_edges;
  dead_slots_ = 0;
  seed_lcross_ = seed_lcross;
}

void DriftTracker::OnInsertInternal(bool resurrected) {
  ++live_internal_;
  if (resurrected) dead_slots_ -= 1;
}

void DriftTracker::OnDeleteInternal() {
  --live_internal_;
  dead_slots_ += 1;
}

void DriftTracker::OnInsertCrossing(bool resurrected) {
  ++live_crossing_;
  if (resurrected) dead_slots_ -= 2;
}

void DriftTracker::OnDeleteCrossing() {
  --live_crossing_;
  dead_slots_ += 2;
}

DriftMetrics DriftTracker::Snapshot(
    const partition::Partitioning& partitioning,
    size_t max_internal_component,
    size_t internal_component_budget) const {
  DriftMetrics m;
  m.live_triples = live_internal_ + live_crossing_;
  m.seed_crossing_properties = seed_lcross_;
  m.crossing_properties = partitioning.num_crossing_properties();
  m.crossing_edges = partitioning.num_crossing_edges();
  if (seed_lcross_ > 0 && m.crossing_properties > seed_lcross_) {
    m.lcross_growth = static_cast<double>(m.crossing_properties) /
                          static_cast<double>(seed_lcross_) -
                      1.0;
  }
  m.balance_ratio = partitioning.BalanceRatio();
  const size_t live_slots = live_internal_ + 2 * live_crossing_;
  const size_t stored = live_slots + dead_slots_;
  m.tombstone_ratio =
      stored == 0 ? 0.0
                  : static_cast<double>(dead_slots_) /
                        static_cast<double>(stored);
  m.replication_ratio =
      m.live_triples == 0 ? 1.0
                          : static_cast<double>(live_slots) /
                                static_cast<double>(m.live_triples);
  m.max_internal_component = max_internal_component;
  m.internal_component_budget = internal_component_budget;
  m.updates_applied = updates_applied_;
  m.batches_applied = batches_applied_;
  m.repartitions = repartitions_;
  return m;
}

}  // namespace mpc::dynamic

#include "dynamic/update_log.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mpc::dynamic {

namespace {

/// Scans one N-Triples term starting at `pos` (no leading whitespace).
/// Returns the term's lexical form or an empty view on a syntax error,
/// advancing `pos` past the term either way.
std::string_view ScanTerm(std::string_view line, size_t* pos) {
  const size_t start = *pos;
  if (start >= line.size()) return {};
  const char c = line[start];
  size_t end;
  if (c == '<') {
    end = line.find('>', start);
    if (end == std::string_view::npos) return {};
    ++end;
  } else if (c == '_') {
    end = line.find_first_of(" \t\r", start);
    if (end == std::string_view::npos) end = line.size();
  } else if (c == '"') {
    // Closing quote is the first unescaped '"'.
    end = start + 1;
    while (end < line.size()) {
      if (line[end] == '\\') {
        end += 2;
      } else if (line[end] == '"') {
        break;
      } else {
        ++end;
      }
    }
    if (end >= line.size()) return {};
    ++end;
    // Optional @lang or ^^<datatype> suffix, glued to the quote.
    if (end < line.size() && line[end] == '@') {
      size_t stop = line.find_first_of(" \t\r", end);
      end = stop == std::string_view::npos ? line.size() : stop;
    } else if (end + 1 < line.size() && line[end] == '^' &&
               line[end + 1] == '^') {
      size_t close = line.find('>', end);
      if (close == std::string_view::npos) return {};
      end = close + 1;
    }
  } else {
    return {};
  }
  *pos = end;
  return line.substr(start, end - start);
}

void SkipWs(std::string_view line, size_t* pos) {
  while (*pos < line.size() &&
         (line[*pos] == ' ' || line[*pos] == '\t' || line[*pos] == '\r')) {
    ++(*pos);
  }
}

Status LineError(size_t line_no, const std::string& what) {
  return Status::ParseError("update log line " + std::to_string(line_no) +
                            ": " + what);
}

}  // namespace

Result<std::vector<UpdateBatch>> UpdateLog::ParseDocument(
    std::string_view text) {
  std::vector<UpdateBatch> batches;
  UpdateBatch current;
  auto flush = [&] {
    if (!current.empty()) {
      batches.push_back(std::move(current));
      current = UpdateBatch();
    }
  };

  size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    // A line ends at '\n', at '\r' (classic-Mac files), or at "\r\n"
    // (CRLF files, where the pair is folded into one terminator).
    size_t nl = text.find_first_of("\r\n");
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    if (nl == std::string_view::npos) {
      text = std::string_view();
    } else {
      size_t skip = nl + 1;
      if (text[nl] == '\r' && skip < text.size() && text[skip] == '\n') {
        ++skip;
      }
      text = text.substr(skip);
    }
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') {
      flush();  // batch separator
      continue;
    }
    if (stripped[0] != '+' && stripped[0] != '-') {
      return LineError(line_no, "expected '+' or '-' sign");
    }
    TripleUpdate update;
    update.kind = stripped[0] == '+' ? UpdateKind::kInsert
                                     : UpdateKind::kDelete;
    size_t pos = 1;
    SkipWs(stripped, &pos);
    std::string_view s = ScanTerm(stripped, &pos);
    SkipWs(stripped, &pos);
    std::string_view p = ScanTerm(stripped, &pos);
    SkipWs(stripped, &pos);
    std::string_view o = ScanTerm(stripped, &pos);
    if (s.empty() || p.empty() || o.empty()) {
      return LineError(line_no, "malformed triple");
    }
    SkipWs(stripped, &pos);
    if (pos < stripped.size() &&
        StripWhitespace(stripped.substr(pos)) != ".") {
      return LineError(line_no, "trailing garbage after triple");
    }
    update.subject = std::string(s);
    update.property = std::string(p);
    update.object = std::string(o);
    current.updates.push_back(std::move(update));
  }
  flush();
  return batches;
}

Result<std::vector<UpdateBatch>> UpdateLog::LoadFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open update log " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDocument(buffer.str());
}

std::string UpdateLog::Serialize(const std::vector<UpdateBatch>& batches) {
  std::string out;
  for (size_t b = 0; b < batches.size(); ++b) {
    if (b > 0) out += "\n";
    for (const TripleUpdate& u : batches[b].updates) {
      out += u.kind == UpdateKind::kInsert ? "+ " : "- ";
      out += u.subject;
      out += ' ';
      out += u.property;
      out += ' ';
      out += u.object;
      out += " .\n";
    }
  }
  return out;
}

Status UpdateLog::SaveFile(const std::vector<UpdateBatch>& batches,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot write update log " + path);
  out << Serialize(batches);
  if (!out) return Status::IoError("update log write failed: " + path);
  return Status::Ok();
}

}  // namespace mpc::dynamic

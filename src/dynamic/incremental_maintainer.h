#ifndef MPC_DYNAMIC_INCREMENTAL_MAINTAINER_H_
#define MPC_DYNAMIC_INCREMENTAL_MAINTAINER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "dsf/disjoint_set_forest.h"
#include "dynamic/boundary_migrator.h"
#include "dynamic/drift_tracker.h"
#include "dynamic/update_journal.h"
#include "dynamic/update_log.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "mpc/mpc_partitioner.h"
#include "partition/partitioning.h"
#include "rdf/graph.h"

namespace mpc::dynamic {

/// What to do when the replay queue hits MaintainerOptions::
/// max_replay_batches while a background repartition is still running.
enum class ReplayBackpressure {
  /// Block the producer: wait for the job and integrate it before
  /// applying the batch. Deterministic (the wait always happens exactly
  /// at the cap, regardless of how fast the job ran).
  kBlock,
  /// Abandon the in-flight job and re-anchor: start a fresh background
  /// repartition from the current live state, clearing the queue. Keeps
  /// the producer unblocked at the cost of the wasted partial run.
  kReanchor,
};

struct MaintainerOptions {
  /// When to abandon incremental maintenance for a full MPC re-run.
  RepartitionPolicy policy;
  /// Options for those re-runs; base.k is forced to the attached
  /// partitioning's k (the cluster does not resize mid-stream).
  core::MpcOptions mpc;
  /// Executor options for mid-stream queries (Execute).
  exec::ExecutorOptions executor;
  /// Worker threads for compaction, cluster builds and repartition runs
  /// (0 = hardware_concurrency). Update application itself is serial, so
  /// all maintained state is bit-identical at any value.
  int num_threads = 1;
  /// Run triggered repartitions on a background thread (the live
  /// partitioning keeps serving; updates applied meanwhile are replayed
  /// onto the new partitioning before the atomic swap). When false a
  /// trigger repartitions synchronously inside ApplyBatch.
  bool background_repartition = false;

  /// Durability (only active through OpenDurable; the plain constructor
  /// ignores these): directory holding the write-ahead journal and the
  /// checkpoints, kept next to the PartitionIo directory.
  std::string journal_dir;
  /// Checkpoint every N applied batches (0 = only after repartitions;
  /// a checkpoint is always written right after a repartition completes,
  /// so journal replay never has to re-run MPC).
  uint32_t checkpoint_every_batches = 0;

  /// Replay backpressure: cap on the replay queue while a background
  /// repartition runs (0 = unbounded). On hitting the cap the policy
  /// below applies.
  size_t max_replay_batches = 0;
  ReplayBackpressure backpressure = ReplayBackpressure::kBlock;

  /// Rebuild the online DSF forest from the live triples when
  /// tombstone_ratio exceeds this and internal deletes made the forest
  /// stale — the forest cannot split, so after delete-heavy streams its
  /// max component over-approximates the Def. 4.2 cost and would
  /// over-fire a budget-enforcing RepartitionPolicy (0 disables).
  double forest_rebuild_tombstone_ratio = 0.5;

  /// Per-property query weights driving the *weighted* drift signal:
  /// weighted |L_cross| = sum of W(p) over p in L_cross, with
  /// W(p) = property_weights[p] when p is inside the vector and 1.0 for
  /// properties beyond it (a never-queried property still counts like an
  /// unweighted one). Empty (the default) disables weighted tracking —
  /// the weighted metrics stay 0 and the weighted threshold is inert.
  /// Derived from a query log via workload::ComputeWorkloadPropertyWeights
  /// (the CLI maps count c to weight 1 + c) or fed live through
  /// SetPropertyWeights().
  std::vector<double> property_weights;

  /// Hot-vertex migration: the escalation level below a full repartition
  /// (see BoundaryMigrator). Off by default.
  MigrationOptions migration;
};

/// Outcome of applying one batch.
struct ApplyResult {
  /// Updates that changed the live set (dead->live / live->dead).
  size_t inserts = 0;
  size_t deletes = 0;
  /// Duplicate inserts and deletes of absent triples (RDF set semantics).
  size_t noops = 0;
  /// The policy fired after this batch.
  bool repartition_triggered = false;
  std::string trigger_reason;
  /// Hot-vertex moves the migration escalation applied on this batch
  /// (before any full repartition; when migration brought the drift back
  /// under the policy bound, repartition_triggered stays false).
  size_t migrated = 0;
  /// Weighted |L_cross| reduction those moves achieved.
  double migration_gain = 0.0;
  /// A full repartition completed and was swapped in (synchronous mode;
  /// in background mode the swap happens at a later integration point).
  bool repartitioned = false;
  /// Drift after the batch (and after the swap, if one happened).
  DriftMetrics drift;
  /// Outcome of the batch's durability work (journal append, checkpoint
  /// write). Always OK for a non-durable maintainer. A failed journal
  /// append aborts the batch: nothing was applied and the stream must
  /// stop (applying unjournaled batches would break recovery).
  Status durability;
};

/// Maintains an MPC partitioning under a stream of triple inserts and
/// deletes without full repartitioning (the PHD-Store-style adaptive
/// layer; see DESIGN.md "Dynamic maintenance").
///
/// Mechanics:
///  - Inserts dictionary-encode their terms, growing the graph's
///    dictionaries; never-seen vertices are placed at the other
///    endpoint's site when that keeps an internal property internal,
///    otherwise at the least-loaded site.
///  - An insert whose endpoints share a site extends E_i; one that
///    crosses sites extends both sites' replica lists per Def. 3.3-3.4
///    and bumps the property's crossing count — a formerly-internal
///    property entering L_cross is immediately visible to query
///    classification.
///  - Deletes are lazy: the triple is tombstoned (site vectors keep the
///    entry; compaction and store rebuilds filter it) and the
///    per-property crossing count is decremented — a property whose last
///    crossing edge dies leaves L_cross.
///  - Internal-property edges union into an online disjoint-set forest
///    (Section IV-D), tracking the WCC(G[L_in]) budget of Def. 4.2.
///  - A DriftTracker measures |L_cross| growth, balance, tombstone and
///    replication ratios; the RepartitionPolicy decides at batch
///    boundaries when to trigger a full MPC re-run, which runs serially
///    or on a background thread and is swapped in atomically.
///
/// Thread contract: single writer. All public methods must be called
/// from one thread; the only internal concurrency is the background
/// repartition job, which works exclusively on a private snapshot.
class IncrementalMaintainer {
 public:
  /// Takes ownership of the graph snapshot and its vertex-disjoint
  /// partitioning (assignment must cover the graph's vertices).
  IncrementalMaintainer(rdf::RdfGraph graph,
                        partition::Partitioning partitioning,
                        MaintainerOptions options = MaintainerOptions());

  /// Reconstructs a maintainer from a checkpointed state, bit-for-bit:
  /// the rebuilt graph re-interns every term in id order (identical
  /// ids), the partitioning is re-materialized from the snapshot and
  /// patched to the saved live counters, added triples are re-appended
  /// to the site vectors, and the forest/tracker are restored verbatim.
  IncrementalMaintainer(const MaintainerState& state,
                        MaintainerOptions options = MaintainerOptions());

  /// Durable construction: recovers from options.journal_dir (latest
  /// checkpoint + journal tail replay; from the seed graph/partitioning
  /// when no checkpoint exists yet), then attaches the journal so every
  /// subsequent ApplyBatch is write-ahead journaled. `fingerprint`
  /// (PartitionIo::Fingerprint of the seed directory) binds the journal
  /// to its partitioning. Replayed batches re-run triggered
  /// repartitions synchronously, so recovery is deterministic for a
  /// sync-mode stream.
  static Result<std::unique_ptr<IncrementalMaintainer>> OpenDurable(
      rdf::RdfGraph graph, partition::Partitioning partitioning,
      MaintainerOptions options, uint64_t fingerprint);

  ~IncrementalMaintainer();

  IncrementalMaintainer(const IncrementalMaintainer&) = delete;
  IncrementalMaintainer& operator=(const IncrementalMaintainer&) = delete;

  /// Applies one batch, evaluates the policy, and (if fired) triggers a
  /// repartition per MaintainerOptions.
  ApplyResult ApplyBatch(const UpdateBatch& batch);

  /// The graph snapshot plus dictionary growth. Dictionaries are always
  /// current (every live term resolves); triples() is the snapshot of
  /// the last full (re)partition and is NOT the live triple set — use
  /// LiveTriples() or MaterializeGraph() for that.
  const rdf::RdfGraph& graph() const { return graph_; }

  /// The maintained partitioning. Aggregate counters (|L_cross|, mask,
  /// crossing-edge count, owned-vertex counts) are exact; per-site
  /// triple vectors may still hold tombstoned entries.
  const partition::Partitioning& partitioning() const {
    return partitioning_;
  }

  DriftMetrics drift() const;

  bool IsLive(const rdf::Triple& t) const;
  size_t num_live_triples() const { return tracker_.live_triples(); }

  /// Live triples in canonical (property, subject, object) order.
  std::vector<rdf::Triple> LiveTriples() const;

  /// Tombstone-free copy of the maintained partitioning over the current
  /// id space: live edges only, extended-vertex lists recomputed. Its
  /// metrics must agree with the maintained counters (tested).
  partition::Partitioning CompactPartitioning() const;

  /// Fresh, compacted graph of the live triples (new dense ids).
  rdf::RdfGraph MaterializeGraph() const;

  /// Cached cluster over CompactPartitioning(); rebuilt only after the
  /// state changed. Invalidated by ApplyBatch and repartition swaps.
  const exec::Cluster& cluster();

  /// Runs a query against the current state (classification sees the
  /// up-to-date crossing set, so a query whose property went crossing
  /// mid-stream is decomposed, and one whose property retired from
  /// L_cross unions without joins). The response carries generation()
  /// so callers can tell exactly which state answered. Single-writer
  /// contract applies: call from the update thread, or snapshot with a
  /// serve::ServingState for concurrent queries.
  Result<exec::QueryResponse> Execute(const exec::QueryRequest& request);

  /// Monotone state-version counter: bumped by Attach, every ApplyBatch,
  /// and every repartition swap. Equal generations imply identical live
  /// state — the QueryService result cache's invalidation token.
  uint64_t generation() const { return generation_; }

  /// Synchronous full MPC re-run on the live graph + atomic swap.
  void RepartitionNow();

  /// True while a background repartition job is in flight.
  bool repartition_pending() const { return repartition_running_; }

  /// Blocks until the in-flight background job (if any) finishes, then
  /// integrates it: swap in the new graph/partitioning and replay the
  /// updates applied since the snapshot. No-op when nothing is pending.
  void WaitForRepartition();

  size_t repartition_count() const { return repartitions_; }

  /// Hot-vertex moves applied over the maintainer's lifetime (survives
  /// checkpoint/recovery). A serving capture may only reuse pack-time
  /// segments while this is 0 — a migration changes ownership without
  /// rewriting the site files.
  size_t migration_count() const { return migrations_; }

  /// Replaces the per-property query weights (see
  /// MaintainerOptions::property_weights) and re-derives the weighted
  /// |L_cross| and its seed under the new weights. No-op when the
  /// weights are unchanged. Single-writer contract applies.
  void SetPropertyWeights(std::vector<double> weights);

  /// The live-set delta relative to the loaded snapshot:
  /// live = (snapshot ∪ added_triples) \ deleted_triples. Reset by a
  /// repartition swap (the snapshot re-baselines). Exposed so a serving
  /// capture can compose immutable pack-time segments with a delta
  /// overlay instead of rebuilding stores (only valid while
  /// repartition_count() == 0).
  const std::unordered_set<rdf::Triple>& added_triples() const {
    return added_;
  }
  const std::unordered_set<rdf::Triple>& deleted_triples() const {
    return deleted_;
  }

  /// Batches applied over the maintainer's lifetime (survives
  /// checkpoint/recovery); the journal sequence number of the next batch
  /// is batches_applied() + 1.
  size_t batches_applied() const { return tracker_.batches_applied(); }

  /// True when a write-ahead journal is attached (OpenDurable).
  bool journaling() const { return journal_ != nullptr; }

  /// Complete serializable state (see MaintainerState). Must not be
  /// called while a background repartition is in flight — call
  /// WaitForRepartition() first.
  MaintainerState ExportState() const;

  /// Exports the state and writes a checkpoint to the journal directory
  /// (Internal error when no journal is attached). Called automatically
  /// per MaintainerOptions::checkpoint_every_batches and after
  /// repartitions; exposed so a stream can force a final checkpoint.
  Status WriteCheckpoint();

 private:
  /// Rebuilds all derived state (crossing counts, online forest, drift
  /// counters) from graph_ + partitioning_. O(|E| α).
  void Attach();

  bool InBaseSnapshot(const rdf::Triple& t) const;

  /// Owner site for a brand-new vertex paired with `other` (or
  /// kInvalidVertex when both endpoints are new) under property p.
  uint32_t PlaceNewVertex(rdf::VertexId other, rdf::PropertyId p) const;
  uint32_t LeastLoadedSite() const;

  /// Applies one update; returns 0 noop, +1 insert, -1 delete.
  int ApplyUpdate(const TripleUpdate& update);

  void StartBackgroundRepartition();
  void IntegrateBackgroundRepartition();
  void AdoptRepartition(rdf::RdfGraph graph,
                        partition::Partitioning partitioning);

  /// Joins and discards an in-flight background job without integrating
  /// it (the kReanchor backpressure path).
  void AbandonBackgroundRepartition();

  /// Applies the replay-queue cap (see ReplayBackpressure).
  void ApplyBackpressure();

  /// Rebuilds the online forest from the live triples, discarding the
  /// staleness accumulated by internal deletes. O(|E| α).
  void RebuildForest();

  /// The Def. 4.2 ceiling (1+eps)|V|/k over the maintained universe.
  size_t InternalComponentBudget() const;

  /// W(p) under the current weights (0 when no weights are configured,
  /// so the weighted drift stays inert).
  double PropertyWeight(rdf::PropertyId p) const;

  /// Recomputes weighted_lcross_ from crossing_count_ and
  /// seed_weighted_lcross_ from seed_crossing_ (O(P); runs on anchor,
  /// restore, and weight change — never per update).
  void RecomputeWeightedLcross();

  /// Runs one hot-vertex migration event (see BoundaryMigrator); bumps
  /// the generation when any move was applied.
  MigrationReport TryMigrate();

  /// Moves vertex v to site `to`, flipping the crossing/internal state
  /// of its live incident edges incrementally (counters, L_cross mask,
  /// weighted sums, tracker slots, forest unions). Site triple vectors
  /// are NOT relocated — compaction re-derives placement from the
  /// assignment, and serving captures refuse the segment overlay once
  /// migration_count() > 0.
  void ApplyMigrationMove(rdf::VertexId v, uint32_t to,
                          const std::vector<rdf::Triple>& incident);

  rdf::RdfGraph graph_;
  partition::Partitioning partitioning_;
  MaintainerOptions options_;

  /// Triples inserted since the snapshot (they are also appended to the
  /// site vectors, so vectors == snapshot ∪ added_).
  std::unordered_set<rdf::Triple> added_;
  /// Tombstones over snapshot ∪ added_; live = (snapshot ∪ added_) \ deleted_.
  std::unordered_set<rdf::Triple> deleted_;

  /// Live crossing edges per property; a 0->1 transition puts the
  /// property into L_cross, 1->0 retires it.
  std::vector<size_t> crossing_count_;

  /// Online WCC(G[L_in]) forest (grows only; deletes leave it stale,
  /// which over-approximates the Def. 4.2 cost conservatively).
  dsf::DisjointSetForest forest_{0};

  DriftTracker tracker_;
  size_t repartitions_ = 0;

  /// L_cross membership at the last anchor (Attach), indexed by
  /// property id — the weighted seed stays recomputable when weights
  /// change mid-stream or after a checkpoint restore.
  std::vector<uint8_t> seed_crossing_;
  /// Weighted |L_cross| now and at the last anchor, under the current
  /// weights (both 0 when no weights are configured).
  double weighted_lcross_ = 0.0;
  double seed_weighted_lcross_ = 0.0;

  /// Live crossing edges incident to each vertex — the boundary set the
  /// migrator ranks (crossing_degree_[v] > 0 means v sits on the cut).
  std::vector<uint32_t> crossing_degree_;
  /// Lifetime hot-vertex moves (checkpointed).
  size_t migrations_ = 0;
  /// Lazy: constructed at the first migration event.
  std::unique_ptr<BoundaryMigrator> migrator_;

  /// Internal deletes since the forest was last rebuilt from live
  /// triples (Attach or RebuildForest); while 0 the forest is exact.
  size_t forest_stale_deletes_ = 0;

  // Durability (set by OpenDurable; empty/null otherwise).
  std::unique_ptr<UpdateJournal> journal_;
  uint64_t journal_fingerprint_ = 0;

  // Cached query view.
  std::unique_ptr<exec::Cluster> cluster_;
  std::unique_ptr<exec::DistributedExecutor> executor_;
  uint64_t generation_ = 0;
  uint64_t cluster_generation_ = ~0ULL;

  // Background repartition job. The job thread only touches pending_*;
  // pending_ready_ (release/acquire) publishes them to the main thread.
  std::thread repartition_thread_;
  bool repartition_running_ = false;
  std::atomic<bool> pending_ready_{false};
  rdf::RdfGraph pending_graph_;
  partition::Partitioning pending_partitioning_;
  /// Updates applied while the job ran, replayed onto the new state.
  std::vector<UpdateBatch> replay_;
};

}  // namespace mpc::dynamic

#endif  // MPC_DYNAMIC_INCREMENTAL_MAINTAINER_H_

#ifndef MPC_DYNAMIC_BOUNDARY_MIGRATOR_H_
#define MPC_DYNAMIC_BOUNDARY_MIGRATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "rdf/graph.h"

namespace mpc::dynamic {

/// Knobs for the hot-vertex migration escalation (see BoundaryMigrator).
struct MigrationOptions {
  /// Run a migration event when the repartition policy fires, before
  /// falling back to a full MPC re-run.
  bool enabled = false;
  /// Boundary vertices evaluated per event, taken from the top of the
  /// heat ranking (query-weighted incident crossing mass).
  size_t max_candidates = 32;
  /// Moves applied per event; the greedy loop also stops as soon as no
  /// strictly-improving move exists.
  size_t max_moves = 16;
};

/// Outcome of one migration event.
struct MigrationReport {
  /// Vertices moved.
  size_t moves = 0;
  /// Crossing properties whose last crossing edge was internalized — the
  /// |L_cross| wins.
  size_t properties_retired = 0;
  /// Formerly-crossing edges now internal (net of edges the moves pushed
  /// across the cut).
  std::ptrdiff_t edges_internalized = 0;
  /// Total weighted |L_cross| reduction (positive = improved).
  double weighted_lcross_gain = 0.0;
};

/// The escalation level below a full repartition: greedily moves hot
/// boundary vertices (ranked by query-weighted incident crossing edges)
/// to the site holding most of that weight, accepting only moves that
/// strictly reduce weighted |L_cross| (primary) or, at equal |L_cross|,
/// the weighted crossing-edge mass (secondary), under the (1+eps)|V|/k
/// balance cap. When an event applies no move, migration has stopped
/// paying and the caller falls back to full MPC.
///
/// The migrator owns a lazy incident-edge index over the live triples:
/// built once per anchor (O(|E|)), appended on inserts, never filtered
/// for deletes (liveness is checked through the caller's IsLive at use).
/// Per-event cost is O(|V| + candidates x degree) — no MPC machinery
/// (coarsening, METIS, selector) runs on this path.
///
/// The migrator plans; the owning IncrementalMaintainer applies each
/// accepted move through Context::apply_move, keeping every derived
/// counter (crossing counts, weighted sums, DSF, tracker slots) in one
/// place. Single-writer contract, same as the maintainer.
class BoundaryMigrator {
 public:
  explicit BoundaryMigrator(MigrationOptions options)
      : options_(options) {}

  /// Everything one event needs from the maintainer. The pointed-to
  /// containers are re-read after every applied move (apply_move mutates
  /// them); the callbacks must stay valid for the Migrate() call.
  struct Context {
    const std::vector<uint32_t>* part = nullptr;
    const std::vector<uint32_t>* crossing_degree = nullptr;
    const std::vector<size_t>* crossing_count = nullptr;
    std::function<double(rdf::PropertyId)> weight_of;
    std::function<bool(const rdf::Triple&)> is_live;
    /// Lazy-index source: the live triple set (called at most once per
    /// anchor, when the index is first built).
    std::function<std::vector<rdf::Triple>()> live_triples;
    std::function<size_t(uint32_t)> owned;
    /// (1+eps)|V|/k; a move may not push the target site past it
    /// (0 disables the cap).
    size_t balance_cap = 0;
    uint32_t k = 0;
    size_t num_vertices = 0;
    /// Applies one accepted move: all maintained counters must reflect
    /// the move before this returns. The third argument is the moved
    /// vertex's incident-edge list (may contain dead edges).
    std::function<void(rdf::VertexId, uint32_t,
                       const std::vector<rdf::Triple>&)>
        apply_move;
  };

  /// Runs one greedy migration event. Deterministic: ties break by
  /// lower vertex id, then lower target site.
  MigrationReport Migrate(const Context& ctx);

  /// Drops the incident index (call on every re-anchor — Attach or a
  /// repartition swap — and on restore).
  void Invalidate();

  /// Keeps the index current under inserts; no-op until the index is
  /// built. `maybe_present` marks resurrections, whose edge may already
  /// sit in the index (checked, to avoid double counting).
  void OnInsert(const rdf::Triple& t, bool maybe_present);

 private:
  void BuildIndex(const Context& ctx);

  MigrationOptions options_;
  bool index_built_ = false;
  /// incident_[v] = edges touching v among live triples at build time
  /// plus later inserts; dead edges linger (filtered via ctx.is_live).
  std::vector<std::vector<rdf::Triple>> incident_;
};

}  // namespace mpc::dynamic

#endif  // MPC_DYNAMIC_BOUNDARY_MIGRATOR_H_

#include "dynamic/incremental_maintainer.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpc::dynamic {

namespace {

/// Inserts v into a sorted, deduped vector, keeping it sorted; no-op when
/// already present.
void InsertSortedUnique(std::vector<rdf::VertexId>* vec, rdf::VertexId v) {
  auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it == vec->end() || *it != v) vec->insert(it, v);
}

}  // namespace

IncrementalMaintainer::IncrementalMaintainer(
    rdf::RdfGraph graph, partition::Partitioning partitioning,
    MaintainerOptions options)
    : graph_(std::move(graph)),
      partitioning_(std::move(partitioning)),
      options_(std::move(options)) {
  Attach();
}

IncrementalMaintainer::IncrementalMaintainer(const MaintainerState& state,
                                             MaintainerOptions options)
    : options_(std::move(options)) {
  // Rebuild the graph: interning every dictionary term in id order
  // replays the exact Intern() sequence that produced the saved ids, so
  // the restored dictionaries are identical; the frozen snapshot is
  // re-added by id.
  rdf::GraphBuilder builder;
  for (const std::string& term : state.vertex_terms) {
    builder.InternVertex(term);
  }
  for (const std::string& term : state.property_terms) {
    builder.InternProperty(term);
  }
  for (const rdf::Triple& t : state.snapshot_triples) {
    builder.Add(t.subject, t.property, t.object);
  }
  graph_ = builder.Build();

  partition::VertexAssignment assignment;
  assignment.k = state.k;
  assignment.part = state.assignment;
  partitioning_ = partition::Partitioning::MaterializeVertexDisjoint(
      graph_.triples(), graph_.num_vertices(), graph_.num_properties(),
      std::move(assignment), options_.num_threads);

  // Materialization derived the crossing mask and |E^c| from the
  // snapshot alone; patch them to the saved live values (crossing
  // inserts and deletes have moved them since).
  crossing_count_.assign(state.crossing_count.begin(),
                         state.crossing_count.end());
  for (size_t p = 0; p < crossing_count_.size(); ++p) {
    partitioning_.SetCrossingProperty(static_cast<rdf::PropertyId>(p),
                                      crossing_count_[p] > 0);
  }
  partitioning_.BumpCrossingEdges(
      static_cast<std::ptrdiff_t>(state.num_crossing_edges) -
      static_cast<std::ptrdiff_t>(partitioning_.num_crossing_edges()));

  // Re-append the added triples to the site vectors, restoring the
  // invariant vectors == snapshot ∪ added (tombstoned entries stay, as
  // in the live maintainer).
  const std::vector<uint32_t>& part = partitioning_.assignment().part;
  for (const rdf::Triple& t : state.added) {
    added_.insert(t);
    const uint32_t ps = part[t.subject];
    const uint32_t po = part[t.object];
    if (ps == po) {
      partitioning_.mutable_partition(ps).internal_edges.push_back(t);
    } else {
      partition::Partition& a = partitioning_.mutable_partition(ps);
      partition::Partition& b = partitioning_.mutable_partition(po);
      a.crossing_edges.push_back(t);
      b.crossing_edges.push_back(t);
      InsertSortedUnique(&a.extended_vertices, t.object);
      InsertSortedUnique(&b.extended_vertices, t.subject);
    }
  }
  deleted_.insert(state.deleted.begin(), state.deleted.end());

  // The forest's tree shape is history-dependent: restore it verbatim
  // rather than re-deriving it from edges.
  Result<dsf::DisjointSetForest> forest =
      dsf::DisjointSetForest::FromState(state.forest);
  if (forest.ok()) {
    forest_ = std::move(*forest);
    forest_stale_deletes_ = state.forest_stale_deletes;
  } else {
    MPC_LOG(Warning) << "checkpoint forest state invalid ("
                     << forest.status().ToString()
                     << "); rebuilding from live triples";
    RebuildForest();
  }
  tracker_.RestoreState(state.tracker);
  repartitions_ = state.tracker.repartitions;
  migrations_ = state.migrations;

  // The boundary set is derived, not checkpointed: one pass over the
  // live triples under the restored assignment rebuilds it.
  crossing_degree_.assign(graph_.num_vertices(), 0);
  for (const rdf::Triple& t : LiveTriples()) {
    if (part[t.subject] != part[t.object]) {
      ++crossing_degree_[t.subject];
      ++crossing_degree_[t.object];
    }
  }
  // Weighted drift state: the checkpoint stores the seed L_cross
  // membership; the weighted sums are re-derived under the (possibly
  // new) weights in options.
  seed_crossing_.assign(graph_.num_properties(), 0);
  for (uint32_t p : state.seed_crossing) {
    if (p < seed_crossing_.size()) seed_crossing_[p] = 1;
  }
  RecomputeWeightedLcross();
}

Result<std::unique_ptr<IncrementalMaintainer>>
IncrementalMaintainer::OpenDurable(rdf::RdfGraph graph,
                                   partition::Partitioning partitioning,
                                   MaintainerOptions options,
                                   uint64_t fingerprint) {
  if (options.journal_dir.empty()) {
    return Status::InvalidArgument(
        "OpenDurable requires options.journal_dir");
  }
  obs::TraceSpan span("dynamic.recover");
  const std::string dir = options.journal_dir;

  std::unique_ptr<IncrementalMaintainer> maintainer;
  Result<MaintainerState> checkpoint =
      CheckpointIo::LoadLatest(dir, fingerprint);
  if (checkpoint.ok()) {
    maintainer = std::make_unique<IncrementalMaintainer>(*checkpoint,
                                                         std::move(options));
    span.Attr("checkpoint_seq", checkpoint->seq);
  } else if (checkpoint.status().code() == StatusCode::kNotFound) {
    maintainer = std::make_unique<IncrementalMaintainer>(
        std::move(graph), std::move(partitioning), std::move(options));
  } else {
    return checkpoint.status();
  }

  Result<std::vector<UpdateJournal::Entry>> tail = UpdateJournal::Replay(
      dir, fingerprint, maintainer->batches_applied());
  if (!tail.ok()) return tail.status();
  // Replayed batches re-run any triggered repartition synchronously, so
  // recovery lands on a deterministic state even when the original
  // stream used background mode.
  const bool background = maintainer->options_.background_repartition;
  maintainer->options_.background_repartition = false;
  uint64_t replayed = 0;
  for (const UpdateJournal::Entry& e : *tail) {
    if (e.seq != maintainer->batches_applied() + 1) {
      return Status::Internal(
          "journal gap: frame " + std::to_string(e.seq) + " follows " +
          std::to_string(maintainer->batches_applied()) +
          " applied batches");
    }
    maintainer->ApplyBatch(e.batch);
    ++replayed;
  }
  maintainer->options_.background_repartition = background;
  span.Attr("replayed_batches", replayed);
  obs::MetricsRegistry::Default()
      .CounterRef("dynamic.recover.replayed_batches")
      .Inc(replayed);
  obs::MetricsRegistry::Default().CounterRef("dynamic.recover.runs").Inc();

  Result<UpdateJournal> journal = UpdateJournal::Open(dir, fingerprint);
  if (!journal.ok()) return journal.status();
  maintainer->journal_ =
      std::make_unique<UpdateJournal>(std::move(*journal));
  maintainer->journal_fingerprint_ = fingerprint;
  return maintainer;
}

IncrementalMaintainer::~IncrementalMaintainer() {
  if (repartition_thread_.joinable()) repartition_thread_.join();
}

void IncrementalMaintainer::Attach() {
  assert(partitioning_.kind() ==
         partition::PartitioningKind::kVertexDisjoint);
  assert(partitioning_.assignment().part.size() == graph_.num_vertices());

  added_.clear();
  deleted_.clear();

  const std::vector<uint32_t>& part = partitioning_.assignment().part;
  crossing_count_.assign(graph_.num_properties(), 0);
  crossing_degree_.assign(graph_.num_vertices(), 0);
  for (const rdf::Triple& t : graph_.triples()) {
    if (part[t.subject] != part[t.object]) {
      ++crossing_count_[t.property];
      ++crossing_degree_[t.subject];
      ++crossing_degree_[t.object];
    }
  }

  forest_ = dsf::DisjointSetForest(graph_.num_vertices());
  for (const rdf::Triple& t : graph_.triples()) {
    if (!partitioning_.IsCrossingProperty(t.property)) {
      forest_.Union(t.subject, t.object);
    }
  }

  tracker_.Reset(graph_.num_edges() - partitioning_.num_crossing_edges(),
                 partitioning_.num_crossing_edges(),
                 partitioning_.num_crossing_properties());
  // Re-anchor the weighted drift baseline alongside the unweighted one:
  // the seed L_cross membership is frozen here so the weighted seed can
  // be re-derived whenever the weights change.
  seed_crossing_.assign(graph_.num_properties(), 0);
  for (size_t p = 0; p < crossing_count_.size(); ++p) {
    seed_crossing_[p] = crossing_count_[p] > 0 ? 1 : 0;
  }
  RecomputeWeightedLcross();
  if (migrator_) migrator_->Invalidate();
  forest_stale_deletes_ = 0;
  ++generation_;
}

double IncrementalMaintainer::PropertyWeight(rdf::PropertyId p) const {
  const std::vector<double>& w = options_.property_weights;
  if (w.empty()) return 0.0;  // weighted drift disabled
  return p < w.size() ? w[p] : 1.0;
}

void IncrementalMaintainer::RecomputeWeightedLcross() {
  weighted_lcross_ = 0.0;
  seed_weighted_lcross_ = 0.0;
  if (options_.property_weights.empty()) return;
  for (size_t p = 0; p < crossing_count_.size(); ++p) {
    const rdf::PropertyId id = static_cast<rdf::PropertyId>(p);
    if (crossing_count_[p] > 0) weighted_lcross_ += PropertyWeight(id);
    if (p < seed_crossing_.size() && seed_crossing_[p]) {
      seed_weighted_lcross_ += PropertyWeight(id);
    }
  }
}

void IncrementalMaintainer::SetPropertyWeights(std::vector<double> weights) {
  if (weights == options_.property_weights) return;
  options_.property_weights = std::move(weights);
  RecomputeWeightedLcross();
}

bool IncrementalMaintainer::InBaseSnapshot(const rdf::Triple& t) const {
  std::span<const rdf::Triple> run = graph_.EdgesWithProperty(t.property);
  auto it = std::lower_bound(run.begin(), run.end(), t);
  return it != run.end() && *it == t;
}

bool IncrementalMaintainer::IsLive(const rdf::Triple& t) const {
  if (t.subject >= graph_.num_vertices() ||
      t.object >= graph_.num_vertices() ||
      t.property >= graph_.num_properties()) {
    return false;
  }
  if (deleted_.count(t) > 0) return false;
  return added_.count(t) > 0 || InBaseSnapshot(t);
}

uint32_t IncrementalMaintainer::LeastLoadedSite() const {
  uint32_t best = 0;
  size_t best_owned = partitioning_.partition(0).num_owned_vertices;
  for (uint32_t i = 1; i < partitioning_.k(); ++i) {
    const size_t owned = partitioning_.partition(i).num_owned_vertices;
    if (owned < best_owned) {
      best = i;
      best_owned = owned;
    }
  }
  return best;
}

uint32_t IncrementalMaintainer::PlaceNewVertex(rdf::VertexId other,
                                               rdf::PropertyId p) const {
  // Co-locating with the existing endpoint keeps an internal property
  // internal (preserving Theorem 2's guarantee for L_in); for an already
  // crossing property the edge may cross anyway, so balance wins.
  if (!partitioning_.IsCrossingProperty(p)) {
    return partitioning_.assignment().part[other];
  }
  return LeastLoadedSite();
}

int IncrementalMaintainer::ApplyUpdate(const TripleUpdate& update) {
  if (update.kind == UpdateKind::kDelete) {
    const rdf::VertexId s = graph_.vertex_dict().Lookup(update.subject);
    const rdf::PropertyId p = graph_.property_dict().Lookup(update.property);
    const rdf::VertexId o = graph_.vertex_dict().Lookup(update.object);
    if (s == rdf::kInvalidVertex || p == rdf::kInvalidProperty ||
        o == rdf::kInvalidVertex) {
      return 0;  // a term was never seen, so the triple cannot be live
    }
    const rdf::Triple t(s, p, o);
    if (!IsLive(t)) return 0;
    // Lazy deletion: tombstone only. Site vectors keep the entry (store
    // rebuilds and compaction filter it); counters update immediately.
    deleted_.insert(t);
    const std::vector<uint32_t>& part = partitioning_.assignment().part;
    if (part[s] == part[o]) {
      tracker_.OnDeleteInternal();
      // The online forest cannot split; staleness is conservative (the
      // drift metric over-approximates the Def. 4.2 cost) until the
      // tombstone-triggered rebuild recomputes it from live triples.
      ++forest_stale_deletes_;
    } else {
      partitioning_.BumpCrossingEdges(-1);
      if (--crossing_count_[p] == 0) {
        // Last crossing edge of p died: p leaves L_cross and queries
        // over p become independently executable again.
        partitioning_.SetCrossingProperty(p, false);
        weighted_lcross_ -= PropertyWeight(p);
      }
      --crossing_degree_[s];
      --crossing_degree_[o];
      tracker_.OnDeleteCrossing();
    }
    return -1;
  }

  // Insert: encode, growing dictionaries for never-seen terms.
  const rdf::VertexId s = graph_.InternVertex(update.subject);
  const rdf::PropertyId p = graph_.InternProperty(update.property);
  const rdf::VertexId o = graph_.InternVertex(update.object);
  if (crossing_count_.size() < graph_.num_properties()) {
    crossing_count_.resize(graph_.num_properties(), 0);
    partitioning_.GrowPropertyUniverse(graph_.num_properties());
  }

  std::vector<uint32_t>& part = partitioning_.mutable_assignment().part;
  if (part.size() < graph_.num_vertices()) {
    // At least one endpoint is brand new; pick its owner.
    const bool s_new = s >= part.size();
    const bool o_new = o >= part.size();
    uint32_t site;
    if (s_new && o_new) {
      site = LeastLoadedSite();  // both new: co-locate at one site
    } else if (s_new) {
      site = PlaceNewVertex(o, p);
    } else {
      site = PlaceNewVertex(s, p);
    }
    while (part.size() < graph_.num_vertices()) {
      part.push_back(site);
      ++partitioning_.mutable_partition(site).num_owned_vertices;
    }
    forest_.Grow(graph_.num_vertices());
  }
  if (crossing_degree_.size() < graph_.num_vertices()) {
    crossing_degree_.resize(graph_.num_vertices(), 0);
  }

  const rdf::Triple t(s, p, o);
  if (IsLive(t)) return 0;  // duplicate insert (RDF set semantics)
  // A resurrected triple (insert after delete) still sits in the site
  // vectors; a brand-new one must be appended.
  const bool resurrected = deleted_.erase(t) > 0;
  const bool appended = !resurrected;
  if (appended) added_.insert(t);
  if (migrator_) migrator_->OnInsert(t, resurrected);

  const uint32_t ps = part[s];
  const uint32_t po = part[o];
  if (ps == po) {
    if (appended) {
      partitioning_.mutable_partition(ps).internal_edges.push_back(t);
    }
    if (!partitioning_.IsCrossingProperty(p)) forest_.Union(s, o);
    tracker_.OnInsertInternal(resurrected);
  } else {
    if (appended) {
      // 1-hop replication (Def. 3.3): the crossing edge is stored at
      // both endpoint sites, each extending its V_i^e.
      partition::Partition& a = partitioning_.mutable_partition(ps);
      partition::Partition& b = partitioning_.mutable_partition(po);
      a.crossing_edges.push_back(t);
      b.crossing_edges.push_back(t);
      InsertSortedUnique(&a.extended_vertices, t.object);
      InsertSortedUnique(&b.extended_vertices, t.subject);
    }
    partitioning_.BumpCrossingEdges(+1);
    if (crossing_count_[p]++ == 0) {
      // First crossing edge of p: a formerly-internal (or never-seen)
      // property enters L_cross — immediately visible to classification.
      partitioning_.SetCrossingProperty(p, true);
      weighted_lcross_ += PropertyWeight(p);
    }
    ++crossing_degree_[s];
    ++crossing_degree_[o];
    tracker_.OnInsertCrossing(resurrected);
  }
  return 1;
}

ApplyResult IncrementalMaintainer::ApplyBatch(const UpdateBatch& batch) {
  obs::TraceSpan batch_span("dynamic.apply_batch");
  batch_span.Attr("updates", static_cast<uint64_t>(batch.updates.size()));

  ApplyResult result;
  // Write-ahead ordering: the batch must be durable before any of its
  // effects are. A failed append aborts the batch un-applied — applying
  // unjournaled updates would make recovery silently lossy.
  if (journal_) {
    result.durability =
        journal_->Append(tracker_.batches_applied() + 1, batch);
    if (!result.durability.ok()) {
      result.drift = drift();
      return result;
    }
  }

  // Opportunistically integrate a finished background repartition before
  // applying, so the batch lands on the freshest state.
  if (repartition_running_ &&
      pending_ready_.load(std::memory_order_acquire)) {
    IntegrateBackgroundRepartition();
  }
  // Replay-queue cap: block on (or re-anchor) the in-flight job before
  // this batch deepens the queue further.
  if (repartition_running_) ApplyBackpressure();

  for (const TripleUpdate& u : batch.updates) {
    const int delta = ApplyUpdate(u);
    if (delta > 0) {
      ++result.inserts;
    } else if (delta < 0) {
      ++result.deletes;
    } else {
      ++result.noops;
    }
    tracker_.OnUpdateApplied();
  }
  tracker_.OnBatchApplied();
  if (repartition_running_) replay_.push_back(batch);
  ++generation_;

  // Tombstone-triggered forest rebuild, before the policy reads the
  // Def. 4.2 cost: once enough deletes accumulated, the grow-only
  // forest's max component is recomputed from the live triples so the
  // component-budget check stops over-firing.
  if (options_.forest_rebuild_tombstone_ratio > 0.0 &&
      forest_stale_deletes_ > 0 &&
      drift().tombstone_ratio > options_.forest_rebuild_tombstone_ratio) {
    RebuildForest();
  }

  DriftMetrics metrics = drift();
  if (!repartition_running_) {
    std::string reason = options_.policy.Evaluate(metrics);
    // Escalation ladder: a fired policy first tries hot-vertex
    // migration (cheap, incremental); only when the re-evaluated drift
    // still exceeds its bound — migration stopped reducing weighted
    // |L_cross| — does the full MPC re-run happen.
    if (!reason.empty() && options_.migration.enabled) {
      const MigrationReport migrated = TryMigrate();
      result.migrated = migrated.moves;
      result.migration_gain = migrated.weighted_lcross_gain;
      if (migrated.moves > 0) {
        metrics = drift();
        reason = options_.policy.Evaluate(metrics);
      }
    }
    if (!reason.empty()) {
      result.repartition_triggered = true;
      result.trigger_reason = std::move(reason);
      batch_span.Attr("trigger", result.trigger_reason);
      if (options_.background_repartition) {
        StartBackgroundRepartition();
      } else {
        RepartitionNow();
        result.repartitioned = true;
        metrics = drift();
      }
    }
  }
  // Checkpoint cadence: every N batches, and always right after a
  // completed repartition (so journal replay never re-runs MPC). Only
  // when no background job is in flight — mid-job state is incomplete.
  if (journal_ && !repartition_running_) {
    const uint64_t seq = tracker_.batches_applied();
    const bool cadence = options_.checkpoint_every_batches > 0 &&
                         seq % options_.checkpoint_every_batches == 0;
    if (result.repartitioned || cadence) {
      Status st = WriteCheckpoint();
      if (!st.ok()) {
        MPC_LOG(Warning) << "checkpoint at batch " << seq
                         << " failed: " << st.ToString();
        if (result.durability.ok()) result.durability = st;
      }
    }
  }
  result.drift = metrics;
  batch_span.Attr("inserts", static_cast<uint64_t>(result.inserts))
      .Attr("deletes", static_cast<uint64_t>(result.deletes))
      .Attr("noops", static_cast<uint64_t>(result.noops));

  // Publish the drift snapshot (and queue depth) as gauges so a metrics
  // dump mid-stream shows where the live partitioning stands.
  auto& m = obs::MetricsRegistry::Default();
  m.CounterRef("dynamic.batches").Inc();
  m.CounterRef("dynamic.inserts").Inc(result.inserts);
  m.CounterRef("dynamic.deletes").Inc(result.deletes);
  m.CounterRef("dynamic.noops").Inc(result.noops);
  m.GaugeRef("dynamic.replay_queue_depth")
      .Set(static_cast<double>(replay_.size()));
  m.GaugeRef("dynamic.drift.live_triples")
      .Set(static_cast<double>(metrics.live_triples));
  m.GaugeRef("dynamic.drift.crossing_edges")
      .Set(static_cast<double>(metrics.crossing_edges));
  m.GaugeRef("dynamic.drift.crossing_properties")
      .Set(static_cast<double>(metrics.crossing_properties));
  m.GaugeRef("dynamic.drift.lcross_growth").Set(metrics.lcross_growth);
  m.GaugeRef("dynamic.drift.weighted_crossing_properties")
      .Set(metrics.weighted_crossing_properties);
  m.GaugeRef("dynamic.drift.weighted_lcross_growth")
      .Set(metrics.weighted_lcross_growth);
  m.GaugeRef("dynamic.drift.balance_ratio").Set(metrics.balance_ratio);
  m.GaugeRef("dynamic.drift.tombstone_ratio").Set(metrics.tombstone_ratio);
  m.GaugeRef("dynamic.drift.replication_ratio")
      .Set(metrics.replication_ratio);
  return result;
}

DriftMetrics IncrementalMaintainer::drift() const {
  DriftMetrics m =
      tracker_.Snapshot(partitioning_, forest_.max_component_size(),
                        InternalComponentBudget());
  m.weighted_crossing_properties = weighted_lcross_;
  m.seed_weighted_crossing_properties = seed_weighted_lcross_;
  if (seed_weighted_lcross_ > 0.0 &&
      weighted_lcross_ > seed_weighted_lcross_) {
    m.weighted_lcross_growth = weighted_lcross_ / seed_weighted_lcross_ - 1.0;
  }
  m.migrations = migrations_;
  return m;
}

size_t IncrementalMaintainer::InternalComponentBudget() const {
  const uint32_t k = partitioning_.k();
  if (k == 0) return 0;
  const double ideal =
      static_cast<double>(graph_.num_vertices()) / static_cast<double>(k);
  return static_cast<size_t>((1.0 + options_.mpc.base.epsilon) * ideal);
}

void IncrementalMaintainer::RebuildForest() {
  MPC_TRACE_SPAN("dynamic.forest.rebuild");
  obs::MetricsRegistry::Default().CounterRef("dynamic.forest_rebuilds").Inc();
  forest_ = dsf::DisjointSetForest(graph_.num_vertices());
  for (const rdf::Triple& t : LiveTriples()) {
    if (!partitioning_.IsCrossingProperty(t.property)) {
      forest_.Union(t.subject, t.object);
    }
  }
  forest_stale_deletes_ = 0;
}

MaintainerState IncrementalMaintainer::ExportState() const {
  assert(!repartition_running_);
  MaintainerState state;
  state.seq = tracker_.batches_applied();
  state.k = partitioning_.k();
  state.vertex_terms.reserve(graph_.num_vertices());
  for (size_t v = 0; v < graph_.num_vertices(); ++v) {
    state.vertex_terms.push_back(
        graph_.VertexName(static_cast<rdf::VertexId>(v)));
  }
  state.property_terms.reserve(graph_.num_properties());
  for (size_t p = 0; p < graph_.num_properties(); ++p) {
    state.property_terms.push_back(
        graph_.PropertyName(static_cast<rdf::PropertyId>(p)));
  }
  state.snapshot_triples = graph_.triples();
  state.assignment = partitioning_.assignment().part;
  state.crossing_count.assign(crossing_count_.begin(),
                              crossing_count_.end());
  state.num_crossing_edges = partitioning_.num_crossing_edges();
  state.added.assign(added_.begin(), added_.end());
  std::sort(state.added.begin(), state.added.end());
  state.deleted.assign(deleted_.begin(), deleted_.end());
  std::sort(state.deleted.begin(), state.deleted.end());
  state.forest = forest_.ExportState();
  state.tracker = tracker_.ExportState();
  state.forest_stale_deletes = forest_stale_deletes_;
  for (size_t p = 0; p < seed_crossing_.size(); ++p) {
    if (seed_crossing_[p]) {
      state.seed_crossing.push_back(static_cast<uint32_t>(p));
    }
  }
  state.migrations = migrations_;
  return state;
}

Status IncrementalMaintainer::WriteCheckpoint() {
  if (!journal_) {
    return Status::Internal("WriteCheckpoint requires an attached journal");
  }
  return CheckpointIo::Write(ExportState(), journal_fingerprint_,
                             options_.journal_dir);
}

std::vector<rdf::Triple> IncrementalMaintainer::LiveTriples() const {
  std::vector<rdf::Triple> live;
  live.reserve(tracker_.live_triples());
  for (const rdf::Triple& t : graph_.triples()) {
    if (deleted_.count(t) == 0) live.push_back(t);
  }
  for (const rdf::Triple& t : added_) {
    if (deleted_.count(t) == 0) live.push_back(t);
  }
  std::sort(live.begin(), live.end());
  return live;
}

partition::Partitioning IncrementalMaintainer::CompactPartitioning() const {
  partition::VertexAssignment assignment = partitioning_.assignment();
  const std::vector<rdf::Triple> live = LiveTriples();
  return partition::Partitioning::MaterializeVertexDisjoint(
      live, graph_.num_vertices(), graph_.num_properties(),
      std::move(assignment), options_.num_threads);
}

rdf::RdfGraph IncrementalMaintainer::MaterializeGraph() const {
  rdf::GraphBuilder builder;
  for (const rdf::Triple& t : LiveTriples()) {
    builder.Add(graph_.VertexName(t.subject),
                graph_.PropertyName(t.property),
                graph_.VertexName(t.object));
  }
  return builder.Build();
}

const exec::Cluster& IncrementalMaintainer::cluster() {
  if (!cluster_ || cluster_generation_ != generation_) {
    executor_.reset();
    cluster_ = std::make_unique<exec::Cluster>(
        exec::Cluster::Build(CompactPartitioning(), options_.num_threads));
    exec::ExecutorOptions exec_options = options_.executor;
    exec_options.generation = generation_;
    executor_ = std::make_unique<exec::DistributedExecutor>(
        *cluster_, graph_, exec_options);
    cluster_generation_ = generation_;
  }
  return *cluster_;
}

Result<exec::QueryResponse> IncrementalMaintainer::Execute(
    const exec::QueryRequest& request) {
  cluster();  // refresh the cached view
  return executor_->Execute(request);
}

void IncrementalMaintainer::RepartitionNow() {
  MPC_TRACE_SPAN("dynamic.repartition");
  obs::MetricsRegistry::Default().CounterRef("dynamic.repartitions").Inc();
  WaitForRepartition();  // fold in any in-flight job first
  rdf::RdfGraph fresh = MaterializeGraph();
  core::MpcOptions mpc = options_.mpc;
  mpc.base.k = partitioning_.k();
  mpc.base.num_threads = options_.num_threads;
  partition::Partitioning repartitioned =
      core::MpcPartitioner(mpc).Partition(fresh);
  AdoptRepartition(std::move(fresh), std::move(repartitioned));
}

MigrationReport IncrementalMaintainer::TryMigrate() {
  MPC_TRACE_SPAN("dynamic.migrate");
  if (!migrator_) {
    migrator_ = std::make_unique<BoundaryMigrator>(options_.migration);
  }
  BoundaryMigrator::Context ctx;
  ctx.part = &partitioning_.assignment().part;
  ctx.crossing_degree = &crossing_degree_;
  ctx.crossing_count = &crossing_count_;
  ctx.weight_of = [this](rdf::PropertyId p) { return PropertyWeight(p); };
  ctx.is_live = [this](const rdf::Triple& t) { return IsLive(t); };
  ctx.live_triples = [this]() { return LiveTriples(); };
  ctx.owned = [this](uint32_t site) {
    return partitioning_.partition(site).num_owned_vertices;
  };
  ctx.balance_cap = InternalComponentBudget();
  ctx.k = partitioning_.k();
  ctx.num_vertices = graph_.num_vertices();
  ctx.apply_move = [this](rdf::VertexId v, uint32_t to,
                          const std::vector<rdf::Triple>& incident) {
    ApplyMigrationMove(v, to, incident);
  };
  const MigrationReport report = migrator_->Migrate(ctx);
  if (report.moves > 0) {
    // The live state changed after the batch's generation bump: bump
    // again so result caches and serving captures see a new state.
    ++generation_;
  }
  auto& m = obs::MetricsRegistry::Default();
  m.CounterRef("dynamic.migrate.events").Inc();
  m.CounterRef("dynamic.migrate.moves").Inc(report.moves);
  m.CounterRef("dynamic.migrate.properties_retired")
      .Inc(report.properties_retired);
  return report;
}

void IncrementalMaintainer::ApplyMigrationMove(
    rdf::VertexId v, uint32_t to,
    const std::vector<rdf::Triple>& incident) {
  std::vector<uint32_t>& part = partitioning_.mutable_assignment().part;
  const uint32_t from = part[v];
  for (const rdf::Triple& t : incident) {
    if (!IsLive(t)) continue;
    const rdf::VertexId u = t.subject == v ? t.object : t.subject;
    if (u == v) continue;  // self-loop: internal at any site
    const bool was_crossing = part[u] != from;
    const bool now_crossing = part[u] != to;
    if (was_crossing == now_crossing) continue;
    if (was_crossing) {
      partitioning_.BumpCrossingEdges(-1);
      if (--crossing_count_[t.property] == 0) {
        partitioning_.SetCrossingProperty(t.property, false);
        weighted_lcross_ -= PropertyWeight(t.property);
      }
      --crossing_degree_[v];
      --crossing_degree_[u];
      tracker_.OnMigrateCrossingToInternal();
    } else {
      partitioning_.BumpCrossingEdges(+1);
      if (crossing_count_[t.property]++ == 0) {
        partitioning_.SetCrossingProperty(t.property, true);
        weighted_lcross_ += PropertyWeight(t.property);
      }
      ++crossing_degree_[v];
      ++crossing_degree_[u];
      tracker_.OnMigrateInternalToCrossing();
      // The forest may have unioned this edge while it was internal;
      // it cannot split, so count the staleness toward the
      // tombstone-triggered rebuild like an internal delete would.
      ++forest_stale_deletes_;
    }
  }
  part[v] = to;
  --partitioning_.mutable_partition(from).num_owned_vertices;
  ++partitioning_.mutable_partition(to).num_owned_vertices;
  // Union the edges that landed internal with an internal property into
  // the online forest (Def. 4.2 tracking; edges of a property still in
  // L_cross stay out of G[L_in]).
  for (const rdf::Triple& t : incident) {
    if (!IsLive(t)) continue;
    const rdf::VertexId u = t.subject == v ? t.object : t.subject;
    if (u == v) continue;
    if (part[u] == to && !partitioning_.IsCrossingProperty(t.property)) {
      forest_.Union(v, u);
    }
  }
  ++migrations_;
}

void IncrementalMaintainer::StartBackgroundRepartition() {
  assert(!repartition_running_);
  rdf::RdfGraph fresh = MaterializeGraph();  // private snapshot
  replay_.clear();
  pending_ready_.store(false, std::memory_order_relaxed);
  repartition_running_ = true;
  core::MpcOptions mpc = options_.mpc;
  mpc.base.k = partitioning_.k();
  mpc.base.num_threads = options_.num_threads;
  obs::MetricsRegistry::Default().CounterRef("dynamic.repartitions").Inc();
  repartition_thread_ =
      std::thread([this, mpc, fresh = std::move(fresh)]() mutable {
        MPC_TRACE_SPAN("dynamic.repartition.background");
        pending_partitioning_ = core::MpcPartitioner(mpc).Partition(fresh);
        pending_graph_ = std::move(fresh);
        pending_ready_.store(true, std::memory_order_release);
      });
}

void IncrementalMaintainer::IntegrateBackgroundRepartition() {
  MPC_TRACE_SPAN("dynamic.repartition.integrate");
  repartition_thread_.join();  // also synchronizes pending_*
  repartition_running_ = false;
  std::vector<UpdateBatch> replay = std::move(replay_);
  replay_.clear();
  AdoptRepartition(std::move(pending_graph_),
                   std::move(pending_partitioning_));
  // Replay the updates that raced the job onto the new partitioning.
  // Lifetime counters were already bumped at original application time.
  for (const UpdateBatch& batch : replay) {
    for (const TripleUpdate& u : batch.updates) ApplyUpdate(u);
  }
  ++generation_;
  // A completed repartition anchors recovery: checkpoint it so journal
  // replay after a crash never has to re-run MPC.
  if (journal_) {
    Status st = WriteCheckpoint();
    if (!st.ok()) {
      MPC_LOG(Warning) << "post-repartition checkpoint failed: "
                       << st.ToString();
    }
  }
}

void IncrementalMaintainer::AbandonBackgroundRepartition() {
  if (!repartition_running_) return;
  repartition_thread_.join();
  repartition_running_ = false;
  pending_ready_.store(false, std::memory_order_relaxed);
  pending_graph_ = rdf::RdfGraph();
  pending_partitioning_ = partition::Partitioning();
  replay_.clear();
}

void IncrementalMaintainer::ApplyBackpressure() {
  if (options_.max_replay_batches == 0 ||
      replay_.size() < options_.max_replay_batches) {
    return;
  }
  auto& m = obs::MetricsRegistry::Default();
  if (options_.backpressure == ReplayBackpressure::kBlock) {
    // Stall the producer until the job lands. Deterministic: the wait
    // happens exactly when the queue reaches the cap, independent of
    // how fast the background thread actually ran.
    MPC_TRACE_SPAN("dynamic.backpressure.block");
    m.CounterRef("dynamic.backpressure.stalls").Inc();
    Timer timer;
    WaitForRepartition();
    m.HistogramRef("dynamic.backpressure.stall_ms",
                   obs::DefaultLatencyBoundsMs())
        .Observe(timer.ElapsedMillis());
  } else {
    // Re-anchor: the snapshot the job is partitioning is too far behind
    // the stream to ever catch up; abandon it and start over from the
    // current live state with an empty queue.
    MPC_TRACE_SPAN("dynamic.backpressure.reanchor");
    m.CounterRef("dynamic.backpressure.reanchors").Inc();
    AbandonBackgroundRepartition();
    StartBackgroundRepartition();
  }
}

void IncrementalMaintainer::AdoptRepartition(
    rdf::RdfGraph graph, partition::Partitioning partitioning) {
  if (!options_.property_weights.empty()) {
    // The adopted graph re-interns the live terms, so property ids can
    // shift (a property whose last live edge died drops out of the
    // dense id space). The id-indexed weights must follow their
    // properties by name or the weighted drift starts charging the
    // wrong properties. Properties the old vector never covered keep
    // the default weight of 1.0.
    std::vector<double> remapped(graph.num_properties(), 1.0);
    for (rdf::PropertyId p = 0; p < graph.num_properties(); ++p) {
      const rdf::PropertyId old =
          graph_.property_dict().Lookup(graph.PropertyName(p));
      if (old != rdf::kInvalidProperty) remapped[p] = PropertyWeight(old);
    }
    options_.property_weights = std::move(remapped);
  }
  graph_ = std::move(graph);
  partitioning_ = std::move(partitioning);
  Attach();
  tracker_.OnRepartition();
  ++repartitions_;
}

void IncrementalMaintainer::WaitForRepartition() {
  if (!repartition_running_) return;
  IntegrateBackgroundRepartition();
}

}  // namespace mpc::dynamic

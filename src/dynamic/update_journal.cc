#include "dynamic/update_journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fsio.h"
#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpc::dynamic {

namespace fs = std::filesystem;

namespace {

constexpr char kJournalFile[] = "journal.mpcwal";
constexpr char kJournalMagic[] = "mpc-journal v1";
constexpr char kCheckpointMagic[] = "mpc-checkpoint v1";
constexpr char kCheckpointPrefix[] = "checkpoint_";
constexpr char kCheckpointSuffix[] = ".ckpt";

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

// SysError / EnsureDir / WriteAll / FsyncFd / FsyncDir live in
// common/fsio.h so the site-worker runtime shares the exact durability
// path (and its EINTR/error handling) instead of duplicating it.

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Consumes the next '\n'-terminated line. Returns false (leaving *line
/// holding the unterminated remainder) when the text ends without one —
/// the signature of a torn final write.
bool NextLine(std::string_view text, size_t* pos, std::string_view* line) {
  const size_t nl = text.find('\n', *pos);
  if (nl == std::string_view::npos) {
    *line = text.substr(*pos);
    *pos = text.size();
    return false;
  }
  *line = text.substr(*pos, nl - *pos);
  *pos = nl + 1;
  return true;
}

/// Parses one base-10 integer at *p (which must sit inside a
/// NUL-terminated buffer), advancing past it. Returns false when no
/// digits are present.
bool ParseU64(const char** p, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(*p, &end, 10);
  if (end == *p || errno == ERANGE) return false;
  *p = end;
  *out = v;
  return true;
}

bool ParseHexU64(std::string_view token, uint64_t* out) {
  const std::string copy(token);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(copy.c_str(), &end, 16);
  if (end != copy.c_str() + copy.size() || copy.empty() || errno == ERANGE) {
    return false;
  }
  *out = v;
  return true;
}

/// Strips a "label " or bare "label" prefix; returns false when the line
/// does not start with the label.
bool ConsumeLabel(std::string_view line, std::string_view label,
                  std::string_view* rest) {
  if (line.substr(0, label.size()) != label) return false;
  std::string_view r = line.substr(label.size());
  if (!r.empty()) {
    if (r[0] != ' ') return false;
    r.remove_prefix(1);
  }
  *rest = r;
  return true;
}

std::string SerializeBatchPayload(const UpdateBatch& batch) {
  std::string payload;
  for (const TripleUpdate& u : batch.updates) {
    payload += u.kind == UpdateKind::kInsert ? "+ " : "- ";
    payload += u.subject;
    payload += ' ';
    payload += u.property;
    payload += ' ';
    payload += u.object;
    payload += " .\n";
  }
  return payload;
}

/// Everything a full scan of a journal file learns: the committed
/// frames, where the last committed frame ends (bytes), whether a torn
/// frame was dropped past that point, and the last committed sequence.
struct JournalScan {
  std::vector<UpdateJournal::Entry> entries;
  size_t valid_end = 0;
  bool torn = false;
  uint64_t last_seq = 0;
};

Status ScanError(const std::string& path, size_t frame,
                 const std::string& what) {
  return Status::ParseError("journal " + path + " frame " +
                            std::to_string(frame) + ": " + what);
}

/// Parses the whole journal. Structural truncation at the tail (no
/// trailing '\n', missing payload lines, missing commit) marks the scan
/// torn; everything else — bad checksum on a committed frame, unexpected
/// line shapes with more content after them, out-of-order sequence
/// numbers — is corruption and fails.
Result<JournalScan> ScanJournal(const std::string& path,
                                std::string_view content,
                                uint64_t fingerprint) {
  JournalScan scan;
  size_t pos = 0;
  std::string_view line;

  if (content.empty() || !NextLine(content, &pos, &line)) {
    // Crash between file creation and the header fsync: an empty (or
    // headerless) journal holds nothing to replay.
    scan.torn = !content.empty();
    return scan;
  }
  std::string_view rest;
  uint64_t header_fp = 0;
  if (!ConsumeLabel(line, kJournalMagic, &rest) ||
      !ParseHexU64(rest, &header_fp)) {
    return Status::ParseError("journal " + path + ": bad header");
  }
  if (header_fp != fingerprint) {
    return Status::InvalidArgument(
        "journal " + path + " was written for a different partitioning " +
        "(fingerprint " + HexU64(header_fp) + ", expected " +
        HexU64(fingerprint) + ")");
  }
  scan.valid_end = pos;

  size_t frame = 0;
  while (pos < content.size()) {
    ++frame;
    if (!NextLine(content, &pos, &line)) {
      scan.torn = true;  // torn batch line
      return scan;
    }
    if (!ConsumeLabel(line, "batch", &rest)) {
      return ScanError(path, frame, "expected a batch line");
    }
    const char* p = rest.data();
    uint64_t seq = 0;
    uint64_t count = 0;
    if (!ParseU64(&p, &seq) || !ParseU64(&p, &count) || *p != ' ') {
      return ScanError(path, frame, "malformed batch line");
    }
    uint64_t checksum = 0;
    std::string_view checksum_tok(
        p + 1, rest.size() - static_cast<size_t>(p + 1 - rest.data()));
    if (!ParseHexU64(checksum_tok, &checksum)) {
      return ScanError(path, frame, "malformed batch checksum");
    }

    const size_t payload_start = pos;
    for (uint64_t i = 0; i < count; ++i) {
      if (!NextLine(content, &pos, &line)) {
        scan.torn = true;  // torn payload
        return scan;
      }
    }
    const std::string_view payload =
        content.substr(payload_start, pos - payload_start);

    if (!NextLine(content, &pos, &line)) {
      scan.torn = true;  // torn commit line
      return scan;
    }
    if (!ConsumeLabel(line, "commit", &rest)) {
      scan.torn = true;  // payload itself was truncated mid-frame
      return scan;
    }
    const char* q = rest.data();
    uint64_t commit_seq = 0;
    if (!ParseU64(&q, &commit_seq) || commit_seq != seq) {
      return ScanError(path, frame, "commit sequence mismatch");
    }
    // The frame is structurally complete; from here on every defect is
    // corruption, not a torn write.
    if (HashString(payload) != checksum) {
      return ScanError(path, frame, "checksum mismatch");
    }
    if (seq <= scan.last_seq) {
      return ScanError(path, frame, "non-increasing sequence number");
    }
    UpdateJournal::Entry entry;
    entry.seq = seq;
    if (count > 0) {
      Result<std::vector<UpdateBatch>> parsed =
          UpdateLog::ParseDocument(payload);
      if (!parsed.ok() || parsed->size() != 1 ||
          (*parsed)[0].updates.size() != count) {
        return ScanError(path, frame, "payload does not parse back");
      }
      entry.batch = std::move((*parsed)[0]);
    }
    scan.entries.push_back(std::move(entry));
    scan.last_seq = seq;
    scan.valid_end = pos;
  }
  return scan;
}

}  // namespace

UpdateJournal::~UpdateJournal() {
  if (fd_ >= 0) ::close(fd_);
}

UpdateJournal::UpdateJournal(UpdateJournal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UpdateJournal& UpdateJournal::operator=(UpdateJournal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

std::string UpdateJournal::JournalPath(const std::string& dir) {
  return (fs::path(dir) / kJournalFile).string();
}

Result<UpdateJournal> UpdateJournal::Open(const std::string& dir,
                                          uint64_t fingerprint) {
  Status st = EnsureDir(dir);
  if (!st.ok()) return st;
  const std::string path = JournalPath(dir);

  bool fresh = true;
  if (fs::exists(path)) {
    Result<std::string> content = ReadWholeFile(path);
    if (!content.ok()) return content.status();
    Result<JournalScan> scan = ScanJournal(path, *content, fingerprint);
    if (!scan.ok()) return scan.status();
    fresh = content->empty();
    if (scan->torn || scan->valid_end < content->size()) {
      // Drop the torn tail before appending, so the journal stays a
      // clean sequence of committed frames.
      MPC_LOG(Warning) << "journal " << path << ": dropping torn tail ("
                       << content->size() - scan->valid_end << " bytes)";
      std::error_code ec;
      fs::resize_file(path, scan->valid_end, ec);
      if (ec) {
        return Status::IoError("cannot truncate torn journal " + path +
                               ": " + ec.message());
      }
      fresh = scan->valid_end == 0;
    }
  }

  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return SysError("cannot open journal", path);
  UpdateJournal journal;
  journal.fd_ = fd;
  if (fresh) {
    const std::string header =
        std::string(kJournalMagic) + " " + HexU64(fingerprint) + "\n";
    st = WriteAll(fd, header, path);
    if (st.ok()) st = FsyncFd(fd, path);
    if (st.ok()) st = FsyncDir(dir);
    if (!st.ok()) return st;
  }
  return journal;
}

Status UpdateJournal::Append(uint64_t seq, const UpdateBatch& batch) {
  if (fd_ < 0) return Status::Internal("journal is not open");
  MPC_TRACE_SPAN("dynamic.journal.append");
  const std::string payload = SerializeBatchPayload(batch);
  std::string frame = "batch " + std::to_string(seq) + " " +
                      std::to_string(batch.updates.size()) + " " +
                      HexU64(HashString(payload)) + "\n";
  frame += payload;
  frame += "commit " + std::to_string(seq) + "\n";
  // One write for the whole frame: a crash can only leave a prefix,
  // which Replay recognizes as a torn tail.
  Status st = WriteAll(fd_, frame, kJournalFile);
  if (st.ok()) st = FsyncFd(fd_, kJournalFile);
  if (!st.ok()) return st;
  auto& m = obs::MetricsRegistry::Default();
  m.CounterRef("dynamic.journal.appends").Inc();
  m.CounterRef("dynamic.journal.bytes").Inc(frame.size());
  return Status::Ok();
}

Result<std::vector<UpdateJournal::Entry>> UpdateJournal::Replay(
    const std::string& dir, uint64_t fingerprint, uint64_t after_seq) {
  MPC_TRACE_SPAN("dynamic.journal.replay");
  const std::string path = JournalPath(dir);
  if (!fs::exists(path)) return std::vector<Entry>{};
  Result<std::string> content = ReadWholeFile(path);
  if (!content.ok()) return content.status();
  Result<JournalScan> scan = ScanJournal(path, *content, fingerprint);
  if (!scan.ok()) return scan.status();
  if (scan->torn) {
    MPC_LOG(Warning) << "journal " << path
                     << ": ignoring torn final frame (crash mid-append)";
  }
  std::vector<Entry> entries;
  for (Entry& e : scan->entries) {
    if (e.seq > after_seq) entries.push_back(std::move(e));
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Checkpoints.

namespace {

void AppendTriples(std::string* out, const char* label,
                   const std::vector<rdf::Triple>& triples) {
  *out += label;
  for (const rdf::Triple& t : triples) {
    *out += ' ';
    *out += std::to_string(t.subject);
    *out += ' ';
    *out += std::to_string(t.property);
    *out += ' ';
    *out += std::to_string(t.object);
  }
  *out += '\n';
}

template <typename T>
void AppendNumbers(std::string* out, const char* label,
                   const std::vector<T>& values) {
  *out += label;
  for (const T& v : values) {
    *out += ' ';
    *out += std::to_string(v);
  }
  *out += '\n';
}

std::string SerializeCheckpoint(const MaintainerState& s,
                                uint64_t fingerprint) {
  std::string body;
  body += kCheckpointMagic;
  body += '\n';
  body += "fingerprint " + HexU64(fingerprint) + "\n";
  body += "seq " + std::to_string(s.seq) + "\n";
  body += "k " + std::to_string(s.k) + "\n";
  body += "counts " + std::to_string(s.vertex_terms.size()) + " " +
          std::to_string(s.property_terms.size()) + " " +
          std::to_string(s.snapshot_triples.size()) + " " +
          std::to_string(s.added.size()) + " " +
          std::to_string(s.deleted.size()) + "\n";
  body += "crossing-edges " + std::to_string(s.num_crossing_edges) + "\n";
  body += "tracker " + std::to_string(s.tracker.live_internal) + " " +
          std::to_string(s.tracker.live_crossing) + " " +
          std::to_string(s.tracker.dead_slots) + " " +
          std::to_string(s.tracker.seed_lcross) + " " +
          std::to_string(s.tracker.updates_applied) + " " +
          std::to_string(s.tracker.batches_applied) + " " +
          std::to_string(s.tracker.repartitions) + "\n";
  body += "stale-deletes " + std::to_string(s.forest_stale_deletes) + "\n";
  // Count-prefixed: the run length is not derivable from another line.
  body += "seed-crossing " + std::to_string(s.seed_crossing.size());
  for (uint32_t id : s.seed_crossing) {
    body += ' ';
    body += std::to_string(id);
  }
  body += '\n';
  body += "migrations " + std::to_string(s.migrations) + "\n";
  body += "vertex-terms\n";
  for (const std::string& term : s.vertex_terms) {
    body += term;
    body += '\n';
  }
  body += "property-terms\n";
  for (const std::string& term : s.property_terms) {
    body += term;
    body += '\n';
  }
  AppendTriples(&body, "snapshot", s.snapshot_triples);
  AppendNumbers(&body, "assignment", s.assignment);
  AppendNumbers(&body, "crossing-count", s.crossing_count);
  AppendTriples(&body, "added", s.added);
  AppendTriples(&body, "deleted", s.deleted);
  body += "forest " + std::to_string(s.forest.parent.size()) + " " +
          std::to_string(s.forest.max_component_size) + " " +
          std::to_string(s.forest.num_components) + "\n";
  AppendNumbers(&body, "parent", s.forest.parent);
  AppendNumbers(&body, "rank", s.forest.rank);
  AppendNumbers(&body, "size", s.forest.size);
  body += "end " + HexU64(HashString(body)) + "\n";
  return body;
}

Status CkptError(const std::string& path, const std::string& what) {
  return Status::ParseError("checkpoint " + path + ": " + what);
}

/// Reads `count` base-10 integers from the rest of a labeled line.
template <typename T>
bool ParseNumberRun(std::string_view rest, size_t count,
                    std::vector<T>* out) {
  out->clear();
  out->reserve(count);
  const char* p = rest.data();
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    if (!ParseU64(&p, &v)) return false;
    out->push_back(static_cast<T>(v));
  }
  // Nothing but the line's end may follow.
  return p == rest.data() + rest.size();
}

bool ParseTripleRun(std::string_view rest, size_t count,
                    std::vector<rdf::Triple>* out) {
  out->clear();
  out->reserve(count);
  const char* p = rest.data();
  for (size_t i = 0; i < count; ++i) {
    uint64_t s = 0, pr = 0, o = 0;
    if (!ParseU64(&p, &s) || !ParseU64(&p, &pr) || !ParseU64(&p, &o)) {
      return false;
    }
    out->emplace_back(static_cast<rdf::VertexId>(s),
                      static_cast<rdf::PropertyId>(pr),
                      static_cast<rdf::VertexId>(o));
  }
  return p == rest.data() + rest.size();
}

Result<MaintainerState> ParseCheckpoint(const std::string& path,
                                        uint64_t fingerprint) {
  Result<std::string> content = ReadWholeFile(path);
  if (!content.ok()) return content.status();
  const std::string_view text = *content;

  // Validate the trailing end line and its whole-body checksum first: a
  // checkpoint is all-or-nothing.
  if (text.empty() || text.back() != '\n') {
    return CkptError(path, "truncated (no trailing newline)");
  }
  const size_t last_start = text.rfind('\n', text.size() - 2);
  const size_t end_start =
      last_start == std::string_view::npos ? 0 : last_start + 1;
  std::string_view end_line =
      text.substr(end_start, text.size() - 1 - end_start);
  std::string_view rest;
  uint64_t checksum = 0;
  if (!ConsumeLabel(end_line, "end", &rest) || !ParseHexU64(rest, &checksum)) {
    return CkptError(path, "missing end line");
  }
  if (HashString(text.substr(0, end_start)) != checksum) {
    return CkptError(path, "checksum mismatch");
  }

  size_t pos = 0;
  std::string_view line;
  auto next = [&](std::string_view label) -> Result<std::string_view> {
    if (!NextLine(text, &pos, &line)) {
      return CkptError(path, "unexpected end of file");
    }
    std::string_view r;
    if (!ConsumeLabel(line, label, &r)) {
      return CkptError(path, "expected '" + std::string(label) + "' line");
    }
    return r;
  };

  if (!NextLine(text, &pos, &line) || line != kCheckpointMagic) {
    return CkptError(path, "bad header");
  }
  Result<std::string_view> r = next("fingerprint");
  if (!r.ok()) return r.status();
  uint64_t file_fp = 0;
  if (!ParseHexU64(*r, &file_fp)) return CkptError(path, "bad fingerprint");
  if (file_fp != fingerprint) {
    return Status::InvalidArgument(
        "checkpoint " + path + " was written for a different partitioning " +
        "(fingerprint " + HexU64(file_fp) + ", expected " +
        HexU64(fingerprint) + ")");
  }

  MaintainerState state;
  const char* p = nullptr;
  uint64_t v = 0;

  r = next("seq");
  if (!r.ok()) return r.status();
  p = r->data();
  if (!ParseU64(&p, &state.seq)) return CkptError(path, "bad seq");

  r = next("k");
  if (!r.ok()) return r.status();
  p = r->data();
  if (!ParseU64(&p, &v)) return CkptError(path, "bad k");
  state.k = static_cast<uint32_t>(v);

  r = next("counts");
  if (!r.ok()) return r.status();
  std::vector<uint64_t> counts;
  if (!ParseNumberRun(*r, 5, &counts)) return CkptError(path, "bad counts");
  const size_t num_vertices = counts[0];
  const size_t num_properties = counts[1];

  r = next("crossing-edges");
  if (!r.ok()) return r.status();
  p = r->data();
  if (!ParseU64(&p, &state.num_crossing_edges)) {
    return CkptError(path, "bad crossing-edges");
  }

  r = next("tracker");
  if (!r.ok()) return r.status();
  std::vector<uint64_t> tracker;
  if (!ParseNumberRun(*r, 7, &tracker)) return CkptError(path, "bad tracker");
  state.tracker = DriftTracker::State{tracker[0], tracker[1], tracker[2],
                                      tracker[3], tracker[4], tracker[5],
                                      tracker[6]};

  r = next("stale-deletes");
  if (!r.ok()) return r.status();
  p = r->data();
  if (!ParseU64(&p, &state.forest_stale_deletes)) {
    return CkptError(path, "bad stale-deletes");
  }

  r = next("seed-crossing");
  if (!r.ok()) return r.status();
  p = r->data();
  if (!ParseU64(&p, &v)) return CkptError(path, "bad seed-crossing");
  {
    const std::string_view ids(p,
                               static_cast<size_t>(r->data() + r->size() - p));
    if (!ParseNumberRun(ids, v, &state.seed_crossing)) {
      return CkptError(path, "bad seed-crossing ids");
    }
  }

  r = next("migrations");
  if (!r.ok()) return r.status();
  p = r->data();
  if (!ParseU64(&p, &state.migrations)) {
    return CkptError(path, "bad migrations");
  }

  r = next("vertex-terms");
  if (!r.ok()) return r.status();
  state.vertex_terms.reserve(num_vertices);
  for (size_t i = 0; i < num_vertices; ++i) {
    if (!NextLine(text, &pos, &line)) {
      return CkptError(path, "truncated vertex terms");
    }
    state.vertex_terms.emplace_back(line);
  }
  r = next("property-terms");
  if (!r.ok()) return r.status();
  state.property_terms.reserve(num_properties);
  for (size_t i = 0; i < num_properties; ++i) {
    if (!NextLine(text, &pos, &line)) {
      return CkptError(path, "truncated property terms");
    }
    state.property_terms.emplace_back(line);
  }

  r = next("snapshot");
  if (!r.ok()) return r.status();
  if (!ParseTripleRun(*r, counts[2], &state.snapshot_triples)) {
    return CkptError(path, "bad snapshot triples");
  }
  r = next("assignment");
  if (!r.ok()) return r.status();
  if (!ParseNumberRun(*r, num_vertices, &state.assignment)) {
    return CkptError(path, "bad assignment");
  }
  r = next("crossing-count");
  if (!r.ok()) return r.status();
  if (!ParseNumberRun(*r, num_properties, &state.crossing_count)) {
    return CkptError(path, "bad crossing-count");
  }
  r = next("added");
  if (!r.ok()) return r.status();
  if (!ParseTripleRun(*r, counts[3], &state.added)) {
    return CkptError(path, "bad added triples");
  }
  r = next("deleted");
  if (!r.ok()) return r.status();
  if (!ParseTripleRun(*r, counts[4], &state.deleted)) {
    return CkptError(path, "bad deleted triples");
  }

  r = next("forest");
  if (!r.ok()) return r.status();
  std::vector<uint64_t> forest_meta;
  if (!ParseNumberRun(*r, 3, &forest_meta)) {
    return CkptError(path, "bad forest line");
  }
  state.forest.max_component_size = forest_meta[1];
  state.forest.num_components = forest_meta[2];
  r = next("parent");
  if (!r.ok()) return r.status();
  if (!ParseNumberRun(*r, forest_meta[0], &state.forest.parent)) {
    return CkptError(path, "bad forest parents");
  }
  r = next("rank");
  if (!r.ok()) return r.status();
  if (!ParseNumberRun(*r, forest_meta[0], &state.forest.rank)) {
    return CkptError(path, "bad forest ranks");
  }
  r = next("size");
  if (!r.ok()) return r.status();
  if (!ParseNumberRun(*r, forest_meta[0], &state.forest.size)) {
    return CkptError(path, "bad forest sizes");
  }
  return state;
}

/// Checkpoint files in `dir` as (seq, path), newest first.
std::vector<std::pair<uint64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kCheckpointPrefix, 0) != 0) continue;
    const size_t suffix_at = name.size() - std::strlen(kCheckpointSuffix);
    if (name.size() <= std::strlen(kCheckpointPrefix) +
                           std::strlen(kCheckpointSuffix) ||
        name.substr(suffix_at) != kCheckpointSuffix) {
      continue;
    }
    const std::string digits = name.substr(
        std::strlen(kCheckpointPrefix),
        suffix_at - std::strlen(kCheckpointPrefix));
    const char* p = digits.c_str();
    uint64_t seq = 0;
    if (!ParseU64(&p, &seq) || *p != '\0') continue;
    found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

}  // namespace

std::string CheckpointIo::CheckpointPath(const std::string& dir,
                                         uint64_t seq) {
  return (fs::path(dir) / (kCheckpointPrefix + std::to_string(seq) +
                           kCheckpointSuffix))
      .string();
}

Status CheckpointIo::Write(const MaintainerState& state, uint64_t fingerprint,
                           const std::string& dir) {
  obs::TraceSpan span("dynamic.checkpoint.write");
  span.Attr("seq", state.seq);
  MPC_RETURN_IF_ERROR(EnsureDir(dir));
  const std::string body = SerializeCheckpoint(state, fingerprint);
  const std::string path = CheckpointPath(dir, state.seq);
  const std::string tmp = path + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return SysError("cannot create checkpoint", tmp);
  Status st = WriteAll(fd, body, tmp);
  if (st.ok()) st = FsyncFd(fd, tmp);
  ::close(fd);
  if (!st.ok()) return st;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return SysError("cannot rename checkpoint into place", path);
  }
  MPC_RETURN_IF_ERROR(FsyncDir(dir));

  // Keep the two newest checkpoints; the rest are dead weight.
  const auto checkpoints = ListCheckpoints(dir);
  for (size_t i = 2; i < checkpoints.size(); ++i) {
    std::error_code ec;
    fs::remove(checkpoints[i].second, ec);
  }
  auto& m = obs::MetricsRegistry::Default();
  m.CounterRef("dynamic.checkpoints").Inc();
  m.CounterRef("dynamic.checkpoint.bytes").Inc(body.size());
  return Status::Ok();
}

Result<MaintainerState> CheckpointIo::LoadLatest(const std::string& dir,
                                                 uint64_t fingerprint) {
  MPC_TRACE_SPAN("dynamic.checkpoint.load");
  const auto checkpoints = ListCheckpoints(dir);
  if (checkpoints.empty()) {
    return Status::NotFound("no checkpoints in " + dir);
  }
  Status last_error = Status::Ok();
  for (const auto& [seq, path] : checkpoints) {
    Result<MaintainerState> state = ParseCheckpoint(path, fingerprint);
    if (state.ok()) return state;
    if (state.status().code() == StatusCode::kInvalidArgument) {
      // Fingerprint mismatch: the whole directory belongs to another
      // partitioning; falling back to an older file cannot help.
      return state.status();
    }
    MPC_LOG(Warning) << "checkpoint " << path
                     << " unreadable, falling back: "
                     << state.status().ToString();
    last_error = state.status();
  }
  return last_error;
}

}  // namespace mpc::dynamic

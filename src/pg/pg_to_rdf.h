#ifndef MPC_PG_PG_TO_RDF_H_
#define MPC_PG_PG_TO_RDF_H_

#include <unordered_map>

#include "mpc/mpc_partitioner.h"
#include "partition/partitioning.h"
#include "pg/property_graph.h"
#include "rdf/graph.h"

namespace mpc::pg {

/// Options for the standard property-graph -> RDF mapping.
struct PgMappingOptions {
  /// IRI namespace prefix for minted terms.
  std::string ns = "http://example.org/pg";
  /// Emit `vertex rdf:type <ns/label/L>` triples.
  bool emit_vertex_labels = true;
  /// Emit `vertex <ns/key/K> "value"` triples for vertex attributes.
  bool emit_vertex_attributes = true;
  /// Edge attributes require reification: the edge becomes a node
  /// `<ns/e/I>` with <ns/from>, <ns/to>, its label as rdf:type and its
  /// attributes as key triples. Without reification edge attributes are
  /// dropped and the edge maps to one `src <ns/rel/LABEL> dst` triple.
  bool reify_attributed_edges = false;
};

/// Maps a property graph to an RDF graph (the direct mapping: vertices ->
/// IRIs, labels -> rdf:type, attributes -> literal triples, edges ->
/// label-named predicates). This is the bridge that lets MPC — defined on
/// RDF edge labels — partition property graphs, per the Section VII
/// outlook.
rdf::RdfGraph ToRdfGraph(const PropertyGraph& graph,
                         const PgMappingOptions& options = {});

/// Result of running MPC on a property graph via the RDF mapping.
struct PgPartitionResult {
  /// Partition of each original vertex, keyed by its user id.
  std::unordered_map<std::string, uint32_t> vertex_partition;
  /// Edge labels that ended up crossing (the |L_cross| of the mapped
  /// graph restricted to relationship predicates).
  std::vector<std::string> crossing_edge_labels;
  size_t num_crossing_properties = 0;
  size_t num_crossing_edges = 0;
  double balance_ratio = 0.0;
};

/// Partitions a property graph with MPC: maps to RDF, runs MpcPartitioner
/// and reports the result in property-graph vocabulary. The Section VII
/// caveat is directly observable here: graphs with few, high-coverage
/// edge labels leave MPC nothing to internalize.
Result<PgPartitionResult> PartitionPropertyGraph(
    const PropertyGraph& graph, const core::MpcOptions& options,
    const PgMappingOptions& mapping = {});

}  // namespace mpc::pg

#endif  // MPC_PG_PG_TO_RDF_H_

#include "pg/property_graph.h"

#include <algorithm>

namespace mpc::pg {

Result<uint32_t> PropertyGraph::AddVertex(std::string id, std::string label,
                                          std::vector<Attribute> attributes) {
  auto [it, inserted] =
      index_.emplace(id, static_cast<uint32_t>(vertices_.size()));
  if (!inserted) {
    return Status::InvalidArgument("duplicate vertex id: " + id);
  }
  vertices_.push_back(
      PgVertex{std::move(id), std::move(label), std::move(attributes)});
  return it->second;
}

Result<uint32_t> PropertyGraph::AddEdge(uint32_t source, uint32_t target,
                                        std::string label,
                                        std::vector<Attribute> attributes) {
  if (source >= vertices_.size() || target >= vertices_.size()) {
    return Status::OutOfRange("edge endpoint index out of range");
  }
  edges_.push_back(PgEdge{source, target, std::move(label),
                          std::move(attributes)});
  return static_cast<uint32_t>(edges_.size() - 1);
}

Result<uint32_t> PropertyGraph::AddEdgeById(const std::string& source_id,
                                            const std::string& target_id,
                                            std::string label,
                                            std::vector<Attribute> attributes) {
  Result<uint32_t> source = IndexOf(source_id);
  if (!source.ok()) return source.status();
  Result<uint32_t> target = IndexOf(target_id);
  if (!target.ok()) return target.status();
  return AddEdge(*source, *target, std::move(label), std::move(attributes));
}

Result<uint32_t> PropertyGraph::IndexOf(const std::string& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("unknown vertex id: " + id);
  }
  return it->second;
}

std::vector<std::string> PropertyGraph::EdgeLabels() const {
  std::vector<std::string> labels;
  for (const PgEdge& e : edges_) labels.push_back(e.label);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

}  // namespace mpc::pg

#include "pg/pg_to_rdf.h"

#include <string>

namespace mpc::pg {

namespace {

std::string VertexIri(const PgMappingOptions& options,
                      const std::string& id) {
  return "<" + options.ns + "/v/" + id + ">";
}
std::string LabelIri(const PgMappingOptions& options,
                     const std::string& label) {
  return "<" + options.ns + "/label/" + label + ">";
}
std::string RelIri(const PgMappingOptions& options,
                   const std::string& label) {
  return "<" + options.ns + "/rel/" + label + ">";
}
std::string KeyIri(const PgMappingOptions& options, const std::string& key) {
  return "<" + options.ns + "/key/" + key + ">";
}
std::string Literal(const std::string& value) { return "\"" + value + "\""; }

constexpr const char* kRdfType =
    "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>";

}  // namespace

rdf::RdfGraph ToRdfGraph(const PropertyGraph& graph,
                         const PgMappingOptions& options) {
  rdf::GraphBuilder builder;
  for (const PgVertex& v : graph.vertices()) {
    const std::string vertex = VertexIri(options, v.id);
    if (options.emit_vertex_labels && !v.label.empty()) {
      builder.Add(vertex, kRdfType, LabelIri(options, v.label));
    }
    if (options.emit_vertex_attributes) {
      for (const Attribute& a : v.attributes) {
        builder.Add(vertex, KeyIri(options, a.key), Literal(a.value));
      }
    }
  }
  size_t edge_counter = 0;
  for (const PgEdge& e : graph.edges()) {
    const std::string source =
        VertexIri(options, graph.vertices()[e.source].id);
    const std::string target =
        VertexIri(options, graph.vertices()[e.target].id);
    if (options.reify_attributed_edges && !e.attributes.empty()) {
      const std::string node =
          "<" + options.ns + "/e/" + std::to_string(edge_counter) + ">";
      builder.Add(node, "<" + options.ns + "/from>", source);
      builder.Add(node, "<" + options.ns + "/to>", target);
      builder.Add(node, kRdfType, RelIri(options, e.label));
      for (const Attribute& a : e.attributes) {
        builder.Add(node, KeyIri(options, a.key), Literal(a.value));
      }
    } else {
      builder.Add(source, RelIri(options, e.label), target);
    }
    ++edge_counter;
  }
  return builder.Build();
}

Result<PgPartitionResult> PartitionPropertyGraph(
    const PropertyGraph& graph, const core::MpcOptions& options,
    const PgMappingOptions& mapping) {
  if (graph.num_vertices() == 0) {
    return Status::InvalidArgument("empty property graph");
  }
  rdf::RdfGraph rdf_graph = ToRdfGraph(graph, mapping);
  core::MpcPartitioner partitioner(options);
  partition::Partitioning partitioning = partitioner.Partition(rdf_graph);

  PgPartitionResult result;
  result.num_crossing_properties = partitioning.num_crossing_properties();
  result.num_crossing_edges = partitioning.num_crossing_edges();
  result.balance_ratio = partitioning.BalanceRatio();

  const std::string rel_prefix = "<" + mapping.ns + "/rel/";
  for (rdf::PropertyId p : partitioning.CrossingProperties()) {
    const std::string& name = rdf_graph.PropertyName(p);
    if (name.rfind(rel_prefix, 0) == 0) {
      result.crossing_edge_labels.push_back(
          name.substr(rel_prefix.size(),
                      name.size() - rel_prefix.size() - 1));
    }
  }

  for (const PgVertex& v : graph.vertices()) {
    rdf::VertexId mapped =
        rdf_graph.vertex_dict().Lookup(VertexIri(mapping, v.id));
    if (mapped == rdf::kInvalidVertex) {
      // An isolated vertex with no label/attribute triples never entered
      // the RDF graph; place it on partition 0.
      result.vertex_partition.emplace(v.id, 0);
    } else {
      result.vertex_partition.emplace(
          v.id, partitioning.assignment().part[mapped]);
    }
  }
  return result;
}

}  // namespace mpc::pg

#ifndef MPC_PG_PROPERTY_GRAPH_H_
#define MPC_PG_PROPERTY_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace mpc::pg {

/// A key -> value attribute of a vertex or edge. Values are opaque
/// strings (the partitioner never interprets them).
struct Attribute {
  std::string key;
  std::string value;
};

/// A labeled property-graph vertex.
struct PgVertex {
  std::string id;     // user-supplied, unique
  std::string label;  // e.g. "Person"
  std::vector<Attribute> attributes;
};

/// A labeled, attributed, directed edge between two vertices (by index).
struct PgEdge {
  uint32_t source = 0;
  uint32_t target = 0;
  std::string label;  // e.g. "FOLLOWS"
  std::vector<Attribute> attributes;
};

/// A minimal labeled property graph (Neo4j-style), the data model the
/// paper's Section VII names as MPC's next target: "MPC can be further
/// extended to property graphs, but its superiority in those graphs may
/// not be as high ... [they] have a small number of edge labels, each
/// covering many edges."
class PropertyGraph {
 public:
  /// Adds a vertex; ids must be unique. Returns its dense index.
  Result<uint32_t> AddVertex(std::string id, std::string label,
                             std::vector<Attribute> attributes = {});

  /// Adds an edge between existing vertex indices.
  Result<uint32_t> AddEdge(uint32_t source, uint32_t target,
                           std::string label,
                           std::vector<Attribute> attributes = {});

  /// Adds an edge by vertex ids (must already exist).
  Result<uint32_t> AddEdgeById(const std::string& source_id,
                               const std::string& target_id,
                               std::string label,
                               std::vector<Attribute> attributes = {});

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<PgVertex>& vertices() const { return vertices_; }
  const std::vector<PgEdge>& edges() const { return edges_; }

  /// Dense index for a vertex id, or an error.
  Result<uint32_t> IndexOf(const std::string& id) const;

  /// Distinct edge labels (the analogue of RDF's property set).
  std::vector<std::string> EdgeLabels() const;

 private:
  std::vector<PgVertex> vertices_;
  std::vector<PgEdge> edges_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace mpc::pg

#endif  // MPC_PG_PROPERTY_GRAPH_H_

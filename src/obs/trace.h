#ifndef MPC_OBS_TRACE_H_
#define MPC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace mpc::obs {

/// Typed span attribute value (the "args" of a Chrome trace event).
struct AttrValue {
  enum class Kind { kInt, kUint, kDouble, kString };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  uint64_t u = 0;
  double d = 0.0;
  std::string s;

  static AttrValue Int(int64_t v);
  static AttrValue Uint(uint64_t v);
  static AttrValue Double(double v);
  static AttrValue Str(std::string_view v);

  /// JSON-encoded value ("42", "1.5", "\"greedy\"").
  std::string ToJson() const;
};

struct TraceAttr {
  std::string key;
  AttrValue value;
};

/// One completed span. Timestamps are microseconds on the process-wide
/// monotonic trace clock (Timer::Clock), so events from every thread
/// share one time axis.
struct TraceEvent {
  std::string name;
  uint64_t span_id = 0;
  /// Enclosing span on the same thread at the moment this span opened
  /// (0 = top-level).
  uint64_t parent_id = 0;
  /// Id of the query-level trace this span belongs to. A top-level span
  /// with no ambient context becomes its own trace root (trace_id ==
  /// span_id), so every span chain carries a trace id uniformly.
  uint64_t trace_id = 0;
  /// Dense per-process trace thread index (registration order, not the
  /// OS tid — stable across runs with the same thread structure).
  uint32_t tid = 0;
  /// Originating OS process for merged multi-process traces. 0 means
  /// "this process"; exporters render it as pid 1 for compatibility with
  /// single-process traces. Remote spans ingested via RecordRemoteSpans
  /// carry the worker's real pid.
  uint32_t pid = 0;
  uint32_t depth = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  std::vector<TraceAttr> attrs;
};

/// Propagatable slice of the ambient tracing state: which query-level
/// trace the current work belongs to and which span should adopt spans
/// opened under it. Crosses threads (executor pool lambdas) and, via
/// EvalRequestMsg, process boundaries (site workers).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  /// Free-form query label (ExecOptions::trace_tag) — propagated so a
  /// site worker's spans can be attributed to the query that caused
  /// them without joining on span ids.
  std::string query_tag;

  bool empty() const { return trace_id == 0; }
};

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// The whole-program tracing switch. When false, a TraceSpan costs one
/// relaxed atomic load and nothing is recorded.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Enables tracing. Events recorded before this call are discarded, so a
/// Start/Collect pair brackets exactly one traced region. Also installs
/// the span-id provider so MPC_LOG lines carry the active span id.
void StartTracing();

/// Disables tracing (recorded events stay collectable).
void StopTracing();

/// Logically discards everything recorded so far (advances the per-
/// thread watermarks exactly like StartTracing) without toggling the
/// enabled flag. Site workers call this after shipping a query's spans
/// so their buffers stay bounded across a long-lived connection.
void DiscardTrace();

/// Id of the innermost open span on this thread (0 = none).
uint64_t CurrentSpanId();

/// The ambient trace context of this thread: the innermost open span
/// and its trace id (plus the installed query tag, if any). Capture
/// this before handing work to another thread, then install it there
/// with ScopedTraceContext.
TraceContext CurrentTraceContext();

/// Microseconds elapsed on the process-wide trace clock (the same axis
/// as TraceEvent::start_us). Used to re-base remote span timestamps.
double TraceNowMicros();

/// Installs a trace context on this thread for the current scope:
/// spans opened inside adopt ctx.trace_id and parent to
/// ctx.parent_span_id. Restores the previous thread state (including
/// any ambient context) on destruction. An empty context installs
/// cleanly and simply isolates the scope from the caller's spans.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  uint64_t saved_trace_id_ = 0;
  uint64_t saved_span_ = 0;
  uint32_t saved_depth_ = 0;
  std::string saved_tag_;
};

/// The query tag installed by the innermost ScopedTraceContext (empty
/// when none is installed).
std::string CurrentQueryTag();

/// RAII span. Opened (and its id published for nesting/log correlation)
/// at construction, recorded at destruction. Record-side cost is one
/// append to a per-thread chunk list — no locks, no contention with
/// other threads; exporters synchronize on per-chunk release/acquire
/// counters. Use via MPC_TRACE_SPAN for the common no-attribute case, or
/// construct directly to attach attributes:
///
///   obs::TraceSpan span("mpc.selection");
///   span.Attr("iterations", result.iterations);
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) {
    if (TracingEnabled()) Begin(name);
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  TraceSpan& Attr(std::string_view key, int64_t value);
  TraceSpan& Attr(std::string_view key, uint64_t value);
  TraceSpan& Attr(std::string_view key, double value);
  TraceSpan& Attr(std::string_view key, std::string_view value);
  TraceSpan& Attr(std::string_view key, const char* value) {
    return Attr(key, std::string_view(value));
  }
  TraceSpan& Attr(std::string_view key, int value) {
    return Attr(key, static_cast<int64_t>(value));
  }
  TraceSpan& Attr(std::string_view key, unsigned value) {
    return Attr(key, static_cast<uint64_t>(value));
  }

  bool active() const { return active_; }

 private:
  void Begin(std::string_view name);
  void End();

  bool active_ = false;
  bool owns_trace_ = false;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t trace_id_ = 0;
  uint32_t depth_ = 0;
  Timer::Clock::time_point start_{};
  std::string name_;
  std::vector<TraceAttr> attrs_;
};

/// Snapshot of every event recorded since StartTracing, sorted by
/// (pid, tid, start_us). Safe to call while other threads still trace;
/// events being appended concurrently may or may not be included.
std::vector<TraceEvent> CollectTrace();

/// Ingests spans recorded by another process (a site worker) into this
/// process's trace under `trace_id`. Span ids are remapped through the
/// local id allocator so they cannot collide with coordinator spans;
/// parent edges internal to the batch are remapped consistently, and
/// spans whose parent is not in the batch are re-parented to
/// `parent_span_id` (the coordinator-side span that owns the remote
/// call). Timestamps are shifted by `delta_us` onto the local trace
/// clock and every event is stamped with the worker's `pid`. Call from
/// the thread that owns the remote call (appends to its buffer).
void RecordRemoteSpans(std::vector<TraceEvent> events, uint64_t trace_id,
                       uint64_t parent_span_id, double delta_us,
                       uint32_t pid);

/// Every collected event whose trace_id matches — one query's merged
/// trace (coordinator + ingested site-worker spans).
std::vector<TraceEvent> ExtractTraceForId(uint64_t trace_id);

/// Chrome trace_event JSON ({"traceEvents":[...]}) — loadable in
/// chrome://tracing and Perfetto. Span ids, trace ids and attributes
/// land in each event's "args"; remote events keep their real pid.
std::string TraceToChromeJson();

/// Chrome trace_event JSON for an explicit event list (e.g. the output
/// of ExtractTraceForId).
std::string TraceEventsToChromeJson(const std::vector<TraceEvent>& events);

/// Collapsed per-thread call tree for terminals: siblings with the same
/// name are merged into one line with a count and total duration.
std::string TraceToTextTree();

/// Writes TraceToChromeJson() to `path`.
Status WriteTrace(const std::string& path);

/// Writes the merged trace for one trace id to `path`.
Status WriteTraceForId(uint64_t trace_id, const std::string& path);

}  // namespace mpc::obs

#define MPC_OBS_CONCAT_INNER_(a, b) a##b
#define MPC_OBS_CONCAT_(a, b) MPC_OBS_CONCAT_INNER_(a, b)

/// Anonymous RAII scope: MPC_TRACE_SPAN("coarsen"); traces to the end of
/// the enclosing block.
#define MPC_TRACE_SPAN(name) \
  ::mpc::obs::TraceSpan MPC_OBS_CONCAT_(mpc_trace_span_, __LINE__)(name)

#endif  // MPC_OBS_TRACE_H_

#ifndef MPC_OBS_TRACE_H_
#define MPC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace mpc::obs {

/// Typed span attribute value (the "args" of a Chrome trace event).
struct AttrValue {
  enum class Kind { kInt, kUint, kDouble, kString };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  uint64_t u = 0;
  double d = 0.0;
  std::string s;

  static AttrValue Int(int64_t v);
  static AttrValue Uint(uint64_t v);
  static AttrValue Double(double v);
  static AttrValue Str(std::string_view v);

  /// JSON-encoded value ("42", "1.5", "\"greedy\"").
  std::string ToJson() const;
};

struct TraceAttr {
  std::string key;
  AttrValue value;
};

/// One completed span. Timestamps are microseconds on the process-wide
/// monotonic trace clock (Timer::Clock), so events from every thread
/// share one time axis.
struct TraceEvent {
  std::string name;
  uint64_t span_id = 0;
  /// Enclosing span on the same thread at the moment this span opened
  /// (0 = top-level).
  uint64_t parent_id = 0;
  /// Dense per-process trace thread index (registration order, not the
  /// OS tid — stable across runs with the same thread structure).
  uint32_t tid = 0;
  uint32_t depth = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  std::vector<TraceAttr> attrs;
};

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// The whole-program tracing switch. When false, a TraceSpan costs one
/// relaxed atomic load and nothing is recorded.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Enables tracing. Events recorded before this call are discarded, so a
/// Start/Collect pair brackets exactly one traced region. Also installs
/// the span-id provider so MPC_LOG lines carry the active span id.
void StartTracing();

/// Disables tracing (recorded events stay collectable).
void StopTracing();

/// Id of the innermost open span on this thread (0 = none).
uint64_t CurrentSpanId();

/// RAII span. Opened (and its id published for nesting/log correlation)
/// at construction, recorded at destruction. Record-side cost is one
/// append to a per-thread chunk list — no locks, no contention with
/// other threads; exporters synchronize on per-chunk release/acquire
/// counters. Use via MPC_TRACE_SPAN for the common no-attribute case, or
/// construct directly to attach attributes:
///
///   obs::TraceSpan span("mpc.selection");
///   span.Attr("iterations", result.iterations);
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) {
    if (TracingEnabled()) Begin(name);
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  TraceSpan& Attr(std::string_view key, int64_t value);
  TraceSpan& Attr(std::string_view key, uint64_t value);
  TraceSpan& Attr(std::string_view key, double value);
  TraceSpan& Attr(std::string_view key, std::string_view value);
  TraceSpan& Attr(std::string_view key, const char* value) {
    return Attr(key, std::string_view(value));
  }
  TraceSpan& Attr(std::string_view key, int value) {
    return Attr(key, static_cast<int64_t>(value));
  }
  TraceSpan& Attr(std::string_view key, unsigned value) {
    return Attr(key, static_cast<uint64_t>(value));
  }

  bool active() const { return active_; }

 private:
  void Begin(std::string_view name);
  void End();

  bool active_ = false;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint32_t depth_ = 0;
  Timer::Clock::time_point start_{};
  std::string name_;
  std::vector<TraceAttr> attrs_;
};

/// Snapshot of every event recorded since StartTracing, sorted by
/// (tid, start_us). Safe to call while other threads still trace; events
/// being appended concurrently may or may not be included.
std::vector<TraceEvent> CollectTrace();

/// Chrome trace_event JSON ({"traceEvents":[...]}) — loadable in
/// chrome://tracing and Perfetto. Span ids and attributes land in each
/// event's "args".
std::string TraceToChromeJson();

/// Collapsed per-thread call tree for terminals: siblings with the same
/// name are merged into one line with a count and total duration.
std::string TraceToTextTree();

/// Writes TraceToChromeJson() to `path`.
Status WriteTrace(const std::string& path);

}  // namespace mpc::obs

#define MPC_OBS_CONCAT_INNER_(a, b) a##b
#define MPC_OBS_CONCAT_(a, b) MPC_OBS_CONCAT_INNER_(a, b)

/// Anonymous RAII scope: MPC_TRACE_SPAN("coarsen"); traces to the end of
/// the enclosing block.
#define MPC_TRACE_SPAN(name) \
  ::mpc::obs::TraceSpan MPC_OBS_CONCAT_(mpc_trace_span_, __LINE__)(name)

#endif  // MPC_OBS_TRACE_H_

#ifndef MPC_OBS_METRICS_H_
#define MPC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace mpc::obs {

struct MetricsSnapshot;  // obs/snapshot.h

/// Monotonic counter. Updates are relaxed atomics — safe from any thread
/// (ParallelFor workers included), with no ordering guarantees beyond
/// the count itself.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (replay-queue depth, |L_cross|,
/// balance ratio, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds in
/// ascending order; one overflow bucket is added past the last bound.
/// Observe() is two relaxed atomic adds — callable from any thread.
/// Quantiles are estimated by linear interpolation inside the bucket
/// containing the target rank (the usual Prometheus-style estimate).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Estimated q-quantile (q in [0,1]); 0 when empty. Values in the
  /// overflow bucket clamp to the last finite bound.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return buckets_.size(); }

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 slots; the last is the overflow bucket.
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default exponential bucket bounds for millisecond durations:
/// 0.01, 0.03, 0.1, ..., 30000.
std::vector<double> DefaultLatencyBoundsMs();

/// Named metric registry. Creation/lookup takes a mutex (amortize by
/// looking up once per operation, not per loop index); the returned
/// references are stable for the registry's lifetime. Export formats:
/// JSON (one object with counters/gauges/histograms maps) and an aligned
/// text table.
class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented subsystem reports to.
  static MetricsRegistry& Default();

  Counter& CounterRef(const std::string& name);
  Gauge& GaugeRef(const std::string& name);
  /// `bounds` applies only on first creation (ignored for an existing
  /// histogram of the same name).
  Histogram& HistogramRef(const std::string& name,
                          std::vector<double> bounds = {});

  std::string ToJson() const;
  std::string ToText() const;
  Status WriteJson(const std::string& path) const;

  /// Consistent point-in-time copy of every metric (obs/snapshot.h),
  /// timestamped on the trace clock. Two snapshots subtract into
  /// windowed rates/quantiles — the basis of the live-introspection
  /// path (`mpc top`, StatsRequest).
  MetricsSnapshot TakeSnapshot() const;

  /// Drops every metric. Invalidates previously returned references —
  /// test isolation only; instrumented code must re-look-up names rather
  /// than caching references across calls.
  void ResetForTest();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mpc::obs

#endif  // MPC_OBS_METRICS_H_

#include "obs/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "obs/trace.h"

namespace mpc::obs {

namespace {

std::string EscapeName(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets,
                           uint64_t count, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (b >= bounds.size()) {
        return bounds.empty() ? 0.0 : bounds.back();  // overflow bucket
      }
      const double upper = bounds[b];
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      const double rank_in_bucket =
          std::max(0.0, target - static_cast<double>(cumulative));
      return lower + (upper - lower) * rank_in_bucket /
                         static_cast<double>(in_bucket);
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

uint64_t CounterDelta(uint64_t prev, uint64_t cur) {
  return cur >= prev ? cur - prev : cur;
}

HistogramSnapshot HistogramDelta(const HistogramSnapshot& prev,
                                 const HistogramSnapshot& cur) {
  // Shape change or any shrinking bucket means the histogram was reset
  // inside the window (worker respawn, test reset): the current state
  // is then entirely post-reset, so it IS the window delta.
  bool reset = prev.bounds != cur.bounds ||
               prev.buckets.size() != cur.buckets.size();
  if (!reset) {
    for (size_t b = 0; b < cur.buckets.size(); ++b) {
      if (cur.buckets[b] < prev.buckets[b]) {
        reset = true;
        break;
      }
    }
  }
  if (reset) return cur;
  HistogramSnapshot delta;
  delta.bounds = cur.bounds;
  delta.buckets.resize(cur.buckets.size());
  for (size_t b = 0; b < cur.buckets.size(); ++b) {
    delta.buckets[b] = cur.buckets[b] - prev.buckets[b];
  }
  delta.count = CounterDelta(prev.count, cur.count);
  delta.sum = cur.sum >= prev.sum ? cur.sum - prev.sum : cur.sum;
  return delta;
}

SnapshotWindow::SnapshotWindow(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SnapshotWindow::Push(MetricsSnapshot snapshot) {
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(snapshot));
    return;
  }
  entries_[start_] = std::move(snapshot);
  start_ = (start_ + 1) % capacity_;
}

const MetricsSnapshot& SnapshotWindow::oldest() const {
  return entries_[entries_.size() < capacity_ ? 0 : start_];
}

const MetricsSnapshot& SnapshotWindow::newest() const {
  const size_t last = entries_.size() < capacity_
                          ? entries_.size() - 1
                          : (start_ + capacity_ - 1) % capacity_;
  return entries_[last];
}

Snapshotter::Snapshotter(SnapshotterOptions options)
    : options_(options), window_(options.window) {}

Snapshotter::~Snapshotter() { Stop(); }

void Snapshotter::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    started_at_ms_ = TraceNowMicros() / 1000.0;
    window_.Push(MetricsRegistry::Default().TakeSnapshot());
  }
  thread_ = std::thread(&Snapshotter::Loop, this);
}

void Snapshotter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Snapshotter::SampleNow() {
  MetricsSnapshot snapshot = MetricsRegistry::Default().TakeSnapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  window_.Push(std::move(snapshot));
}

void Snapshotter::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           options_.interval_ms),
                 [this] { return !running_; });
    if (!running_) return;
    lock.unlock();
    MetricsSnapshot snapshot = MetricsRegistry::Default().TakeSnapshot();
    lock.lock();
    window_.Push(std::move(snapshot));
  }
}

std::string Snapshotter::StatsJson() const {
  MetricsSnapshot cur = MetricsRegistry::Default().TakeSnapshot();
  MetricsSnapshot prev;
  bool has_prev = false;
  double started_at_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!window_.empty()) {
      prev = window_.oldest();
      has_prev = true;
    }
    started_at_ms = started_at_ms_;
  }
  // No baseline sample yet (fresh or just-reset snapshotter): there is
  // no window. A default-constructed prev would make window_ms the
  // absolute trace-clock value and dress lifetime totals up as windowed
  // deltas with garbage rates; report a zero-width window instead, with
  // lifetime values and zero rates.
  const double window_ms =
      has_prev ? std::max(0.0, cur.at_ms - prev.at_ms) : 0.0;
  const double window_s = window_ms / 1000.0;
  std::string out = "{";
  out += "\"uptime_ms\":" + Num(std::max(0.0, cur.at_ms - started_at_ms));
  out += ",\"window_ms\":" + Num(window_ms);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : cur.counters) {
    if (!first) out += ",";
    first = false;
    auto it = prev.counters.find(name);
    const uint64_t delta =
        has_prev ? CounterDelta(it == prev.counters.end() ? 0 : it->second,
                                value)
                 : 0;
    const double rate =
        window_s > 0.0 ? static_cast<double>(delta) / window_s : 0.0;
    out += EscapeName(name) + ":{\"value\":" + std::to_string(value) +
           ",\"window_delta\":" + std::to_string(delta) +
           ",\"rate_per_s\":" + Num(rate) + "}";
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : cur.gauges) {
    if (!first) out += ",";
    first = false;
    out += EscapeName(name) + ":" + Num(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hs] : cur.histograms) {
    if (!first) out += ",";
    first = false;
    auto it = prev.histograms.find(name);
    const HistogramSnapshot delta =
        it == prev.histograms.end() ? hs : HistogramDelta(it->second, hs);
    // Without a baseline the quantiles still summarize lifetime samples,
    // but the window count and rate are honestly zero.
    const uint64_t window_count = has_prev ? delta.count : 0;
    const double rate =
        window_s > 0.0 ? static_cast<double>(window_count) / window_s : 0.0;
    out += EscapeName(name) + ":{\"count\":" + std::to_string(hs.count) +
           ",\"window_count\":" + std::to_string(window_count) +
           ",\"rate_per_s\":" + Num(rate) +
           ",\"p50\":" + Num(QuantileFromBuckets(delta.bounds, delta.buckets,
                                                 delta.count, 0.50)) +
           ",\"p95\":" + Num(QuantileFromBuckets(delta.bounds, delta.buckets,
                                                 delta.count, 0.95)) +
           ",\"p99\":" + Num(QuantileFromBuckets(delta.bounds, delta.buckets,
                                                 delta.count, 0.99)) +
           "}";
  }
  out += "}}";
  return out;
}

}  // namespace mpc::obs

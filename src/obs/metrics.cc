#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace mpc::obs {

namespace {

std::string EscapeName(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBoundsMs();
  if (buckets_.size() != bounds_.size() + 1) {
    // bounds_ was defaulted above; size the buckets to match.
    std::vector<std::atomic<uint64_t>> fresh(bounds_.size() + 1);
    buckets_.swap(fresh);
  }
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> buckets(buckets_.size());
  for (size_t b = 0; b < buckets_.size(); ++b) buckets[b] = bucket_count(b);
  return QuantileFromBuckets(bounds_, buckets, count(), q);
}

std::vector<double> DefaultLatencyBoundsMs() {
  std::vector<double> bounds;
  for (double b = 0.01; b < 60000.0; b *= std::sqrt(10.0)) bounds.push_back(b);
  return bounds;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::CounterRef(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GaugeRef(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::HistogramRef(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += EscapeName(name) + ":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += EscapeName(name) + ":" + Num(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += EscapeName(name) + ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + Num(h->sum()) +
           ",\"p50\":" + Num(h->Quantile(0.50)) +
           ",\"p95\":" + Num(h->Quantile(0.95)) +
           ",\"p99\":" + Num(h->Quantile(0.99)) + ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t b = 0; b < h->num_buckets(); ++b) {
      const uint64_t count = h->bucket_count(b);
      if (count == 0) continue;  // sparse export
      if (!first_bucket) out += ",";
      first_bucket = false;
      const std::string le = b < h->bounds().size()
                                 ? Num(h->bounds()[b])
                                 : std::string("\"+inf\"");
      out += "{\"le\":" + le + ",\"count\":" + std::to_string(count) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name + " " + FormatWithCommas(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name + " " + FormatDouble(gauge->value(), 4) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " count=" + FormatWithCommas(h->count()) +
           " sum=" + FormatDouble(h->sum(), 3) +
           " p50=" + FormatDouble(h->Quantile(0.50), 3) +
           " p95=" + FormatDouble(h->Quantile(0.95), 3) +
           " p99=" + FormatDouble(h->Quantile(0.99), 3) + "\n";
  }
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  MetricsSnapshot snapshot;
  snapshot.at_ms = TraceNowMicros() / 1000.0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.buckets.resize(h->num_buckets());
    for (size_t b = 0; b < h->num_buckets(); ++b) {
      hs.buckets[b] = h->bucket_count(b);
    }
    hs.count = h->count();
    hs.sum = h->sum();
    snapshot.histograms.emplace(name, std::move(hs));
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace mpc::obs

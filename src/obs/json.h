#ifndef MPC_OBS_JSON_H_
#define MPC_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mpc::obs {

/// Minimal JSON DOM, just enough to round-trip-check the tracer's and
/// the metrics registry's exports (and for tools/trace_check). Not a
/// general-purpose parser, but escapes decode fully: \uXXXX BMP escapes
/// and surrogate pairs are decoded to UTF-8 (lone surrogates are a
/// ParseError), numbers parsed as double.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// First member with `key`, or nullptr. Objects only.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). ParseError carries the byte offset of the problem.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace mpc::obs

#endif  // MPC_OBS_JSON_H_

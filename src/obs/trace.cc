#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace mpc::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

AttrValue AttrValue::Int(int64_t v) {
  AttrValue a;
  a.kind = Kind::kInt;
  a.i = v;
  return a;
}
AttrValue AttrValue::Uint(uint64_t v) {
  AttrValue a;
  a.kind = Kind::kUint;
  a.u = v;
  return a;
}
AttrValue AttrValue::Double(double v) {
  AttrValue a;
  a.kind = Kind::kDouble;
  a.d = v;
  return a;
}
AttrValue AttrValue::Str(std::string_view v) {
  AttrValue a;
  a.kind = Kind::kString;
  a.s.assign(v);
  return a;
}

namespace {

std::string EscapeJsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// JSON numbers must not be NaN/Inf; clamp to 0 (observability data, not
/// arithmetic).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out << v;
  return out.str();
}

/// Per-thread event storage: a singly linked list of fixed chunks. The
/// owning thread appends with plain writes and publishes each event (and
/// each new chunk) with a release store; exporters walk the list with
/// acquire loads. No mutex is ever taken on the record path, and
/// published slots are immutable, so concurrent Collect is race-free.
constexpr size_t kChunkSize = 256;

struct Chunk {
  std::atomic<size_t> count{0};
  std::atomic<Chunk*> next{nullptr};
  std::array<TraceEvent, kChunkSize> events;
};

class ThreadBuffer {
 public:
  ThreadBuffer() : head_(new Chunk), tail_(head_) {}
  ~ThreadBuffer() {
    for (Chunk* c = head_; c != nullptr;) {
      Chunk* next = c->next.load(std::memory_order_acquire);
      delete c;
      c = next;
    }
  }

  /// Owner thread only.
  void Append(TraceEvent&& event) {
    size_t n = tail_->count.load(std::memory_order_relaxed);
    if (n == kChunkSize) {
      Chunk* fresh = new Chunk;
      tail_->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      n = 0;
    }
    tail_->events[n] = std::move(event);
    tail_->count.store(n + 1, std::memory_order_release);
  }

  /// Any thread. Appends every published event with index >=
  /// discard_before to `out`.
  void Snapshot(std::vector<TraceEvent>* out) const {
    const size_t skip = discard_before.load(std::memory_order_relaxed);
    size_t index = 0;
    for (const Chunk* c = head_; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      const size_t n = c->count.load(std::memory_order_acquire);
      for (size_t i = 0; i < n; ++i, ++index) {
        if (index >= skip) out->push_back(c->events[i]);
      }
    }
  }

  /// Any thread: events published so far.
  size_t TotalPublished() const {
    size_t total = 0;
    for (const Chunk* c = head_; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      total += c->count.load(std::memory_order_acquire);
    }
    return total;
  }

  /// Events recorded before StartTracing are logically discarded by
  /// advancing this watermark (the storage itself is append-only).
  std::atomic<size_t> discard_before{0};
  uint32_t tid = 0;

 private:
  Chunk* head_;
  Chunk* tail_;  // owner thread only
};

struct Registry {
  std::mutex mutex;
  /// shared_ptr so a buffer outlives its (possibly short-lived pool)
  /// thread: events survive until export.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  Timer::Clock::time_point epoch = Timer::Now();
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    fresh->tid = static_cast<uint32_t>(registry.buffers.size());
    registry.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

struct ThreadSpanState {
  uint64_t current_span = 0;
  uint64_t trace_id = 0;
  uint32_t depth = 0;
  std::string query_tag;
};

ThreadSpanState& SpanState() {
  thread_local ThreadSpanState state;
  return state;
}

std::atomic<uint64_t> g_next_span_id{1};

double MicrosSinceEpoch(Timer::Clock::time_point tp) {
  return Timer::MicrosBetween(GlobalRegistry().epoch, tp);
}

}  // namespace

uint64_t CurrentSpanId() { return SpanState().current_span; }

TraceContext CurrentTraceContext() {
  const ThreadSpanState& state = SpanState();
  TraceContext ctx;
  ctx.trace_id = state.trace_id;
  ctx.parent_span_id = state.current_span;
  ctx.query_tag = state.query_tag;
  return ctx;
}

std::string CurrentQueryTag() { return SpanState().query_tag; }

double TraceNowMicros() { return MicrosSinceEpoch(Timer::Now()); }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) {
  ThreadSpanState& state = SpanState();
  saved_trace_id_ = state.trace_id;
  saved_span_ = state.current_span;
  saved_depth_ = state.depth;
  saved_tag_ = std::move(state.query_tag);
  state.trace_id = ctx.trace_id;
  state.current_span = ctx.parent_span_id;
  state.depth = 0;
  state.query_tag = ctx.query_tag;
}

ScopedTraceContext::~ScopedTraceContext() {
  ThreadSpanState& state = SpanState();
  state.trace_id = saved_trace_id_;
  state.current_span = saved_span_;
  state.depth = saved_depth_;
  state.query_tag = std::move(saved_tag_);
}

namespace {
void AdvanceDiscardWatermarks() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& buffer : registry.buffers) {
    buffer->discard_before.store(buffer->TotalPublished(),
                                 std::memory_order_relaxed);
  }
}
}  // namespace

void StartTracing() {
  AdvanceDiscardWatermarks();
  SetLogSpanIdProvider(&CurrentSpanId);
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
  SetLogSpanIdProvider(nullptr);
}

void DiscardTrace() { AdvanceDiscardWatermarks(); }

void TraceSpan::Begin(std::string_view name) {
  active_ = true;
  name_.assign(name);
  ThreadSpanState& state = SpanState();
  parent_id_ = state.current_span;
  depth_ = state.depth;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  // A span with no ambient trace becomes its own trace root, so every
  // span chain — traced query or stray background work — carries a
  // trace id and per-query extraction never sees id-less spans.
  if (state.trace_id == 0) {
    state.trace_id = span_id_;
    owns_trace_ = true;
  }
  trace_id_ = state.trace_id;
  state.current_span = span_id_;
  ++state.depth;
  start_ = Timer::Now();
}

void TraceSpan::End() {
  const Timer::Clock::time_point end = Timer::Now();
  ThreadSpanState& state = SpanState();
  state.current_span = parent_id_;
  --state.depth;
  if (owns_trace_) state.trace_id = 0;

  ThreadBuffer& buffer = LocalBuffer();
  TraceEvent event;
  event.name = std::move(name_);
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.trace_id = trace_id_;
  event.tid = buffer.tid;
  event.depth = depth_;
  event.start_us = MicrosSinceEpoch(start_);
  event.dur_us = Timer::MicrosBetween(start_, end);
  event.attrs = std::move(attrs_);
  buffer.Append(std::move(event));
}

TraceSpan& TraceSpan::Attr(std::string_view key, int64_t value) {
  if (active_) attrs_.push_back({std::string(key), AttrValue::Int(value)});
  return *this;
}
TraceSpan& TraceSpan::Attr(std::string_view key, uint64_t value) {
  if (active_) attrs_.push_back({std::string(key), AttrValue::Uint(value)});
  return *this;
}
TraceSpan& TraceSpan::Attr(std::string_view key, double value) {
  if (active_) attrs_.push_back({std::string(key), AttrValue::Double(value)});
  return *this;
}
TraceSpan& TraceSpan::Attr(std::string_view key, std::string_view value) {
  if (active_) attrs_.push_back({std::string(key), AttrValue::Str(value)});
  return *this;
}

std::string AttrValue::ToJson() const {
  switch (kind) {
    case Kind::kInt:
      return std::to_string(i);
    case Kind::kUint:
      return std::to_string(u);
    case Kind::kDouble:
      return JsonNumber(d);
    case Kind::kString:
      return EscapeJsonString(s);
  }
  return "null";
}

std::vector<TraceEvent> CollectTrace() {
  Registry& registry = GlobalRegistry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    buffers = registry.buffers;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) buffer->Snapshot(&events);
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.start_us < b.start_us;
                   });
  return events;
}

void RecordRemoteSpans(std::vector<TraceEvent> events, uint64_t trace_id,
                       uint64_t parent_span_id, double delta_us,
                       uint32_t pid) {
  if (events.empty()) return;
  // Remap the batch's span ids through the local allocator so remote
  // ids (allocated independently by the worker) cannot collide with
  // coordinator span ids or with another worker's batch.
  std::map<uint64_t, uint64_t> remap;
  for (const TraceEvent& e : events) {
    remap.emplace(e.span_id,
                  g_next_span_id.fetch_add(1, std::memory_order_relaxed));
  }
  ThreadBuffer& buffer = LocalBuffer();
  for (TraceEvent& e : events) {
    e.span_id = remap[e.span_id];
    auto parent = remap.find(e.parent_id);
    // A parent outside the batch is a worker-side ancestor we did not
    // ship; hang the span off the coordinator span that owns the call
    // so parent edges always close in the merged trace.
    e.parent_id = parent != remap.end() ? parent->second : parent_span_id;
    e.trace_id = trace_id;
    e.pid = pid;
    e.start_us += delta_us;
    buffer.Append(std::move(e));
  }
}

std::vector<TraceEvent> ExtractTraceForId(uint64_t trace_id) {
  std::vector<TraceEvent> events = CollectTrace();
  events.erase(std::remove_if(events.begin(), events.end(),
                              [trace_id](const TraceEvent& e) {
                                return e.trace_id != trace_id;
                              }),
               events.end());
  return events;
}

std::string TraceEventsToChromeJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    // pid 0 is "this process"; keep the historical pid 1 in the export
    // so single-process traces are unchanged and remote pids (real OS
    // pids, never 1) stay distinct.
    const uint32_t pid = e.pid == 0 ? 1 : e.pid;
    out += "{\"name\":" + EscapeJsonString(e.name) +
           ",\"cat\":\"mpc\",\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + JsonNumber(e.start_us) +
           ",\"dur\":" + JsonNumber(e.dur_us) + ",\"args\":{";
    out += "\"span_id\":" + std::to_string(e.span_id);
    out += ",\"parent_id\":" + std::to_string(e.parent_id);
    if (e.trace_id != 0) {
      out += ",\"trace_id\":" + std::to_string(e.trace_id);
    }
    for (const TraceAttr& a : e.attrs) {
      out += "," + EscapeJsonString(a.key) + ":" + a.value.ToJson();
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string TraceToChromeJson() {
  return TraceEventsToChromeJson(CollectTrace());
}

namespace {

std::string FormatAttrs(const TraceEvent& e) {
  if (e.attrs.empty()) return "";
  std::string out = "  (";
  for (size_t i = 0; i < e.attrs.size(); ++i) {
    if (i > 0) out += " ";
    const AttrValue& v = e.attrs[i].value;
    out += e.attrs[i].key + "=";
    switch (v.kind) {
      case AttrValue::Kind::kInt:
        out += std::to_string(v.i);
        break;
      case AttrValue::Kind::kUint:
        out += std::to_string(v.u);
        break;
      case AttrValue::Kind::kDouble:
        out += FormatDouble(v.d, 3);
        break;
      case AttrValue::Kind::kString:
        out += v.s;
        break;
    }
  }
  out += ")";
  return out;
}

/// Merges consecutive sibling spans sharing a name into one tree line.
struct TreeNode {
  const TraceEvent* event = nullptr;
  std::vector<size_t> children;  // indices into the event vector
};

void PrintSubtree(const std::vector<TraceEvent>& events,
                  const std::map<uint64_t, TreeNode>& nodes,
                  const std::vector<size_t>& children, int indent,
                  std::string* out) {
  // Group siblings by name, preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t idx : children) {
    const std::string& name = events[idx].name;
    if (by_name.find(name) == by_name.end()) order.push_back(name);
    by_name[name].push_back(idx);
  }
  for (const std::string& name : order) {
    const std::vector<size_t>& group = by_name[name];
    double total_us = 0.0;
    for (size_t idx : group) total_us += events[idx].dur_us;
    out->append(static_cast<size_t>(indent) * 2, ' ');
    *out += name;
    if (group.size() > 1) {
      *out += " x" + std::to_string(group.size());
    }
    *out += "  " + FormatDouble(total_us / 1000.0, 3) + " ms";
    if (group.size() == 1) *out += FormatAttrs(events[group[0]]);
    *out += "\n";
    // Merge every group member's children into one child list so a
    // repeated stage shows one collapsed subtree.
    std::vector<size_t> merged;
    for (size_t idx : group) {
      auto it = nodes.find(events[idx].span_id);
      if (it != nodes.end()) {
        merged.insert(merged.end(), it->second.children.begin(),
                      it->second.children.end());
      }
    }
    if (!merged.empty()) {
      PrintSubtree(events, nodes, merged, indent + 1, out);
    }
  }
}

}  // namespace

std::string TraceToTextTree() {
  const std::vector<TraceEvent> events = CollectTrace();
  std::string out;
  // Per (process, thread) track: index events, attach children to
  // parents (a parent's event exists whenever its children do — spans
  // close inside-out), and print roots in start order.
  std::vector<std::pair<uint32_t, uint32_t>> tracks;
  for (const TraceEvent& e : events) {
    const std::pair<uint32_t, uint32_t> track{e.pid, e.tid};
    if (tracks.empty() || tracks.back() != track) tracks.push_back(track);
  }
  for (const auto& [pid, tid] : tracks) {
    std::map<uint64_t, TreeNode> nodes;
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].pid == pid && events[i].tid == tid) {
        nodes[events[i].span_id].event = &events[i];
      }
    }
    std::vector<size_t> roots;
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].pid != pid || events[i].tid != tid) continue;
      auto parent = nodes.find(events[i].parent_id);
      if (events[i].parent_id != 0 && parent != nodes.end()) {
        parent->second.children.push_back(i);
      } else {
        roots.push_back(i);
      }
    }
    out += pid == 0 ? "[thread " + std::to_string(tid) + "]\n"
                    : "[pid " + std::to_string(pid) + " thread " +
                          std::to_string(tid) + "]\n";
    PrintSubtree(events, nodes, roots, 1, &out);
  }
  return out;
}

namespace {
Status WriteStringToFile(const std::string& json, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}
}  // namespace

Status WriteTrace(const std::string& path) {
  return WriteStringToFile(TraceToChromeJson(), path);
}

Status WriteTraceForId(uint64_t trace_id, const std::string& path) {
  return WriteStringToFile(TraceEventsToChromeJson(ExtractTraceForId(trace_id)),
                           path);
}

}  // namespace mpc::obs

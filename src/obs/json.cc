#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace mpc::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status st = ParseValue(&value, 0);
    if (!st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing garbage");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Reads 4 hex digits at `at` into *out; false when short or non-hex.
  bool ReadHex4(size_t at, uint32_t* out) const {
    if (at + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (size_t i = 0; i < 4; ++i) {
      const char c = text_[at + i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        return false;
      }
      value = (value << 4) | digit;
    }
    *out = value;
    return true;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      Status st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Error("dangling escape");
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            // \uXXXX escape: decode the BMP codepoint — or, for a
            // high surrogate, pair it with the following \uXXXX low
            // surrogate — and append it as UTF-8.
            uint32_t cp = 0;
            if (!ReadHex4(pos_ + 2, &cp)) return Error("bad \\u escape");
            size_t consumed = 6;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              uint32_t lo = 0;
              if (text_.substr(pos_ + 6, 2) != "\\u" ||
                  !ReadHex4(pos_ + 8, &lo) || lo < 0xDC00 || lo > 0xDFFF) {
                return Error("unpaired surrogate in \\u escape");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              consumed = 12;
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired surrogate in \\u escape");
            }
            AppendUtf8(out, cp);
            pos_ += consumed;
            continue;
          }
          default:
            return Error("bad escape");
        }
        pos_ += 2;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status ParseKeyword(JsonValue* out) {
    auto match = [&](std::string_view word) {
      return text_.substr(pos_, word.size()) == word;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::Ok();
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::Ok();
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return Status::Ok();
    }
    return Error("unknown keyword");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace mpc::obs

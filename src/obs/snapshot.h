#ifndef MPC_OBS_SNAPSHOT_H_
#define MPC_OBS_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace mpc::obs {

/// Point-in-time copy of one histogram (bounds plus every bucket,
/// including the trailing overflow bucket).
struct HistogramSnapshot {
  std::vector<double> bounds;
  /// bounds.size() + 1 slots; the last is the overflow bucket.
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of a whole registry, timestamped on the trace
/// clock so two snapshots subtract into a window.
struct MetricsSnapshot {
  double at_ms = 0.0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Shared quantile estimator over explicit bucket counts — the same
/// Prometheus-style interpolation Histogram::Quantile uses, usable on
/// windowed bucket deltas. `buckets` has bounds.size() + 1 slots.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets,
                           uint64_t count, double q);

/// Windowed counter delta, robust to resets: a respawned worker (or a
/// test ResetForTest) restarts a counter at zero, making cur < prev; the
/// delta is then `cur` (everything since the reset) rather than a huge
/// unsigned wraparound.
uint64_t CounterDelta(uint64_t prev, uint64_t cur);

/// Windowed histogram delta with the same reset rule applied per
/// bucket: if any bucket shrank (or the shape changed), the current
/// snapshot IS the delta. Returned buckets/count/sum cover only the
/// window.
HistogramSnapshot HistogramDelta(const HistogramSnapshot& prev,
                                 const HistogramSnapshot& cur);

/// Fixed-capacity sliding window of snapshots, oldest evicted first.
class SnapshotWindow {
 public:
  explicit SnapshotWindow(size_t capacity);

  void Push(MetricsSnapshot snapshot);
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Oldest retained snapshot — the far edge of the window.
  const MetricsSnapshot& oldest() const;
  const MetricsSnapshot& newest() const;

 private:
  size_t capacity_;
  size_t start_ = 0;  // ring index of the oldest entry
  std::vector<MetricsSnapshot> entries_;
};

struct SnapshotterOptions {
  /// Sampling cadence.
  double interval_ms = 1000.0;
  /// Snapshots retained: the stats window spans roughly
  /// (window - 1) * interval_ms.
  size_t window = 11;
};

/// Periodic in-process sampler over MetricsRegistry::Default(): a
/// background thread takes a snapshot every interval and keeps the last
/// `window` of them. StatsJson() renders live, *windowed* stats —
/// per-counter rates and per-histogram quantiles computed over the
/// window's deltas, not over process lifetime — which is what `mpc top`
/// and the StatsRequest admin RPC serve.
class Snapshotter {
 public:
  explicit Snapshotter(SnapshotterOptions options = SnapshotterOptions());
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  void Start();
  void Stop();

  /// Forces an immediate sample outside the cadence (tests; also called
  /// internally so StatsJson never sees an empty window after Start).
  void SampleNow();

  /// {"uptime_ms":..,"window_ms":..,
  ///  "counters":{name:{"value":..,"rate_per_s":..}},
  ///  "gauges":{name:value},
  ///  "histograms":{name:{"count":..,"window_count":..,"rate_per_s":..,
  ///                      "p50":..,"p95":..,"p99":..}}}
  /// Quantiles are over the window delta; "count" is the lifetime total.
  /// With no sample in the window yet (never started, nor sampled),
  /// there is no baseline to subtract: window_ms, every window_delta /
  /// window_count and every rate_per_s are 0, while lifetime values
  /// ("value", "count", gauges) and quantiles still reflect the live
  /// registry.
  std::string StatsJson() const;

 private:
  void Loop();

  SnapshotterOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  SnapshotWindow window_;
  double started_at_ms_ = 0.0;
  std::thread thread_;
};

}  // namespace mpc::obs

#endif  // MPC_OBS_SNAPSHOT_H_

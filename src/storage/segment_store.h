#ifndef MPC_STORAGE_SEGMENT_STORE_H_
#define MPC_STORAGE_SEGMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "rdf/types.h"
#include "storage/segment_format.h"
#include "store/triple_source.h"

namespace mpc::storage {

/// Read-only TripleSource over one mmap'ed `.mpcseg` segment — the
/// compressed out-of-core backend. Opening maps the file and reads only
/// the header and TOC (plus, by default, one sequential checksum pass);
/// scans then decode exactly the blocks the zone maps cannot rule out,
/// so bound-pattern work is proportional to the matching data, not the
/// partition. Emission order and cardinalities follow the TripleSource
/// contract bit-for-bit, so a SegmentStore is interchangeable with the
/// in-memory TripleStore anywhere in the executor.
///
/// Thread-safe for concurrent scans (the mapping is immutable; the only
/// mutable state is the relaxed stats counters).
class SegmentStore final : public store::TripleSource {
 public:
  struct OpenOptions {
    /// Verify every block payload checksum at open (one sequential pass
    /// over the file). With false, only the header and TOC are
    /// verified — cold start touches O(TOC) pages — and block checksums
    /// are still enforced lazily the first time each block is decoded;
    /// a block failing then is reported through corruption_detected()
    /// and its scan stops emitting (the executor's per-site error
    /// handling surfaces it). `tools/segment_check` validates segments
    /// fully offline, so lazy mode is safe after a checked deploy.
    bool verify_blocks = true;
    /// When nonzero, the segment's stamped partition fingerprint must
    /// match (InvalidArgument otherwise) — a segment packed for a
    /// different partitioning must never serve its queries.
    uint64_t expected_fingerprint = 0;
  };

  /// Maps and validates `path`. Torn, truncated or garbage files return
  /// ParseError; nothing is allocated based on unvalidated sizes.
  static Result<SegmentStore> Open(const std::string& path,
                                   const OpenOptions& options);
  static Result<SegmentStore> Open(const std::string& path) {
    return Open(path, OpenOptions());
  }

  SegmentStore(SegmentStore&& other) noexcept;
  SegmentStore& operator=(SegmentStore&& other) noexcept;
  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;
  ~SegmentStore() override;

  // TripleSource interface.
  size_t num_triples() const override {
    return static_cast<size_t>(header_.num_triples);
  }
  size_t PropertyCount(rdf::PropertyId p) const override;
  bool Scan(rdf::VertexId s, rdf::PropertyId p, rdf::VertexId o,
            store::ScanFn fn) const override;
  size_t EstimateCardinality(rdf::VertexId s, rdf::PropertyId p,
                             rdf::VertexId o) const override;
  /// Mapped file bytes plus the in-heap TOC mirror — the resident
  /// ceiling; actual residency is only the pages scans touched.
  size_t MemoryUsage() const override;

  const SegmentHeader& header() const { return header_; }
  size_t file_size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Scan-pruning counters (relaxed; for benches and tests).
  uint64_t blocks_decoded() const {
    return stats_->decoded.load(std::memory_order_relaxed);
  }
  uint64_t blocks_pruned() const {
    return stats_->pruned.load(std::memory_order_relaxed);
  }
  /// True once any lazily-verified block failed its checksum.
  bool corruption_detected() const {
    return stats_->corrupt.load(std::memory_order_relaxed);
  }

  /// Exhaustive offline validation (the `segment_check` tool): decodes
  /// every block of both runs and re-derives what the TOC asserts —
  /// strict global sort order, per-block first/last keys and zone maps,
  /// per-property counts and block ranges. ParseError naming the first
  /// violated invariant.
  Status DeepCheck() const;

 private:
  /// Per-instance counters, mirrored into the global obs registry
  /// (storage.segment.*) so a live server's pruning behaviour and any
  /// lazily-detected corruption are visible to `mpc top` without
  /// plumbing store handles around. The registry pointers are resolved
  /// once at Open; the per-instance atomics stay authoritative for the
  /// accessors below.
  struct ScanStats {
    std::atomic<uint64_t> decoded{0};
    std::atomic<uint64_t> pruned{0};
    std::atomic<bool> corrupt{false};
    obs::Counter* global_decoded = nullptr;
    obs::Counter* global_pruned = nullptr;
    obs::Counter* global_corrupt = nullptr;

    void IncDecoded() {
      decoded.fetch_add(1, std::memory_order_relaxed);
      if (global_decoded != nullptr) global_decoded->Inc();
    }
    void IncPruned() {
      pruned.fetch_add(1, std::memory_order_relaxed);
      if (global_pruned != nullptr) global_pruned->Inc();
    }
    void MarkCorrupt() {
      // Count the transition, not every detection: the global counter
      // reads as "segments that went bad", matching the sticky flag.
      if (!corrupt.exchange(true, std::memory_order_relaxed) &&
          global_corrupt != nullptr) {
        global_corrupt->Inc();
      }
    }
  };

  SegmentStore() = default;

  const std::vector<BlockMeta>& metas(RunOrder run) const {
    return run == RunOrder::kPso ? pso_metas_ : pos_metas_;
  }
  const uint8_t* BlockPayload(RunOrder run, uint32_t index) const;
  /// Checksum gate for lazy mode; true iff the block may be decoded.
  bool BlockUsable(RunOrder run, uint32_t index) const;

  /// Emits triples with key in [lo, hi] from `run`, in key order.
  /// Returns false iff `fn` stopped early.
  bool ScanKeyRange(RunOrder run, const Key3& lo, const Key3& hi,
                    store::ScanFn fn) const;
  /// Full-run sweep with optional equality filters on the mid/minor key
  /// columns, pruned by zone maps. Emits in the run's key order.
  bool SweepFiltered(RunOrder run, bool bound_mid, uint32_t mid,
                     bool bound_minor, uint32_t minor, store::ScanFn fn) const;
  /// Exact match count for key range [lo, hi]; fully-covered blocks
  /// count by meta without decoding.
  size_t CountKeyRange(RunOrder run, const Key3& lo, const Key3& hi) const;
  size_t CountFiltered(RunOrder run, bool bound_mid, uint32_t mid,
                       bool bound_minor, uint32_t minor) const;

  std::string path_;
  const uint8_t* base_ = nullptr;  // mmap'ed file, PROT_READ
  size_t size_ = 0;
  SegmentHeader header_;
  std::vector<PropertyEntry> properties_;
  std::vector<BlockMeta> pso_metas_;
  std::vector<BlockMeta> pos_metas_;
  bool verified_at_open_ = false;
  std::unique_ptr<ScanStats> stats_;
};

}  // namespace mpc::storage

#endif  // MPC_STORAGE_SEGMENT_STORE_H_

#include "storage/delta_overlay.h"

#include <algorithm>
#include <array>

namespace mpc::storage {

namespace {

using rdf::kInvalidProperty;
using rdf::kInvalidVertex;
using rdf::Triple;

bool Matches(const Triple& t, rdf::VertexId s, rdf::PropertyId p,
             rdf::VertexId o) {
  if (s != kInvalidVertex && t.subject != s) return false;
  if (p != kInvalidProperty && t.property != p) return false;
  if (o != kInvalidVertex && t.object != o) return false;
  return true;
}

/// The TripleSource contract's emission order for a given bound/unbound
/// combination, as a comparable key. Bound components tie among matches,
/// so comparing the full contract tuple sorts exactly by the free ones.
std::array<uint32_t, 3> OrderKey(const Triple& t, bool bs, bool bp, bool bo) {
  if (bp && bs) return {t.object, 0, 0};
  if (bp && bo) return {t.subject, 0, 0};
  if (bp) return {t.subject, t.object, 0};
  if (bs && bo) return {t.property, 0, 0};
  if (bs) return {t.property, t.object, 0};
  if (bo) return {t.subject, t.property, 0};
  return {t.property, t.subject, t.object};
}

}  // namespace

DeltaOverlaySource::DeltaOverlaySource(
    std::shared_ptr<const store::TripleSource> base,
    std::vector<rdf::Triple> added, std::vector<rdf::Triple> deleted)
    : base_(std::move(base)) {
  auto in_base = [&](const Triple& t) {
    return base_->EstimateCardinality(t.subject, t.property, t.object) == 1;
  };
  std::sort(added.begin(), added.end());
  added.erase(std::unique(added.begin(), added.end()), added.end());
  std::sort(deleted.begin(), deleted.end());
  deleted.erase(std::unique(deleted.begin(), deleted.end()), deleted.end());

  for (const Triple& t : deleted) {
    if (in_base(t)) minus_vec_.push_back(t);
  }
  minus_.insert(minus_vec_.begin(), minus_vec_.end());
  for (const Triple& t : added) {
    if (std::binary_search(deleted.begin(), deleted.end(), t)) continue;
    if (in_base(t)) continue;  // duplicate of a base triple: a no-op add
    plus_.push_back(t);
  }
  num_triples_ = base_->num_triples() + plus_.size() - minus_vec_.size();
}

size_t DeltaOverlaySource::PropertyCount(rdf::PropertyId p) const {
  size_t count = base_->PropertyCount(p);
  for (const Triple& t : plus_) count += (t.property == p);
  for (const Triple& t : minus_vec_) count -= (t.property == p);
  return count;
}

bool DeltaOverlaySource::Scan(rdf::VertexId s, rdf::PropertyId p,
                              rdf::VertexId o, store::ScanFn fn) const {
  const bool bs = s != kInvalidVertex;
  const bool bp = p != kInvalidProperty;
  const bool bo = o != kInvalidVertex;

  // Matching adds, sorted into this combination's emission order (the
  // delta is small; a filter + sort beats maintaining seven indexes).
  std::vector<Triple> adds;
  for (const Triple& t : plus_) {
    if (Matches(t, s, p, o)) adds.push_back(t);
  }
  std::sort(adds.begin(), adds.end(), [&](const Triple& a, const Triple& b) {
    return OrderKey(a, bs, bp, bo) < OrderKey(b, bs, bp, bo);
  });

  // Ordered two-way merge: before each base triple, flush every add that
  // precedes it; tombstoned base triples are skipped. plus_ ∩ base = ∅,
  // so the equal case cannot occur and nothing double-emits.
  size_t ai = 0;
  bool stopped = false;
  const bool base_done =
      base_->Scan(s, p, o, [&](const Triple& t) {
        const auto t_key = OrderKey(t, bs, bp, bo);
        while (ai < adds.size() &&
               OrderKey(adds[ai], bs, bp, bo) < t_key) {
          if (!fn(adds[ai++])) {
            stopped = true;
            return false;
          }
        }
        if (minus_.count(t) != 0) return true;
        if (!fn(t)) {
          stopped = true;
          return false;
        }
        return true;
      });
  if (!base_done || stopped) return false;
  for (; ai < adds.size(); ++ai) {
    if (!fn(adds[ai])) return false;
  }
  return true;
}

size_t DeltaOverlaySource::EstimateCardinality(rdf::VertexId s,
                                               rdf::PropertyId p,
                                               rdf::VertexId o) const {
  size_t est = base_->EstimateCardinality(s, p, o);
  for (const Triple& t : plus_) est += Matches(t, s, p, o);
  for (const Triple& t : minus_vec_) est -= Matches(t, s, p, o);
  return est;
}

size_t DeltaOverlaySource::MemoryUsage() const {
  return base_->MemoryUsage() +
         (plus_.capacity() + minus_vec_.capacity()) * sizeof(Triple) +
         minus_.size() * (sizeof(Triple) + 2 * sizeof(void*));
}

}  // namespace mpc::storage

#include "storage/segment_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/fsio.h"

namespace mpc::storage {

namespace {

constexpr uint32_t kMaxId = UINT32_MAX;

std::string_view BytesView(const uint8_t* data, size_t len) {
  return std::string_view(reinterpret_cast<const char*>(data), len);
}

}  // namespace

SegmentStore::SegmentStore(SegmentStore&& other) noexcept
    : path_(std::move(other.path_)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      header_(other.header_),
      properties_(std::move(other.properties_)),
      pso_metas_(std::move(other.pso_metas_)),
      pos_metas_(std::move(other.pos_metas_)),
      verified_at_open_(other.verified_at_open_),
      stats_(std::move(other.stats_)) {}

SegmentStore& SegmentStore::operator=(SegmentStore&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(base_), size_);
    }
    path_ = std::move(other.path_);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    header_ = other.header_;
    properties_ = std::move(other.properties_);
    pso_metas_ = std::move(other.pso_metas_);
    pos_metas_ = std::move(other.pos_metas_);
    verified_at_open_ = other.verified_at_open_;
    stats_ = std::move(other.stats_);
  }
  return *this;
}

SegmentStore::~SegmentStore() {
  if (base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), size_);
  }
}

Result<SegmentStore> SegmentStore::Open(const std::string& path,
                                        const OpenOptions& options) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return SysError("open failed for", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = SysError("fstat failed for", path);
    ::close(fd);
    return err;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kSegmentHeaderSize) {
    ::close(fd);
    return Status::ParseError("segment " + path + " too short: " +
                              std::to_string(size) + " bytes");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return SysError("mmap failed for", path);

  SegmentStore store;
  store.path_ = path;
  store.base_ = static_cast<const uint8_t*>(map);
  store.size_ = size;
  store.stats_ = std::make_unique<ScanStats>();
  auto& metrics = obs::MetricsRegistry::Default();
  store.stats_->global_decoded =
      &metrics.CounterRef("storage.segment.blocks_decoded");
  store.stats_->global_pruned =
      &metrics.CounterRef("storage.segment.blocks_pruned");
  store.stats_->global_corrupt =
      &metrics.CounterRef("storage.segment.corruption_detected");

  auto fail = [&](const Status& status) -> Status {
    const std::string msg = path + ": " + status.message();
    return status.code() == StatusCode::kInvalidArgument
               ? Status::InvalidArgument(msg)
               : Status::ParseError(msg);
  };

  Result<SegmentHeader> header =
      DecodeSegmentHeader(store.base_, size, size);
  if (!header.ok()) return fail(header.status());
  store.header_ = *header;
  const SegmentHeader& h = store.header_;
  if (options.expected_fingerprint != 0 &&
      h.partition_fingerprint != options.expected_fingerprint) {
    return fail(Status::InvalidArgument(
        "segment was packed for a different partitioning (fingerprint "
        "mismatch); re-run `mpc pack`"));
  }

  // The TOC: verified as a whole before any of it is believed. Sizes
  // were already proven consistent with the actual file size by
  // DecodeSegmentHeader, so these allocations are bounded by the file.
  const uint8_t* toc = store.base_ + h.toc_offset;
  if (SegmentChecksum(BytesView(toc, h.toc_size)) != h.toc_checksum) {
    return fail(Status::ParseError("TOC checksum mismatch"));
  }
  store.properties_.reserve(h.num_properties);
  const uint8_t* cursor = toc;
  for (uint64_t i = 0; i < h.num_properties; ++i) {
    store.properties_.push_back(DecodePropertyEntry(cursor));
    cursor += kPropertyEntrySize;
  }
  store.pso_metas_.reserve(h.pso_num_blocks);
  for (uint32_t i = 0; i < h.pso_num_blocks; ++i) {
    store.pso_metas_.push_back(DecodeBlockMeta(cursor));
    cursor += kBlockMetaSize;
  }
  store.pos_metas_.reserve(h.pos_num_blocks);
  for (uint32_t i = 0; i < h.pos_num_blocks; ++i) {
    store.pos_metas_.push_back(DecodeBlockMeta(cursor));
    cursor += kBlockMetaSize;
  }

  // Structural TOC invariants: block payloads inside their pages,
  // strictly increasing keys across blocks, counts adding up. Anything
  // off means a corrupt (or cross-written) TOC.
  for (RunOrder run : {RunOrder::kPso, RunOrder::kPos}) {
    const std::vector<BlockMeta>& ms = store.metas(run);
    uint64_t total = 0;
    for (size_t i = 0; i < ms.size(); ++i) {
      const BlockMeta& m = ms[i];
      if (m.num_triples == 0 || m.payload_len > h.block_size) {
        return fail(Status::ParseError("block " + std::to_string(i) +
                                       " has implausible counts"));
      }
      if (m.first > m.last || m.min_mid > m.max_mid ||
          m.min_minor > m.max_minor) {
        return fail(Status::ParseError("block " + std::to_string(i) +
                                       " has inverted key bounds"));
      }
      if (i > 0 && !(ms[i - 1].last < m.first)) {
        return fail(Status::ParseError(
            "blocks " + std::to_string(i - 1) + ".." + std::to_string(i) +
            " out of order"));
      }
      total += m.num_triples;
    }
    if (total != h.num_triples) {
      return fail(Status::ParseError(
          "block triple counts sum to " + std::to_string(total) +
          ", header says " + std::to_string(h.num_triples)));
    }
  }
  uint64_t property_total = 0;
  for (const PropertyEntry& e : store.properties_) {
    property_total += e.count;
    if (uint64_t{e.pso_first} + e.pso_count > store.pso_metas_.size() ||
        uint64_t{e.pos_first} + e.pos_count > store.pos_metas_.size()) {
      return fail(
          Status::ParseError("property block range exceeds block count"));
    }
  }
  if (property_total != h.num_triples) {
    return fail(Status::ParseError(
        "property counts sum to " + std::to_string(property_total) +
        ", header says " + std::to_string(h.num_triples)));
  }

  if (options.verify_blocks) {
    for (RunOrder run : {RunOrder::kPso, RunOrder::kPos}) {
      const std::vector<BlockMeta>& ms = store.metas(run);
      for (size_t i = 0; i < ms.size(); ++i) {
        const uint8_t* payload =
            store.BlockPayload(run, static_cast<uint32_t>(i));
        if (SegmentChecksum(BytesView(payload, ms[i].payload_len)) !=
            ms[i].checksum) {
          return fail(Status::ParseError(
              "block " + std::to_string(i) + " payload checksum mismatch"));
        }
      }
    }
    store.verified_at_open_ = true;
  }
  return store;
}

const uint8_t* SegmentStore::BlockPayload(RunOrder run, uint32_t index) const {
  const uint64_t section =
      run == RunOrder::kPso ? header_.pso_offset : header_.pos_offset;
  return base_ + section + uint64_t{index} * header_.block_size;
}

bool SegmentStore::BlockUsable(RunOrder run, uint32_t index) const {
  if (verified_at_open_) return true;
  const BlockMeta& m = metas(run)[index];
  if (SegmentChecksum(BytesView(BlockPayload(run, index), m.payload_len)) ==
      m.checksum) {
    return true;
  }
  stats_->MarkCorrupt();
  return false;
}

size_t SegmentStore::PropertyCount(rdf::PropertyId p) const {
  if (p >= properties_.size()) return 0;
  return static_cast<size_t>(properties_[p].count);
}

bool SegmentStore::ScanKeyRange(RunOrder run, const Key3& lo, const Key3& hi,
                                store::ScanFn fn) const {
  const std::vector<BlockMeta>& ms = metas(run);
  auto it = std::partition_point(
      ms.begin(), ms.end(),
      [&](const BlockMeta& m) { return m.last < lo; });
  for (size_t i = static_cast<size_t>(it - ms.begin()); i < ms.size(); ++i) {
    const BlockMeta& m = ms[i];
    if (hi < m.first) break;
    if (!BlockUsable(run, static_cast<uint32_t>(i))) return true;
    stats_->IncDecoded();
    BlockDecoder dec(run, BlockPayload(run, static_cast<uint32_t>(i)),
                     m.payload_len, m.num_triples);
    rdf::Triple t;
    while (dec.Next(&t)) {
      const Key3 key = KeyOf(run, t);
      if (key < lo) continue;
      if (hi < key) return true;
      if (!fn(t)) return false;
    }
    if (!dec.ok()) {
      stats_->MarkCorrupt();
      return true;
    }
  }
  return true;
}

bool SegmentStore::SweepFiltered(RunOrder run, bool bound_mid, uint32_t mid,
                                 bool bound_minor, uint32_t minor,
                                 store::ScanFn fn) const {
  const std::vector<BlockMeta>& ms = metas(run);
  for (size_t i = 0; i < ms.size(); ++i) {
    const BlockMeta& m = ms[i];
    // Zone-map pruning: a block whose min/max excludes the bound value
    // cannot contain a match and is never decoded.
    if ((bound_mid && (mid < m.min_mid || mid > m.max_mid)) ||
        (bound_minor && (minor < m.min_minor || minor > m.max_minor))) {
      stats_->IncPruned();
      continue;
    }
    if (!BlockUsable(run, static_cast<uint32_t>(i))) return true;
    stats_->IncDecoded();
    BlockDecoder dec(run, BlockPayload(run, static_cast<uint32_t>(i)),
                     m.payload_len, m.num_triples);
    rdf::Triple t;
    while (dec.Next(&t)) {
      const Key3 key = KeyOf(run, t);
      if (bound_mid && key[1] != mid) continue;
      if (bound_minor && key[2] != minor) continue;
      if (!fn(t)) return false;
    }
    if (!dec.ok()) {
      stats_->MarkCorrupt();
      return true;
    }
  }
  return true;
}

bool SegmentStore::Scan(rdf::VertexId s, rdf::PropertyId p, rdf::VertexId o,
                        store::ScanFn fn) const {
  const bool bs = s != rdf::kInvalidVertex;
  const bool bp = p != rdf::kInvalidProperty;
  const bool bo = o != rdf::kInvalidVertex;

  if (bp && p < properties_.size() && properties_[p].count == 0) return true;
  if (bp && bs && bo) return ScanKeyRange(RunOrder::kPso, {p, s, o}, {p, s, o}, fn);
  if (bp && bs) {
    return ScanKeyRange(RunOrder::kPso, {p, s, 0}, {p, s, kMaxId}, fn);
  }
  if (bp && bo) {
    return ScanKeyRange(RunOrder::kPos, {p, o, 0}, {p, o, kMaxId}, fn);
  }
  if (bp) {
    return ScanKeyRange(RunOrder::kPso, {p, 0, 0}, {p, kMaxId, kMaxId}, fn);
  }
  if (bs && bo) {
    return SweepFiltered(RunOrder::kPso, true, s, true, o, fn);
  }
  if (bs) return SweepFiltered(RunOrder::kPso, true, s, false, 0, fn);
  if (bo) {
    // Object-bound only must emit in (subject, property) order — the
    // in-memory store's OSP index order — which no on-disk run provides.
    // Collect the (zone-pruned) matches from the POS run and sort; the
    // match set is the object's degree, typically tiny.
    std::vector<rdf::Triple> matches;
    SweepFiltered(RunOrder::kPos, true, o, false, 0,
                  [&](const rdf::Triple& t) {
                    matches.push_back(t);
                    return true;
                  });
    std::sort(matches.begin(), matches.end(),
              [](const rdf::Triple& a, const rdf::Triple& b) {
                if (a.subject != b.subject) return a.subject < b.subject;
                return a.property < b.property;
              });
    for (const rdf::Triple& t : matches) {
      if (!fn(t)) return false;
    }
    return true;
  }
  return SweepFiltered(RunOrder::kPso, false, 0, false, 0, fn);
}

size_t SegmentStore::CountKeyRange(RunOrder run, const Key3& lo,
                                   const Key3& hi) const {
  const std::vector<BlockMeta>& ms = metas(run);
  auto it = std::partition_point(
      ms.begin(), ms.end(),
      [&](const BlockMeta& m) { return m.last < lo; });
  size_t count = 0;
  for (size_t i = static_cast<size_t>(it - ms.begin()); i < ms.size(); ++i) {
    const BlockMeta& m = ms[i];
    if (hi < m.first) break;
    if (lo <= m.first && m.last <= hi) {
      // Fully covered: the meta already knows the answer.
      count += m.num_triples;
      continue;
    }
    if (!BlockUsable(run, static_cast<uint32_t>(i))) return count;
    stats_->IncDecoded();
    BlockDecoder dec(run, BlockPayload(run, static_cast<uint32_t>(i)),
                     m.payload_len, m.num_triples);
    rdf::Triple t;
    while (dec.Next(&t)) {
      const Key3 key = KeyOf(run, t);
      if (key < lo) continue;
      if (hi < key) return count;
      ++count;
    }
    if (!dec.ok()) {
      stats_->MarkCorrupt();
      return count;
    }
  }
  return count;
}

size_t SegmentStore::CountFiltered(RunOrder run, bool bound_mid, uint32_t mid,
                                   bool bound_minor, uint32_t minor) const {
  size_t count = 0;
  SweepFiltered(run, bound_mid, mid, bound_minor, minor,
                [&](const rdf::Triple&) {
                  ++count;
                  return true;
                });
  return count;
}

size_t SegmentStore::EstimateCardinality(rdf::VertexId s, rdf::PropertyId p,
                                         rdf::VertexId o) const {
  const bool bs = s != rdf::kInvalidVertex;
  const bool bp = p != rdf::kInvalidProperty;
  const bool bo = o != rdf::kInvalidVertex;
  if (bp && p < properties_.size() && properties_[p].count == 0) return 0;
  if (bp && bs && bo) {
    return CountKeyRange(RunOrder::kPso, {p, s, o}, {p, s, o});
  }
  if (bp && bs) return CountKeyRange(RunOrder::kPso, {p, s, 0}, {p, s, kMaxId});
  if (bp && bo) return CountKeyRange(RunOrder::kPos, {p, o, 0}, {p, o, kMaxId});
  if (bp) return PropertyCount(p);
  if (bs && bo) return CountFiltered(RunOrder::kPso, true, s, true, o);
  if (bs) return CountFiltered(RunOrder::kPso, true, s, false, 0);
  if (bo) return CountFiltered(RunOrder::kPos, true, o, false, 0);
  return num_triples();
}

size_t SegmentStore::MemoryUsage() const {
  return size_ + properties_.capacity() * sizeof(PropertyEntry) +
         (pso_metas_.capacity() + pos_metas_.capacity()) * sizeof(BlockMeta);
}

Status SegmentStore::DeepCheck() const {
  for (RunOrder run : {RunOrder::kPso, RunOrder::kPos}) {
    const char* run_name = run == RunOrder::kPso ? "PSO" : "POS";
    const std::vector<BlockMeta>& ms = metas(run);
    std::vector<uint64_t> property_counts(properties_.size(), 0);
    bool have_prev = false;
    Key3 prev = {0, 0, 0};
    for (size_t i = 0; i < ms.size(); ++i) {
      const BlockMeta& m = ms[i];
      const uint8_t* payload = BlockPayload(run, static_cast<uint32_t>(i));
      if (SegmentChecksum(BytesView(payload, m.payload_len)) != m.checksum) {
        return Status::ParseError(std::string(run_name) + " block " +
                                  std::to_string(i) + ": checksum mismatch");
      }
      BlockDecoder dec(run, payload, m.payload_len, m.num_triples);
      rdf::Triple t;
      uint32_t n = 0;
      Key3 block_first = {0, 0, 0};
      Key3 block_last = {0, 0, 0};
      uint32_t min_mid = UINT32_MAX, max_mid = 0;
      uint32_t min_minor = UINT32_MAX, max_minor = 0;
      while (dec.Next(&t)) {
        const Key3 key = KeyOf(run, t);
        if (have_prev && !(prev < key)) {
          return Status::ParseError(std::string(run_name) + " block " +
                                    std::to_string(i) +
                                    ": keys not strictly increasing");
        }
        prev = key;
        have_prev = true;
        if (n == 0) block_first = key;
        block_last = key;
        min_mid = std::min(min_mid, key[1]);
        max_mid = std::max(max_mid, key[1]);
        min_minor = std::min(min_minor, key[2]);
        max_minor = std::max(max_minor, key[2]);
        if (key[0] < property_counts.size()) ++property_counts[key[0]];
        ++n;
      }
      if (!dec.AtCleanEnd() || n != m.num_triples) {
        return Status::ParseError(std::string(run_name) + " block " +
                                  std::to_string(i) +
                                  ": payload does not decode cleanly");
      }
      if (block_first != m.first || block_last != m.last ||
          min_mid != m.min_mid || max_mid != m.max_mid ||
          min_minor != m.min_minor || max_minor != m.max_minor) {
        return Status::ParseError(std::string(run_name) + " block " +
                                  std::to_string(i) +
                                  ": TOC keys/zone map do not match payload");
      }
    }
    for (size_t p = 0; p < properties_.size(); ++p) {
      if (property_counts[p] != properties_[p].count) {
        return Status::ParseError(
            std::string(run_name) + ": property " + std::to_string(p) +
            " count " + std::to_string(property_counts[p]) +
            " != TOC count " + std::to_string(properties_[p].count));
      }
      // Every block holding property p must fall inside its TOC range.
      for (size_t b = 0; b < ms.size(); ++b) {
        const bool holds = ms[b].first[0] <= p && p <= ms[b].last[0];
        if (!holds) continue;
        const uint32_t first =
            run == RunOrder::kPso ? properties_[p].pso_first
                                  : properties_[p].pos_first;
        const uint32_t count = run == RunOrder::kPso
                                   ? properties_[p].pso_count
                                   : properties_[p].pos_count;
        if (b < first || b >= uint64_t{first} + count) {
          return Status::ParseError(std::string(run_name) + ": property " +
                                    std::to_string(p) +
                                    " block range misses block " +
                                    std::to_string(b));
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace mpc::storage

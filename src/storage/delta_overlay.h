#ifndef MPC_STORAGE_DELTA_OVERLAY_H_
#define MPC_STORAGE_DELTA_OVERLAY_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "rdf/types.h"
#include "store/triple_source.h"

namespace mpc::storage {

/// A TripleSource presenting `(base ∪ added) \ deleted` — the dynamic
/// maintainer's live-set equation — without touching the immutable base.
/// This is how IncrementalMaintainer stays correct atop on-disk
/// segments: the segment is the snapshot, the overlay carries the
/// add/tombstone sets, and a captured serving state composes them
/// per site instead of rebuilding four sort indexes per generation.
///
/// Construction normalizes the deltas against the base (point lookups,
/// O(|delta| log) once) into
///   plus_  = added \ deleted \ base   (strictly new triples)
///   minus_ = deleted ∩ base           (tombstones that actually hit)
/// so scans are a two-way ordered merge of base and plus_ with minus_
/// membership skips, and every cardinality is base-exact plus/minus the
/// matching delta counts — preserving both halves of the TripleSource
/// contract (emission order AND exact estimates), which keeps query
/// results bit-identical to a freshly built in-memory store of the live
/// set.
class DeltaOverlaySource final : public store::TripleSource {
 public:
  DeltaOverlaySource(std::shared_ptr<const store::TripleSource> base,
                     std::vector<rdf::Triple> added,
                     std::vector<rdf::Triple> deleted);

  size_t num_triples() const override { return num_triples_; }
  size_t PropertyCount(rdf::PropertyId p) const override;
  bool Scan(rdf::VertexId s, rdf::PropertyId p, rdf::VertexId o,
            store::ScanFn fn) const override;
  size_t EstimateCardinality(rdf::VertexId s, rdf::PropertyId p,
                             rdf::VertexId o) const override;
  size_t MemoryUsage() const override;

  size_t num_added() const { return plus_.size(); }
  size_t num_tombstoned() const { return minus_vec_.size(); }
  const store::TripleSource& base() const { return *base_; }

 private:
  std::shared_ptr<const store::TripleSource> base_;
  /// Sorted PSO; disjoint from base and from minus_.
  std::vector<rdf::Triple> plus_;
  /// Sorted PSO; every entry present in base.
  std::vector<rdf::Triple> minus_vec_;
  /// Same set as minus_vec_, hashed for O(1) skips during scans.
  std::unordered_set<rdf::Triple> minus_;
  size_t num_triples_ = 0;
};

}  // namespace mpc::storage

#endif  // MPC_STORAGE_DELTA_OVERLAY_H_

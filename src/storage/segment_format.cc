#include "storage/segment_format.h"

#include <cstring>

#include "storage/varint.h"

namespace mpc::storage {

namespace {

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32(const uint8_t* data) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* data) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[i]) << (8 * i);
  return v;
}

bool IsPow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

uint64_t SegmentChecksum(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Key3 KeyOf(RunOrder order, const rdf::Triple& t) {
  if (order == RunOrder::kPso) return {t.property, t.subject, t.object};
  return {t.property, t.object, t.subject};
}

rdf::Triple TripleOf(RunOrder order, const Key3& key) {
  if (order == RunOrder::kPso) return rdf::Triple(key[1], key[0], key[2]);
  return rdf::Triple(key[2], key[0], key[1]);
}

std::string EncodeSegmentHeader(const SegmentHeader& header) {
  std::string out;
  out.reserve(kSegmentHeaderSize);
  AppendU32(header.magic, &out);
  AppendU32(header.version, &out);
  AppendU32(header.block_size, &out);
  AppendU32(header.site, &out);
  AppendU32(header.k, &out);
  AppendU32(header.flags, &out);
  AppendU64(header.num_triples, &out);
  AppendU64(header.num_properties, &out);
  AppendU64(header.num_vertices, &out);
  AppendU64(header.partition_fingerprint, &out);
  AppendU32(header.pso_num_blocks, &out);
  AppendU32(header.pos_num_blocks, &out);
  AppendU64(header.pso_offset, &out);
  AppendU64(header.pos_offset, &out);
  AppendU64(header.toc_offset, &out);
  AppendU64(header.toc_size, &out);
  AppendU64(header.toc_checksum, &out);
  AppendU64(SegmentChecksum(out), &out);
  return out;
}

Result<SegmentHeader> DecodeSegmentHeader(const uint8_t* data, size_t len,
                                          uint64_t file_size) {
  if (len < kSegmentHeaderSize) {
    return Status::ParseError("segment too short for header: " +
                              std::to_string(len) + " bytes");
  }
  const uint64_t stored_checksum = ReadU64(data + kSegmentHeaderSize - 8);
  const uint64_t computed = SegmentChecksum(std::string_view(
      reinterpret_cast<const char*>(data), kSegmentHeaderSize - 8));
  if (stored_checksum != computed) {
    return Status::ParseError("segment header checksum mismatch");
  }
  SegmentHeader h;
  h.magic = ReadU32(data);
  h.version = ReadU32(data + 4);
  h.block_size = ReadU32(data + 8);
  h.site = ReadU32(data + 12);
  h.k = ReadU32(data + 16);
  h.flags = ReadU32(data + 20);
  h.num_triples = ReadU64(data + 24);
  h.num_properties = ReadU64(data + 32);
  h.num_vertices = ReadU64(data + 40);
  h.partition_fingerprint = ReadU64(data + 48);
  h.pso_num_blocks = ReadU32(data + 56);
  h.pos_num_blocks = ReadU32(data + 60);
  h.pso_offset = ReadU64(data + 64);
  h.pos_offset = ReadU64(data + 72);
  h.toc_offset = ReadU64(data + 80);
  h.toc_size = ReadU64(data + 88);
  h.toc_checksum = ReadU64(data + 96);
  if (h.magic != kSegmentMagic) {
    return Status::ParseError("not a segment file (bad magic)");
  }
  if (h.version != kSegmentVersion) {
    return Status::ParseError("unsupported segment version " +
                              std::to_string(h.version));
  }
  if (!IsPow2(h.block_size) || h.block_size < 512 ||
      h.block_size > (1u << 20)) {
    return Status::ParseError("implausible segment block size " +
                              std::to_string(h.block_size));
  }
  if (h.num_properties > kMaxProperties ||
      h.pso_num_blocks > kMaxBlocksPerRun ||
      h.pos_num_blocks > kMaxBlocksPerRun) {
    return Status::ParseError("segment header counts exceed sanity caps");
  }
  // The layout is rigid: header page, PSO pages, POS pages, TOC, end of
  // file. Recompute every offset and demand an exact match — a header
  // declaring sections beyond (or overlapping within) the actual file is
  // corrupt, and nothing downstream may trust it.
  const uint64_t bs = h.block_size;
  const uint64_t expected_pso = bs;
  const uint64_t expected_pos = bs * (1 + uint64_t{h.pso_num_blocks});
  const uint64_t expected_toc =
      bs * (1 + uint64_t{h.pso_num_blocks} + uint64_t{h.pos_num_blocks});
  const uint64_t expected_toc_size =
      h.num_properties * kPropertyEntrySize +
      (uint64_t{h.pso_num_blocks} + uint64_t{h.pos_num_blocks}) *
          kBlockMetaSize;
  if (h.pso_offset != expected_pso || h.pos_offset != expected_pos ||
      h.toc_offset != expected_toc || h.toc_size != expected_toc_size) {
    return Status::ParseError("segment section offsets inconsistent");
  }
  if (h.toc_offset + h.toc_size != file_size) {
    return Status::ParseError(
        "segment truncated or oversized: header implies " +
        std::to_string(h.toc_offset + h.toc_size) + " bytes, file has " +
        std::to_string(file_size));
  }
  return h;
}

void EncodeBlockMeta(const BlockMeta& meta, std::string* out) {
  AppendU32(meta.num_triples, out);
  AppendU32(meta.payload_len, out);
  AppendU64(meta.checksum, out);
  for (uint32_t v : meta.first) AppendU32(v, out);
  for (uint32_t v : meta.last) AppendU32(v, out);
  AppendU32(meta.min_mid, out);
  AppendU32(meta.max_mid, out);
  AppendU32(meta.min_minor, out);
  AppendU32(meta.max_minor, out);
}

BlockMeta DecodeBlockMeta(const uint8_t* data) {
  BlockMeta meta;
  meta.num_triples = ReadU32(data);
  meta.payload_len = ReadU32(data + 4);
  meta.checksum = ReadU64(data + 8);
  for (int i = 0; i < 3; ++i) meta.first[i] = ReadU32(data + 16 + 4 * i);
  for (int i = 0; i < 3; ++i) meta.last[i] = ReadU32(data + 28 + 4 * i);
  meta.min_mid = ReadU32(data + 40);
  meta.max_mid = ReadU32(data + 44);
  meta.min_minor = ReadU32(data + 48);
  meta.max_minor = ReadU32(data + 52);
  return meta;
}

void EncodePropertyEntry(const PropertyEntry& entry, std::string* out) {
  AppendU64(entry.count, out);
  AppendU32(entry.pso_first, out);
  AppendU32(entry.pso_count, out);
  AppendU32(entry.pos_first, out);
  AppendU32(entry.pos_count, out);
}

PropertyEntry DecodePropertyEntry(const uint8_t* data) {
  PropertyEntry entry;
  entry.count = ReadU64(data);
  entry.pso_first = ReadU32(data + 8);
  entry.pso_count = ReadU32(data + 12);
  entry.pos_first = ReadU32(data + 16);
  entry.pos_count = ReadU32(data + 20);
  return entry;
}

// Delta encoding of one triple against the previous key, in index
// order (c0, c1, c2):
//   first triple       varint(c0) varint(c1) varint(c2)
//   c0 changed         varint(dc0>=1) varint(c1) varint(c2)
//   c1 changed         varint(0) varint(dc1>=1) varint(c2)
//   c2 changed         varint(0) varint(0) varint(dc2>=1)
// Sorted-unique input makes the leading nonzero delta >= 1, so a zero
// unambiguously means "component unchanged, read the next one".
void EncodeTripleDelta(RunOrder order, const rdf::Triple& t, const Key3& prev,
                       bool first, std::string* out) {
  const Key3 key = KeyOf(order, t);
  if (first) {
    AppendVarint32(key[0], out);
    AppendVarint32(key[1], out);
    AppendVarint32(key[2], out);
    return;
  }
  if (key[0] != prev[0]) {
    AppendVarint32(key[0] - prev[0], out);
    AppendVarint32(key[1], out);
    AppendVarint32(key[2], out);
  } else if (key[1] != prev[1]) {
    AppendVarint32(0, out);
    AppendVarint32(key[1] - prev[1], out);
    AppendVarint32(key[2], out);
  } else {
    AppendVarint32(0, out);
    AppendVarint32(0, out);
    AppendVarint32(key[2] - prev[2], out);
  }
}

size_t TripleDeltaSize(RunOrder order, const rdf::Triple& t, const Key3& prev,
                       bool first) {
  const Key3 key = KeyOf(order, t);
  if (first) {
    return Varint32Size(key[0]) + Varint32Size(key[1]) + Varint32Size(key[2]);
  }
  if (key[0] != prev[0]) {
    return Varint32Size(key[0] - prev[0]) + Varint32Size(key[1]) +
           Varint32Size(key[2]);
  }
  if (key[1] != prev[1]) {
    return 1 + Varint32Size(key[1] - prev[1]) + Varint32Size(key[2]);
  }
  return 2 + Varint32Size(key[2] - prev[2]);
}

bool BlockDecoder::Next(rdf::Triple* t) {
  if (!ok_ || remaining_ == 0) return false;
  uint32_t v0 = 0, v1 = 0, v2 = 0;
  if (!DecodeVarint32(data_, len_, &pos_, &v0)) {
    ok_ = false;
    return false;
  }
  Key3 key;
  if (first_) {
    if (!DecodeVarint32(data_, len_, &pos_, &v1) ||
        !DecodeVarint32(data_, len_, &pos_, &v2)) {
      ok_ = false;
      return false;
    }
    key = {v0, v1, v2};
    first_ = false;
  } else if (v0 != 0) {
    if (!DecodeVarint32(data_, len_, &pos_, &v1) ||
        !DecodeVarint32(data_, len_, &pos_, &v2)) {
      ok_ = false;
      return false;
    }
    // Overflowing deltas (key wrapping back below prev_) mean the block
    // is not sorted — corrupt by construction.
    if (prev_[0] + v0 < prev_[0]) {
      ok_ = false;
      return false;
    }
    key = {prev_[0] + v0, v1, v2};
  } else {
    if (!DecodeVarint32(data_, len_, &pos_, &v1)) {
      ok_ = false;
      return false;
    }
    if (v1 != 0) {
      if (!DecodeVarint32(data_, len_, &pos_, &v2)) {
        ok_ = false;
        return false;
      }
      if (prev_[1] + v1 < prev_[1]) {
        ok_ = false;
        return false;
      }
      key = {prev_[0], prev_[1] + v1, v2};
    } else {
      if (!DecodeVarint32(data_, len_, &pos_, &v2)) {
        ok_ = false;
        return false;
      }
      if (v2 == 0 || prev_[2] + v2 < prev_[2]) {
        ok_ = false;
        return false;
      }
      key = {prev_[0], prev_[1], prev_[2] + v2};
    }
  }
  prev_ = key;
  --remaining_;
  *t = TripleOf(order_, key);
  return true;
}

}  // namespace mpc::storage

#ifndef MPC_STORAGE_VARINT_H_
#define MPC_STORAGE_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace mpc::storage {

/// LEB128 varints over uint32 ids — the per-component encoding inside
/// segment blocks. A uint32 takes 1–5 bytes; deltas of sorted runs are
/// almost always 1 byte.
inline constexpr size_t kMaxVarint32Bytes = 5;

inline void AppendVarint32(uint32_t value, std::string* out) {
  while (value >= 0x80u) {
    out->push_back(static_cast<char>((value & 0x7fu) | 0x80u));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

inline size_t Varint32Size(uint32_t value) {
  size_t n = 1;
  while (value >= 0x80u) {
    ++n;
    value >>= 7;
  }
  return n;
}

/// Bounds-checked decode: reads a varint from data[*pos..len). Returns
/// false (without moving *pos past len) on truncation, on more than 5
/// bytes, or on a 5th byte carrying bits beyond 32 — every corrupt
/// input is a clean decode failure, never a read past the buffer.
inline bool DecodeVarint32(const uint8_t* data, size_t len, size_t* pos,
                           uint32_t* value) {
  uint32_t result = 0;
  size_t p = *pos;
  for (size_t i = 0; i < kMaxVarint32Bytes; ++i) {
    if (p >= len) return false;
    const uint8_t byte = data[p++];
    if (i == 4 && (byte & ~0x0fu) != 0) return false;  // > 32 bits
    result |= static_cast<uint32_t>(byte & 0x7fu) << (7 * i);
    if ((byte & 0x80u) == 0) {
      *pos = p;
      *value = result;
      return true;
    }
  }
  return false;  // 5 continuation bytes: malformed
}

}  // namespace mpc::storage

#endif  // MPC_STORAGE_VARINT_H_

#include "storage/segment_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "common/fsio.h"

namespace mpc::storage {

namespace {

struct Run {
  std::string data;              // concatenated block pages
  std::vector<BlockMeta> metas;  // one per block
};

/// Packs `triples` (already sorted in `order`, unique) into
/// block_size-aligned pages: delta+varint payload, zero padding, zone
/// map and first/last keys in the meta. A triple never splits across
/// blocks; each new block restarts with an absolute first triple.
Run BuildRun(RunOrder order, const std::vector<rdf::Triple>& triples,
             uint32_t block_size) {
  Run run;
  size_t i = 0;
  while (i < triples.size()) {
    BlockMeta meta;
    std::string payload;
    payload.reserve(block_size);
    Key3 prev = {0, 0, 0};
    uint32_t min_mid = UINT32_MAX, max_mid = 0;
    uint32_t min_minor = UINT32_MAX, max_minor = 0;
    const size_t block_start = i;
    while (i < triples.size()) {
      const bool first = (i == block_start);
      const size_t sz = TripleDeltaSize(order, triples[i], prev, first);
      if (payload.size() + sz > block_size) break;
      EncodeTripleDelta(order, triples[i], prev, first, &payload);
      const Key3 key = KeyOf(order, triples[i]);
      if (first) meta.first = key;
      meta.last = key;
      min_mid = std::min(min_mid, key[1]);
      max_mid = std::max(max_mid, key[1]);
      min_minor = std::min(min_minor, key[2]);
      max_minor = std::max(max_minor, key[2]);
      prev = key;
      ++i;
    }
    meta.num_triples = static_cast<uint32_t>(i - block_start);
    meta.payload_len = static_cast<uint32_t>(payload.size());
    meta.checksum = SegmentChecksum(payload);
    meta.min_mid = min_mid;
    meta.max_mid = max_mid;
    meta.min_minor = min_minor;
    meta.max_minor = max_minor;
    payload.resize(block_size, '\0');
    run.data += payload;
    run.metas.push_back(meta);
  }
  return run;
}

/// Half-open block range [first, first+count) of the blocks that carry
/// at least one triple of property p, per property. Blocks are sorted by
/// key, so each property's blocks are contiguous.
void FillPropertyRanges(const std::vector<BlockMeta>& metas,
                        uint64_t num_properties, bool pso,
                        std::vector<PropertyEntry>* table) {
  for (uint32_t b = 0; b < metas.size(); ++b) {
    const uint64_t lo = metas[b].first[0];
    const uint64_t hi = metas[b].last[0];
    for (uint64_t p = lo; p <= hi && p < num_properties; ++p) {
      PropertyEntry& e = (*table)[p];
      uint32_t& first = pso ? e.pso_first : e.pos_first;
      uint32_t& count = pso ? e.pso_count : e.pos_count;
      if (count == 0) first = b;
      count = b - first + 1;
    }
  }
}

Status WriteFileDurably(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return SysError("open failed for", tmp);
  Status st = WriteAll(fd, bytes, tmp);
  if (st.ok()) st = FsyncFd(fd, tmp);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return SysError("rename failed for", path);
  }
  const size_t slash = path.find_last_of('/');
  return FsyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

}  // namespace

std::string SegmentFileName(uint32_t site) {
  return "partition_" + std::to_string(site) + ".mpcseg";
}

std::string SegmentPath(const std::string& dir, uint32_t site) {
  return dir + "/" + SegmentFileName(site);
}

Status WriteSegment(const std::string& path, std::vector<rdf::Triple> triples,
                    const SegmentWriterOptions& options,
                    SegmentWriteStats* stats) {
  const uint32_t bs = options.block_size;
  if (bs < 512 || bs > (1u << 20) || (bs & (bs - 1)) != 0) {
    return Status::InvalidArgument("segment block size must be a power of "
                                   "two in [512, 1MiB], got " +
                                   std::to_string(bs));
  }
  // Identical normalization to TripleStore's constructor: PSO sort,
  // duplicates removed. Both backends then hold the same triple set.
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());

  Run pso = BuildRun(RunOrder::kPso, triples, bs);
  {
    std::vector<rdf::Triple> pos_sorted = triples;
    std::sort(pos_sorted.begin(), pos_sorted.end(),
              [](const rdf::Triple& a, const rdf::Triple& b) {
                return KeyOf(RunOrder::kPos, a) < KeyOf(RunOrder::kPos, b);
              });
    triples = std::move(pos_sorted);
  }
  Run pos = BuildRun(RunOrder::kPos, triples, bs);

  // The declared universes may not be smaller than what the data uses:
  // the property table must cover every stored property (open-side
  // validation sums it against num_triples).
  uint64_t num_properties = options.num_properties;
  uint64_t num_vertices = options.num_vertices;
  for (const rdf::Triple& t : triples) {
    num_properties = std::max(num_properties, uint64_t{t.property} + 1);
    num_vertices = std::max(
        num_vertices, uint64_t{std::max(t.subject, t.object)} + 1);
  }
  if (num_properties > kMaxProperties) {
    return Status::InvalidArgument(
        "segment property universe too large: " +
        std::to_string(num_properties));
  }

  std::vector<PropertyEntry> table(num_properties);
  for (const rdf::Triple& t : triples) {
    ++table[t.property].count;
  }
  FillPropertyRanges(pso.metas, num_properties, /*pso=*/true, &table);
  FillPropertyRanges(pos.metas, num_properties, /*pso=*/false, &table);

  std::string toc;
  toc.reserve(table.size() * kPropertyEntrySize +
              (pso.metas.size() + pos.metas.size()) * kBlockMetaSize);
  for (const PropertyEntry& e : table) EncodePropertyEntry(e, &toc);
  for (const BlockMeta& m : pso.metas) EncodeBlockMeta(m, &toc);
  for (const BlockMeta& m : pos.metas) EncodeBlockMeta(m, &toc);

  SegmentHeader header;
  header.block_size = bs;
  header.site = options.site;
  header.k = options.k;
  header.num_triples = triples.size();
  header.num_properties = num_properties;
  header.num_vertices = num_vertices;
  header.partition_fingerprint = options.partition_fingerprint;
  header.pso_num_blocks = static_cast<uint32_t>(pso.metas.size());
  header.pos_num_blocks = static_cast<uint32_t>(pos.metas.size());
  header.pso_offset = bs;
  header.pos_offset = bs * (1 + uint64_t{header.pso_num_blocks});
  header.toc_offset =
      bs * (1 + uint64_t{header.pso_num_blocks} + header.pos_num_blocks);
  header.toc_size = toc.size();
  header.toc_checksum = SegmentChecksum(toc);

  std::string file = EncodeSegmentHeader(header);
  file.resize(bs, '\0');  // header page
  file += pso.data;
  file += pos.data;
  file += toc;

  MPC_RETURN_IF_ERROR(WriteFileDurably(path, file));
  if (stats != nullptr) {
    stats->num_triples = header.num_triples;
    stats->file_bytes = file.size();
    stats->pso_blocks = header.pso_num_blocks;
    stats->pos_blocks = header.pos_num_blocks;
  }
  return Status::Ok();
}

}  // namespace mpc::storage

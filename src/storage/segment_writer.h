#ifndef MPC_STORAGE_SEGMENT_WRITER_H_
#define MPC_STORAGE_SEGMENT_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/types.h"
#include "storage/segment_format.h"

namespace mpc::storage {

struct SegmentWriterOptions {
  uint32_t block_size = kDefaultBlockSize;
  uint32_t site = 0;
  uint32_t k = 0;
  /// Universe sizes of the graph the ids were encoded against; open
  /// paths cross-check them so a segment is never scanned with a
  /// different dictionary.
  uint64_t num_properties = 0;
  uint64_t num_vertices = 0;
  /// PartitionIo::Fingerprint of the partition directory (0 = unbound,
  /// tests only).
  uint64_t partition_fingerprint = 0;
};

struct SegmentWriteStats {
  uint64_t num_triples = 0;  // after dedup
  uint64_t file_bytes = 0;
  uint32_t pso_blocks = 0;
  uint32_t pos_blocks = 0;
};

/// Writes one site's triples as an immutable segment at `path`:
/// sorts and dedups (replicas of one edge appear once, exactly as
/// TripleStore's constructor does), encodes the PSO and POS runs into
/// page-aligned delta+varint blocks with zone maps, and publishes with
/// the tmp-file + fsync + rename protocol so a crash never leaves a
/// half-written segment under the final name.
Status WriteSegment(const std::string& path, std::vector<rdf::Triple> triples,
                    const SegmentWriterOptions& options,
                    SegmentWriteStats* stats = nullptr);

/// Segment file name for one site, `partition_<i>.mpcseg`, alongside
/// PartitionIo's `partition_<i>.nt`.
std::string SegmentFileName(uint32_t site);
std::string SegmentPath(const std::string& dir, uint32_t site);

}  // namespace mpc::storage

#endif  // MPC_STORAGE_SEGMENT_WRITER_H_

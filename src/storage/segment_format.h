#ifndef MPC_STORAGE_SEGMENT_FORMAT_H_
#define MPC_STORAGE_SEGMENT_FORMAT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/types.h"

namespace mpc::storage {

/// On-disk layout of one partition segment (`partition_<i>.mpcseg`) — an
/// immutable, dictionary-encoded, delta+varint-compressed copy of one
/// site's triple set, written once by `mpc pack` and mmap'ed at query
/// time:
///
///   [header page]     one block_size page; fields below, zero padding,
///                     FNV-1a header checksum
///   [PSO blocks]      block_size-aligned pages, triples sorted by
///                     (property, subject, object), delta+varint coded
///   [POS blocks]      same triples sorted by (property, object, subject)
///   [TOC]             property table + one BlockMeta per block
///                     (counts, payload checksum, first/last key, and
///                     the zone map: min/max of the non-major columns),
///                     FNV-1a checksummed as a whole
///
/// Versioned-header discipline follows net/frame.*: every field that
/// sizes or offsets anything is validated against the actual file size
/// BEFORE it is trusted, so torn, truncated or garbage input decodes to
/// a clean ParseError — never a crash, an over-allocation, or a silent
/// misparse. Block payload checksums catch corruption that leaves the
/// header plausible.
inline constexpr uint32_t kSegmentMagic = 0x4753504du;  // "MPSG"
inline constexpr uint32_t kSegmentVersion = 1;
inline constexpr uint32_t kDefaultBlockSize = 4096;
inline constexpr size_t kSegmentHeaderSize = 112;
/// Serialized sizes of the TOC records.
inline constexpr size_t kBlockMetaSize = 56;
inline constexpr size_t kPropertyEntrySize = 24;
/// Sanity caps checked before any TOC arithmetic: generous for real
/// data, small enough that every size product fits in uint64 with room.
inline constexpr uint64_t kMaxProperties = uint64_t{1} << 28;
inline constexpr uint64_t kMaxBlocksPerRun = uint64_t{1} << 26;

/// FNV-1a over raw bytes; same function the RPC frames use, duplicated
/// here so storage does not depend on the transport layer.
uint64_t SegmentChecksum(std::string_view bytes);

/// Which sort order a run of blocks holds. The key of a triple in index
/// order: PSO → (property, subject, object), POS → (property, object,
/// subject).
enum class RunOrder : uint8_t { kPso, kPos };

/// Triple key in a run's index order, for block binary search.
using Key3 = std::array<uint32_t, 3>;

Key3 KeyOf(RunOrder order, const rdf::Triple& t);
rdf::Triple TripleOf(RunOrder order, const Key3& key);

/// The fixed-size header at offset 0.
struct SegmentHeader {
  uint32_t magic = kSegmentMagic;
  uint32_t version = kSegmentVersion;
  uint32_t block_size = kDefaultBlockSize;
  uint32_t site = 0;
  uint32_t k = 0;
  uint32_t flags = 0;
  uint64_t num_triples = 0;
  uint64_t num_properties = 0;  // property-universe size at pack time
  uint64_t num_vertices = 0;    // vertex-universe size at pack time
  /// PartitionIo::Fingerprint of the partition directory the segment
  /// was packed from; open paths refuse a segment packed for a
  /// different partitioning, mirroring the update journal's binding.
  uint64_t partition_fingerprint = 0;
  uint32_t pso_num_blocks = 0;
  uint32_t pos_num_blocks = 0;
  uint64_t pso_offset = 0;
  uint64_t pos_offset = 0;
  uint64_t toc_offset = 0;
  uint64_t toc_size = 0;
  uint64_t toc_checksum = 0;
};

/// Per-block TOC entry: decode bounds, payload checksum, the first/last
/// triple key (for binary search over blocks), and the zone map — min
/// and max of the two non-major columns over the whole block, valid (if
/// loose) even when a block spans several properties. `mid` is the
/// second key component (subject for PSO, object for POS), `minor` the
/// third.
struct BlockMeta {
  uint32_t num_triples = 0;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
  Key3 first = {0, 0, 0};
  Key3 last = {0, 0, 0};
  uint32_t min_mid = 0;
  uint32_t max_mid = 0;
  uint32_t min_minor = 0;
  uint32_t max_minor = 0;
};

/// Per-property TOC entry: exact triple count plus the half-open block
/// ranges of the property's run in each index (blocks a multi-property
/// page straddles are included in every property they carry).
struct PropertyEntry {
  uint64_t count = 0;
  uint32_t pso_first = 0;
  uint32_t pso_count = 0;
  uint32_t pos_first = 0;
  uint32_t pos_count = 0;
};

/// Serializes the header into exactly kSegmentHeaderSize bytes,
/// including the trailing header checksum (caller pads to block_size).
std::string EncodeSegmentHeader(const SegmentHeader& header);

/// Decodes and validates a header: magic, version, checksum, block size
/// a power of two in [512, 1 MiB], the sanity caps above, and that every
/// section offset/length lands inside `file_size` with the exact layout
/// Encode produces. ParseError otherwise.
Result<SegmentHeader> DecodeSegmentHeader(const uint8_t* data, size_t len,
                                          uint64_t file_size);

void EncodeBlockMeta(const BlockMeta& meta, std::string* out);
BlockMeta DecodeBlockMeta(const uint8_t* data);  // exactly kBlockMetaSize

void EncodePropertyEntry(const PropertyEntry& entry, std::string* out);
PropertyEntry DecodePropertyEntry(const uint8_t* data);

/// Streaming decoder over one block payload. Trusts nothing: every
/// varint read is bounds-checked, so a corrupt payload (even one whose
/// checksum was deliberately skipped) yields ok()=false instead of a
/// crash. Usage:
///
///   BlockDecoder dec(order, payload, payload_len, num_triples);
///   rdf::Triple t;
///   while (dec.Next(&t)) { ... }
///   if (!dec.ok()) -> corrupt block
class BlockDecoder {
 public:
  BlockDecoder(RunOrder order, const uint8_t* payload, size_t payload_len,
               uint32_t num_triples)
      : order_(order),
        data_(payload),
        len_(payload_len),
        remaining_(num_triples) {}

  /// Decodes the next triple; false at end-of-block or on corruption
  /// (distinguish with ok()).
  bool Next(rdf::Triple* t);

  bool ok() const { return ok_; }
  /// True iff all declared triples decoded and the payload was fully
  /// consumed (trailing garbage inside payload_len is corruption too).
  bool AtCleanEnd() const { return ok_ && remaining_ == 0 && pos_ == len_; }

 private:
  RunOrder order_;
  const uint8_t* data_;
  size_t len_;
  uint32_t remaining_;
  size_t pos_ = 0;
  bool first_ = true;
  bool ok_ = true;
  Key3 prev_ = {0, 0, 0};
};

/// Appends one triple's encoding (relative to `prev`, or absolute when
/// `first`) to `out`. Keys must be strictly increasing in index order.
void EncodeTripleDelta(RunOrder order, const rdf::Triple& t, const Key3& prev,
                       bool first, std::string* out);

/// Encoded size of the same, for block fill decisions.
size_t TripleDeltaSize(RunOrder order, const rdf::Triple& t, const Key3& prev,
                       bool first);

}  // namespace mpc::storage

#endif  // MPC_STORAGE_SEGMENT_FORMAT_H_

#ifndef MPC_COMMON_RANDOM_H_
#define MPC_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace mpc {

/// SplitMix64: used to seed the main generator and as a cheap stateless
/// mixer. Reference: Steele, Lea, Flood (2014).
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** — fast, high-quality 64-bit PRNG used for all synthetic
/// data generation. Deterministic for a given seed, so every benchmark and
/// test is reproducible.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x2545F4914F6CDD1DULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // Fast path without 128-bit math for small bounds is unnecessary;
    // __uint128_t is available on all supported compilers.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Samples from a Zipf distribution over {0, ..., n-1} with exponent s,
/// using a precomputed inverse-CDF table. Used to model long-tail property
/// and entity popularity in the DBpedia/LGD-style generators.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  /// Draws a rank in [0, n). Rank 0 is the most popular item.
  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    // Binary search the CDF.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace mpc

#endif  // MPC_COMMON_RANDOM_H_

#ifndef MPC_COMMON_STRING_UTIL_H_
#define MPC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mpc {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a count with thousands separators ("1,234,567") as the paper's
/// tables print dataset statistics.
std::string FormatWithCommas(uint64_t value);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Formats a millisecond duration the way the experiment tables print them
/// (integers with comma separators, e.g. "34,512").
std::string FormatMillis(double ms);

}  // namespace mpc

#endif  // MPC_COMMON_STRING_UTIL_H_

#include "common/flags.h"

#include <algorithm>
#include <stdexcept>

namespace mpc {

namespace {

/// Wraps the throwing std::sto* parsers into a Status, rejecting
/// trailing garbage ("--k=8x" is an error, not 8).
template <typename T, typename ParseFn>
Status ParseNumber(const std::string& name, const std::string& value,
                   ParseFn parse, T* out) {
  try {
    size_t used = 0;
    T parsed = parse(value, &used);
    if (used != value.size()) {
      return Status::InvalidArgument("--" + name +
                                     " needs a numeric value, got '" +
                                     value + "'");
    }
    *out = parsed;
    return Status::Ok();
  } catch (const std::exception&) {
    return Status::InvalidArgument("--" + name +
                                   " needs a numeric value, got '" + value +
                                   "'");
  }
}

}  // namespace

void FlagParser::Add(std::string name,
                     std::function<Status(const std::string&)> apply,
                     bool valueless) {
  flags_.push_back(Flag{std::move(name), std::move(apply), valueless});
}

void FlagParser::AddString(const std::string& name, std::string* out) {
  Add(name, [out](const std::string& value) {
    *out = value;
    return Status::Ok();
  });
}

void FlagParser::AddBool(const std::string& name, bool* out) {
  Add(
      name,
      [name, out](const std::string& value) {
        if (value == "true" || value == "1") {
          *out = true;
        } else if (value == "false" || value == "0") {
          *out = false;
        } else {
          return Status::InvalidArgument("--" + name +
                                         " needs true or false, got '" +
                                         value + "'");
        }
        return Status::Ok();
      },
      /*valueless=*/true);
}

void FlagParser::AddUint32(const std::string& name, uint32_t* out) {
  Add(name, [name, out](const std::string& value) {
    return ParseNumber<uint32_t>(
        name, value,
        [](const std::string& v, size_t* used) {
          return static_cast<uint32_t>(std::stoul(v, used));
        },
        out);
  });
}

void FlagParser::AddUint64(const std::string& name, uint64_t* out) {
  Add(name, [name, out](const std::string& value) {
    return ParseNumber<uint64_t>(
        name, value,
        [](const std::string& v, size_t* used) {
          return static_cast<uint64_t>(std::stoull(v, used));
        },
        out);
  });
}

void FlagParser::AddInt(const std::string& name, int* out) {
  Add(name, [name, out](const std::string& value) {
    return ParseNumber<int>(
        name, value,
        [](const std::string& v, size_t* used) {
          return std::stoi(v, used);
        },
        out);
  });
}

void FlagParser::AddDouble(const std::string& name, double* out) {
  Add(name, [name, out](const std::string& value) {
    return ParseNumber<double>(
        name, value,
        [](const std::string& v, size_t* used) {
          return std::stod(v, used);
        },
        out);
  });
}

void FlagParser::AddUint32List(const std::string& name,
                               std::vector<uint32_t>* out) {
  Add(name, [name, out](const std::string& value) {
    std::vector<uint32_t> parsed;
    size_t begin = 0;
    while (begin <= value.size()) {
      size_t comma = value.find(',', begin);
      if (comma == std::string::npos) comma = value.size();
      const std::string item = value.substr(begin, comma - begin);
      if (!item.empty()) {
        uint32_t element = 0;
        Status st = ParseNumber<uint32_t>(
            name, item,
            [](const std::string& v, size_t* used) {
              return static_cast<uint32_t>(std::stoul(v, used));
            },
            &element);
        if (!st.ok()) return st;
        parsed.push_back(element);
      }
      begin = comma + 1;
    }
    *out = std::move(parsed);
    return Status::Ok();
  });
}

void FlagParser::AddChoice(const std::string& name, std::string* out,
                           std::vector<std::string> choices) {
  Add(name, [name, out,
             choices = std::move(choices)](const std::string& value) {
    if (std::find(choices.begin(), choices.end(), value) == choices.end()) {
      std::string allowed;
      for (const std::string& c : choices) {
        if (!allowed.empty()) allowed += "|";
        allowed += c;
      }
      return Status::InvalidArgument("--" + name + " must be one of " +
                                     allowed + ", got '" + value + "'");
    }
    *out = value;
    return Status::Ok();
  });
}

Result<std::vector<std::string>> FlagParser::Parse(int argc, char** argv,
                                                   int first) {
  std::vector<std::string> positional;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    const size_t eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    auto it = std::find_if(flags_.begin(), flags_.end(),
                           [&](const Flag& f) { return f.name == key; });
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
    if (eq == std::string::npos && !it->valueless) {
      return Status::InvalidArgument("flag needs a value: " + arg);
    }
    const std::string value =
        eq == std::string::npos ? "true" : arg.substr(eq + 1);
    Status st = it->apply(value);
    if (!st.ok()) return st;
  }
  return positional;
}

}  // namespace mpc

#ifndef MPC_COMMON_THREAD_POOL_H_
#define MPC_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mpc {

/// Resolves a user-facing thread-count option: n >= 1 is taken verbatim,
/// n <= 0 means "one worker per hardware thread" (at least 1 when the
/// hardware concurrency is unknown). All num_threads options in this
/// codebase share this convention: 0 = hardware_concurrency, 1 = serial.
int ResolveNumThreads(int num_threads);

/// Minimal fixed-size worker pool over one FIFO task queue — no work
/// stealing, no priorities. Tasks are void() callables; the first
/// exception a task throws is captured and rethrown from Wait().
///
/// The pool is the shared concurrency substrate for the offline
/// pipeline: per-property cost evaluation, chunked N-Triples parsing,
/// per-site partition materialization and per-site BGP matching all run
/// through it (via ParallelFor below).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (resolved via ResolveNumThreads).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Thread-safe against other Submit/Wait calls.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task threw (clearing it, so the pool stays
  /// usable).
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running
  bool stopping_ = false;
  std::exception_ptr first_exception_;
  std::vector<std::thread> workers_;
};

/// Data-parallel loop: invokes fn(i) for every i in [begin, end). The
/// range is cut into contiguous chunks of at most `grain` indices and
/// the chunks are executed by ResolveNumThreads(num_threads) workers.
///
/// With one worker (or a single chunk) this degenerates to the plain
/// serial loop — no pool is created. Chunk boundaries depend only on
/// (begin, end, grain), never on the worker count, and workers only
/// decide *when* a chunk runs, not what it computes — so callers that
/// write results into per-index (or per-chunk) slots get bit-identical
/// output at every thread count. The first exception thrown by fn
/// propagates to the caller.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, size_t grain, int num_threads,
                 Fn&& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t count = end - begin;
  const size_t num_chunks = (count + grain - 1) / grain;
  int threads = ResolveNumThreads(num_threads);
  if (threads <= 1 || num_chunks <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), num_chunks));
  ThreadPool pool(threads);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * grain;
    const size_t hi = std::min(end, lo + grain);
    pool.Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace mpc

#endif  // MPC_COMMON_THREAD_POOL_H_

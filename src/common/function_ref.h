#ifndef MPC_COMMON_FUNCTION_REF_H_
#define MPC_COMMON_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace mpc {

template <typename Signature>
class FunctionRef;

/// A non-owning, non-allocating callable reference: two words (object
/// pointer + trampoline), trivially copyable. The replacement for
/// `const std::function<...>&` on per-triple hot paths, where
/// std::function's type-erased construction heap-allocates for any
/// capture bigger than its small buffer — once per Scan call, i.e. once
/// per pattern per partial binding in the matcher's recursion.
///
/// The referenced callable must outlive the FunctionRef (always true for
/// a lambda passed directly to a function taking FunctionRef by value).
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  FunctionRef(F&& f)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace mpc

#endif  // MPC_COMMON_FUNCTION_REF_H_

#ifndef MPC_COMMON_HASH_H_
#define MPC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace mpc {

/// 64-bit finalizer from MurmurHash3; good avalanche, used for hashing
/// vertex ids into partitions (Subject_Hash) and properties (VP).
inline uint64_t HashU64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a for strings; used when hashing raw IRIs before dictionary
/// encoding is available.
inline uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combines two hashes (boost::hash_combine style, 64-bit variant).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace mpc

#endif  // MPC_COMMON_HASH_H_

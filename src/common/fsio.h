#ifndef MPC_COMMON_FSIO_H_
#define MPC_COMMON_FSIO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace mpc {

/// Small POSIX file-IO helpers shared by everything that needs durable
/// writes (the update journal/checkpoints) or robust fd plumbing (the
/// site-worker RPC runtime). All of them loop on EINTR and surface
/// failures as IoError naming the path.

/// IoError carrying strerror(errno), e.g. "fsync failed for x: ...".
Status SysError(const std::string& what, const std::string& path);

/// mkdir -p. Errors are IoError, an existing directory is fine.
Status EnsureDir(const std::string& dir);

/// write(2) until everything is on the fd (or an error).
Status WriteAll(int fd, std::string_view data, const std::string& path);

/// fsync(2) the fd; `path` only labels the error.
Status FsyncFd(int fd, const std::string& path);

/// fsyncs the directory itself so a just-created or just-renamed dirent
/// survives a crash (the journal/checkpoint atomic-rename protocol).
Status FsyncDir(const std::string& dir);

}  // namespace mpc

#endif  // MPC_COMMON_FSIO_H_

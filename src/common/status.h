#ifndef MPC_COMMON_STATUS_H_
#define MPC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace mpc {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// Status idiom: cheap to pass by value, OK is the common case.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kCapacityExceeded,
  kUnsupported,
  kInternal,
  kIoError,
  /// A required participant (e.g. a cluster site) is down and retries are
  /// exhausted; the operation could succeed later or elsewhere.
  kUnavailable,
  /// The operation's deadline elapsed before it completed.
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A Status carries the outcome of an operation that can fail without the
/// failure being a programming error (parsing, lookups, capacity limits).
/// Programming errors are asserted, not returned.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value or a non-OK Status (a lightweight
/// absl::StatusOr). Access to value() on an error aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return parsed;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` when this holds an error. The
  /// rvalue overload moves out of the result, so the ok path of
  /// `std::move(r).value_or(...)` (and of temporaries) costs no copy.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace mpc

/// Propagates a non-OK status from an expression, RocksDB-style.
#define MPC_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::mpc::Status _mpc_status = (expr);      \
    if (!_mpc_status.ok()) return _mpc_status; \
  } while (0)

#endif  // MPC_COMMON_STATUS_H_

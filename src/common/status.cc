#include "common/status.h"

namespace mpc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mpc

#ifndef MPC_COMMON_LOGGING_H_
#define MPC_COMMON_LOGGING_H_

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mpc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Benchmarks raise
/// this to kWarning so timed regions are not polluted by I/O.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Destination for finished log lines. Write() receives one complete
/// line (trailing '\n' included) and must be safe to call from any
/// thread — sinks do their own serialization.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, std::string_view line) = 0;
};

/// Swaps the active sink; nullptr restores the default stderr sink.
/// Returns the previous sink (nullptr when the default was active). The
/// caller keeps ownership of the installed sink and must keep it alive
/// until a subsequent SetLogSink replaces it.
LogSink* SetLogSink(LogSink* sink);

/// Bounded in-memory sink for tests: keeps the newest `capacity` lines.
class CaptureLogSink : public LogSink {
 public:
  explicit CaptureLogSink(size_t capacity = 1024);
  ~CaptureLogSink() override;

  void Write(LogLevel level, std::string_view line) override;

  /// Snapshot of the retained lines, oldest first.
  std::vector<std::string> Lines() const;
  size_t dropped() const;
  void Clear();

 private:
  struct Impl;
  Impl* impl_;
};

/// Hook the tracer installs so each log line can carry the active span
/// id ("span=42" in the header) while tracing is on. Returns the span id
/// of the calling thread, 0 for none; nullptr uninstalls.
using LogSpanIdProvider = uint64_t (*)();
void SetLogSpanIdProvider(LogSpanIdProvider provider);

namespace internal {

/// Stream-style log line. The full message is buffered locally and
/// emitted as ONE atomic write on destruction, so concurrent log lines
/// from pool workers never interleave mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mpc

#define MPC_LOG(level)                                        \
  ::mpc::internal::LogMessage(::mpc::LogLevel::k##level, __FILE__, __LINE__)

#endif  // MPC_COMMON_LOGGING_H_

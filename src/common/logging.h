#ifndef MPC_COMMON_LOGGING_H_
#define MPC_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace mpc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Benchmarks raise
/// this to kWarning so timed regions are not polluted by I/O.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log line. The full message is buffered locally and
/// emitted as ONE atomic write on destruction, so concurrent log lines
/// from pool workers never interleave mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mpc

#define MPC_LOG(level)                                        \
  ::mpc::internal::LogMessage(::mpc::LogLevel::k##level, __FILE__, __LINE__)

#endif  // MPC_COMMON_LOGGING_H_

#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace mpc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Serializes sink writes so each message reaches stderr as one
/// uninterleaved unit even when pool workers log concurrently.
std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}

}  // namespace internal
}  // namespace mpc

#include "common/logging.h"

#include <atomic>
#include <deque>
#include <mutex>

namespace mpc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<LogSpanIdProvider> g_span_provider{nullptr};

/// Serializes sink writes so each message reaches stderr as one
/// uninterleaved unit even when pool workers log concurrently.
std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

/// Default destination: one locked write straight to stderr.
class StderrSink : public LogSink {
 public:
  void Write(LogLevel /*level*/, std::string_view line) override {
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
    std::cerr.flush();
  }
};

StderrSink& DefaultSink() {
  static StderrSink sink;
  return sink;
}

std::atomic<LogSink*> g_sink{nullptr};  // nullptr = DefaultSink()

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogSink* SetLogSink(LogSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

void SetLogSpanIdProvider(LogSpanIdProvider provider) {
  g_span_provider.store(provider, std::memory_order_release);
}

struct CaptureLogSink::Impl {
  mutable std::mutex mutex;
  std::deque<std::string> lines;
  size_t capacity = 1024;
  size_t dropped = 0;
};

CaptureLogSink::CaptureLogSink(size_t capacity) : impl_(new Impl) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

CaptureLogSink::~CaptureLogSink() { delete impl_; }

void CaptureLogSink::Write(LogLevel /*level*/, std::string_view line) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->lines.emplace_back(line);
  while (impl_->lines.size() > impl_->capacity) {
    impl_->lines.pop_front();
    ++impl_->dropped;
  }
}

std::vector<std::string> CaptureLogSink::Lines() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return {impl_->lines.begin(), impl_->lines.end()};
}

size_t CaptureLogSink::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->dropped;
}

void CaptureLogSink::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->lines.clear();
  impl_->dropped = 0;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line;
    // Correlate with the active trace span when the tracer installed its
    // provider (StartTracing); a plain run pays one relaxed load.
    if (LogSpanIdProvider provider =
            g_span_provider.load(std::memory_order_acquire)) {
      if (const uint64_t span = provider()) stream_ << " span=" << span;
    }
    stream_ << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string line = stream_.str();
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) sink = &DefaultSink();
  sink->Write(level_, line);
}

}  // namespace internal
}  // namespace mpc

#ifndef MPC_COMMON_FLAGS_H_
#define MPC_COMMON_FLAGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace mpc {

/// Minimal "--key=value" command-line parser shared by the tools. Flags
/// are registered against caller-owned storage; Parse collects the
/// remaining positional arguments. Unknown flags, missing '=' and
/// malformed values are errors naming the offending flag — never
/// silently ignored (a typo'd --strategy must not run the default).
class FlagParser {
 public:
  void AddString(const std::string& name, std::string* out);
  /// Switch flag: bare "--name" sets true; "--name=true|false" also
  /// accepted. The only flag kind usable without '='.
  void AddBool(const std::string& name, bool* out);
  void AddUint32(const std::string& name, uint32_t* out);
  void AddUint64(const std::string& name, uint64_t* out);
  void AddInt(const std::string& name, int* out);
  void AddDouble(const std::string& name, double* out);
  /// Comma-separated list, e.g. --fail-sites=0,3,7 (empty value = empty
  /// list).
  void AddUint32List(const std::string& name, std::vector<uint32_t>* out);
  /// Value restricted to an enumerated set, e.g. fail|best-effort.
  void AddChoice(const std::string& name, std::string* out,
                 std::vector<std::string> choices);

  /// Parses argv[first..argc); returns positional (non-flag) arguments,
  /// or InvalidArgument naming the failing flag.
  Result<std::vector<std::string>> Parse(int argc, char** argv, int first);

 private:
  struct Flag {
    std::string name;
    std::function<Status(const std::string& value)> apply;
    /// True for AddBool flags: "--name" alone is legal (value "true").
    bool valueless = false;
  };
  void Add(std::string name,
           std::function<Status(const std::string&)> apply,
           bool valueless = false);

  std::vector<Flag> flags_;
};

}  // namespace mpc

#endif  // MPC_COMMON_FLAGS_H_

#include "common/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace mpc {

Status SysError(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  return Status::Ok();
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SysError("write failed for", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) return SysError("fsync failed for", path);
  return Status::Ok();
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return SysError("cannot open directory", dir);
  Status st = FsyncFd(fd, dir);
  ::close(fd);
  return st;
}

}  // namespace mpc

#ifndef MPC_COMMON_CRASH_HOOK_H_
#define MPC_COMMON_CRASH_HOOK_H_

#include <csignal>
#include <cstdint>
#include <cstdio>

namespace mpc {

/// Deterministic SIGKILL test hook shared by every crash test: `mpc
/// update --crash-after=N` dies after the Nth journaled batch, `mpc site
/// --kill-after-queries=N` dies after answering its Nth query. Dying via
/// SIGKILL (not exit) is the point — no destructors, no flushes, exactly
/// the residue a power cut or an OOM kill leaves behind, so recovery and
/// failover are exercised against the real thing.
class CrashAfter {
 public:
  /// after_n == 0 disables the hook.
  explicit CrashAfter(uint64_t after_n = 0) : after_n_(after_n) {}

  bool enabled() const { return after_n_ > 0; }
  uint64_t count() const { return count_; }

  /// Counts one unit of work; SIGKILLs the process on the Nth. stdout is
  /// flushed first so the output consumed so far stays assertable.
  void Tick() {
    if (after_n_ == 0) return;
    if (++count_ < after_n_) return;
    std::fflush(stdout);
    raise(SIGKILL);
  }

 private:
  uint64_t after_n_ = 0;
  uint64_t count_ = 0;
};

}  // namespace mpc

#endif  // MPC_COMMON_CRASH_HOOK_H_

#include "common/thread_pool.h"

namespace mpc {

int ResolveNumThreads(int num_threads) {
  if (num_threads >= 1) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int resolved = ResolveNumThreads(num_threads);
  workers_.reserve(static_cast<size_t>(resolved));
  for (int i = 0; i < resolved; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace mpc

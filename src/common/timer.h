#ifndef MPC_COMMON_TIMER_H_
#define MPC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mpc {

/// Wall-clock stopwatch used for the per-stage timings (QDT/LET/JT) that
/// the paper reports in Tables IV-V and the offline timings of Table VI.
/// The clock and its raw time points are exposed (Now(), *Between()) so
/// other timing consumers — the obs tracer, the benches — share this one
/// monotonic clock instead of re-plumbing std::chrono.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  /// The monotonic clock every timing in this codebase is measured on.
  static Clock::time_point Now() { return Clock::now(); }

  /// Elapsed time between two time points, in the given unit. All the
  /// duration math in one place — Elapsed*() and the tracer both call
  /// these instead of repeating the std::chrono::duration casts.
  static double MillisBetween(Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
  }
  static double MicrosBetween(Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration<double, std::micro>(to - from).count();
  }
  static double SecondsBetween(Clock::time_point from,
                               Clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
  }

  void Reset() { start_ = Clock::now(); }

  /// The instant of construction or the last Reset().
  Clock::time_point start() const { return start_; }

  /// Elapsed time since construction or the last Reset(), in milliseconds.
  double ElapsedMillis() const { return MillisBetween(start_, Now()); }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return MicrosBetween(start_, Now()); }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return SecondsBetween(start_, Now()); }

 private:
  Clock::time_point start_;
};

}  // namespace mpc

#endif  // MPC_COMMON_TIMER_H_

#ifndef MPC_COMMON_TIMER_H_
#define MPC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mpc {

/// Wall-clock stopwatch used for the per-stage timings (QDT/LET/JT) that
/// the paper reports in Tables IV-V and the offline timings of Table VI.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mpc

#endif  // MPC_COMMON_TIMER_H_

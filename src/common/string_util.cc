#include "common/string_util.h"

#include <cmath>
#include <cstdio>

namespace mpc {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r' ||
          s[begin] == '\n')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r' ||
          s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatWithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatMillis(double ms) {
  return FormatWithCommas(static_cast<uint64_t>(std::llround(ms)));
}

}  // namespace mpc

#ifndef MPC_RDF_TYPES_H_
#define MPC_RDF_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>

namespace mpc::rdf {

/// Dictionary-encoded vertex identifier (subjects and objects share one
/// id space, as in Definition 3.1 where V covers all subjects and objects).
using VertexId = uint32_t;

/// Dictionary-encoded property (edge label) identifier.
using PropertyId = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr PropertyId kInvalidProperty =
    std::numeric_limits<PropertyId>::max();

/// A dictionary-encoded RDF triple: one directed, labeled edge
/// subject --property--> object.
struct Triple {
  VertexId subject = kInvalidVertex;
  PropertyId property = kInvalidProperty;
  VertexId object = kInvalidVertex;

  Triple() = default;
  Triple(VertexId s, PropertyId p, VertexId o)
      : subject(s), property(p), object(o) {}

  bool operator==(const Triple& other) const = default;

  /// Ordering by (property, subject, object); the graph keeps its edge
  /// array in this order so each property's edges form one contiguous run.
  bool operator<(const Triple& other) const {
    if (property != other.property) return property < other.property;
    if (subject != other.subject) return subject < other.subject;
    return object < other.object;
  }
};

/// The syntactic category of an RDF term. Blank nodes and IRIs behave
/// identically for partitioning; literals can only appear as objects.
enum class TermKind : uint8_t { kIri, kLiteral, kBlank };

}  // namespace mpc::rdf

namespace std {
template <>
struct hash<mpc::rdf::Triple> {
  size_t operator()(const mpc::rdf::Triple& t) const {
    uint64_t h = (static_cast<uint64_t>(t.subject) << 32) | t.object;
    h ^= static_cast<uint64_t>(t.property) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};
}  // namespace std

#endif  // MPC_RDF_TYPES_H_

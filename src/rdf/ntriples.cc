#include "rdf/ntriples.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace mpc::rdf {

namespace {

/// Scans one RDF term starting at s[pos]. On success advances *pos past
/// the term and returns the term's token (including delimiters).
Status ScanTerm(std::string_view s, size_t* pos, std::string_view* term,
                bool allow_literal) {
  size_t i = *pos;
  if (i >= s.size()) return Status::ParseError("unexpected end of line");
  const size_t start = i;
  char c = s[i];
  if (c == '<') {
    // IRI: everything up to the closing '>'.
    size_t end = s.find('>', i + 1);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    *term = s.substr(start, end - start + 1);
    *pos = end + 1;
    return Status::Ok();
  }
  if (c == '_' && i + 1 < s.size() && s[i + 1] == ':') {
    // Blank node label: _:[A-Za-z0-9_.-]+ (pragmatic superset).
    i += 2;
    size_t lbl = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i == lbl) return Status::ParseError("empty blank node label");
    *term = s.substr(start, i - start);
    *pos = i;
    return Status::Ok();
  }
  if (c == '"') {
    if (!allow_literal) {
      return Status::ParseError("literal not allowed in this position");
    }
    // Literal body with backslash escapes.
    ++i;
    while (i < s.size()) {
      if (s[i] == '\\') {
        i += 2;
        continue;
      }
      if (s[i] == '"') break;
      ++i;
    }
    if (i >= s.size()) return Status::ParseError("unterminated literal");
    ++i;  // past the closing quote
    // Optional language tag or datatype suffix.
    if (i < s.size() && s[i] == '@') {
      ++i;
      while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    } else if (i + 1 < s.size() && s[i] == '^' && s[i + 1] == '^') {
      i += 2;
      if (i >= s.size() || s[i] != '<') {
        return Status::ParseError("malformed datatype IRI");
      }
      size_t end = s.find('>', i + 1);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      i = end + 1;
    }
    *term = s.substr(start, i - start);
    *pos = i;
    return Status::Ok();
  }
  return Status::ParseError("unexpected character '" + std::string(1, c) +
                            "'");
}

void SkipSpaces(std::string_view s, size_t* pos) {
  while (*pos < s.size() && (s[*pos] == ' ' || s[*pos] == '\t')) ++(*pos);
}

}  // namespace

Status NTriplesParser::ParseLine(std::string_view line, GraphBuilder* builder,
                                 bool* is_triple) {
  *is_triple = false;
  std::string_view s = StripWhitespace(line);
  if (s.empty() || s[0] == '#') return Status::Ok();

  size_t pos = 0;
  std::string_view subject, property, object;
  MPC_RETURN_IF_ERROR(ScanTerm(s, &pos, &subject, /*allow_literal=*/false));
  SkipSpaces(s, &pos);
  MPC_RETURN_IF_ERROR(ScanTerm(s, &pos, &property, /*allow_literal=*/false));
  if (!property.empty() && property[0] == '_') {
    return Status::ParseError("blank node not allowed as predicate");
  }
  SkipSpaces(s, &pos);
  MPC_RETURN_IF_ERROR(ScanTerm(s, &pos, &object, /*allow_literal=*/true));
  SkipSpaces(s, &pos);
  if (pos >= s.size() || s[pos] != '.') {
    return Status::ParseError("missing terminating '.'");
  }
  ++pos;
  SkipSpaces(s, &pos);
  if (pos != s.size()) {
    return Status::ParseError("trailing characters after '.'");
  }

  builder->Add(subject, property, object);
  *is_triple = true;
  return Status::Ok();
}

namespace {

/// Parses one line-aligned chunk of a document into `builder`. A
/// non-final chunk always ends with '\n' (the splitter guarantees it),
/// so it iterates `while (start < size)` — no phantom trailing empty
/// line. The final chunk iterates `while (start <= size)`, exactly like
/// the historical serial loop, so the per-chunk line counts sum to the
/// serial line count and error line numbers match the serial parse.
///
/// On success *line_count is the chunk's line count; on error it is the
/// 1-based index of the malformed line within the chunk, and the builder
/// holds everything parsed before that line (matching the serial
/// builder's partial state at the same error).
Status ParseChunk(std::string_view chunk, bool is_final,
                  GraphBuilder* builder, size_t* line_count) {
  size_t line_no = 0;
  size_t start = 0;
  while (is_final ? start <= chunk.size() : start < chunk.size()) {
    size_t end = chunk.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? chunk.substr(start)
                                : chunk.substr(start, end - start);
    ++line_no;
    bool is_triple = false;
    Status st = NTriplesParser::ParseLine(line, builder, &is_triple);
    if (!st.ok()) {
      *line_count = line_no;
      return st;
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  *line_count = line_no;
  return Status::Ok();
}

/// Cuts `text` into at most `max_chunks` line-aligned pieces: every
/// boundary sits just past a '\n', so every chunk but the last ends with
/// a newline. Boundaries depend only on the text and max_chunks, never
/// on scheduling. Returns strictly increasing offsets starting at 0 and
/// ending at text.size().
std::vector<size_t> ChunkBoundaries(std::string_view text,
                                    size_t max_chunks) {
  std::vector<size_t> bounds{0};
  for (size_t c = 1; c < max_chunks; ++c) {
    size_t target = text.size() * c / max_chunks;
    if (target < bounds.back()) target = bounds.back();
    size_t nl = text.find('\n', target);
    size_t b = (nl == std::string_view::npos) ? text.size() : nl + 1;
    if (b > bounds.back() && b < text.size()) bounds.push_back(b);
  }
  bounds.push_back(text.size());
  return bounds;
}

/// The parallel document parse: per-chunk builders run concurrently,
/// then merge serially in chunk order (see GraphBuilder::Merge for why
/// this reproduces the serial result exactly). On error, sets
/// *error_line to the serial parse's 1-based line number and leaves
/// `builder` in the serial parse's partial state.
Status ParseDocumentChunked(std::string_view text, GraphBuilder* builder,
                            int threads, size_t* error_line) {
  // Don't bother chunking tiny inputs; cap chunks so each holds a
  // meaningful amount of work.
  constexpr size_t kMinChunkBytes = 1024;
  const size_t max_chunks = std::min<size_t>(
      static_cast<size_t>(threads),
      std::max<size_t>(1, text.size() / kMinChunkBytes));
  const std::vector<size_t> bounds = ChunkBoundaries(text, max_chunks);
  const size_t num_chunks = bounds.size() - 1;
  if (num_chunks <= 1) {
    return ParseChunk(text, /*is_final=*/true, builder, error_line);
  }

  std::vector<GraphBuilder> chunk_builders(num_chunks);
  std::vector<Status> statuses(num_chunks);
  std::vector<size_t> line_counts(num_chunks, 0);
  ParallelFor(0, num_chunks, 1, threads, [&](size_t c) {
    std::string_view chunk =
        text.substr(bounds[c], bounds[c + 1] - bounds[c]);
    statuses[c] = ParseChunk(chunk, /*is_final=*/c + 1 == num_chunks,
                             &chunk_builders[c], &line_counts[c]);
  });

  // Earliest malformed chunk wins — the chunks after it never happened
  // as far as the serial semantics are concerned.
  size_t error_chunk = num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    if (!statuses[c].ok()) {
      error_chunk = c;
      break;
    }
  }
  const size_t merge_upto =
      error_chunk == num_chunks ? num_chunks : error_chunk + 1;
  for (size_t c = 0; c < merge_upto; ++c) {
    builder->Merge(chunk_builders[c]);
  }
  if (error_chunk < num_chunks) {
    size_t global_line = line_counts[error_chunk];
    for (size_t c = 0; c < error_chunk; ++c) global_line += line_counts[c];
    *error_line = global_line;
    return statuses[error_chunk];
  }
  return Status::Ok();
}

}  // namespace

Status NTriplesParser::ParseDocument(std::string_view text,
                                     GraphBuilder* builder,
                                     int num_threads) {
  const int threads = ResolveNumThreads(num_threads);
  obs::TraceSpan span("rdf.parse");
  span.Attr("bytes", static_cast<uint64_t>(text.size()));
  size_t error_line = 0;
  Status st = threads <= 1
                  ? ParseChunk(text, /*is_final=*/true, builder, &error_line)
                  : ParseDocumentChunked(text, builder, threads, &error_line);
  if (!st.ok()) {
    return Status::ParseError("line " + std::to_string(error_line) + ": " +
                              st.message());
  }
  return Status::Ok();
}

Status NTriplesParser::ParseFile(const std::string& path,
                                 GraphBuilder* builder, int num_threads) {
  const int threads = ResolveNumThreads(num_threads);
  obs::TraceSpan span("rdf.parse");
  span.Attr("file", path);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  if (threads <= 1) {
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      bool is_triple = false;
      Status st = ParseLine(line, builder, &is_triple);
      if (!st.ok()) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": " + st.message());
      }
    }
    return Status::Ok();
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  const std::string text = std::move(contents).str();
  size_t error_line = 0;
  Status st = ParseDocumentChunked(text, builder, threads, &error_line);
  if (!st.ok()) {
    return Status::ParseError(path + ":" + std::to_string(error_line) +
                              ": " + st.message());
  }
  return Status::Ok();
}

std::string SerializeNTriples(const RdfGraph& graph) {
  std::string out;
  for (const Triple& t : graph.triples()) {
    out += graph.VertexName(t.subject);
    out += ' ';
    out += graph.PropertyName(t.property);
    out += ' ';
    out += graph.VertexName(t.object);
    out += " .\n";
  }
  return out;
}

Status WriteNTriplesFile(const RdfGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << SerializeNTriples(graph);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace mpc::rdf

#include "rdf/ntriples.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mpc::rdf {

namespace {

/// Scans one RDF term starting at s[pos]. On success advances *pos past
/// the term and returns the term's token (including delimiters).
Status ScanTerm(std::string_view s, size_t* pos, std::string_view* term,
                bool allow_literal) {
  size_t i = *pos;
  if (i >= s.size()) return Status::ParseError("unexpected end of line");
  const size_t start = i;
  char c = s[i];
  if (c == '<') {
    // IRI: everything up to the closing '>'.
    size_t end = s.find('>', i + 1);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    *term = s.substr(start, end - start + 1);
    *pos = end + 1;
    return Status::Ok();
  }
  if (c == '_' && i + 1 < s.size() && s[i + 1] == ':') {
    // Blank node label: _:[A-Za-z0-9_.-]+ (pragmatic superset).
    i += 2;
    size_t lbl = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i == lbl) return Status::ParseError("empty blank node label");
    *term = s.substr(start, i - start);
    *pos = i;
    return Status::Ok();
  }
  if (c == '"') {
    if (!allow_literal) {
      return Status::ParseError("literal not allowed in this position");
    }
    // Literal body with backslash escapes.
    ++i;
    while (i < s.size()) {
      if (s[i] == '\\') {
        i += 2;
        continue;
      }
      if (s[i] == '"') break;
      ++i;
    }
    if (i >= s.size()) return Status::ParseError("unterminated literal");
    ++i;  // past the closing quote
    // Optional language tag or datatype suffix.
    if (i < s.size() && s[i] == '@') {
      ++i;
      while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    } else if (i + 1 < s.size() && s[i] == '^' && s[i + 1] == '^') {
      i += 2;
      if (i >= s.size() || s[i] != '<') {
        return Status::ParseError("malformed datatype IRI");
      }
      size_t end = s.find('>', i + 1);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      i = end + 1;
    }
    *term = s.substr(start, i - start);
    *pos = i;
    return Status::Ok();
  }
  return Status::ParseError("unexpected character '" + std::string(1, c) +
                            "'");
}

void SkipSpaces(std::string_view s, size_t* pos) {
  while (*pos < s.size() && (s[*pos] == ' ' || s[*pos] == '\t')) ++(*pos);
}

}  // namespace

Status NTriplesParser::ParseLine(std::string_view line, GraphBuilder* builder,
                                 bool* is_triple) {
  *is_triple = false;
  std::string_view s = StripWhitespace(line);
  if (s.empty() || s[0] == '#') return Status::Ok();

  size_t pos = 0;
  std::string_view subject, property, object;
  MPC_RETURN_IF_ERROR(ScanTerm(s, &pos, &subject, /*allow_literal=*/false));
  SkipSpaces(s, &pos);
  MPC_RETURN_IF_ERROR(ScanTerm(s, &pos, &property, /*allow_literal=*/false));
  if (!property.empty() && property[0] == '_') {
    return Status::ParseError("blank node not allowed as predicate");
  }
  SkipSpaces(s, &pos);
  MPC_RETURN_IF_ERROR(ScanTerm(s, &pos, &object, /*allow_literal=*/true));
  SkipSpaces(s, &pos);
  if (pos >= s.size() || s[pos] != '.') {
    return Status::ParseError("missing terminating '.'");
  }
  ++pos;
  SkipSpaces(s, &pos);
  if (pos != s.size()) {
    return Status::ParseError("trailing characters after '.'");
  }

  builder->Add(subject, property, object);
  *is_triple = true;
  return Status::Ok();
}

Status NTriplesParser::ParseDocument(std::string_view text,
                                     GraphBuilder* builder) {
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, end - start);
    ++line_no;
    bool is_triple = false;
    Status st = ParseLine(line, builder, &is_triple);
    if (!st.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                st.message());
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return Status::Ok();
}

Status NTriplesParser::ParseFile(const std::string& path,
                                 GraphBuilder* builder) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    bool is_triple = false;
    Status st = ParseLine(line, builder, &is_triple);
    if (!st.ok()) {
      return Status::ParseError(path + ":" + std::to_string(line_no) + ": " +
                                st.message());
    }
  }
  return Status::Ok();
}

std::string SerializeNTriples(const RdfGraph& graph) {
  std::string out;
  for (const Triple& t : graph.triples()) {
    out += graph.VertexName(t.subject);
    out += ' ';
    out += graph.PropertyName(t.property);
    out += ' ';
    out += graph.VertexName(t.object);
    out += " .\n";
  }
  return out;
}

Status WriteNTriplesFile(const RdfGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << SerializeNTriples(graph);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace mpc::rdf

#ifndef MPC_RDF_DICTIONARY_H_
#define MPC_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rdf/types.h"

namespace mpc::rdf {

/// Interns RDF term lexical forms into dense 32-bit ids. Two independent
/// dictionaries are used per graph: one for vertices (subjects/objects)
/// and one for properties, matching the id spaces of Definition 3.1.
///
/// The stored lexical form is the canonical N-Triples token, e.g.
/// "<http://example.org/x>", "\"literal\"" or "_:b0", so round-tripping a
/// file through parse + serialize is byte-identical modulo ordering.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: graphs share dictionaries by reference.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Deep copy preserving ids: re-interns every term so the index's
  /// string_view keys point into the copy's own storage (a defaulted
  /// copy would leave them dangling into the source).
  Dictionary Clone() const;

  /// Returns the id of `term`, inserting it if new. Ids are assigned
  /// densely in first-seen order.
  uint32_t Intern(std::string_view term);

  /// Returns the id of `term` or kInvalidVertex when absent.
  uint32_t Lookup(std::string_view term) const;

  /// Returns the lexical form for `id`. `id` must be in range.
  const std::string& Lexical(uint32_t id) const { return terms_[id]; }

  /// Classifies the stored lexical form of `id`.
  TermKind KindOf(uint32_t id) const;

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  /// Approximate heap footprint in bytes (for the offline loading report).
  size_t MemoryUsage() const;

 private:
  // Deque keeps element addresses stable under growth, so the string_view
  // keys in index_ (which point into the stored strings) never dangle.
  std::deque<std::string> terms_;
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace mpc::rdf

#endif  // MPC_RDF_DICTIONARY_H_

#include "rdf/graph.h"

#include <algorithm>
#include <cassert>

namespace mpc::rdf {

RdfGraph RdfGraph::Clone() const {
  RdfGraph copy;
  copy.triples_ = triples_;
  copy.property_offsets_ = property_offsets_;
  copy.vertex_dict_ = vertex_dict_.Clone();
  copy.property_dict_ = property_dict_.Clone();
  return copy;
}

PropertyId RdfGraph::InternProperty(std::string_view term) {
  const size_t before = property_dict_.size();
  PropertyId p = property_dict_.Intern(term);
  if (property_offsets_.empty()) property_offsets_.push_back(0);
  if (property_dict_.size() > before) {
    // New property: no snapshot edges carry it, so its run is empty and
    // starts (and ends) at the end of the frozen edge array.
    property_offsets_.push_back(triples_.size());
  }
  return p;
}

std::vector<PropertyId> RdfGraph::AllProperties() const {
  std::vector<PropertyId> props(num_properties());
  for (size_t i = 0; i < props.size(); ++i) {
    props[i] = static_cast<PropertyId>(i);
  }
  return props;
}

size_t RdfGraph::MemoryUsage() const {
  return triples_.capacity() * sizeof(Triple) +
         property_offsets_.capacity() * sizeof(uint64_t) +
         vertex_dict_.MemoryUsage() + property_dict_.MemoryUsage();
}

void GraphBuilder::Add(std::string_view subject, std::string_view property,
                       std::string_view object) {
  VertexId s = vertex_dict_.Intern(subject);
  PropertyId p = property_dict_.Intern(property);
  VertexId o = vertex_dict_.Intern(object);
  triples_.emplace_back(s, p, o);
}

void GraphBuilder::Merge(const GraphBuilder& other) {
  std::vector<VertexId> vmap(other.vertex_dict_.size());
  for (uint32_t id = 0; id < other.vertex_dict_.size(); ++id) {
    vmap[id] = vertex_dict_.Intern(other.vertex_dict_.Lexical(id));
  }
  std::vector<PropertyId> pmap(other.property_dict_.size());
  for (uint32_t id = 0; id < other.property_dict_.size(); ++id) {
    pmap[id] = property_dict_.Intern(other.property_dict_.Lexical(id));
  }
  triples_.reserve(triples_.size() + other.triples_.size());
  for (const Triple& t : other.triples_) {
    triples_.emplace_back(vmap[t.subject], pmap[t.property], vmap[t.object]);
  }
}

RdfGraph GraphBuilder::Build() {
  std::sort(triples_.begin(), triples_.end());
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());
  triples_.shrink_to_fit();

  RdfGraph graph;
  graph.triples_ = std::move(triples_);
  graph.vertex_dict_ = std::move(vertex_dict_);
  graph.property_dict_ = std::move(property_dict_);
  triples_.clear();
  vertex_dict_ = Dictionary();
  property_dict_ = Dictionary();

  const size_t num_props = graph.property_dict_.size();
  graph.property_offsets_.assign(num_props + 1, 0);
  for (const Triple& t : graph.triples_) {
    assert(t.property < num_props);
    ++graph.property_offsets_[t.property + 1];
  }
  for (size_t p = 0; p < num_props; ++p) {
    graph.property_offsets_[p + 1] += graph.property_offsets_[p];
  }
  return graph;
}

}  // namespace mpc::rdf

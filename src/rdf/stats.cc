#include "rdf/stats.h"

#include <algorithm>

namespace mpc::rdf {

DatasetStats ComputeStats(const std::string& name, const RdfGraph& graph) {
  DatasetStats stats;
  stats.name = name;
  stats.num_entities = graph.num_vertices();
  stats.num_triples = graph.num_edges();
  stats.num_properties = graph.num_properties();
  return stats;
}

std::vector<uint64_t> PropertyHistogram(const RdfGraph& graph) {
  std::vector<uint64_t> freq(graph.num_properties());
  for (size_t p = 0; p < freq.size(); ++p) {
    freq[p] = graph.PropertyFrequency(static_cast<PropertyId>(p));
  }
  std::sort(freq.begin(), freq.end(), std::greater<uint64_t>());
  return freq;
}

double TopPropertyShare(const RdfGraph& graph) {
  if (graph.num_edges() == 0) return 0.0;
  uint64_t max_freq = 0;
  for (size_t p = 0; p < graph.num_properties(); ++p) {
    max_freq =
        std::max(max_freq,
                 static_cast<uint64_t>(
                     graph.PropertyFrequency(static_cast<PropertyId>(p))));
  }
  return static_cast<double>(max_freq) /
         static_cast<double>(graph.num_edges());
}

}  // namespace mpc::rdf

#ifndef MPC_RDF_NTRIPLES_H_
#define MPC_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/graph.h"

namespace mpc::rdf {

/// Streaming N-Triples parser covering the subset all six evaluation
/// datasets use: IRIs (<...>), blank nodes (_:label), and literals with
/// optional language tag or datatype ("..."@en, "..."^^<...>). Comments
/// (#) and blank lines are skipped. Escapes inside literals are kept in
/// their escaped lexical form — partitioning never needs the decoded
/// value, and this keeps round-trips byte-exact.
class NTriplesParser {
 public:
  /// Parses one line. Returns OK and sets *is_triple=false for blank or
  /// comment lines. On success with a triple, adds it to `builder`.
  static Status ParseLine(std::string_view line, GraphBuilder* builder,
                          bool* is_triple);

  /// Parses a whole document (newline-separated). Stops at the first
  /// malformed line and reports its 1-based line number.
  ///
  /// With num_threads > 1 (0 = hardware_concurrency) the text is split
  /// into line-aligned chunks parsed by independent per-chunk builders
  /// whose dictionaries are then merged in chunk order — the resulting
  /// builder state (ids, triples, reported error) is bit-identical to
  /// the serial parse at any thread count.
  static Status ParseDocument(std::string_view text, GraphBuilder* builder,
                              int num_threads = 1);

  /// Reads and parses a file from disk. num_threads follows the
  /// ParseDocument convention; the serial path streams line by line,
  /// the parallel path reads the file into memory first.
  static Status ParseFile(const std::string& path, GraphBuilder* builder,
                          int num_threads = 1);
};

/// Serializes a graph back to N-Triples text, one triple per line, in the
/// graph's canonical (property, subject, object) order.
std::string SerializeNTriples(const RdfGraph& graph);

/// Writes SerializeNTriples(graph) to `path`.
Status WriteNTriplesFile(const RdfGraph& graph, const std::string& path);

}  // namespace mpc::rdf

#endif  // MPC_RDF_NTRIPLES_H_

#ifndef MPC_RDF_STATS_H_
#define MPC_RDF_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/graph.h"

namespace mpc::rdf {

/// The dataset statistics row the paper prints in Table I.
struct DatasetStats {
  std::string name;
  uint64_t num_entities = 0;
  uint64_t num_triples = 0;
  uint64_t num_properties = 0;
};

/// Computes Table I statistics for `graph`.
DatasetStats ComputeStats(const std::string& name, const RdfGraph& graph);

/// Property frequency histogram: freq[p] = number of edges labeled p,
/// sorted descending. Useful for inspecting long-tail distributions.
std::vector<uint64_t> PropertyHistogram(const RdfGraph& graph);

/// Skew of the property distribution: fraction of edges carried by the
/// single most frequent property.
double TopPropertyShare(const RdfGraph& graph);

}  // namespace mpc::rdf

#endif  // MPC_RDF_STATS_H_

#ifndef MPC_RDF_GRAPH_H_
#define MPC_RDF_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/types.h"

namespace mpc::rdf {

/// An immutable, dictionary-encoded RDF graph G = (V, E, L, f) per
/// Definition 3.1. The edge array is sorted by (property, subject, object)
/// so that every property-induced subgraph G[{p}] (Definition 3.2) is one
/// contiguous run — the access pattern Algorithm 1's internal-property
/// selection iterates over.
///
/// Build instances with GraphBuilder or the N-Triples parser.
class RdfGraph {
 public:
  RdfGraph() = default;
  RdfGraph(RdfGraph&&) = default;
  RdfGraph& operator=(RdfGraph&&) = default;
  RdfGraph(const RdfGraph&) = delete;
  RdfGraph& operator=(const RdfGraph&) = delete;

  /// Explicit deep copy (the implicit copy is deleted so sharing stays
  /// deliberate; dictionaries are rebuilt with identical ids).
  RdfGraph Clone() const;

  /// |V|: number of distinct subjects/objects ("entities" in Table I).
  size_t num_vertices() const { return vertex_dict_.size(); }

  /// |E|: number of distinct triples.
  size_t num_edges() const { return triples_.size(); }

  /// |L|: number of distinct properties.
  size_t num_properties() const { return property_dict_.size(); }

  /// All triples, sorted by (property, subject, object).
  const std::vector<Triple>& triples() const { return triples_; }

  /// Edges of the property-induced subgraph G[{p}].
  std::span<const Triple> EdgesWithProperty(PropertyId p) const {
    return std::span<const Triple>(triples_.data() + property_offsets_[p],
                                   property_offsets_[p + 1] -
                                       property_offsets_[p]);
  }

  /// Number of edges labeled `p`.
  size_t PropertyFrequency(PropertyId p) const {
    return property_offsets_[p + 1] - property_offsets_[p];
  }

  /// All property ids, 0..|L|-1.
  std::vector<PropertyId> AllProperties() const;

  const Dictionary& vertex_dict() const { return vertex_dict_; }
  const Dictionary& property_dict() const { return property_dict_; }

  /// Incremental-ingest support (dynamic::IncrementalMaintainer): interns
  /// a possibly-new vertex term, growing the dictionary. The frozen triple
  /// array is untouched — a grown vertex simply extends the id space, so
  /// num_vertices() grows while triples() stays the original snapshot.
  VertexId InternVertex(std::string_view term) {
    return vertex_dict_.Intern(term);
  }

  /// Interns a possibly-new property term. A grown property gets an empty
  /// edge run: property_offsets_ is extended so EdgesWithProperty() and
  /// PropertyFrequency() stay valid (and return empty/0) for it.
  PropertyId InternProperty(std::string_view term);

  /// Lexical form helpers.
  const std::string& VertexName(VertexId v) const {
    return vertex_dict_.Lexical(v);
  }
  const std::string& PropertyName(PropertyId p) const {
    return property_dict_.Lexical(p);
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const;

 private:
  friend class GraphBuilder;

  std::vector<Triple> triples_;
  /// CSR offsets over the sorted edge array: edges of property p live in
  /// [property_offsets_[p], property_offsets_[p+1]).
  std::vector<uint64_t> property_offsets_;
  Dictionary vertex_dict_;
  Dictionary property_dict_;
};

/// Accumulates triples (by lexical form or pre-interned ids) and produces
/// an RdfGraph. Duplicate triples are removed at Build(), since an RDF
/// graph is a set of triples.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Interns the three terms and records the triple.
  void Add(std::string_view subject, std::string_view property,
           std::string_view object);

  /// Records a triple of already-interned ids (from this builder's
  /// dictionaries). Ids must have come from InternVertex/InternProperty.
  void Add(VertexId s, PropertyId p, VertexId o) {
    triples_.emplace_back(s, p, o);
  }

  VertexId InternVertex(std::string_view term) {
    return vertex_dict_.Intern(term);
  }
  PropertyId InternProperty(std::string_view term) {
    return property_dict_.Intern(term);
  }

  size_t num_triples() const { return triples_.size(); }

  /// Appends another builder's triples, re-interning its terms into this
  /// builder's dictionaries. A builder assigns ids densely in first-seen
  /// order, so re-interning `other`'s terms in id order replays exactly
  /// the Intern() sequence a serial pass over other's input would have
  /// issued — merging per-chunk builders in chunk order therefore
  /// produces the same dictionaries and triple ids as one builder fed
  /// the concatenated input. This is what makes the parallel N-Triples
  /// parse bit-identical to the serial one.
  void Merge(const GraphBuilder& other);

  /// Sorts, deduplicates and freezes into an immutable graph. The builder
  /// is left empty.
  RdfGraph Build();

 private:
  std::vector<Triple> triples_;
  Dictionary vertex_dict_;
  Dictionary property_dict_;
};

}  // namespace mpc::rdf

#endif  // MPC_RDF_GRAPH_H_

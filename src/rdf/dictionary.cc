#include "rdf/dictionary.h"

namespace mpc::rdf {

Dictionary Dictionary::Clone() const {
  Dictionary copy;
  // Re-interning in id order reproduces the dense first-seen ids.
  for (const std::string& term : terms_) copy.Intern(term);
  return copy;
}

uint32_t Dictionary::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  // The key view must point into the stored string, not the caller's
  // buffer, so the map stays valid after the caller's string dies.
  index_.emplace(std::string_view(terms_.back()), id);
  return id;
}

uint32_t Dictionary::Lookup(std::string_view term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidVertex : it->second;
}

TermKind Dictionary::KindOf(uint32_t id) const {
  const std::string& t = terms_[id];
  if (!t.empty() && t[0] == '"') return TermKind::kLiteral;
  if (t.size() >= 2 && t[0] == '_' && t[1] == ':') return TermKind::kBlank;
  return TermKind::kIri;
}

size_t Dictionary::MemoryUsage() const {
  size_t bytes = terms_.size() * sizeof(std::string);
  for (const auto& t : terms_) bytes += t.capacity();
  // unordered_map node overhead estimate: key view + value + bucket ptr.
  bytes += index_.size() * (sizeof(std::string_view) + sizeof(uint32_t) + 16);
  return bytes;
}

}  // namespace mpc::rdf

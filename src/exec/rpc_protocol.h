#ifndef MPC_EXEC_RPC_PROTOCOL_H_
#define MPC_EXEC_RPC_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "exec/cluster.h"
#include "net/frame.h"
#include "obs/trace.h"
#include "store/bgp_matcher.h"

namespace mpc::exec {

/// Site RPC message types, carried as frame types in the versioned
/// net::Frame envelope (magic + length + FNV-1a checksum). One request
/// frame in, one reply frame out; the coordinator serializes traffic per
/// site, so there is no interleaving to disambiguate.
inline constexpr uint16_t kMsgHello = net::kFirstAppFrameType + 0;
inline constexpr uint16_t kMsgEvalRequest = net::kFirstAppFrameType + 1;
inline constexpr uint16_t kMsgEvalReply = net::kFirstAppFrameType + 2;
inline constexpr uint16_t kMsgReload = net::kFirstAppFrameType + 3;
inline constexpr uint16_t kMsgReloadDone = net::kFirstAppFrameType + 4;
inline constexpr uint16_t kMsgError = net::kFirstAppFrameType + 5;

/// Worker self-description, sent once per accepted connection (and after
/// a reload). The coordinator checks site/k, uses generation to decide
/// whether the worker must be re-synced (a restarted worker comes back
/// with the generation it loaded from disk, which may be stale), and
/// records the load/memory figures for loading_millis()/MemoryUsage().
struct HelloMsg {
  uint32_t site = 0;
  uint32_t k = 0;
  uint64_t generation = 0;
  uint64_t pid = 0;
  double load_millis = 0.0;
  uint64_t memory_bytes = 0;
  /// This site's property-presence row; must equal the coordinator's
  /// (both derive from the same partition dir).
  std::vector<uint8_t> property_present;
};

/// One site-subquery evaluation order: the resolved sub-BGP plus the
/// serialized Bloom filters. Patterns ship resolved (numeric ids) —
/// coordinator and workers parse the same graph file, so they share the
/// dictionary encoding.
struct EvalRequestMsg {
  store::ResolvedQuery resolved;  // patterns + num_vars only
  std::vector<size_t> pattern_indices;
  uint64_t max_rows = UINT64_MAX;
  struct Filter {
    uint32_t var = 0;
    std::string bits;  // BloomFilter::ToBytes
  };
  std::vector<Filter> filters;
  /// Distributed trace context (protocol v2). trace_id == 0 means the
  /// coordinator is not tracing: the worker records nothing and ships
  /// no spans back.
  obs::TraceContext trace;
};

/// Upper bound on spans one EvalReply may carry. The worker keeps the
/// earliest spans when it recorded more (the root and coarse phases —
/// the ones a timeline needs); the decoder rejects a count past the cap
/// before allocating.
inline constexpr uint32_t kMaxSpansPerReply = 512;
/// Per-span attribute cap, mirroring the span cap's allocate-safety.
inline constexpr uint32_t kMaxAttrsPerSpan = 64;

struct ReloadMsg {
  uint64_t generation = 0;
  std::string graph_path;
  std::string partition_dir;
};

std::string EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(std::string_view payload);

/// Encodes straight from the executor's request (no intermediate copy).
/// `trace` is the coordinator-side context the worker's spans adopt; an
/// empty context (trace_id 0) disables worker-side recording.
std::string EncodeEvalRequest(const store::ResolvedQuery& resolved,
                              const SiteEvalRequest& request,
                              const obs::TraceContext& trace);
inline std::string EncodeEvalRequest(const store::ResolvedQuery& resolved,
                                     const SiteEvalRequest& request) {
  return EncodeEvalRequest(resolved, request, obs::TraceContext());
}
Result<EvalRequestMsg> DecodeEvalRequest(std::string_view payload);

/// `spans` are the worker's recorded TraceEvents for this request
/// (span/parent ids and tids are worker-local; the coordinator remaps
/// them on ingest). At most kMaxSpansPerReply ship — earliest first.
std::string EncodeEvalReply(const SiteEvalReply& reply,
                            const std::vector<obs::TraceEvent>& spans);
inline std::string EncodeEvalReply(const SiteEvalReply& reply) {
  return EncodeEvalReply(reply, {});
}
/// Fills table/bloom_dropped/eval_millis; transport fields stay zero.
/// When `spans` is non-null the carried span list is decoded into it
/// (cleared first); when null the span bytes are validated and skipped.
Status DecodeEvalReply(std::string_view payload, SiteEvalReply* reply,
                       std::vector<obs::TraceEvent>* spans = nullptr);

std::string EncodeReload(const ReloadMsg& msg);
Result<ReloadMsg> DecodeReload(std::string_view payload);

/// A Status carried across the wire (worker-side failures).
std::string EncodeError(const Status& status);
/// Returns the carried (non-ok) status; ParseError if the payload is
/// not a well-formed error message.
Status DecodeError(std::string_view payload);

}  // namespace mpc::exec

#endif  // MPC_EXEC_RPC_PROTOCOL_H_

#ifndef MPC_EXEC_QUERY_API_H_
#define MPC_EXEC_QUERY_API_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/status.h"
#include "exec/query_classifier.h"
#include "sparql/query_graph.h"
#include "store/bgp_matcher.h"

namespace mpc::exec {

/// Per-query timing and provenance, matching the stage breakdown the
/// paper reports in Tables IV-V: QDT (query decomposition time), LET
/// (local evaluation time), JT (join time). Network components are
/// simulated (NetworkModel) and reported separately but included in
/// total_millis.
struct ExecutionStats {
  IeqClass cls = IeqClass::kNonIeq;
  bool independent = false;
  size_t num_subqueries = 0;
  /// QDT: classification + decomposition + dispatch.
  double decomposition_millis = 0.0;
  /// LET: per subquery, the slowest site (sites evaluate in parallel);
  /// subqueries of one query run back-to-back at each site.
  double local_eval_millis = 0.0;
  /// JT: coordinator-side hash joins (0 for IEQs).
  double join_millis = 0.0;
  /// Simulated shipping of subquery/result tables to the coordinator.
  double network_millis = 0.0;
  double total_millis = 0.0;
  size_t num_results = 0;
  size_t shipped_bytes = 0;
  /// Site-subquery evaluations actually performed vs skipped by the
  /// property-presence localization.
  size_t sites_evaluated = 0;
  size_t sites_pruned = 0;
  /// Rows dropped at sites by the Bloom-join reduction (0 unless the
  /// bloom_reduction option is on and the query decomposed).
  size_t bloom_dropped_rows = 0;
  /// Total rows produced by local evaluation across sites and subqueries
  /// (the "local partial matches" count used in the gStoreD experiment).
  size_t local_rows = 0;

  // --- Fault handling (all zero / true on a fault-free run). The
  // invariant sites_evaluated + sites_pruned + sites_failed ==
  // k * num_subqueries holds on every path. ---

  /// Site-subquery slots that produced no table because the site was
  /// down, kept timing out, or exhausted its transient retries.
  size_t sites_failed = 0;
  /// Simulated retry attempts across all sites and subqueries.
  size_t retries = 0;
  /// Result rows that bind at least one vertex owned by a failed site:
  /// matches served from 1-hop crossing-edge replicas on live sites —
  /// the failover data-path at work.
  size_t failover_hits = 0;
  /// False iff some site-subquery contribution was lost (best-effort
  /// runs only; kFail returns an error instead).
  bool complete = true;
  /// Vertices owned by failed sites, and how many of them a live site
  /// still replicates (Cluster::ComputeReplicaCoverage).
  size_t failed_site_vertices = 0;
  size_t replicated_failed_vertices = 0;
  /// Lower-bound proxy on result completeness: the fraction of the data
  /// that is still reachable at some live site (1.0 when complete). For
  /// vertex-disjoint partitionings this is driven by the replication
  /// analysis; VP has no replicas, so every lost triple is gone.
  double completeness_bound = 1.0;
  /// Total simulated waiting on faults across sites (backoff + timeouts
  /// + failure detection). Per-site waits are already charged into
  /// local_eval_millis via the slowest-site rule; this aggregate is
  /// observability only and is NOT added to total_millis again.
  double fault_wait_millis = 0.0;

  // --- Serving-layer fields (zero / false when a query is executed
  // directly against an executor rather than through a QueryService). ---

  /// Wall-clock time the query spent in the admission queue.
  double queue_wait_millis = 0.0;
  /// The classification/decomposition was reused from the plan cache.
  bool plan_cache_hit = false;
  /// The whole answer was served from the result cache (bindings are a
  /// copy of the cached table; the remaining timing fields describe the
  /// execution that populated the cache).
  bool result_cache_hit = false;
  /// Distributed-trace id this execution's spans were recorded under
  /// (0 when tracing is disabled). Keyed by the slow-query log to
  /// retain exactly the offending query's merged trace.
  uint64_t trace_id = 0;
};

/// What to do when a site stays down after retries.
enum class PartialResultPolicy {
  /// Propagate Unavailable/DeadlineExceeded: correctness over coverage.
  kFail,
  /// Answer from the surviving sites (plus whatever 1-hop replicas
  /// recover), reporting complete=false and the completeness bound.
  kBestEffort,
};

/// Which runtime answers the query.
enum class ExecStrategy {
  /// The partitioning-aware default: DistributedExecutor (IEQ shortcut
  /// for vertex-disjoint partitionings, cloud-style plan for VP).
  kAuto,
  /// Explicitly the DistributedExecutor (same as kAuto today).
  kDistributed,
  /// The partial-evaluation-and-assembly runtime (GStoredExecutor);
  /// vertex-disjoint partitionings only. Routed by QueryService; the
  /// DistributedExecutor rejects it.
  kGstored,
};

const char* ExecStrategyName(ExecStrategy strategy);

/// Per-query execution options carried by a QueryRequest. Executor-wide
/// policy (fault model, network, thread budget) stays in ExecutorOptions;
/// these are the knobs that legitimately vary query-to-query.
struct ExecOptions {
  ExecStrategy strategy = ExecStrategy::kAuto;
  /// Wall-clock budget in ms from submission, 0 = none. Enforced by the
  /// QueryService admission queue (a query whose deadline expires while
  /// queued is failed with DeadlineExceeded without executing); direct
  /// executor calls treat it as advisory metadata.
  double deadline_ms = 0.0;
  /// Per-query override of ExecutorOptions::partial_results; nullopt
  /// inherits the executor default.
  std::optional<PartialResultPolicy> partial_results;
  /// Free-form tag attached to the exec.query trace span ("tenant-7",
  /// "replay:LQ2", ...) so per-caller latency can be sliced out of one
  /// trace.
  std::string trace_tag;
};

/// One query, parsed or text, plus its options — the single argument of
/// the redesigned execution entry point. The original text is carried
/// even alongside the parsed form so error messages (and the serving
/// layer's cache keys and logs) can always show the offending query.
struct QueryRequest {
  /// Parsed form; preferred when present (text is not re-parsed).
  std::optional<sparql::QueryGraph> query;
  /// SPARQL text; parsed on demand when `query` is absent.
  std::string text;
  ExecOptions options;

  static QueryRequest FromText(std::string text, ExecOptions options = {}) {
    QueryRequest request;
    request.text = std::move(text);
    request.options = std::move(options);
    return request;
  }

  static QueryRequest FromQuery(sparql::QueryGraph query,
                                ExecOptions options = {}) {
    QueryRequest request;
    request.query = std::move(query);
    request.options = std::move(options);
    return request;
  }
};

/// What every execution path returns: the bindings, the per-query stats,
/// and the generation of the serving state that answered (0 for a static
/// cluster; the IncrementalMaintainer's generation counter for live
/// ones — the result-cache invalidation token).
struct QueryResponse {
  store::BindingTable bindings;
  ExecutionStats stats;
  uint64_t generation = 0;
};

/// Resolves a request to its parsed query: returns the parsed form when
/// present, otherwise parses `text`. Parse failures come back as
/// ParseError with the offending query text appended (truncated), so a
/// failed query in a thousand-query replay log can be found again.
Result<sparql::QueryGraph> ResolveRequestQuery(const QueryRequest& request);

/// Appends the (truncated) query text to a status message; used wherever
/// a query-scoped error would otherwise lose track of which query failed.
Status AttachQueryText(const Status& status, const std::string& text);

}  // namespace mpc::exec

#endif  // MPC_EXEC_QUERY_API_H_

#ifndef MPC_EXEC_JOIN_H_
#define MPC_EXEC_JOIN_H_

#include <vector>

#include "store/bgp_matcher.h"

namespace mpc::exec {

/// Hash join of two binding tables on their shared variables. With no
/// shared variables this degenerates to a cross product (needed when a
/// subquery binds no variables, e.g. an all-constant pattern acting as an
/// existence filter). Output columns: left's columns followed by right's
/// non-shared columns.
store::BindingTable HashJoin(const store::BindingTable& left,
                             const store::BindingTable& right);

/// Joins all tables left-deep, at each step preferring a next table that
/// shares a variable with the accumulated result (avoiding premature
/// cross products) and among those the smallest one. This is the
/// coordinator-side inter-partition join of Section V-B2.
store::BindingTable JoinAll(std::vector<store::BindingTable> tables);

}  // namespace mpc::exec

#endif  // MPC_EXEC_JOIN_H_

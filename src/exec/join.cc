#include "exec/join.h"

#include <algorithm>
#include <unordered_map>

namespace mpc::exec {

using store::BindingTable;

BindingTable HashJoin(const BindingTable& left, const BindingTable& right) {
  // Shared variables and their column positions on both sides.
  std::vector<std::pair<size_t, size_t>> shared;  // (left col, right col)
  std::vector<size_t> right_extra;                // right cols to append
  for (size_t rc = 0; rc < right.var_ids.size(); ++rc) {
    size_t lc = left.ColumnOf(right.var_ids[rc]);
    if (lc == SIZE_MAX) {
      right_extra.push_back(rc);
    } else {
      shared.emplace_back(lc, rc);
    }
  }

  BindingTable out;
  out.var_ids = left.var_ids;
  for (size_t rc : right_extra) out.var_ids.push_back(right.var_ids[rc]);

  if (left.rows.empty() || right.rows.empty()) return out;

  // Build side: hash the right table by its shared-variable key.
  std::unordered_map<uint64_t, std::vector<size_t>> build;
  auto key_of = [&](const std::vector<uint32_t>& row,
                    bool is_right) -> uint64_t {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& [lc, rc] : shared) {
      uint32_t v = row[is_right ? rc : lc];
      h ^= v;
      h *= 0x100000001b3ULL;
    }
    return h;
  };
  build.reserve(right.rows.size());
  for (size_t i = 0; i < right.rows.size(); ++i) {
    build[key_of(right.rows[i], true)].push_back(i);
  }

  for (const std::vector<uint32_t>& lrow : left.rows) {
    auto it = build.find(key_of(lrow, false));
    if (it == build.end()) continue;
    for (size_t ri : it->second) {
      const std::vector<uint32_t>& rrow = right.rows[ri];
      // Verify the key columns (hash collisions).
      bool match = true;
      for (const auto& [lc, rc] : shared) {
        if (lrow[lc] != rrow[rc]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<uint32_t> out_row = lrow;
      for (size_t rc : right_extra) out_row.push_back(rrow[rc]);
      out.rows.push_back(std::move(out_row));
    }
  }
  return out;
}

BindingTable JoinAll(std::vector<BindingTable> tables) {
  if (tables.empty()) return BindingTable{};
  // Start from the smallest table.
  size_t start = 0;
  for (size_t i = 1; i < tables.size(); ++i) {
    if (tables[i].num_rows() < tables[start].num_rows()) start = i;
  }
  BindingTable acc = std::move(tables[start]);
  tables.erase(tables.begin() + start);

  while (!tables.empty()) {
    // Prefer tables sharing a variable with acc; among them the smallest.
    size_t best = SIZE_MAX;
    bool best_shared = false;
    for (size_t i = 0; i < tables.size(); ++i) {
      bool shares = false;
      for (uint32_t v : tables[i].var_ids) {
        if (acc.ColumnOf(v) != SIZE_MAX) {
          shares = true;
          break;
        }
      }
      if (best == SIZE_MAX ||
          std::make_tuple(!shares, tables[i].num_rows()) <
              std::make_tuple(!best_shared, tables[best].num_rows())) {
        best = i;
        best_shared = shares;
      }
    }
    acc = HashJoin(acc, tables[best]);
    tables.erase(tables.begin() + best);
  }
  return acc;
}

}  // namespace mpc::exec

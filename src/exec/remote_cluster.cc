#include "exec/remote_cluster.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "exec/rpc_protocol.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpc::exec {

namespace {

/// Sleeps a backoff interval (wall-clock; these are real waits, unlike
/// the simulator's virtual ones).
void SleepMillis(double ms) {
  if (ms <= 0) return;
  ::usleep(static_cast<useconds_t>(ms * 1000.0));
}

std::string SocketPathFor(const std::string& dir, uint32_t site) {
  return dir + "/site_" + std::to_string(site) + ".sock";
}

/// Re-bases worker-clock span timestamps onto the coordinator's trace
/// clock and ingests them into the local trace. Each process's trace
/// clock has an arbitrary epoch, so the worker's root span (earliest
/// start in the batch) is anchored at the request's send time plus half
/// the network slack (round trip minus worker compute) — the symmetric-
/// delay assumption — which nests site tracks inside the attempt span.
void IngestRemoteSpans(std::vector<obs::TraceEvent> spans, uint64_t trace_id,
                       uint64_t parent_span_id, double send_us, double rtt_us,
                       uint32_t pid) {
  double root_start = spans[0].start_us;
  double root_dur = spans[0].dur_us;
  for (const obs::TraceEvent& e : spans) {
    if (e.start_us < root_start) {
      root_start = e.start_us;
      root_dur = e.dur_us;
    }
  }
  const double slack_us = std::max(0.0, rtt_us - root_dur);
  const double delta_us = send_us + slack_us / 2.0 - root_start;
  obs::RecordRemoteSpans(std::move(spans), trace_id, parent_span_id, delta_us,
                         pid);
}

}  // namespace

Result<std::unique_ptr<RemoteCluster>> RemoteCluster::Start(
    partition::Partitioning partitioning, Options options) {
  std::unique_ptr<RemoteCluster> cluster(new RemoteCluster());
  cluster->partitioning_ = std::move(partitioning);
  cluster->options_ = std::move(options);
  cluster->partition_dir_ = cluster->options_.partition_dir;
  cluster->generation_ = cluster->options_.generation;
  cluster->RecomputePresence();

  const uint32_t k = cluster->k();
  std::vector<net::WorkerSpec> specs;
  specs.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    net::WorkerSpec spec;
    spec.socket_path = SocketPathFor(cluster->options_.socket_dir, i);
    spec.argv = {cluster->options_.worker_binary,
                 "site",
                 cluster->options_.graph_path,
                 cluster->options_.partition_dir,
                 "--site=" + std::to_string(i),
                 "--socket=" + spec.socket_path,
                 "--generation=" + std::to_string(cluster->generation_),
                 "--threads=" +
                     std::to_string(cluster->options_.worker_threads),
                 "--store=" + (cluster->options_.store_kind.empty()
                                   ? std::string("memory")
                                   : cluster->options_.store_kind)};
    if (i == cluster->options_.kill_site &&
        cluster->options_.kill_after_queries > 0) {
      // chaos_argv, not argv: the supervisor drops it on respawn, so the
      // injected crash fires once and the replacement worker is healthy.
      spec.chaos_argv.push_back(
          "--kill-after-queries=" +
          std::to_string(cluster->options_.kill_after_queries));
    }
    specs.push_back(std::move(spec));
  }
  cluster->supervisor_ = std::make_unique<net::SiteSupervisor>(
      std::move(specs), cluster->options_.supervisor);
  cluster->sites_.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    cluster->sites_.push_back(std::make_unique<SiteState>());
  }
  MPC_RETURN_IF_ERROR(cluster->supervisor_->StartAll());

  // Handshake with every worker up front: a fleet that cannot even say
  // Hello is a deployment error, not a runtime fault to tolerate.
  double max_load = 0.0;
  for (uint32_t i = 0; i < k; ++i) {
    SiteState* state = cluster->sites_[i].get();
    std::lock_guard<std::mutex> lock(state->mu);
    Status st = cluster->EnsureConnectedLocked(i, state);
    if (!st.ok()) {
      cluster->supervisor_->StopAll();
      return st;
    }
    max_load = std::max(max_load, state->load_millis);
  }
  cluster->loading_millis_ = max_load;
  return cluster;
}

RemoteCluster::~RemoteCluster() {
  // Drop data connections before the supervisor signals the workers so
  // their accept loops are idle during the drain.
  for (auto& state : sites_) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->conn.Close();
  }
  if (supervisor_ != nullptr) supervisor_->StopAll();
}

uint64_t RemoteCluster::generation() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return generation_;
}

std::string RemoteCluster::ConnectPath(uint32_t i) const {
  if (i < options_.connect_path_override.size() &&
      !options_.connect_path_override[i].empty()) {
    return options_.connect_path_override[i];
  }
  return SocketPathFor(options_.socket_dir, i);
}

void RemoteCluster::RecomputePresence() {
  const uint32_t k = partitioning_.k();
  num_properties_ = partitioning_.crossing_property_mask().size();
  property_present_.assign(static_cast<size_t>(k) * num_properties_, 0);
  for (uint32_t i = 0; i < k; ++i) {
    const partition::Partition& p = partitioning_.partition(i);
    for (const rdf::Triple& t : p.internal_edges) {
      property_present_[i * num_properties_ + t.property] = 1;
    }
    for (const rdf::Triple& t : p.crossing_edges) {
      property_present_[i * num_properties_ + t.property] = 1;
    }
  }
}

Status RemoteCluster::AcceptHello(uint32_t i, const std::string& payload,
                                  SiteState* state) const {
  Result<HelloMsg> hello = DecodeHello(payload);
  if (!hello.ok()) return hello.status();
  if (hello->site != i || hello->k != k()) {
    return Status::Internal(
        "worker handshake mismatch: announced site " +
        std::to_string(hello->site) + "/" + std::to_string(hello->k) +
        ", expected " + std::to_string(i) + "/" + std::to_string(k()));
  }
  // The worker derives its presence row from the same partition files;
  // disagreement means it loaded different data than the coordinator
  // believes it serves — refuse before wrong answers become possible.
  const uint8_t* row = property_present_.data() + i * num_properties_;
  if (hello->property_present.size() != num_properties_ ||
      !std::equal(hello->property_present.begin(),
                  hello->property_present.end(), row)) {
    return Status::Internal("worker " + std::to_string(i) +
                            " property-presence row disagrees with the "
                            "coordinator's partitioning");
  }
  state->hello_generation = hello->generation;
  state->memory_bytes = hello->memory_bytes;
  state->load_millis = hello->load_millis;
  state->worker_pid = hello->pid;
  return Status::Ok();
}

Status RemoteCluster::EnsureConnectedLocked(uint32_t i,
                                            SiteState* state) const {
  if (state->conn.valid()) return Status::Ok();
  // The supervisor gates the connect: it waits out a pending
  // backoff-scheduled respawn and reports Unavailable once the restart
  // budget is spent.
  const std::string path = ConnectPath(i);
  Result<net::Socket> conn = [&]() -> Result<net::Socket> {
    if (path == SocketPathFor(options_.socket_dir, i)) {
      return supervisor_->Connect(i);
    }
    // Chaos-proxy interposition: the supervisor still vouches for the
    // process, but bytes flow through the proxy.
    MPC_RETURN_IF_ERROR(
        supervisor_->WaitUntilUp(i, options_.supervisor.spawn_wait_ms));
    return net::Socket::Connect(path);
  }();
  if (!conn.ok()) return conn.status();
  state->conn = std::move(*conn);

  // The worker speaks first: one Hello per accepted connection.
  Result<net::Frame> frame =
      net::ReadFrame(state->conn, options_.handshake_timeout_ms);
  if (!frame.ok() || frame->type != kMsgHello) {
    state->conn.Close();
    if (!frame.ok()) return frame.status();
    return Status::ParseError("expected Hello frame, got type " +
                              std::to_string(frame->type));
  }
  Status st = AcceptHello(i, frame->payload, state);
  if (!st.ok()) {
    state->conn.Close();
    return st;
  }

  // A restarted worker loads whatever generation its argv named; if the
  // partitioning moved on since (PushReload it missed while dead),
  // replay the reload before letting any query through.
  uint64_t want_generation;
  std::string graph_path = options_.graph_path;
  std::string partition_dir;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    want_generation = generation_;
    partition_dir = partition_dir_;
  }
  if (state->hello_generation != want_generation) {
    ReloadMsg reload;
    reload.generation = want_generation;
    reload.graph_path = graph_path;
    reload.partition_dir = partition_dir;
    std::string reply_payload;
    bool fatal = false;
    st = RoundTripLocked(state, kMsgReload, EncodeReload(reload),
                         options_.handshake_timeout_ms, kMsgReloadDone,
                         &reply_payload, &fatal);
    if (st.ok()) st = AcceptHello(i, reply_payload, state);
    if (!st.ok()) {
      state->conn.Close();
      return st;
    }
  }
  return Status::Ok();
}

Status RemoteCluster::RoundTripLocked(SiteState* state, uint16_t send_type,
                                      const std::string& payload,
                                      double timeout_ms, uint16_t want_type,
                                      std::string* reply_payload,
                                      bool* fatal) const {
  *fatal = false;
  Status st = net::WriteFrame(state->conn, send_type, payload);
  if (!st.ok()) {
    state->conn.Close();
    return st;
  }
  Result<net::Frame> frame = net::ReadFrame(state->conn, timeout_ms);
  if (!frame.ok()) {
    // Timed out, torn, or gone: the stream may carry a stale reply now,
    // so the connection cannot be reused either way.
    state->conn.Close();
    return frame.status();
  }
  if (frame->type == kMsgError) {
    // The worker answered: transport is fine, the request was refused.
    *fatal = true;
    Status carried = DecodeError(frame->payload);
    return carried.ok()
               ? Status::ParseError("malformed error frame from worker")
               : carried;
  }
  if (frame->type != want_type) {
    state->conn.Close();
    return Status::ParseError("expected frame type " +
                              std::to_string(want_type) + ", got " +
                              std::to_string(frame->type));
  }
  *reply_payload = std::move(frame->payload);
  return Status::Ok();
}

Status RemoteCluster::EvaluateOnSite(uint32_t site,
                                     const store::ResolvedQuery& resolved,
                                     const SiteEvalRequest& request,
                                     const SiteCallPolicy& policy,
                                     SiteEvalReply* reply) const {
  SiteState* state = sites_[site].get();
  std::lock_guard<std::mutex> lock(state->mu);
  const double timeout_ms =
      policy.timeout_ms > 0 ? policy.timeout_ms : options_.default_timeout_ms;
  Status last = Status::Unavailable("site " + std::to_string(site) +
                                    ": no attempt made");
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    if (attempt > 0) {
      // Real exponential backoff, charged to the reply's wait clock so
      // coordinator stats reflect wall time actually spent waiting.
      const double backoff =
          policy.backoff_ms * static_cast<double>(uint64_t{1} << (attempt - 1));
      SleepMillis(backoff);
      reply->wait_millis += backoff;
      ++reply->retries;
    }
    obs::TraceSpan span("exec.rpc.attempt");
    span.Attr("site", site).Attr("attempt", attempt);
    // The attempt span is open, so the captured context parents the
    // worker's spans to THIS attempt — which is why the request is
    // encoded inside the loop: each retry re-parents. With tracing off
    // the context is empty and the worker records nothing.
    const obs::TraceContext trace = obs::CurrentTraceContext();
    const uint64_t attempt_span_id = trace.parent_span_id;
    const std::string payload = EncodeEvalRequest(resolved, request, trace);
    Timer attempt_timer;
    Status st = EnsureConnectedLocked(site, state);
    if (st.ok()) {
      std::string reply_payload;
      bool fatal = false;
      const double send_us = obs::TraceNowMicros();
      Timer rtt_timer;
      st = RoundTripLocked(state, kMsgEvalRequest, payload, timeout_ms,
                           kMsgEvalReply, &reply_payload, &fatal);
      const double rtt_ms = rtt_timer.ElapsedMillis();
      if (st.ok()) {
        std::vector<obs::TraceEvent> remote_spans;
        st = DecodeEvalReply(reply_payload, reply,
                             trace.trace_id != 0 ? &remote_spans : nullptr);
        if (st.ok()) {
          obs::MetricsRegistry::Default()
              .HistogramRef("exec.rpc.rtt_ms", obs::DefaultLatencyBoundsMs())
              .Observe(rtt_ms);
          span.Attr("rows", static_cast<uint64_t>(reply->table.num_rows()))
              .Attr("wire_bytes", static_cast<uint64_t>(reply_payload.size()));
          if (!remote_spans.empty()) {
            IngestRemoteSpans(std::move(remote_spans), trace.trace_id,
                              attempt_span_id, send_us, rtt_ms * 1000.0,
                              static_cast<uint32_t>(state->worker_pid));
          }
          return Status::Ok();
        }
        // A payload that passed the checksum but fails to decode is a
        // protocol bug, not line noise; drop the connection anyway so a
        // retry starts clean.
        state->conn.Close();
      }
      if (fatal) {
        span.Attr("error", st.ToString());
        return st;
      }
    }
    span.Attr("error", st.ToString());
    reply->wait_millis += attempt_timer.ElapsedMillis();
    last = st;
  }
  // Terminal classification for the executor's failover logic: a blown
  // deadline on the final attempt keeps its code (the site may be alive
  // but slow); everything else collapses to Unavailable.
  if (last.code() == StatusCode::kDeadlineExceeded) return last;
  return Status::Unavailable("site " + std::to_string(site) +
                             " unreachable after " +
                             std::to_string(policy.max_retries + 1) +
                             " attempts: " + last.ToString());
}

size_t RemoteCluster::MemoryUsage() const {
  size_t total = 0;
  for (auto& state : sites_) {
    std::lock_guard<std::mutex> lock(state->mu);
    total += state->memory_bytes;
  }
  return total;
}

Result<size_t> RemoteCluster::PushReload(partition::Partitioning partitioning,
                                         const std::string& partition_dir,
                                         uint64_t generation) {
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    partitioning_ = std::move(partitioning);
    partition_dir_ = partition_dir;
    generation_ = generation;
  }
  RecomputePresence();
  ReloadMsg reload;
  reload.generation = generation;
  reload.graph_path = options_.graph_path;
  reload.partition_dir = partition_dir;
  const std::string payload = EncodeReload(reload);
  size_t reloaded = 0;
  for (uint32_t i = 0; i < k(); ++i) {
    obs::TraceSpan span("exec.rpc.reload");
    span.Attr("site", i).Attr("generation", generation);
    SiteState* state = sites_[i].get();
    std::lock_guard<std::mutex> lock(state->mu);
    Status st = EnsureConnectedLocked(i, state);
    if (st.ok() && state->hello_generation != generation) {
      std::string reply_payload;
      bool fatal = false;
      st = RoundTripLocked(state, kMsgReload, payload,
                           options_.handshake_timeout_ms, kMsgReloadDone,
                           &reply_payload, &fatal);
      if (st.ok()) st = AcceptHello(i, reply_payload, state);
      if (!st.ok()) state->conn.Close();
    }
    // EnsureConnectedLocked may have replayed the reload itself (stale
    // Hello path); either way the site counts once it's current.
    if (st.ok() && state->hello_generation == generation) {
      ++reloaded;
      span.Attr("ok", 1);
    } else {
      span.Attr("error", st.ToString());
    }
  }
  return reloaded;
}

}  // namespace mpc::exec

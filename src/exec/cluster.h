#ifndef MPC_EXEC_CLUSTER_H_
#define MPC_EXEC_CLUSTER_H_

#include <memory>
#include <vector>

#include "partition/partitioning.h"
#include "rdf/graph.h"
#include "store/triple_store.h"

namespace mpc::exec {

/// An in-process stand-in for the paper's 8-machine deployment: k
/// TripleStore instances, one per partition, each holding that
/// partition's internal edges plus crossing-edge replicas. Loading time
/// (index construction) is measured per site; the reported figure is the
/// maximum across sites, matching parallel loading on a real cluster.
class Cluster {
 public:
  /// Builds the per-site stores from a materialized partitioning. The
  /// partitioning is moved in and retained (the executor needs its
  /// crossing-property mask). Sites are independent, so with
  /// num_threads > 1 (0 = hardware_concurrency) their indexes build
  /// concurrently — mirroring what a real cluster does anyway — with
  /// identical resulting stores at any thread count.
  static Cluster Build(partition::Partitioning partitioning,
                       int num_threads = 1);

  uint32_t k() const { return partitioning_.k(); }
  const store::TripleStore& site(uint32_t i) const { return stores_[i]; }
  const partition::Partitioning& partitioning() const {
    return partitioning_;
  }

  /// True iff site i stores at least one triple with property p. The
  /// executor uses this to localize queries: a sub-BGP requiring a
  /// property absent at a site cannot match there, so the site is not
  /// contacted at all (the "localization" the paper defers as future
  /// work, in its simplest sound form).
  bool SiteHasProperty(uint32_t i, rdf::PropertyId p) const {
    return p < num_properties_ && property_present_[i * num_properties_ + p];
  }

  /// Max per-site index build time, ms (the Table VI "Loading" analogue).
  double loading_millis() const { return loading_millis_; }

  /// Sum of store footprints in bytes.
  size_t MemoryUsage() const;

 private:
  partition::Partitioning partitioning_;
  std::vector<store::TripleStore> stores_;
  /// Row-major [site][property] presence map. One byte per entry (not
  /// vector<bool>): sites fill their rows concurrently, and distinct
  /// bytes can be written from different threads while distinct bits of
  /// one byte cannot.
  std::vector<uint8_t> property_present_;
  size_t num_properties_ = 0;
  double loading_millis_ = 0.0;
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_CLUSTER_H_

#ifndef MPC_EXEC_CLUSTER_H_
#define MPC_EXEC_CLUSTER_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "exec/bloom_filter.h"
#include "partition/partitioning.h"
#include "rdf/graph.h"
#include "store/bgp_matcher.h"
#include "store/triple_source.h"
#include "store/triple_store.h"

namespace mpc::exec {

/// The coordinator's per-query view of which sites are reachable. A
/// crash marks the site down for the rest of the query (fail-stop); the
/// Cluster itself stays immutable, so concurrent queries each keep their
/// own view.
class SiteAvailability {
 public:
  SiteAvailability() = default;
  explicit SiteAvailability(uint32_t k) : up_(k, 1) {}

  bool IsUp(uint32_t site) const { return up_[site] != 0; }
  void MarkDown(uint32_t site) { up_[site] = 0; }
  uint32_t k() const { return static_cast<uint32_t>(up_.size()); }

  uint32_t num_down() const {
    uint32_t n = 0;
    for (uint8_t u : up_) n += (u == 0);
    return n;
  }
  std::vector<uint32_t> DownSites() const {
    std::vector<uint32_t> down;
    for (uint32_t i = 0; i < up_.size(); ++i) {
      if (up_[i] == 0) down.push_back(i);
    }
    return down;
  }

 private:
  std::vector<uint8_t> up_;
};

/// How much of the down sites' data is still reachable somewhere, from
/// the 1-hop crossing-edge replication (Def. 3.3-3.4). Feeds the
/// best-effort completeness bound in ExecutionStats.
struct ReplicaCoverage {
  /// Vertices owned by down sites.
  size_t failed_owned_vertices = 0;
  /// Of those, how many appear as extended vertices of a live site —
  /// every crossing edge at such a vertex survives on the live replica.
  size_t replicated_on_live = 0;
  /// Triples stored only at down sites (edge-disjoint partitionings lose
  /// all of a site's triples; vertex-disjoint ones only the internal
  /// edges whose endpoints have no live replica copy).
  size_t lost_triples = 0;
};

/// One site-subquery evaluation order, as shipped to a site: the sub-BGP
/// (indices into a coordinator-resolved query), the row cap, and the
/// optional WORQ-style per-variable Bloom filters the site applies before
/// shipping rows back.
struct SiteEvalRequest {
  std::span<const size_t> pattern_indices;
  size_t max_rows = SIZE_MAX;
  /// Indexed by query var id; null entries mean no filter. Applied
  /// site-side so definitely-non-joining rows never cross the wire.
  const std::vector<std::unique_ptr<BloomFilter>>* var_filters = nullptr;
};

/// What a site answers with. On failure (remote backends only — the
/// in-process simulator never fails), EvaluateOnSite still fills the
/// retry/wait accounting so the coordinator's stats stay truthful.
struct SiteEvalReply {
  store::BindingTable table;
  /// Rows dropped site-side by the Bloom filters.
  size_t bloom_dropped = 0;
  /// Site-side evaluation time (wall-clock at the site).
  double eval_millis = 0.0;
  /// Transport waiting: retry backoff, blown deadlines, reconnects
  /// (wall-clock; 0 for the in-process backend, whose waits are simulated
  /// by the executor's FaultModel instead).
  double wait_millis = 0.0;
  /// Transport-level retries actually performed.
  int retries = 0;
};

/// Evaluation schedule knobs a backend applies to real RPCs; mirrors the
/// NetworkModel fields the simulator charges to virtual time.
struct SiteCallPolicy {
  /// Per-attempt deadline in ms; 0 = no deadline (a generous transport
  /// default still bounds the wait so a hung site cannot wedge a query).
  double timeout_ms = 0.0;
  /// Retries after the first attempt.
  int max_retries = 0;
  /// Exponential backoff base between attempts.
  double backoff_ms = 1.0;
};

/// Abstract coordinator-side view of the k partition sites. Everything
/// the DistributedExecutor needs is either derivable from the
/// partitioning (owned here) or one virtual call: EvaluateOnSite. Two
/// implementations exist — `Cluster`, the deterministic in-process
/// simulator (k TripleStores, modeled network/faults), and
/// `RemoteCluster`, k `mpc site` worker processes spoken to over
/// checksummed socket RPC, where crashes, timeouts and torn connections
/// are real.
class ClusterBackend {
 public:
  virtual ~ClusterBackend() = default;

  uint32_t k() const { return partitioning_.k(); }
  const partition::Partitioning& partitioning() const {
    return partitioning_;
  }

  /// True iff site i stores at least one triple with property p. The
  /// executor uses this to localize queries: a sub-BGP requiring a
  /// property absent at a site cannot match there, so the site is not
  /// contacted at all (the "localization" the paper defers as future
  /// work, in its simplest sound form).
  bool SiteHasProperty(uint32_t i, rdf::PropertyId p) const {
    return p < num_properties_ && property_present_[i * num_properties_ + p];
  }

  /// Fresh availability view with every site up.
  SiteAvailability AllUp() const { return SiteAvailability(k()); }

  /// |V_i| for vertex-disjoint partitionings (0 for edge-disjoint).
  size_t OwnedVertexCount(uint32_t site) const {
    return partitioning_.partition(site).num_owned_vertices;
  }

  /// Replica lookup for failover: quantifies, for the sites `avail`
  /// marks down, what survives on live sites via 1-hop crossing-edge
  /// replication. This is the data-path justification for best-effort
  /// answers — live sites already hold (and evaluate) the replicated
  /// crossing edges of a dead site, so those matches are served without
  /// contacting it. Pure function of the partitioning: identical for
  /// simulated and real clusters.
  ReplicaCoverage ComputeReplicaCoverage(const SiteAvailability& avail) const;

  /// Max per-site index build time, ms (the Table VI "Loading" analogue).
  double loading_millis() const { return loading_millis_; }

  /// Sum of store footprints in bytes (worker-reported for remote sites).
  virtual size_t MemoryUsage() const = 0;

  /// Evaluates `request`'s sub-BGP of `resolved` at `site`. The one
  /// data-path call of the executor; errors (Unavailable for a dead
  /// site / exhausted retries, DeadlineExceeded for blown deadlines)
  /// only come from remote backends — the simulator's failures are
  /// injected by the executor's FaultModel before this is called.
  /// `policy` bounds real transport attempts and is ignored in-process.
  virtual Status EvaluateOnSite(uint32_t site,
                                const store::ResolvedQuery& resolved,
                                const SiteEvalRequest& request,
                                const SiteCallPolicy& policy,
                                SiteEvalReply* reply) const = 0;

 protected:
  ClusterBackend() = default;
  ClusterBackend(const ClusterBackend&) = default;
  ClusterBackend& operator=(const ClusterBackend&) = default;
  ClusterBackend(ClusterBackend&&) = default;
  ClusterBackend& operator=(ClusterBackend&&) = default;

  partition::Partitioning partitioning_;
  /// Row-major [site][property] presence map. One byte per entry (not
  /// vector<bool>): sites fill their rows concurrently, and distinct
  /// bytes can be written from different threads while distinct bits of
  /// one byte cannot.
  std::vector<uint8_t> property_present_;
  size_t num_properties_ = 0;
  double loading_millis_ = 0.0;
};

/// The empty BindingTable a sub-BGP would produce: columns are exactly
/// the variables its patterns use, ascending by var id (the matcher's
/// column contract). Lets the coordinator synthesize result schemas for
/// subqueries every site pruned or failed — without a store and without
/// an RPC.
store::BindingTable SchemaTable(const store::ResolvedQuery& resolved,
                                std::span<const size_t> pattern_indices);

/// An in-process stand-in for the paper's 8-machine deployment: k
/// per-site TripleSources, one per partition, each holding that
/// partition's internal edges plus crossing-edge replicas. The backend
/// per site is interchangeable — in-memory TripleStore (Build), mmap'ed
/// compressed SegmentStore (BuildFromSegments), or segment + delta
/// overlay for the dynamic path (BuildOverlay) — with bit-identical
/// query results. Loading time (index build / segment open) is measured
/// per site; the reported figure is the maximum across sites, matching
/// parallel loading on a real cluster. Kept as the deterministic test
/// mode now that RemoteCluster runs the same partitionings as real
/// worker processes.
class Cluster final : public ClusterBackend {
 public:
  Cluster() = default;

  /// Builds the per-site in-memory stores from a materialized
  /// partitioning. The partitioning is moved in and retained (the
  /// executor needs its crossing-property mask). Sites are independent,
  /// so with num_threads > 1 (0 = hardware_concurrency) their indexes
  /// build concurrently — mirroring what a real cluster does anyway —
  /// with identical resulting stores at any thread count.
  static Cluster Build(partition::Partitioning partitioning,
                       int num_threads = 1);

  /// Opens `mpc pack`'s per-site segments from `dir` instead of
  /// building in-memory indexes: cold start maps files and reads TOCs
  /// rather than sorting four copies per site. Each segment's stamped
  /// fingerprint must match the partition directory's. The partitioning
  /// is still moved in for the executor's metadata (masks, ownership).
  static Result<Cluster> BuildFromSegments(
      partition::Partitioning partitioning, const std::string& dir,
      int num_threads = 1);

  /// Composes immutable per-site base sources with the dynamic
  /// maintainer's add/tombstone sets: site i serves
  /// (base_i ∪ added_i) \ deleted_i through a DeltaOverlaySource, so a
  /// serving snapshot of a maintained graph never rebuilds the heavy
  /// indexes. `partitioning` must be the maintained (vertex-disjoint)
  /// partitioning the bases were packed for, with ownership unchanged
  /// since pack time (i.e. no repartition) — callers enforce that.
  static Cluster BuildOverlay(
      partition::Partitioning partitioning,
      std::vector<std::shared_ptr<const store::TripleSource>> bases,
      const std::vector<rdf::Triple>& added,
      const std::vector<rdf::Triple>& deleted);

  const store::TripleSource& site(uint32_t i) const { return *stores_[i]; }
  /// Shared handles to the site sources (so a later overlay build can
  /// reuse them as bases without reopening).
  const std::vector<std::shared_ptr<const store::TripleSource>>& sources()
      const {
    return stores_;
  }

  size_t MemoryUsage() const override;

  /// In-process evaluation: BgpMatcher over the site's store plus the
  /// site-side Bloom reduction. Never fails; timing lands in
  /// reply->eval_millis.
  Status EvaluateOnSite(uint32_t site, const store::ResolvedQuery& resolved,
                        const SiteEvalRequest& request,
                        const SiteCallPolicy& policy,
                        SiteEvalReply* reply) const override;

 private:
  /// Derives property_present_/num_properties_/loading bookkeeping from
  /// already-constructed sources.
  void FillPropertyPresence();

  // shared_ptr, not unique_ptr: Cluster stays copyable (copies share
  // the immutable sources), and overlay clusters alias their bases.
  std::vector<std::shared_ptr<const store::TripleSource>> stores_;
};

/// Runs the matcher and applies the request's Bloom filters — the
/// site-side half of one evaluation, shared verbatim by the in-process
/// Cluster and the `mpc site` worker process so their tables are
/// bit-identical (for any TripleSource backend).
SiteEvalReply EvaluateSiteRequest(const store::TripleSource& store,
                                  const store::ResolvedQuery& resolved,
                                  const SiteEvalRequest& request);

}  // namespace mpc::exec

#endif  // MPC_EXEC_CLUSTER_H_

#ifndef MPC_EXEC_CLUSTER_H_
#define MPC_EXEC_CLUSTER_H_

#include <memory>
#include <vector>

#include "partition/partitioning.h"
#include "rdf/graph.h"
#include "store/triple_store.h"

namespace mpc::exec {

/// The coordinator's per-query view of which sites are reachable. A
/// crash marks the site down for the rest of the query (fail-stop); the
/// Cluster itself stays immutable, so concurrent queries each keep their
/// own view.
class SiteAvailability {
 public:
  SiteAvailability() = default;
  explicit SiteAvailability(uint32_t k) : up_(k, 1) {}

  bool IsUp(uint32_t site) const { return up_[site] != 0; }
  void MarkDown(uint32_t site) { up_[site] = 0; }
  uint32_t k() const { return static_cast<uint32_t>(up_.size()); }

  uint32_t num_down() const {
    uint32_t n = 0;
    for (uint8_t u : up_) n += (u == 0);
    return n;
  }
  std::vector<uint32_t> DownSites() const {
    std::vector<uint32_t> down;
    for (uint32_t i = 0; i < up_.size(); ++i) {
      if (up_[i] == 0) down.push_back(i);
    }
    return down;
  }

 private:
  std::vector<uint8_t> up_;
};

/// How much of the down sites' data is still reachable somewhere, from
/// the 1-hop crossing-edge replication (Def. 3.3-3.4). Feeds the
/// best-effort completeness bound in ExecutionStats.
struct ReplicaCoverage {
  /// Vertices owned by down sites.
  size_t failed_owned_vertices = 0;
  /// Of those, how many appear as extended vertices of a live site —
  /// every crossing edge at such a vertex survives on the live replica.
  size_t replicated_on_live = 0;
  /// Triples stored only at down sites (edge-disjoint partitionings lose
  /// all of a site's triples; vertex-disjoint ones only the internal
  /// edges whose endpoints have no live replica copy).
  size_t lost_triples = 0;
};

/// An in-process stand-in for the paper's 8-machine deployment: k
/// TripleStore instances, one per partition, each holding that
/// partition's internal edges plus crossing-edge replicas. Loading time
/// (index construction) is measured per site; the reported figure is the
/// maximum across sites, matching parallel loading on a real cluster.
class Cluster {
 public:
  /// Builds the per-site stores from a materialized partitioning. The
  /// partitioning is moved in and retained (the executor needs its
  /// crossing-property mask). Sites are independent, so with
  /// num_threads > 1 (0 = hardware_concurrency) their indexes build
  /// concurrently — mirroring what a real cluster does anyway — with
  /// identical resulting stores at any thread count.
  static Cluster Build(partition::Partitioning partitioning,
                       int num_threads = 1);

  uint32_t k() const { return partitioning_.k(); }
  const store::TripleStore& site(uint32_t i) const { return stores_[i]; }
  const partition::Partitioning& partitioning() const {
    return partitioning_;
  }

  /// True iff site i stores at least one triple with property p. The
  /// executor uses this to localize queries: a sub-BGP requiring a
  /// property absent at a site cannot match there, so the site is not
  /// contacted at all (the "localization" the paper defers as future
  /// work, in its simplest sound form).
  bool SiteHasProperty(uint32_t i, rdf::PropertyId p) const {
    return p < num_properties_ && property_present_[i * num_properties_ + p];
  }

  /// Fresh availability view with every site up.
  SiteAvailability AllUp() const { return SiteAvailability(k()); }

  /// |V_i| for vertex-disjoint partitionings (0 for edge-disjoint).
  size_t OwnedVertexCount(uint32_t site) const {
    return partitioning_.partition(site).num_owned_vertices;
  }

  /// Replica lookup for failover: quantifies, for the sites `avail`
  /// marks down, what survives on live sites via 1-hop crossing-edge
  /// replication. This is the data-path justification for best-effort
  /// answers — live sites already hold (and evaluate) the replicated
  /// crossing edges of a dead site, so those matches are served without
  /// contacting it.
  ReplicaCoverage ComputeReplicaCoverage(const SiteAvailability& avail) const;

  /// Max per-site index build time, ms (the Table VI "Loading" analogue).
  double loading_millis() const { return loading_millis_; }

  /// Sum of store footprints in bytes.
  size_t MemoryUsage() const;

 private:
  partition::Partitioning partitioning_;
  std::vector<store::TripleStore> stores_;
  /// Row-major [site][property] presence map. One byte per entry (not
  /// vector<bool>): sites fill their rows concurrently, and distinct
  /// bytes can be written from different threads while distinct bits of
  /// one byte cannot.
  std::vector<uint8_t> property_present_;
  size_t num_properties_ = 0;
  double loading_millis_ = 0.0;
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_CLUSTER_H_

#include "exec/explain.h"

#include <sstream>

#include "exec/decomposer.h"
#include "sparql/shape.h"

namespace mpc::exec {

namespace {

std::string TermText(const sparql::QueryTerm& term) {
  return term.is_variable() ? "?" + term.text : term.text;
}

std::string PatternText(const sparql::TriplePattern& pattern) {
  return TermText(pattern.subject) + " " + TermText(pattern.predicate) +
         " " + TermText(pattern.object) + " .";
}

}  // namespace

std::string ExplainQuery(const sparql::QueryGraph& query,
                         const partition::Partitioning& partitioning,
                         const rdf::RdfGraph& graph,
                         const Cluster* cluster) {
  std::ostringstream out;
  Classification cls = ClassifyQuery(query, partitioning, graph);

  out << "query: " << query.num_patterns() << " patterns, "
      << query.num_variables() << " variables, "
      << (sparql::IsStarQuery(query) ? "star" : "non-star") << "\n";
  out << "class: " << IeqClassName(cls.cls) << " -> "
      << (cls.independently_executable()
              ? "independent execution (per-site union, no join)"
              : "decompose + inter-partition join")
      << "\n";
  if (cls.num_crossing_patterns > 0) {
    out << "crossing patterns (" << cls.num_crossing_patterns << "):\n";
    for (size_t i = 0; i < query.num_patterns(); ++i) {
      if (cls.crossing_pattern[i]) {
        out << "  [" << i << "] " << PatternText(query.patterns()[i])
            << "\n";
      }
    }
  }

  Decomposition decomposition;
  if (cls.independently_executable()) {
    decomposition.subqueries.emplace_back();
    for (size_t i = 0; i < query.num_patterns(); ++i) {
      decomposition.subqueries.back().push_back(i);
    }
  } else {
    decomposition = DecomposeQuery(query, cls.crossing_pattern);
    out << "decomposition: " << decomposition.num_subqueries()
        << " subqueries\n";
  }

  for (size_t s = 0; s < decomposition.num_subqueries(); ++s) {
    const std::vector<size_t>& sub = decomposition.subqueries[s];
    sparql::QueryGraph extracted = sparql::ExtractSubquery(query, sub);
    Classification sub_cls =
        ClassifyQuery(extracted, partitioning, graph);
    out << "subquery " << s << " (" << IeqClassName(sub_cls.cls) << "):\n";
    for (size_t idx : sub) {
      out << "  [" << idx << "] " << PatternText(query.patterns()[idx])
          << "\n";
    }
    if (cluster != nullptr) {
      // Sites that survive property-presence localization.
      out << "  sites:";
      for (uint32_t site = 0; site < cluster->k(); ++site) {
        bool relevant = true;
        for (size_t idx : sub) {
          const sparql::QueryTerm& pred = query.patterns()[idx].predicate;
          if (pred.is_variable()) continue;
          rdf::PropertyId p = graph.property_dict().Lookup(pred.text);
          if (p != rdf::kInvalidVertex &&
              !cluster->SiteHasProperty(site, p)) {
            relevant = false;
            break;
          }
        }
        if (relevant) out << " " << site;
      }
      out << "\n";
    }
  }
  if (cluster != nullptr &&
      partitioning.kind() == partition::PartitioningKind::kVertexDisjoint) {
    // Blast-radius report: what a single-site loss would cost, from the
    // 1-hop crossing-edge replication (Def. 3.3-3.4). IEQ independence
    // means a lost site only removes its own contribution; this shows
    // how much of that contribution survives on live replicas.
    out << "fault tolerance (single-site loss, 1-hop replicas):\n";
    for (uint32_t site = 0; site < cluster->k(); ++site) {
      SiteAvailability avail = cluster->AllUp();
      avail.MarkDown(site);
      ReplicaCoverage coverage = cluster->ComputeReplicaCoverage(avail);
      out << "  site " << site << " down: " << coverage.replicated_on_live
          << "/" << coverage.failed_owned_vertices
          << " owned vertices replicated on live sites, "
          << coverage.lost_triples << " triples unrecoverable\n";
    }
  }
  return out.str();
}

}  // namespace mpc::exec

#ifndef MPC_EXEC_BLOOM_FILTER_H_
#define MPC_EXEC_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mpc::exec {

/// Fixed-size Bloom filter over 32-bit ids, used for the WORQ-style [24]
/// join-reduction option of the distributed executor: the coordinator
/// builds a filter over the join-key values of one subquery's bindings
/// and ships it to the sites evaluating the other subqueries, which drop
/// rows whose key cannot join before shipping them back.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_items` at roughly 1% false positives
  /// (~9.6 bits/item, 7 hash probes), with a small floor.
  explicit BloomFilter(size_t expected_items);

  void Insert(uint32_t value);

  /// False means definitely absent; true means probably present.
  bool MayContain(uint32_t value) const;

  /// Wire size in bytes (shipped to sites by the executor's cost model).
  size_t ByteSize() const { return bits_.size() / 8; }

  /// Packs the bit array for the RPC wire, LSB-first within each byte.
  /// The bit count is a power of two and a multiple of 8, so the packed
  /// form round-trips from its byte count alone.
  std::vector<uint8_t> ToBytes() const;

  /// Inverse of ToBytes: a filter with bytes.size()*8 bits. A site
  /// evaluating with the rebuilt filter drops exactly the rows the
  /// coordinator's original would.
  static BloomFilter FromBytes(std::span<const uint8_t> bytes);

 private:
  BloomFilter() = default;

  /// Probe positions derive from two independent 64-bit mixes
  /// (Kirsch-Mitzenmacher double hashing).
  uint64_t Probe(uint32_t value, uint32_t i) const;

  std::vector<bool> bits_;
  uint64_t mask_ = 0;
  static constexpr uint32_t kNumProbes = 7;
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_BLOOM_FILTER_H_

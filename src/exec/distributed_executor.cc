#include "exec/distributed_executor.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "exec/bloom_filter.h"
#include "exec/fault_model.h"
#include "exec/join.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparql/parser.h"

namespace mpc::exec {

using store::BindingTable;
using store::ResolvedQuery;

namespace {

/// Outcome of the retry/failover protocol for one (site, subquery-step)
/// RPC, resolved serially from the pure FaultModel before any local
/// evaluation runs — so the schedule (and every non-timing stat) is
/// identical at any thread count.
struct FaultOutcome {
  bool evaluate = true;
  /// False when the site was already known down (not contacted again).
  bool contacted = true;
  int retries = 0;
  /// Simulated waiting: backoff between attempts, blown deadlines,
  /// failure detection.
  double wait_ms = 0.0;
  /// Multiplier on the measured eval time (slowdown fault, no deadline).
  double slowdown = 1.0;
  StatusCode failure = StatusCode::kOk;
};

FaultOutcome ResolveSiteAttempts(const FaultModel& faults,
                                 const NetworkModel& net, size_t step,
                                 uint32_t site, SiteAvailability* avail) {
  FaultOutcome out;
  if (!avail->IsUp(site)) {
    // Known down since an earlier subquery — simulated crash or real
    // transport failure alike: skipped without an RPC.
    out.evaluate = false;
    out.contacted = false;
    out.failure = StatusCode::kUnavailable;
    return out;
  }
  if (!faults.enabled()) return out;
  if (faults.DownBefore(site, step)) {
    // Crashed at an earlier step while not being contacted (e.g. it was
    // pruned then); this contact detects it.
    avail->MarkDown(site);
    out.evaluate = false;
    out.failure = StatusCode::kUnavailable;
    out.wait_ms = net.FailureDetectMillis();
    obs::TraceSpan span("exec.rpc.attempt");
    span.Attr("site", site)
        .Attr("subquery", static_cast<uint64_t>(step))
        .Attr("attempt", 0)
        .Attr("fault", "crash")
        .Attr("sim_wait_ms", out.wait_ms);
    return out;
  }
  for (int attempt = 0; attempt <= net.max_retries; ++attempt) {
    obs::TraceSpan span("exec.rpc.attempt");
    const FaultKind kind = faults.Sample(site, step, attempt);
    span.Attr("site", site)
        .Attr("subquery", static_cast<uint64_t>(step))
        .Attr("attempt", attempt)
        .Attr("fault", FaultKindName(kind));
    switch (kind) {
      case FaultKind::kNone:
        return out;
      case FaultKind::kCrash:
        // Fail-stop: no retry can help; the site is gone for the rest
        // of the query.
        avail->MarkDown(site);
        out.evaluate = false;
        out.failure = StatusCode::kUnavailable;
        out.wait_ms += net.FailureDetectMillis();
        span.Attr("sim_wait_ms", net.FailureDetectMillis());
        return out;
      case FaultKind::kTransient:
        out.wait_ms += net.BackoffMillis(attempt);
        span.Attr("sim_wait_ms", net.BackoffMillis(attempt));
        if (attempt == net.max_retries) {
          out.evaluate = false;
          out.failure = StatusCode::kUnavailable;
          return out;
        }
        ++out.retries;
        break;
      case FaultKind::kSlowdown:
        if (!net.has_deadline()) {
          // No deadline configured: the slow answer is accepted and its
          // latency multiplier charged to the simulated clock.
          out.slowdown = faults.options().slowdown_factor;
          span.Attr("slowdown", out.slowdown);
          return out;
        }
        // The slow attempt misses the per-site deadline; we waited the
        // full timeout for nothing.
        out.wait_ms += net.site_timeout_ms;
        span.Attr("sim_wait_ms", net.site_timeout_ms);
        if (attempt == net.max_retries) {
          out.evaluate = false;
          out.failure = StatusCode::kDeadlineExceeded;
          return out;
        }
        ++out.retries;
        break;
    }
  }
  return out;
}

/// Transport knobs for real RPC attempts (ignored by the in-process
/// backend, whose waits the FaultModel simulates instead). Reuses the
/// NetworkModel's deadline/retry/backoff settings so one configuration
/// governs both simulated and real calls.
SiteCallPolicy CallPolicy(const NetworkModel& net) {
  SiteCallPolicy policy;
  policy.timeout_ms = net.site_timeout_ms;
  policy.max_retries = net.max_retries;
  policy.backoff_ms = net.retry_backoff_ms;
  return policy;
}

Status FaultStatus(StatusCode code, uint32_t site, size_t subquery) {
  std::string msg = "site " + std::to_string(site) +
                    " did not answer subquery " + std::to_string(subquery) +
                    " (retries exhausted)";
  if (code == StatusCode::kDeadlineExceeded) {
    return Status::DeadlineExceeded(std::move(msg));
  }
  return Status::Unavailable(std::move(msg));
}

/// Rows binding at least one vertex owned by a down site: those matches
/// were served from 1-hop crossing-edge replicas held by live sites.
size_t CountReplicaServedRows(const BindingTable& table,
                              const ResolvedQuery& resolved,
                              const partition::Partitioning& partitioning,
                              const SiteAvailability& avail) {
  // Only columns bound to graph vertices count; a variable predicate
  // binds a property id from a different id space.
  std::vector<uint8_t> vertex_var(resolved.num_vars, 0);
  for (const store::ResolvedPattern& p : resolved.patterns) {
    if (p.s_is_var) vertex_var[p.s] = 1;
    if (p.o_is_var) vertex_var[p.o] = 1;
  }
  const std::vector<uint32_t>& part = partitioning.assignment().part;
  size_t hits = 0;
  for (const std::vector<uint32_t>& row : table.rows) {
    for (size_t c = 0; c < table.var_ids.size(); ++c) {
      if (!vertex_var[table.var_ids[c]]) continue;
      const uint32_t v = row[c];
      if (v < part.size() && !avail.IsUp(part[v])) {
        ++hits;
        break;
      }
    }
  }
  return hits;
}

/// One registry update per query so ParallelFor site scans never touch
/// the registry mutex; the counters mirror ExecutionStats exactly (the
/// obs regression test in tests/obs_metrics_test.cc relies on this).
void FlushExecutionMetrics(const ExecutionStats& stats) {
  auto& metrics = obs::MetricsRegistry::Default();
  metrics.CounterRef("exec.queries").Inc();
  metrics.CounterRef("exec.retries").Inc(stats.retries);
  metrics.CounterRef("exec.sites_failed").Inc(stats.sites_failed);
  metrics.CounterRef("exec.sites_evaluated").Inc(stats.sites_evaluated);
  metrics.CounterRef("exec.sites_pruned").Inc(stats.sites_pruned);
  metrics.CounterRef("exec.failover_hits").Inc(stats.failover_hits);
  metrics.CounterRef("exec.rows_returned").Inc(stats.num_results);
  metrics.HistogramRef("exec.total_ms").Observe(stats.total_millis);
}

}  // namespace

DistributedExecutor::DistributedExecutor(const ClusterBackend& cluster,
                                         const rdf::RdfGraph& graph,
                                         Options options)
    : cluster_(cluster),
      graph_(graph),
      options_(options),
      fault_model_(options_.faults) {}

Result<QueryResponse> DistributedExecutor::Execute(
    const QueryRequest& request) const {
  return Execute(request, /*plan=*/nullptr);
}

Result<QueryResponse> DistributedExecutor::Execute(
    const QueryRequest& request, const QueryPlan* plan) const {
  if (request.options.strategy == ExecStrategy::kGstored) {
    return Status::InvalidArgument(
        "DistributedExecutor cannot serve ExecStrategy::kGstored; route "
        "the request through a QueryService or GStoredExecutor");
  }
  Result<sparql::QueryGraph> query = ResolveRequestQuery(request);
  if (!query.ok()) return query.status();
  const PartialResultPolicy policy =
      request.options.partial_results.value_or(options_.partial_results);

  QueryResponse response;
  response.generation = options_.generation;
  ExecutionStats* stats = &response.stats;
  const bool vp = cluster_.partitioning().kind() ==
                  partition::PartitioningKind::kEdgeDisjoint;
  obs::TraceSpan span("exec.query");
  span.Attr("kind", vp ? "vp" : "vertex_disjoint")
      .Attr("patterns", static_cast<uint64_t>(query->num_patterns()));
  if (!request.options.trace_tag.empty()) {
    span.Attr("tag", request.options.trace_tag);
  }
  // With the span open this is the query's trace id (inherited from a
  // serving-layer span, or freshly rooted here); 0 when tracing is off.
  stats->trace_id = obs::CurrentTraceContext().trace_id;
  Result<BindingTable> result =
      vp ? ExecuteVp(*query, policy, stats)
         : ExecuteVertexDisjoint(*query, plan, policy, stats);
  span.Attr("subqueries", static_cast<uint64_t>(stats->num_subqueries))
      .Attr("sites_evaluated", static_cast<uint64_t>(stats->sites_evaluated))
      .Attr("sites_pruned", static_cast<uint64_t>(stats->sites_pruned))
      .Attr("sites_failed", static_cast<uint64_t>(stats->sites_failed))
      .Attr("retries", static_cast<uint64_t>(stats->retries))
      .Attr("rows", static_cast<uint64_t>(stats->num_results))
      .Attr("sim_total_ms", stats->total_millis)
      .Attr("ok", result.ok() ? 1 : 0);
  FlushExecutionMetrics(*stats);
  if (!result.ok()) return AttachQueryText(result.status(), request.text);
  response.bindings = std::move(*result);
  return response;
}

Result<BindingTable> DistributedExecutor::ExecuteVertexDisjoint(
    const sparql::QueryGraph& query, const QueryPlan* plan,
    PartialResultPolicy partial_results, ExecutionStats* stats) const {
  const int threads = ResolveNumThreads(options_.num_threads);
  // --- QDT: classify + decompose (or reuse the caller's cached plan),
  // resolve, dispatch. ---
  Timer timer;
  QueryPlan local_plan;
  ResolvedQuery resolved;
  {
    obs::TraceSpan qdt_span("exec.decompose");
    if (plan == nullptr) {
      local_plan = PlanQuery(query, cluster_.partitioning(), graph_);
      plan = &local_plan;
    } else {
      stats->plan_cache_hit = true;
    }
    stats->cls = plan->classification.cls;
    stats->independent = plan->classification.independently_executable();
    stats->num_subqueries = plan->decomposition.num_subqueries();

    resolved = store::ResolveQuery(query, graph_);
    qdt_span.Attr("subqueries",
                  static_cast<uint64_t>(plan->decomposition.num_subqueries()))
        .Attr("cached", stats->plan_cache_hit ? 1 : 0);
  }
  const Decomposition& decomposition = plan->decomposition;
  const double classify_millis = timer.ElapsedMillis();

  // --- LET: each subquery on each site; sites run in parallel, so a
  // subquery costs its slowest site; subqueries run back-to-back.
  // Localization: a site lacking any required property of a subquery is
  // skipped entirely (it cannot hold a match of that sub-BGP). ---
  std::vector<bool> site_contacted(cluster_.k(), false);
  // Bloom-join reduction state: per query variable, a filter over the
  // values already bound by earlier subqueries.
  std::vector<std::unique_ptr<BloomFilter>> var_filters(resolved.num_vars);
  const bool use_bloom =
      options_.bloom_reduction && !stats->independent &&
      decomposition.num_subqueries() > 1;

  // Evaluation order: most selective subquery first, so its (small)
  // bindings can reduce the rest. Selectivity estimate: the minimum
  // per-pattern candidate count, using global property frequencies and a
  // strong bonus for constant subjects/objects.
  std::vector<size_t> order(decomposition.num_subqueries());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (use_bloom) {
    auto estimate = [&](const std::vector<size_t>& sub) -> uint64_t {
      uint64_t best = UINT64_MAX;
      for (size_t idx : sub) {
        const store::ResolvedPattern& p = resolved.patterns[idx];
        uint64_t e = p.p_is_var ? graph_.num_edges()
                                : graph_.PropertyFrequency(p.p);
        if (!p.s_is_var || !p.o_is_var) e = e / 64 + 1;
        best = std::min(best, e);
      }
      return best;
    };
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return estimate(decomposition.subqueries[a]) <
             estimate(decomposition.subqueries[b]);
    });
  }
  // Variables shared with later subqueries (only those are worth
  // filtering): remaining_uses[v] = number of not-yet-evaluated
  // subqueries using variable v.
  std::vector<uint32_t> remaining_uses(resolved.num_vars, 0);
  auto subquery_vars = [&](const std::vector<size_t>& sub) {
    std::vector<uint32_t> vars;
    for (size_t idx : sub) {
      const store::ResolvedPattern& p = resolved.patterns[idx];
      if (p.s_is_var) vars.push_back(p.s);
      if (p.p_is_var) vars.push_back(p.p);
      if (p.o_is_var) vars.push_back(p.o);
    }
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    return vars;
  };
  for (const std::vector<size_t>& sub : decomposition.subqueries) {
    for (uint32_t v : subquery_vars(sub)) ++remaining_uses[v];
  }

  SiteAvailability avail = cluster_.AllUp();
  std::vector<BindingTable> subquery_results;
  subquery_results.resize(decomposition.num_subqueries());
  size_t step = 0;  // execution sequence number, for the fault schedule
  for (size_t subquery_index : order) {
    obs::TraceSpan subquery_span("exec.subquery");
    subquery_span.Attr("subquery", static_cast<uint64_t>(subquery_index));
    const std::vector<size_t>& sub =
        decomposition.subqueries[subquery_index];
    for (uint32_t v : subquery_vars(sub)) --remaining_uses[v];
    // Constant properties this subquery requires.
    std::vector<rdf::PropertyId> required;
    for (size_t idx : sub) {
      const store::ResolvedPattern& p = resolved.patterns[idx];
      if (!p.p_is_var && !p.impossible) required.push_back(p.p);
    }
    // Sites that can contribute (localization) and the retry/failover
    // protocol per site: decided serially so the pruning/contact/fault
    // bookkeeping never depends on scheduling.
    struct PlannedSite {
      uint32_t site;
      double wait_ms;
      double slowdown;
    };
    std::vector<PlannedSite> planned;
    // A failed site still blocks the step for as long as the coordinator
    // waited on it (timeouts, backoff) before giving up.
    double failed_wait = 0.0;
    for (uint32_t site = 0; site < cluster_.k(); ++site) {
      if (options_.site_pruning) {
        bool relevant = true;
        for (rdf::PropertyId p : required) {
          if (!cluster_.SiteHasProperty(site, p)) {
            relevant = false;
            break;
          }
        }
        if (!relevant) {
          ++stats->sites_pruned;
          continue;
        }
      }
      FaultOutcome outcome = ResolveSiteAttempts(
          fault_model_, options_.network, step, site, &avail);
      stats->retries += static_cast<size_t>(outcome.retries);
      stats->fault_wait_millis += outcome.wait_ms;
      if (outcome.contacted) site_contacted[site] = true;
      if (!outcome.evaluate) {
        ++stats->sites_failed;
        failed_wait = std::max(failed_wait, outcome.wait_ms);
        if (partial_results == PartialResultPolicy::kFail) {
          return FaultStatus(outcome.failure, site, subquery_index);
        }
        continue;
      }
      planned.push_back({site, outcome.wait_ms, outcome.slowdown});
    }

    // Concurrent site evaluation — in-process threads standing in for
    // (or real RPCs actually reaching) the k machines matching in
    // parallel. Each site's reply (or transport failure) lands in that
    // site's slot; the bloom filters were published by earlier
    // subqueries and are only read here. The post-pass below walks the
    // slots in site order, so the merged table — and the failure
    // bookkeeping — is identical at any thread count.
    SiteEvalRequest eval_request;
    eval_request.pattern_indices = sub;
    eval_request.max_rows = options_.max_rows;
    eval_request.var_filters = use_bloom ? &var_filters : nullptr;
    struct SiteEval {
      SiteEvalReply reply;
      Status status = Status::Ok();
    };
    std::vector<SiteEval> evals(planned.size());
    // Pool threads have no ambient span state; hand them this thread's
    // context so their site spans (and the RPC spans beneath, including
    // the worker-process spans a remote backend ships back) stay inside
    // this query's trace.
    const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
    ParallelFor(0, planned.size(), 1, threads, [&](size_t s) {
      obs::ScopedTraceContext scoped_ctx(trace_ctx);
      obs::TraceSpan site_span("exec.site.eval");
      evals[s].status =
          cluster_.EvaluateOnSite(planned[s].site, resolved, eval_request,
                                  CallPolicy(options_.network),
                                  &evals[s].reply);
      site_span.Attr("site", planned[s].site)
          .Attr("subquery", static_cast<uint64_t>(subquery_index))
          .Attr("rows", static_cast<uint64_t>(evals[s].reply.table.num_rows()))
          .Attr("eval_ms", evals[s].reply.eval_millis)
          .Attr("ok", evals[s].status.ok() ? 1 : 0);
    });

    double slowest_site = failed_wait;
    BindingTable merged;
    for (size_t s = 0; s < planned.size(); ++s) {
      SiteEval& eval = evals[s];
      // Transport accounting (real backends; zero in-process). Slowdown
      // faults stretch the site's simulated answer time; simulated retry
      // backoff and blown deadlines are charged on top.
      stats->retries += static_cast<size_t>(eval.reply.retries);
      stats->fault_wait_millis += eval.reply.wait_millis;
      const double site_millis =
          eval.reply.eval_millis * planned[s].slowdown + planned[s].wait_ms +
          eval.reply.wait_millis;
      slowest_site = std::max(slowest_site, site_millis);
      if (!eval.status.ok()) {
        // A real transport failure. Unavailable means the worker is gone
        // — fail-stop for the rest of the query, exactly like a
        // simulated crash; a blown deadline leaves the site up.
        if (eval.status.code() == StatusCode::kUnavailable) {
          avail.MarkDown(planned[s].site);
        }
        ++stats->sites_failed;
        if (partial_results == PartialResultPolicy::kFail) {
          return eval.status;
        }
        continue;
      }
      ++stats->sites_evaluated;
      stats->bloom_dropped_rows += eval.reply.bloom_dropped;
      stats->local_rows += eval.reply.table.num_rows();
      if (merged.var_ids.empty()) merged.var_ids = eval.reply.table.var_ids;
      for (auto& row : eval.reply.table.rows) {
        merged.rows.push_back(std::move(row));
      }
      // Shipping this site's table to the coordinator.
      stats->shipped_bytes += eval.reply.table.ByteSize();
    }
    if (merged.var_ids.empty()) {
      // Every site pruned or failed (or k = 0): synthesize the empty
      // table with the right columns so downstream joins see the schema.
      merged = SchemaTable(resolved, sub);
    }
    stats->local_eval_millis += slowest_site;
    // Union semantics (Definition 3.7): replicas may produce the same
    // match at two sites; dedupe.
    merged.Deduplicate();
    if (use_bloom) {
      // Publish filters for join variables still needed by later
      // subqueries, sized by distinct values (filters are broadcast to
      // the k sites, which the byte accounting charges below). Very
      // large key sets are not worth shipping.
      constexpr size_t kMaxFilterKeys = 65536;
      for (size_t col = 0; col < merged.var_ids.size(); ++col) {
        uint32_t var = merged.var_ids[col];
        if (remaining_uses[var] == 0 || var_filters[var] != nullptr) {
          continue;
        }
        std::vector<uint32_t> keys;
        keys.reserve(merged.num_rows());
        for (const auto& row : merged.rows) keys.push_back(row[col]);
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        if (keys.size() > kMaxFilterKeys) continue;
        auto filter = std::make_unique<BloomFilter>(keys.size());
        for (uint32_t key : keys) filter->Insert(key);
        stats->shipped_bytes += filter->ByteSize() * cluster_.k();
        var_filters[var] = std::move(filter);
      }
    }
    subquery_results[subquery_index] = std::move(merged);
    ++step;
  }
  size_t contacted = 0;
  for (bool c : site_contacted) contacted += c;
  stats->decomposition_millis =
      classify_millis + options_.network.DispatchMillis(contacted);
  stats->network_millis = options_.network.TransferMillis(
      stats->shipped_bytes, stats->sites_evaluated);

  // --- JT: coordinator-side join (0 when independent). ---
  BindingTable final_table;
  if (stats->independent) {
    final_table = std::move(subquery_results.front());
  } else {
    obs::TraceSpan join_span("exec.join");
    timer.Reset();
    final_table = JoinAll(std::move(subquery_results));
    final_table.Deduplicate();
    stats->join_millis = timer.ElapsedMillis();
    join_span.Attr("rows", static_cast<uint64_t>(final_table.num_rows()));
  }

  // --- Partial-result accounting (best-effort only; kFail returned
  // above). Lost contributions make the answer a subset of the true
  // result; the replication analysis bounds what survived. ---
  if (stats->sites_failed > 0) {
    stats->complete = false;
    const ReplicaCoverage coverage = cluster_.ComputeReplicaCoverage(avail);
    stats->failed_site_vertices = coverage.failed_owned_vertices;
    stats->replicated_failed_vertices = coverage.replicated_on_live;
    stats->completeness_bound =
        graph_.num_edges() == 0
            ? 1.0
            : 1.0 - static_cast<double>(coverage.lost_triples) /
                        static_cast<double>(graph_.num_edges());
    if (avail.num_down() > 0) {
      stats->failover_hits = CountReplicaServedRows(
          final_table, resolved, cluster_.partitioning(), avail);
    }
  }

  final_table.SortColumnsAscending();
  if (query.limit() != SIZE_MAX && final_table.rows.size() > query.limit()) {
    final_table.rows.resize(query.limit());
  }
  stats->num_results = final_table.num_rows();
  stats->total_millis = stats->decomposition_millis +
                        stats->local_eval_millis + stats->join_millis +
                        stats->network_millis;
  return final_table;
}

Result<BindingTable> DistributedExecutor::ExecuteVp(
    const sparql::QueryGraph& query, PartialResultPolicy partial_results,
    ExecutionStats* stats) const {
  Timer timer;
  const partition::Partitioning& partitioning = cluster_.partitioning();
  const bool local = IsVpLocalQuery(query, partitioning, graph_);
  stats->independent = local;
  stats->cls = local ? IeqClass::kInternal : IeqClass::kNonIeq;

  ResolvedQuery resolved = store::ResolveQuery(query, graph_);
  stats->decomposition_millis =
      timer.ElapsedMillis() + options_.network.DispatchMillis(cluster_.k());

  // Every pattern index, for whole-query site evaluations and schemas.
  std::vector<size_t> all_patterns(resolved.patterns.size());
  for (size_t i = 0; i < all_patterns.size(); ++i) all_patterns[i] = i;

  SiteAvailability avail = cluster_.AllUp();
  BindingTable final_table;
  if (local) {
    // All predicates live at one site: run the whole BGP there.
    uint32_t home = 0;
    for (const std::string& pred : query.ConstantPredicates()) {
      rdf::PropertyId p = graph_.property_dict().Lookup(pred);
      if (p != rdf::kInvalidVertex) {
        home = partitioning.PropertyHome(p);
        break;
      }
    }
    stats->num_subqueries = 1;
    stats->sites_pruned += cluster_.k() - 1;
    FaultOutcome outcome = ResolveSiteAttempts(
        fault_model_, options_.network, 0, home, &avail);
    stats->retries += static_cast<size_t>(outcome.retries);
    stats->fault_wait_millis += outcome.wait_ms;
    Status failure = outcome.evaluate ? Status::Ok()
                                      : FaultStatus(outcome.failure, home, 0);
    double home_wait = outcome.wait_ms;
    if (outcome.evaluate) {
      obs::TraceSpan site_span("exec.site.eval");
      SiteEvalRequest eval_request;
      eval_request.pattern_indices = all_patterns;
      eval_request.max_rows = options_.max_rows;
      SiteEvalReply reply;
      Status st =
          cluster_.EvaluateOnSite(home, resolved, eval_request,
                                  CallPolicy(options_.network), &reply);
      stats->retries += static_cast<size_t>(reply.retries);
      stats->fault_wait_millis += reply.wait_millis;
      home_wait += reply.wait_millis;
      site_span.Attr("site", home)
          .Attr("subquery", static_cast<uint64_t>(0))
          .Attr("rows", static_cast<uint64_t>(reply.table.num_rows()))
          .Attr("eval_ms", reply.eval_millis)
          .Attr("ok", st.ok() ? 1 : 0);
      if (!st.ok()) {
        if (st.code() == StatusCode::kUnavailable) avail.MarkDown(home);
        failure = std::move(st);
      } else {
        ++stats->sites_evaluated;
        final_table = std::move(reply.table);
        stats->local_eval_millis =
            reply.eval_millis * outcome.slowdown + home_wait;
        stats->local_rows = final_table.num_rows();
        stats->shipped_bytes = final_table.ByteSize();
        stats->network_millis =
            options_.network.TransferMillis(stats->shipped_bytes, 1);
      }
    }
    if (!failure.ok()) {
      // VP stores each property at exactly one site; without replicas a
      // down home site leaves nothing to fail over to.
      ++stats->sites_failed;
      if (partial_results == PartialResultPolicy::kFail) return failure;
      stats->local_eval_millis = home_wait;
      final_table = SchemaTable(resolved, all_patterns);  // schema only
    }
  } else {
    // Cloud-style plan: every triple pattern is scanned at its property's
    // home site (or every site for variable predicates), shipped to the
    // coordinator, and joined there.
    stats->num_subqueries = query.num_patterns();
    const int threads = ResolveNumThreads(options_.num_threads);
    std::vector<BindingTable> pattern_tables;
    for (size_t i = 0; i < query.num_patterns(); ++i) {
      const sparql::TriplePattern& pattern = query.patterns()[i];
      std::vector<size_t> one{i};
      BindingTable merged;
      std::vector<uint32_t> sites;
      if (pattern.predicate.is_variable()) {
        for (uint32_t site = 0; site < cluster_.k(); ++site) {
          sites.push_back(site);
        }
      } else {
        rdf::PropertyId p =
            graph_.property_dict().Lookup(pattern.predicate.text);
        if (p == rdf::kInvalidVertex) {
          // Property absent from the data: empty table with the
          // pattern's variables as columns.
          merged = SchemaTable(resolved, one);
        } else {
          sites.push_back(partitioning.PropertyHome(p));
        }
      }
      // Sites not scanned for this pattern were localized away.
      stats->sites_pruned += cluster_.k() - sites.size();
      // Retry/failover protocol per site, then concurrent per-site scans
      // into per-site slots, merged serially in site order (same scheme
      // as the vertex-disjoint path).
      struct PlannedSite {
        uint32_t site;
        double wait_ms;
        double slowdown;
      };
      std::vector<PlannedSite> planned;
      double slowest = 0.0;
      for (uint32_t site : sites) {
        FaultOutcome outcome = ResolveSiteAttempts(
            fault_model_, options_.network, i, site, &avail);
        stats->retries += static_cast<size_t>(outcome.retries);
        stats->fault_wait_millis += outcome.wait_ms;
        if (!outcome.evaluate) {
          ++stats->sites_failed;
          slowest = std::max(slowest, outcome.wait_ms);
          if (partial_results == PartialResultPolicy::kFail) {
            return FaultStatus(outcome.failure, site, i);
          }
          continue;
        }
        planned.push_back({site, outcome.wait_ms, outcome.slowdown});
      }
      SiteEvalRequest eval_request;
      eval_request.pattern_indices = one;
      eval_request.max_rows = options_.max_rows;
      struct SiteEval {
        SiteEvalReply reply;
        Status status = Status::Ok();
      };
      std::vector<SiteEval> evals(planned.size());
      const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
      ParallelFor(0, planned.size(), 1, threads, [&](size_t s) {
        obs::ScopedTraceContext scoped_ctx(trace_ctx);
        obs::TraceSpan site_span("exec.site.eval");
        evals[s].status =
            cluster_.EvaluateOnSite(planned[s].site, resolved, eval_request,
                                    CallPolicy(options_.network),
                                    &evals[s].reply);
        site_span.Attr("site", planned[s].site)
            .Attr("subquery", static_cast<uint64_t>(i))
            .Attr("rows",
                  static_cast<uint64_t>(evals[s].reply.table.num_rows()))
            .Attr("eval_ms", evals[s].reply.eval_millis)
            .Attr("ok", evals[s].status.ok() ? 1 : 0);
      });
      for (size_t s = 0; s < planned.size(); ++s) {
        SiteEval& eval = evals[s];
        stats->retries += static_cast<size_t>(eval.reply.retries);
        stats->fault_wait_millis += eval.reply.wait_millis;
        const double site_millis =
            eval.reply.eval_millis * planned[s].slowdown +
            planned[s].wait_ms + eval.reply.wait_millis;
        slowest = std::max(slowest, site_millis);
        if (!eval.status.ok()) {
          if (eval.status.code() == StatusCode::kUnavailable) {
            avail.MarkDown(planned[s].site);
          }
          ++stats->sites_failed;
          if (partial_results == PartialResultPolicy::kFail) {
            return eval.status;
          }
          continue;
        }
        ++stats->sites_evaluated;
        stats->local_rows += eval.reply.table.num_rows();
        stats->shipped_bytes += eval.reply.table.ByteSize();
        if (merged.var_ids.empty()) merged.var_ids = eval.reply.table.var_ids;
        for (auto& row : eval.reply.table.rows) {
          merged.rows.push_back(std::move(row));
        }
      }
      if (merged.var_ids.empty()) {
        // Every scan site failed: synthesize the empty table with the
        // pattern's columns so the join still sees the schema.
        merged = SchemaTable(resolved, one);
      }
      stats->local_eval_millis += slowest;
      merged.Deduplicate();
      pattern_tables.push_back(std::move(merged));
    }
    stats->network_millis = options_.network.TransferMillis(
        stats->shipped_bytes, query.num_patterns());
    timer.Reset();
    final_table = JoinAll(std::move(pattern_tables));
    final_table.Deduplicate();
    stats->join_millis = timer.ElapsedMillis();
  }

  // --- Partial-result accounting. VP keeps no replicas, so nothing is
  // recoverable: the bound only reflects how much data survived at all.
  if (stats->sites_failed > 0) {
    stats->complete = false;
    const ReplicaCoverage coverage = cluster_.ComputeReplicaCoverage(avail);
    stats->completeness_bound =
        graph_.num_edges() == 0
            ? 1.0
            : 1.0 - static_cast<double>(coverage.lost_triples) /
                        static_cast<double>(graph_.num_edges());
  }

  final_table.SortColumnsAscending();
  if (query.limit() != SIZE_MAX && final_table.rows.size() > query.limit()) {
    final_table.rows.resize(query.limit());
  }
  stats->num_results = final_table.num_rows();
  stats->total_millis = stats->decomposition_millis +
                        stats->local_eval_millis + stats->join_millis +
                        stats->network_millis;
  return final_table;
}

}  // namespace mpc::exec

#include "exec/rpc_protocol.h"

#include <algorithm>

#include "net/bytes.h"

namespace mpc::exec {

using net::ByteReader;
using net::ByteWriter;

namespace {

/// Guards a count field against allocating more than the payload could
/// possibly back: every element needs at least `elem_bytes` bytes.
Status CheckCount(uint64_t count, size_t elem_bytes, size_t remaining,
                  const char* what) {
  if (count * elem_bytes <= remaining) return Status::Ok();
  return Status::ParseError(std::string(what) + " count " +
                            std::to_string(count) +
                            " exceeds what the payload can hold");
}

}  // namespace

std::string EncodeHello(const HelloMsg& msg) {
  ByteWriter w;
  w.U32(msg.site);
  w.U32(msg.k);
  w.U64(msg.generation);
  w.U64(msg.pid);
  w.F64(msg.load_millis);
  w.U64(msg.memory_bytes);
  w.Str(std::string_view(
      reinterpret_cast<const char*>(msg.property_present.data()),
      msg.property_present.size()));
  return w.Take();
}

Result<HelloMsg> DecodeHello(std::string_view payload) {
  ByteReader r(payload);
  HelloMsg msg;
  MPC_RETURN_IF_ERROR(r.U32(&msg.site));
  MPC_RETURN_IF_ERROR(r.U32(&msg.k));
  MPC_RETURN_IF_ERROR(r.U64(&msg.generation));
  MPC_RETURN_IF_ERROR(r.U64(&msg.pid));
  MPC_RETURN_IF_ERROR(r.F64(&msg.load_millis));
  MPC_RETURN_IF_ERROR(r.U64(&msg.memory_bytes));
  std::string presence;
  MPC_RETURN_IF_ERROR(r.Str(&presence));
  msg.property_present.assign(presence.begin(), presence.end());
  MPC_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

std::string EncodeEvalRequest(const store::ResolvedQuery& resolved,
                              const SiteEvalRequest& request,
                              const obs::TraceContext& trace) {
  ByteWriter w;
  w.U64(resolved.num_vars);
  w.U32(static_cast<uint32_t>(resolved.patterns.size()));
  for (const store::ResolvedPattern& p : resolved.patterns) {
    uint8_t flags = 0;
    flags |= p.s_is_var ? 1 : 0;
    flags |= p.p_is_var ? 2 : 0;
    flags |= p.o_is_var ? 4 : 0;
    flags |= p.impossible ? 8 : 0;
    w.U8(flags);
    w.U32(p.s);
    w.U32(p.p);
    w.U32(p.o);
  }
  w.U32(static_cast<uint32_t>(request.pattern_indices.size()));
  for (size_t idx : request.pattern_indices) {
    w.U32(static_cast<uint32_t>(idx));
  }
  w.U64(request.max_rows);
  // Only filters over variables this sub-BGP binds matter site-side,
  // but shipping the full set keeps encode trivial; workers index by
  // var id anyway.
  uint32_t num_filters = 0;
  std::string filters;
  if (request.var_filters != nullptr) {
    ByteWriter fw;
    for (uint32_t var = 0; var < request.var_filters->size(); ++var) {
      const auto& filter = (*request.var_filters)[var];
      if (filter == nullptr) continue;
      ++num_filters;
      fw.U32(var);
      std::vector<uint8_t> bits = filter->ToBytes();
      fw.Str(std::string_view(reinterpret_cast<const char*>(bits.data()),
                              bits.size()));
    }
    filters = fw.Take();
  }
  w.U32(num_filters);
  w.Bytes(filters);
  w.U64(trace.trace_id);
  w.U64(trace.parent_span_id);
  w.Str(trace.query_tag);
  return w.Take();
}

Result<EvalRequestMsg> DecodeEvalRequest(std::string_view payload) {
  ByteReader r(payload);
  EvalRequestMsg msg;
  uint64_t num_vars = 0;
  MPC_RETURN_IF_ERROR(r.U64(&num_vars));
  uint32_t num_patterns = 0;
  MPC_RETURN_IF_ERROR(r.U32(&num_patterns));
  MPC_RETURN_IF_ERROR(
      CheckCount(num_patterns, 13, r.remaining(), "pattern"));
  msg.resolved.num_vars = num_vars;
  msg.resolved.patterns.reserve(num_patterns);
  for (uint32_t i = 0; i < num_patterns; ++i) {
    uint8_t flags = 0;
    store::ResolvedPattern p;
    MPC_RETURN_IF_ERROR(r.U8(&flags));
    MPC_RETURN_IF_ERROR(r.U32(&p.s));
    MPC_RETURN_IF_ERROR(r.U32(&p.p));
    MPC_RETURN_IF_ERROR(r.U32(&p.o));
    p.s_is_var = flags & 1;
    p.p_is_var = flags & 2;
    p.o_is_var = flags & 4;
    p.impossible = flags & 8;
    msg.resolved.patterns.push_back(p);
  }
  uint32_t num_indices = 0;
  MPC_RETURN_IF_ERROR(r.U32(&num_indices));
  MPC_RETURN_IF_ERROR(CheckCount(num_indices, 4, r.remaining(), "index"));
  msg.pattern_indices.reserve(num_indices);
  for (uint32_t i = 0; i < num_indices; ++i) {
    uint32_t idx = 0;
    MPC_RETURN_IF_ERROR(r.U32(&idx));
    if (idx >= num_patterns) {
      return Status::ParseError("pattern index " + std::to_string(idx) +
                                " out of range (have " +
                                std::to_string(num_patterns) + " patterns)");
    }
    msg.pattern_indices.push_back(idx);
  }
  MPC_RETURN_IF_ERROR(r.U64(&msg.max_rows));
  uint32_t num_filters = 0;
  MPC_RETURN_IF_ERROR(r.U32(&num_filters));
  MPC_RETURN_IF_ERROR(CheckCount(num_filters, 8, r.remaining(), "filter"));
  msg.filters.reserve(num_filters);
  for (uint32_t i = 0; i < num_filters; ++i) {
    EvalRequestMsg::Filter filter;
    MPC_RETURN_IF_ERROR(r.U32(&filter.var));
    MPC_RETURN_IF_ERROR(r.Str(&filter.bits));
    if (filter.var >= num_vars) {
      return Status::ParseError("filter variable out of range");
    }
    msg.filters.push_back(std::move(filter));
  }
  MPC_RETURN_IF_ERROR(r.U64(&msg.trace.trace_id));
  MPC_RETURN_IF_ERROR(r.U64(&msg.trace.parent_span_id));
  MPC_RETURN_IF_ERROR(r.Str(&msg.trace.query_tag));
  MPC_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

namespace {

void EncodeSpan(ByteWriter* w, const obs::TraceEvent& e) {
  w->Str(e.name);
  w->U64(e.span_id);
  w->U64(e.parent_id);
  w->U32(e.tid);
  w->U32(e.depth);
  w->F64(e.start_us);
  w->F64(e.dur_us);
  const uint32_t num_attrs = static_cast<uint32_t>(
      std::min<size_t>(e.attrs.size(), kMaxAttrsPerSpan));
  w->U32(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    const obs::TraceAttr& attr = e.attrs[a];
    w->Str(attr.key);
    w->U8(static_cast<uint8_t>(attr.value.kind));
    switch (attr.value.kind) {
      case obs::AttrValue::Kind::kInt:
        w->U64(static_cast<uint64_t>(attr.value.i));
        break;
      case obs::AttrValue::Kind::kUint:
        w->U64(attr.value.u);
        break;
      case obs::AttrValue::Kind::kDouble:
        w->F64(attr.value.d);
        break;
      case obs::AttrValue::Kind::kString:
        w->Str(attr.value.s);
        break;
    }
  }
}

Status DecodeSpan(ByteReader* r, obs::TraceEvent* e) {
  MPC_RETURN_IF_ERROR(r->Str(&e->name));
  MPC_RETURN_IF_ERROR(r->U64(&e->span_id));
  MPC_RETURN_IF_ERROR(r->U64(&e->parent_id));
  MPC_RETURN_IF_ERROR(r->U32(&e->tid));
  MPC_RETURN_IF_ERROR(r->U32(&e->depth));
  MPC_RETURN_IF_ERROR(r->F64(&e->start_us));
  MPC_RETURN_IF_ERROR(r->F64(&e->dur_us));
  uint32_t num_attrs = 0;
  MPC_RETURN_IF_ERROR(r->U32(&num_attrs));
  if (num_attrs > kMaxAttrsPerSpan) {
    return Status::ParseError("span attr count " + std::to_string(num_attrs) +
                              " exceeds cap");
  }
  MPC_RETURN_IF_ERROR(CheckCount(num_attrs, 5, r->remaining(), "attr"));
  e->attrs.reserve(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    obs::TraceAttr attr;
    MPC_RETURN_IF_ERROR(r->Str(&attr.key));
    uint8_t kind = 0;
    MPC_RETURN_IF_ERROR(r->U8(&kind));
    switch (kind) {
      case static_cast<uint8_t>(obs::AttrValue::Kind::kInt): {
        uint64_t bits = 0;
        MPC_RETURN_IF_ERROR(r->U64(&bits));
        attr.value = obs::AttrValue::Int(static_cast<int64_t>(bits));
        break;
      }
      case static_cast<uint8_t>(obs::AttrValue::Kind::kUint): {
        uint64_t u = 0;
        MPC_RETURN_IF_ERROR(r->U64(&u));
        attr.value = obs::AttrValue::Uint(u);
        break;
      }
      case static_cast<uint8_t>(obs::AttrValue::Kind::kDouble): {
        double d = 0.0;
        MPC_RETURN_IF_ERROR(r->F64(&d));
        attr.value = obs::AttrValue::Double(d);
        break;
      }
      case static_cast<uint8_t>(obs::AttrValue::Kind::kString): {
        std::string s;
        MPC_RETURN_IF_ERROR(r->Str(&s));
        attr.value = obs::AttrValue::Str(s);
        break;
      }
      default:
        return Status::ParseError("span attr carries invalid kind " +
                                  std::to_string(kind));
    }
    e->attrs.push_back(std::move(attr));
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeEvalReply(const SiteEvalReply& reply,
                            const std::vector<obs::TraceEvent>& spans) {
  ByteWriter w;
  w.U64(reply.bloom_dropped);
  w.F64(reply.eval_millis);
  const store::BindingTable& table = reply.table;
  w.U32(static_cast<uint32_t>(table.var_ids.size()));
  for (uint32_t var : table.var_ids) w.U32(var);
  w.U64(table.rows.size());
  for (const std::vector<uint32_t>& row : table.rows) {
    for (uint32_t v : row) w.U32(v);
  }
  // Earliest spans win under the cap: the root and coarse phase spans
  // open first, and those are the ones a cross-process timeline needs.
  const uint32_t num_spans = static_cast<uint32_t>(
      std::min<size_t>(spans.size(), kMaxSpansPerReply));
  w.U32(num_spans);
  for (uint32_t i = 0; i < num_spans; ++i) EncodeSpan(&w, spans[i]);
  return w.Take();
}

Status DecodeEvalReply(std::string_view payload, SiteEvalReply* reply,
                       std::vector<obs::TraceEvent>* spans) {
  ByteReader r(payload);
  uint64_t dropped = 0;
  MPC_RETURN_IF_ERROR(r.U64(&dropped));
  MPC_RETURN_IF_ERROR(r.F64(&reply->eval_millis));
  reply->bloom_dropped = dropped;
  uint32_t num_cols = 0;
  MPC_RETURN_IF_ERROR(r.U32(&num_cols));
  MPC_RETURN_IF_ERROR(CheckCount(num_cols, 4, r.remaining(), "column"));
  store::BindingTable& table = reply->table;
  table.var_ids.clear();
  table.rows.clear();
  table.var_ids.reserve(num_cols);
  for (uint32_t i = 0; i < num_cols; ++i) {
    uint32_t var = 0;
    MPC_RETURN_IF_ERROR(r.U32(&var));
    table.var_ids.push_back(var);
  }
  uint64_t num_rows = 0;
  MPC_RETURN_IF_ERROR(r.U64(&num_rows));
  MPC_RETURN_IF_ERROR(CheckCount(
      num_rows, num_cols == 0 ? 1 : num_cols * 4, r.remaining(), "row"));
  table.rows.reserve(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    std::vector<uint32_t> row(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      MPC_RETURN_IF_ERROR(r.U32(&row[c]));
    }
    table.rows.push_back(std::move(row));
  }
  uint32_t num_spans = 0;
  MPC_RETURN_IF_ERROR(r.U32(&num_spans));
  if (num_spans > kMaxSpansPerReply) {
    return Status::ParseError("reply span count " + std::to_string(num_spans) +
                              " exceeds cap");
  }
  MPC_RETURN_IF_ERROR(CheckCount(num_spans, 44, r.remaining(), "span"));
  if (spans != nullptr) {
    spans->clear();
    spans->reserve(num_spans);
  }
  for (uint32_t i = 0; i < num_spans; ++i) {
    obs::TraceEvent e;
    MPC_RETURN_IF_ERROR(DecodeSpan(&r, &e));
    if (spans != nullptr) spans->push_back(std::move(e));
  }
  return r.ExpectEnd();
}

std::string EncodeReload(const ReloadMsg& msg) {
  ByteWriter w;
  w.U64(msg.generation);
  w.Str(msg.graph_path);
  w.Str(msg.partition_dir);
  return w.Take();
}

Result<ReloadMsg> DecodeReload(std::string_view payload) {
  ByteReader r(payload);
  ReloadMsg msg;
  MPC_RETURN_IF_ERROR(r.U64(&msg.generation));
  MPC_RETURN_IF_ERROR(r.Str(&msg.graph_path));
  MPC_RETURN_IF_ERROR(r.Str(&msg.partition_dir));
  MPC_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

std::string EncodeError(const Status& status) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(status.code()));
  w.Str(status.message());
  return w.Take();
}

Status DecodeError(std::string_view payload) {
  ByteReader r(payload);
  uint32_t code = 0;
  std::string message;
  MPC_RETURN_IF_ERROR(r.U32(&code));
  MPC_RETURN_IF_ERROR(r.Str(&message));
  MPC_RETURN_IF_ERROR(r.ExpectEnd());
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kCapacityExceeded:
      return Status::CapacityExceeded(std::move(message));
    case StatusCode::kUnsupported:
      return Status::Unsupported(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kIoError:
      return Status::IoError(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kOk:
      break;  // an error frame must not carry Ok
  }
  return Status::ParseError("error frame carries invalid status code " +
                            std::to_string(code));
}

}  // namespace mpc::exec

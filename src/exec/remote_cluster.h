#ifndef MPC_EXEC_REMOTE_CLUSTER_H_
#define MPC_EXEC_REMOTE_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/cluster.h"
#include "net/socket.h"
#include "net/supervisor.h"

namespace mpc::exec {

/// The real multi-process deployment of the paper's site model: one
/// `mpc site` worker process per partition, spawned and babysat by a
/// SiteSupervisor, spoken to over checksummed framed RPC on local
/// sockets. Plugs into DistributedExecutor through the same
/// ClusterBackend interface as the in-process simulator, so decompose /
/// union / hash-join, timeout/retry policies, PartialResultPolicy and
/// replica failover all run unchanged — but here a dead site is a dead
/// process and a torn frame is a torn stream, not a sampled outcome.
class RemoteCluster final : public ClusterBackend {
 public:
  struct Options {
    /// The mpc binary to exec as `<binary> site ...` workers.
    std::string worker_binary;
    /// Graph file every process (coordinator and workers) parses; the
    /// shared parse is what makes dictionary-encoded queries shippable.
    std::string graph_path;
    /// PartitionIo::Save output the workers load their sites from.
    std::string partition_dir;
    /// Store backend workers open: "memory" (re-parse + in-memory
    /// indexes) or "segment" (mmap `mpc pack` output, no parse).
    std::string store_kind = "memory";
    /// Directory for the per-site socket files (site_<i>.sock).
    std::string socket_dir;
    /// Stamp of the partition data; bumped by PushReload. A restarted
    /// worker announces the generation it loaded, and a stale one is
    /// re-synced before serving.
    uint64_t generation = 1;
    /// Worker-side parse threads.
    int worker_threads = 1;
    /// Chaos: pass --kill-after-queries=N to this one site's worker (it
    /// SIGKILLs itself mid-reply on its Nth evaluation).
    uint32_t kill_site = UINT32_MAX;
    uint64_t kill_after_queries = 0;
    /// Per-site connect-path override so a ChaosProxy can interpose on
    /// the data path while the supervisor watches the real socket.
    /// Empty vector or empty string = connect directly.
    std::vector<std::string> connect_path_override;
    /// Reply deadline when the executor's policy carries none.
    double default_timeout_ms = 30000;
    /// Deadline for handshakes and reload pushes (workers re-parse the
    /// graph on reload, which dwarfs a normal round trip).
    double handshake_timeout_ms = 60000;
    net::SupervisorOptions supervisor;
  };

  /// Spawns the worker fleet, waits for every socket to accept, performs
  /// the Hello handshake (validating site ids, k, generation, and that
  /// the worker's property-presence row matches the coordinator's), and
  /// returns the ready cluster. `partitioning` is the coordinator's own
  /// materialized copy — the same data the workers load from
  /// `partition_dir`.
  static Result<std::unique_ptr<RemoteCluster>> Start(
      partition::Partitioning partitioning, Options options);

  ~RemoteCluster() override;

  RemoteCluster(const RemoteCluster&) = delete;
  RemoteCluster& operator=(const RemoteCluster&) = delete;

  /// One site evaluation over the wire, honoring `policy`: per-attempt
  /// reply deadline, exponential backoff, policy.max_retries reconnect
  /// attempts. Every retry reconnects through the supervisor, so a
  /// worker that crashed and was respawned serves the retry. Terminal
  /// failures are Unavailable (site down past the budget, torn frames)
  /// or DeadlineExceeded (deadline blown on the last attempt) — exactly
  /// the codes the executor's failover path expects.
  Status EvaluateOnSite(uint32_t site, const store::ResolvedQuery& resolved,
                        const SiteEvalRequest& request,
                        const SiteCallPolicy& policy,
                        SiteEvalReply* reply) const override;

  /// Sum of worker-reported store footprints.
  size_t MemoryUsage() const override;

  /// Generation-stamped partition push after a repartition. The caller
  /// has already saved `partitioning` into `partition_dir`
  /// (PartitionIo::Save); this swaps the coordinator's view, bumps the
  /// generation, and pushes a Reload to every reachable worker.
  /// Best-effort: a site that cannot be reached now is re-synced on its
  /// next reconnect (its stale Hello generation triggers a replay).
  /// Returns the number of sites reloaded synchronously.
  Result<size_t> PushReload(partition::Partitioning partitioning,
                            const std::string& partition_dir,
                            uint64_t generation);

  /// The process babysitter — exposed so fault tests can Kill() workers
  /// and assert on restarts().
  net::SiteSupervisor& supervisor() const { return *supervisor_; }

  uint64_t generation() const;

 private:
  /// Mutable per-site connection state. The executor calls
  /// EvaluateOnSite from parallel per-subquery threads; the per-site
  /// mutex serializes traffic on each connection while different sites
  /// proceed concurrently.
  struct SiteState {
    std::mutex mu;
    net::Socket conn;  // invalid = disconnected
    uint64_t hello_generation = 0;
    uint64_t memory_bytes = 0;
    double load_millis = 0.0;
    /// Worker OS pid from the last Hello — the pid stamped onto this
    /// site's spans in merged traces.
    uint64_t worker_pid = 0;
  };

  RemoteCluster() = default;

  /// Connects (or reconnects) site `i` and runs the Hello handshake,
  /// replaying a Reload if the worker came back with a stale generation.
  /// Caller holds state->mu.
  Status EnsureConnectedLocked(uint32_t i, SiteState* state) const;
  /// One send/receive on an established connection. kMsgError replies
  /// surface as the carried status with *fatal=true (the worker rejected
  /// the request; retrying cannot help). Transport failures close the
  /// connection and stay retryable.
  Status RoundTripLocked(SiteState* state, uint16_t send_type,
                         const std::string& payload, double timeout_ms,
                         uint16_t want_type, std::string* reply_payload,
                         bool* fatal) const;
  /// Validates a Hello payload against this cluster's expectations.
  Status AcceptHello(uint32_t i, const std::string& payload,
                     SiteState* state) const;
  std::string ConnectPath(uint32_t i) const;
  void RecomputePresence();

  Options options_;
  std::unique_ptr<net::SiteSupervisor> supervisor_;
  mutable std::vector<std::unique_ptr<SiteState>> sites_;
  /// Guards the reload-mutable view: current paths + generation (the
  /// partitioning_ swap also happens under it; readers of partitioning_
  /// on the query path are only safe because PushReload is documented to
  /// run without concurrent queries, matching ServingState's snapshot
  /// discipline).
  mutable std::mutex view_mu_;
  std::string partition_dir_;
  uint64_t generation_ = 1;
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_REMOTE_CLUSTER_H_

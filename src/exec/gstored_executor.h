#ifndef MPC_EXEC_GSTORED_EXECUTOR_H_
#define MPC_EXEC_GSTORED_EXECUTOR_H_

#include "common/status.h"
#include "exec/cluster.h"
#include "exec/distributed_executor.h"
#include "rdf/graph.h"
#include "sparql/query_graph.h"
#include "store/bgp_matcher.h"

namespace mpc::exec {

/// Partial-evaluation-and-assembly runtime in the style of gStoreD
/// [28][29], used for the partitioning-agnostic experiment (Fig. 11).
///
/// Unlike DistributedExecutor, it never takes the IEQ shortcut for
/// crossing-property edges: the query is cut at every crossing-property /
/// variable-predicate edge, each internal fragment AND each crossing edge
/// is evaluated at every site ("local partial matches"), and the
/// fragments are assembled (joined) at the coordinator. Its cost is
/// dominated by the number of local partial matches — which shrinks as
/// the partitioning's crossing-property set shrinks, reproducing why MPC
/// wins Fig. 11 regardless of the runtime being partitioning-agnostic.
class GStoredExecutor {
 public:
  GStoredExecutor(const Cluster& cluster, const rdf::RdfGraph& graph,
                  DistributedExecutor::Options options = DistributedExecutor::Options())
      : cluster_(cluster), graph_(graph), options_(options) {}

  /// Unified entry point (same contract as DistributedExecutor): strategy
  /// kAuto/kGstored accepted, kDistributed rejected with InvalidArgument.
  Result<QueryResponse> Execute(const QueryRequest& request) const;

 private:
  Result<store::BindingTable> ExecuteParsed(const sparql::QueryGraph& query,
                                            ExecutionStats* stats) const;
  const Cluster& cluster_;
  const rdf::RdfGraph& graph_;
  DistributedExecutor::Options options_;
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_GSTORED_EXECUTOR_H_

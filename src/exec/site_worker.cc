#include "exec/site_worker.h"

#include <unistd.h>

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/crash_hook.h"
#include "common/timer.h"
#include "exec/cluster.h"
#include "exec/rpc_protocol.h"
#include "net/frame.h"
#include "net/socket.h"
#include "partition/partition_io.h"
#include "rdf/ntriples.h"
#include "store/triple_store.h"

namespace mpc::exec {

namespace {

/// Timeouts are short so the drain flag is polled between frames; a
/// worker never blocks longer than this before noticing SIGTERM.
constexpr double kPollMillis = 200.0;

/// Everything a worker serves: its partition's store plus the Hello
/// self-description. Rebuilt wholesale on Reload.
struct SiteData {
  store::TripleStore store;
  std::vector<uint8_t> property_present;
  uint32_t k = 0;
  uint64_t generation = 0;
  double load_millis = 0.0;

  HelloMsg MakeHello(uint32_t site) const {
    HelloMsg hello;
    hello.site = site;
    hello.k = k;
    hello.generation = generation;
    hello.pid = static_cast<uint64_t>(::getpid());
    hello.load_millis = load_millis;
    hello.memory_bytes = store.MemoryUsage();
    hello.property_present = property_present;
    return hello;
  }
};

Status LoadSiteData(const std::string& graph_path,
                    const std::string& partition_dir, uint32_t site,
                    int num_threads, uint64_t generation, SiteData* data) {
  Timer timer;
  rdf::GraphBuilder builder;
  MPC_RETURN_IF_ERROR(
      rdf::NTriplesParser::ParseFile(graph_path, &builder, num_threads));
  rdf::RdfGraph graph = builder.Build();
  Result<partition::Partitioning> partitioning =
      partition::PartitionIo::Load(graph, partition_dir);
  if (!partitioning.ok()) return partitioning.status();
  if (site >= partitioning->k()) {
    return Status::InvalidArgument(
        "site " + std::to_string(site) + " out of range: partitioning has " +
        std::to_string(partitioning->k()) + " sites");
  }
  const partition::Partition& p = partitioning->partition(site);
  std::vector<rdf::Triple> triples = p.internal_edges;
  triples.insert(triples.end(), p.crossing_edges.begin(),
                 p.crossing_edges.end());
  const size_t num_properties = partitioning->crossing_property_mask().size();
  data->property_present.assign(num_properties, 0);
  for (const rdf::Triple& t : triples) {
    data->property_present[t.property] = 1;
  }
  data->store = store::TripleStore(std::move(triples));
  data->k = partitioning->k();
  data->generation = generation;
  data->load_millis = timer.ElapsedMillis();
  return Status::Ok();
}

bool ShouldStop(const SiteWorkerOptions& options) {
  return options.stop != nullptr &&
         options.stop->load(std::memory_order_relaxed);
}

/// Evaluates one request against the site store and encodes the reply.
std::string HandleEval(const SiteData& data, const EvalRequestMsg& msg) {
  std::vector<size_t> indices(msg.pattern_indices.begin(),
                              msg.pattern_indices.end());
  std::vector<std::unique_ptr<BloomFilter>> filters;
  if (!msg.filters.empty()) {
    filters.resize(msg.resolved.num_vars);
    for (const EvalRequestMsg::Filter& f : msg.filters) {
      filters[f.var] = std::make_unique<BloomFilter>(BloomFilter::FromBytes(
          std::span<const uint8_t>(
              reinterpret_cast<const uint8_t*>(f.bits.data()),
              f.bits.size())));
    }
  }
  SiteEvalRequest request;
  request.pattern_indices = indices;
  request.max_rows = msg.max_rows;
  request.var_filters = msg.filters.empty() ? nullptr : &filters;
  SiteEvalReply reply = EvaluateSiteRequest(data.store, msg.resolved, request);
  return EncodeEvalReply(reply);
}

/// Serves one accepted connection until the peer leaves, the stream
/// tears, or the drain flag is raised. Decode failures on an intact
/// stream are answered with an error frame and the connection stays up;
/// transport-level damage drops the connection (the coordinator
/// reconnects through the supervisor).
void ServeConnection(const net::Socket& conn, const SiteWorkerOptions& options,
                     SiteData* data, CrashAfter* crash) {
  if (!net::WriteFrame(conn, kMsgHello, EncodeHello(data->MakeHello(options.site)))
           .ok()) {
    return;
  }
  while (!ShouldStop(options)) {
    Result<net::Frame> frame = net::ReadFrame(conn, kPollMillis);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle: poll the drain flag again
      }
      return;  // clean EOF or torn stream: drop the connection
    }
    switch (frame->type) {
      case net::kFramePing: {
        if (!net::WriteFrame(conn, net::kFramePong, "").ok()) return;
        break;
      }
      case kMsgEvalRequest: {
        Result<EvalRequestMsg> msg = DecodeEvalRequest(frame->payload);
        if (!msg.ok()) {
          if (!net::WriteFrame(conn, kMsgError, EncodeError(msg.status()))
                   .ok()) {
            return;
          }
          break;
        }
        std::string reply = HandleEval(*data, *msg);
        if (options.queries_served != nullptr) ++*options.queries_served;
        // The chaos hook dies HERE — reply computed but unsent — so the
        // coordinator observes the worst case: a connection torn
        // mid-query, not a polite refusal.
        crash->Tick();
        if (!net::WriteFrame(conn, kMsgEvalReply, reply).ok()) return;
        break;
      }
      case kMsgReload: {
        Result<ReloadMsg> msg = DecodeReload(frame->payload);
        Status st = msg.ok() ? Status::Ok() : msg.status();
        if (st.ok()) {
          SiteData fresh;
          st = LoadSiteData(msg->graph_path, msg->partition_dir, options.site,
                            options.num_threads, msg->generation, &fresh);
          if (st.ok()) *data = std::move(fresh);
        }
        if (!st.ok()) {
          if (!net::WriteFrame(conn, kMsgError, EncodeError(st)).ok()) return;
          break;
        }
        // The ack carries the refreshed Hello so the coordinator sees the
        // new generation and footprint without another round trip.
        if (!net::WriteFrame(conn, kMsgReloadDone,
                             EncodeHello(data->MakeHello(options.site)))
                 .ok()) {
          return;
        }
        break;
      }
      default: {
        Status st = Status::InvalidArgument(
            "unexpected frame type " + std::to_string(frame->type) +
            " at site worker");
        if (!net::WriteFrame(conn, kMsgError, EncodeError(st)).ok()) return;
        break;
      }
    }
  }
}

}  // namespace

Status RunSiteWorker(const SiteWorkerOptions& options) {
  CrashAfter crash(options.kill_after_queries);
  SiteData data;
  MPC_RETURN_IF_ERROR(LoadSiteData(options.graph_path, options.partition_dir,
                                   options.site, options.num_threads,
                                   options.generation, &data));
  Result<net::Socket> listener = net::Socket::Listen(options.socket_path);
  if (!listener.ok()) return listener.status();
  // One connection at a time: the coordinator keeps a single persistent
  // connection per site and serializes its traffic, so concurrency here
  // would only add interleaving to reason about.
  while (!ShouldStop(options)) {
    Result<net::Socket> conn = listener->Accept(kPollMillis);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;
      return conn.status();  // the listener itself broke
    }
    ServeConnection(*conn, options, &data, &crash);
  }
  return Status::Ok();
}

}  // namespace mpc::exec

#include "exec/site_worker.h"

#include <unistd.h>

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/crash_hook.h"
#include "common/timer.h"
#include "exec/cluster.h"
#include "exec/rpc_protocol.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/trace.h"
#include "partition/partition_io.h"
#include "rdf/ntriples.h"
#include "storage/segment_store.h"
#include "storage/segment_writer.h"
#include "store/triple_store.h"

namespace mpc::exec {

namespace {

/// Timeouts are short so the drain flag is polled between frames; a
/// worker never blocks longer than this before noticing SIGTERM.
constexpr double kPollMillis = 200.0;

/// Everything a worker serves: its partition's store plus the Hello
/// self-description. Rebuilt wholesale on Reload.
struct SiteData {
  std::unique_ptr<const store::TripleSource> store;
  std::vector<uint8_t> property_present;
  uint32_t k = 0;
  uint64_t generation = 0;
  double load_millis = 0.0;

  HelloMsg MakeHello(uint32_t site) const {
    HelloMsg hello;
    hello.site = site;
    hello.k = k;
    hello.generation = generation;
    hello.pid = static_cast<uint64_t>(::getpid());
    hello.load_millis = load_millis;
    hello.memory_bytes = store->MemoryUsage();
    hello.property_present = property_present;
    return hello;
  }
};

/// In-memory path: re-parse the graph, reload the partitioning, build
/// the four-index store for this site.
Status LoadMemorySiteData(const std::string& graph_path,
                          const std::string& partition_dir, uint32_t site,
                          int num_threads, uint64_t generation,
                          SiteData* data) {
  Timer timer;
  rdf::GraphBuilder builder;
  MPC_RETURN_IF_ERROR(
      rdf::NTriplesParser::ParseFile(graph_path, &builder, num_threads));
  rdf::RdfGraph graph = builder.Build();
  Result<partition::Partitioning> partitioning =
      partition::PartitionIo::Load(graph, partition_dir);
  if (!partitioning.ok()) return partitioning.status();
  if (site >= partitioning->k()) {
    return Status::InvalidArgument(
        "site " + std::to_string(site) + " out of range: partitioning has " +
        std::to_string(partitioning->k()) + " sites");
  }
  const partition::Partition& p = partitioning->partition(site);
  std::vector<rdf::Triple> triples = p.internal_edges;
  triples.insert(triples.end(), p.crossing_edges.begin(),
                 p.crossing_edges.end());
  const size_t num_properties = partitioning->crossing_property_mask().size();
  data->property_present.assign(num_properties, 0);
  for (const rdf::Triple& t : triples) {
    data->property_present[t.property] = 1;
  }
  data->store = std::make_unique<store::TripleStore>(std::move(triples));
  data->k = partitioning->k();
  data->generation = generation;
  data->load_millis = timer.ElapsedMillis();
  return Status::Ok();
}

/// Segment path: mmap this site's `.mpcseg` — no graph parse at all.
/// Every id a query needs was resolved at the coordinator, and the
/// Hello metadata (k, property presence) lives in the segment header
/// and TOC. The fingerprint check pins the segment to the partition
/// directory being served.
Status LoadSegmentSiteData(const std::string& partition_dir, uint32_t site,
                           uint64_t generation, SiteData* data) {
  Timer timer;
  Result<uint64_t> fingerprint =
      partition::PartitionIo::Fingerprint(partition_dir);
  if (!fingerprint.ok()) return fingerprint.status();
  storage::SegmentStore::OpenOptions open_options;
  open_options.expected_fingerprint = *fingerprint;
  Result<storage::SegmentStore> segment = storage::SegmentStore::Open(
      storage::SegmentPath(partition_dir, site), open_options);
  if (!segment.ok()) return segment.status();
  if (segment->header().site != site) {
    return Status::InvalidArgument(
        segment->path() + ": segment is for site " +
        std::to_string(segment->header().site) + ", expected " +
        std::to_string(site));
  }
  const size_t num_properties =
      static_cast<size_t>(segment->header().num_properties);
  data->property_present.assign(num_properties, 0);
  for (size_t p = 0; p < num_properties; ++p) {
    if (segment->PropertyCount(static_cast<rdf::PropertyId>(p)) > 0) {
      data->property_present[p] = 1;
    }
  }
  data->k = segment->header().k;
  data->store =
      std::make_unique<storage::SegmentStore>(std::move(*segment));
  data->generation = generation;
  data->load_millis = timer.ElapsedMillis();
  return Status::Ok();
}

Status LoadSiteData(const std::string& store_kind,
                    const std::string& graph_path,
                    const std::string& partition_dir, uint32_t site,
                    int num_threads, uint64_t generation, SiteData* data) {
  if (store_kind == "segment") {
    return LoadSegmentSiteData(partition_dir, site, generation, data);
  }
  return LoadMemorySiteData(graph_path, partition_dir, site, num_threads,
                            generation, data);
}

bool ShouldStop(const SiteWorkerOptions& options) {
  return options.stop != nullptr &&
         options.stop->load(std::memory_order_relaxed);
}

/// Evaluates one request against the site store and encodes the reply.
/// When the request carries a trace context the worker records its own
/// spans under it and ships them back in the reply (worker-local ids;
/// the coordinator remaps them on ingest), then discards its buffers so
/// a long-lived connection's trace memory stays bounded.
std::string HandleEval(const SiteData& data, uint32_t site,
                       const EvalRequestMsg& msg) {
  std::vector<size_t> indices(msg.pattern_indices.begin(),
                              msg.pattern_indices.end());
  std::vector<std::unique_ptr<BloomFilter>> filters;
  if (!msg.filters.empty()) {
    filters.resize(msg.resolved.num_vars);
    for (const EvalRequestMsg::Filter& f : msg.filters) {
      filters[f.var] = std::make_unique<BloomFilter>(BloomFilter::FromBytes(
          std::span<const uint8_t>(
              reinterpret_cast<const uint8_t*>(f.bits.data()),
              f.bits.size())));
    }
  }
  SiteEvalRequest request;
  request.pattern_indices = indices;
  request.max_rows = msg.max_rows;
  request.var_filters = msg.filters.empty() ? nullptr : &filters;

  const bool traced = msg.trace.trace_id != 0;
  if (traced && !obs::TracingEnabled()) obs::StartTracing();
  SiteEvalReply reply;
  {
    // The propagated context parents the worker's root span directly to
    // the coordinator's span that issued this request. The parent id is
    // not locally valid here, but the span ids shipped back are
    // remapped by the coordinator anyway.
    obs::ScopedTraceContext ctx(msg.trace);
    obs::TraceSpan root("site.eval");
    if (traced) {
      root.Attr("site", static_cast<uint64_t>(site));
      if (!msg.trace.query_tag.empty()) root.Attr("tag", msg.trace.query_tag);
    }
    reply = EvaluateSiteRequest(*data.store, msg.resolved, request);
  }
  if (!traced) return EncodeEvalReply(reply);
  std::vector<obs::TraceEvent> spans;
  for (obs::TraceEvent& e : obs::CollectTrace()) {
    if (e.trace_id == msg.trace.trace_id) spans.push_back(std::move(e));
  }
  std::string encoded = EncodeEvalReply(reply, spans);
  obs::DiscardTrace();
  return encoded;
}

/// Serves one accepted connection until the peer leaves, the stream
/// tears, or the drain flag is raised. Decode failures on an intact
/// stream are answered with an error frame and the connection stays up;
/// transport-level damage drops the connection (the coordinator
/// reconnects through the supervisor).
void ServeConnection(const net::Socket& conn, const SiteWorkerOptions& options,
                     SiteData* data, CrashAfter* crash) {
  if (!net::WriteFrame(conn, kMsgHello, EncodeHello(data->MakeHello(options.site)))
           .ok()) {
    return;
  }
  while (!ShouldStop(options)) {
    Result<net::Frame> frame = net::ReadFrame(conn, kPollMillis);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle: poll the drain flag again
      }
      return;  // clean EOF or torn stream: drop the connection
    }
    switch (frame->type) {
      case net::kFramePing: {
        if (!net::WriteFrame(conn, net::kFramePong, "").ok()) return;
        break;
      }
      case kMsgEvalRequest: {
        Result<EvalRequestMsg> msg = DecodeEvalRequest(frame->payload);
        if (!msg.ok()) {
          if (!net::WriteFrame(conn, kMsgError, EncodeError(msg.status()))
                   .ok()) {
            return;
          }
          break;
        }
        std::string reply = HandleEval(*data, options.site, *msg);
        if (options.queries_served != nullptr) ++*options.queries_served;
        // The chaos hook dies HERE — reply computed but unsent — so the
        // coordinator observes the worst case: a connection torn
        // mid-query, not a polite refusal.
        crash->Tick();
        if (!net::WriteFrame(conn, kMsgEvalReply, reply).ok()) return;
        break;
      }
      case kMsgReload: {
        Result<ReloadMsg> msg = DecodeReload(frame->payload);
        Status st = msg.ok() ? Status::Ok() : msg.status();
        if (st.ok()) {
          SiteData fresh;
          // Reload always rebuilds in memory: it follows a repartition,
          // which changes ownership and so invalidates pack-time
          // segments (their fingerprint no longer matches).
          st = LoadSiteData("memory", msg->graph_path, msg->partition_dir,
                            options.site, options.num_threads,
                            msg->generation, &fresh);
          if (st.ok()) *data = std::move(fresh);
        }
        if (!st.ok()) {
          if (!net::WriteFrame(conn, kMsgError, EncodeError(st)).ok()) return;
          break;
        }
        // The ack carries the refreshed Hello so the coordinator sees the
        // new generation and footprint without another round trip.
        if (!net::WriteFrame(conn, kMsgReloadDone,
                             EncodeHello(data->MakeHello(options.site)))
                 .ok()) {
          return;
        }
        break;
      }
      default: {
        Status st = Status::InvalidArgument(
            "unexpected frame type " + std::to_string(frame->type) +
            " at site worker");
        if (!net::WriteFrame(conn, kMsgError, EncodeError(st)).ok()) return;
        break;
      }
    }
  }
}

}  // namespace

Status RunSiteWorker(const SiteWorkerOptions& options) {
  CrashAfter crash(options.kill_after_queries);
  SiteData data;
  MPC_RETURN_IF_ERROR(LoadSiteData(options.store_kind, options.graph_path,
                                   options.partition_dir, options.site,
                                   options.num_threads, options.generation,
                                   &data));
  Result<net::Socket> listener = net::Socket::Listen(options.socket_path);
  if (!listener.ok()) return listener.status();
  // One connection at a time: the coordinator keeps a single persistent
  // connection per site and serializes its traffic, so concurrency here
  // would only add interleaving to reason about.
  while (!ShouldStop(options)) {
    Result<net::Socket> conn = listener->Accept(kPollMillis);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;
      return conn.status();  // the listener itself broke
    }
    ServeConnection(*conn, options, &data, &crash);
  }
  return Status::Ok();
}

}  // namespace mpc::exec

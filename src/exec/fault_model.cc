#include "exec/fault_model.h"

#include <algorithm>

#include "common/random.h"

namespace mpc::exec {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kSlowdown:
      return "slowdown";
  }
  return "unknown";
}

FaultModel::FaultModel(FaultOptions options) : options_(std::move(options)) {
  std::sort(options_.fail_sites.begin(), options_.fail_sites.end());
}

bool FaultModel::InFailList(uint32_t site) const {
  return std::binary_search(options_.fail_sites.begin(),
                            options_.fail_sites.end(), site);
}

double FaultModel::Uniform(uint32_t site, size_t step, int attempt) const {
  // Two SplitMix64 rounds over a distinct-coordinate mix; the golden-ratio
  // multipliers keep (site, step, attempt) lattices from colliding.
  uint64_t state = options_.seed;
  state ^= 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(site) + 1);
  state ^= 0xbf58476d1ce4e5b9ULL * (static_cast<uint64_t>(step) + 1);
  state ^= 0x94d049bb133111ebULL * (static_cast<uint64_t>(attempt) + 1);
  SplitMix64(state);
  const uint64_t z = SplitMix64(state);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

FaultKind FaultModel::Sample(uint32_t site, size_t step, int attempt) const {
  if (!enabled()) return FaultKind::kNone;
  if (attempt == 0 && InFailList(site)) return FaultKind::kCrash;
  const double u = Uniform(site, step, attempt);
  // One uniform draw against the cumulative bands. Retries re-sample
  // only the transient/slowdown bands: a site that survived attempt 0
  // of this step cannot crash mid-retry.
  double band = attempt == 0 ? options_.crash_rate : 0.0;
  if (attempt == 0 && u < band) return FaultKind::kCrash;
  band += options_.transient_rate;
  if (u < band) return FaultKind::kTransient;
  band += options_.slowdown_rate;
  if (u < band) return FaultKind::kSlowdown;
  return FaultKind::kNone;
}

bool FaultModel::DownBefore(uint32_t site, size_t step) const {
  if (!enabled()) return false;
  if (InFailList(site)) return true;
  for (size_t s = 0; s < step; ++s) {
    if (Sample(site, s, 0) == FaultKind::kCrash) return true;
  }
  return false;
}

}  // namespace mpc::exec

#ifndef MPC_EXEC_QUERY_CLASSIFIER_H_
#define MPC_EXEC_QUERY_CLASSIFIER_H_

#include <vector>

#include "partition/partitioning.h"
#include "rdf/graph.h"
#include "sparql/query_graph.h"

namespace mpc::exec {

/// The independently-executable-query taxonomy of Section V-A.
enum class IeqClass {
  /// Definition 5.1: no crossing-property edges at all.
  kInternal,
  /// Definition 5.2: still weakly connected after removing crossing
  /// property edges.
  kExtendedTypeI,
  /// Definition 5.3: one multi-vertex core plus satellite single-vertex
  /// WCCs, all crossing edges touching the core.
  kExtendedTypeII,
  /// Requires decomposition and inter-partition joins.
  kNonIeq,
};

const char* IeqClassName(IeqClass cls);

struct Classification {
  IeqClass cls = IeqClass::kNonIeq;
  /// Per pattern: true if the edge is a crossing-property edge or has a
  /// variable predicate (footnote 1: variable-predicate edges are treated
  /// as crossing).
  std::vector<bool> crossing_pattern;
  size_t num_crossing_patterns = 0;

  /// True iff the query can be evaluated with per-partition union only
  /// (Theorems 3 and 4).
  bool independently_executable() const { return cls != IeqClass::kNonIeq; }
};

/// Classifies a query against a vertex-disjoint partitioning's crossing
/// property set. `graph` supplies the property dictionary: a query
/// property absent from the data cannot label any edge, crossing or not,
/// so it never blocks independence.
Classification ClassifyQuery(const sparql::QueryGraph& query,
                             const partition::Partitioning& partitioning,
                             const rdf::RdfGraph& graph);

/// VP-side locality test: an edge-disjoint (VP) partitioning can run a
/// query at a single site iff every (constant) predicate of the query is
/// stored at the same site and the query has no variable predicates.
/// Queries whose predicates are absent from the data are trivially local
/// (empty result everywhere).
bool IsVpLocalQuery(const sparql::QueryGraph& query,
                    const partition::Partitioning& partitioning,
                    const rdf::RdfGraph& graph);

}  // namespace mpc::exec

#endif  // MPC_EXEC_QUERY_CLASSIFIER_H_

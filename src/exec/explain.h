#ifndef MPC_EXEC_EXPLAIN_H_
#define MPC_EXEC_EXPLAIN_H_

#include <string>

#include "exec/cluster.h"
#include "exec/query_classifier.h"
#include "rdf/graph.h"
#include "sparql/query_graph.h"

namespace mpc::exec {

/// Human-readable execution plan for a query over a vertex-disjoint
/// partitioning: its IEQ class, the crossing patterns, and — when a join
/// is needed — the Algorithm 2 decomposition with each subquery's own
/// IEQ class (always internal/Type-I/Type-II, the Algorithm 2 guarantee)
/// and, if a cluster is supplied, the sites each subquery actually
/// contacts after property-presence localization.
std::string ExplainQuery(const sparql::QueryGraph& query,
                         const partition::Partitioning& partitioning,
                         const rdf::RdfGraph& graph,
                         const Cluster* cluster = nullptr);

}  // namespace mpc::exec

#endif  // MPC_EXEC_EXPLAIN_H_

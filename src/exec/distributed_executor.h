#ifndef MPC_EXEC_DISTRIBUTED_EXECUTOR_H_
#define MPC_EXEC_DISTRIBUTED_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/cluster.h"
#include "exec/decomposer.h"
#include "exec/fault_model.h"
#include "exec/network_model.h"
#include "exec/query_api.h"
#include "exec/query_classifier.h"
#include "rdf/graph.h"
#include "sparql/query_graph.h"
#include "store/bgp_matcher.h"

namespace mpc::exec {

/// Executes SPARQL BGP queries over a Cluster, exactly following
/// Section V-B2:
///  - IEQs (internal, Type-I, Type-II): ship Q to every site, evaluate
///    locally, union with set semantics. No join.
///  - non-IEQs: decompose with Algorithm 2, evaluate every subquery on
///    every site, union per subquery, hash-join at the coordinator.
///  - VP clusters: a query local to one site runs there; otherwise each
///    pattern is scanned at its property's home site and everything is
///    joined at the coordinator (the cloud-style plan of Section II).
struct ExecutorOptions {
  NetworkModel network;
  /// Per-subquery per-site row cap (SIZE_MAX = exhaustive).
  size_t max_rows = SIZE_MAX;
  /// Localization: skip sites that lack a property some pattern of the
  /// subquery requires (sound — such sites cannot contribute matches).
  /// The simplest form of the query localization the paper leaves as
  /// future work (Section V-B2).
  bool site_pruning = true;
  /// WORQ-style [24] Bloom-join reduction for decomposed (non-IEQ)
  /// queries: join-key Bloom filters from earlier subqueries are shipped
  /// to sites, which drop definitely-non-joining rows before shipping
  /// their tables back. Sound (false positives are removed by the exact
  /// coordinator join); off by default to keep the baseline execution
  /// model identical to the paper's.
  bool bloom_reduction = false;
  /// Worker threads for concurrent per-site BGP matching (the sites of a
  /// real deployment evaluate concurrently anyway; this makes the
  /// simulation do the same). 0 = hardware_concurrency. Defaults to 1 so
  /// the simulated LET timing model stays serial unless asked otherwise;
  /// result tables are bit-identical at any value (per-site results land
  /// in per-site slots and merge in site order).
  int num_threads = 1;
  /// Injected failures (off by default). Deterministic in faults.seed:
  /// the schedule of crashes/transients/slowdowns — and therefore every
  /// non-timing stat — is identical at any thread count. Deadlines,
  /// retry counts and backoff live in `network` (site_timeout_ms,
  /// max_retries, retry_backoff_ms).
  FaultOptions faults;
  /// Degrade to surviving sites or fail the query when a site stays
  /// down after retries.
  PartialResultPolicy partial_results = PartialResultPolicy::kFail;
  /// Stamped into every QueryResponse: the generation of the serving
  /// state this executor answers for (0 for a static cluster). Set by
  /// the IncrementalMaintainer / ServingState when they (re)build their
  /// cached executor; it is the token the result cache validates against.
  uint64_t generation = 0;
};

class DistributedExecutor {
 public:
  using Options = ExecutorOptions;

  /// `cluster` is any ClusterBackend — the in-process simulator or a
  /// RemoteCluster of worker processes; the execution logic is identical
  /// over both. `graph` is the global graph whose dictionaries encode
  /// the cluster's triples; both must outlive the executor.
  DistributedExecutor(const ClusterBackend& cluster,
                      const rdf::RdfGraph& graph,
                      Options options = Options());

  /// The single execution entry point: resolves the request (parsing
  /// `text` when no parsed query is attached — parse errors carry the
  /// offending text), honours the per-request options, and returns the
  /// bindings together with the per-query stats and the executor's
  /// generation. ExecStrategy::kGstored is rejected with
  /// InvalidArgument (the QueryService routes it to a GStoredExecutor).
  Result<QueryResponse> Execute(const QueryRequest& request) const;

  /// Same, but reuses a precomputed plan (classification +
  /// decomposition) instead of planning inline — the plan-cache fast
  /// path. `plan` may be null (plans inline); when non-null it must
  /// have been built by PlanQuery for a query of the same canonical
  /// shape against this executor's partitioning. Only consulted on the
  /// vertex-disjoint path; VP planning is per-pattern and cheap.
  Result<QueryResponse> Execute(const QueryRequest& request,
                                const QueryPlan* plan) const;

 private:
  Result<store::BindingTable> ExecuteVertexDisjoint(
      const sparql::QueryGraph& query, const QueryPlan* plan,
      PartialResultPolicy partial_results, ExecutionStats* stats) const;
  Result<store::BindingTable> ExecuteVp(const sparql::QueryGraph& query,
                                        PartialResultPolicy partial_results,
                                        ExecutionStats* stats) const;

  const ClusterBackend& cluster_;
  const rdf::RdfGraph& graph_;
  Options options_;
  /// Pure (stateless after construction): shared by concurrent queries.
  FaultModel fault_model_;
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_DISTRIBUTED_EXECUTOR_H_

#ifndef MPC_EXEC_DISTRIBUTED_EXECUTOR_H_
#define MPC_EXEC_DISTRIBUTED_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/cluster.h"
#include "exec/decomposer.h"
#include "exec/fault_model.h"
#include "exec/network_model.h"
#include "exec/query_classifier.h"
#include "rdf/graph.h"
#include "sparql/query_graph.h"
#include "store/bgp_matcher.h"

namespace mpc::exec {

/// Per-query timing and provenance, matching the stage breakdown the
/// paper reports in Tables IV-V: QDT (query decomposition time), LET
/// (local evaluation time), JT (join time). Network components are
/// simulated (NetworkModel) and reported separately but included in
/// total_millis.
struct ExecutionStats {
  IeqClass cls = IeqClass::kNonIeq;
  bool independent = false;
  size_t num_subqueries = 0;
  /// QDT: classification + decomposition + dispatch.
  double decomposition_millis = 0.0;
  /// LET: per subquery, the slowest site (sites evaluate in parallel);
  /// subqueries of one query run back-to-back at each site.
  double local_eval_millis = 0.0;
  /// JT: coordinator-side hash joins (0 for IEQs).
  double join_millis = 0.0;
  /// Simulated shipping of subquery/result tables to the coordinator.
  double network_millis = 0.0;
  double total_millis = 0.0;
  size_t num_results = 0;
  size_t shipped_bytes = 0;
  /// Site-subquery evaluations actually performed vs skipped by the
  /// property-presence localization.
  size_t sites_evaluated = 0;
  size_t sites_pruned = 0;
  /// Rows dropped at sites by the Bloom-join reduction (0 unless the
  /// bloom_reduction option is on and the query decomposed).
  size_t bloom_dropped_rows = 0;
  /// Total rows produced by local evaluation across sites and subqueries
  /// (the "local partial matches" count used in the gStoreD experiment).
  size_t local_rows = 0;

  // --- Fault handling (all zero / true on a fault-free run). The
  // invariant sites_evaluated + sites_pruned + sites_failed ==
  // k * num_subqueries holds on every path. ---

  /// Site-subquery slots that produced no table because the site was
  /// down, kept timing out, or exhausted its transient retries.
  size_t sites_failed = 0;
  /// Simulated retry attempts across all sites and subqueries.
  size_t retries = 0;
  /// Result rows that bind at least one vertex owned by a failed site:
  /// matches served from 1-hop crossing-edge replicas on live sites —
  /// the failover data-path at work.
  size_t failover_hits = 0;
  /// False iff some site-subquery contribution was lost (best-effort
  /// runs only; kFail returns an error instead).
  bool complete = true;
  /// Vertices owned by failed sites, and how many of them a live site
  /// still replicates (Cluster::ComputeReplicaCoverage).
  size_t failed_site_vertices = 0;
  size_t replicated_failed_vertices = 0;
  /// Lower-bound proxy on result completeness: the fraction of the data
  /// that is still reachable at some live site (1.0 when complete). For
  /// vertex-disjoint partitionings this is driven by the replication
  /// analysis; VP has no replicas, so every lost triple is gone.
  double completeness_bound = 1.0;
  /// Total simulated waiting on faults across sites (backoff + timeouts
  /// + failure detection). Per-site waits are already charged into
  /// local_eval_millis via the slowest-site rule; this aggregate is
  /// observability only and is NOT added to total_millis again.
  double fault_wait_millis = 0.0;
};

/// What to do when a site stays down after retries.
enum class PartialResultPolicy {
  /// Propagate Unavailable/DeadlineExceeded: correctness over coverage.
  kFail,
  /// Answer from the surviving sites (plus whatever 1-hop replicas
  /// recover), reporting complete=false and the completeness bound.
  kBestEffort,
};

/// Executes SPARQL BGP queries over a Cluster, exactly following
/// Section V-B2:
///  - IEQs (internal, Type-I, Type-II): ship Q to every site, evaluate
///    locally, union with set semantics. No join.
///  - non-IEQs: decompose with Algorithm 2, evaluate every subquery on
///    every site, union per subquery, hash-join at the coordinator.
///  - VP clusters: a query local to one site runs there; otherwise each
///    pattern is scanned at its property's home site and everything is
///    joined at the coordinator (the cloud-style plan of Section II).
struct ExecutorOptions {
  NetworkModel network;
  /// Per-subquery per-site row cap (SIZE_MAX = exhaustive).
  size_t max_rows = SIZE_MAX;
  /// Localization: skip sites that lack a property some pattern of the
  /// subquery requires (sound — such sites cannot contribute matches).
  /// The simplest form of the query localization the paper leaves as
  /// future work (Section V-B2).
  bool site_pruning = true;
  /// WORQ-style [24] Bloom-join reduction for decomposed (non-IEQ)
  /// queries: join-key Bloom filters from earlier subqueries are shipped
  /// to sites, which drop definitely-non-joining rows before shipping
  /// their tables back. Sound (false positives are removed by the exact
  /// coordinator join); off by default to keep the baseline execution
  /// model identical to the paper's.
  bool bloom_reduction = false;
  /// Worker threads for concurrent per-site BGP matching (the sites of a
  /// real deployment evaluate concurrently anyway; this makes the
  /// simulation do the same). 0 = hardware_concurrency. Defaults to 1 so
  /// the simulated LET timing model stays serial unless asked otherwise;
  /// result tables are bit-identical at any value (per-site results land
  /// in per-site slots and merge in site order).
  int num_threads = 1;
  /// Injected failures (off by default). Deterministic in faults.seed:
  /// the schedule of crashes/transients/slowdowns — and therefore every
  /// non-timing stat — is identical at any thread count. Deadlines,
  /// retry counts and backoff live in `network` (site_timeout_ms,
  /// max_retries, retry_backoff_ms).
  FaultOptions faults;
  /// Degrade to surviving sites or fail the query when a site stays
  /// down after retries.
  PartialResultPolicy partial_results = PartialResultPolicy::kFail;
};

class DistributedExecutor {
 public:
  using Options = ExecutorOptions;

  /// `graph` is the global graph whose dictionaries encode the cluster's
  /// triples; both must outlive the executor.
  DistributedExecutor(const Cluster& cluster, const rdf::RdfGraph& graph,
                      Options options = Options());

  /// Runs the query; on success fills `stats` (never null).
  Result<store::BindingTable> Execute(const sparql::QueryGraph& query,
                                      ExecutionStats* stats) const;

  /// Parses and runs a SPARQL string.
  Result<store::BindingTable> ExecuteText(const std::string& text,
                                          ExecutionStats* stats) const;

 private:
  Result<store::BindingTable> ExecuteVertexDisjoint(
      const sparql::QueryGraph& query, ExecutionStats* stats) const;
  Result<store::BindingTable> ExecuteVp(const sparql::QueryGraph& query,
                                        ExecutionStats* stats) const;

  const Cluster& cluster_;
  const rdf::RdfGraph& graph_;
  Options options_;
  /// Pure (stateless after construction): shared by concurrent queries.
  FaultModel fault_model_;
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_DISTRIBUTED_EXECUTOR_H_

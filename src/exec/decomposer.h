#ifndef MPC_EXEC_DECOMPOSER_H_
#define MPC_EXEC_DECOMPOSER_H_

#include <cstddef>
#include <vector>

#include "exec/query_classifier.h"
#include "sparql/query_graph.h"

namespace mpc::exec {

/// A decomposition of a non-IEQ into independently executable subqueries
/// (Algorithm 2). Each subquery is a list of pattern indices into the
/// original query; every original pattern appears in exactly one
/// subquery.
struct Decomposition {
  std::vector<std::vector<size_t>> subqueries;

  size_t num_subqueries() const { return subqueries.size(); }
};

/// Algorithm 2: removes crossing-property / variable-predicate edges,
/// takes the WCCs as seed subqueries, then reattaches each removed edge —
/// to its WCC when both endpoints agree (making it Type-I extended), or
/// to the endpoint's larger WCC otherwise (making it Type-II extended).
/// Single-vertex WCCs that receive no edges are dropped (their matches
/// are subsumed, cf. the q'_3 discussion of Fig. 6).
///
/// `crossing_pattern` comes from ClassifyQuery. Also correct (and used)
/// for IEQs, where it returns a single subquery with every pattern.
Decomposition DecomposeQuery(const sparql::QueryGraph& query,
                             const std::vector<bool>& crossing_pattern);

/// The reusable per-query plan for vertex-disjoint execution:
/// classification against the partitioning's crossing set plus the
/// Algorithm 2 decomposition (a single all-pattern subquery for IEQs).
/// A plan is valid for every query with the same canonical shape
/// (sparql::CanonicalShapeKey) against the same crossing-property set —
/// the QueryService's plan cache keys on exactly that pair, with the
/// maintainer generation standing in for the crossing set.
struct QueryPlan {
  Classification classification;
  Decomposition decomposition;
};

/// Builds the plan the executor would otherwise compute inline
/// (classify, then decompose or wrap all patterns into one subquery).
QueryPlan PlanQuery(const sparql::QueryGraph& query,
                    const partition::Partitioning& partitioning,
                    const rdf::RdfGraph& graph);

}  // namespace mpc::exec

#endif  // MPC_EXEC_DECOMPOSER_H_

#include "exec/decomposer.h"

#include "sparql/shape.h"

namespace mpc::exec {

Decomposition DecomposeQuery(const sparql::QueryGraph& query,
                             const std::vector<bool>& crossing_pattern) {
  sparql::QueryComponents components =
      sparql::DecomposeAfterRemoval(query, crossing_pattern);

  // Seed each WCC's subquery with its internal (non-crossing) patterns
  // (Algorithm 2 line 2).
  std::vector<std::vector<size_t>> per_component(components.num_components);
  for (size_t i = 0; i < query.num_patterns(); ++i) {
    if (crossing_pattern[i]) continue;
    uint32_t c = components.vertex_component[query.SubjectVertex(i)];
    per_component[c].push_back(i);
  }

  // Reattach crossing edges one by one (lines 3-12).
  for (size_t i = 0; i < query.num_patterns(); ++i) {
    if (!crossing_pattern[i]) continue;
    uint32_t cs = components.vertex_component[query.SubjectVertex(i)];
    uint32_t co = components.vertex_component[query.ObjectVertex(i)];
    if (cs == co) {
      per_component[cs].push_back(i);  // becomes Type-I extended
    } else if (components.component_size[cs] <=
               components.component_size[co]) {
      per_component[co].push_back(i);  // becomes Type-II extended
    } else {
      per_component[cs].push_back(i);
    }
  }

  // Keep subqueries that own at least one pattern (lines 13-15: a
  // single-vertex WCC with no edges is dropped; its bindings are covered
  // by whichever subquery took its incident edges).
  Decomposition result;
  for (std::vector<size_t>& sub : per_component) {
    if (!sub.empty()) result.subqueries.push_back(std::move(sub));
  }
  return result;
}

QueryPlan PlanQuery(const sparql::QueryGraph& query,
                    const partition::Partitioning& partitioning,
                    const rdf::RdfGraph& graph) {
  QueryPlan plan;
  plan.classification = ClassifyQuery(query, partitioning, graph);
  if (plan.classification.independently_executable()) {
    // One subquery holding every pattern; union-only execution.
    plan.decomposition.subqueries.emplace_back();
    for (size_t i = 0; i < query.num_patterns(); ++i) {
      plan.decomposition.subqueries.back().push_back(i);
    }
  } else {
    plan.decomposition =
        DecomposeQuery(query, plan.classification.crossing_pattern);
  }
  return plan;
}

}  // namespace mpc::exec

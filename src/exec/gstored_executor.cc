#include "exec/gstored_executor.h"

#include <algorithm>

#include "common/timer.h"
#include "exec/join.h"
#include "exec/query_classifier.h"
#include "sparql/shape.h"

namespace mpc::exec {

using store::BgpMatcher;
using store::BindingTable;

Result<QueryResponse> GStoredExecutor::Execute(
    const QueryRequest& request) const {
  if (request.options.strategy == ExecStrategy::kDistributed) {
    return Status::InvalidArgument(
        "GStoredExecutor cannot serve ExecStrategy::kDistributed");
  }
  Result<sparql::QueryGraph> query = ResolveRequestQuery(request);
  if (!query.ok()) return query.status();

  QueryResponse response;
  response.generation = options_.generation;
  Result<BindingTable> result = ExecuteParsed(*query, &response.stats);
  if (!result.ok()) return AttachQueryText(result.status(), request.text);
  response.bindings = std::move(*result);
  return response;
}

Result<BindingTable> GStoredExecutor::ExecuteParsed(
    const sparql::QueryGraph& query, ExecutionStats* stats) const {
  *stats = ExecutionStats{};
  if (cluster_.partitioning().kind() !=
      partition::PartitioningKind::kVertexDisjoint) {
    return Status::InvalidArgument(
        "gStoreD-style execution requires a vertex-disjoint partitioning");
  }

  Timer timer;
  Classification cls =
      ClassifyQuery(query, cluster_.partitioning(), graph_);
  stats->cls = cls.cls;

  // Fragments: the WCCs left after cutting every crossing edge (each
  // with >= 1 pattern), plus one single-edge fragment per crossing edge.
  // This is the partial-match granularity of partial evaluation: every
  // crossing edge's bindings are materialized and assembled.
  sparql::QueryComponents components =
      sparql::DecomposeAfterRemoval(query, cls.crossing_pattern);
  std::vector<std::vector<size_t>> fragments(components.num_components);
  for (size_t i = 0; i < query.num_patterns(); ++i) {
    if (cls.crossing_pattern[i]) continue;
    fragments[components.vertex_component[query.SubjectVertex(i)]]
        .push_back(i);
  }
  fragments.erase(std::remove_if(fragments.begin(), fragments.end(),
                                 [](const auto& f) { return f.empty(); }),
                  fragments.end());
  for (size_t i = 0; i < query.num_patterns(); ++i) {
    if (cls.crossing_pattern[i]) fragments.push_back({i});
  }
  stats->num_subqueries = fragments.size();
  stats->independent = fragments.size() == 1;

  store::ResolvedQuery resolved = store::ResolveQuery(query, graph_);
  stats->decomposition_millis =
      timer.ElapsedMillis() + options_.network.DispatchMillis(cluster_.k());

  BgpMatcher::Options matcher_options;
  matcher_options.max_results = options_.max_rows;

  std::vector<BindingTable> fragment_tables;
  fragment_tables.reserve(fragments.size());
  for (const std::vector<size_t>& fragment : fragments) {
    double slowest = 0.0;
    BindingTable merged;
    for (uint32_t site = 0; site < cluster_.k(); ++site) {
      Timer site_timer;
      BindingTable local = BgpMatcher::Evaluate(
          cluster_.site(site), resolved, fragment, matcher_options);
      slowest = std::max(slowest, site_timer.ElapsedMillis());
      stats->local_rows += local.num_rows();
      stats->shipped_bytes += local.ByteSize();
      if (merged.var_ids.empty()) merged.var_ids = local.var_ids;
      for (auto& row : local.rows) merged.rows.push_back(std::move(row));
    }
    stats->local_eval_millis += slowest;
    merged.Deduplicate();
    fragment_tables.push_back(std::move(merged));
  }
  stats->network_millis = options_.network.TransferMillis(
      stats->shipped_bytes, cluster_.k() * fragments.size());

  timer.Reset();
  BindingTable final_table = JoinAll(std::move(fragment_tables));
  final_table.Deduplicate();
  stats->join_millis = timer.ElapsedMillis();

  final_table.SortColumnsAscending();
  stats->num_results = final_table.num_rows();
  stats->total_millis = stats->decomposition_millis +
                        stats->local_eval_millis + stats->join_millis +
                        stats->network_millis;
  return final_table;
}

}  // namespace mpc::exec

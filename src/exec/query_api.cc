#include "exec/query_api.h"

#include "sparql/parser.h"

namespace mpc::exec {

const char* ExecStrategyName(ExecStrategy strategy) {
  switch (strategy) {
    case ExecStrategy::kAuto:
      return "auto";
    case ExecStrategy::kDistributed:
      return "distributed";
    case ExecStrategy::kGstored:
      return "gstored";
  }
  return "unknown";
}

Status AttachQueryText(const Status& status, const std::string& text) {
  if (status.ok() || text.empty()) return status;
  constexpr size_t kMaxShown = 200;
  std::string shown = text.substr(0, kMaxShown);
  // Collapse newlines so the query stays one greppable log line.
  for (char& c : shown) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  if (text.size() > kMaxShown) shown += "...";
  std::string msg = status.message() + " in query: \"" + shown + "\"";
  switch (status.code()) {
    case StatusCode::kParseError:
      return Status::ParseError(std::move(msg));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

Result<sparql::QueryGraph> ResolveRequestQuery(const QueryRequest& request) {
  if (request.query.has_value()) return *request.query;
  Result<sparql::QueryGraph> parsed =
      sparql::SparqlParser::Parse(request.text);
  if (!parsed.ok()) return AttachQueryText(parsed.status(), request.text);
  return parsed;
}

}  // namespace mpc::exec

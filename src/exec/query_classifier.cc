#include "exec/query_classifier.h"

#include "sparql/shape.h"

namespace mpc::exec {

const char* IeqClassName(IeqClass cls) {
  switch (cls) {
    case IeqClass::kInternal:
      return "internal";
    case IeqClass::kExtendedTypeI:
      return "extended-type-I";
    case IeqClass::kExtendedTypeII:
      return "extended-type-II";
    case IeqClass::kNonIeq:
      return "non-IEQ";
  }
  return "?";
}

Classification ClassifyQuery(const sparql::QueryGraph& query,
                             const partition::Partitioning& partitioning,
                             const rdf::RdfGraph& graph) {
  Classification result;
  result.crossing_pattern.assign(query.num_patterns(), false);

  const auto& patterns = query.patterns();
  for (size_t i = 0; i < patterns.size(); ++i) {
    const sparql::QueryTerm& pred = patterns[i].predicate;
    bool crossing;
    if (pred.is_variable()) {
      // Footnote 1: a variable predicate can match any property,
      // including crossing ones; treat conservatively as crossing.
      crossing = true;
    } else {
      rdf::PropertyId p = graph.property_dict().Lookup(pred.text);
      crossing =
          (p != rdf::kInvalidVertex) && partitioning.IsCrossingProperty(p);
    }
    if (crossing) {
      result.crossing_pattern[i] = true;
      ++result.num_crossing_patterns;
    }
  }

  if (result.num_crossing_patterns == 0) {
    result.cls = IeqClass::kInternal;
    return result;
  }

  sparql::QueryComponents components =
      sparql::DecomposeAfterRemoval(query, result.crossing_pattern);

  if (components.num_components == 1) {
    result.cls = IeqClass::kExtendedTypeI;
    return result;
  }

  // Count multi-vertex WCCs; Type-II allows at most one (the core q_i).
  uint32_t core = UINT32_MAX;
  size_t num_multi = 0;
  for (uint32_t c = 0; c < components.num_components; ++c) {
    if (components.component_size[c] >= 2) {
      core = c;
      ++num_multi;
    }
  }
  if (num_multi > 1) {
    result.cls = IeqClass::kNonIeq;
    return result;
  }

  if (num_multi == 1) {
    // Every crossing edge must touch the core (condition 2 of
    // Definition 5.3: no crossing edges between two satellites).
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (!result.crossing_pattern[i]) continue;
      uint32_t cs = components.vertex_component[query.SubjectVertex(i)];
      uint32_t co = components.vertex_component[query.ObjectVertex(i)];
      if (cs != core && co != core) {
        result.cls = IeqClass::kNonIeq;
        return result;
      }
    }
    result.cls = IeqClass::kExtendedTypeII;
    return result;
  }

  // All WCCs are singletons: every pattern is crossing. Type-II holds iff
  // some vertex (the chosen core) touches every edge — i.e. the query is
  // a star of crossing edges.
  for (uint32_t candidate :
       {query.SubjectVertex(0), query.ObjectVertex(0)}) {
    bool covers_all = true;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (query.SubjectVertex(i) != candidate &&
          query.ObjectVertex(i) != candidate) {
        covers_all = false;
        break;
      }
    }
    if (covers_all) {
      result.cls = IeqClass::kExtendedTypeII;
      return result;
    }
  }
  result.cls = IeqClass::kNonIeq;
  return result;
}

bool IsVpLocalQuery(const sparql::QueryGraph& query,
                    const partition::Partitioning& partitioning,
                    const rdf::RdfGraph& graph) {
  if (query.has_variable_predicate()) return false;
  uint32_t home = UINT32_MAX;
  for (const std::string& pred : query.ConstantPredicates()) {
    rdf::PropertyId p = graph.property_dict().Lookup(pred);
    if (p == rdf::kInvalidVertex) continue;  // matches nothing anywhere
    uint32_t site = partitioning.PropertyHome(p);
    if (home == UINT32_MAX) {
      home = site;
    } else if (home != site) {
      return false;
    }
  }
  return true;
}

}  // namespace mpc::exec

#include "exec/cluster.h"

#include <algorithm>

#include "common/timer.h"

namespace mpc::exec {

Cluster Cluster::Build(partition::Partitioning partitioning) {
  Cluster cluster;
  cluster.partitioning_ = std::move(partitioning);
  cluster.stores_.reserve(cluster.partitioning_.k());
  cluster.num_properties_ =
      cluster.partitioning_.crossing_property_mask().size();
  cluster.property_present_.assign(
      static_cast<size_t>(cluster.partitioning_.k()) *
          cluster.num_properties_,
      false);
  double max_millis = 0.0;
  for (uint32_t i = 0; i < cluster.partitioning_.k(); ++i) {
    const partition::Partition& p = cluster.partitioning_.partition(i);
    std::vector<rdf::Triple> triples = p.internal_edges;
    triples.insert(triples.end(), p.crossing_edges.begin(),
                   p.crossing_edges.end());
    for (const rdf::Triple& t : triples) {
      cluster.property_present_[i * cluster.num_properties_ + t.property] =
          true;
    }
    Timer timer;
    cluster.stores_.emplace_back(std::move(triples));
    max_millis = std::max(max_millis, timer.ElapsedMillis());
  }
  cluster.loading_millis_ = max_millis;
  return cluster;
}

size_t Cluster::MemoryUsage() const {
  size_t bytes = 0;
  for (const store::TripleStore& s : stores_) bytes += s.MemoryUsage();
  return bytes;
}

}  // namespace mpc::exec

#include "exec/cluster.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace mpc::exec {

Cluster Cluster::Build(partition::Partitioning partitioning,
                       int num_threads) {
  const int threads = ResolveNumThreads(num_threads);
  Cluster cluster;
  cluster.partitioning_ = std::move(partitioning);
  const size_t k = cluster.partitioning_.k();
  cluster.num_properties_ =
      cluster.partitioning_.crossing_property_mask().size();
  cluster.property_present_.assign(k * cluster.num_properties_, 0);
  cluster.stores_.resize(k);
  std::vector<double> site_millis(k, 0.0);
  // Sites touch disjoint store slots and disjoint presence-map rows, so
  // they build independently; every output lands in a per-site slot.
  ParallelFor(0, k, 1, threads, [&](size_t i) {
    const partition::Partition& p =
        cluster.partitioning_.partition(static_cast<uint32_t>(i));
    std::vector<rdf::Triple> triples = p.internal_edges;
    triples.insert(triples.end(), p.crossing_edges.begin(),
                   p.crossing_edges.end());
    for (const rdf::Triple& t : triples) {
      cluster.property_present_[i * cluster.num_properties_ + t.property] = 1;
    }
    Timer timer;
    cluster.stores_[i] = store::TripleStore(std::move(triples));
    site_millis[i] = timer.ElapsedMillis();
  });
  cluster.loading_millis_ =
      site_millis.empty()
          ? 0.0
          : *std::max_element(site_millis.begin(), site_millis.end());
  return cluster;
}

size_t Cluster::MemoryUsage() const {
  size_t bytes = 0;
  for (const store::TripleStore& s : stores_) bytes += s.MemoryUsage();
  return bytes;
}

}  // namespace mpc::exec

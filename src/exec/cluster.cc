#include "exec/cluster.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace mpc::exec {

Cluster Cluster::Build(partition::Partitioning partitioning,
                       int num_threads) {
  const int threads = ResolveNumThreads(num_threads);
  Cluster cluster;
  cluster.partitioning_ = std::move(partitioning);
  const size_t k = cluster.partitioning_.k();
  cluster.num_properties_ =
      cluster.partitioning_.crossing_property_mask().size();
  cluster.property_present_.assign(k * cluster.num_properties_, 0);
  cluster.stores_.resize(k);
  std::vector<double> site_millis(k, 0.0);
  // Sites touch disjoint store slots and disjoint presence-map rows, so
  // they build independently; every output lands in a per-site slot.
  ParallelFor(0, k, 1, threads, [&](size_t i) {
    const partition::Partition& p =
        cluster.partitioning_.partition(static_cast<uint32_t>(i));
    std::vector<rdf::Triple> triples = p.internal_edges;
    triples.insert(triples.end(), p.crossing_edges.begin(),
                   p.crossing_edges.end());
    for (const rdf::Triple& t : triples) {
      cluster.property_present_[i * cluster.num_properties_ + t.property] = 1;
    }
    Timer timer;
    cluster.stores_[i] = store::TripleStore(std::move(triples));
    site_millis[i] = timer.ElapsedMillis();
  });
  cluster.loading_millis_ =
      site_millis.empty()
          ? 0.0
          : *std::max_element(site_millis.begin(), site_millis.end());
  return cluster;
}

ReplicaCoverage Cluster::ComputeReplicaCoverage(
    const SiteAvailability& avail) const {
  ReplicaCoverage coverage;
  if (avail.num_down() == 0) return coverage;
  const bool vertex_disjoint =
      partitioning_.kind() == partition::PartitioningKind::kVertexDisjoint;
  if (!vertex_disjoint) {
    // Edge-disjoint (VP): no replication at all — a down site's triples
    // are simply gone.
    for (uint32_t site : avail.DownSites()) {
      coverage.lost_triples += partitioning_.partition(site).num_triples();
    }
    return coverage;
  }

  const partition::VertexAssignment& assignment = partitioning_.assignment();
  // Distinct down-owned vertices with a live replica: walk the live
  // sites' extended-vertex lists (already sorted, deduped per site).
  std::vector<uint8_t> replicated(assignment.part.size(), 0);
  for (uint32_t site = 0; site < k(); ++site) {
    if (!avail.IsUp(site)) continue;
    for (rdf::VertexId v : partitioning_.partition(site).extended_vertices) {
      if (!avail.IsUp(assignment.part[v])) replicated[v] = 1;
    }
  }
  for (uint32_t site : avail.DownSites()) {
    const partition::Partition& p = partitioning_.partition(site);
    coverage.failed_owned_vertices += p.num_owned_vertices;
    // Internal edges exist only at the owner: all lost.
    coverage.lost_triples += p.internal_edges.size();
    // A crossing edge survives unless both endpoint owners are down; it
    // is stored at both, so count it once (at the smaller owner).
    for (const rdf::Triple& t : p.crossing_edges) {
      const uint32_t so = assignment.part[t.subject];
      const uint32_t oo = assignment.part[t.object];
      if (!avail.IsUp(so) && !avail.IsUp(oo) && site == std::min(so, oo)) {
        ++coverage.lost_triples;
      }
    }
  }
  for (size_t v = 0; v < replicated.size(); ++v) {
    coverage.replicated_on_live += replicated[v];
  }
  return coverage;
}

size_t Cluster::MemoryUsage() const {
  size_t bytes = 0;
  for (const store::TripleStore& s : stores_) bytes += s.MemoryUsage();
  return bytes;
}

}  // namespace mpc::exec

#include "exec/cluster.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "partition/partition_io.h"
#include "storage/delta_overlay.h"
#include "storage/segment_store.h"
#include "storage/segment_writer.h"

namespace mpc::exec {

Cluster Cluster::Build(partition::Partitioning partitioning,
                       int num_threads) {
  const int threads = ResolveNumThreads(num_threads);
  Cluster cluster;
  cluster.partitioning_ = std::move(partitioning);
  const size_t k = cluster.partitioning_.k();
  cluster.num_properties_ =
      cluster.partitioning_.crossing_property_mask().size();
  cluster.property_present_.assign(k * cluster.num_properties_, 0);
  cluster.stores_.resize(k);
  std::vector<double> site_millis(k, 0.0);
  // Sites touch disjoint store slots and disjoint presence-map rows, so
  // they build independently; every output lands in a per-site slot.
  ParallelFor(0, k, 1, threads, [&](size_t i) {
    const partition::Partition& p =
        cluster.partitioning_.partition(static_cast<uint32_t>(i));
    std::vector<rdf::Triple> triples = p.internal_edges;
    triples.insert(triples.end(), p.crossing_edges.begin(),
                   p.crossing_edges.end());
    for (const rdf::Triple& t : triples) {
      cluster.property_present_[i * cluster.num_properties_ + t.property] = 1;
    }
    Timer timer;
    cluster.stores_[i] =
        std::make_shared<const store::TripleStore>(std::move(triples));
    site_millis[i] = timer.ElapsedMillis();
  });
  cluster.loading_millis_ =
      site_millis.empty()
          ? 0.0
          : *std::max_element(site_millis.begin(), site_millis.end());
  return cluster;
}

void Cluster::FillPropertyPresence() {
  const size_t k = partitioning_.k();
  num_properties_ = partitioning_.crossing_property_mask().size();
  property_present_.assign(k * num_properties_, 0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t p = 0; p < num_properties_; ++p) {
      if (stores_[i]->PropertyCount(static_cast<rdf::PropertyId>(p)) > 0) {
        property_present_[i * num_properties_ + p] = 1;
      }
    }
  }
}

Result<Cluster> Cluster::BuildFromSegments(partition::Partitioning partitioning,
                                           const std::string& dir,
                                           int num_threads) {
  const int threads = ResolveNumThreads(num_threads);
  Result<uint64_t> fingerprint = partition::PartitionIo::Fingerprint(dir);
  if (!fingerprint.ok()) return fingerprint.status();

  Cluster cluster;
  cluster.partitioning_ = std::move(partitioning);
  const size_t k = cluster.partitioning_.k();
  cluster.stores_.resize(k);
  std::vector<double> site_millis(k, 0.0);
  std::vector<Status> site_status(k);
  ParallelFor(0, k, 1, threads, [&](size_t i) {
    Timer timer;
    storage::SegmentStore::OpenOptions open_options;
    open_options.expected_fingerprint = *fingerprint;
    Result<storage::SegmentStore> segment = storage::SegmentStore::Open(
        storage::SegmentPath(dir, static_cast<uint32_t>(i)), open_options);
    if (!segment.ok()) {
      site_status[i] = segment.status();
      return;
    }
    if (segment->header().site != i || segment->header().k != k) {
      site_status[i] = Status::InvalidArgument(
          segment->path() + ": segment is for site " +
          std::to_string(segment->header().site) + "/" +
          std::to_string(segment->header().k) + ", expected " +
          std::to_string(i) + "/" + std::to_string(k));
      return;
    }
    cluster.stores_[i] =
        std::make_shared<const storage::SegmentStore>(std::move(*segment));
    site_millis[i] = timer.ElapsedMillis();
  });
  for (const Status& st : site_status) {
    if (!st.ok()) return st;
  }
  cluster.FillPropertyPresence();
  cluster.loading_millis_ =
      site_millis.empty()
          ? 0.0
          : *std::max_element(site_millis.begin(), site_millis.end());
  return cluster;
}

Cluster Cluster::BuildOverlay(
    partition::Partitioning partitioning,
    std::vector<std::shared_ptr<const store::TripleSource>> bases,
    const std::vector<rdf::Triple>& added,
    const std::vector<rdf::Triple>& deleted) {
  Cluster cluster;
  cluster.partitioning_ = std::move(partitioning);
  const size_t k = cluster.partitioning_.k();
  Timer timer;
  // A triple lives at its subject's owner site and (when crossing) its
  // object's owner too — the vertex-disjoint placement rule — so each
  // delta triple is routed to every site whose copy it affects.
  const partition::VertexAssignment& assignment =
      cluster.partitioning_.assignment();
  std::vector<std::vector<rdf::Triple>> site_added(k);
  std::vector<std::vector<rdf::Triple>> site_deleted(k);
  auto route = [&](const rdf::Triple& t,
                   std::vector<std::vector<rdf::Triple>>& out) {
    if (t.subject >= assignment.part.size() ||
        t.object >= assignment.part.size()) {
      return;  // vertex unknown to this partitioning: affects no site
    }
    const uint32_t so = assignment.part[t.subject];
    const uint32_t oo = assignment.part[t.object];
    out[so].push_back(t);
    if (oo != so) out[oo].push_back(t);
  };
  for (const rdf::Triple& t : added) route(t, site_added);
  for (const rdf::Triple& t : deleted) route(t, site_deleted);

  cluster.stores_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    cluster.stores_.push_back(std::make_shared<storage::DeltaOverlaySource>(
        bases[i], std::move(site_added[i]), std::move(site_deleted[i])));
  }
  cluster.FillPropertyPresence();
  cluster.loading_millis_ = timer.ElapsedMillis();
  return cluster;
}

ReplicaCoverage ClusterBackend::ComputeReplicaCoverage(
    const SiteAvailability& avail) const {
  ReplicaCoverage coverage;
  if (avail.num_down() == 0) return coverage;
  const bool vertex_disjoint =
      partitioning_.kind() == partition::PartitioningKind::kVertexDisjoint;
  if (!vertex_disjoint) {
    // Edge-disjoint (VP): no replication at all — a down site's triples
    // are simply gone.
    for (uint32_t site : avail.DownSites()) {
      coverage.lost_triples += partitioning_.partition(site).num_triples();
    }
    return coverage;
  }

  const partition::VertexAssignment& assignment = partitioning_.assignment();
  // Distinct down-owned vertices with a live replica: walk the live
  // sites' extended-vertex lists (already sorted, deduped per site).
  std::vector<uint8_t> replicated(assignment.part.size(), 0);
  for (uint32_t site = 0; site < k(); ++site) {
    if (!avail.IsUp(site)) continue;
    for (rdf::VertexId v : partitioning_.partition(site).extended_vertices) {
      if (!avail.IsUp(assignment.part[v])) replicated[v] = 1;
    }
  }
  for (uint32_t site : avail.DownSites()) {
    const partition::Partition& p = partitioning_.partition(site);
    coverage.failed_owned_vertices += p.num_owned_vertices;
    // Internal edges exist only at the owner: all lost.
    coverage.lost_triples += p.internal_edges.size();
    // A crossing edge survives unless both endpoint owners are down; it
    // is stored at both, so count it once (at the smaller owner).
    for (const rdf::Triple& t : p.crossing_edges) {
      const uint32_t so = assignment.part[t.subject];
      const uint32_t oo = assignment.part[t.object];
      if (!avail.IsUp(so) && !avail.IsUp(oo) && site == std::min(so, oo)) {
        ++coverage.lost_triples;
      }
    }
  }
  for (size_t v = 0; v < replicated.size(); ++v) {
    coverage.replicated_on_live += replicated[v];
  }
  return coverage;
}

store::BindingTable SchemaTable(const store::ResolvedQuery& resolved,
                                std::span<const size_t> pattern_indices) {
  // Mirrors BgpMatcher::Evaluate's column contract: variables used by
  // the selected patterns (impossible ones included), ascending.
  std::vector<uint32_t> columns;
  for (size_t idx : pattern_indices) {
    const store::ResolvedPattern& p = resolved.patterns[idx];
    if (p.s_is_var) columns.push_back(p.s);
    if (p.p_is_var) columns.push_back(p.p);
    if (p.o_is_var) columns.push_back(p.o);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  store::BindingTable table;
  table.var_ids = std::move(columns);
  return table;
}

SiteEvalReply EvaluateSiteRequest(const store::TripleSource& store,
                                  const store::ResolvedQuery& resolved,
                                  const SiteEvalRequest& request) {
  SiteEvalReply reply;
  Timer timer;
  store::BgpMatcher::Options matcher_options;
  matcher_options.max_results = request.max_rows;
  store::BindingTable local = store::BgpMatcher::Evaluate(
      store, resolved, request.pattern_indices, matcher_options);
  if (request.var_filters != nullptr) {
    // Drop rows whose join keys cannot match any earlier subquery's
    // bindings; this happens site-side, before shipping.
    const auto& filters = *request.var_filters;
    size_t kept = 0;
    for (size_t r = 0; r < local.rows.size(); ++r) {
      bool may_join = true;
      for (size_t col = 0; col < local.var_ids.size(); ++col) {
        const auto& filter = filters[local.var_ids[col]];
        if (filter != nullptr && !filter->MayContain(local.rows[r][col])) {
          may_join = false;
          break;
        }
      }
      if (may_join) {
        // Guard against self-move: moving rows[r] onto itself would
        // leave an empty row behind.
        if (kept != r) local.rows[kept] = std::move(local.rows[r]);
        ++kept;
      }
    }
    reply.bloom_dropped = local.rows.size() - kept;
    local.rows.resize(kept);
  }
  reply.eval_millis = timer.ElapsedMillis();
  reply.table = std::move(local);
  return reply;
}

Status Cluster::EvaluateOnSite(uint32_t site,
                               const store::ResolvedQuery& resolved,
                               const SiteEvalRequest& request,
                               const SiteCallPolicy& /*policy*/,
                               SiteEvalReply* reply) const {
  *reply = EvaluateSiteRequest(*stores_[site], resolved, request);
  return Status::Ok();
}

size_t Cluster::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& s : stores_) bytes += s->MemoryUsage();
  return bytes;
}

}  // namespace mpc::exec

#ifndef MPC_EXEC_SITE_WORKER_H_
#define MPC_EXEC_SITE_WORKER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace mpc::exec {

/// Configuration for one `mpc site` worker process: which partition it
/// serves, where it listens, and the fault/drain hooks.
struct SiteWorkerOptions {
  std::string graph_path;     // same file the coordinator parses
  std::string partition_dir;  // PartitionIo::Save output
  /// "memory" re-parses the graph and builds an in-memory TripleStore;
  /// "segment" mmaps `mpc pack`'s partition_<site>.mpcseg instead — no
  /// N-Triples parse at all (the RPC protocol ships resolved ids), so
  /// worker cold start is the segment open. A Reload frame (pushed
  /// after a repartition, which invalidates pack-time segments) always
  /// rebuilds in memory.
  std::string store_kind = "memory";
  uint32_t site = 0;
  std::string socket_path;
  /// Generation of the partition data on disk; echoed in Hello so the
  /// coordinator can detect a restarted worker that loaded stale data.
  uint64_t generation = 0;
  /// Chaos hook: SIGKILL this process right before sending the reply to
  /// its Nth evaluation (0 = disabled). The coordinator then sees the
  /// stream die mid-query — the survivable fault the failover tests
  /// exercise.
  uint64_t kill_after_queries = 0;
  int num_threads = 1;
  /// Graceful-drain flag, set from a SIGTERM/SIGINT handler. Checked
  /// between frames: an in-flight evaluation finishes and its reply is
  /// sent before the worker returns.
  const std::atomic<bool>* stop = nullptr;
  /// Total evaluations served, for the CLI's exit report.
  uint64_t* queries_served = nullptr;
};

/// Runs one site worker to completion: loads the graph and this site's
/// partition, listens on the socket, answers Hello/Ping/Eval/Reload
/// frames until the stop flag drains it. Returns Ok on a clean drain;
/// any malformed frame is answered with an error frame (or, if the
/// stream itself is torn, the connection is dropped) — never a crash.
Status RunSiteWorker(const SiteWorkerOptions& options);

}  // namespace mpc::exec

#endif  // MPC_EXEC_SITE_WORKER_H_

#ifndef MPC_EXEC_NETWORK_MODEL_H_
#define MPC_EXEC_NETWORK_MODEL_H_

#include <cmath>
#include <cstddef>

namespace mpc::exec {

/// Simulated interconnect, substituting for the paper's MPICH cluster
/// fabric. Costs are deterministic: per-message latency plus
/// bytes / bandwidth. The executor charges it for (a) dispatching a query
/// to the k sites and (b) shipping subquery result tables to the
/// coordinator; these are the communication components the paper's
/// query-decomposition and join times absorb.
struct NetworkModel {
  /// One-way message latency in milliseconds (default: commodity LAN).
  double latency_ms = 0.5;
  /// Bandwidth in bytes per millisecond. The default (1 MB/s) is 100x
  /// below a real LAN on purpose: the repro datasets are ~1000x smaller
  /// than the paper's, so intermediate-result tables are ~1000x smaller
  /// too. Scaling the simulated bandwidth down restores the paper
  /// testbed's computation-to-communication ratio, which is what makes
  /// communication-heavy plans (VP's per-pattern shipping, decomposed
  /// non-IEQs) pay their true relative cost. Set to 1e5 for physical
  /// 100 MB/s accounting.
  double bytes_per_ms = 1e3;

  /// Time to move `bytes` in `num_messages` messages.
  double TransferMillis(size_t bytes, size_t num_messages) const {
    return latency_ms * static_cast<double>(num_messages) +
           static_cast<double>(bytes) / bytes_per_ms;
  }

  /// Broadcast of a (small) query string to k sites.
  double DispatchMillis(size_t k) const {
    return latency_ms * static_cast<double>(k);
  }

  // --- Fault handling (see DESIGN.md "Fault model"). ---

  /// Per-site per-attempt deadline in milliseconds; 0 disables deadlines.
  /// Deadline violations are driven by the seeded FaultModel (a slowdown
  /// fault misses the deadline), never by wall-clock measurements, so
  /// retry decisions are reproducible at any thread count.
  double site_timeout_ms = 0.0;
  /// Retries after the first attempt before a site-subquery is declared
  /// failed (crashes are never retried — the site is gone).
  int max_retries = 2;
  /// Base of the exponential backoff charged to simulated time between
  /// attempts: attempt a waits retry_backoff_ms * 2^a.
  double retry_backoff_ms = 1.0;

  bool has_deadline() const { return site_timeout_ms > 0.0; }

  /// Simulated wait before retry number `attempt` (0-based).
  double BackoffMillis(int attempt) const {
    return retry_backoff_ms * std::ldexp(1.0, attempt);
  }

  /// Time for the coordinator to notice a dead site: the full deadline
  /// when one is configured, otherwise one RPC latency (connection
  /// refused).
  double FailureDetectMillis() const {
    return has_deadline() ? site_timeout_ms : latency_ms;
  }
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_NETWORK_MODEL_H_

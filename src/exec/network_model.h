#ifndef MPC_EXEC_NETWORK_MODEL_H_
#define MPC_EXEC_NETWORK_MODEL_H_

#include <cstddef>

namespace mpc::exec {

/// Simulated interconnect, substituting for the paper's MPICH cluster
/// fabric. Costs are deterministic: per-message latency plus
/// bytes / bandwidth. The executor charges it for (a) dispatching a query
/// to the k sites and (b) shipping subquery result tables to the
/// coordinator; these are the communication components the paper's
/// query-decomposition and join times absorb.
struct NetworkModel {
  /// One-way message latency in milliseconds (default: commodity LAN).
  double latency_ms = 0.5;
  /// Bandwidth in bytes per millisecond. The default (1 MB/s) is 100x
  /// below a real LAN on purpose: the repro datasets are ~1000x smaller
  /// than the paper's, so intermediate-result tables are ~1000x smaller
  /// too. Scaling the simulated bandwidth down restores the paper
  /// testbed's computation-to-communication ratio, which is what makes
  /// communication-heavy plans (VP's per-pattern shipping, decomposed
  /// non-IEQs) pay their true relative cost. Set to 1e5 for physical
  /// 100 MB/s accounting.
  double bytes_per_ms = 1e3;

  /// Time to move `bytes` in `num_messages` messages.
  double TransferMillis(size_t bytes, size_t num_messages) const {
    return latency_ms * static_cast<double>(num_messages) +
           static_cast<double>(bytes) / bytes_per_ms;
  }

  /// Broadcast of a (small) query string to k sites.
  double DispatchMillis(size_t k) const {
    return latency_ms * static_cast<double>(k);
  }
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_NETWORK_MODEL_H_

#ifndef MPC_EXEC_FAULT_MODEL_H_
#define MPC_EXEC_FAULT_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpc::exec {

/// What the fault model injects for one (site, subquery-step, attempt)
/// RPC of a simulated query.
enum class FaultKind {
  kNone = 0,
  /// The site stops responding and stays down for the rest of the query
  /// (fail-stop). Its internal data is unreachable; only crossing-edge
  /// replicas on live sites survive.
  kCrash,
  /// One lost/errored RPC; the same site succeeds on a later attempt.
  kTransient,
  /// The site answers, but slower by `FaultOptions::slowdown_factor`.
  /// With a configured site deadline the slow attempt misses it and is
  /// retried; without one the extra latency is only charged to the
  /// simulated clock.
  kSlowdown,
};

const char* FaultKindName(FaultKind kind);

/// Configuration of the injected failure distribution. All sampling is a
/// pure function of (seed, site, step, attempt), so a query's fault
/// schedule is identical at every thread count and on every rerun —
/// faults are reproducible test inputs, not noise.
struct FaultOptions {
  uint64_t seed = 0;
  /// P[site crashes at a given subquery step] (sampled once per
  /// (site, step), before the first attempt; crashes are sticky).
  double crash_rate = 0.0;
  /// P[one attempt fails transiently].
  double transient_rate = 0.0;
  /// P[one attempt is slowed by slowdown_factor].
  double slowdown_rate = 0.0;
  double slowdown_factor = 8.0;
  /// Sites that are down before the query starts (deterministic
  /// alternative to crash_rate; the CLI's --fail-sites).
  std::vector<uint32_t> fail_sites;

  bool any() const {
    return crash_rate > 0.0 || transient_rate > 0.0 ||
           slowdown_rate > 0.0 || !fail_sites.empty();
  }
};

/// Deterministic, seeded fault injector for the simulated cluster. The
/// model is stateless after construction: every decision hashes
/// (seed, site, step, attempt), so concurrent probing from the executor's
/// worker threads is race-free and the schedule never depends on timing.
class FaultModel {
 public:
  FaultModel() = default;
  explicit FaultModel(FaultOptions options);

  bool enabled() const { return options_.any(); }
  const FaultOptions& options() const { return options_; }

  /// The fault injected into attempt `attempt` of subquery step `step`
  /// at `site`. Crashes are only sampled at attempt 0 (a site that
  /// survived the first attempt of a step does not crash mid-retry).
  FaultKind Sample(uint32_t site, size_t step, int attempt) const;

  /// True iff the site is already down when step `step` begins: it is
  /// listed in fail_sites, or a crash was sampled at an earlier step.
  bool DownBefore(uint32_t site, size_t step) const;

 private:
  double Uniform(uint32_t site, size_t step, int attempt) const;
  bool InFailList(uint32_t site) const;

  FaultOptions options_;
};

}  // namespace mpc::exec

#endif  // MPC_EXEC_FAULT_MODEL_H_

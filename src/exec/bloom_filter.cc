#include "exec/bloom_filter.h"

#include <algorithm>

#include "common/hash.h"

namespace mpc::exec {

namespace {

/// Next power of two >= x (so probe positions are a cheap mask).
uint64_t NextPow2(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_items) {
  // ~9.6 bits per item targets ~1% FPR with 7 probes.
  uint64_t bits = NextPow2(std::max<uint64_t>(
      256, static_cast<uint64_t>(expected_items) * 10));
  bits_.assign(bits, false);
  mask_ = bits - 1;
}

uint64_t BloomFilter::Probe(uint32_t value, uint32_t i) const {
  uint64_t h1 = HashU64(value);
  uint64_t h2 = HashU64(static_cast<uint64_t>(value) | (1ULL << 40));
  return (h1 + static_cast<uint64_t>(i) * (h2 | 1)) & mask_;
}

void BloomFilter::Insert(uint32_t value) {
  for (uint32_t i = 0; i < kNumProbes; ++i) bits_[Probe(value, i)] = true;
}

std::vector<uint8_t> BloomFilter::ToBytes() const {
  std::vector<uint8_t> bytes(bits_.size() / 8, 0);
  for (size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) bytes[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  return bytes;
}

BloomFilter BloomFilter::FromBytes(std::span<const uint8_t> bytes) {
  BloomFilter filter;
  filter.bits_.assign(bytes.size() * 8, false);
  for (size_t i = 0; i < filter.bits_.size(); ++i) {
    filter.bits_[i] = (bytes[i / 8] >> (i % 8)) & 1u;
  }
  filter.mask_ = filter.bits_.empty() ? 0 : filter.bits_.size() - 1;
  return filter;
}

bool BloomFilter::MayContain(uint32_t value) const {
  for (uint32_t i = 0; i < kNumProbes; ++i) {
    if (!bits_[Probe(value, i)]) return false;
  }
  return true;
}

}  // namespace mpc::exec

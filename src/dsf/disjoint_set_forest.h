#ifndef MPC_DSF_DISJOINT_SET_FOREST_H_
#define MPC_DSF_DISJOINT_SET_FOREST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "rdf/types.h"

namespace mpc::dsf {

/// A forest's complete internal state, exported verbatim for checkpoint
/// serialization (dynamic::CheckpointIo). The parent/rank arrays are
/// history-dependent — two forests over the same partition of the
/// universe can differ in tree shape — so recovery restores them
/// bit-for-bit rather than re-deriving them from edges.
struct DsfState {
  std::vector<uint32_t> parent;
  std::vector<uint8_t> rank;
  std::vector<uint32_t> size;
  size_t max_component_size = 0;
  size_t num_components = 0;

  bool operator==(const DsfState&) const = default;
};

/// Union-find over a fixed vertex universe [0, n) with union by rank,
/// path compression, per-tree sizes and an incrementally maintained
/// maximum component size — exactly the structure Section IV-D uses to
/// track WCC(G[L']) and evaluate Cost(L') (Definition 4.2) as properties
/// are added to the internal set.
class DisjointSetForest {
 public:
  /// Creates n singleton components.
  explicit DisjointSetForest(size_t n);

  /// Reconstructs a forest from an exported state, bit-for-bit. The
  /// state must be internally consistent (same-length arrays, parents in
  /// range); violations are rejected with InvalidArgument.
  static Result<DisjointSetForest> FromState(DsfState state);

  /// Snapshot of the complete internal state (see DsfState).
  DsfState ExportState() const {
    return DsfState{parent_, rank_, size_, max_component_size_,
                    num_components_};
  }

  size_t universe_size() const { return parent_.size(); }

  /// Extends the universe to [0, n), appending singleton components; a
  /// no-op when n <= universe_size(). Lets the incremental maintainer
  /// absorb never-seen vertices online without rebuilding the forest.
  void Grow(size_t n);

  /// Root of x's tree, compressing the path (two-pass).
  uint32_t Find(uint32_t x);

  /// Root of x's tree without mutation; O(tree height) = O(log n) under
  /// union by rank. Used by the non-destructive trial merge.
  uint32_t FindNoCompress(uint32_t x) const;

  /// Merges the components of a and b. Returns true if they were
  /// previously distinct.
  bool Union(uint32_t a, uint32_t b);

  /// Number of vertices in x's component.
  size_t ComponentSize(uint32_t x) { return size_[Find(x)]; }

  /// Size of the component whose root is `root`. `root` must be a root
  /// (e.g. obtained from FindNoCompress); no lookup is performed.
  size_t SizeOfRoot(uint32_t root) const { return size_[root]; }

  /// Size of the largest component — Cost(L') for the property set whose
  /// edges have been unioned in (Definition 4.2).
  size_t max_component_size() const { return max_component_size_; }

  size_t num_components() const { return num_components_; }

  /// Unions the endpoints of every edge; the paper's "for each edge uu'
  /// with property p, UNION(u, u')" loop.
  void AddEdges(std::span<const rdf::Triple> edges);

  /// Labels every vertex with a dense component id in [0, num_components).
  /// Component ids are assigned in order of first root appearance.
  std::vector<uint32_t> ComponentLabels();

  /// True if a and b are currently in the same component.
  bool Connected(uint32_t a, uint32_t b) {
    return Find(a) == Find(b);
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  std::vector<uint32_t> size_;
  size_t max_component_size_;
  size_t num_components_;
};

/// Cost({p}) per Definition 4.2 for a single property's edge span,
/// computed with a forest local to the touched vertices (O(|edges| α)
/// time and memory, independent of |V|). This is the per-property
/// precomputation of Algorithm 1 lines 2-4.
size_t MaxWccOfEdges(std::span<const rdf::Triple> edges);

/// Cost(base ∪ {p}): the largest component after notionally adding
/// `edges` on top of `base`, WITHOUT mutating base. Implements the
/// forest-merge of Section IV-D (DS(L_in ∪ {p}) from DS(L_in) and
/// DS({p})) lazily over the roots touched by `edges`, so one candidate
/// evaluation costs O(|edges(p)| α) instead of O(|V|).
size_t TrialMergeMaxComponent(const DisjointSetForest& base,
                              std::span<const rdf::Triple> edges);

}  // namespace mpc::dsf

#endif  // MPC_DSF_DISJOINT_SET_FOREST_H_

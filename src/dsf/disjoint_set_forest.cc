#include "dsf/disjoint_set_forest.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace mpc::dsf {

DisjointSetForest::DisjointSetForest(size_t n)
    : parent_(n),
      rank_(n, 0),
      size_(n, 1),
      max_component_size_(n == 0 ? 0 : 1),
      num_components_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
}

Result<DisjointSetForest> DisjointSetForest::FromState(DsfState state) {
  const size_t n = state.parent.size();
  if (state.rank.size() != n || state.size.size() != n) {
    return Status::InvalidArgument(
        "DSF state arrays disagree on the universe size");
  }
  for (uint32_t p : state.parent) {
    if (p >= n) {
      return Status::InvalidArgument("DSF state parent out of range");
    }
  }
  DisjointSetForest forest(0);
  forest.parent_ = std::move(state.parent);
  forest.rank_ = std::move(state.rank);
  forest.size_ = std::move(state.size);
  forest.max_component_size_ = state.max_component_size;
  forest.num_components_ = state.num_components;
  return forest;
}

void DisjointSetForest::Grow(size_t n) {
  if (n <= parent_.size()) return;
  const size_t old = parent_.size();
  parent_.resize(n);
  rank_.resize(n, 0);
  size_.resize(n, 1);
  for (size_t i = old; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  num_components_ += n - old;
  max_component_size_ = std::max<size_t>(max_component_size_, 1);
}

uint32_t DisjointSetForest::Find(uint32_t x) {
  assert(x < parent_.size());
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression: point every node on the path at the root.
  while (parent_[x] != root) {
    uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

uint32_t DisjointSetForest::FindNoCompress(uint32_t x) const {
  assert(x < parent_.size());
  while (parent_[x] != x) x = parent_[x];
  return x;
}

bool DisjointSetForest::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  // Union by rank; ties grow the rank of the surviving root.
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  max_component_size_ = std::max<size_t>(max_component_size_, size_[ra]);
  --num_components_;
  return true;
}

void DisjointSetForest::AddEdges(std::span<const rdf::Triple> edges) {
  for (const rdf::Triple& t : edges) {
    Union(t.subject, t.object);
  }
}

std::vector<uint32_t> DisjointSetForest::ComponentLabels() {
  std::vector<uint32_t> labels(parent_.size());
  std::unordered_map<uint32_t, uint32_t> root_to_label;
  root_to_label.reserve(num_components_);
  for (size_t v = 0; v < parent_.size(); ++v) {
    uint32_t root = Find(static_cast<uint32_t>(v));
    auto [it, inserted] = root_to_label.emplace(
        root, static_cast<uint32_t>(root_to_label.size()));
    labels[v] = it->second;
  }
  return labels;
}

namespace {

/// Tiny array-backed union-find over dense local ids; used by the two
/// touched-vertices-only computations below.
class LocalForest {
 public:
  /// Returns the local id for `key`, creating a singleton of weight
  /// `initial_size` on first sight.
  uint32_t LocalId(uint32_t key, uint32_t initial_size) {
    auto [it, inserted] = ids_.emplace(
        key, static_cast<uint32_t>(parent_.size()));
    if (inserted) {
      parent_.push_back(it->second);
      size_.push_back(initial_size);
      max_size_ = std::max<size_t>(max_size_, initial_size);
    }
    return it->second;
  }

  uint32_t Find(uint32_t x) {
    uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  void Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a);
    uint32_t rb = Find(b);
    if (ra == rb) return;
    // Union by size (weights differ, so size beats rank here).
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    max_size_ = std::max<size_t>(max_size_, size_[ra]);
  }

  size_t max_size() const { return max_size_; }

 private:
  std::unordered_map<uint32_t, uint32_t> ids_;
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t max_size_ = 0;
};

}  // namespace

size_t MaxWccOfEdges(std::span<const rdf::Triple> edges) {
  LocalForest forest;
  for (const rdf::Triple& t : edges) {
    uint32_t a = forest.LocalId(t.subject, 1);
    uint32_t b = forest.LocalId(t.object, 1);
    forest.Union(a, b);
  }
  return forest.max_size();
}

size_t TrialMergeMaxComponent(const DisjointSetForest& base,
                              std::span<const rdf::Triple> edges) {
  // Roots of `base` act as supervertices weighted by their component
  // sizes; the candidate property's edges union them locally.
  LocalForest forest;
  for (const rdf::Triple& t : edges) {
    uint32_t root_s = base.FindNoCompress(t.subject);
    uint32_t root_o = base.FindNoCompress(t.object);
    if (root_s == root_o) continue;  // already one component in base
    uint32_t a = forest.LocalId(
        root_s, static_cast<uint32_t>(base.SizeOfRoot(root_s)));
    uint32_t b = forest.LocalId(
        root_o, static_cast<uint32_t>(base.SizeOfRoot(root_o)));
    forest.Union(a, b);
  }
  return std::max(base.max_component_size(), forest.max_size());
}

}  // namespace mpc::dsf

#ifndef MPC_PARTITION_PARTITIONING_H_
#define MPC_PARTITION_PARTITIONING_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rdf/graph.h"
#include "rdf/types.h"

namespace mpc::partition {

/// A vertex-disjoint assignment of every vertex to one of k partitions.
struct VertexAssignment {
  uint32_t k = 0;
  std::vector<uint32_t> part;  // part[v] in [0, k), size |V|

  bool Valid(size_t num_vertices) const;
};

/// How triples are distributed across sites.
enum class PartitioningKind {
  /// Definition 3.3: vertices are disjoint; crossing edges replicated at
  /// both endpoint partitions (1-hop replication). MPC, Subject_Hash and
  /// METIS are all of this kind.
  kVertexDisjoint,
  /// VP / vertical partitioning: each triple assigned to exactly one
  /// partition by its property; vertices may appear at many sites.
  kEdgeDisjoint,
};

/// One materialized partition F_i = (V_i ∪ V_i^e, E_i ∪ E_i^c, L_i, f_i).
struct Partition {
  /// E_i: triples with both endpoints owned by this partition. For
  /// edge-disjoint partitionings this holds all triples assigned here.
  std::vector<rdf::Triple> internal_edges;
  /// E_i^c: replicas of crossing edges incident to this partition
  /// (empty for edge-disjoint partitionings).
  std::vector<rdf::Triple> crossing_edges;
  /// V_i^e: vertices owned elsewhere that appear as crossing-edge
  /// endpoints here, sorted ascending.
  std::vector<rdf::VertexId> extended_vertices;
  /// |V_i|: number of owned vertices.
  size_t num_owned_vertices = 0;

  size_t num_triples() const {
    return internal_edges.size() + crossing_edges.size();
  }
};

/// A complete partitioning F = {F_1, ..., F_k} over an RDF graph,
/// together with the crossing-property bookkeeping (Definition 3.4) the
/// query classifier consumes.
class Partitioning {
 public:
  /// Materializes a vertex-disjoint partitioning from an assignment:
  /// splits edges into internal/crossing, replicates crossing edges at
  /// both endpoint partitions, collects V_i^e and computes the crossing
  /// property set L_cross. With num_threads != 1 the k sites are
  /// materialized concurrently (each site scans the edge array
  /// independently); the result is bit-identical to the serial path.
  static Partitioning MaterializeVertexDisjoint(const rdf::RdfGraph& graph,
                                                VertexAssignment assignment,
                                                int num_threads = 1);

  /// Graph-free variant: materializes from an explicit edge array (must
  /// be sorted by (property, subject, object)) over a vertex universe of
  /// `num_vertices` and a property universe of `num_properties`. The
  /// graph overload delegates here; the incremental maintainer uses this
  /// directly to compact a drifted partitioning (live triples only)
  /// without materializing a fresh RdfGraph.
  static Partitioning MaterializeVertexDisjoint(
      std::span<const rdf::Triple> sorted_triples, size_t num_vertices,
      size_t num_properties, VertexAssignment assignment,
      int num_threads = 1);

  /// Materializes an edge-disjoint (VP-style) partitioning from a triple
  /// assignment: triple_part[i] gives the partition of graph.triples()[i].
  /// Also records, per partition, which properties it holds (used by the
  /// VP executor to decide whether a query touches one site only).
  /// num_threads parallelizes the per-site vertex dedup, deterministically.
  static Partitioning MaterializeEdgeDisjoint(
      const rdf::RdfGraph& graph, uint32_t k,
      const std::vector<uint32_t>& triple_part, int num_threads = 1);

  PartitioningKind kind() const { return kind_; }
  uint32_t k() const { return k_; }
  const std::vector<Partition>& partitions() const { return partitions_; }
  const Partition& partition(uint32_t i) const { return partitions_[i]; }

  /// Owner partition of each vertex (vertex-disjoint only).
  const VertexAssignment& assignment() const { return assignment_; }

  /// crossing_property_mask()[p] is true iff p ∈ L_cross.
  const std::vector<bool>& crossing_property_mask() const {
    return crossing_property_mask_;
  }
  bool IsCrossingProperty(rdf::PropertyId p) const {
    return crossing_property_mask_[p];
  }

  /// L_cross as an explicit sorted list.
  std::vector<rdf::PropertyId> CrossingProperties() const;

  /// |L_cross| — the quantity MPC minimizes (Table II).
  size_t num_crossing_properties() const { return num_crossing_properties_; }

  /// |E^c|: number of distinct crossing edges (each counted once even
  /// though replicated twice) — the min edge-cut objective (Table II).
  size_t num_crossing_edges() const { return num_crossing_edges_; }

  /// For edge-disjoint partitionings: partition holding property p.
  uint32_t PropertyHome(rdf::PropertyId p) const {
    return property_home_[p];
  }

  /// max_i |V_i| / (|V|/k); 1.0 is perfect balance (vertex-disjoint), or
  /// the triple-count analogue for edge-disjoint partitionings.
  double BalanceRatio() const;

  // --- Incremental-maintenance mutators (dynamic::IncrementalMaintainer).
  // A maintained partitioning keeps its aggregate counters exact while
  // the per-partition triple vectors may lag behind (lazy tombstones);
  // see DESIGN.md "Dynamic maintenance". ---

  /// Write access to one site's edge/vertex lists.
  Partition& mutable_partition(uint32_t i) { return partitions_[i]; }

  /// Write access to the vertex->owner map (vertex-disjoint only); the
  /// maintainer appends entries as the vertex universe grows.
  VertexAssignment& mutable_assignment() { return assignment_; }

  /// Extends the property universe to `num_properties` (never-seen
  /// properties start non-crossing); no-op when already that large.
  void GrowPropertyUniverse(size_t num_properties);

  /// Adds/removes p from L_cross, keeping num_crossing_properties() in
  /// step. No-op when the membership already matches.
  void SetCrossingProperty(rdf::PropertyId p, bool crossing);

  /// Adjusts the distinct crossing-edge count by `delta` (one per live
  /// crossing edge, replicas not double-counted).
  void BumpCrossingEdges(std::ptrdiff_t delta) {
    num_crossing_edges_ = static_cast<size_t>(
        static_cast<std::ptrdiff_t>(num_crossing_edges_) + delta);
  }

  /// Total stored triples across partitions divided by |E| (>= 1;
  /// measures the replication overhead of 1-hop crossing-edge copies).
  double ReplicationRatio(const rdf::RdfGraph& graph) const;

 private:
  PartitioningKind kind_ = PartitioningKind::kVertexDisjoint;
  uint32_t k_ = 0;
  std::vector<Partition> partitions_;
  VertexAssignment assignment_;
  std::vector<bool> crossing_property_mask_;
  size_t num_crossing_properties_ = 0;
  size_t num_crossing_edges_ = 0;
  std::vector<uint32_t> property_home_;  // edge-disjoint only
};

/// Summary row for Table II and the offline experiments.
struct PartitionMetrics {
  std::string strategy;
  size_t num_crossing_properties = 0;
  size_t num_crossing_edges = 0;
  double balance_ratio = 0.0;
  double replication_ratio = 0.0;
  double partitioning_millis = 0.0;
};

PartitionMetrics ComputeMetrics(const std::string& strategy,
                                const rdf::RdfGraph& graph,
                                const Partitioning& partitioning);

}  // namespace mpc::partition

#endif  // MPC_PARTITION_PARTITIONING_H_

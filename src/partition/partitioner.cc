#include "partition/partitioner.h"

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpc::partition {

Partitioning Partitioner::Partition(const rdf::RdfGraph& graph,
                                    RunStats* stats) const {
  RunStats scratch;
  RunStats* effective = stats != nullptr ? stats : &scratch;
  const size_t stages_before = effective->stages.size();

  obs::TraceSpan span("partition.run");
  span.Attr("strategy", name())
      .Attr("vertices", static_cast<uint64_t>(graph.num_vertices()))
      .Attr("triples", static_cast<uint64_t>(graph.num_edges()));

  Timer timer;
  Partitioning result = PartitionImpl(graph, effective);
  const double total_millis = timer.ElapsedMillis();

  auto& metrics = obs::MetricsRegistry::Default();
  metrics.CounterRef("partition.runs").Inc();
  metrics.HistogramRef("partition.total_ms").Observe(total_millis);
  for (size_t i = stages_before; i < effective->stages.size(); ++i) {
    const RunStats::Stage& stage = effective->stages[i];
    span.Attr("stage." + stage.name + "_ms", stage.millis);
    metrics.HistogramRef("partition.stage_ms." + stage.name)
        .Observe(stage.millis);
  }
  span.Attr("total_ms", total_millis);
  return result;
}

}  // namespace mpc::partition

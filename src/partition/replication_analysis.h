#ifndef MPC_PARTITION_REPLICATION_ANALYSIS_H_
#define MPC_PARTITION_REPLICATION_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "partition/partitioning.h"
#include "rdf/graph.h"

namespace mpc::partition {

/// Space-cost analysis of h-hop replication (Section I-A): the paper's
/// partitioning model replicates only crossing edges (1-hop); systems
/// like H-RDF-3X and WARP replicate the h-hop neighborhood of crossing-
/// edge endpoints to localize longer queries, at a growing space and
/// consistency cost. This computes that cost without changing the
/// executor's semantics.
struct ReplicationCost {
  uint32_t hops = 1;
  /// Total triples stored across all sites (owned + replicated).
  uint64_t stored_triples = 0;
  /// stored_triples / |E|.
  double replication_ratio = 0.0;
  /// Largest single-site triple count (the per-machine memory driver).
  uint64_t max_site_triples = 0;
};

/// Computes the storage cost of h-hop replication for h = 1..max_hops
/// over a vertex-disjoint partitioning. h=1 reproduces the partitioning's
/// own crossing-edge replication; h>1 additionally replicates, at each
/// site, every edge reachable within h-1 undirected hops from the site's
/// extended vertices (the standard h-hop guarantee construction).
std::vector<ReplicationCost> AnalyzeKHopReplication(
    const rdf::RdfGraph& graph, const Partitioning& partitioning,
    uint32_t max_hops);

}  // namespace mpc::partition

#endif  // MPC_PARTITION_REPLICATION_ANALYSIS_H_

#include "partition/edge_cut_partitioner.h"

#include "common/thread_pool.h"
#include "common/timer.h"
#include "metis/csr_graph.h"
#include "metis/partitioner.h"

namespace mpc::partition {

Partitioning EdgeCutPartitioner::PartitionImpl(const rdf::RdfGraph& graph,
                                               RunStats* stats) const {
  const int threads = ResolveNumThreads(options_.num_threads);
  Timer timer;
  metis::CsrGraph structure =
      metis::CsrGraph::FromTriples(graph.num_vertices(), graph.triples());
  metis::MlpOptions mlp_options;
  mlp_options.k = options_.k;
  mlp_options.epsilon = options_.epsilon;
  mlp_options.seed = options_.seed;
  metis::MultilevelPartitioner partitioner(mlp_options);

  VertexAssignment assignment;
  assignment.k = options_.k;
  assignment.part = partitioner.Partition(structure);
  const double metis_millis = timer.ElapsedMillis();

  timer.Reset();
  Partitioning result = Partitioning::MaterializeVertexDisjoint(
      graph, std::move(assignment), threads);
  if (stats != nullptr) {
    stats->threads_used = threads;
    stats->AddStage("metis", metis_millis);
    stats->AddStage("materialize", timer.ElapsedMillis());
  }
  return result;
}

}  // namespace mpc::partition

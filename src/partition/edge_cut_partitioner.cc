#include "partition/edge_cut_partitioner.h"

#include "metis/csr_graph.h"
#include "metis/partitioner.h"

namespace mpc::partition {

Partitioning EdgeCutPartitioner::Partition(const rdf::RdfGraph& graph) const {
  metis::CsrGraph structure =
      metis::CsrGraph::FromTriples(graph.num_vertices(), graph.triples());
  metis::MlpOptions mlp_options;
  mlp_options.k = options_.k;
  mlp_options.epsilon = options_.epsilon;
  mlp_options.seed = options_.seed;
  metis::MultilevelPartitioner partitioner(mlp_options);

  VertexAssignment assignment;
  assignment.k = options_.k;
  assignment.part = partitioner.Partition(structure);
  return Partitioning::MaterializeVertexDisjoint(graph,
                                                 std::move(assignment));
}

}  // namespace mpc::partition

#include "partition/subject_hash_partitioner.h"

#include "common/hash.h"

namespace mpc::partition {

Partitioning SubjectHashPartitioner::Partition(
    const rdf::RdfGraph& graph) const {
  VertexAssignment assignment;
  assignment.k = options_.k;
  assignment.part.resize(graph.num_vertices());
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    // Hash the lexical form (not the dense id) so the assignment matches
    // what a real system computes from the raw IRI, independent of
    // dictionary insertion order. The seed salts the hash so different
    // runs can draw different hash partitionings.
    uint64_t h = HashCombine(
        HashString(graph.VertexName(static_cast<rdf::VertexId>(v))),
        options_.seed);
    assignment.part[v] = static_cast<uint32_t>(h % options_.k);
  }
  return Partitioning::MaterializeVertexDisjoint(graph,
                                                 std::move(assignment));
}

}  // namespace mpc::partition

#include "partition/subject_hash_partitioner.h"

#include "common/hash.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace mpc::partition {

Partitioning SubjectHashPartitioner::PartitionImpl(const rdf::RdfGraph& graph,
                                                   RunStats* stats) const {
  const int threads = ResolveNumThreads(options_.num_threads);
  Timer timer;
  VertexAssignment assignment;
  assignment.k = options_.k;
  assignment.part.resize(graph.num_vertices());
  // Hash the lexical form (not the dense id) so the assignment matches
  // what a real system computes from the raw IRI, independent of
  // dictionary insertion order. The seed salts the hash so different
  // runs can draw different hash partitionings. Every vertex writes its
  // own slot, so the loop parallelizes without synchronization.
  ParallelFor(0, graph.num_vertices(), 4096, threads, [&](size_t v) {
    uint64_t h = HashCombine(
        HashString(graph.VertexName(static_cast<rdf::VertexId>(v))),
        options_.seed);
    assignment.part[v] = static_cast<uint32_t>(h % options_.k);
  });
  const double assign_millis = timer.ElapsedMillis();

  timer.Reset();
  Partitioning result = Partitioning::MaterializeVertexDisjoint(
      graph, std::move(assignment), threads);
  if (stats != nullptr) {
    stats->threads_used = threads;
    stats->AddStage("assign", assign_millis);
    stats->AddStage("materialize", timer.ElapsedMillis());
  }
  return result;
}

}  // namespace mpc::partition

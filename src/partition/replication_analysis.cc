#include "partition/replication_analysis.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <span>
#include <unordered_set>

namespace mpc::partition {

namespace {

/// Undirected adjacency over triple indices, built once per analysis.
class Adjacency {
 public:
  explicit Adjacency(const rdf::RdfGraph& graph) {
    offsets_.assign(graph.num_vertices() + 1, 0);
    const auto& triples = graph.triples();
    for (const rdf::Triple& t : triples) {
      ++offsets_[t.subject + 1];
      if (t.object != t.subject) ++offsets_[t.object + 1];
    }
    for (size_t v = 0; v < graph.num_vertices(); ++v) {
      offsets_[v + 1] += offsets_[v];
    }
    incident_.resize(offsets_.back());
    std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (size_t i = 0; i < triples.size(); ++i) {
      incident_[cursor[triples[i].subject]++] = i;
      if (triples[i].object != triples[i].subject) {
        incident_[cursor[triples[i].object]++] = i;
      }
    }
  }

  std::span<const size_t> Incident(rdf::VertexId v) const {
    return std::span<const size_t>(incident_.data() + offsets_[v],
                                   offsets_[v + 1] - offsets_[v]);
  }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<size_t> incident_;
};

}  // namespace

std::vector<ReplicationCost> AnalyzeKHopReplication(
    const rdf::RdfGraph& graph, const Partitioning& partitioning,
    uint32_t max_hops) {
  assert(partitioning.kind() == PartitioningKind::kVertexDisjoint);
  Adjacency adjacency(graph);
  const auto& triples = graph.triples();

  std::vector<ReplicationCost> costs;
  costs.reserve(max_hops);
  // Per site and hop level: frontier of foreign vertices whose incident
  // edges get replicated at the next level.
  const uint32_t k = partitioning.k();
  std::vector<std::unordered_set<size_t>> stored(k);
  std::vector<std::unordered_set<rdf::VertexId>> visited(k);
  std::vector<std::vector<rdf::VertexId>> frontier(k);

  // Level 1: the partitioning's own state — internal edges + crossing
  // replicas; frontier = extended vertices.
  for (uint32_t site = 0; site < k; ++site) {
    const Partition& p = partitioning.partition(site);
    for (const rdf::Triple& t : p.internal_edges) {
      auto it = std::lower_bound(triples.begin(), triples.end(), t);
      stored[site].insert(static_cast<size_t>(it - triples.begin()));
    }
    for (const rdf::Triple& t : p.crossing_edges) {
      auto it = std::lower_bound(triples.begin(), triples.end(), t);
      stored[site].insert(static_cast<size_t>(it - triples.begin()));
    }
    for (rdf::VertexId v : p.extended_vertices) {
      visited[site].insert(v);
      frontier[site].push_back(v);
    }
  }

  for (uint32_t hop = 1; hop <= max_hops; ++hop) {
    if (hop > 1) {
      // Expand: replicate all edges incident to the frontier; the new
      // frontier is their still-unvisited endpoints.
      for (uint32_t site = 0; site < k; ++site) {
        std::vector<rdf::VertexId> next;
        for (rdf::VertexId v : frontier[site]) {
          for (size_t ti : adjacency.Incident(v)) {
            stored[site].insert(ti);
            const rdf::Triple& t = triples[ti];
            for (rdf::VertexId u : {t.subject, t.object}) {
              if (visited[site].insert(u).second) next.push_back(u);
            }
          }
        }
        frontier[site] = std::move(next);
      }
    }
    ReplicationCost cost;
    cost.hops = hop;
    for (uint32_t site = 0; site < k; ++site) {
      cost.stored_triples += stored[site].size();
      cost.max_site_triples =
          std::max<uint64_t>(cost.max_site_triples, stored[site].size());
    }
    cost.replication_ratio =
        graph.num_edges() == 0
            ? 1.0
            : static_cast<double>(cost.stored_triples) /
                  static_cast<double>(graph.num_edges());
    costs.push_back(cost);
  }
  return costs;
}

}  // namespace mpc::partition

#ifndef MPC_PARTITION_SUBJECT_HASH_PARTITIONER_H_
#define MPC_PARTITION_SUBJECT_HASH_PARTITIONER_H_

#include "partition/partitioner.h"

namespace mpc::partition {

/// Subject_Hash baseline (SHAPE [21][22], AdPart [3]): every vertex is
/// assigned to partition hash(lexical form) mod k, so each subject's
/// outgoing star lands on one site. Vertex-disjoint with 1-hop crossing
/// edge replication, like all baselines in Table II.
class SubjectHashPartitioner : public Partitioner {
 public:
  explicit SubjectHashPartitioner(PartitionerOptions options)
      : options_(options) {}

  std::string name() const override { return "Subject_Hash"; }

 protected:
  Partitioning PartitionImpl(const rdf::RdfGraph& graph,
                             RunStats* stats) const override;

 private:
  PartitionerOptions options_;
};

}  // namespace mpc::partition

#endif  // MPC_PARTITION_SUBJECT_HASH_PARTITIONER_H_

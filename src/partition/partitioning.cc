#include "partition/partitioning.h"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpc::partition {

bool VertexAssignment::Valid(size_t num_vertices) const {
  if (part.size() != num_vertices || k == 0) return false;
  for (uint32_t p : part) {
    if (p >= k) return false;
  }
  return true;
}

Partitioning Partitioning::MaterializeVertexDisjoint(
    const rdf::RdfGraph& graph, VertexAssignment assignment,
    int num_threads) {
  return MaterializeVertexDisjoint(graph.triples(), graph.num_vertices(),
                                   graph.num_properties(),
                                   std::move(assignment), num_threads);
}

Partitioning Partitioning::MaterializeVertexDisjoint(
    std::span<const rdf::Triple> sorted_triples, size_t num_vertices,
    size_t num_properties, VertexAssignment assignment, int num_threads) {
  assert(assignment.Valid(num_vertices));
  const int threads = ResolveNumThreads(num_threads);
  obs::TraceSpan span("partition.materialize");
  span.Attr("kind", "vertex_disjoint")
      .Attr("k", static_cast<uint64_t>(assignment.k))
      .Attr("edges", static_cast<uint64_t>(sorted_triples.size()));

  Partitioning result;
  result.kind_ = PartitioningKind::kVertexDisjoint;
  result.k_ = assignment.k;
  result.partitions_.resize(assignment.k);
  result.crossing_property_mask_.assign(num_properties, false);

  if (threads <= 1) {
    // Serial path: one pass over the edge array filling every site.
    for (size_t v = 0; v < num_vertices; ++v) {
      ++result.partitions_[assignment.part[v]].num_owned_vertices;
    }

    for (const rdf::Triple& t : sorted_triples) {
      uint32_t ps = assignment.part[t.subject];
      uint32_t po = assignment.part[t.object];
      if (ps == po) {
        result.partitions_[ps].internal_edges.push_back(t);
      } else {
        // 1-hop replication (Definition 3.3 item 4): the crossing edge is
        // stored at both endpoint partitions.
        result.partitions_[ps].crossing_edges.push_back(t);
        result.partitions_[po].crossing_edges.push_back(t);
        result.partitions_[ps].extended_vertices.push_back(t.object);
        result.partitions_[po].extended_vertices.push_back(t.subject);
        result.crossing_property_mask_[t.property] = true;
        ++result.num_crossing_edges_;
      }
    }

    for (Partition& p : result.partitions_) {
      std::sort(p.extended_vertices.begin(), p.extended_vertices.end());
      p.extended_vertices.erase(
          std::unique(p.extended_vertices.begin(),
                      p.extended_vertices.end()),
          p.extended_vertices.end());
    }
  } else {
    // Parallel path: each site scans the edge array independently and
    // appends in edge order, producing exactly the per-site vectors of
    // the serial pass (same elements, same order).
    ParallelFor(0, result.partitions_.size(), 1, threads, [&](size_t s) {
      const uint32_t site = static_cast<uint32_t>(s);
      Partition& p = result.partitions_[s];
      for (size_t v = 0; v < num_vertices; ++v) {
        if (assignment.part[v] == site) ++p.num_owned_vertices;
      }
      for (const rdf::Triple& t : sorted_triples) {
        uint32_t ps = assignment.part[t.subject];
        uint32_t po = assignment.part[t.object];
        if (ps == po) {
          if (ps == site) p.internal_edges.push_back(t);
        } else if (ps == site) {
          p.crossing_edges.push_back(t);
          p.extended_vertices.push_back(t.object);
        } else if (po == site) {
          p.crossing_edges.push_back(t);
          p.extended_vertices.push_back(t.subject);
        }
      }
      std::sort(p.extended_vertices.begin(), p.extended_vertices.end());
      p.extended_vertices.erase(
          std::unique(p.extended_vertices.begin(),
                      p.extended_vertices.end()),
          p.extended_vertices.end());
    });
    // Crossing bookkeeping: per-property, so writes never share a slot.
    // vector<bool> packs bits, so mark into bytes and fold serially.
    // The edge array is sorted by property, so each property's run is
    // recovered with one counting pass (the graph's property_offsets_).
    std::vector<size_t> offsets(num_properties + 1, 0);
    for (const rdf::Triple& t : sorted_triples) ++offsets[t.property + 1];
    for (size_t p = 0; p < num_properties; ++p) offsets[p + 1] += offsets[p];
    std::vector<uint8_t> crossing(num_properties, 0);
    std::vector<size_t> crossing_edges_per_property(num_properties, 0);
    ParallelFor(0, num_properties, 1, threads, [&](size_t prop) {
      size_t count = 0;
      for (size_t e = offsets[prop]; e < offsets[prop + 1]; ++e) {
        const rdf::Triple& t = sorted_triples[e];
        count += assignment.part[t.subject] != assignment.part[t.object];
      }
      crossing_edges_per_property[prop] = count;
      crossing[prop] = count > 0;
    });
    for (size_t prop = 0; prop < num_properties; ++prop) {
      result.crossing_property_mask_[prop] = crossing[prop] != 0;
      result.num_crossing_edges_ += crossing_edges_per_property[prop];
    }
  }

  result.num_crossing_properties_ =
      static_cast<size_t>(std::count(result.crossing_property_mask_.begin(),
                                     result.crossing_property_mask_.end(),
                                     true));
  result.assignment_ = std::move(assignment);
  span.Attr("crossing_properties",
            static_cast<uint64_t>(result.num_crossing_properties_))
      .Attr("crossing_edges",
            static_cast<uint64_t>(result.num_crossing_edges_));
  auto& metrics = obs::MetricsRegistry::Default();
  metrics.GaugeRef("partition.crossing_properties")
      .Set(static_cast<double>(result.num_crossing_properties_));
  metrics.GaugeRef("partition.crossing_edges")
      .Set(static_cast<double>(result.num_crossing_edges_));
  return result;
}

Partitioning Partitioning::MaterializeEdgeDisjoint(
    const rdf::RdfGraph& graph, uint32_t k,
    const std::vector<uint32_t>& triple_part, int num_threads) {
  assert(triple_part.size() == graph.num_edges());
  obs::TraceSpan span("partition.materialize");
  span.Attr("kind", "edge_disjoint")
      .Attr("k", static_cast<uint64_t>(k))
      .Attr("edges", static_cast<uint64_t>(triple_part.size()));

  Partitioning result;
  result.kind_ = PartitioningKind::kEdgeDisjoint;
  result.k_ = k;
  result.partitions_.resize(k);
  // Edge-disjoint partitionings have no crossing edges or properties
  // (the paper excludes VP from Table II for this reason).
  result.crossing_property_mask_.assign(graph.num_properties(), false);
  result.property_home_.assign(graph.num_properties(), 0);

  const auto& triples = graph.triples();
  for (size_t i = 0; i < triples.size(); ++i) {
    assert(triple_part[i] < k);
    result.partitions_[triple_part[i]].internal_edges.push_back(triples[i]);
    result.property_home_[triples[i].property] = triple_part[i];
  }
  // num_owned_vertices: count of distinct vertices appearing per site.
  // Each site's dedup is independent, so the sites run concurrently.
  ParallelFor(0, result.partitions_.size(), 1, num_threads, [&](size_t s) {
    Partition& p = result.partitions_[s];
    std::vector<rdf::VertexId> scratch;
    scratch.reserve(p.internal_edges.size() * 2);
    for (const rdf::Triple& t : p.internal_edges) {
      scratch.push_back(t.subject);
      scratch.push_back(t.object);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()),
                  scratch.end());
    p.num_owned_vertices = scratch.size();
  });
  return result;
}

void Partitioning::GrowPropertyUniverse(size_t num_properties) {
  if (num_properties > crossing_property_mask_.size()) {
    crossing_property_mask_.resize(num_properties, false);
    if (kind_ == PartitioningKind::kEdgeDisjoint) {
      property_home_.resize(num_properties, 0);
    }
  }
}

void Partitioning::SetCrossingProperty(rdf::PropertyId p, bool crossing) {
  assert(p < crossing_property_mask_.size());
  if (crossing_property_mask_[p] == crossing) return;
  crossing_property_mask_[p] = crossing;
  num_crossing_properties_ += crossing ? 1 : -1;
}

std::vector<rdf::PropertyId> Partitioning::CrossingProperties() const {
  std::vector<rdf::PropertyId> props;
  for (size_t p = 0; p < crossing_property_mask_.size(); ++p) {
    if (crossing_property_mask_[p]) {
      props.push_back(static_cast<rdf::PropertyId>(p));
    }
  }
  return props;
}

double Partitioning::BalanceRatio() const {
  if (partitions_.empty()) return 1.0;
  uint64_t total = 0;
  uint64_t max_size = 0;
  for (const Partition& p : partitions_) {
    uint64_t size = (kind_ == PartitioningKind::kVertexDisjoint)
                        ? p.num_owned_vertices
                        : p.internal_edges.size();
    total += size;
    max_size = std::max(max_size, size);
  }
  if (total == 0) return 1.0;
  double ideal = static_cast<double>(total) / static_cast<double>(k_);
  return static_cast<double>(max_size) / ideal;
}

double Partitioning::ReplicationRatio(const rdf::RdfGraph& graph) const {
  if (graph.num_edges() == 0) return 1.0;
  uint64_t stored = 0;
  for (const Partition& p : partitions_) stored += p.num_triples();
  return static_cast<double>(stored) /
         static_cast<double>(graph.num_edges());
}

PartitionMetrics ComputeMetrics(const std::string& strategy,
                                const rdf::RdfGraph& graph,
                                const Partitioning& partitioning) {
  PartitionMetrics m;
  m.strategy = strategy;
  m.num_crossing_properties = partitioning.num_crossing_properties();
  m.num_crossing_edges = partitioning.num_crossing_edges();
  m.balance_ratio = partitioning.BalanceRatio();
  m.replication_ratio = partitioning.ReplicationRatio(graph);
  return m;
}

}  // namespace mpc::partition

#include "partition/vp_partitioner.h"

#include "common/hash.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace mpc::partition {

Partitioning VpPartitioner::PartitionImpl(const rdf::RdfGraph& graph,
                                          RunStats* stats) const {
  const int threads = ResolveNumThreads(options_.num_threads);
  Timer timer;
  const auto& triples = graph.triples();
  std::vector<uint32_t> triple_part(triples.size());
  // Property -> partition via salted string hash, one lookup per property.
  std::vector<uint32_t> home(graph.num_properties());
  ParallelFor(0, home.size(), 64, threads, [&](size_t p) {
    uint64_t h = HashCombine(
        HashString(graph.PropertyName(static_cast<rdf::PropertyId>(p))),
        options_.seed);
    home[p] = static_cast<uint32_t>(h % options_.k);
  });
  ParallelFor(0, triples.size(), 8192, threads, [&](size_t i) {
    triple_part[i] = home[triples[i].property];
  });
  const double assign_millis = timer.ElapsedMillis();

  timer.Reset();
  Partitioning result = Partitioning::MaterializeEdgeDisjoint(
      graph, options_.k, triple_part, threads);
  if (stats != nullptr) {
    stats->threads_used = threads;
    stats->AddStage("assign", assign_millis);
    stats->AddStage("materialize", timer.ElapsedMillis());
  }
  return result;
}

}  // namespace mpc::partition

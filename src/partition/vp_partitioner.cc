#include "partition/vp_partitioner.h"

#include "common/hash.h"

namespace mpc::partition {

Partitioning VpPartitioner::Partition(const rdf::RdfGraph& graph) const {
  const auto& triples = graph.triples();
  std::vector<uint32_t> triple_part(triples.size());
  // Property -> partition via salted string hash, one lookup per property.
  std::vector<uint32_t> home(graph.num_properties());
  for (size_t p = 0; p < home.size(); ++p) {
    uint64_t h = HashCombine(
        HashString(graph.PropertyName(static_cast<rdf::PropertyId>(p))),
        options_.seed);
    home[p] = static_cast<uint32_t>(h % options_.k);
  }
  for (size_t i = 0; i < triples.size(); ++i) {
    triple_part[i] = home[triples[i].property];
  }
  return Partitioning::MaterializeEdgeDisjoint(graph, options_.k,
                                               triple_part);
}

}  // namespace mpc::partition

#ifndef MPC_PARTITION_EDGE_CUT_PARTITIONER_H_
#define MPC_PARTITION_EDGE_CUT_PARTITIONER_H_

#include "partition/partitioner.h"

namespace mpc::partition {

/// Minimum edge-cut baseline ("METIS" in the paper's tables, used by
/// EAGRE [39], H-RDF-3X [16] and TriAD [13]): drops edge labels and
/// directions, then runs the multilevel k-way partitioner to minimize
/// crossing edges under the (1+epsilon)|V|/k balance constraint.
class EdgeCutPartitioner : public Partitioner {
 public:
  explicit EdgeCutPartitioner(PartitionerOptions options)
      : options_(options) {}

  std::string name() const override { return "METIS"; }

 protected:
  Partitioning PartitionImpl(const rdf::RdfGraph& graph,
                             RunStats* stats) const override;

 private:
  PartitionerOptions options_;
};

}  // namespace mpc::partition

#endif  // MPC_PARTITION_EDGE_CUT_PARTITIONER_H_
